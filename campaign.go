package ptgsched

import (
	"ptgsched/internal/events"
	"ptgsched/internal/scenario"
)

// Declarative campaign engine (the scenario layer): a JSON spec describing
// a scenario space — platforms (presets or inline heterogeneous cluster
// specs), PTG families with explicit parameter grids, strategy sets,
// replication counts, seeds and online arrival processes — expands into a
// deterministic cartesian sweep that runs over the experiment worker pool,
// optionally partitioned into shards whose JSONL outputs recombine
// bit-identically. The checked-in examples/campaign.json reproduces the
// paper's Figure 3 campaign through this path.
type (
	// CampaignSpec is a parsed declarative campaign.
	CampaignSpec = scenario.Spec
	// CampaignFamilySpec selects a PTG family and optional parameter grid.
	CampaignFamilySpec = scenario.FamilySpec
	// CampaignStrategySpec names one strategy of the comparison set.
	CampaignStrategySpec = scenario.StrategySpec
	// CampaignPlatformSpec is an inline (possibly heterogeneous) platform.
	CampaignPlatformSpec = scenario.PlatformSpec
	// CampaignClusterSpec is one cluster of an inline platform.
	CampaignClusterSpec = scenario.ClusterSpec
	// CampaignOnlineSpec sweeps the online scheduler's arrival processes.
	CampaignOnlineSpec = scenario.OnlineSpec
	// CampaignExpansion is a spec expanded into its deterministic sweep.
	// Points are generated lazily: PointAt(i) derives any point in O(1),
	// and selections (full sweep, shards, prefixes) are CampaignIndexSet
	// predicates, so campaign size is bounded by arithmetic, not memory.
	CampaignExpansion = scenario.Expansion
	// CampaignIndexSet selects a subset of a sweep's point indices by
	// predicate (limit/offset/stride) instead of a materialized slice.
	CampaignIndexSet = scenario.IndexSet
	// CampaignAggregator is the incremental, order-insensitive reduction:
	// feed it results one at a time (Add) from any shard, stream or store
	// and its Tables are bit-identical to a materialized aggregation.
	CampaignAggregator = scenario.Aggregator
	// CampaignCell is one aggregation cell of a sweep.
	CampaignCell = scenario.Cell
	// CampaignPoint is one fully determined scenario of a sweep.
	CampaignPoint = scenario.Point
	// CampaignPointResult is one point's per-strategy measurement, the
	// JSONL record of sharded sweeps.
	CampaignPointResult = scenario.PointResult
	// CampaignTable is one cell's aggregated summary; its Result renders
	// through ExperimentResult's table and CSV writers.
	CampaignTable = scenario.Table
	// CampaignEventsSpec declares a spec's dynamic event timeline: scripted
	// or stochastic platform failures, speed changes, PTG cancellations and
	// resubmissions, and the rescheduling policies to sweep. Per-point
	// timelines derive deterministically from the spec digest and point
	// index, so sharded sweeps stay bit-identical. An empty block behaves
	// exactly as omitting it.
	CampaignEventsSpec = events.Spec
	// CampaignFailureSpec is one failure source: a scripted down/up pair or
	// an MTTF/MTTR renewal process.
	CampaignFailureSpec = events.FailureSpec
	// CampaignSpeedChangeSpec scales one cluster's speed at an instant.
	CampaignSpeedChangeSpec = events.SpeedChangeSpec
	// CampaignCancelSpec withdraws one application, optionally resubmitting
	// it after a delay.
	CampaignCancelSpec = events.CancelSpec
	// EventTimeline is one point's concrete, time-ordered event sequence.
	EventTimeline = events.Timeline
	// Event is one concrete timeline entry; Kind discriminates it.
	Event     = events.Event
	EventKind = events.Kind
)

// Event kinds of a concrete timeline.
const (
	EventClusterDown = events.ClusterDown
	EventClusterUp   = events.ClusterUp
	EventSpeedChange = events.SpeedChange
	EventCancel      = events.Cancel
	EventResubmit    = events.Resubmit
)

// Campaign entry points.
var (
	// ParseCampaignSpec decodes and validates a JSON campaign spec.
	ParseCampaignSpec = scenario.ParseSpec
	// ExpandCampaign resolves a spec into its (lazily enumerated) sweep.
	ExpandCampaign = scenario.Expand
	// EstimateCampaignPoints computes a spec's expansion cardinality
	// (cells, points) arithmetically, without expanding it.
	EstimateCampaignPoints = scenario.EstimatePoints
	// PaperCampaignSpec returns the spec-driven form of a paper figure
	// campaign ("fig2" … "fig5").
	PaperCampaignSpec = scenario.PaperSpec
	// ParseCampaignShard parses a shard selector "i/n".
	ParseCampaignShard = scenario.ParseShard
	// WriteCampaignJSONL / ReadCampaignJSONL stream per-point results in
	// the bit-exact shard interchange format; ReadCampaignJSONLFunc is
	// the record-at-a-time reader merge flows feed an aggregator with.
	WriteCampaignJSONL    = scenario.WriteJSONL
	ReadCampaignJSONL     = scenario.ReadJSONL
	ReadCampaignJSONLFunc = scenario.ReadJSONLFunc
	// AppendCampaignJSONL appends one record (plus newline) to a reusable
	// byte buffer, byte-identically to json.Marshal — the allocation-free
	// encoder streaming sinks reuse one buffer with.
	AppendCampaignJSONL = scenario.AppendJSONL
	// SortCampaignResults orders merged shard results by point index.
	SortCampaignResults = scenario.SortResults
)
