package ptgsched

import (
	"ptgsched/internal/query"
	"ptgsched/internal/scenario"
	"ptgsched/internal/store"
)

// Durable campaign store (the persistence layer under long-running
// sweeps): a store directory holds a manifest — the campaign spec's
// content digest, the expansion cardinality, the shard layout — plus one
// append-only JSONL segment per shard, each line a CampaignPointResult in
// the bit-exact campaign wire format. Every Append writes one whole line
// with a single write call, so a crash tears at most the final line of a
// segment; OpenCampaignStore truncates a torn tail away and recovers the
// completed-point bitmap, and a resumed sweep (Store.Sweep skips completed
// points) aggregates bit-identically to an uninterrupted run. The handle
// is memory-flat: it keeps one bit per point — results live on disk only,
// and Results/Aggregate re-scan the JSONL segments, streaming each record
// into the incremental aggregator. This is the engine behind
// `ptgbench -campaign -store DIR [-resume]`.
type (
	// CampaignStore is an open result store; create with
	// CreateCampaignStore, reopen with OpenCampaignStore, release with
	// its Close method.
	CampaignStore = store.Store
	// CampaignStoreManifest pins a store directory to one campaign.
	CampaignStoreManifest = store.Manifest
	// CampaignStoreProgress snapshots completion per shard and overall.
	CampaignStoreProgress = store.Progress
)

// Campaign store entry points.
var (
	// CreateCampaignStore initializes a directory as a new store for an
	// expansion, partitioned into the given number of shard segments.
	CreateCampaignStore = store.Create
	// OpenCampaignStore reopens an existing store against the same
	// expansion, recovering from a torn final line if the last run
	// crashed mid-append.
	OpenCampaignStore = store.Open
	// CampaignSpecDigest is the canonical content digest a store manifest
	// records (scenario.SpecDigest).
	CampaignSpecDigest = scenario.SpecDigest
)

// Query layer: each segment carries a sparse byte-offset index in a
// sidecar file (segment-NNNN.jsonl.idx, built incrementally at append
// time and reconstructed by a one-time scan for stores that predate it),
// and a compiled CampaignQueryPlan resolves a predicate — family,
// strategy, point-index range — to the minimal set of segment byte runs
// whose records can match. CampaignStore.Query reads and decodes only
// those runs; QueryStats reports the bytes and lines that pruning saved.
// This is the engine behind `ptgbench -query` and the service's
// GET /v1/jobs/{id}/results filters.
type (
	// CampaignQuery is a declarative result predicate. A zero To means
	// "end of the expansion" only via CampaignQueryNoLimit; To: 0 is the
	// legal empty range.
	CampaignQuery = query.Query
	// CampaignQueryPlan is a compiled, validated predicate bound to one
	// expansion; build with CompileCampaignQuery.
	CampaignQueryPlan = query.Plan
	// CampaignQueryStats accounts one query execution: bytes read and
	// lines decoded versus the store totals a full scan would touch.
	CampaignQueryStats = store.QueryStats
	// CampaignGroupRow is one (cell, #PTGs, strategy) aggregate row of
	// CampaignStore.AggregateWhere.
	CampaignGroupRow = query.GroupRow
	// CampaignQueryCacheStats reports plan-cache hits and misses.
	CampaignQueryCacheStats = query.CacheStats
)

// CampaignQueryNoLimit marks a CampaignQuery.To meaning "to the end of
// the expansion" (any negative value does).
const CampaignQueryNoLimit = query.NoLimit

// Query entry points.
var (
	// OpenCampaignStoreRead opens a store read-only for querying: index
	// sidecars are loaded (or rebuilt by scanning) but never written, no
	// write descriptors are held, and Append/Sweep are refused — safe
	// against a store another process is still sweeping into.
	OpenCampaignStoreRead = store.OpenRead
	// CompileCampaignQuery validates a predicate against an expansion and
	// memoizes the resulting plan (keyed by spec digest and normalized
	// query), so hot result-serving paths skip recompilation.
	CompileCampaignQuery = query.CompileCached
	// CampaignQueryCache reports the process-wide plan cache counters.
	CampaignQueryCache = query.PlanCacheStats
	// NewCampaignGroupAggregator reduces a (filtered, projected) result
	// stream into CampaignGroupRow summaries — the reducer behind
	// CampaignStore.AggregateWhere, exposed for callers that bring their
	// own record source.
	NewCampaignGroupAggregator = query.NewGroupAggregator
)
