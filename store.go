package ptgsched

import (
	"ptgsched/internal/scenario"
	"ptgsched/internal/store"
)

// Durable campaign store (the persistence layer under long-running
// sweeps): a store directory holds a manifest — the campaign spec's
// content digest, the expansion cardinality, the shard layout — plus one
// append-only JSONL segment per shard, each line a CampaignPointResult in
// the bit-exact campaign wire format. Every Append writes one whole line
// with a single write call, so a crash tears at most the final line of a
// segment; OpenCampaignStore truncates a torn tail away and recovers the
// completed-point bitmap, and a resumed sweep (Store.Sweep skips completed
// points) aggregates bit-identically to an uninterrupted run. The handle
// is memory-flat: it keeps one bit per point — results live on disk only,
// and Results/Aggregate re-scan the JSONL segments, streaming each record
// into the incremental aggregator. This is the engine behind
// `ptgbench -campaign -store DIR [-resume]`.
type (
	// CampaignStore is an open result store; create with
	// CreateCampaignStore, reopen with OpenCampaignStore, release with
	// its Close method.
	CampaignStore = store.Store
	// CampaignStoreManifest pins a store directory to one campaign.
	CampaignStoreManifest = store.Manifest
	// CampaignStoreProgress snapshots completion per shard and overall.
	CampaignStoreProgress = store.Progress
)

// Campaign store entry points.
var (
	// CreateCampaignStore initializes a directory as a new store for an
	// expansion, partitioned into the given number of shard segments.
	CreateCampaignStore = store.Create
	// OpenCampaignStore reopens an existing store against the same
	// expansion, recovering from a torn final line if the last run
	// crashed mid-append.
	OpenCampaignStore = store.Open
	// CampaignSpecDigest is the canonical content digest a store manifest
	// records (scenario.SpecDigest).
	CampaignSpecDigest = scenario.SpecDigest
)
