// Fairness: reproduces the mechanism of Figure 1 of the paper. A big and a
// small application share two processors; the classical global bottom-level
// ordering postpones the small one behind the big one's first task, while
// the paper's ready-task ordering lets it start immediately — a fairer and
// more efficient schedule.
package main

import (
	"fmt"
	"log"
	"os"

	"ptgsched"
)

func chainPTG(name string, works ...float64) *ptgsched.Graph {
	g := ptgsched.NewGraph(name)
	var prev *ptgsched.Task
	for i, w := range works {
		t := g.AddTask(fmt.Sprintf("%s-%d", name, i), 1, w, 0)
		if prev != nil {
			g.MustAddEdge(prev, t, 0)
		}
		prev = t
	}
	return g
}

func main() {
	pf := ptgsched.NewPlatform("toy", true,
		ptgsched.ClusterSpec{Name: "c0", Procs: 2, Speed: 1})

	for _, ordering := range []struct {
		name string
		opts ptgsched.MapOptions
	}{
		{"global ordering (classical)", ptgsched.MapOptions{Ordering: ptgsched.GlobalOrdering}},
		{"ready-task ordering (paper, §5)", ptgsched.MapOptions{Ordering: ptgsched.ReadyTasksOrdering}},
	} {
		// Fresh graphs per run: schedules annotate placements.
		big := chainPTG("big", 10, 5)
		small := chainPTG("small", 2, 2)

		sched := ptgsched.NewScheduler(pf)
		sched.MapOptions = ordering.opts
		res := sched.Schedule([]*ptgsched.Graph{big, small}, ptgsched.ES())

		own := []float64{sched.ScheduleAlone(chainPTG("big", 10, 5)),
			sched.ScheduleAlone(chainPTG("small", 2, 2))}
		ev := res.Evaluate(own)

		fmt.Printf("=== %s ===\n", ordering.name)
		fmt.Printf("big:   makespan %5.2f s (slowdown %.2f)\n", res.Makespan(0), ev.Slowdowns[0])
		fmt.Printf("small: makespan %5.2f s (slowdown %.2f)\n", res.Makespan(1), ev.Slowdowns[1])
		fmt.Printf("unfairness: %.3f\n", ev.Unfairness)
		if err := ptgsched.WriteGantt(os.Stdout, res.Schedule, 60); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("The ready-task ordering lets the small application run during the")
	fmt.Println("big one's first task instead of queueing behind it (paper, Fig. 1).")
}
