// Quickstart: schedule four random parallel task graphs concurrently on the
// Rennes multi-cluster site with the paper's recommended WPS-width strategy
// and print the resulting metrics and Gantt chart.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"ptgsched"
)

func main() {
	pf := ptgsched.Rennes()
	sched := ptgsched.NewScheduler(pf)
	fmt.Println("platform:", pf)

	// Four applications submitted at the same time by different users.
	r := rand.New(rand.NewSource(2026))
	graphs := make([]*ptgsched.Graph, 4)
	for i := range graphs {
		graphs[i] = ptgsched.GeneratePTG(ptgsched.FamilyRandom, r)
	}

	// WPS-width with the paper's calibrated µ: the fairest strategy with
	// makespans competitive with the selfish baseline (§7).
	strat := ptgsched.WPS(ptgsched.Width, ptgsched.DefaultMu(ptgsched.Width, ptgsched.FamilyRandom))
	res := sched.Schedule(graphs, strat)
	if err := ptgsched.ValidateSchedule(res.Schedule); err != nil {
		log.Fatal(err)
	}

	// Slowdowns compare against each application running alone.
	own := make([]float64, len(graphs))
	for i, g := range graphs {
		own[i] = sched.ScheduleAlone(g)
	}
	ev := res.Evaluate(own)

	fmt.Printf("\n%-4s %-26s %7s %11s %11s %9s\n", "app", "graph", "beta", "alone (s)", "shared (s)", "slowdown")
	for i, g := range graphs {
		fmt.Printf("%-4d %-26s %7.3f %11.1f %11.1f %9.3f\n",
			i, g.Name, res.Betas[i], own[i], res.Makespan(i), ev.Slowdowns[i])
	}
	fmt.Printf("\nglobal makespan: %.1f s   unfairness: %.3f\n\n", ev.Makespan, ev.Unfairness)

	if err := ptgsched.WriteGantt(os.Stdout, res.Schedule, 80); err != nil {
		log.Fatal(err)
	}
}
