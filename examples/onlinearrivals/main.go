// Onlinearrivals: the paper's future-work scenario (§8). Applications are
// submitted to the Rennes site over time following a Poisson process; on
// every arrival and completion the scheduler recomputes the per-application
// resource constraints (WPS-work), reallocates the not-yet-started tasks
// and remaps them. Compares flow times against the selfish free-for-all.
package main

import (
	"fmt"
	"math/rand"

	"ptgsched"
)

func main() {
	pf := ptgsched.Rennes()
	fmt.Println("platform:", pf)

	// Twelve applications arriving at ~1 application per 5 seconds.
	r := rand.New(rand.NewSource(31))
	arrivals := ptgsched.GenerateWorkload(ptgsched.WorkloadSpec{
		Family:  ptgsched.FamilyRandom,
		Count:   12,
		Process: ptgsched.PoissonArrivals,
		Rate:    0.2,
	}, r)

	runs := map[string]ptgsched.OnlineOptions{
		"WPS-work (rebalancing)": {Strategy: ptgsched.WPS(ptgsched.Work, 0.7)},
		"S (selfish)":            {Strategy: ptgsched.S()},
	}

	results := make(map[string]*ptgsched.OnlineResult, len(runs))
	for name, opts := range runs {
		results[name] = ptgsched.ScheduleOnline(pf, arrivals, opts)
	}

	fmt.Printf("\n%-4s %10s | %14s | %14s\n", "app", "arrival", "WPS flow (s)", "S flow (s)")
	wps := results["WPS-work (rebalancing)"]
	selfish := results["S (selfish)"]
	var wpsSum, sSum float64
	for i := range arrivals {
		w, s := wps.Apps[i].FlowTime(), selfish.Apps[i].FlowTime()
		wpsSum += w
		sSum += s
		fmt.Printf("%-4d %10.1f | %14.1f | %14.1f\n", i, arrivals[i].At, w, s)
	}
	n := float64(len(arrivals))
	fmt.Printf("\nmean flow time : WPS %.1f s, selfish %.1f s\n", wpsSum/n, sSum/n)
	fmt.Printf("last completion: WPS %.1f s, selfish %.1f s\n", wps.Makespan, selfish.Makespan)
	fmt.Printf("rebalances     : WPS %d, selfish %d\n", wps.Rebalances, selfish.Rebalances)
}
