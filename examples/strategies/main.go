// Strategies: compares the paper's eight resource-constraint determination
// strategies (§6) on one batch of concurrent applications, showing the
// fairness/makespan trade-off each strategy picks.
package main

import (
	"fmt"
	"math/rand"

	"ptgsched"
)

func main() {
	pf := ptgsched.Sophia()
	sched := ptgsched.NewScheduler(pf)
	fmt.Println("platform:", pf)

	// Six applications of heterogeneous shapes and sizes.
	r := rand.New(rand.NewSource(7))
	graphs := make([]*ptgsched.Graph, 6)
	for i := range graphs {
		graphs[i] = ptgsched.GeneratePTG(ptgsched.FamilyRandom, r)
	}
	fmt.Printf("%d concurrent PTGs:\n", len(graphs))
	for i, g := range graphs {
		fmt.Printf("  app%d: %-28s %2d tasks, width %2d, work %8.0f GFlop\n",
			i, g.Name, len(g.Tasks), g.MaxWidth(), g.TotalWork())
	}

	own := make([]float64, len(graphs))
	for i, g := range graphs {
		own[i] = sched.ScheduleAlone(g)
	}

	strategies := ptgsched.PaperStrategies(ptgsched.FamilyRandom)
	makespans := make([]float64, len(strategies))
	unfairness := make([]float64, len(strategies))
	for i, strat := range strategies {
		res := sched.Schedule(graphs, strat)
		ev := res.Evaluate(own)
		makespans[i] = ev.Makespan
		unfairness[i] = ev.Unfairness
	}
	rel := ptgsched.RelativeMakespans(makespans)

	fmt.Printf("\n%-11s %12s %14s %14s\n", "strategy", "unfairness", "makespan (s)", "rel. makespan")
	for i, strat := range strategies {
		fmt.Printf("%-11s %12.3f %14.1f %14.3f\n", strat.Name(), unfairness[i], makespans[i], rel[i])
	}
	fmt.Println("\nLower unfairness = fairer sharing; rel. makespan 1.000 = fastest strategy.")
	fmt.Println("The paper's headline: WPS-width is ~2× fairer than selfish S at")
	fmt.Println("competitive makespans, while PS-work is unfair but fastest (§7).")
}
