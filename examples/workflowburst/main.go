// Workflowburst: a resource-manager scenario. Ten users submit a mixed
// burst of workflows — random DAG workflows, FFT solvers and Strassen
// multiplications — to the Nancy site at the same instant. The scheduler
// constrains each application's allocation with WPS-work and the burst is
// executed under simulated network contention. Compares against the selfish
// free-for-all.
package main

import (
	"fmt"
	"math/rand"

	"ptgsched"
)

func main() {
	pf := ptgsched.Nancy()
	sched := ptgsched.NewScheduler(pf)
	fmt.Println("platform:", pf)

	r := rand.New(rand.NewSource(99))
	var graphs []*ptgsched.Graph
	var kinds []string
	for i := 0; i < 10; i++ {
		switch i % 3 {
		case 0:
			graphs = append(graphs, ptgsched.GeneratePTG(ptgsched.FamilyRandom, r))
			kinds = append(kinds, "workflow")
		case 1:
			graphs = append(graphs, ptgsched.FFTPTG(2+r.Intn(3), r))
			kinds = append(kinds, "fft")
		default:
			graphs = append(graphs, ptgsched.StrassenPTG(r))
			kinds = append(kinds, "strassen")
		}
	}

	own := make([]float64, len(graphs))
	for i, g := range graphs {
		own[i] = sched.ScheduleAlone(g)
	}

	wps := ptgsched.WPS(ptgsched.Work, 0.7)
	constrained := sched.Schedule(graphs, wps)
	selfish := sched.Schedule(graphs, ptgsched.S())
	evC := constrained.Evaluate(own)
	evS := selfish.Evaluate(own)

	fmt.Printf("\n%-4s %-9s %6s %11s | %10s %10s | %10s %10s\n",
		"app", "kind", "tasks", "alone (s)", "WPS (s)", "slowdown", "S (s)", "slowdown")
	for i := range graphs {
		fmt.Printf("%-4d %-9s %6d %11.1f | %10.1f %10.3f | %10.1f %10.3f\n",
			i, kinds[i], len(graphs[i].Tasks), own[i],
			constrained.Makespan(i), evC.Slowdowns[i],
			selfish.Makespan(i), evS.Slowdowns[i])
	}
	fmt.Printf("\n%-22s %12s %14s\n", "", "unfairness", "makespan (s)")
	fmt.Printf("%-22s %12.3f %14.1f\n", "WPS-work (mu=0.7)", evC.Unfairness, evC.Makespan)
	fmt.Printf("%-22s %12.3f %14.1f\n", "S (selfish)", evS.Unfairness, evS.Makespan)
}
