package ptgsched

import (
	"io"

	"ptgsched/internal/dag"
	"ptgsched/internal/online"
	"ptgsched/internal/trace"
	"ptgsched/internal/workload"
)

// Online scheduling (the paper's §8 future-work direction: different
// submission times with constraint recomputation on arrivals/completions).
type (
	// Arrival is one application submission at a given time.
	Arrival = online.Arrival
	// OnlineOptions tunes the online scheduler.
	OnlineOptions = online.Options
	// OnlineResult reports an online run: per-application flow times and
	// the surviving placements.
	OnlineResult = online.Result
	// OnlineAppResult is one application's submission/start/completion.
	OnlineAppResult = online.AppResult
	// ReschedulePolicy decides which work a platform failure invalidates:
	// the restart baseline discards everything, the checkpoint-aware policy
	// keeps completed tasks that survived.
	ReschedulePolicy = online.ReschedulePolicy
)

// Rescheduling policies for dynamic (event-timeline) runs.
var (
	// RestartPolicy re-executes every affected application from scratch.
	RestartPolicy = online.RestartPolicy
	// CheckpointPolicy re-executes only the work a failure actually killed.
	CheckpointPolicy = online.CheckpointPolicy
	// ReschedulePolicyByName resolves "restart" or "checkpoint".
	ReschedulePolicyByName = online.PolicyByName
	// ReschedulePolicyNames lists the registered policy names.
	ReschedulePolicyNames = online.PolicyNames
)

// ScheduleOnline runs the online scheduler: applications arrive over time,
// and the β constraints of the active set are recomputed on each arrival
// (and completion, unless disabled), reallocating and remapping all
// not-yet-started tasks.
func ScheduleOnline(pf *Platform, arrivals []Arrival, opts OnlineOptions) *OnlineResult {
	return online.Schedule(pf, arrivals, opts)
}

// Workload generation for the online scheduler.
type (
	// WorkloadSpec describes a synthetic submission workload.
	WorkloadSpec = workload.Spec
	// ArrivalProcess selects burst, Poisson or uniform arrivals.
	ArrivalProcess = workload.Process
)

// Arrival processes.
const (
	BurstArrivals   = workload.Burst
	PoissonArrivals = workload.Poisson
	UniformArrivals = workload.Uniform
)

// Workload entry points.
var (
	// GenerateWorkload draws a synthetic workload.
	GenerateWorkload = workload.Generate
	// WriteWorkloadTrace and ReadWorkloadTrace persist workloads as JSON.
	WriteWorkloadTrace = workload.WriteTrace
	ReadWorkloadTrace  = workload.ReadTrace
)

// Schedule analysis.
type (
	// ClusterUtilization is one cluster's busy fraction.
	ClusterUtilization = trace.ClusterUtilization
	// AppEfficiency is one application's parallel efficiency.
	AppEfficiency = trace.AppEfficiency
	// ScheduleSummary aggregates headline schedule statistics.
	ScheduleSummary = trace.Summary
	// GraphStats summarizes a PTG's structure (see Graph.ComputeStats).
	GraphStats = dag.Stats
)

// Analysis entry points.
var (
	// ScheduleUtilization computes per-cluster busy fractions.
	ScheduleUtilization = trace.Utilization
	// ScheduleEfficiencies computes per-application parallel efficiency.
	ScheduleEfficiencies = trace.Efficiencies
	// SummarizeSchedule computes a ScheduleSummary.
	SummarizeSchedule = trace.Summarize
)

// WriteWorkloadDOT renders every graph of a workload to one DOT stream,
// separated by blank lines, for quick visual inspection.
func WriteWorkloadDOT(w io.Writer, arrivals []Arrival) error {
	for _, a := range arrivals {
		if err := a.Graph.WriteDOT(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
