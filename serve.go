package ptgsched

import (
	"net/http"

	"ptgsched/internal/daggen"
	"ptgsched/internal/platform"
	"ptgsched/internal/service"
	"ptgsched/internal/strategy"
	"ptgsched/internal/workload"
)

// Scheduling service (the concurrency layer over the per-batch pipeline):
// many client sessions are multiplexed through one shared server core — a
// bounded worker pool running per-request Scheduler instances over shared
// read-only platforms. All service types are safe for concurrent use.
type (
	// Service is a concurrent scheduling service; create one with
	// NewService and release it with its Close method.
	Service = service.Service
	// ServiceOptions sizes the worker pool, the request queue, the
	// per-request timeout and the campaign/job admission limits.
	ServiceOptions = service.Options
	// ServiceLimits tunes the campaign and job admission caps
	// (ServiceOptions.Limits); zero fields take the service defaults.
	ServiceLimits = service.Limits
	// ServiceStats is a point-in-time snapshot of the service counters.
	ServiceStats = service.Stats
	// ScheduleServiceRequest is one offline batch-scheduling request.
	ScheduleServiceRequest = service.ScheduleRequest
	// ScheduleServiceResponse reports one scheduled batch.
	ScheduleServiceResponse = service.ScheduleResponse
	// OnlineServiceRequest is one dynamic-arrivals scheduling request.
	OnlineServiceRequest = service.OnlineRequest
	// OnlineServiceResponse reports one online run.
	OnlineServiceResponse = service.OnlineResponse
	// WorkloadServiceRequest is one workload-generation request.
	WorkloadServiceRequest = service.WorkloadRequest
	// WorkloadServiceResponse reports one generated workload.
	WorkloadServiceResponse = service.WorkloadResponse
	// CampaignServiceRequest is one declarative campaign sweep request
	// (an inline scenario spec, optionally one shard of it).
	CampaignServiceRequest = service.CampaignRequest
	// CampaignServiceResponse reports one campaign sweep.
	CampaignServiceResponse = service.CampaignResponse
	// CampaignJobRequest is one asynchronous campaign job submission:
	// Service.SubmitJob returns immediately with a job id, progress is
	// polled with JobStatusByID, completed results stream through
	// JobResults, and CancelJob cancels via context.
	CampaignJobRequest = service.JobRequest
	// CampaignJobStatus is a point-in-time job snapshot (state,
	// completed/total points, per-shard progress).
	CampaignJobStatus = service.JobStatus
	// CampaignJobResultQuery filters a job's streamed JSONL results by
	// family, strategy label and point-index range.
	CampaignJobResultQuery = service.ResultQuery
)

// Service errors.
var (
	// ErrServiceQueueFull reports a request refused by a full queue.
	ErrServiceQueueFull = service.ErrQueueFull
	// ErrServiceClosed reports a request submitted after Close.
	ErrServiceClosed = service.ErrClosed
	// ErrJobNotFound reports an unknown campaign job id.
	ErrJobNotFound = service.ErrJobNotFound
	// ErrTooManyJobs reports a job registry full of live jobs.
	ErrTooManyJobs = service.ErrTooManyJobs
)

// NewService starts a concurrent scheduling service: a bounded request
// queue feeding a fixed worker pool, each worker running the full paper
// pipeline on a private Scheduler per request.
func NewService(opts ServiceOptions) *Service { return service.New(opts) }

// ServiceHandler exposes a service over HTTP+JSON (the ptgserve wire
// surface): POST /v1/schedule, /v1/online, /v1/workload and /v1/campaign,
// the asynchronous job routes (POST/GET /v1/jobs, GET /v1/jobs/{id} and
// /v1/jobs/{id}/results, DELETE /v1/jobs/{id}), plus GET /v1/stats,
// /metrics and /healthz. Every error response carries the JSON envelope
// {"error", "code"}.
func ServiceHandler(s *Service) http.Handler { return service.Handler(s) }

// Serve starts a scheduling service with the given options and serves its
// HTTP surface on addr. It blocks until the listener fails, like
// http.ListenAndServe; cmd/ptgserve wraps it with flags and graceful
// shutdown.
func Serve(addr string, opts ServiceOptions) error {
	s := service.New(opts)
	defer s.Close()
	return http.ListenAndServe(addr, service.Handler(s))
}

// Name registries shared by the CLIs and the service wire format.
var (
	// PlatformByName resolves a Grid'5000 preset name (lille, nancy,
	// rennes, sophia) to a fresh Platform.
	PlatformByName = platform.ByName
	// FamilyByName parses a PTG family name (random, fft, strassen).
	FamilyByName = daggen.FamilyByName
	// StrategyByName parses a paper strategy name (S, ES, PS-*, WPS-*); a
	// negative mu selects the paper's calibrated default for WPS variants.
	StrategyByName = strategy.ByName
	// ProcessByName parses an arrival-process name (burst, poisson,
	// uniform).
	ProcessByName = workload.ProcessByName
)
