package main

import (
	"testing"

	"ptgsched/internal/clitest"
)

func TestGoldenFilesAreHygienic(t *testing.T) {
	clitest.GoldenHygiene(t)
}
