package main

// Golden CLI tests (see internal/clitest): ptgtrace's stdout for fixed
// seeds is captured under testdata/*.golden; refresh with
// `go test ./cmd/ptgtrace -update`. The generate golden doubles as the
// input trace of the inspect and replay goldens, so the three stay
// mutually consistent.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptgsched/internal/clitest"
)

func runCLI(t *testing.T, args ...string) []byte {
	t.Helper()
	return clitest.Run(t, run, args...)
}

// generateArgs pins the deterministic workload all three goldens share.
var generateArgs = []string{
	"-mode", "generate", "-family", "strassen", "-count", "3",
	"-process", "uniform", "-rate", "0.5", "-seed", "4",
}

func TestGoldenGenerate(t *testing.T) {
	clitest.CheckGolden(t, "trace.golden.json", runCLI(t, generateArgs...))
}

func TestGoldenInspect(t *testing.T) {
	clitest.CheckGolden(t, "inspect.golden",
		runCLI(t, "-mode", "inspect", "-in", "testdata/trace.golden.json"))
}

func TestGoldenReplay(t *testing.T) {
	clitest.CheckGolden(t, "replay.golden",
		runCLI(t, "-mode", "replay", "-in", "testdata/trace.golden.json",
			"-platform", "lille", "-strategy", "ES"))
}

func TestGenerateWritesToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	runCLI(t, append(append([]string{}, generateArgs...), "-out", out)...)
	fromFile, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile, runCLI(t, generateArgs...)) {
		t.Error("-out file differs from stdout output")
	}
}

func TestHelpExitsCleanly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(buf.String(), "-mode") {
		t.Fatal("-h did not print usage")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "bogus"}, &buf); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"-mode", "inspect"}, &buf); err == nil {
		t.Error("inspect without -in accepted")
	}
	if err := run([]string{"-mode", "generate", "-family", "weird"}, &buf); err == nil {
		t.Error("unknown family accepted")
	}
}
