// Command ptgtrace generates, inspects and replays submission workloads
// for the online scheduler (the §8 dynamic-arrivals extension).
//
// Usage:
//
//	ptgtrace -mode generate -family random -count 10 -process poisson -rate 0.2 -out trace.json
//	ptgtrace -mode inspect -in trace.json
//	ptgtrace -mode replay -in trace.json -platform rennes -strategy WPS-width -family fft
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"ptgsched"
)

func main() {
	var (
		mode         = flag.String("mode", "generate", "generate, inspect or replay")
		familyName   = flag.String("family", "random", "PTG family: random, fft or strassen")
		count        = flag.Int("count", 10, "number of applications")
		processName  = flag.String("process", "poisson", "arrival process: burst, poisson or uniform")
		rate         = flag.Float64("rate", 0.2, "arrival rate in apps/second")
		seed         = flag.Int64("seed", 1, "random seed")
		in           = flag.String("in", "", "input trace file")
		out          = flag.String("out", "", "output trace file (default stdout)")
		platformName = flag.String("platform", "rennes", "platform for replay")
		strategyName = flag.String("strategy", "WPS-work", "strategy for replay: S, ES, PS-{cp,width,work} or WPS-{cp,width,work}")
		mu           = flag.Float64("mu", -1, "µ for WPS strategies on replay (default: the paper's calibrated value for -family)")
	)
	flag.Parse()

	switch strings.ToLower(*mode) {
	case "generate":
		generate(*familyName, *count, *processName, *rate, *seed, *out)
	case "inspect":
		inspect(*in)
	case "replay":
		replay(*in, *platformName, *strategyName, *mu, *familyName)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func generate(familyName string, count int, processName string, rate float64, seed int64, out string) {
	family, err := ptgsched.FamilyByName(familyName)
	if err != nil {
		fatal(err)
	}
	process, err := ptgsched.ProcessByName(processName)
	if err != nil {
		fatal(err)
	}
	arrivals := ptgsched.GenerateWorkload(ptgsched.WorkloadSpec{
		Family: family, Count: count, Process: process, Rate: rate,
	}, rand.New(rand.NewSource(seed)))

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := ptgsched.WriteWorkloadTrace(w, arrivals); err != nil {
		fatal(err)
	}
}

func readTrace(in string) []ptgsched.Arrival {
	if in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	f, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	arrivals, err := ptgsched.ReadWorkloadTrace(f)
	if err != nil {
		fatal(err)
	}
	return arrivals
}

func inspect(in string) {
	arrivals := readTrace(in)
	fmt.Printf("%-4s %10s %-28s %6s %6s %6s %12s\n",
		"app", "arrival", "graph", "tasks", "depth", "width", "work (GF)")
	for i, a := range arrivals {
		s := a.Graph.ComputeStats()
		fmt.Printf("%-4d %10.1f %-28s %6d %6d %6d %12.0f\n",
			i, a.At, a.Graph.Name, s.Tasks, s.Depth, s.MaxWidth, s.TotalWorkG)
	}
}

func replay(in, platformName, strategyName string, mu float64, familyName string) {
	arrivals := readTrace(in)
	pf, err := ptgsched.PlatformByName(platformName)
	if err != nil {
		fatal(err)
	}
	// The trace format does not record its family; -family tells the
	// resolver which calibrated µ default applies (WPS-width differs on
	// FFT workloads), and -mu overrides it outright.
	family, err := ptgsched.FamilyByName(familyName)
	if err != nil {
		fatal(err)
	}
	strat, err := ptgsched.StrategyByName(strategyName, mu, family)
	if err != nil {
		fatal(err)
	}

	res := ptgsched.ScheduleOnline(pf, arrivals, ptgsched.OnlineOptions{Strategy: strat})
	fmt.Printf("platform: %s, strategy: %s\n\n", pf, strat)
	fmt.Printf("%-4s %10s %10s %12s %12s\n", "app", "arrival", "start", "completion", "flow (s)")
	var sum float64
	for i, app := range res.Apps {
		fmt.Printf("%-4d %10.1f %10.1f %12.1f %12.1f\n",
			i, app.SubmittedAt, app.StartedAt, app.CompletedAt, app.FlowTime())
		sum += app.FlowTime()
	}
	fmt.Printf("\nmean flow time: %.1f s, last completion: %.1f s, rebalances: %d\n",
		sum/float64(len(res.Apps)), res.Makespan, res.Rebalances)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptgtrace:", err)
	os.Exit(1)
}
