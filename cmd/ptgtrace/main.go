// Command ptgtrace generates, inspects and replays submission workloads
// for the online scheduler (the §8 dynamic-arrivals extension).
//
// Usage:
//
//	ptgtrace -mode generate -family random -count 10 -process poisson -rate 0.2 -out trace.json
//	ptgtrace -mode inspect -in trace.json
//	ptgtrace -mode replay -in trace.json -platform rennes -strategy WPS-width -family fft
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"ptgsched"
)

// errUsage signals a flag-parse failure the flag package already reported
// to the output writer; main exits nonzero without printing it twice.
var errUsage = errors.New("usage")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, "ptgtrace:", err)
		}
		os.Exit(1)
	}
}

// run executes one ptgtrace invocation, writing its report to w. It is the
// testable core behind main.
func run(argv []string, w io.Writer) error {
	fs := flag.NewFlagSet("ptgtrace", flag.ContinueOnError)
	var (
		mode         = fs.String("mode", "generate", "generate, inspect or replay")
		familyName   = fs.String("family", "random", "PTG family: random, fft or strassen")
		count        = fs.Int("count", 10, "number of applications")
		processName  = fs.String("process", "poisson", "arrival process: burst, poisson or uniform")
		rate         = fs.Float64("rate", 0.2, "arrival rate in apps/second")
		seed         = fs.Int64("seed", 1, "random seed")
		in           = fs.String("in", "", "input trace file")
		out          = fs.String("out", "", "output trace file (default stdout)")
		platformName = fs.String("platform", "rennes", "platform for replay")
		strategyName = fs.String("strategy", "WPS-work", "strategy for replay: S, ES, PS-{cp,width,work} or WPS-{cp,width,work}")
		mu           = fs.Float64("mu", -1, "µ for WPS strategies on replay (default: the paper's calibrated value for -family)")
	)
	fs.SetOutput(w)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return errUsage
	}

	switch strings.ToLower(*mode) {
	case "generate":
		return generate(w, *familyName, *count, *processName, *rate, *seed, *out)
	case "inspect":
		return inspect(w, *in)
	case "replay":
		return replay(w, *in, *platformName, *strategyName, *mu, *familyName)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func generate(w io.Writer, familyName string, count int, processName string, rate float64, seed int64, out string) error {
	family, err := ptgsched.FamilyByName(familyName)
	if err != nil {
		return err
	}
	process, err := ptgsched.ProcessByName(processName)
	if err != nil {
		return err
	}
	arrivals := ptgsched.GenerateWorkload(ptgsched.WorkloadSpec{
		Family: family, Count: count, Process: process, Rate: rate,
	}, rand.New(rand.NewSource(seed)))

	dst := w
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	return ptgsched.WriteWorkloadTrace(dst, arrivals)
}

func readTrace(in string) ([]ptgsched.Arrival, error) {
	if in == "" {
		return nil, fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ptgsched.ReadWorkloadTrace(f)
}

func inspect(w io.Writer, in string) error {
	arrivals, err := readTrace(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-4s %10s %-28s %6s %6s %6s %12s\n",
		"app", "arrival", "graph", "tasks", "depth", "width", "work (GF)")
	for i, a := range arrivals {
		s := a.Graph.ComputeStats()
		fmt.Fprintf(w, "%-4d %10.1f %-28s %6d %6d %6d %12.0f\n",
			i, a.At, a.Graph.Name, s.Tasks, s.Depth, s.MaxWidth, s.TotalWorkG)
	}
	return nil
}

func replay(w io.Writer, in, platformName, strategyName string, mu float64, familyName string) error {
	arrivals, err := readTrace(in)
	if err != nil {
		return err
	}
	pf, err := ptgsched.PlatformByName(platformName)
	if err != nil {
		return err
	}
	// The trace format does not record its family; -family tells the
	// resolver which calibrated µ default applies (WPS-width differs on
	// FFT workloads), and -mu overrides it outright.
	family, err := ptgsched.FamilyByName(familyName)
	if err != nil {
		return err
	}
	strat, err := ptgsched.StrategyByName(strategyName, mu, family)
	if err != nil {
		return err
	}

	res := ptgsched.ScheduleOnline(pf, arrivals, ptgsched.OnlineOptions{Strategy: strat})
	fmt.Fprintf(w, "platform: %s, strategy: %s\n\n", pf, strat)
	fmt.Fprintf(w, "%-4s %10s %10s %12s %12s\n", "app", "arrival", "start", "completion", "flow (s)")
	var sum float64
	for i, app := range res.Apps {
		fmt.Fprintf(w, "%-4d %10.1f %10.1f %12.1f %12.1f\n",
			i, app.SubmittedAt, app.StartedAt, app.CompletedAt, app.FlowTime())
		sum += app.FlowTime()
	}
	fmt.Fprintf(w, "\nmean flow time: %.1f s, last completion: %.1f s, rebalances: %d\n",
		sum/float64(len(res.Apps)), res.Makespan, res.Rebalances)
	return nil
}
