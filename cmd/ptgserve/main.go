// Command ptgserve runs the concurrent scheduling service as an HTTP+JSON
// server: schedule/online/workload/campaign requests are queued onto a
// bounded worker pool, each worker executing the full paper pipeline per
// request. Long campaign sweeps run as asynchronous *jobs*: submit,
// poll progress, stream completed results, cancel (see the README's
// "Long-running campaigns" section for a curl session).
//
// Usage:
//
//	ptgserve -addr :8080 -workers 8 -queue 128 -timeout 60s \
//	         -max-campaign-points 16384 -max-job-points 1048576
//
// Endpoints:
//
//	POST /v1/schedule  {"platform":"rennes","family":"random","count":6,"strategy":"WPS-work","seed":7}
//	POST /v1/online    {"platform":"sophia","count":8,"process":"poisson","rate":0.25,"seed":1}
//	POST /v1/workload  {"family":"fft","count":10,"process":"uniform","rate":0.5}
//	POST /v1/campaign  {"spec":{...declarative campaign spec...},"shard":"0/4"}
//	POST   /v1/jobs               {"spec":{...},"shards":4}  → 202 + job id (async)
//	GET    /v1/jobs               all jobs' status
//	GET    /v1/jobs/{id}          progress: state, completed/total, per-shard counts
//	GET    /v1/jobs/{id}/results  completed results as JSONL; ?family=&strategy=&from=&to=
//	DELETE /v1/jobs/{id}          cancel via context and forget
//	GET  /v1/stats     service counters as JSON
//	GET  /metrics      the same counters in Prometheus text format
//	GET  /healthz      liveness probe
//
// A full queue answers 429 with a Retry-After hint; a request exceeding the
// timeout answers 504; an unknown job id answers 404. Every error response
// carries the JSON envelope {"error": ..., "code": ...}. SIGINT/SIGTERM
// cancel running jobs and drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ptgsched"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "scheduling workers (default: GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "request queue depth (default: 64)")
		timeout   = flag.Duration("timeout", 0, "per-request timeout (default: 60s)")
		maxPoints = flag.Int("max-campaign-points", 0, "points one synchronous campaign may execute (default: 16384)")
		maxExpand = flag.Int("max-campaign-expansion", 0, "total expansion a campaign request may address (default: 2^24)")
		maxJob    = flag.Int("max-job-points", 0, "points one async job may execute (default: 2^20)")
		maxBack   = flag.Int("max-job-backlog", 0, "total points across live jobs (default: 2^21)")
	)
	flag.Parse()

	svc := ptgsched.NewService(ptgsched.ServiceOptions{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		Limits: ptgsched.ServiceLimits{
			CampaignPoints:    *maxPoints,
			CampaignExpansion: *maxExpand,
			JobPoints:         *maxJob,
			JobBacklog:        *maxBack,
		},
	})
	eff := svc.Options()
	fmt.Printf("ptgserve: listening on %s (%d workers, queue %d, timeout %s)\n",
		*addr, eff.Workers, eff.QueueDepth, eff.RequestTimeout)

	srv := &http.Server{Addr: *addr, Handler: ptgsched.ServiceHandler(svc)}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// The listener failed before any shutdown was requested.
		svc.Close()
		fatal(err)
	case sig := <-sigCh:
		fmt.Printf("ptgserve: %s, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ptgserve: shutdown:", err)
		}
		svc.Close()
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptgserve:", err)
	os.Exit(1)
}
