// Command ptgserve runs the concurrent scheduling service as an HTTP+JSON
// server: schedule/online/workload/campaign requests are queued onto a
// bounded worker pool, each worker executing the full paper pipeline per
// request. Long campaign sweeps run as asynchronous *jobs*: submit,
// poll progress, stream completed results, cancel (see the README's
// "Long-running campaigns" section for a curl session). A fleet of
// ptgserve processes is driven by `ptgbench -coordinate`, which leases
// campaign shards to workers and reassigns them on failure.
//
// Usage:
//
//	ptgserve -addr :8080 -workers 8 -queue 128 -timeout 60s \
//	         -name worker-1 -drain-timeout 30s \
//	         -max-campaign-points 16384 -max-job-points 1048576
//
// Endpoints:
//
//	POST /v1/schedule  {"platform":"rennes","family":"random","count":6,"strategy":"WPS-work","seed":7}
//	POST /v1/online    {"platform":"sophia","count":8,"process":"poisson","rate":0.25,"seed":1}
//	POST /v1/workload  {"family":"fft","count":10,"process":"uniform","rate":0.5}
//	POST /v1/campaign  {"spec":{...declarative campaign spec...},"shard":"0/4"}
//	POST   /v1/jobs               {"spec":{...},"shards":4,"shard":"1/3"}  → 202 + job id (async)
//	GET    /v1/jobs               all jobs' status
//	GET    /v1/jobs/{id}          progress: state, completed/total, per-shard counts
//	GET    /v1/jobs/{id}/results  completed results as JSONL; ?family=&strategy=&from=&to=
//	DELETE /v1/jobs/{id}          cancel via context and forget
//	GET  /v1/healthz   health snapshot as JSON (status, name, load) — the fleet probe
//	GET  /v1/stats     service counters as JSON
//	GET  /metrics      the same counters in Prometheus text format
//	GET  /healthz      liveness probe
//
// A full queue answers 429 with a Retry-After hint derived from the queue
// depth and measured latency; a request exceeding the timeout answers
// 504; an unknown job id answers 404. Every error response carries the
// JSON envelope {"error": ..., "code": ...}. SIGINT/SIGTERM cancel
// running jobs and drain in-flight requests; a drain still not finished
// after -drain-timeout is force-closed, with the abandoned requests
// counted as expired.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ptgsched"
)

func main() {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sigCh); err != nil {
		fmt.Fprintln(os.Stderr, "ptgserve:", err)
		os.Exit(1)
	}
}

// run executes one ptgserve invocation: listen, serve until the listener
// fails or sigCh delivers, then drain within the drain timeout. It is the
// testable core behind main — the listener address is printed to w (an
// ":0" addr resolves to a real port), and a test's synthetic signal on
// sigCh triggers the same drain path a real SIGTERM does.
func run(argv []string, w io.Writer, sigCh <-chan os.Signal) error {
	fs := flag.NewFlagSet("ptgserve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		name      = fs.String("name", "", "worker name reported by /v1/healthz (default: unnamed)")
		workers   = fs.Int("workers", 0, "scheduling workers (default: GOMAXPROCS)")
		queue     = fs.Int("queue", 0, "request queue depth (default: 64)")
		timeout   = fs.Duration("timeout", 0, "per-request timeout (default: 60s)")
		drain     = fs.Duration("drain-timeout", 30*time.Second, "shutdown: force-close after draining this long")
		maxPoints = fs.Int("max-campaign-points", 0, "points one synchronous campaign may execute (default: 16384)")
		maxExpand = fs.Int("max-campaign-expansion", 0, "total expansion a campaign request may address (default: 2^24)")
		maxJob    = fs.Int("max-job-points", 0, "points one async job may execute (default: 2^20)")
		maxBack   = fs.Int("max-job-backlog", 0, "total points across live jobs (default: 2^21)")
		cacheDir  = fs.String("cache", "", "content-addressed result cache directory (created if missing); campaign and job points are served from verified cache entries and published back — point a fleet's workers at one shared directory")
	)
	fs.SetOutput(w)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	var ch *ptgsched.CampaignCache
	if *cacheDir != "" {
		var err error
		if ch, err = ptgsched.OpenCampaignCache(*cacheDir); err != nil {
			return err
		}
		st := ch.Stats()
		fmt.Fprintf(w, "ptgserve: cache %s: %d entries, %d verify failures\n",
			*cacheDir, st.Entries, st.VerifyFailures)
		defer func() {
			if err := ch.Close(); err != nil {
				fmt.Fprintf(w, "ptgserve: cache %s: %v\n", *cacheDir, err)
			}
			st := ch.Stats()
			fmt.Fprintf(w, "ptgserve: cache %s: hits=%d misses=%d verify_failures=%d entries=%d\n",
				*cacheDir, st.Hits, st.Misses, st.VerifyFailures, st.Entries)
		}()
	}

	svc := ptgsched.NewService(ptgsched.ServiceOptions{
		Name:           *name,
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		Cache:          ch,
		Limits: ptgsched.ServiceLimits{
			CampaignPoints:    *maxPoints,
			CampaignExpansion: *maxExpand,
			JobPoints:         *maxJob,
			JobBacklog:        *maxBack,
		},
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		svc.Close()
		return err
	}
	eff := svc.Options()
	fmt.Fprintf(w, "ptgserve: listening on %s (%d workers, queue %d, timeout %s)\n",
		ln.Addr(), eff.Workers, eff.QueueDepth, eff.RequestTimeout)

	srv := &http.Server{Handler: ptgsched.ServiceHandler(svc)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		// The listener failed before any shutdown was requested.
		svc.Close()
		return err
	case sig := <-sigCh:
		fmt.Fprintf(w, "ptgserve: %s, draining (timeout %s)\n", sig, *drain)
		deadline := time.Now().Add(*drain)
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// The HTTP drain blew the budget: sever the connections so no
			// stuck client can hold the process open.
			fmt.Fprintf(w, "ptgserve: drain timeout: force-closing connections\n")
			srv.Close()
		}
		// Drain the service workers within what's left of the budget
		// (floor 1s so a spent budget still gets one settle pass); a
		// request still running after that is abandoned as expired.
		grace := time.Until(deadline)
		if grace < time.Second {
			grace = time.Second
		}
		if stuck := svc.CloseGrace(grace); stuck > 0 {
			fmt.Fprintf(w, "ptgserve: drain timeout: %d in-flight requests expired\n", stuck)
		} else {
			fmt.Fprintf(w, "ptgserve: drained clean\n")
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
