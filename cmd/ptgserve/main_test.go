package main

// End-to-end tests of the server lifecycle through the testable run()
// core: startup on an ephemeral port, the /v1/healthz fleet probe, a
// clean signal-triggered drain, and the -drain-timeout force-close path
// that abandons a wedged in-flight request as expired.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuf is a concurrency-safe output sink: run() writes from its own
// goroutine while the test polls for the listener line.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startServe runs the server on an ephemeral port and returns its base
// URL once the listener line appears.
func startServe(t *testing.T, extra ...string) (base string, sigCh chan os.Signal, done chan error, out *syncBuf) {
	t.Helper()
	out = &syncBuf{}
	sigCh = make(chan os.Signal, 1)
	done = make(chan error, 1)
	argv := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { done <- run(argv, out, sigCh) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], sigCh, done, out
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before listening: %v (output %q)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitExit(t *testing.T, done chan error, within time.Duration) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(within):
		t.Fatalf("server did not exit within %s", within)
		return nil
	}
}

// TestServeHealthzAndCleanDrain boots a named worker, probes its health
// snapshot, and shuts it down with a synthetic SIGTERM: the idle drain
// must be clean and prompt.
func TestServeHealthzAndCleanDrain(t *testing.T) {
	base, sigCh, done, out := startServe(t, "-name", "drill-1", "-workers", "2")

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hs struct {
		Status  string `json:"status"`
		Name    string `json:"name"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hs.Status != "ok" || hs.Name != "drill-1" || hs.Workers != 2 {
		t.Fatalf("healthz %+v", hs)
	}

	sigCh <- syscall.SIGTERM
	if err := waitExit(t, done, 15*time.Second); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	if !strings.Contains(out.String(), "drained clean") {
		t.Fatalf("output %q missing the clean-drain line", out.String())
	}
}

// TestServeDrainTimeoutForceClose wedges the single worker on a fat
// synchronous campaign (the pipeline is not preemptible mid-request),
// then signals shutdown with a short -drain-timeout: run() must return
// within the budget — not hang on the wedged worker — and report the
// abandoned request as expired.
func TestServeDrainTimeoutForceClose(t *testing.T) {
	base, sigCh, done, out := startServe(t, "-workers", "1", "-drain-timeout", "2s")

	// ~1000 heavy points on one worker: many tens of seconds of work, far
	// beyond the drain budget on any machine.
	spec := `{"spec": {"name": "wedge", "seed": 1, "reps": 500, "nptgs": [10],
		"platforms": ["lille", "sophia"], "families": [{"family": "random"}]}}`
	go func() {
		c := &http.Client{Timeout: 500 * time.Millisecond}
		resp, err := c.Post(base+"/v1/campaign", "application/json", strings.NewReader(spec))
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Wait until the worker has actually picked the request up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			InFlight int64 `json:"in_flight"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never picked the wedge request up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	start := time.Now()
	sigCh <- syscall.SIGTERM
	if err := waitExit(t, done, 30*time.Second); err != nil {
		t.Fatalf("force-closed drain returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("drain took %v despite the 2s budget", elapsed)
	}
	if !strings.Contains(out.String(), "expired") {
		t.Fatalf("output %q does not report the expired in-flight request", out.String())
	}
}
