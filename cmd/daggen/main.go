// Command daggen generates parallel task graphs of the paper's three
// families and writes them as JSON or Graphviz DOT.
//
// Usage:
//
//	daggen -family random -tasks 20 -width 0.5 -regularity 0.8 -density 0.2 -jump 2 -format dot
//	daggen -family fft -k 3 -format json
//	daggen -family strassen -seed 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"ptgsched"
)

func main() {
	var (
		family     = flag.String("family", "random", "random, fft or strassen")
		tasks      = flag.Int("tasks", 20, "task count (random family)")
		width      = flag.Float64("width", 0.5, "width parameter (random family)")
		regularity = flag.Float64("regularity", 0.8, "regularity parameter (random family)")
		density    = flag.Float64("density", 0.2, "density parameter (random family)")
		jump       = flag.Int("jump", 1, "jump parameter (random family)")
		k          = flag.Int("k", 3, "FFT exponent: 2^k points (fft family)")
		seed       = flag.Int64("seed", 1, "random seed")
		format     = flag.String("format", "json", "output format: json or dot")
		out        = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	var g *ptgsched.Graph
	switch strings.ToLower(*family) {
	case "random":
		g = ptgsched.RandomPTG(ptgsched.RandomConfig{
			Tasks: *tasks, Width: *width, Regularity: *regularity,
			Density: *density, Jump: *jump,
		}, r)
	case "fft":
		g = ptgsched.FFTPTG(*k, r)
	case "strassen":
		g = ptgsched.StrassenPTG(r)
	default:
		fatal(fmt.Errorf("unknown family %q", *family))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	switch strings.ToLower(*format) {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(g); err != nil {
			fatal(err)
		}
	case "dot":
		if err := g.WriteDOT(w); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daggen:", err)
	os.Exit(1)
}
