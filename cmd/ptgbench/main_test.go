package main

// Golden CLI tests (see internal/clitest): ptgbench's stdout for fixed
// seeds is captured under testdata/*.golden; refresh with
// `go test ./cmd/ptgbench -update`. The shard test additionally asserts
// the core campaign promise on the wire: -shard 0/2 and 1/2 recombined
// through -merge print byte-for-byte what the unsharded run prints.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptgsched"
	"ptgsched/internal/clitest"
)

func runCLI(t *testing.T, args ...string) []byte {
	t.Helper()
	return clitest.Run(t, run, args...)
}

func TestGoldenTable1(t *testing.T) {
	clitest.CheckGolden(t, "table1.golden", runCLI(t, "-experiment", "table1"))
}

func TestGoldenCampaign(t *testing.T) {
	clitest.CheckGolden(t, "campaign.golden",
		runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-workers", "2"))
}

func TestCampaignShardsMergeToUnshardedOutput(t *testing.T) {
	unsharded := runCLI(t, "-campaign", "testdata/smoke-campaign.json")

	dir := t.TempDir()
	s0 := filepath.Join(dir, "shard0.jsonl")
	s1 := filepath.Join(dir, "shard1.jsonl")
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "0/2", "-jsonl", s0)
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "1/2", "-jsonl", s1)
	merged := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-merge", s1+","+s0)

	if !bytes.Equal(unsharded, merged) {
		t.Errorf("merged shard output differs from unsharded run\n--- unsharded ---\n%s\n--- merged ---\n%s",
			unsharded, merged)
	}
}

func TestCampaignShardStreamsJSONLToStdout(t *testing.T) {
	out := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "0/4")
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 2 { // 8 points, shard 0 of 4
		t.Fatalf("%d JSONL lines, want 2:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"index":`) {
			t.Fatalf("not a JSONL record: %s", l)
		}
	}
}

func TestCampaignUnshardedHonorsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "all.jsonl")
	out := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-jsonl", path)
	if !strings.Contains(string(out), "wrote 8 of 8 points") {
		t.Fatalf("unsharded -jsonl not reported:\n%s", out)
	}
	var buf bytes.Buffer
	if err := run([]string{"-campaign", "testdata/smoke-campaign.json", "-merge", path}, &buf); err != nil {
		t.Fatalf("merging the unsharded JSONL: %v", err)
	}
}

func TestCampaignStoreRunMatchesPlainRun(t *testing.T) {
	plain := runCLI(t, "-campaign", "testdata/smoke-campaign.json")
	dir := filepath.Join(t.TempDir(), "store")
	stored := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-store", dir)

	if !strings.Contains(string(stored), "ran 8 points, skipped 0 already complete (8/8 total)") {
		t.Fatalf("store status line missing:\n%s", stored)
	}
	// After the status line, the tables are byte-identical to a plain run.
	_, tables, ok := strings.Cut(string(stored), "\n")
	if !ok || tables != string(plain) {
		t.Errorf("store-backed tables differ from plain run\n--- plain ---\n%s\n--- stored ---\n%s", plain, tables)
	}

	// Resuming a complete store runs nothing and prints the same tables.
	resumed := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-store", dir, "-resume")
	if !strings.Contains(string(resumed), "ran 0 points, skipped 8 already complete") {
		t.Fatalf("resume of complete store reran points:\n%s", resumed)
	}
	_, tables, _ = strings.Cut(string(resumed), "\n")
	if tables != string(plain) {
		t.Error("resumed tables differ from plain run")
	}
}

func TestCampaignStoreCrashResumeViaShards(t *testing.T) {
	unsharded := runCLI(t, "-campaign", "testdata/smoke-campaign.json")
	dir := filepath.Join(t.TempDir(), "store")

	// Shard 0 runs and is then "killed": its segment loses its final
	// record's tail. Shard 1 runs in the same store with -resume.
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "0/2", "-store", dir)
	seg := filepath.Join(dir, "segment-0000.jsonl")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "0/2", "-store", dir, "-resume")
	if !strings.Contains(string(out), "ran 1 points, skipped 3 already complete") {
		t.Fatalf("torn segment not resumed:\n%s", out)
	}
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "1/2", "-store", dir, "-resume")

	// Merging the store directory prints exactly the unsharded tables.
	merged := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-merge", dir)
	if !bytes.Equal(unsharded, merged) {
		t.Errorf("store-merged output differs from unsharded run\n--- unsharded ---\n%s\n--- merged ---\n%s",
			unsharded, merged)
	}
}

func TestMergeAcceptsDirectoryOfPlainShardFiles(t *testing.T) {
	unsharded := runCLI(t, "-campaign", "testdata/smoke-campaign.json")
	dir := t.TempDir()
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "0/2",
		"-jsonl", filepath.Join(dir, "s0.jsonl"))
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "1/2",
		"-jsonl", filepath.Join(dir, "s1.jsonl"))
	merged := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-merge", dir)
	if !bytes.Equal(unsharded, merged) {
		t.Error("directory merge differs from unsharded run")
	}
}

func TestStoreFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	spec := "testdata/smoke-campaign.json"
	if err := run([]string{"-campaign", spec, "-resume"}, &buf); err == nil {
		t.Error("-resume without -store accepted")
	}
	if err := run([]string{"-campaign", spec, "-store", t.TempDir(), "-merge", "x"}, &buf); err == nil {
		t.Error("-store with -merge accepted")
	}
	if err := run([]string{"-campaign", spec, "-store", t.TempDir(), "-jsonl", "x"}, &buf); err == nil {
		t.Error("-store with -jsonl accepted")
	}
	if err := run([]string{"-experiment", "table1", "-store", "x"}, &buf); err == nil {
		t.Error("-store without -campaign accepted")
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := run([]string{"-campaign", spec, "-store", dir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-campaign", spec, "-store", dir}, &buf); err == nil {
		t.Error("re-creating an existing store without -resume accepted")
	}
	sharded := filepath.Join(t.TempDir(), "sharded")
	if err := run([]string{"-campaign", spec, "-shard", "0/2", "-store", sharded}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-campaign", spec, "-shard", "0/3", "-store", sharded, "-resume"}, &buf); err == nil {
		t.Error("resume with a shard layout mismatching the store manifest accepted")
	}
	if err := run([]string{"-campaign", spec, "-store", sharded, "-resume"}, &buf); err == nil {
		t.Error("unsharded resume of a multi-shard store accepted (could race live shard processes)")
	}
	if err := run([]string{"-campaign", spec, "-merge", t.TempDir()}, &buf); err == nil {
		t.Error("merging an empty directory accepted")
	}
}

func TestMergeRejectsStoreOfDifferentSpec(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-store", dir)

	// A spec differing only in seed has the same expansion shape, so only
	// the manifest digest can tell the results apart.
	other := filepath.Join(t.TempDir(), "other.json")
	data, err := os.ReadFile("testdata/smoke-campaign.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(other, bytes.Replace(data, []byte(`"seed": 9`), []byte(`"seed": 10`), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-campaign", other, "-merge", dir}, &buf); err == nil {
		t.Error("merged a store written by a different spec")
	} else if !strings.Contains(err.Error(), "different campaign spec") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestHelpExitsCleanly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(buf.String(), "-experiment") {
		t.Fatal("-h did not print usage")
	}
}

func TestRunRejectsUnknownExperimentAndBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig9"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-campaign", "testdata/smoke-campaign.json", "-shard", "0/2", "-merge", "x"}, &buf); err == nil {
		t.Error("-shard with -merge accepted")
	}
	if err := run([]string{"-campaign", "no-such-file.json"}, &buf); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := run([]string{"-experiment", "table1", "-shard", "0/4"}, &buf); err == nil {
		t.Error("-shard without -campaign accepted")
	}
}

// fleetOf starts n in-process ptgserve workers (the real service behind
// the real HTTP surface) and returns a -coordinate worker list.
func fleetOf(t *testing.T, n int) string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		s := ptgsched.NewService(ptgsched.ServiceOptions{Workers: 2})
		ts := httptest.NewServer(ptgsched.ServiceHandler(s))
		t.Cleanup(func() { ts.Close(); s.Close() })
		urls[i] = ts.URL
	}
	return strings.Join(urls, ",")
}

// TestCoordinateMatchesUnshardedOutput is the fleet-mode contract on the
// CLI surface: stdout of a coordinated 3-worker run is byte-identical to
// the unsharded local run.
func TestCoordinateMatchesUnshardedOutput(t *testing.T) {
	unsharded := runCLI(t, "-campaign", "testdata/smoke-campaign.json")
	coordinated := runCLI(t, "-campaign", "testdata/smoke-campaign.json",
		"-coordinate", fleetOf(t, 3), "-poll", "10ms")
	if !bytes.Equal(unsharded, coordinated) {
		t.Errorf("coordinated output differs from unsharded run\n--- unsharded ---\n%s\n--- coordinated ---\n%s",
			unsharded, coordinated)
	}
}

// TestCoordinateServesFleetStats spot-checks the -stats-addr endpoint
// shape by running a coordinated sweep with stats enabled (the endpoint
// lives only for the run, so the JSON contract is covered by the coord
// package; here the flag wiring must at least not break the run).
func TestCoordinateServesFleetStats(t *testing.T) {
	out := runCLI(t, "-campaign", "testdata/smoke-campaign.json",
		"-coordinate", fleetOf(t, 2), "-poll", "10ms", "-fleet-shards", "4",
		"-stats-addr", "127.0.0.1:0")
	if !strings.Contains(string(out), "Campaign") {
		t.Fatalf("coordinated run with -stats-addr printed no tables:\n%s", out)
	}
}

func TestCoordinateFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	spec := "testdata/smoke-campaign.json"
	if err := run([]string{"-coordinate", "h:1"}, &buf); err == nil {
		t.Error("-coordinate without -campaign accepted")
	}
	if err := run([]string{"-campaign", spec, "-fleet-shards", "2"}, &buf); err == nil {
		t.Error("-fleet-shards without -coordinate accepted")
	}
	if err := run([]string{"-campaign", spec, "-coordinate", "h:1", "-shard", "0/2"}, &buf); err == nil {
		t.Error("-coordinate with -shard accepted")
	}
	if err := run([]string{"-campaign", spec, "-coordinate", "h:1", "-store", t.TempDir()}, &buf); err == nil {
		t.Error("-coordinate with -store accepted")
	}
	if err := run([]string{"-campaign", spec, "-coordinate", " , "}, &buf); err == nil {
		t.Error("empty -coordinate worker list accepted")
	}
}

// TestEmptyEventTimelineReproducesStaticCampaigns is the dynamic
// machinery's hard guarantee at the CLI boundary: every checked-in paper
// campaign, reduced for test speed, prints byte-identical tables and
// JSONL whether its spec omits the events block or declares it
// explicitly empty.
func TestEmptyEventTimelineReproducesStaticCampaigns(t *testing.T) {
	figs, err := filepath.Glob(filepath.Join("..", "..", "examples", "campaigns", "fig*.json"))
	if err != nil || len(figs) == 0 {
		t.Fatalf("no fig campaigns found: %v", err)
	}
	dir := t.TempDir()
	for _, fig := range figs {
		data, err := os.ReadFile(fig)
		if err != nil {
			t.Fatal(err)
		}
		var spec map[string]any
		if err := json.Unmarshal(data, &spec); err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		spec["reps"] = 2
		spec["nptgs"] = []int{2}

		base := filepath.Base(fig)
		write := func(name string, m map[string]any) string {
			out, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, name)
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
			return path
		}
		static := write("static-"+base, spec)
		spec["events"] = map[string]any{}
		empty := write("empty-"+base, spec)

		// One shared JSONL path so the "wrote ... to <path>" stdout line
		// is identical too; the file is read back between the runs.
		jsonl := filepath.Join(dir, "out.jsonl")
		sOut := runCLI(t, "-campaign", static, "-jsonl", jsonl)
		sRecs, err := os.ReadFile(jsonl)
		if err != nil {
			t.Fatal(err)
		}
		eOut := runCLI(t, "-campaign", empty, "-jsonl", jsonl)
		eRecs, err := os.ReadFile(jsonl)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sOut, eOut) {
			t.Errorf("%s: tables differ with an explicitly empty events block\n--- static ---\n%s\n--- empty ---\n%s",
				base, sOut, eOut)
		}
		if !bytes.Equal(sRecs, eRecs) {
			t.Errorf("%s: JSONL differs with an explicitly empty events block", base)
		}
	}
}

func TestCampaignCacheOutputIsByteIdentical(t *testing.T) {
	// The cache must be invisible on the wire: stdout of a cold cached
	// run, a warm cached run, and an uncached run are byte-identical.
	uncached := runCLI(t, "-campaign", "testdata/smoke-campaign.json")
	dir := filepath.Join(t.TempDir(), "cache")
	cold := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-cache", dir)
	warm := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-cache", dir)
	if !bytes.Equal(uncached, cold) {
		t.Errorf("cold cached output differs from uncached run\n--- uncached ---\n%s\n--- cold ---\n%s", uncached, cold)
	}
	if !bytes.Equal(uncached, warm) {
		t.Errorf("warm cached output differs from uncached run\n--- uncached ---\n%s\n--- warm ---\n%s", uncached, warm)
	}
}

func TestCampaignCachePoisonedEntryFallsBack(t *testing.T) {
	// Corrupt one cached record on disk; the re-run must detect it and
	// recompute, printing byte-identical output.
	uncached := runCLI(t, "-campaign", "testdata/smoke-campaign.json")
	dir := filepath.Join(t.TempDir(), "cache")
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-cache", dir)

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v (err %v), want exactly 1", segs, err)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside the second record's makespan payload.
	lines := bytes.Split(b, []byte("\n"))
	i := bytes.Index(lines[2], []byte(`"makespan":[`))
	if i < 0 {
		t.Fatalf("no makespan field in record: %s", lines[2])
	}
	poison := append([]byte(nil), lines[2]...)
	for j := i; j < len(poison); j++ {
		if poison[j] >= '1' && poison[j] <= '8' {
			poison[j]++
			break
		}
	}
	lines[2] = poison
	if err := os.WriteFile(segs[0], bytes.Join(lines, []byte("\n")), 0o666); err != nil {
		t.Fatal(err)
	}

	again := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-cache", dir)
	if !bytes.Equal(uncached, again) {
		t.Errorf("output after cache poisoning differs from uncached run\n--- uncached ---\n%s\n--- poisoned ---\n%s", uncached, again)
	}
}

func TestCampaignCacheSharedAcrossShards(t *testing.T) {
	// Shards sharing one cache dir: running all shards cold, then the
	// unsharded campaign warm, must print the unsharded golden bytes.
	dir := filepath.Join(t.TempDir(), "cache")
	s0 := filepath.Join(t.TempDir(), "s0.jsonl")
	s1 := filepath.Join(t.TempDir(), "s1.jsonl")
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "0/2", "-jsonl", s0, "-cache", dir)
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "1/2", "-jsonl", s1, "-cache", dir)

	uncached := runCLI(t, "-campaign", "testdata/smoke-campaign.json")
	warm := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-cache", dir)
	if !bytes.Equal(uncached, warm) {
		t.Errorf("warm-from-shards output differs\n--- uncached ---\n%s\n--- warm ---\n%s", uncached, warm)
	}
}
