package main

// Golden CLI tests (see internal/clitest): ptgbench's stdout for fixed
// seeds is captured under testdata/*.golden; refresh with
// `go test ./cmd/ptgbench -update`. The shard test additionally asserts
// the core campaign promise on the wire: -shard 0/2 and 1/2 recombined
// through -merge print byte-for-byte what the unsharded run prints.

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"ptgsched/internal/clitest"
)

func runCLI(t *testing.T, args ...string) []byte {
	t.Helper()
	return clitest.Run(t, run, args...)
}

func TestGoldenTable1(t *testing.T) {
	clitest.CheckGolden(t, "table1.golden", runCLI(t, "-experiment", "table1"))
}

func TestGoldenCampaign(t *testing.T) {
	clitest.CheckGolden(t, "campaign.golden",
		runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-workers", "2"))
}

func TestCampaignShardsMergeToUnshardedOutput(t *testing.T) {
	unsharded := runCLI(t, "-campaign", "testdata/smoke-campaign.json")

	dir := t.TempDir()
	s0 := filepath.Join(dir, "shard0.jsonl")
	s1 := filepath.Join(dir, "shard1.jsonl")
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "0/2", "-jsonl", s0)
	runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "1/2", "-jsonl", s1)
	merged := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-merge", s1+","+s0)

	if !bytes.Equal(unsharded, merged) {
		t.Errorf("merged shard output differs from unsharded run\n--- unsharded ---\n%s\n--- merged ---\n%s",
			unsharded, merged)
	}
}

func TestCampaignShardStreamsJSONLToStdout(t *testing.T) {
	out := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-shard", "0/4")
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 2 { // 8 points, shard 0 of 4
		t.Fatalf("%d JSONL lines, want 2:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"index":`) {
			t.Fatalf("not a JSONL record: %s", l)
		}
	}
}

func TestCampaignUnshardedHonorsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "all.jsonl")
	out := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-jsonl", path)
	if !strings.Contains(string(out), "wrote 8 of 8 points") {
		t.Fatalf("unsharded -jsonl not reported:\n%s", out)
	}
	var buf bytes.Buffer
	if err := run([]string{"-campaign", "testdata/smoke-campaign.json", "-merge", path}, &buf); err != nil {
		t.Fatalf("merging the unsharded JSONL: %v", err)
	}
}

func TestHelpExitsCleanly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(buf.String(), "-experiment") {
		t.Fatal("-h did not print usage")
	}
}

func TestRunRejectsUnknownExperimentAndBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig9"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-campaign", "testdata/smoke-campaign.json", "-shard", "0/2", "-merge", "x"}, &buf); err == nil {
		t.Error("-shard with -merge accepted")
	}
	if err := run([]string{"-campaign", "no-such-file.json"}, &buf); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := run([]string{"-experiment", "table1", "-shard", "0/4"}, &buf); err == nil {
		t.Error("-shard without -campaign accepted")
	}
}
