// Command ptgbench regenerates the tables and figures of the paper's
// evaluation (§7) and runs declarative campaign sweeps. Each experiment
// prints the same rows/series the paper reports; absolute values depend on
// the simulated substrate, the *shape* (strategy rankings, trends in the
// number of PTGs, the µ trade-off) is the reproduction target.
//
// Usage:
//
//	ptgbench -experiment table1
//	ptgbench -experiment fig2 -reps 25 -seed 42
//	ptgbench -experiment fig3 -csv fig3.csv
//	ptgbench -experiment mu-calibration
//	ptgbench -experiment ablation
//
// Campaign mode sweeps a declarative scenario spec (see examples/ and the
// README's campaign section). The pipeline is streaming end to end:
// points are generated lazily from their global index, completed results
// feed the incremental aggregator as they arrive, and the spec's
// cardinality (computed arithmetically before anything expands) plus
// periodic progress — per shard, read off the store's done bitmap when a
// store is attached — are reported to stderr, so stdout stays exactly the
// tables/JSONL. An unsharded run prints the aggregated summary tables; a
// -shard run streams its shard's per-point results as JSONL (to -jsonl or
// stdout); -merge recombines shard files — or whole directories of
// *.jsonl segments, including store directories — into the same summary
// the unsharded run prints, bit-identically:
//
//	ptgbench -campaign examples/campaign.json
//	ptgbench -campaign examples/campaign.json -shard 0/4 -jsonl shard0.jsonl
//	ptgbench -campaign examples/campaign.json -merge shard0.jsonl,shard1.jsonl,shard2.jsonl,shard3.jsonl
//
// With -store every completed point is appended to a durable,
// crash-tolerant store directory (see internal/store and
// docs/ARCHITECTURE.md); a killed sweep resumes exactly where it stopped
// with -resume and still aggregates bit-identically:
//
//	ptgbench -campaign examples/campaign.json -store run/          # killed...
//	ptgbench -campaign examples/campaign.json -store run/ -resume  # ...continues
//	ptgbench -campaign examples/campaign.json -shard 0/2 -store run/
//	ptgbench -campaign examples/campaign.json -shard 1/2 -store run/ -resume
//	ptgbench -campaign examples/campaign.json -merge run/          # final tables
//
// Fleet mode (-coordinate) distributes a campaign over remote ptgserve
// workers with fault tolerance: shard leases are dispatched over the
// /v1/jobs API, transient failures retried with capped backoff, dead or
// stalled workers' leases reassigned to survivors, and the deduplicated
// streaming merge prints tables bit-identical to a local run. The fleet
// narrative and robustness counters go to stderr; -stats-addr serves them
// as JSON while the campaign runs:
//
//	ptgbench -campaign examples/campaign.json \
//	         -coordinate host1:8080,host2:8080,host3:8080 \
//	         -fleet-shards 6 -stats-addr :9090
//
// The bench experiment runs the benchmark-regression suite (the same one
// behind `go test -bench`, see internal/benchsuite) and compares it with
// the frozen seed baseline; -json regenerates BENCH_mapping.json:
//
//	ptgbench -experiment bench -json BENCH_mapping.json
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ptgsched"
)

// errUsage signals a flag-parse failure the flag package already reported
// to the output writer; main exits nonzero without printing it twice.
var errUsage = errors.New("usage")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, "ptgbench:", err)
		}
		os.Exit(1)
	}
}

// run executes one ptgbench invocation, writing its report to w. It is
// the testable core behind main.
func run(argv []string, w io.Writer) error {
	fs := flag.NewFlagSet("ptgbench", flag.ContinueOnError)
	var (
		name         = fs.String("experiment", "table1", "table1, fig1, fig2, fig3, fig4, fig5, mu-calibration, ablation, dynamic or bench")
		campaignPath = fs.String("campaign", "", "run the declarative campaign spec at this path instead of a named experiment")
		shard        = fs.String("shard", "", "campaign: run only shard i/n and stream per-point JSONL results")
		jsonl        = fs.String("jsonl", "", "campaign: write the shard's JSONL results to this file (default stdout)")
		merge        = fs.String("merge", "", "campaign: comma-separated shard JSONL files or directories of *.jsonl segments to aggregate instead of running")
		storeDir     = fs.String("store", "", "campaign: append results to a durable store at this directory (crash-safe; resumable)")
		cacheDir     = fs.String("cache", "", "campaign: content-addressed result cache directory (created if missing) consulted before computing points and published after; shared safely across processes")
		resume       = fs.Bool("resume", false, "campaign: open the existing -store and run only its pending points")
		queryFlag    = fs.Bool("query", false, "campaign: read the -store back through the indexed query path instead of sweeping")
		qFamily      = fs.String("family", "", "query: only cells of this PTG family (random, fft, strassen)")
		qStrategy    = fs.String("strategy", "", "query: project results to this strategy's column (paper name, e.g. WPS-work)")
		qFrom        = fs.Int("from", 0, "query: first global point index of the selection")
		qTo          = fs.Int("to", -1, "query: end of the selection, exclusive (default: end of the expansion; 0 is the empty range)")
		qFormat      = fs.String("format", "table", "query: table (aggregate rows) or jsonl (matching records)")
		qFullScan    = fs.Bool("fullscan", false, "query: bypass the segment indexes and decode every record (differential check)")
		coordinate   = fs.String("coordinate", "", "campaign: comma-separated ptgserve worker addresses to distribute the sweep over (fault-tolerant fleet mode)")
		fleetShards  = fs.Int("fleet-shards", 0, "coordinate: shard leases to split the campaign into (default: one per worker)")
		pollEvery    = fs.Duration("poll", 0, "coordinate: worker progress poll interval (default: 500ms)")
		stallAfter   = fs.Duration("stall-timeout", 0, "coordinate: reassign a lease whose progress is frozen this long (default: 2m)")
		statsAddr    = fs.String("stats-addr", "", "coordinate: also serve the coordinator's /v1/stats on this address")
		reps         = fs.Int("reps", 25, "random PTG combinations per point (paper: 25)")
		seed         = fs.Int64("seed", 42, "base random seed")
		workers      = fs.Int("workers", 0, "concurrent runs (default: GOMAXPROCS)")
		csvPath      = fs.String("csv", "", "also write the aggregated results to this CSV file")
		jsonPath     = fs.String("json", "", "bench: write the regression report to this JSON file (e.g. BENCH_mapping.json)")
		cpuProfile   = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile   = fs.String("memprofile", "", "write a pprof allocation profile (after a final GC) to this file on exit")
	)
	fs.SetOutput(w)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return errUsage
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "ptgbench: wrote CPU profile to %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ptgbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live + cumulative allocs accurately
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ptgbench: memprofile: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "ptgbench: wrote heap profile to %s\n", path)
		}()
	}

	if *queryFlag {
		if *campaignPath == "" || *storeDir == "" {
			return fmt.Errorf("-query requires -campaign and -store")
		}
		if *shard != "" || *jsonl != "" || *merge != "" || *resume || *coordinate != "" || *cacheDir != "" {
			return fmt.Errorf("-query is exclusive with -shard, -jsonl, -merge, -resume, -coordinate and -cache (it only reads the store back)")
		}
		return queryMode(w, *campaignPath, *storeDir, queryOpts{
			family: *qFamily, strategy: *qStrategy, from: *qFrom, to: *qTo,
			format: *qFormat, fullScan: *qFullScan,
		})
	}
	if *qFamily != "" || *qStrategy != "" || *qFrom != 0 || *qTo != -1 || *qFormat != "table" || *qFullScan {
		return fmt.Errorf("-family, -strategy, -from, -to, -format and -fullscan require -query")
	}
	if *coordinate != "" {
		if *campaignPath == "" {
			return fmt.Errorf("-coordinate requires -campaign")
		}
		if *shard != "" || *jsonl != "" || *merge != "" || *storeDir != "" || *resume {
			return fmt.Errorf("-coordinate is exclusive with -shard, -jsonl, -merge, -store and -resume (the fleet merge is streaming and in-memory)")
		}
		return coordinateMode(w, *campaignPath, *coordinate, *fleetShards, *workers, *pollEvery, *stallAfter, *statsAddr, *cacheDir)
	}
	if *fleetShards != 0 || *pollEvery != 0 || *stallAfter != 0 || *statsAddr != "" {
		return fmt.Errorf("-fleet-shards, -poll, -stall-timeout and -stats-addr require -coordinate")
	}
	if *campaignPath != "" {
		return campaignMode(w, *campaignPath, *shard, *jsonl, *merge, *storeDir, *resume, *workers, *cacheDir)
	}
	if *shard != "" || *jsonl != "" || *merge != "" || *storeDir != "" || *resume || *cacheDir != "" {
		return fmt.Errorf("-shard, -jsonl, -merge, -store, -resume and -cache require -campaign")
	}

	switch strings.ToLower(*name) {
	case "table1":
		return table1(w)
	case "fig1":
		return fig1(w)
	case "fig2":
		return campaign(w, ptgsched.Fig2Config(*seed, *reps), *workers, *csvPath,
			"Figure 2: µ sweep of WPS-work on random PTGs",
			ptgsched.MetricUnfairness, ptgsched.MetricAvgMakespan)
	case "fig3":
		return campaign(w, ptgsched.Fig3Config(*seed, *reps), *workers, *csvPath,
			"Figure 3: 8 strategies on random PTGs",
			ptgsched.MetricUnfairness, ptgsched.MetricRelMakespan)
	case "fig4":
		return campaign(w, ptgsched.Fig4Config(*seed, *reps), *workers, *csvPath,
			"Figure 4: 8 strategies on FFT PTGs",
			ptgsched.MetricUnfairness, ptgsched.MetricRelMakespan)
	case "fig5":
		return campaign(w, ptgsched.Fig5Config(*seed, *reps), *workers, *csvPath,
			"Figure 5: 6 strategies on Strassen PTGs",
			ptgsched.MetricUnfairness, ptgsched.MetricRelMakespan)
	case "mu-calibration":
		return muCalibration(w, *seed, *reps, *workers)
	case "ablation":
		return ablation(w, *seed, *reps, *workers)
	case "dynamic":
		return dynamic(w, *seed, *reps)
	case "bench":
		return bench(w, *jsonPath)
	default:
		return fmt.Errorf("unknown experiment %q", *name)
	}
}

// progressInterval paces the stderr progress reports of long sweeps; a
// sweep finishing inside one interval prints nothing.
const progressInterval = 10 * time.Second

// startProgress reports snapshot() to stderr every progressInterval until
// the returned stop function is called. Progress goes to stderr so the
// table/JSONL output on stdout stays byte-identical, progress or not.
func startProgress(snapshot func() string) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(progressInterval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(os.Stderr, "ptgbench: "+snapshot())
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// campaignMode drives the declarative scenario engine: sweep a spec
// (optionally into a durable store), run one shard of it, or merge shard
// outputs. The whole path is streaming — points are generated lazily,
// completed results feed the incremental aggregator (or the JSONL sink)
// as they arrive, and nothing proportional to the sweep is materialized
// except where the user asked for an in-memory shard result file.
// openCache opens the shared result cache, returning it with a finish
// function that seals the writer segment and prints the cache counters as
// one stderr stats line (stdout stays byte-identical with or without a
// cache — that is the whole point).
func openCache(dir string) (*ptgsched.CampaignCache, func(), error) {
	ch, err := ptgsched.OpenCampaignCache(dir)
	if err != nil {
		return nil, nil, err
	}
	finish := func() {
		if err := ch.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ptgbench: cache %s: %v\n", dir, err)
		}
		st := ch.Stats()
		fmt.Fprintf(os.Stderr, "ptgbench: cache %s: hits=%d misses=%d verify_failures=%d entries=%d\n",
			dir, st.Hits, st.Misses, st.VerifyFailures, st.Entries)
		for _, ve := range ch.VerifyErrors() {
			fmt.Fprintf(os.Stderr, "ptgbench: %s\n", ve.Error())
		}
	}
	return ch, finish, nil
}

func campaignMode(w io.Writer, specPath, shard, jsonlPath, merge, storeDir string, resume bool, workers int, cacheDir string) error {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	spec, err := ptgsched.ParseCampaignSpec(data)
	if err != nil {
		return err
	}
	// Report the arithmetic cardinality before expanding anything, so the
	// operator of a multi-million-point sweep sees its size immediately.
	cells, points, err := ptgsched.EstimateCampaignPoints(spec)
	if err != nil {
		return err
	}
	name := spec.Name
	if name == "" {
		name = specPath
	}
	fmt.Fprintf(os.Stderr, "ptgbench: campaign %s: %d cells, %d points\n", name, cells, points)
	e, err := ptgsched.ExpandCampaign(spec)
	if err != nil {
		return err
	}
	if resume && storeDir == "" {
		return fmt.Errorf("-resume requires -store")
	}
	if storeDir != "" && merge != "" {
		return fmt.Errorf("-store and -merge are mutually exclusive (merge reads the store directory directly)")
	}
	if storeDir != "" && jsonlPath != "" {
		return fmt.Errorf("-store already persists per-point JSONL; use -merge %s to read it back instead of -jsonl", storeDir)
	}

	if merge != "" {
		if shard != "" {
			return fmt.Errorf("-merge and -shard are mutually exclusive")
		}
		if cacheDir != "" {
			return fmt.Errorf("-merge and -cache are mutually exclusive (merging only re-reads results)")
		}
		return mergeMode(w, specPath, e, spec, merge, jsonlPath)
	}

	var memo ptgsched.CampaignMemo
	if cacheDir != "" {
		ch, finish, err := openCache(cacheDir)
		if err != nil {
			return err
		}
		defer finish()
		memo = ch.Bind(e)
	}

	if storeDir != "" {
		return storeMode(w, specPath, e, storeDir, shard, resume, workers, memo)
	}

	if shard != "" {
		idx, n, err := ptgsched.ParseCampaignShard(shard)
		if err != nil {
			return err
		}
		set, err := e.Shard(idx, n)
		if err != nil {
			return err
		}
		// A shard's results are the deliverable (the JSONL wire artifact),
		// so this path materializes them — in point order, bounded by the
		// user's own shard split.
		results := e.RunMemo(set, workers, memo)
		out := w
		if jsonlPath != "" {
			f, err := os.Create(jsonlPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := ptgsched.WriteCampaignJSONL(out, results); err != nil {
			return err
		}
		if jsonlPath != "" {
			fmt.Fprintf(w, "wrote %d of %d points (shard %s) to %s\n",
				len(results), e.NumPoints(), shard, jsonlPath)
		}
		return nil
	}

	// Unsharded run: stream every completed point straight into the
	// incremental aggregator (and the optional JSONL sink, in completion
	// order — aggregation and -merge reorder by index, so order on disk
	// never matters).
	var sink *bufio.Writer
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = bufio.NewWriter(f)
	}
	set := e.All()
	agg := e.NewAggregator()
	var done atomic.Int64
	stop := startProgress(func() string {
		return fmt.Sprintf("campaign %s: %d/%d points", name, done.Load(), set.Len())
	})
	var lineBuf []byte // reused across emits; emit calls are serialized
	err = e.RunEachMemo(set, workers, memo, func(r ptgsched.CampaignPointResult) error {
		if sink != nil {
			var err error
			lineBuf, err = ptgsched.AppendCampaignJSONL(lineBuf[:0], r)
			if err != nil {
				return err
			}
			if _, err := sink.Write(lineBuf); err != nil {
				return err
			}
		}
		if err := agg.Add(r); err != nil {
			return err
		}
		done.Add(1)
		return nil
	})
	stop()
	if err != nil {
		return err
	}
	if sink != nil {
		if err := sink.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d of %d points to %s\n", agg.Added(), e.NumPoints(), jsonlPath)
	}
	tables, err := agg.Tables()
	if err != nil {
		return err
	}
	return renderCampaign(w, specPath, e, tables)
}

// coordinateMode distributes the campaign over a fleet of remote ptgserve
// workers: the spec is split into shard leases, each lease dispatched as
// an asynchronous /v1/jobs job, progress polled, dead or stalled workers'
// leases reassigned, and results streamed back through the incremental
// aggregator — deduplicated, so re-executed shards never double-count.
// stdout carries exactly the tables an unsharded local run prints
// (bit-identically); the fleet narrative (leases, deaths, reassignments)
// and the final robustness counters go to stderr.
func coordinateMode(w io.Writer, specPath, workerList string, shards, jobWorkers int, poll, stall time.Duration, statsAddr, cacheDir string) error {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	var ch *ptgsched.CampaignCache
	if cacheDir != "" {
		var finish func()
		if ch, finish, err = openCache(cacheDir); err != nil {
			return err
		}
		defer finish()
	}
	var workers []string
	for _, addr := range strings.Split(workerList, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			workers = append(workers, addr)
		}
	}
	c, err := ptgsched.NewFleetCoordinator(data, workers, ptgsched.FleetOptions{
		Shards:       shards,
		JobWorkers:   jobWorkers,
		PollInterval: poll,
		StallTimeout: stall,
		Cache:        ch,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ptgbench: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	e := c.Expansion()
	fmt.Fprintf(os.Stderr, "ptgbench: coordinating %d points over %d workers\n",
		e.NumPoints(), len(workers))
	if statsAddr != "" {
		ln, err := net.Listen("tcp", statsAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "ptgbench: fleet stats on http://%s/v1/stats\n", ln.Addr())
		go http.Serve(ln, c.StatsHandler())
	}
	stop := startProgress(func() string {
		p := c.Progress()
		return fmt.Sprintf("fleet: %d/%d points, %d/%d shards merged",
			p.MergedPoints, p.Points, p.MergedShards, p.Shards)
	})
	tables, err := c.Run(context.Background())
	stop()
	cs := c.Counters()
	fmt.Fprintf(os.Stderr,
		"ptgbench: fleet done: %d dispatches, %d retries, %d reassignments, %d worker deaths, %d duplicate points skipped, %d points seeded from cache\n",
		cs.Dispatches, cs.Retries, cs.Reassignments, cs.WorkerDeaths, cs.DuplicatePoints, cs.CacheSeededPoints)
	if err != nil {
		return err
	}
	return renderCampaign(w, specPath, e, tables)
}

// mergeMode recombines shard outputs (files or directories of segments)
// by streaming every record into the incremental aggregator — a
// multi-million-point store directory merges without the result set ever
// being resident. With -jsonl the records are additionally copied to one
// combined file, in read order.
func mergeMode(w io.Writer, specPath string, e *ptgsched.CampaignExpansion, spec *ptgsched.CampaignSpec, merge, jsonlPath string) error {
	paths, err := mergeInputs(merge, ptgsched.CampaignSpecDigest(spec))
	if err != nil {
		return err
	}
	var sink *bufio.Writer
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = bufio.NewWriter(f)
	}
	var lineBuf []byte // reused across records; the merge loop is sequential
	agg := e.NewAggregator()
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = ptgsched.ReadCampaignJSONLFunc(f, func(r ptgsched.CampaignPointResult) error {
			if sink != nil {
				var err error
				lineBuf, err = ptgsched.AppendCampaignJSONL(lineBuf[:0], r)
				if err != nil {
					return err
				}
				if _, err := sink.Write(lineBuf); err != nil {
					return err
				}
			}
			return agg.Add(r)
		})
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if sink != nil {
		if err := sink.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d of %d points to %s\n", agg.Added(), e.NumPoints(), jsonlPath)
	}
	tables, err := agg.Tables()
	if err != nil {
		return err
	}
	return renderCampaign(w, specPath, e, tables)
}

// mergeInputs expands the -merge argument: each comma-separated entry is
// either one JSONL file or a directory whose *.jsonl segments (a store
// directory, or any folder of shard outputs) are merged in name order —
// aggregation reorders by point index, so segment order never matters. A
// directory carrying a store manifest must have been written by the same
// campaign spec: two specs can share an expansion's shape (e.g. differ
// only in seed), so the aggregate-time congruence checks alone cannot
// catch results belonging to a different sweep.
func mergeInputs(merge, specDigest string) ([]string, error) {
	var paths []string
	for _, entry := range strings.Split(merge, ",") {
		entry = strings.TrimSpace(entry)
		fi, err := os.Stat(entry)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			paths = append(paths, entry)
			continue
		}
		if mb, err := os.ReadFile(filepath.Join(entry, "manifest.json")); err == nil {
			var man ptgsched.CampaignStoreManifest
			if err := json.Unmarshal(mb, &man); err != nil {
				return nil, fmt.Errorf("%s: invalid store manifest: %w", entry, err)
			}
			if man.SpecDigest != specDigest {
				return nil, fmt.Errorf("store %s was written by a different campaign spec (digest %.12s, this spec has %.12s)",
					entry, man.SpecDigest, specDigest)
			}
		}
		// ReadDir + suffix filter, not Glob: the directory name is user
		// input and may contain glob metacharacters.
		entries, err := os.ReadDir(entry)
		if err != nil {
			return nil, err
		}
		var segs []string
		for _, ent := range entries {
			if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".jsonl") {
				segs = append(segs, filepath.Join(entry, ent.Name()))
			}
		}
		if len(segs) == 0 {
			return nil, fmt.Errorf("%s: no *.jsonl segments to merge", entry)
		}
		sort.Strings(segs)
		paths = append(paths, segs...)
	}
	return paths, nil
}

// storeMode sweeps into a durable store: create (or, with resume, reopen)
// the store, run the pending points of the selected shard (or the whole
// expansion), and — when the store is complete — print the aggregated
// tables. A killed run is continued by the same invocation plus -resume.
// During the sweep, per-shard progress (read straight off the store's
// done bitmap) is reported to stderr every few seconds.
func storeMode(w io.Writer, specPath string, e *ptgsched.CampaignExpansion, dir, shard string, resume bool, workers int, memo ptgsched.CampaignMemo) error {
	shards := 1
	set := e.All()
	if shard != "" {
		idx, n, err := ptgsched.ParseCampaignShard(shard)
		if err != nil {
			return err
		}
		shards = n
		if set, err = e.Shard(idx, n); err != nil {
			return err
		}
	}

	var st *ptgsched.CampaignStore
	var err error
	if resume {
		st, err = ptgsched.OpenCampaignStore(dir, e)
	} else {
		st, err = ptgsched.CreateCampaignStore(dir, e, shards)
	}
	if err != nil {
		return err
	}
	defer st.Close()
	// The manifest pins the partition: a sweep that does not match it
	// could compute points another live shard process owns — duplicate
	// appends across processes make the store unrecoverable.
	if manShards := st.Manifest().Shards; shard != "" && manShards != shards {
		return fmt.Errorf("store %s is partitioned into %d shards, -shard says %d (rerun with -shard i/%d)",
			dir, manShards, shards, manShards)
	} else if shard == "" && manShards != 1 {
		return fmt.Errorf("store %s is partitioned into %d shards; resume each shard with -shard i/%d, then aggregate with -merge %s",
			dir, manShards, manShards, dir)
	}

	if memo != nil {
		st.UseMemo(memo)
		if resume {
			// A resumed store is a cache source: export what earlier runs
			// already proved, so other campaigns sharing the cache skip it.
			if n, err := st.PublishTo(memo); err != nil {
				return err
			} else if n > 0 {
				fmt.Fprintf(os.Stderr, "ptgbench: published %d completed store points to the cache\n", n)
			}
		}
	}
	stop := startProgress(func() string {
		pr := st.Progress()
		b := fmt.Sprintf("store %s: %d/%d points", dir, pr.Completed, pr.Total)
		for _, sh := range pr.Shards {
			b += fmt.Sprintf(" [shard %d: %d/%d]", sh.Index, sh.Completed, sh.Points)
		}
		return b
	})
	ran, skipped, err := st.Sweep(set, workers)
	stop()
	if err != nil {
		return err
	}
	if err := st.Sync(); err != nil {
		return err
	}
	pr := st.Progress()
	fmt.Fprintf(w, "store %s: ran %d points, skipped %d already complete (%d/%d total)\n",
		dir, ran, skipped, pr.Completed, pr.Total)
	if pr.Completed < pr.Total {
		for _, sh := range pr.Shards {
			fmt.Fprintf(w, "  shard %d/%d: %d/%d points\n", sh.Index, len(pr.Shards), sh.Completed, sh.Points)
		}
		fmt.Fprintf(w, "finish the remaining shards, then aggregate with -merge %s\n", dir)
		return nil
	}
	// The store aggregates by re-scanning its segments into the
	// incremental aggregator; completed results are never resident.
	tables, err := st.Aggregate()
	if err != nil {
		return err
	}
	return renderCampaign(w, specPath, e, tables)
}

// renderCampaign prints every cell's aggregated summary tables.
func renderCampaign(w io.Writer, specPath string, e *ptgsched.CampaignExpansion, tables []ptgsched.CampaignTable) error {
	title := e.Spec.Name
	if title == "" {
		title = specPath
	}
	fmt.Fprintf(w, "Campaign %s: %d cells, %d points\n", title, len(e.Cells), e.NumPoints())
	for _, tb := range tables {
		fmt.Fprintf(w, "\n--- cell %s ---\n", tb.Cell.Label)
		for _, m := range []ptgsched.ExperimentMetric{
			ptgsched.MetricUnfairness, ptgsched.MetricAvgMakespan, ptgsched.MetricRelMakespan,
		} {
			if err := tb.Result.RenderTable(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// table1 prints the platform inventory of Table 1 plus the derived
// quantities quoted in §2.
func table1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: multi-cluster subsets of the Grid'5000 platform")
	fmt.Fprintf(w, "%-8s %-10s %6s %9s\n", "Site", "Cluster", "#proc", "GFlop/s")
	for _, pf := range ptgsched.Grid5000Sites() {
		for i, c := range pf.Clusters {
			site := ""
			if i == 0 {
				site = pf.Name
			}
			fmt.Fprintf(w, "%-8s %-10s %6d %9.3f\n", site, c.Name, c.Procs, c.Speed)
		}
	}
	fmt.Fprintln(w, "\nDerived (§2):")
	fmt.Fprintf(w, "%-8s %6s %14s %15s %s\n", "Site", "#proc", "heterogeneity", "power (GF/s)", "topology")
	for _, pf := range ptgsched.Grid5000Sites() {
		topo := "per-cluster switches"
		if pf.SharedSwitch {
			topo = "shared switch"
		}
		fmt.Fprintf(w, "%-8s %6d %13.1f%% %15.1f %s\n",
			pf.Name, pf.TotalProcs(), pf.Heterogeneity()*100, pf.TotalPower(), topo)
	}
	return nil
}

// fig1 reproduces the illustration of §5: two PTGs on two processors, the
// global ordering postpones the small application while the ready-task
// ordering does not.
func fig1(w io.Writer) error {
	fmt.Fprintln(w, "Figure 1: global ordering vs ready-task ordering")
	fmt.Fprintln(w, "(two PTGs on a 2-processor cluster, one processor each)")
	pf := ptgsched.NewPlatform("fig1", true, ptgsched.ClusterSpec{Name: "c0", Procs: 2, Speed: 1})
	mk := func(name string, works ...float64) *ptgsched.Graph {
		g := ptgsched.NewGraph(name)
		var prev *ptgsched.Task
		for i, wk := range works {
			t := g.AddTask(fmt.Sprintf("%s%d", name, i), 1, wk, 0)
			if prev != nil {
				g.MustAddEdge(prev, t, 0)
			}
			prev = t
		}
		return g
	}
	for _, ordering := range []ptgsched.MapOptions{
		{Ordering: ptgsched.GlobalOrdering},
		{Ordering: ptgsched.ReadyTasksOrdering},
	} {
		big, small := mk("big", 10, 5), mk("small", 2, 2)
		sched := ptgsched.NewScheduler(pf)
		sched.MapOptions = ordering
		res := sched.Schedule([]*ptgsched.Graph{big, small}, ptgsched.ES())
		fmt.Fprintf(w, "\n--- %v ordering ---\n", ordering.Ordering)
		fmt.Fprintf(w, "big PTG makespan:   %6.2f s\n", res.Makespan(0))
		fmt.Fprintf(w, "small PTG makespan: %6.2f s\n", res.Makespan(1))
		if err := ptgsched.WriteGantt(w, res.Schedule, 60); err != nil {
			return err
		}
	}
	return nil
}

func campaign(w io.Writer, cfg ptgsched.ExperimentConfig, workers int, csvPath, title string, metricsToShow ...ptgsched.ExperimentMetric) error {
	cfg.Workers = workers
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "(%d combinations × %d platforms = %d runs per point)\n\n",
		cfg.Reps, 4, cfg.Reps*4)
	res := ptgsched.RunExperiment(cfg)
	for _, m := range metricsToShow {
		if err := res.RenderTable(w, m); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", csvPath)
	}
	return nil
}

// muCalibration reproduces the textual µ calibration of §7 for the three
// WPS variants on their relevant families.
func muCalibration(w io.Writer, seed int64, reps, workers int) error {
	cases := []struct {
		char   ptgsched.Characteristic
		family ptgsched.PTGFamily
	}{
		{ptgsched.Work, ptgsched.FamilyRandom},
		{ptgsched.CriticalPath, ptgsched.FamilyRandom},
		{ptgsched.Width, ptgsched.FamilyRandom},
		{ptgsched.Width, ptgsched.FamilyFFT},
	}
	for _, c := range cases {
		cfg := ptgsched.MuCalibrationConfig(c.char, c.family, seed, reps)
		cfg.Workers = workers
		fmt.Fprintf(w, "µ calibration: WPS-%s on %s PTGs (paper's choice: µ=%.1f)\n",
			c.char, c.family, ptgsched.DefaultMu(c.char, c.family))
		res := ptgsched.RunExperiment(cfg)
		if err := res.RenderTable(w, ptgsched.MetricUnfairness); err != nil {
			return err
		}
		if err := res.RenderTable(w, ptgsched.MetricAvgMakespan); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ablation quantifies the mapper's design choices: ready-task vs
// global ordering and packing on/off, on the paper's random workload.
func ablation(w io.Writer, seed int64, reps, workers int) error {
	fmt.Fprintln(w, "Ablation: mapping design choices on random PTGs, ES strategy")
	variants := []struct {
		label string
		opts  ptgsched.MapOptions
	}{
		{"ready+packing", ptgsched.MapOptions{}},
		{"ready,no-pack", ptgsched.MapOptions{NoPacking: true}},
		{"global+packing", ptgsched.MapOptions{Ordering: ptgsched.GlobalOrdering}},
		{"global,no-pack", ptgsched.MapOptions{Ordering: ptgsched.GlobalOrdering, NoPacking: true}},
	}
	nptgs := []int{2, 6, 10}
	fmt.Fprintf(w, "%-16s %8s %14s %14s\n", "variant", "#PTGs", "unfairness", "makespan (s)")
	for _, v := range variants {
		for _, n := range nptgs {
			unf, mak := ablationPoint(v.opts, n, seed, reps, workers)
			fmt.Fprintf(w, "%-16s %8d %14.3f %14.1f\n", v.label, n, unf, mak)
		}
	}
	return nil
}

func ablationPoint(opts ptgsched.MapOptions, n int, seed int64, reps, workers int) (unfairness, makespan float64) {
	if workers <= 0 {
		workers = 4
	}
	var unfSum, makSum float64
	count := 0
	for rep := 0; rep < reps; rep++ {
		for _, pf := range ptgsched.Grid5000Sites() {
			r := rand.New(rand.NewSource(seed + int64(rep)*1009 + int64(n)))
			graphs := make([]*ptgsched.Graph, n)
			for i := range graphs {
				graphs[i] = ptgsched.GeneratePTG(ptgsched.FamilyRandom, r)
			}
			sched := ptgsched.NewScheduler(pf)
			sched.MapOptions = opts
			own := make([]float64, n)
			for i, g := range graphs {
				own[i] = sched.ScheduleAlone(g)
			}
			res := sched.Schedule(graphs, ptgsched.ES())
			ev := res.Evaluate(own)
			unfSum += ev.Unfairness
			makSum += ev.Makespan
			count++
		}
	}
	return unfSum / float64(count), makSum / float64(count)
}

// dynamic explores the paper's future-work direction (§8): applications
// with different submission times, constraints recomputed online. Reports
// mean flow time and flow-time unfairness for the online strategies.
func dynamic(w io.Writer, seed int64, reps int) error {
	fmt.Fprintln(w, "Dynamic submissions (§8 future work): Poisson arrivals, online rebalancing")
	strategies := []struct {
		label string
		opts  ptgsched.OnlineOptions
	}{
		{"S", ptgsched.OnlineOptions{Strategy: ptgsched.S()}},
		{"ES", ptgsched.OnlineOptions{Strategy: ptgsched.ES()}},
		{"WPS-work", ptgsched.OnlineOptions{Strategy: ptgsched.WPS(ptgsched.Work, 0.7)}},
		{"WPS-work/no-rebal", ptgsched.OnlineOptions{
			Strategy:                ptgsched.WPS(ptgsched.Work, 0.7),
			NoRebalanceOnCompletion: true,
		}},
	}
	counts := []int{4, 8, 12}
	fmt.Fprintf(w, "%-18s %6s %16s %18s %12s\n",
		"strategy", "#apps", "mean flow (s)", "flow stddev (s)", "rebalances")
	for _, st := range strategies {
		for _, n := range counts {
			var flows []float64
			rebal := 0
			for rep := 0; rep < reps; rep++ {
				for pi, pf := range ptgsched.Grid5000Sites() {
					r := rand.New(rand.NewSource(seed + int64(rep)*997 + int64(n)*13 + int64(pi)))
					arrivals := ptgsched.GenerateWorkload(ptgsched.WorkloadSpec{
						Family:  ptgsched.FamilyRandom,
						Count:   n,
						Process: ptgsched.PoissonArrivals,
						Rate:    0.25,
					}, r)
					res := ptgsched.ScheduleOnline(pf, arrivals, st.opts)
					for _, app := range res.Apps {
						flows = append(flows, app.FlowTime())
					}
					rebal += res.Rebalances
				}
			}
			mean, sd := meanStd(flows)
			fmt.Fprintf(w, "%-18s %6d %16.1f %18.1f %12d\n", st.label, n, mean, sd, rebal)
		}
	}
	return nil
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) > 1 {
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		sd = math.Sqrt(v / float64(len(xs)-1))
	}
	return mean, sd
}
