// Command ptgbench regenerates the tables and figures of the paper's
// evaluation (§7). Each experiment prints the same rows/series the paper
// reports; absolute values depend on the simulated substrate, the *shape*
// (strategy rankings, trends in the number of PTGs, the µ trade-off) is the
// reproduction target.
//
// Usage:
//
//	ptgbench -experiment table1
//	ptgbench -experiment fig2 -reps 25 -seed 42
//	ptgbench -experiment fig3 -csv fig3.csv
//	ptgbench -experiment mu-calibration
//	ptgbench -experiment ablation
//
// The bench experiment runs the benchmark-regression suite (the same one
// behind `go test -bench`, see internal/benchsuite) and compares it with
// the frozen seed baseline; -json regenerates BENCH_mapping.json:
//
//	ptgbench -experiment bench -json BENCH_mapping.json
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"ptgsched"
)

func main() {
	var (
		name     = flag.String("experiment", "table1", "table1, fig1, fig2, fig3, fig4, fig5, mu-calibration, ablation, dynamic or bench")
		reps     = flag.Int("reps", 25, "random PTG combinations per point (paper: 25)")
		seed     = flag.Int64("seed", 42, "base random seed")
		workers  = flag.Int("workers", 0, "concurrent runs (default: GOMAXPROCS)")
		csvPath  = flag.String("csv", "", "also write the aggregated results to this CSV file")
		jsonPath = flag.String("json", "", "bench: write the regression report to this JSON file (e.g. BENCH_mapping.json)")
	)
	flag.Parse()

	switch strings.ToLower(*name) {
	case "table1":
		table1()
	case "fig1":
		fig1()
	case "fig2":
		campaign(ptgsched.Fig2Config(*seed, *reps), *workers, *csvPath,
			"Figure 2: µ sweep of WPS-work on random PTGs",
			ptgsched.MetricUnfairness, ptgsched.MetricAvgMakespan)
	case "fig3":
		campaign(ptgsched.Fig3Config(*seed, *reps), *workers, *csvPath,
			"Figure 3: 8 strategies on random PTGs",
			ptgsched.MetricUnfairness, ptgsched.MetricRelMakespan)
	case "fig4":
		campaign(ptgsched.Fig4Config(*seed, *reps), *workers, *csvPath,
			"Figure 4: 8 strategies on FFT PTGs",
			ptgsched.MetricUnfairness, ptgsched.MetricRelMakespan)
	case "fig5":
		campaign(ptgsched.Fig5Config(*seed, *reps), *workers, *csvPath,
			"Figure 5: 6 strategies on Strassen PTGs",
			ptgsched.MetricUnfairness, ptgsched.MetricRelMakespan)
	case "mu-calibration":
		muCalibration(*seed, *reps, *workers)
	case "ablation":
		ablation(*seed, *reps, *workers, *csvPath)
	case "dynamic":
		dynamic(*seed, *reps)
	case "bench":
		bench(*jsonPath)
	default:
		fmt.Fprintf(os.Stderr, "ptgbench: unknown experiment %q\n", *name)
		os.Exit(1)
	}
}

// table1 prints the platform inventory of Table 1 plus the derived
// quantities quoted in §2.
func table1() {
	fmt.Println("Table 1: multi-cluster subsets of the Grid'5000 platform")
	fmt.Printf("%-8s %-10s %6s %9s\n", "Site", "Cluster", "#proc", "GFlop/s")
	for _, pf := range ptgsched.Grid5000Sites() {
		for i, c := range pf.Clusters {
			site := ""
			if i == 0 {
				site = pf.Name
			}
			fmt.Printf("%-8s %-10s %6d %9.3f\n", site, c.Name, c.Procs, c.Speed)
		}
	}
	fmt.Println("\nDerived (§2):")
	fmt.Printf("%-8s %6s %14s %15s %s\n", "Site", "#proc", "heterogeneity", "power (GF/s)", "topology")
	for _, pf := range ptgsched.Grid5000Sites() {
		topo := "per-cluster switches"
		if pf.SharedSwitch {
			topo = "shared switch"
		}
		fmt.Printf("%-8s %6d %13.1f%% %15.1f %s\n",
			pf.Name, pf.TotalProcs(), pf.Heterogeneity()*100, pf.TotalPower(), topo)
	}
}

// fig1 reproduces the illustration of §5: two PTGs on two processors, the
// global ordering postpones the small application while the ready-task
// ordering does not.
func fig1() {
	fmt.Println("Figure 1: global ordering vs ready-task ordering")
	fmt.Println("(two PTGs on a 2-processor cluster, one processor each)")
	pf := ptgsched.NewPlatform("fig1", true, ptgsched.ClusterSpec{Name: "c0", Procs: 2, Speed: 1})
	mk := func(name string, works ...float64) *ptgsched.Graph {
		g := ptgsched.NewGraph(name)
		var prev *ptgsched.Task
		for i, w := range works {
			t := g.AddTask(fmt.Sprintf("%s%d", name, i), 1, w, 0)
			if prev != nil {
				g.MustAddEdge(prev, t, 0)
			}
			prev = t
		}
		return g
	}
	for _, ordering := range []ptgsched.MapOptions{
		{Ordering: ptgsched.GlobalOrdering},
		{Ordering: ptgsched.ReadyTasksOrdering},
	} {
		big, small := mk("big", 10, 5), mk("small", 2, 2)
		sched := ptgsched.NewScheduler(pf)
		sched.MapOptions = ordering
		res := sched.Schedule([]*ptgsched.Graph{big, small}, ptgsched.ES())
		fmt.Printf("\n--- %v ordering ---\n", ordering.Ordering)
		fmt.Printf("big PTG makespan:   %6.2f s\n", res.Makespan(0))
		fmt.Printf("small PTG makespan: %6.2f s\n", res.Makespan(1))
		if err := ptgsched.WriteGantt(os.Stdout, res.Schedule, 60); err != nil {
			fatal(err)
		}
	}
}

func campaign(cfg ptgsched.ExperimentConfig, workers int, csvPath, title string, metricsToShow ...ptgsched.ExperimentMetric) {
	cfg.Workers = workers
	fmt.Println(title)
	fmt.Printf("(%d combinations × %d platforms = %d runs per point)\n\n",
		cfg.Reps, 4, cfg.Reps*4)
	res := ptgsched.RunExperiment(cfg)
	for _, m := range metricsToShow {
		if err := res.RenderTable(os.Stdout, m); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
}

// muCalibration reproduces the textual µ calibration of §7 for the three
// WPS variants on their relevant families.
func muCalibration(seed int64, reps, workers int) {
	cases := []struct {
		char   ptgsched.Characteristic
		family ptgsched.PTGFamily
	}{
		{ptgsched.Work, ptgsched.FamilyRandom},
		{ptgsched.CriticalPath, ptgsched.FamilyRandom},
		{ptgsched.Width, ptgsched.FamilyRandom},
		{ptgsched.Width, ptgsched.FamilyFFT},
	}
	for _, c := range cases {
		cfg := ptgsched.MuCalibrationConfig(c.char, c.family, seed, reps)
		cfg.Workers = workers
		fmt.Printf("µ calibration: WPS-%s on %s PTGs (paper's choice: µ=%.1f)\n",
			c.char, c.family, ptgsched.DefaultMu(c.char, c.family))
		res := ptgsched.RunExperiment(cfg)
		if err := res.RenderTable(os.Stdout, ptgsched.MetricUnfairness); err != nil {
			fatal(err)
		}
		if err := res.RenderTable(os.Stdout, ptgsched.MetricAvgMakespan); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

// ablation quantifies the mapper's design choices: ready-task vs
// global ordering and packing on/off, on the paper's random workload.
func ablation(seed int64, reps, workers int, csvPath string) {
	fmt.Println("Ablation: mapping design choices on random PTGs, ES strategy")
	variants := []struct {
		label string
		opts  ptgsched.MapOptions
	}{
		{"ready+packing", ptgsched.MapOptions{}},
		{"ready,no-pack", ptgsched.MapOptions{NoPacking: true}},
		{"global+packing", ptgsched.MapOptions{Ordering: ptgsched.GlobalOrdering}},
		{"global,no-pack", ptgsched.MapOptions{Ordering: ptgsched.GlobalOrdering, NoPacking: true}},
	}
	nptgs := []int{2, 6, 10}
	fmt.Printf("%-16s %8s %14s %14s\n", "variant", "#PTGs", "unfairness", "makespan (s)")
	for _, v := range variants {
		for _, n := range nptgs {
			unf, mak := ablationPoint(v.opts, n, seed, reps, workers)
			fmt.Printf("%-16s %8d %14.3f %14.1f\n", v.label, n, unf, mak)
		}
	}
	_ = csvPath
}

func ablationPoint(opts ptgsched.MapOptions, n int, seed int64, reps, workers int) (unfairness, makespan float64) {
	if workers <= 0 {
		workers = 4
	}
	var unfSum, makSum float64
	count := 0
	for rep := 0; rep < reps; rep++ {
		for _, pf := range ptgsched.Grid5000Sites() {
			r := rand.New(rand.NewSource(seed + int64(rep)*1009 + int64(n)))
			graphs := make([]*ptgsched.Graph, n)
			for i := range graphs {
				graphs[i] = ptgsched.GeneratePTG(ptgsched.FamilyRandom, r)
			}
			sched := ptgsched.NewScheduler(pf)
			sched.MapOptions = opts
			own := make([]float64, n)
			for i, g := range graphs {
				own[i] = sched.ScheduleAlone(g)
			}
			res := sched.Schedule(graphs, ptgsched.ES())
			ev := res.Evaluate(own)
			unfSum += ev.Unfairness
			makSum += ev.Makespan
			count++
		}
	}
	return unfSum / float64(count), makSum / float64(count)
}

// dynamic explores the paper's future-work direction (§8): applications
// with different submission times, constraints recomputed online. Reports
// mean flow time and flow-time unfairness for the online strategies.
func dynamic(seed int64, reps int) {
	fmt.Println("Dynamic submissions (§8 future work): Poisson arrivals, online rebalancing")
	strategies := []struct {
		label string
		opts  ptgsched.OnlineOptions
	}{
		{"S", ptgsched.OnlineOptions{Strategy: ptgsched.S()}},
		{"ES", ptgsched.OnlineOptions{Strategy: ptgsched.ES()}},
		{"WPS-work", ptgsched.OnlineOptions{Strategy: ptgsched.WPS(ptgsched.Work, 0.7)}},
		{"WPS-work/no-rebal", ptgsched.OnlineOptions{
			Strategy:                ptgsched.WPS(ptgsched.Work, 0.7),
			NoRebalanceOnCompletion: true,
		}},
	}
	counts := []int{4, 8, 12}
	fmt.Printf("%-18s %6s %16s %18s %12s\n",
		"strategy", "#apps", "mean flow (s)", "flow stddev (s)", "rebalances")
	for _, st := range strategies {
		for _, n := range counts {
			var flows []float64
			rebal := 0
			for rep := 0; rep < reps; rep++ {
				for pi, pf := range ptgsched.Grid5000Sites() {
					r := rand.New(rand.NewSource(seed + int64(rep)*997 + int64(n)*13 + int64(pi)))
					arrivals := ptgsched.GenerateWorkload(ptgsched.WorkloadSpec{
						Family:  ptgsched.FamilyRandom,
						Count:   n,
						Process: ptgsched.PoissonArrivals,
						Rate:    0.25,
					}, r)
					res := ptgsched.ScheduleOnline(pf, arrivals, st.opts)
					for _, app := range res.Apps {
						flows = append(flows, app.FlowTime())
					}
					rebal += res.Rebalances
				}
			}
			mean, sd := meanStd(flows)
			fmt.Printf("%-18s %6d %16.1f %18.1f %12d\n", st.label, n, mean, sd, rebal)
		}
	}
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) > 1 {
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		sd = math.Sqrt(v / float64(len(xs)-1))
	}
	return mean, sd
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptgbench:", err)
	os.Exit(1)
}
