package main

// Query mode: read a completed (or in-progress) campaign store back
// through the indexed query path instead of re-scanning every segment.
// The predicate — family, strategy, point-index range — compiles to a
// plan that resolves to the minimal segment byte runs via the per-segment
// sparse indexes; only those runs are read and decoded. stdout carries
// exactly the deliverable (JSONL records or the aggregate table); the
// pushdown evidence (bytes read vs total, lines decoded, rebuilt
// sidecars, plan-cache counters) goes to stderr.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ptgsched"
)

// queryOpts carries the -query flag group from run to queryMode.
type queryOpts struct {
	family   string
	strategy string
	from     int
	to       int // negative: end of the expansion
	format   string
	fullScan bool
}

// queryMode opens the store read-only, compiles the predicate, and
// streams the selection. -format jsonl emits the matching records as
// campaign wire JSONL (projected to the selected strategy's column when
// -strategy is set); -format table prints per-(cell, #PTGs, strategy)
// aggregate rows over the same selection. -fullscan forces the unindexed
// path that decodes every record — same output bytes, for differential
// verification and for measuring what pushdown saves.
func queryMode(w io.Writer, specPath, dir string, q queryOpts) error {
	switch q.format {
	case "table", "jsonl":
	default:
		return fmt.Errorf("-format must be table or jsonl, not %q", q.format)
	}
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	spec, err := ptgsched.ParseCampaignSpec(data)
	if err != nil {
		return err
	}
	e, err := ptgsched.ExpandCampaign(spec)
	if err != nil {
		return err
	}
	st, err := ptgsched.OpenCampaignStoreRead(dir, e)
	if err != nil {
		return err
	}
	defer st.Close()
	if n := st.RebuiltSegments(); n > 0 {
		fmt.Fprintf(os.Stderr, "ptgbench: query: rebuilt the index of %d segment(s) by scan (missing or inconsistent .idx sidecars)\n", n)
	}

	to := q.to
	if to < 0 {
		to = ptgsched.CampaignQueryNoLimit
	}
	plan, err := ptgsched.CompileCampaignQuery(e, ptgsched.CampaignQuery{
		Family: q.family, Strategy: q.strategy, From: q.from, To: to,
	})
	if err != nil {
		return err
	}

	var stats ptgsched.CampaignQueryStats
	if q.format == "table" {
		var rows []ptgsched.CampaignGroupRow
		if q.fullScan {
			rows, stats, err = aggregateByFullScan(st, plan)
		} else {
			rows, stats, err = st.AggregateWhere(plan)
		}
		if err != nil {
			return err
		}
		renderQueryTable(w, plan.Query().String(), rows)
	} else {
		out := bufio.NewWriter(w)
		emit := func(r ptgsched.CampaignPointResult) error {
			line, err := json.Marshal(r)
			if err != nil {
				return err
			}
			out.Write(line)
			return out.WriteByte('\n')
		}
		if q.fullScan {
			stats, err = st.QueryFullScan(plan, emit)
		} else {
			stats, err = st.Query(plan, emit)
		}
		if err != nil {
			return err
		}
		if err := out.Flush(); err != nil {
			return err
		}
	}

	mode := "pushdown"
	if q.fullScan {
		mode = "full scan"
	}
	cache := ptgsched.CampaignQueryCache()
	fmt.Fprintf(os.Stderr,
		"ptgbench: query %s (%s): %d records emitted; read %d of %d bytes, decoded %d lines, %d/%d runs in %d/%d segments; plan cache %d hits / %d misses\n",
		plan.Query().String(), mode, stats.Emitted,
		stats.BytesRead, stats.BytesTotal, stats.LinesDecoded,
		stats.RunsMatched, stats.RunsTotal, stats.SegmentsTouched, stats.SegmentsTotal,
		cache.Hits, cache.Misses)
	return nil
}

// aggregateByFullScan is AggregateWhere over the unindexed path: every
// record is decoded and the plan's residual filter applied, so its rows
// must equal the pushdown aggregate's bit for bit.
func aggregateByFullScan(st *ptgsched.CampaignStore, p *ptgsched.CampaignQueryPlan) ([]ptgsched.CampaignGroupRow, ptgsched.CampaignQueryStats, error) {
	agg := ptgsched.NewCampaignGroupAggregator(p)
	stats, err := st.QueryFullScan(p, agg.Add)
	if err != nil {
		return nil, stats, err
	}
	return agg.Rows(), stats, nil
}

// renderQueryTable prints the aggregate rows of one query. Rows arrive
// in global order (cell, then #PTGs, then strategy column); the layout
// mirrors the campaign summary tables so the numbers line up visually.
func renderQueryTable(w io.Writer, title string, rows []ptgsched.CampaignGroupRow) {
	fmt.Fprintf(w, "Query %s: %d rows\n", title, len(rows))
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-28s %6s %-10s %6s %12s %14s %14s\n",
		"cell", "#PTGs", "strategy", "n", "unfairness", "makespan (s)", "rel makespan")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %6d %-10s %6d %12.3f %14.1f %14.3f\n",
			r.Label, r.NPTGs, r.Strategy, r.Count, r.Unfair, r.Makespan, r.Rel)
	}
}
