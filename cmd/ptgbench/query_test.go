package main

// CLI tests of -query: the flag surface, the indexed-vs-fullscan
// differential contract on stdout, and a golden aggregate table over a
// checked-in two-family campaign.

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"ptgsched/internal/clitest"
)

const querySpec = "testdata/query-campaign.json"

// queryStore sweeps the two-family campaign into a fresh sharded store
// and returns its directory.
func queryStore(t *testing.T, shards int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	if shards > 1 {
		for i := 0; i < shards; i++ {
			args := []string{"-campaign", querySpec, "-shard",
				// e.g. 0/2, 1/2 — later shards resume the shared store.
				string(rune('0'+i)) + "/" + string(rune('0'+shards)), "-store", dir}
			if i > 0 {
				args = append(args, "-resume")
			}
			runCLI(t, args...)
		}
	} else {
		runCLI(t, "-campaign", querySpec, "-store", dir)
	}
	return dir
}

func TestGoldenQueryTable(t *testing.T) {
	dir := queryStore(t, 2)
	clitest.CheckGolden(t, "query-table.golden",
		runCLI(t, "-campaign", querySpec, "-store", dir, "-query",
			"-family", "strassen", "-strategy", "WPS-work"))
}

// TestQueryIndexedMatchesFullScan is the differential contract at the
// CLI boundary: for a battery of predicates over a multi-shard store,
// -query and -query -fullscan print byte-identical JSONL and tables.
func TestQueryIndexedMatchesFullScan(t *testing.T) {
	dir := queryStore(t, 3)
	batteries := [][]string{
		{},
		{"-family", "strassen"},
		{"-family", "fft"},
		{"-strategy", "ES"},
		{"-family", "fft", "-strategy", "PS-width"},
		{"-from", "5", "-to", "21"},
		{"-family", "strassen", "-strategy", "S", "-from", "2", "-to", "40"},
		{"-to", "0"},
	}
	for _, extra := range batteries {
		for _, format := range []string{"jsonl", "table"} {
			base := append([]string{"-campaign", querySpec, "-store", dir,
				"-query", "-format", format}, extra...)
			indexed := runCLI(t, base...)
			full := runCLI(t, append(base, "-fullscan")...)
			if !bytes.Equal(indexed, full) {
				t.Errorf("%v (%s): indexed and full-scan output differ\n--- indexed ---\n%s\n--- full scan ---\n%s",
					extra, format, indexed, full)
			}
		}
	}
}

// TestQueryJSONLSelectsExactRange spot-checks the record stream: an
// index-range predicate over the 24-point campaign emits exactly its
// records, in global point order.
func TestQueryJSONLSelectsExactRange(t *testing.T) {
	dir := queryStore(t, 1)
	out := runCLI(t, "-campaign", querySpec, "-store", dir, "-query",
		"-format", "jsonl", "-from", "7", "-to", "13")
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d JSONL lines, want 6:\n%s", len(lines), out)
	}
	for i, l := range lines {
		want := `{"index":` + string(rune('7'+i))
		if i > 2 { // indexes 10, 11, 12
			want = `{"index":1` + string(rune('0'+i-3))
		}
		if !strings.HasPrefix(l, want) {
			t.Fatalf("line %d = %s, want prefix %s", i, l, want)
		}
	}
	// to=0 is the explicit empty selection: no records, exit 0.
	if out := runCLI(t, "-campaign", querySpec, "-store", dir, "-query",
		"-format", "jsonl", "-to", "0"); len(out) != 0 {
		t.Fatalf("-to 0 emitted %d bytes, want none:\n%s", len(out), out)
	}
}

func TestQueryFlagValidation(t *testing.T) {
	dir := queryStore(t, 1)
	var buf bytes.Buffer
	for _, c := range []struct {
		name string
		args []string
	}{
		{"query without -campaign", []string{"-query", "-store", dir}},
		{"query without -store", []string{"-campaign", querySpec, "-query"}},
		{"query with -resume", []string{"-campaign", querySpec, "-store", dir, "-query", "-resume"}},
		{"query with -merge", []string{"-campaign", querySpec, "-store", dir, "-query", "-merge", dir}},
		{"query with -shard", []string{"-campaign", querySpec, "-store", dir, "-query", "-shard", "0/2"}},
		{"predicate flags without -query", []string{"-campaign", querySpec, "-family", "fft"}},
		{"bad format", []string{"-campaign", querySpec, "-store", dir, "-query", "-format", "csv"}},
		{"unknown family", []string{"-campaign", querySpec, "-store", dir, "-query", "-family", "nope"}},
		{"unknown strategy", []string{"-campaign", querySpec, "-store", dir, "-query", "-strategy", "nope"}},
		{"from beyond expansion", []string{"-campaign", querySpec, "-store", dir, "-query", "-from", "48"}},
	} {
		if err := run(c.args, &buf); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	// A strategy only some families run is a valid filter; it selects the
	// families that have it (PS-width exists on fft, not strassen).
	if err := run([]string{"-campaign", querySpec, "-store", dir, "-query",
		"-strategy", "PS-width"}, io.Discard); err != nil {
		t.Errorf("family-partial strategy rejected: %v", err)
	}
}
