package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"ptgsched/internal/benchsuite"
)

// BenchResult is one benchmark measurement as recorded in BENCH_mapping.json.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
	// LiveHeapBytes carries the "live-heap-bytes" custom metric of the
	// streaming-vs-materialized aggregation pair: the live heap held just
	// before finalization (the resident-memory contrast of the streaming
	// pipeline). Zero for benchmarks that do not report it.
	LiveHeapBytes float64 `json:"live_heap_bytes,omitempty"`
	// FleetRetries, FleetReassignments, FleetWorkerDeaths and
	// FleetDuplicatePoints carry the coordinator's robustness counters
	// (per coordinated run) from the FleetCoordinate3Workers benchmark's
	// scripted worker-death scenario. Zero for every other benchmark.
	FleetRetries         float64 `json:"fleet_retries,omitempty"`
	FleetReassignments   float64 `json:"fleet_reassignments,omitempty"`
	FleetWorkerDeaths    float64 `json:"fleet_worker_deaths,omitempty"`
	FleetDuplicatePoints float64 `json:"fleet_duplicate_points,omitempty"`
	// QueryBytesRead and QueryDecodedLines carry the StoreQuery pair's
	// pushdown evidence: bytes fetched and records unmarshalled for one
	// selective query, against QueryBytesTotal (the store's whole valid
	// extent — what the full-scan variant reads every time). Zero for
	// every other benchmark.
	QueryBytesRead    float64 `json:"query_bytes_read,omitempty"`
	QueryDecodedLines float64 `json:"query_decoded_lines,omitempty"`
	QueryBytesTotal   float64 `json:"query_bytes_total,omitempty"`
	// CacheHitRate and CacheVerifyNsPerPoint carry the CampaignCachedSweep
	// benchmark's warm-path evidence: the fraction of campaign points
	// served from the content-addressed cache (1.0 for a healthy cache)
	// and the segment chain-verification cost at open, amortized per
	// cached point. Zero for every other benchmark.
	CacheHitRate          float64 `json:"cache_hit_rate,omitempty"`
	CacheVerifyNsPerPoint float64 `json:"cache_verify_ns_per_point,omitempty"`
	// PointsPerSecPerCore, AllocsPerPoint and ParallelEfficiency carry the
	// campaign-throughput pair's scaling metrics: campaign runs completed
	// per second per core actually used, heap allocations per campaign run
	// (the number the scratch arenas gate), and the measured speedup over a
	// 1-worker reference divided by min(workers, GOMAXPROCS) — 1.0 is
	// perfect scaling. ParallelEfficiency is reported only by the
	// multi-worker variant. Zero for every other benchmark.
	PointsPerSecPerCore float64 `json:"points_per_sec_per_core,omitempty"`
	AllocsPerPoint      float64 `json:"allocs_per_point,omitempty"`
	ParallelEfficiency  float64 `json:"parallel_efficiency,omitempty"`
}

// BenchReport is the schema of BENCH_mapping.json: the frozen seed baseline
// the repository was measured at before the incremental-mapper overhaul,
// the current suite's numbers, and the derived ratios. Future PRs compare
// their regenerated `current` section against the committed one (and
// against `seed_baseline` for the long view).
type BenchReport struct {
	Schema       string             `json:"schema"`
	GeneratedBy  string             `json:"generated_by"`
	GoVersion    string             `json:"go_version"`
	Note         string             `json:"note"`
	SeedBaseline []BenchResult      `json:"seed_baseline"`
	Current      []BenchResult      `json:"current"`
	SpeedupNs    map[string]float64 `json:"speedup_ns_vs_seed"`
	AllocRatio   map[string]float64 `json:"alloc_reduction_vs_seed"`
	// Concurrency records the concurrent-throughput experiment: the Fig. 3
	// campaign at 1 vs 8 workers on this machine. The speedup is
	// hardware-bound — the campaign is embarrassingly parallel, so it
	// tracks min(8, GOMAXPROCS) on an idle multi-core host and degenerates
	// to ~1x on a single-core container. GOMAXPROCS is recorded alongside
	// so the number can be interpreted.
	Concurrency *ConcurrencyReport `json:"concurrency,omitempty"`
}

// ConcurrencyReport is the concurrent-throughput section of the report.
type ConcurrencyReport struct {
	GOMAXPROCS          int     `json:"gomaxprocs"`
	CampaignNs1Worker   float64 `json:"campaign_ns_1_worker"`
	CampaignNs8Workers  float64 `json:"campaign_ns_8_workers"`
	CampaignSpeedup8W   float64 `json:"campaign_speedup_8w_vs_1w"`
	ServiceNs8Clients   float64 `json:"service_ns_8_clients"`
	ServiceReqPerSecond float64 `json:"service_requests_per_second"`
}

// seedBaseline is the benchmark suite measured on the seed implementation
// (naive mapper, map-based fair-share solver, uncached DAG analyses) on
// the reference machine the overhaul was developed on (Intel Xeon @
// 2.10GHz, go1.24, -benchtime 5x). It is a frozen historical record: do
// not regenerate it, the seed code no longer exists in the tree except as
// the unexported reference implementations in the differential tests.
var seedBaseline = []BenchResult{
	{Name: "Fig2MuSweepWPSWork", NsPerOp: 502292541, BytesPerOp: 364487457, AllocsPerOp: 5119628, Iterations: 5},
	{Name: "Fig3RandomPTGs", NsPerOp: 737720620, BytesPerOp: 553213529, AllocsPerOp: 7867239, Iterations: 5},
	{Name: "Fig4FFTPTGs", NsPerOp: 1310511123, BytesPerOp: 1207787753, AllocsPerOp: 9632377, Iterations: 5},
	{Name: "Fig5StrassenPTGs", NsPerOp: 370623699, BytesPerOp: 302231830, AllocsPerOp: 3786380, Iterations: 5},
	{Name: "MapLarge", NsPerOp: 608776343, BytesPerOp: 102826691, AllocsPerOp: 516173, Iterations: 5},
	{Name: "FairShare1000Flows", NsPerOp: 351894, BytesPerOp: 44184, AllocsPerOp: 105, Iterations: 5},
}

// bench runs the regression suite and prints a comparison against the seed
// baseline; with a non-empty jsonPath it also writes BENCH_mapping.json.
func bench(w io.Writer, jsonPath string) error {
	// Write through a temp file in the target directory: a bad path fails
	// before the minute-long suite runs, and an interrupt or mid-suite
	// failure cannot truncate an existing committed report — the rename
	// happens only after a successful encode.
	var out *os.File
	tmpPath := ""
	if jsonPath != "" {
		tmpPath = jsonPath + ".tmp"
		var err error
		out, err = os.Create(tmpPath)
		if err != nil {
			return err
		}
		defer os.Remove(tmpPath)
	}
	report := BenchReport{
		Schema:       "ptgsched-bench/v1",
		GeneratedBy:  "ptgbench -experiment bench -json " + jsonPath,
		GoVersion:    runtime.Version(),
		Note:         "seed_baseline is frozen (pre-overhaul implementation); regenerate only `current`. See PERFORMANCE.md.",
		SeedBaseline: seedBaseline,
		SpeedupNs:    map[string]float64{},
		AllocRatio:   map[string]float64{},
	}
	baseline := map[string]BenchResult{}
	for _, r := range seedBaseline {
		baseline[r.Name] = r
	}

	fmt.Fprintf(w, "%-22s %14s %14s %12s %12s\n", "benchmark", "ns/op", "allocs/op", "speedup", "alloc ÷")
	for _, c := range benchsuite.Suite() {
		res := testing.Benchmark(c.Bench)
		if res.N == 0 || res.NsPerOp() <= 0 {
			// testing.Benchmark returns a zero result when the function
			// calls b.Fatal; a broken pipeline must not be recorded as a
			// plausible measurement.
			return fmt.Errorf("benchmark %s failed (zero result)", c.Name)
		}
		cur := BenchResult{
			Name:          c.Name,
			NsPerOp:       float64(res.NsPerOp()),
			BytesPerOp:    res.AllocedBytesPerOp(),
			AllocsPerOp:   res.AllocsPerOp(),
			Iterations:    res.N,
			LiveHeapBytes: res.Extra["live-heap-bytes"],

			FleetRetries:         res.Extra["fleet-retries"],
			FleetReassignments:   res.Extra["fleet-reassignments"],
			FleetWorkerDeaths:    res.Extra["fleet-worker-deaths"],
			FleetDuplicatePoints: res.Extra["fleet-duplicate-points"],

			QueryBytesRead:    res.Extra["query-bytes-read"],
			QueryDecodedLines: res.Extra["query-decoded-lines"],
			QueryBytesTotal:   res.Extra["query-bytes-total"],

			CacheHitRate:          res.Extra["cache-hit-rate"],
			CacheVerifyNsPerPoint: res.Extra["cache-verify-ns/point"],

			PointsPerSecPerCore: res.Extra["points/sec/core"],
			AllocsPerPoint:      res.Extra["allocs/point"],
			ParallelEfficiency:  res.Extra["parallel-efficiency"],
		}
		report.Current = append(report.Current, cur)
		speedup, allocRatio := 0.0, 0.0
		if base, ok := baseline[c.Name]; ok && cur.NsPerOp > 0 && cur.AllocsPerOp > 0 {
			speedup = base.NsPerOp / cur.NsPerOp
			allocRatio = float64(base.AllocsPerOp) / float64(cur.AllocsPerOp)
			report.SpeedupNs[c.Name] = speedup
			report.AllocRatio[c.Name] = allocRatio
		}
		fmt.Fprintf(w, "%-22s %14.0f %14d %11.1fx %11.1fx\n",
			c.Name, cur.NsPerOp, cur.AllocsPerOp, speedup, allocRatio)
	}

	// Derive the concurrent-throughput section from the suite results.
	byName := map[string]BenchResult{}
	for _, r := range report.Current {
		byName[r.Name] = r
	}
	one, eight := byName[benchsuite.CampaignWorkers1], byName[benchsuite.CampaignWorkers8]
	svc := byName[benchsuite.ServiceThroughput8]
	if one.NsPerOp > 0 && eight.NsPerOp > 0 {
		conc := &ConcurrencyReport{
			GOMAXPROCS:         runtime.GOMAXPROCS(0),
			CampaignNs1Worker:  one.NsPerOp,
			CampaignNs8Workers: eight.NsPerOp,
			CampaignSpeedup8W:  one.NsPerOp / eight.NsPerOp,
		}
		if svc.NsPerOp > 0 {
			conc.ServiceNs8Clients = svc.NsPerOp
			// Each iteration completes 8 requests.
			conc.ServiceReqPerSecond = 8 / (svc.NsPerOp / 1e9)
		}
		report.Concurrency = conc
		fmt.Fprintf(w, "\nconcurrent throughput: %.2fx at 8 workers (GOMAXPROCS=%d), service %.1f req/s at 8 clients\n",
			conc.CampaignSpeedup8W, conc.GOMAXPROCS, conc.ServiceReqPerSecond)
	}
	if err := gateScaling(w, one, eight); err != nil {
		return err
	}

	if out == nil {
		return nil
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, jsonPath); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}

// Scaling gates enforced by every `ptgbench -experiment bench` run: a
// comparison that trips one fails (non-zero exit), so a CI lane running
// the suite catches the regression.
const (
	// maxAllocsPerPoint caps the 1-worker campaign's heap allocations per
	// campaign run. The seed implementation measured ~117,900; the scratch-
	// arena refactor brought it under 9,000, and the gate pins at least a
	// 4x reduction from the seed with headroom for benign drift.
	maxAllocsPerPoint = 29_000
	// minParallelEfficiency is the floor on the 8-worker campaign's
	// parallel efficiency (speedup over 1 worker ÷ min(8, GOMAXPROCS)),
	// checked only on hosts with ≥ 4 cores — below that the efficiency
	// denominator is too small to separate scaling bugs from noise. The
	// design target is ≥ 0.8 on an idle multicore runner; the gate sits at
	// 0.5 so shared-runner noise does not flake it, while a serialized
	// sweep (which measures ~0.15) still trips it decisively.
	minParallelEfficiency = 0.5
)

// gateScaling enforces the multicore scaling floors on the campaign-
// throughput pair's custom metrics.
func gateScaling(w io.Writer, one, eight BenchResult) error {
	if one.AllocsPerPoint > 0 {
		fmt.Fprintf(w, "allocs/point: %.0f (gate ≤ %d)\n", one.AllocsPerPoint, maxAllocsPerPoint)
		if one.AllocsPerPoint > maxAllocsPerPoint {
			return fmt.Errorf("bench gate: %s allocates %.0f allocs/point, above the %d ceiling",
				benchsuite.CampaignWorkers1, one.AllocsPerPoint, maxAllocsPerPoint)
		}
	}
	if eight.ParallelEfficiency > 0 {
		fmt.Fprintf(w, "parallel efficiency at 8 workers: %.2f", eight.ParallelEfficiency)
		if runtime.GOMAXPROCS(0) >= 4 {
			fmt.Fprintf(w, " (gate ≥ %.2f)\n", minParallelEfficiency)
			if eight.ParallelEfficiency < minParallelEfficiency {
				return fmt.Errorf("bench gate: %s parallel efficiency %.2f below the %.2f floor (GOMAXPROCS=%d)",
					benchsuite.CampaignWorkers8, eight.ParallelEfficiency, minParallelEfficiency, runtime.GOMAXPROCS(0))
			}
		} else {
			fmt.Fprintf(w, " (not gated: GOMAXPROCS=%d < 4)\n", runtime.GOMAXPROCS(0))
		}
	}
	return nil
}
