// Command ptgsim schedules a batch of concurrently-submitted parallel task
// graphs on a Grid'5000 multi-cluster site and reports the paper's metrics
// for one chosen constraint-determination strategy.
//
// Usage:
//
//	ptgsim -platform rennes -family random -n 6 -strategy WPS-width -seed 1 -gantt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ptgsched"
)

func main() {
	var (
		platformName = flag.String("platform", "rennes", "platform: lille, nancy, rennes or sophia")
		familyName   = flag.String("family", "random", "PTG family: random, fft or strassen")
		n            = flag.Int("n", 4, "number of concurrent PTGs")
		strategyName = flag.String("strategy", "WPS-width", "strategy: S, ES, PS-cp, PS-width, PS-work, WPS-cp, WPS-width, WPS-work")
		mu           = flag.Float64("mu", -1, "µ for WPS strategies (default: the paper's calibrated value)")
		seed         = flag.Int64("seed", 1, "random seed")
		gantt        = flag.Bool("gantt", false, "print a text Gantt chart")
		jsonOut      = flag.Bool("json", false, "print the schedule as JSON")
	)
	flag.Parse()

	pf, err := ptgsched.PlatformByName(*platformName)
	if err != nil {
		fatal(err)
	}
	family, err := ptgsched.FamilyByName(*familyName)
	if err != nil {
		fatal(err)
	}
	strat, err := ptgsched.StrategyByName(*strategyName, *mu, family)
	if err != nil {
		fatal(err)
	}

	r := rand.New(rand.NewSource(*seed))
	graphs := make([]*ptgsched.Graph, *n)
	for i := range graphs {
		graphs[i] = ptgsched.GeneratePTG(family, r)
	}

	sched := ptgsched.NewScheduler(pf)
	fmt.Printf("platform : %s\n", pf)
	fmt.Printf("strategy : %s\n", strat)
	fmt.Printf("PTGs     : %d × %s\n\n", *n, family)

	own := make([]float64, len(graphs))
	for i, g := range graphs {
		own[i] = sched.ScheduleAlone(g)
	}
	res := sched.Schedule(graphs, strat)
	if err := ptgsched.ValidateSchedule(res.Schedule); err != nil {
		fatal(fmt.Errorf("invalid schedule: %w", err))
	}
	ev := res.Evaluate(own)

	fmt.Printf("%-4s %-28s %8s %12s %12s %10s\n", "app", "graph", "beta", "M_own (s)", "M_multi (s)", "slowdown")
	for i, g := range graphs {
		fmt.Printf("%-4d %-28s %8.3f %12.2f %12.2f %10.3f\n",
			i, g.Name, res.Betas[i], own[i], res.Makespan(i), ev.Slowdowns[i])
	}
	fmt.Printf("\nglobal makespan : %.2f s\n", ev.Makespan)
	fmt.Printf("unfairness      : %.4f\n", ev.Unfairness)

	if *gantt {
		fmt.Println()
		if err := ptgsched.WriteGantt(os.Stdout, res.Schedule, 100); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		if err := ptgsched.WriteScheduleJSON(os.Stdout, res.Schedule); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptgsim:", err)
	os.Exit(1)
}
