// Command ptgsim schedules a batch of concurrently-submitted parallel task
// graphs on a Grid'5000 multi-cluster site and reports the paper's metrics
// for one chosen constraint-determination strategy.
//
// Usage:
//
//	ptgsim -platform rennes -family random -n 6 -strategy WPS-width -seed 1 -gantt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"ptgsched"
)

func main() {
	var (
		platformName = flag.String("platform", "rennes", "platform: lille, nancy, rennes or sophia")
		familyName   = flag.String("family", "random", "PTG family: random, fft or strassen")
		n            = flag.Int("n", 4, "number of concurrent PTGs")
		strategyName = flag.String("strategy", "WPS-width", "strategy: S, ES, PS-cp, PS-width, PS-work, WPS-cp, WPS-width, WPS-work")
		mu           = flag.Float64("mu", -1, "µ for WPS strategies (default: the paper's calibrated value)")
		seed         = flag.Int64("seed", 1, "random seed")
		gantt        = flag.Bool("gantt", false, "print a text Gantt chart")
		jsonOut      = flag.Bool("json", false, "print the schedule as JSON")
	)
	flag.Parse()

	pf, err := platformByName(*platformName)
	if err != nil {
		fatal(err)
	}
	family, err := familyByName(*familyName)
	if err != nil {
		fatal(err)
	}
	strat, err := strategyByName(*strategyName, *mu, family)
	if err != nil {
		fatal(err)
	}

	r := rand.New(rand.NewSource(*seed))
	graphs := make([]*ptgsched.Graph, *n)
	for i := range graphs {
		graphs[i] = ptgsched.GeneratePTG(family, r)
	}

	sched := ptgsched.NewScheduler(pf)
	fmt.Printf("platform : %s\n", pf)
	fmt.Printf("strategy : %s\n", strat)
	fmt.Printf("PTGs     : %d × %s\n\n", *n, family)

	own := make([]float64, len(graphs))
	for i, g := range graphs {
		own[i] = sched.ScheduleAlone(g)
	}
	res := sched.Schedule(graphs, strat)
	if err := ptgsched.ValidateSchedule(res.Schedule); err != nil {
		fatal(fmt.Errorf("invalid schedule: %w", err))
	}
	ev := res.Evaluate(own)

	fmt.Printf("%-4s %-28s %8s %12s %12s %10s\n", "app", "graph", "beta", "M_own (s)", "M_multi (s)", "slowdown")
	for i, g := range graphs {
		fmt.Printf("%-4d %-28s %8.3f %12.2f %12.2f %10.3f\n",
			i, g.Name, res.Betas[i], own[i], res.Makespan(i), ev.Slowdowns[i])
	}
	fmt.Printf("\nglobal makespan : %.2f s\n", ev.Makespan)
	fmt.Printf("unfairness      : %.4f\n", ev.Unfairness)

	if *gantt {
		fmt.Println()
		if err := ptgsched.WriteGantt(os.Stdout, res.Schedule, 100); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		if err := ptgsched.WriteScheduleJSON(os.Stdout, res.Schedule); err != nil {
			fatal(err)
		}
	}
}

func platformByName(name string) (*ptgsched.Platform, error) {
	switch strings.ToLower(name) {
	case "lille":
		return ptgsched.Lille(), nil
	case "nancy":
		return ptgsched.Nancy(), nil
	case "rennes":
		return ptgsched.Rennes(), nil
	case "sophia":
		return ptgsched.Sophia(), nil
	default:
		return nil, fmt.Errorf("unknown platform %q", name)
	}
}

func familyByName(name string) (ptgsched.PTGFamily, error) {
	switch strings.ToLower(name) {
	case "random":
		return ptgsched.FamilyRandom, nil
	case "fft":
		return ptgsched.FamilyFFT, nil
	case "strassen":
		return ptgsched.FamilyStrassen, nil
	default:
		return 0, fmt.Errorf("unknown family %q", name)
	}
}

func strategyByName(name string, mu float64, family ptgsched.PTGFamily) (ptgsched.Strategy, error) {
	pick := func(c ptgsched.Characteristic) float64 {
		if mu >= 0 {
			return mu
		}
		return ptgsched.DefaultMu(c, family)
	}
	switch name {
	case "S":
		return ptgsched.S(), nil
	case "ES":
		return ptgsched.ES(), nil
	case "PS-cp":
		return ptgsched.PS(ptgsched.CriticalPath), nil
	case "PS-width":
		return ptgsched.PS(ptgsched.Width), nil
	case "PS-work":
		return ptgsched.PS(ptgsched.Work), nil
	case "WPS-cp":
		return ptgsched.WPS(ptgsched.CriticalPath, pick(ptgsched.CriticalPath)), nil
	case "WPS-width":
		return ptgsched.WPS(ptgsched.Width, pick(ptgsched.Width)), nil
	case "WPS-work":
		return ptgsched.WPS(ptgsched.Work, pick(ptgsched.Work)), nil
	default:
		return ptgsched.Strategy{}, fmt.Errorf("unknown strategy %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptgsim:", err)
	os.Exit(1)
}
