// Command ptgsim schedules a batch of concurrently-submitted parallel task
// graphs on a Grid'5000 multi-cluster site and reports the paper's metrics
// for one chosen constraint-determination strategy. It can also run a
// single named point of a declarative campaign spec.
//
// Usage:
//
//	ptgsim -platform rennes -family random -n 6 -strategy WPS-width -seed 1 -gantt
//	ptgsim -campaign examples/campaign.json -list
//	ptgsim -campaign examples/campaign.json -point "random/n=4/rep=7/Rennes"
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"ptgsched"
)

// errUsage signals a flag-parse failure the flag package already reported
// to the output writer; main exits nonzero without printing it twice.
var errUsage = errors.New("usage")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, "ptgsim:", err)
		}
		os.Exit(1)
	}
}

// run executes one ptgsim invocation, writing its report to w. It is the
// testable core behind main.
func run(argv []string, w io.Writer) error {
	fs := flag.NewFlagSet("ptgsim", flag.ContinueOnError)
	var (
		platformName = fs.String("platform", "rennes", "platform: lille, nancy, rennes or sophia")
		familyName   = fs.String("family", "random", "PTG family: random, fft or strassen")
		n            = fs.Int("n", 4, "number of concurrent PTGs")
		strategyName = fs.String("strategy", "WPS-width", "strategy: S, ES, PS-cp, PS-width, PS-work, WPS-cp, WPS-width, WPS-work")
		mu           = fs.Float64("mu", -1, "µ for WPS strategies (default: the paper's calibrated value)")
		seed         = fs.Int64("seed", 1, "random seed")
		gantt        = fs.Bool("gantt", false, "print a text Gantt chart")
		jsonOut      = fs.Bool("json", false, "print the schedule as JSON")
		campaignPath = fs.String("campaign", "", "declarative campaign spec; run one of its points (-point) or list them (-list)")
		point        = fs.String("point", "", "campaign: the scenario point to run, by canonical name or global index")
		list         = fs.Bool("list", false, "campaign: list the spec's cells and points instead of running")
	)
	fs.SetOutput(w)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return errUsage
	}

	if *campaignPath != "" {
		return campaignPoint(w, *campaignPath, *point, *list, *gantt)
	}
	if *point != "" || *list {
		return fmt.Errorf("-point and -list require -campaign")
	}

	pf, err := ptgsched.PlatformByName(*platformName)
	if err != nil {
		return err
	}
	family, err := ptgsched.FamilyByName(*familyName)
	if err != nil {
		return err
	}
	strat, err := ptgsched.StrategyByName(*strategyName, *mu, family)
	if err != nil {
		return err
	}

	r := rand.New(rand.NewSource(*seed))
	graphs := make([]*ptgsched.Graph, *n)
	for i := range graphs {
		graphs[i] = ptgsched.GeneratePTG(family, r)
	}

	sched := ptgsched.NewScheduler(pf)
	fmt.Fprintf(w, "platform : %s\n", pf)
	fmt.Fprintf(w, "strategy : %s\n", strat)
	fmt.Fprintf(w, "PTGs     : %d × %s\n\n", *n, family)

	own := make([]float64, len(graphs))
	for i, g := range graphs {
		own[i] = sched.ScheduleAlone(g)
	}
	res := sched.Schedule(graphs, strat)
	if err := ptgsched.ValidateSchedule(res.Schedule); err != nil {
		return fmt.Errorf("invalid schedule: %w", err)
	}
	ev := res.Evaluate(own)

	fmt.Fprintf(w, "%-4s %-28s %8s %12s %12s %10s\n", "app", "graph", "beta", "M_own (s)", "M_multi (s)", "slowdown")
	for i, g := range graphs {
		fmt.Fprintf(w, "%-4d %-28s %8.3f %12.2f %12.2f %10.3f\n",
			i, g.Name, res.Betas[i], own[i], res.Makespan(i), ev.Slowdowns[i])
	}
	fmt.Fprintf(w, "\nglobal makespan : %.2f s\n", ev.Makespan)
	fmt.Fprintf(w, "unfairness      : %.4f\n", ev.Unfairness)

	if *gantt {
		fmt.Fprintln(w)
		if err := ptgsched.WriteGantt(w, res.Schedule, 100); err != nil {
			return err
		}
	}
	if *jsonOut {
		if err := ptgsched.WriteScheduleJSON(w, res.Schedule); err != nil {
			return err
		}
	}
	return nil
}

// campaignPoint lists a campaign spec's points or runs a single named one,
// reporting every strategy of the point's cell (and, for offline points,
// validating each schedule against the invariant oracle).
func campaignPoint(w io.Writer, specPath, pointKey string, list, gantt bool) error {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	spec, err := ptgsched.ParseCampaignSpec(data)
	if err != nil {
		return err
	}
	e, err := ptgsched.ExpandCampaign(spec)
	if err != nil {
		return err
	}

	if list {
		fmt.Fprintf(w, "campaign %s: %d cells, %d points\n", spec.Name, len(e.Cells), e.NumPoints())
		for _, c := range e.Cells {
			fmt.Fprintf(w, "  cell %d: %s (%d strategies)\n", c.Index, c.Label, len(c.Config.Strategies))
		}
		fmt.Fprintf(w, "first point: %s\n", e.PointAt(0).Name)
		fmt.Fprintf(w, "last point : %s\n", e.PointAt(e.NumPoints()-1).Name)
		return nil
	}
	if pointKey == "" {
		return fmt.Errorf("-campaign needs -point <name|index> or -list")
	}

	p, err := e.FindPoint(pointKey)
	if err != nil {
		return err
	}
	cell := e.Cells[p.Cell]
	pf, graphs, releases := e.Materialize(p)
	fmt.Fprintf(w, "point    : %s (index %d, seed %d)\n", p.Name, p.Index, p.Seed)
	fmt.Fprintf(w, "platform : %s\n", pf)
	fmt.Fprintf(w, "cell     : %s\n", cell.Label)
	if cell.Policy != "" {
		fmt.Fprintf(w, "policy   : %s\n", cell.Policy)
	}
	fmt.Fprintf(w, "%-4s %-28s %10s\n", "app", "graph", "release")
	for i, g := range graphs {
		fmt.Fprintf(w, "%-4d %-28s %10.1f\n", i, g.Name, releases[i])
	}
	if tl := e.TimelineFor(p); len(tl) > 0 {
		fmt.Fprintf(w, "\nevent timeline (%d events, derived from spec digest and point index):\n", len(tl))
		for _, ev := range tl {
			switch ev.Kind {
			case ptgsched.EventClusterDown, ptgsched.EventClusterUp:
				fmt.Fprintf(w, "  t=%-10.2f %-12s cluster %s\n", ev.At, ev.Kind, pf.Clusters[ev.Cluster].Name)
			case ptgsched.EventSpeedChange:
				fmt.Fprintf(w, "  t=%-10.2f %-12s cluster %s ×%g\n", ev.At, ev.Kind, pf.Clusters[ev.Cluster].Name, ev.Factor)
			default:
				fmt.Fprintf(w, "  t=%-10.2f %-12s app %d\n", ev.At, ev.Kind, ev.App)
			}
		}
	}

	res := e.RunPoint(p)
	fmt.Fprintf(w, "\n%-12s %14s %14s %12s\n", "strategy", "makespan (s)", "unfairness", "rel")
	for s, label := range cell.Config.Labels {
		fmt.Fprintf(w, "%-12s %14.2f %14.4f %12.3f\n",
			label, res.Makespan[s], res.Unfairness[s], res.Rel[s])
	}

	// Offline points can additionally be re-scheduled for validation and
	// inspection under the cell's first strategy (dynamic points run
	// through the online engine, whose oracle the fuzz suite drives).
	if cell.Online == nil && cell.Policy == "" {
		sched := ptgsched.NewScheduler(pf)
		sres := sched.Schedule(graphs, cell.Config.Strategies[0])
		if err := ptgsched.ValidateSchedule(sres.Schedule); err != nil {
			return fmt.Errorf("invalid schedule: %w", err)
		}
		fmt.Fprintf(w, "\nschedule under %s validates against the invariant oracle\n",
			cell.Config.Labels[0])
		if gantt {
			fmt.Fprintln(w)
			if err := ptgsched.WriteGantt(w, sres.Schedule, 100); err != nil {
				return err
			}
		}
	}
	return nil
}
