package main

// Golden CLI tests (see internal/clitest): ptgsim's stdout for fixed
// seeds is captured under testdata/*.golden; refresh with
// `go test ./cmd/ptgsim -update`.

import (
	"bytes"
	"strings"
	"testing"

	"ptgsched/internal/clitest"
)

func runCLI(t *testing.T, args ...string) []byte {
	t.Helper()
	return clitest.Run(t, run, args...)
}

func TestGoldenBatch(t *testing.T) {
	clitest.CheckGolden(t, "batch.golden",
		runCLI(t, "-platform", "lille", "-family", "strassen", "-n", "2", "-strategy", "ES", "-seed", "3"))
}

func TestGoldenBatchGantt(t *testing.T) {
	clitest.CheckGolden(t, "batch_gantt.golden",
		runCLI(t, "-platform", "nancy", "-family", "fft", "-n", "2", "-strategy", "WPS-work", "-seed", "7", "-gantt"))
}

func TestGoldenCampaignList(t *testing.T) {
	clitest.CheckGolden(t, "campaign_list.golden",
		runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-list"))
}

func TestGoldenCampaignPoint(t *testing.T) {
	clitest.CheckGolden(t, "campaign_point.golden",
		runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-point", "strassen/n=3/rep=1/Rennes"))
}

func TestGoldenCampaignPointByIndex(t *testing.T) {
	// The same point addressed by global index prints identically.
	byName := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-point", "strassen/n=2/rep=0/Lille")
	byIdx := runCLI(t, "-campaign", "testdata/smoke-campaign.json", "-point", "0")
	if !bytes.Equal(byName, byIdx) {
		t.Error("point by name and by index print differently")
	}
}

func TestGoldenCampaignOnlinePoint(t *testing.T) {
	clitest.CheckGolden(t, "campaign_online_point.golden",
		runCLI(t, "-campaign", "testdata/online-campaign.json", "-point", "random+poisson@0.25/n=3/rep=0/Nancy"))
}

func TestHelpExitsCleanly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned %v", err)
	}
	if !strings.Contains(buf.String(), "-platform") {
		t.Fatal("-h did not print usage")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-platform", "mars"}, &buf); err == nil {
		t.Error("unknown platform accepted")
	}
	if err := run([]string{"-campaign", "testdata/smoke-campaign.json"}, &buf); err == nil {
		t.Error("-campaign without -point or -list accepted")
	}
	if err := run([]string{"-campaign", "testdata/smoke-campaign.json", "-point", "nope"}, &buf); err == nil {
		t.Error("unknown point accepted")
	}
	if err := run([]string{"-point", "0"}, &buf); err == nil {
		t.Error("-point without -campaign accepted")
	}
}
