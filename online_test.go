package ptgsched_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"ptgsched"
)

func TestFacadeOnlinePipeline(t *testing.T) {
	pf := ptgsched.Nancy()
	r := rand.New(rand.NewSource(5))
	arrivals := ptgsched.GenerateWorkload(ptgsched.WorkloadSpec{
		Family:  ptgsched.FamilyStrassen,
		Count:   6,
		Process: ptgsched.PoissonArrivals,
		Rate:    0.5,
	}, r)
	res := ptgsched.ScheduleOnline(pf, arrivals, ptgsched.OnlineOptions{
		Strategy: ptgsched.WPS(ptgsched.Work, 0.7),
	})
	if len(res.Apps) != 6 {
		t.Fatalf("%d app results", len(res.Apps))
	}
	for i, app := range res.Apps {
		if app.FlowTime() <= 0 {
			t.Errorf("app %d: flow time %g", i, app.FlowTime())
		}
		if app.StartedAt < app.SubmittedAt {
			t.Errorf("app %d started before submission", i)
		}
	}
	if res.Rebalances < 6 {
		t.Errorf("rebalances = %d, want >= one per arrival", res.Rebalances)
	}
}

func TestFacadeWorkloadTraceRoundTrip(t *testing.T) {
	arrivals := ptgsched.GenerateWorkload(ptgsched.WorkloadSpec{
		Family:  ptgsched.FamilyFFT,
		Count:   3,
		Process: ptgsched.UniformArrivals,
		Rate:    1,
	}, rand.New(rand.NewSource(6)))
	var buf bytes.Buffer
	if err := ptgsched.WriteWorkloadTrace(&buf, arrivals); err != nil {
		t.Fatal(err)
	}
	back, err := ptgsched.ReadWorkloadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("%d arrivals after round trip", len(back))
	}
	var dot bytes.Buffer
	if err := ptgsched.WriteWorkloadDOT(&dot, back); err != nil {
		t.Fatal(err)
	}
	if strings.Count(dot.String(), "digraph") != 3 {
		t.Errorf("workload DOT should contain 3 graphs")
	}
}

func TestFacadeAnalysis(t *testing.T) {
	pf := ptgsched.Lille()
	sched := ptgsched.NewScheduler(pf)
	r := rand.New(rand.NewSource(7))
	graphs := []*ptgsched.Graph{
		ptgsched.GeneratePTG(ptgsched.FamilyRandom, r),
		ptgsched.GeneratePTG(ptgsched.FamilyRandom, r),
	}
	res := sched.Schedule(graphs, ptgsched.ES())

	us := ptgsched.ScheduleUtilization(res.Schedule)
	if len(us) != len(pf.Clusters) {
		t.Fatalf("%d utilizations", len(us))
	}
	for _, u := range us {
		if u.Utilization < 0 || u.Utilization > 1+1e-9 {
			t.Errorf("cluster %s utilization %g out of range", u.Cluster, u.Utilization)
		}
	}
	es := ptgsched.ScheduleEfficiencies(res.Schedule)
	for _, e := range es {
		if e.Efficiency <= 0 || e.Efficiency > 1+1e-9 {
			t.Errorf("app %d efficiency %g out of range", e.App, e.Efficiency)
		}
	}
	sum := ptgsched.SummarizeSchedule(res.Schedule)
	if sum.Placements != len(graphs[0].Tasks)+len(graphs[1].Tasks) {
		t.Errorf("summary placements = %d", sum.Placements)
	}

	var stats ptgsched.GraphStats = graphs[0].ComputeStats()
	if stats.Tasks != len(graphs[0].Tasks) {
		t.Errorf("stats tasks = %d", stats.Tasks)
	}
}
