package ptgsched

import (
	"ptgsched/internal/cache"
	"ptgsched/internal/scenario"
)

// Content-addressed result cache (internal/cache): campaign points are
// memoized under tamper-evident hash-chained segments, so overlapping
// campaigns — across runs, jobs, users and fleet workers sharing one
// directory — skip recomputation, and any corrupted entry is detected on
// read and recomputed instead of served.
type (
	// CampaignCache is an open cache directory. Bind it to an expansion
	// to obtain a CampaignMemo for RunMemo/RunEachMemo/Store.UseMemo.
	CampaignCache = cache.Cache
	// CampaignCacheStats is the cache counter snapshot (hits, misses,
	// verify failures, entries, segments).
	CampaignCacheStats = cache.Stats
	// CampaignCacheVerifyError diagnoses one detected cache corruption.
	CampaignCacheVerifyError = cache.VerifyError
	// CampaignMemo is the per-point memoization interface every sweep
	// engine consults (scenario.Memo).
	CampaignMemo = scenario.Memo
)

// OpenCampaignCache opens (creating if needed) a content-addressed result
// cache directory, verifying every segment's hash chain.
var OpenCampaignCache = cache.Open
