package ptgsched_test

import (
	"fmt"
	"math/rand"

	"ptgsched"
)

// Example demonstrates the complete paper pipeline on a deterministic toy
// scenario: two chain applications share a 2-processor cluster under the
// equal-share strategy.
func Example() {
	pf := ptgsched.NewPlatform("toy", true,
		ptgsched.ClusterSpec{Name: "c0", Procs: 2, Speed: 1})

	mk := func(name string, works ...float64) *ptgsched.Graph {
		g := ptgsched.NewGraph(name)
		var prev *ptgsched.Task
		for i, w := range works {
			t := g.AddTask(fmt.Sprintf("%s%d", name, i), 1, w, 0)
			if prev != nil {
				g.MustAddEdge(prev, t, 0)
			}
			prev = t
		}
		return g
	}
	big, small := mk("big", 10, 5), mk("small", 2, 2)

	sched := ptgsched.NewScheduler(pf)
	res := sched.Schedule([]*ptgsched.Graph{big, small}, ptgsched.ES())
	fmt.Printf("big:   %.0f s\n", res.Makespan(0))
	fmt.Printf("small: %.0f s\n", res.Makespan(1))
	// Output:
	// big:   15 s
	// small: 4 s
}

// ExampleStrategy_Betas shows how the eight strategies translate PTG
// characteristics into resource constraints.
func ExampleStrategy_Betas() {
	g1 := ptgsched.NewGraph("light")
	g1.AddTask("t", 1e6, 100, 0)
	g2 := ptgsched.NewGraph("heavy")
	g2.AddTask("t", 1e6, 300, 0)
	graphs := []*ptgsched.Graph{g1, g2}
	ref := ptgsched.Rennes().ReferenceCluster()

	for _, s := range []ptgsched.Strategy{
		ptgsched.ES(),
		ptgsched.PS(ptgsched.Work),
		ptgsched.WPS(ptgsched.Work, 0.5),
	} {
		fmt.Printf("%-8s %.3v\n", s.Name(), s.Betas(graphs, ref))
	}
	// Output:
	// ES       [0.5 0.5]
	// PS-work  [0.25 0.75]
	// WPS-work [0.375 0.625]
}

// ExampleGeneratePTG draws one of the paper's synthetic workflow graphs.
func ExampleGeneratePTG() {
	r := rand.New(rand.NewSource(1))
	g := ptgsched.GeneratePTG(ptgsched.FamilyStrassen, r)
	stats := g.ComputeStats()
	fmt.Printf("%s: %d tasks, depth %d, width %d\n",
		g.Name, stats.Tasks, stats.Depth, stats.MaxWidth)
	// Output:
	// strassen: 25 tasks, depth 5, width 10
}
