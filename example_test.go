package ptgsched_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"

	"ptgsched"
)

// Example demonstrates the complete paper pipeline on a deterministic toy
// scenario: two chain applications share a 2-processor cluster under the
// equal-share strategy.
func Example() {
	pf := ptgsched.NewPlatform("toy", true,
		ptgsched.ClusterSpec{Name: "c0", Procs: 2, Speed: 1})

	mk := func(name string, works ...float64) *ptgsched.Graph {
		g := ptgsched.NewGraph(name)
		var prev *ptgsched.Task
		for i, w := range works {
			t := g.AddTask(fmt.Sprintf("%s%d", name, i), 1, w, 0)
			if prev != nil {
				g.MustAddEdge(prev, t, 0)
			}
			prev = t
		}
		return g
	}
	big, small := mk("big", 10, 5), mk("small", 2, 2)

	sched := ptgsched.NewScheduler(pf)
	res := sched.Schedule([]*ptgsched.Graph{big, small}, ptgsched.ES())
	fmt.Printf("big:   %.0f s\n", res.Makespan(0))
	fmt.Printf("small: %.0f s\n", res.Makespan(1))
	// Output:
	// big:   15 s
	// small: 4 s
}

// ExampleStrategy_Betas shows how the eight strategies translate PTG
// characteristics into resource constraints.
func ExampleStrategy_Betas() {
	g1 := ptgsched.NewGraph("light")
	g1.AddTask("t", 1e6, 100, 0)
	g2 := ptgsched.NewGraph("heavy")
	g2.AddTask("t", 1e6, 300, 0)
	graphs := []*ptgsched.Graph{g1, g2}
	ref := ptgsched.Rennes().ReferenceCluster()

	for _, s := range []ptgsched.Strategy{
		ptgsched.ES(),
		ptgsched.PS(ptgsched.Work),
		ptgsched.WPS(ptgsched.Work, 0.5),
	} {
		fmt.Printf("%-8s %.3v\n", s.Name(), s.Betas(graphs, ref))
	}
	// Output:
	// ES       [0.5 0.5]
	// PS-work  [0.25 0.75]
	// WPS-work [0.375 0.625]
}

// ExampleGeneratePTG draws one of the paper's synthetic workflow graphs.
func ExampleGeneratePTG() {
	r := rand.New(rand.NewSource(1))
	g := ptgsched.GeneratePTG(ptgsched.FamilyStrassen, r)
	stats := g.ComputeStats()
	fmt.Printf("%s: %d tasks, depth %d, width %d\n",
		g.Name, stats.Tasks, stats.Depth, stats.MaxWidth)
	// Output:
	// strassen: 25 tasks, depth 5, width 10
}

// ExampleScheduler_Schedule runs the pipeline on a generated batch and
// inspects the per-application outcome.
func ExampleScheduler_Schedule() {
	pf := ptgsched.Rennes()
	sched := ptgsched.NewScheduler(pf)
	r := rand.New(rand.NewSource(2))
	graphs := []*ptgsched.Graph{
		ptgsched.StrassenPTG(r),
		ptgsched.StrassenPTG(r),
	}
	res := sched.Schedule(graphs, ptgsched.PS(ptgsched.Work))
	for i := range graphs {
		fmt.Printf("app %d: beta %.2f, makespan %.1f s\n", i, res.Betas[i], res.Makespan(i))
	}
	// Output:
	// app 0: beta 0.12, makespan 6.1 s
	// app 1: beta 0.88, makespan 11.9 s
}

// ExampleScheduleOnline schedules applications arriving over time, with
// the resource constraints rebalanced on each arrival and completion.
func ExampleScheduleOnline() {
	pf := ptgsched.NewPlatform("toy", true,
		ptgsched.ClusterSpec{Name: "c0", Procs: 4, Speed: 1})
	mkChain := func(name string, works ...float64) *ptgsched.Graph {
		g := ptgsched.NewGraph(name)
		var prev *ptgsched.Task
		for i, w := range works {
			t := g.AddTask(fmt.Sprintf("%s%d", name, i), 1, w, 0)
			if prev != nil {
				g.MustAddEdge(prev, t, 0)
			}
			prev = t
		}
		return g
	}
	arrivals := []ptgsched.Arrival{
		{Graph: mkChain("a", 4, 4), At: 0},
		{Graph: mkChain("b", 2, 2), At: 1},
	}
	res := ptgsched.ScheduleOnline(pf, arrivals, ptgsched.OnlineOptions{
		Strategy: ptgsched.ES(),
	})
	for i, app := range res.Apps {
		fmt.Printf("app %d: flow time %.0f s\n", i, app.FlowTime())
	}
	fmt.Printf("rebalances: %d\n", res.Rebalances)
	// Output:
	// app 0: flow time 3 s
	// app 1: flow time 2 s
	// rebalances: 3
}

// ExampleNewService submits a request to the concurrent scheduling
// service — the same pipeline, multiplexed through a bounded worker pool.
func ExampleNewService() {
	svc := ptgsched.NewService(ptgsched.ServiceOptions{Workers: 2})
	defer svc.Close()

	resp, err := svc.Schedule(context.Background(), ptgsched.ScheduleServiceRequest{
		Platform: "lille",
		Family:   "strassen",
		Count:    2,
		Strategy: "ES",
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s on %s: %d apps, betas %.2v\n",
		resp.Strategy, resp.Platform, resp.Count, resp.Betas)
	fmt.Printf("makespan %.1f s\n", resp.Makespan)
	// Output:
	// ES on Lille: 2 apps, betas [0.5 0.5]
	// makespan 19.0 s
}

// ExampleService_SubmitJob is the asynchronous campaign round-trip: submit
// a job, poll it to completion, stream its per-point results. Over HTTP
// the same flow is POST /v1/jobs → GET /v1/jobs/{id} →
// GET /v1/jobs/{id}/results.
func ExampleService_SubmitJob() {
	svc := ptgsched.NewService(ptgsched.ServiceOptions{Workers: 2})
	defer svc.Close()

	st, err := svc.SubmitJob(ptgsched.CampaignJobRequest{
		Spec: []byte(`{
			"name": "demo", "seed": 9, "reps": 2, "nptgs": [2, 3],
			"platforms": ["lille"], "families": [{"family": "strassen"}]
		}`),
		Shards: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("submitted: %d points in %d shards\n", st.Points, len(st.Shards))

	// Poll (WaitJob blocks; a remote client polls GET /v1/jobs/{id}).
	final, err := svc.WaitJob(context.Background(), st.ID)
	if err != nil {
		panic(err)
	}
	fmt.Printf("state %s: %d/%d points\n", final.State, final.Completed, final.Points)

	// Stream completed results, projected to the ES strategy column.
	var buf bytes.Buffer
	if err := svc.JobResults(st.ID, ptgsched.CampaignJobResultQuery{Strategy: "ES"}, &buf); err != nil {
		panic(err)
	}
	results, err := ptgsched.ReadCampaignJSONL(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("streamed %d results; first: %s\n", len(results), results[0].Name)
	// Output:
	// submitted: 4 points in 2 shards
	// state done: 4/4 points
	// streamed 4 results; first: strassen/n=2/rep=0/Lille
}

// ExampleParseCampaignSpec expands a declarative campaign spec into its
// deterministic scenario sweep and runs one shard of it.
func ExampleParseCampaignSpec() {
	spec, err := ptgsched.ParseCampaignSpec([]byte(`{
		"name": "demo",
		"seed": 9,
		"reps": 2,
		"nptgs": [2, 3],
		"platforms": ["lille"],
		"families": [{"family": "strassen"}]
	}`))
	if err != nil {
		panic(err)
	}
	e, err := ptgsched.ExpandCampaign(spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d cells, %d points\n", len(e.Cells), e.NumPoints())

	shard, err := e.Shard(0, 2) // every 2nd point; run the rest elsewhere
	if err != nil {
		panic(err)
	}
	results := e.Run(shard, 1)
	fmt.Printf("shard 0/2 ran %d points; first: %s\n", len(results), results[0].Name)
	// Output:
	// 1 cells, 4 points
	// shard 0/2 ran 2 points; first: strassen/n=2/rep=0/Lille
}
