package ptgsched_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"ptgsched"
)

// TestFacadeEndToEnd drives the whole public API the way the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	pf := ptgsched.Rennes()
	sched := ptgsched.NewScheduler(pf)
	r := rand.New(rand.NewSource(1))
	graphs := []*ptgsched.Graph{
		ptgsched.RandomPTG(ptgsched.RandomConfig{
			Tasks: 20, Width: 0.5, Regularity: 0.8, Density: 0.2, Jump: 1,
		}, r),
		ptgsched.StrassenPTG(r),
		ptgsched.FFTPTG(3, r),
	}
	res := sched.Schedule(graphs, ptgsched.WPS(ptgsched.Width, 0.5))
	if res.GlobalMakespan() <= 0 {
		t.Fatal("non-positive makespan")
	}
	if err := ptgsched.ValidateSchedule(res.Schedule); err != nil {
		t.Fatal(err)
	}

	own := make([]float64, len(graphs))
	for i, g := range graphs {
		own[i] = sched.ScheduleAlone(g)
	}
	ev := res.Evaluate(own)
	if ev.Unfairness < 0 {
		t.Fatal("negative unfairness")
	}

	var gantt bytes.Buffer
	if err := ptgsched.WriteGantt(&gantt, res.Schedule, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gantt.String(), "makespan") {
		t.Error("gantt output missing header")
	}
	var js bytes.Buffer
	if err := ptgsched.WriteScheduleJSON(&js, res.Schedule); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "\"cluster\"") {
		t.Error("JSON output missing fields")
	}
}

func TestFacadeBaselines(t *testing.T) {
	pf := ptgsched.Lille()
	g := ptgsched.GeneratePTG(ptgsched.FamilyRandom, rand.New(rand.NewSource(2)))
	for name, s := range map[string]*ptgsched.Schedule{
		"HEFT":  ptgsched.HEFT(pf, g),
		"MHEFT": ptgsched.MHEFT(pf, g),
		"HCPA":  ptgsched.HCPA(pf, g),
	} {
		if err := ptgsched.ValidateSchedule(s); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFacadeExperiment(t *testing.T) {
	cfg := ptgsched.ExperimentConfig{
		Family:    ptgsched.FamilyStrassen,
		NPTGs:     []int{2},
		Reps:      1,
		Platforms: []*ptgsched.Platform{ptgsched.Lille()},
		Seed:      3,
	}
	res := ptgsched.RunExperiment(cfg)
	if len(res.Points) != 1 {
		t.Fatalf("%d points", len(res.Points))
	}
	var buf bytes.Buffer
	if err := res.RenderTable(&buf, ptgsched.MetricRelMakespan); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "relative makespan") {
		t.Error("table header missing")
	}
}

func TestFacadeStrategyHelpers(t *testing.T) {
	if got := len(ptgsched.PaperStrategies(ptgsched.FamilyFFT)); got != 8 {
		t.Errorf("paper strategies = %d", got)
	}
	if mu := ptgsched.DefaultMu(ptgsched.Work, ptgsched.FamilyRandom); mu != 0.7 {
		t.Errorf("default mu = %g", mu)
	}
}
