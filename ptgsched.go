// Package ptgsched reproduces the system of N'Takpé & Suter, "Concurrent
// Scheduling of Parallel Task Graphs on Multi-Clusters Using Constrained
// Resource Allocations" (INRIA RR-6774, IPDPS/IPPS 2009): scheduling of
// several mixed-parallel applications (parallel task graphs, PTGs) that are
// submitted concurrently to a heterogeneous multi-cluster platform.
//
// The pipeline is the paper's two-step approach. First, a resource
// constraint β is determined per application by one of eight strategies
// (selfish, equal share, proportional share or weighted proportional share
// on critical path / width / work). Then each application's tasks are
// allocated processors on a homogeneous reference cluster with the
// SCRAP-MAX constrained procedure, and all applications are mapped together
// by a ready-task list scheduler with allocation packing. Schedules are
// executed on a discrete-event simulator with max-min fair network
// contention, standing in for the paper's SimGrid setup.
//
// Quick start:
//
//	pf := ptgsched.Rennes()
//	sched := ptgsched.NewScheduler(pf)
//	r := rand.New(rand.NewSource(1))
//	graphs := []*ptgsched.Graph{
//		ptgsched.RandomPTG(ptgsched.RandomConfig{Tasks: 20, Width: 0.5,
//			Regularity: 0.8, Density: 0.2, Jump: 1}, r),
//		ptgsched.StrassenPTG(r),
//	}
//	res := sched.Schedule(graphs, ptgsched.WPS(ptgsched.Width, 0.5))
//	fmt.Println(res.GlobalMakespan())
//
// The experiment sub-API (RunExperiment with Fig2Config … Fig5Config)
// regenerates every figure of the paper's evaluation; see the cmd/ptgbench
// doc comment for the command-line entry points.
//
// Above the per-batch pipeline sits the concurrency layer: NewService
// starts a bounded worker pool multiplexing many
// schedule/online/workload/campaign requests through one shared server
// core, and Serve exposes it over HTTP+JSON (the cmd/ptgserve surface).
// RunExperiment fans campaign runs out over Config.Workers goroutines with
// results bit-identical to the sequential runner.
//
// Arbitrary scenario spaces are described declaratively: ParseCampaignSpec
// reads a JSON campaign spec (platforms including inline heterogeneous
// cluster specs, PTG families with explicit parameter grids, strategy
// sets, seeds, replication counts, online arrival processes),
// ExpandCampaign enumerates its deterministic cartesian sweep, and the
// expansion runs whole, as one shard of n (recombining bit-identically),
// or point by point. The checked-in examples/campaign.json reproduces the
// paper's Figure 3 campaign through this path.
//
// Concurrency contract, in brief: a Platform (and its presets) is
// immutable after construction and freely shared; a Scheduler is an
// immutable configuration whose Schedule calls keep all mutable state
// per-call; a Graph carries cached analyses and must be confined to one
// scheduling pipeline at a time. Independent runs over distinct graphs
// therefore parallelize without locks — the Service and the experiment
// engine are built exactly on that rule. Each internal package's godoc
// states its own contract.
package ptgsched

import (
	"io"
	"math/rand"

	"ptgsched/internal/alloc"
	"ptgsched/internal/baseline"
	"ptgsched/internal/core"
	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/experiment"
	"ptgsched/internal/mapping"
	"ptgsched/internal/metrics"
	"ptgsched/internal/platform"
	"ptgsched/internal/strategy"
	"ptgsched/internal/trace"
)

// Platform modelling.
type (
	// Platform is a heterogeneous multi-cluster site.
	Platform = platform.Platform
	// Cluster is one homogeneous cluster of a platform.
	Cluster = platform.Cluster
	// ClusterSpec describes a cluster for NewPlatform.
	ClusterSpec = platform.ClusterSpec
	// Reference is the homogeneous reference cluster used by allocation.
	Reference = platform.Reference
)

// NewPlatform assembles a platform from cluster specs; sharedSwitch selects
// the site network topology.
func NewPlatform(name string, sharedSwitch bool, specs ...ClusterSpec) *Platform {
	return platform.New(name, sharedSwitch, specs...)
}

// Grid'5000 presets (Table 1 of the paper).
var (
	Lille         = platform.Lille
	Nancy         = platform.Nancy
	Rennes        = platform.Rennes
	Sophia        = platform.Sophia
	Grid5000Sites = platform.Grid5000Sites
)

// PTG modelling and generation.
type (
	// Graph is a parallel task graph. Its structural analyses (topological
	// order, precedence levels, entries/exits) are cached on the graph and
	// share scratch buffers, so a Graph must not be analyzed or scheduled
	// from multiple goroutines concurrently, and slices returned by its
	// analysis methods must be treated as read-only.
	Graph = dag.Graph
	// Task is a moldable data-parallel task.
	Task = dag.Task
	// Edge is a data dependence between tasks.
	Edge = dag.Edge
	// RandomConfig parameterizes the synthetic PTG generator.
	RandomConfig = daggen.RandomConfig
	// PTGFamily identifies one of the paper's PTG families.
	PTGFamily = daggen.Family
)

// PTG family constants.
const (
	FamilyRandom   = daggen.FamilyRandom
	FamilyFFT      = daggen.FamilyFFT
	FamilyStrassen = daggen.FamilyStrassen
)

// NewGraph returns an empty PTG; add tasks and edges with its methods.
func NewGraph(name string) *Graph { return dag.New(name) }

// RandomPTG generates a synthetic PTG per the paper's §2 model.
func RandomPTG(cfg RandomConfig, r *rand.Rand) *Graph { return daggen.Random(cfg, r) }

// FFTPTG generates the PTG of a 2^k-point mixed-parallel FFT.
func FFTPTG(k int, r *rand.Rand) *Graph { return daggen.FFT(k, r) }

// StrassenPTG generates the 25-task Strassen multiplication PTG.
func StrassenPTG(r *rand.Rand) *Graph { return daggen.Strassen(r) }

// GeneratePTG draws one PTG of the given family from the paper's parameter
// grids.
func GeneratePTG(f PTGFamily, r *rand.Rand) *Graph { return daggen.Generate(f, r) }

// Constraint determination strategies (§6).
type (
	// Strategy determines the per-application resource constraint β.
	Strategy = strategy.Strategy
	// Characteristic selects the PTG property used by PS/WPS strategies.
	Characteristic = strategy.Characteristic
)

// Characteristics.
const (
	CriticalPath = strategy.CriticalPath
	Width        = strategy.Width
	Work         = strategy.Work
)

// Strategy constructors.
var (
	// S is the selfish strategy: β = 1 for every application.
	S = strategy.S
	// ES is the equal-share strategy: β = 1/|A|.
	ES = strategy.ES
	// PS is the proportional-share strategy on a characteristic (Eq. 1).
	PS = strategy.PS
	// WPS is the weighted proportional-share strategy (Eq. 2).
	WPS = strategy.WPS
	// DefaultMu returns the paper's calibrated µ for a WPS variant.
	DefaultMu = strategy.DefaultMu
	// PaperStrategies returns the strategy set the paper evaluates for a
	// PTG family.
	PaperStrategies = strategy.PaperSet
)

// Scheduling.
type (
	// Scheduler runs the full strategy→allocation→mapping→simulation
	// pipeline.
	Scheduler = core.Scheduler
	// ScheduleResult is the outcome of scheduling one batch.
	ScheduleResult = core.Result
	// Evaluation bundles the paper's metrics for one batch.
	Evaluation = core.Evaluation
	// Allocation is a per-task processor allocation on the reference
	// cluster.
	Allocation = alloc.Allocation
	// Schedule is a mapped schedule.
	Schedule = mapping.Schedule
	// Placement locates one task's execution.
	Placement = mapping.Placement
	// MapOptions tunes the mapping step (ordering, packing).
	MapOptions = mapping.Options
)

// NewScheduler returns a scheduler in the paper's configuration (SCRAP-MAX
// allocation, ready-task ordering, packing on).
func NewScheduler(pf *Platform) *Scheduler { return core.New(pf) }

// Mapping orderings.
const (
	// ReadyTasksOrdering is the paper's ready-task bottom-level ordering.
	ReadyTasksOrdering = mapping.ReadyTasks
	// GlobalOrdering is the classical aggregated ordering (Fig. 1's
	// counterexample).
	GlobalOrdering = mapping.Global
)

// Baseline single-PTG schedulers from related work.
var (
	// HEFT list-schedules a PTG with sequential tasks.
	HEFT = baseline.HEFT
	// MHEFT is the moldable extension of HEFT with an efficiency floor.
	MHEFT = baseline.MHEFT
	// CPA computes the classical critical-path-and-area allocation.
	CPA = baseline.CPA
	// HCPA schedules one PTG with the heterogeneous CPA pipeline.
	HCPA = baseline.HCPA
)

// Metrics (§7, Eq. 3–5).
var (
	// Slowdown is M_own/M_multi for one application.
	Slowdown = metrics.Slowdown
	// Unfairness sums absolute slowdown deviations from the mean.
	Unfairness = metrics.Unfairness
	// RelativeMakespans normalizes strategy makespans by the best one.
	RelativeMakespans = metrics.RelativeMakespans
)

// Experiment harness regenerating the paper's evaluation.
type (
	// ExperimentConfig describes one campaign.
	ExperimentConfig = experiment.Config
	// ExperimentResult is an aggregated campaign outcome.
	ExperimentResult = experiment.Result
	// ExperimentMetric selects a series to render.
	ExperimentMetric = experiment.Metric
)

// Experiment entry points.
var (
	// RunExperiment executes a campaign.
	RunExperiment = experiment.Run
	// Fig2Config …Fig5Config regenerate the paper's figures.
	Fig2Config = experiment.Fig2Config
	Fig3Config = experiment.Fig3Config
	Fig4Config = experiment.Fig4Config
	Fig5Config = experiment.Fig5Config
	// MuCalibrationConfig sweeps µ for any WPS variant and family.
	MuCalibrationConfig = experiment.MuCalibrationConfig
)

// Experiment metrics.
const (
	MetricUnfairness  = experiment.Unfairness
	MetricAvgMakespan = experiment.AvgMakespan
	MetricRelMakespan = experiment.RelMakespan
)

// Schedule inspection.

// ValidateSchedule checks a schedule's structural invariants.
func ValidateSchedule(s *Schedule) error { return trace.Validate(s) }

// WriteGantt renders a text Gantt chart of a schedule.
func WriteGantt(w io.Writer, s *Schedule, width int) error { return trace.Gantt(w, s, width) }

// WriteScheduleJSON exports a schedule's placements as JSON.
func WriteScheduleJSON(w io.Writer, s *Schedule) error { return trace.WriteJSON(w, s) }
