module ptgsched

go 1.22
