package ptgsched

import (
	"ptgsched/internal/coord"
)

// Fleet coordination (the fault-tolerant distribution layer): a campaign
// spec is split into shard leases, dispatched to remote ptgserve workers
// over the /v1/jobs API, and driven to completion under failure — retries
// with capped exponential backoff and Retry-After honoring, dead- and
// stalled-worker detection, lease reassignment, and a streaming deduped
// merge whose tables are bit-identical to a single-machine run.
type (
	// FleetCoordinator drives one campaign over a worker fleet; create
	// with NewFleetCoordinator, run once with its Run method.
	FleetCoordinator = coord.Coordinator
	// FleetOptions shapes the coordination: shard count, poll cadence,
	// stall and retry budgets, per-worker client options.
	FleetOptions = coord.Options
	// FleetClientOptions configures the hardened per-worker HTTP client
	// (timeouts, retry policy, the fault-injection transport hook).
	FleetClientOptions = coord.ClientOptions
	// FleetRetryPolicy is the capped-exponential-backoff retry shape.
	FleetRetryPolicy = coord.RetryPolicy
	// FleetCounters snapshots the robustness counters (dispatches,
	// retries, reassignments, worker deaths, deduplicated points).
	FleetCounters = coord.CountersSnapshot
	// FleetProgress is a point-in-time completion view.
	FleetProgress = coord.Progress
	// FleetStats bundles counters and progress — the payload of the
	// coordinator's own /v1/stats endpoint.
	FleetStats = coord.FleetStats
	// WorkerClient is the hardened client to one ptgserve worker, usable
	// on its own for scripted job control.
	WorkerClient = coord.Client
	// WorkerStatusError is a non-2xx worker response the retry loop did
	// not (or could not) retry away.
	WorkerStatusError = coord.StatusError
)

// NewFleetCoordinator validates and expands the campaign spec and
// prepares a coordinator over the given worker addresses ("host:port" or
// full URLs).
func NewFleetCoordinator(specJSON []byte, workers []string, opts FleetOptions) (*FleetCoordinator, error) {
	return coord.New(specJSON, workers, opts)
}

// NewWorkerClient returns a hardened HTTP client for one worker address.
func NewWorkerClient(base string, opts FleetClientOptions) (*WorkerClient, error) {
	return coord.NewClient(base, opts)
}
