package daggen

import (
	"fmt"
	"math/rand"

	"ptgsched/internal/cost"
	"ptgsched/internal/dag"
)

// FFT generates the parallel task graph of a 2^k-point mixed-parallel FFT,
// the classical test case used by the paper (§2, after [5]): a recursive
// splitting binary tree of depth k followed by k butterfly stages of 2^k
// tasks each. Task counts are 15, 39 and 95 for k = 2, 3, 4, matching the
// paper's FFT sizes (the paper reports 15, 37 and 95; see the daggen tests
// for the off-by-two note on the middle size).
//
// FFT PTGs are regular: every task in a level has the same cost. The root
// operates on d0 elements drawn uniformly in [4M, 121M]; tree level l
// operates on d0/2^l; all butterfly tasks operate on d0/2^k. All tasks use
// the a·d complexity class with one coefficient and one Amdahl fraction
// drawn per graph.
func FFT(k int, r *rand.Rand) *dag.Graph {
	if k < 1 || k > 20 {
		panic(fmt.Sprintf("daggen: FFT exponent %d outside [1,20]", k))
	}
	n := 1 << k
	g := dag.New(fmt.Sprintf("fft-%dpt", n))

	d0 := cost.MinDataElems + r.Float64()*(cost.MaxDataElems-cost.MinDataElems)
	a := float64(cost.MinCoeff + r.Intn(cost.MaxCoeff-cost.MinCoeff+1))
	alpha := r.Float64() * cost.AlphaMax
	work := func(d float64) float64 { return cost.GFlop(cost.Flops(cost.Linear, a, d)) }

	// Recursive splitting tree: level l has 2^l tasks on d0/2^l elements.
	tree := make([][]*dag.Task, k+1)
	for l := 0; l <= k; l++ {
		d := d0 / float64(int(1)<<l)
		for i := 0; i < 1<<l; i++ {
			t := g.AddTask(fmt.Sprintf("split-%d-%d", l, i), d, work(d), alpha)
			tree[l] = append(tree[l], t)
			if l > 0 {
				parent := tree[l-1][i/2]
				g.MustAddEdge(parent, t, cost.EdgeBytes(d))
			}
		}
	}

	// Butterfly stages: stage s has n tasks on d0/n elements; task i of
	// stage s depends on tasks i and i XOR 2^s of the previous row (the
	// leaves of the tree for s = 0).
	dLeaf := d0 / float64(n)
	prev := tree[k]
	for s := 0; s < k; s++ {
		row := make([]*dag.Task, n)
		for i := 0; i < n; i++ {
			row[i] = g.AddTask(fmt.Sprintf("bfly-%d-%d", s, i), dLeaf, work(dLeaf), alpha)
		}
		for i := 0; i < n; i++ {
			g.MustAddEdge(prev[i], row[i], cost.EdgeBytes(dLeaf))
			g.MustAddEdge(prev[i^(1<<s)], row[i], cost.EdgeBytes(dLeaf))
		}
		prev = row
	}

	// The last butterfly row is the exit row (n exits). The single-exit
	// assumption of §2 is "without loss of generality"; every analysis in
	// this repository handles multiple exits, so we keep the classical
	// 2n-1 + n·log n task count and validate non-strictly.
	if err := g.Validate(false); err != nil {
		panic(fmt.Sprintf("daggen: invalid FFT graph: %v", err))
	}
	return g
}

// FFTTaskCount returns the number of tasks of FFT(k) without generating it:
// 2·2^k − 1 splitting-tree tasks plus k·2^k butterfly tasks.
func FFTTaskCount(k int) int {
	n := 1 << k
	return (2*n - 1) + k*n
}
