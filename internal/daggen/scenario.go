package daggen

import (
	"fmt"
	"math/rand"
	"strings"

	"ptgsched/internal/dag"
)

// Paper parameter grids (§2): width ∈ {0.2, 0.5, 0.8}, regularity and
// density ∈ {0.2, 0.8}, jump ∈ {1, 2, 4}, task counts ∈ {10, 20, 50},
// FFT sizes 4-, 8- and 16-point (k ∈ {2, 3, 4}).
var (
	PaperTaskCounts   = []int{10, 20, 50}
	PaperWidths       = []float64{0.2, 0.5, 0.8}
	PaperRegularities = []float64{0.2, 0.8}
	PaperDensities    = []float64{0.2, 0.8}
	PaperJumps        = []int{1, 2, 4}
	PaperFFTExponents = []int{2, 3, 4}
)

// PaperRandomConfig draws a random PTG configuration uniformly from the
// paper's parameter grid, with the complexity scenario drawn among the four
// of §2 (three pure classes plus mixed).
func PaperRandomConfig(r *rand.Rand) RandomConfig {
	return RandomConfig{
		Tasks:      PaperTaskCounts[r.Intn(len(PaperTaskCounts))],
		Width:      PaperWidths[r.Intn(len(PaperWidths))],
		Regularity: PaperRegularities[r.Intn(len(PaperRegularities))],
		Density:    PaperDensities[r.Intn(len(PaperDensities))],
		Jump:       PaperJumps[r.Intn(len(PaperJumps))],
		Complexity: ComplexityMode(r.Intn(4)),
	}
}

// Family identifies one of the paper's three PTG families.
type Family int

const (
	FamilyRandom Family = iota
	FamilyFFT
	FamilyStrassen
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyRandom:
		return "random"
	case FamilyFFT:
		return "fft"
	case FamilyStrassen:
		return "strassen"
	default:
		return "unknown"
	}
}

// FamilyByName parses a family name ("random", "fft" or "strassen", case
// insensitive). It is the shared resolver behind the CLIs and the
// scheduling service.
func FamilyByName(name string) (Family, error) {
	switch strings.ToLower(name) {
	case "random":
		return FamilyRandom, nil
	case "fft":
		return FamilyFFT, nil
	case "strassen":
		return FamilyStrassen, nil
	default:
		return 0, fmt.Errorf("daggen: unknown family %q (want random, fft or strassen)", name)
	}
}

// Generate draws one PTG of the given family using the paper's parameter
// grids: a PaperRandomConfig graph, an FFT of a random paper size, or a
// Strassen graph.
func Generate(f Family, r *rand.Rand) *dag.Graph {
	switch f {
	case FamilyRandom:
		return Random(PaperRandomConfig(r), r)
	case FamilyFFT:
		return FFT(PaperFFTExponents[r.Intn(len(PaperFFTExponents))], r)
	case FamilyStrassen:
		return Strassen(r)
	default:
		panic("daggen: unknown family")
	}
}
