package daggen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ptgsched/internal/cost"
	"ptgsched/internal/dag"
)

func TestRandomGraphBasicInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range PaperTaskCounts {
		cfg := RandomConfig{Tasks: n, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2, Complexity: Mixed}
		g := Random(cfg, r)
		if len(g.Tasks) != n {
			t.Errorf("n=%d: got %d tasks", n, len(g.Tasks))
		}
		if err := g.Validate(true); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestRandomGraphDeterministicPerSeed(t *testing.T) {
	cfg := RandomConfig{Tasks: 20, Width: 0.5, Regularity: 0.2, Density: 0.8, Jump: 4, Complexity: Mixed}
	g1 := Random(cfg, rand.New(rand.NewSource(42)))
	g2 := Random(cfg, rand.New(rand.NewSource(42)))
	if len(g1.Edges) != len(g2.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(g1.Edges), len(g2.Edges))
	}
	for i := range g1.Tasks {
		if g1.Tasks[i].SeqGFlop != g2.Tasks[i].SeqGFlop {
			t.Fatalf("task %d works differ", i)
		}
	}
}

func TestRandomWidthShapesGraph(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	narrow := Random(RandomConfig{Tasks: 50, Width: 0.2, Regularity: 0.8, Density: 0.5, Jump: 1, Complexity: Mixed}, r)
	wide := Random(RandomConfig{Tasks: 50, Width: 0.8, Regularity: 0.8, Density: 0.5, Jump: 1, Complexity: Mixed}, r)
	if narrow.MaxWidth() >= wide.MaxWidth() {
		t.Errorf("narrow width %d >= wide width %d", narrow.MaxWidth(), wide.MaxWidth())
	}
	if narrow.Depth() <= wide.Depth() {
		t.Errorf("narrow depth %d <= wide depth %d", narrow.Depth(), wide.Depth())
	}
}

func TestRandomDensityAddsEdges(t *testing.T) {
	sparseEdges, denseEdges := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		sparse := Random(RandomConfig{Tasks: 50, Width: 0.8, Regularity: 0.8, Density: 0.2, Jump: 1, Complexity: Mixed}, rand.New(rand.NewSource(seed)))
		dense := Random(RandomConfig{Tasks: 50, Width: 0.8, Regularity: 0.8, Density: 0.8, Jump: 1, Complexity: Mixed}, rand.New(rand.NewSource(seed)))
		sparseEdges += len(sparse.Edges)
		denseEdges += len(dense.Edges)
	}
	if denseEdges <= sparseEdges {
		t.Errorf("dense graphs have %d edges, sparse %d", denseEdges, sparseEdges)
	}
}

func TestRandomJumpOneStaysAdjacent(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := Random(RandomConfig{Tasks: 30, Width: 0.5, Regularity: 0.5, Density: 0.8, Jump: 1, Complexity: Mixed}, rand.New(rand.NewSource(seed)))
		lv := g.PrecedenceLevels()
		for _, e := range g.Edges {
			if d := lv[e.To.ID] - lv[e.From.ID]; d != 1 {
				t.Fatalf("jump=1 graph has edge spanning %d levels", d)
			}
		}
	}
}

func TestRandomTaskParamsWithinPaperBounds(t *testing.T) {
	g := Random(RandomConfig{Tasks: 50, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2, Complexity: Mixed}, rand.New(rand.NewSource(3)))
	for _, task := range g.Tasks {
		if task.DataElems < cost.MinDataElems || task.DataElems > cost.MaxDataElems {
			t.Errorf("task %s: d = %g outside [4M,121M]", task.Name, task.DataElems)
		}
		if task.Alpha < 0 || task.Alpha > cost.AlphaMax {
			t.Errorf("task %s: alpha = %g outside [0,0.25]", task.Name, task.Alpha)
		}
		if task.SeqGFlop <= 0 {
			t.Errorf("task %s: non-positive work", task.Name)
		}
	}
	for _, e := range g.Edges {
		if e.Bytes != cost.EdgeBytes(e.From.DataElems) {
			t.Errorf("edge %s->%s: bytes %g != 8*d of source", e.From.Name, e.To.Name, e.Bytes)
		}
	}
}

func TestRandomConfigValidation(t *testing.T) {
	bad := []RandomConfig{
		{Tasks: 2, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 1},
		{Tasks: 10, Width: 0, Regularity: 0.5, Density: 0.5, Jump: 1},
		{Tasks: 10, Width: 1.5, Regularity: 0.5, Density: 0.5, Jump: 1},
		{Tasks: 10, Width: 0.5, Regularity: -0.1, Density: 0.5, Jump: 1},
		{Tasks: 10, Width: 0.5, Regularity: 0.5, Density: 2, Jump: 1},
		{Tasks: 10, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestFFTTaskCounts(t *testing.T) {
	// Classical 2n-1 + n·log n counts for the paper's 4-, 8-, 16-point
	// FFTs. (The paper lists 15, 37, 95; the standard construction gives
	// 39 for the 8-point case.)
	want := map[int]int{2: 15, 3: 39, 4: 95}
	for k, n := range want {
		if got := FFTTaskCount(k); got != n {
			t.Errorf("FFTTaskCount(%d) = %d, want %d", k, got, n)
		}
		g := FFT(k, rand.New(rand.NewSource(1)))
		if len(g.Tasks) != n {
			t.Errorf("FFT(%d) has %d tasks, want %d", k, len(g.Tasks), n)
		}
	}
}

func TestFFTStructure(t *testing.T) {
	g := FFT(3, rand.New(rand.NewSource(2)))
	if err := g.Validate(false); err != nil {
		t.Fatal(err)
	}
	if n := len(g.Entries()); n != 1 {
		t.Errorf("FFT has %d entries, want 1", n)
	}
	if n := len(g.Exits()); n != 8 {
		t.Errorf("FFT(3) has %d exits, want 8 (last butterfly row)", n)
	}
	// Depth: k+1 tree levels + k butterfly stages.
	if d := g.Depth(); d != 7 {
		t.Errorf("FFT(3) depth = %d, want 7", d)
	}
	if w := g.MaxWidth(); w != 8 {
		t.Errorf("FFT(3) max width = %d, want 8", w)
	}
}

func TestFFTLevelsAreRegular(t *testing.T) {
	// §7: "every tasks in a given level have the same cost".
	g := FFT(4, rand.New(rand.NewSource(5)))
	for l, set := range g.LevelSets() {
		for _, task := range set[1:] {
			if task.SeqGFlop != set[0].SeqGFlop {
				t.Fatalf("level %d has tasks with different costs", l)
			}
		}
	}
}

func TestFFTButterflyWiring(t *testing.T) {
	g := FFT(2, rand.New(rand.NewSource(1)))
	// Every butterfly task has exactly 2 predecessors.
	for _, task := range g.Tasks {
		if len(task.In()) > 0 && len(task.Name) > 4 && task.Name[:4] == "bfly" {
			if n := len(task.In()); n != 2 {
				t.Errorf("butterfly task %s has %d preds, want 2", task.Name, n)
			}
		}
	}
}

func TestStrassenShape(t *testing.T) {
	g := Strassen(rand.New(rand.NewSource(9)))
	if len(g.Tasks) != StrassenTaskCount {
		t.Fatalf("Strassen has %d tasks, want %d", len(g.Tasks), StrassenTaskCount)
	}
	if err := g.Validate(true); err != nil {
		t.Fatal(err)
	}
	if d := g.Depth(); d != 5 {
		t.Errorf("depth = %d, want 5", d)
	}
	if w := g.MaxWidth(); w != 10 {
		t.Errorf("max width = %d, want 10", w)
	}
	sizes := []int{1, 10, 7, 6, 1}
	for l, set := range g.LevelSets() {
		if len(set) != sizes[l] {
			t.Errorf("level %d has %d tasks, want %d", l, len(set), sizes[l])
		}
	}
}

func TestStrassenGraphsShareShape(t *testing.T) {
	// §7: all Strassen PTGs have the same shape and maximal width; only
	// costs differ.
	g1 := Strassen(rand.New(rand.NewSource(1)))
	g2 := Strassen(rand.New(rand.NewSource(2)))
	if g1.MaxWidth() != g2.MaxWidth() || g1.Depth() != g2.Depth() || len(g1.Edges) != len(g2.Edges) {
		t.Fatal("two Strassen graphs differ in shape")
	}
	same := true
	for i := range g1.Tasks {
		if g1.Tasks[i].SeqGFlop != g2.Tasks[i].SeqGFlop {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two differently-seeded Strassen graphs have identical costs")
	}
}

func TestStrassenMultiplicationsDominate(t *testing.T) {
	g := Strassen(rand.New(rand.NewSource(4)))
	var mulWork, addWork float64
	for _, task := range g.Tasks {
		if task.Name[0] == 'P' {
			mulWork += task.SeqGFlop
		} else {
			addWork += task.SeqGFlop
		}
	}
	if mulWork <= addWork {
		t.Errorf("multiplication work %g should dominate addition work %g", mulWork, addWork)
	}
}

func TestGenerateFamilies(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, f := range []Family{FamilyRandom, FamilyFFT, FamilyStrassen} {
		g := Generate(f, r)
		if err := g.Validate(false); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyRandom.String() != "random" || FamilyFFT.String() != "fft" || FamilyStrassen.String() != "strassen" {
		t.Fatal("Family.String mismatch")
	}
}

func TestComplexityModeString(t *testing.T) {
	for m, want := range map[ComplexityMode]string{AllLinear: "all-linear", AllNLogN: "all-nlogn", AllMatrix: "all-matrix", Mixed: "mixed"} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

// Property: every random configuration from the paper grid yields a valid
// single-entry single-exit DAG with the requested task count.
func TestRandomGraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := PaperRandomConfig(r)
		g := Random(cfg, r)
		if len(g.Tasks) != cfg.Tasks {
			return false
		}
		if err := g.Validate(true); err != nil {
			return false
		}
		// Level structure: each task has a predecessor in its previous
		// precedence level (by construction).
		lv := g.PrecedenceLevels()
		for _, task := range g.Tasks {
			if lv[task.ID] == 0 {
				continue
			}
			ok := false
			for _, e := range task.In() {
				if lv[e.From.ID] == lv[task.ID]-1 {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: bottom levels of generated graphs are positive and entry tasks
// carry the critical path.
func TestGeneratedBottomLevelProperty(t *testing.T) {
	f := func(seed int64, fam uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := Generate(Family(fam%3), r)
		timeOf := func(task *dag.Task) float64 { return task.SeqGFlop }
		bl := g.BottomLevels(timeOf, dag.ZeroComm)
		cp := g.CriticalPathLength(timeOf, dag.ZeroComm)
		best := 0.0
		for _, task := range g.Tasks {
			if bl[task.ID] <= 0 {
				return false
			}
			if bl[task.ID] > best {
				best = bl[task.ID]
			}
		}
		return best == cp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
