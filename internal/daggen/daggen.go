// Package daggen generates the three families of parallel task graphs used
// in the paper's evaluation (§2): synthetic random PTGs controlled by
// width/regularity/density/jump parameters, FFT PTGs, and Strassen
// matrix-multiplication PTGs.
//
// All generators are deterministic given a *rand.Rand source.
//
// Concurrency: generators are pure given their *rand.Rand (which is not
// safe for concurrent use); each concurrent caller must bring its own
// source, as the experiment and service layers do.
package daggen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"ptgsched/internal/cost"
	"ptgsched/internal/dag"
)

// ComplexityMode selects how per-task computational complexity classes are
// drawn. The paper considers four scenarios: all tasks of one of the three
// classes, or each task drawing its class at random (§2).
type ComplexityMode int

const (
	// AllLinear gives every task the a·d class.
	AllLinear ComplexityMode = iota
	// AllNLogN gives every task the a·d·log d class.
	AllNLogN
	// AllMatrix gives every task the d^3/2 class.
	AllMatrix
	// Mixed draws each task's class uniformly among the three.
	Mixed
)

// String implements fmt.Stringer.
func (m ComplexityMode) String() string {
	switch m {
	case AllLinear:
		return "all-linear"
	case AllNLogN:
		return "all-nlogn"
	case AllMatrix:
		return "all-matrix"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("ComplexityMode(%d)", int(m))
	}
}

// ComplexityByName parses a complexity-scenario name ("all-linear",
// "all-nlogn", "all-matrix" or "mixed", case insensitive). It is the shared
// resolver behind the scenario spec format.
func ComplexityByName(name string) (ComplexityMode, error) {
	switch strings.ToLower(name) {
	case "all-linear":
		return AllLinear, nil
	case "all-nlogn":
		return AllNLogN, nil
	case "all-matrix":
		return AllMatrix, nil
	case "mixed":
		return Mixed, nil
	default:
		return 0, fmt.Errorf("daggen: unknown complexity mode %q (want all-linear, all-nlogn, all-matrix or mixed)", name)
	}
}

// RandomConfig parameterizes the synthetic PTG generator with the four
// shape parameters of §2 plus the task count and complexity scenario.
type RandomConfig struct {
	// Tasks is the number of data-parallel tasks (10, 20 or 50 in the
	// paper).
	Tasks int
	// Width in (0,1] controls the maximum parallelism: the mean number of
	// tasks per precedence level is Tasks^Width, so small values yield
	// chain-like graphs and large values fork-join-like graphs. Paper
	// values: 0.2, 0.5, 0.8.
	Width float64
	// Regularity in [0,1] controls the uniformity of level sizes: 1 makes
	// all levels the same size, 0 lets them vary by ±100%. Paper values:
	// 0.2, 0.8.
	Regularity float64
	// Density in [0,1] controls the number of edges between consecutive
	// levels. Paper values: 0.2, 0.8.
	Density float64
	// Jump is the maximum number of levels an edge may skip over: 1 means
	// edges only connect consecutive levels. Paper values: 1, 2, 4.
	Jump int
	// Complexity selects the per-task complexity scenario.
	Complexity ComplexityMode
}

// Validate reports whether the configuration is usable.
func (c RandomConfig) Validate() error {
	switch {
	case c.Tasks < 3:
		return fmt.Errorf("daggen: need at least 3 tasks, got %d", c.Tasks)
	case c.Width <= 0 || c.Width > 1:
		return fmt.Errorf("daggen: width %g outside (0,1]", c.Width)
	case c.Regularity < 0 || c.Regularity > 1:
		return fmt.Errorf("daggen: regularity %g outside [0,1]", c.Regularity)
	case c.Density < 0 || c.Density > 1:
		return fmt.Errorf("daggen: density %g outside [0,1]", c.Density)
	case c.Jump < 1:
		return fmt.Errorf("daggen: jump %d < 1", c.Jump)
	}
	return nil
}

// drawTaskParams fills in the cost parameters of one task: dataset size d
// uniform in [4M, 121M], iteration coefficient a uniform in [2^6, 2^9],
// Amdahl fraction uniform in [0, 0.25] (§2).
func drawTaskParams(mode ComplexityMode, r *rand.Rand) (dataElems, seqGFlop, alpha float64) {
	d := cost.MinDataElems + r.Float64()*(cost.MaxDataElems-cost.MinDataElems)
	a := float64(cost.MinCoeff + r.Intn(cost.MaxCoeff-cost.MinCoeff+1))
	var class cost.Complexity
	switch mode {
	case AllLinear:
		class = cost.Linear
	case AllNLogN:
		class = cost.NLogN
	case AllMatrix:
		class = cost.Matrix
	case Mixed:
		class = cost.Complexity(r.Intn(3))
	default:
		panic(fmt.Sprintf("daggen: unknown complexity mode %d", int(mode)))
	}
	return d, cost.GFlop(cost.Flops(class, a, d)), r.Float64() * cost.AlphaMax
}

// Random generates a synthetic PTG per the paper's model. The graph has a
// single entry and a single exit task (first and last levels have size 1)
// and every intermediate task has at least one predecessor in the previous
// level and at least one successor, so precedence levels match the intended
// level structure.
func Random(cfg RandomConfig, r *rand.Rand) *dag.Graph {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := dag.New(fmt.Sprintf("random-n%d-w%.1f-r%.1f-d%.1f-j%d",
		cfg.Tasks, cfg.Width, cfg.Regularity, cfg.Density, cfg.Jump))

	// Level sizes: entry level of 1, then levels of ~Tasks^Width tasks
	// jittered by (1-regularity), then an exit level of 1.
	perfect := math.Pow(float64(cfg.Tasks), cfg.Width)
	sizes := []int{1}
	remaining := cfg.Tasks - 2
	for remaining > 0 {
		jitter := 1 + (1-cfg.Regularity)*(2*r.Float64()-1)
		s := int(math.Round(perfect * jitter))
		if s < 1 {
			s = 1
		}
		if s > remaining {
			s = remaining
		}
		sizes = append(sizes, s)
		remaining -= s
	}
	sizes = append(sizes, 1)

	// Create tasks level by level.
	levels := make([][]*dag.Task, len(sizes))
	id := 0
	for l, s := range sizes {
		for i := 0; i < s; i++ {
			d, w, alpha := drawTaskParams(cfg.Complexity, r)
			levels[l] = append(levels[l], g.AddTask(fmt.Sprintf("t%d", id), d, w, alpha))
			id++
		}
	}

	// Wire parents. Every non-entry task gets one forced parent in the
	// previous level (preserving the level structure), then extra parents
	// according to density, possibly jumping up to cfg.Jump levels back.
	for l := 1; l < len(levels); l++ {
		for _, t := range levels[l] {
			prev := levels[l-1]
			first := prev[r.Intn(len(prev))]
			g.MustAddEdge(first, t, cost.EdgeBytes(first.DataElems))

			extra := int(r.Float64() * cfg.Density * float64(len(prev)))
			for k := 0; k < extra; k++ {
				j := 1 + r.Intn(min(cfg.Jump, l))
				src := levels[l-j]
				cand := src[r.Intn(len(src))]
				if cand == t || hasEdge(cand, t) {
					continue
				}
				g.MustAddEdge(cand, t, cost.EdgeBytes(cand.DataElems))
			}
		}
	}

	// Every non-exit task must reach the exit: childless tasks get an edge
	// to a random task in the next level.
	for l := 0; l < len(levels)-1; l++ {
		for _, t := range levels[l] {
			if len(t.Out()) == 0 {
				next := levels[l+1]
				dst := next[r.Intn(len(next))]
				g.MustAddEdge(t, dst, cost.EdgeBytes(t.DataElems))
			}
		}
	}

	if err := g.Validate(true); err != nil {
		panic(fmt.Sprintf("daggen: generated invalid graph: %v", err))
	}
	return g
}

func hasEdge(from, to *dag.Task) bool {
	for _, e := range from.Out() {
		if e.To == to {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
