package daggen

import (
	"fmt"
	"math/rand"

	"ptgsched/internal/cost"
	"ptgsched/internal/dag"
)

// Strassen generates the 25-task parallel task graph of one level of
// Strassen's matrix multiplication, the paper's second real application
// (§2). All Strassen PTGs share the same shape — 5 precedence levels,
// maximal width 10 — and differ only in task costs, which the paper
// exploits to show that width-based strategies degenerate to ES on them.
//
// Structure (C = A·B on √d×√d matrices, quadrant size d/4 elements):
//
//	level 0: split          (1 task, entry)
//	level 1: S1..S10        (10 quadrant additions feeding the products)
//	level 2: P1..P7         (7 recursive products, Strassen's trick)
//	level 3: U1,U2,V1,V2,C12,C21 (6 pairwise combinations)
//	level 4: assemble       (1 task, exit)
//
// with P1=S1·S2, P2=S3·B11, P3=A11·S4, P4=A22·S5, P5=S6·B22, P6=S7·S8,
// P7=S9·S10; C11=(P1+P4)+(P7−P5)=U1+U2, C12=P3+P5, C21=P2+P4,
// C22=(P1−P2)+(P3+P6)=V1+V2. Operand quadrants (A11, B22, ...) reach the
// products through the split task via the S-level: S-tasks that forward a
// raw quadrant are modelled as copies with the same addition cost, keeping
// the graph regular as in the literature.
func Strassen(r *rand.Rand) *dag.Graph {
	g := dag.New("strassen")

	d := cost.MinDataElems + r.Float64()*(cost.MaxDataElems-cost.MinDataElems)
	q := d / 4 // elements per quadrant
	alpha := func() float64 { return r.Float64() * cost.AlphaMax }
	addWork := cost.GFlop(cost.Flops(cost.Linear, 1, q))  // one add pass over a quadrant
	mulWork := cost.GFlop(cost.Flops(cost.Matrix, 0, q))  // (√q)^3 product
	moveWork := cost.GFlop(cost.Flops(cost.Linear, 1, d)) // split/assemble pass over full matrices

	split := g.AddTask("split", d, moveWork, alpha())

	// Level 1: the ten operand tasks.
	s := make([]*dag.Task, 10)
	for i := range s {
		s[i] = g.AddTask(fmt.Sprintf("S%d", i+1), q, addWork, alpha())
		g.MustAddEdge(split, s[i], cost.EdgeBytes(q))
	}

	// Level 2: the seven products. Each consumes two level-1 operands.
	operands := [7][2]int{
		{0, 1}, // P1 = S1·S2
		{2, 1}, // P2 = S3·(B11 via S2-copy lane)
		{3, 4}, // P3 = A11·S4
		{5, 4}, // P4 = A22·S5
		{5, 6}, // P5 = S6·B22
		{6, 7}, // P6 = S7·S8
		{8, 9}, // P7 = S9·S10
	}
	p := make([]*dag.Task, 7)
	for i := range p {
		p[i] = g.AddTask(fmt.Sprintf("P%d", i+1), q, mulWork, alpha())
		a, b := operands[i][0], operands[i][1]
		g.MustAddEdge(s[a], p[i], cost.EdgeBytes(q))
		if b != a {
			g.MustAddEdge(s[b], p[i], cost.EdgeBytes(q))
		}
	}

	// Level 3: six pairwise combinations.
	combos := []struct {
		name string
		a, b int // product indices (0-based)
	}{
		{"U1", 0, 3}, // P1+P4
		{"U2", 6, 4}, // P7−P5
		{"C12", 2, 4},
		{"C21", 1, 3},
		{"V1", 0, 1}, // P1−P2
		{"V2", 2, 5}, // P3+P6
	}
	level3 := make([]*dag.Task, len(combos))
	for i, c := range combos {
		t := g.AddTask(c.name, q, addWork, alpha())
		g.MustAddEdge(p[c.a], t, cost.EdgeBytes(q))
		g.MustAddEdge(p[c.b], t, cost.EdgeBytes(q))
		level3[i] = t
	}

	assemble := g.AddTask("assemble", d, moveWork, alpha())
	for _, t := range level3 {
		g.MustAddEdge(t, assemble, cost.EdgeBytes(q))
	}

	if err := g.Validate(true); err != nil {
		panic(fmt.Sprintf("daggen: invalid Strassen graph: %v", err))
	}
	return g
}

// StrassenTaskCount is the fixed size of a Strassen PTG.
const StrassenTaskCount = 25
