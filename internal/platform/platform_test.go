package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGrid5000TotalProcsMatchTable1(t *testing.T) {
	// §2: "These four sites differ in terms of total number of processors
	// (99, 167, 229 and 180 respectively)".
	want := map[string]int{"Lille": 99, "Nancy": 167, "Rennes": 229, "Sophia": 180}
	for _, p := range Grid5000Sites() {
		if got := p.TotalProcs(); got != want[p.Name] {
			t.Errorf("%s: TotalProcs = %d, want %d", p.Name, got, want[p.Name])
		}
	}
}

func TestGrid5000HeterogeneityMatchesPaper(t *testing.T) {
	// §2: "heterogeneity (20.2%, 6.1%, 36.8% and 34.7% respectively)".
	want := map[string]float64{"Lille": 0.202, "Nancy": 0.061, "Rennes": 0.368, "Sophia": 0.347}
	for _, p := range Grid5000Sites() {
		if got := p.Heterogeneity(); !almost(got, want[p.Name], 5e-4) {
			t.Errorf("%s: heterogeneity = %.4f, want %.3f", p.Name, got, want[p.Name])
		}
	}
}

func TestGrid5000SwitchTopology(t *testing.T) {
	// §2: Rennes and Lille share a switch; Nancy and Sophia do not.
	shared := map[string]bool{"Lille": true, "Nancy": false, "Rennes": true, "Sophia": false}
	for _, p := range Grid5000Sites() {
		if p.SharedSwitch != shared[p.Name] {
			t.Errorf("%s: SharedSwitch = %v, want %v", p.Name, p.SharedSwitch, shared[p.Name])
		}
		if p.SharedSwitch && p.Backbone != nil {
			t.Errorf("%s: shared-switch site has a backbone link", p.Name)
		}
		if !p.SharedSwitch && p.Backbone == nil {
			t.Errorf("%s: per-cluster-switch site lacks a backbone link", p.Name)
		}
	}
}

func TestClusterCounts(t *testing.T) {
	want := map[string]int{"Lille": 3, "Nancy": 2, "Rennes": 3, "Sophia": 3}
	for _, p := range Grid5000Sites() {
		if got := len(p.Clusters); got != want[p.Name] {
			t.Errorf("%s: %d clusters, want %d", p.Name, got, want[p.Name])
		}
	}
}

func TestTotalPowerIsSumOfClusterPowers(t *testing.T) {
	p := Rennes()
	sum := 0.0
	for _, c := range p.Clusters {
		sum += float64(c.Procs) * c.Speed
	}
	if !almost(p.TotalPower(), sum, 1e-9) {
		t.Fatalf("TotalPower = %g, want %g", p.TotalPower(), sum)
	}
	// Spot value: 64*3.573 + 99*3.364 + 66*4.603 = 865.506
	if !almost(p.TotalPower(), 865.506, 1e-6) {
		t.Fatalf("Rennes TotalPower = %g, want 865.506", p.TotalPower())
	}
}

func TestReferenceClusterPreservesPower(t *testing.T) {
	for _, p := range Grid5000Sites() {
		r := p.ReferenceCluster()
		if r.Procs != p.TotalProcs() {
			t.Errorf("%s: reference procs = %d, want %d", p.Name, r.Procs, p.TotalProcs())
		}
		if !almost(r.Power(), p.TotalPower(), 1e-6) {
			t.Errorf("%s: reference power = %g, want %g", p.Name, r.Power(), p.TotalPower())
		}
	}
}

func TestRouteIntraCluster(t *testing.T) {
	p := Lille()
	c := p.Clusters[0]
	route := p.Route(c, c)
	if len(route) != 1 || route[0] != c.Intra {
		t.Fatalf("intra-cluster route = %v, want [intra]", route)
	}
}

func TestRouteSharedSwitch(t *testing.T) {
	p := Lille() // shared switch
	a, b := p.Clusters[0], p.Clusters[1]
	route := p.Route(a, b)
	if len(route) != 2 || route[0] != a.Uplink || route[1] != b.Uplink {
		t.Fatalf("shared-switch route has %d links, want 2 uplinks", len(route))
	}
}

func TestRoutePerClusterSwitch(t *testing.T) {
	p := Sophia() // per-cluster switches
	a, b := p.Clusters[0], p.Clusters[2]
	route := p.Route(a, b)
	if len(route) != 3 || route[1] != p.Backbone {
		t.Fatalf("per-cluster-switch route has %d links, want uplink+backbone+uplink", len(route))
	}
}

func TestTransferTimeScalesWithBytes(t *testing.T) {
	p := Nancy()
	a, b := p.Clusters[0], p.Clusters[1]
	t1 := p.TransferTime(a, b, 1e6)
	t2 := p.TransferTime(a, b, 2e6)
	if t2 <= t1 {
		t.Fatalf("transfer time not increasing: %g then %g", t1, t2)
	}
	// Latency-only transfer.
	t0 := p.TransferTime(a, b, 0)
	if !almost(t0, 3*LANLatency, 1e-12) {
		t.Fatalf("zero-byte inter-cluster time = %g, want %g", t0, 3*LANLatency)
	}
}

func TestTransferTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative transfer size did not panic")
		}
	}()
	p := Lille()
	p.TransferTime(p.Clusters[0], p.Clusters[1], -1)
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"no clusters", func() { New("x", true) }},
		{"zero procs", func() { New("x", true, ClusterSpec{Name: "c", Procs: 0, Speed: 1}) }},
		{"zero speed", func() { New("x", true, ClusterSpec{Name: "c", Procs: 1, Speed: 0}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestFastestSpeed(t *testing.T) {
	if got := Rennes().FastestSpeed(); !almost(got, 4.603, 1e-12) {
		t.Fatalf("Rennes fastest speed = %g, want 4.603", got)
	}
}

// Property: for any valid random platform, the reference cluster preserves
// total power and heterogeneity is non-negative.
func TestReferenceProperty(t *testing.T) {
	f := func(n uint8, seeds [6]uint16) bool {
		k := int(n%4) + 1
		specs := make([]ClusterSpec, k)
		for i := range specs {
			specs[i] = ClusterSpec{
				Name:  string(rune('a' + i)),
				Procs: int(seeds[i]%200) + 1,
				Speed: 1 + float64(seeds[i]%50)/10,
			}
		}
		p := New("prop", n%2 == 0, specs...)
		r := p.ReferenceCluster()
		return almost(r.Power(), p.TotalPower(), 1e-6*p.TotalPower()) && p.Heterogeneity() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
