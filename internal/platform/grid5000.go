package platform

import (
	"fmt"
	"strings"
)

// This file encodes Table 1 of the paper: the four multi-cluster subsets of
// Grid'5000 used throughout the evaluation. Cluster names, processor counts
// and per-processor speeds (GFlop/s) are reproduced verbatim. Rennes and
// Lille connect all clusters to one switch; Nancy and Sophia give each
// cluster its own switch (§2).

// Lille returns the Lille site: Chuque, Chti, Chicon — 99 processors,
// heterogeneity 20.2%, shared switch.
func Lille() *Platform {
	return New("Lille", true,
		ClusterSpec{Name: "Chuque", Procs: 53, Speed: 3.647},
		ClusterSpec{Name: "Chti", Procs: 20, Speed: 4.311},
		ClusterSpec{Name: "Chicon", Procs: 26, Speed: 4.384},
	)
}

// Nancy returns the Nancy site: Grillon, Grelon — 167 processors,
// heterogeneity 6.1%, one switch per cluster.
func Nancy() *Platform {
	return New("Nancy", false,
		ClusterSpec{Name: "Grillon", Procs: 47, Speed: 3.379},
		ClusterSpec{Name: "Grelon", Procs: 120, Speed: 3.185},
	)
}

// Rennes returns the Rennes site: Parasol, Paravent, Paraquad — 229
// processors, heterogeneity 36.8%, shared switch.
func Rennes() *Platform {
	return New("Rennes", true,
		ClusterSpec{Name: "Parasol", Procs: 64, Speed: 3.573},
		ClusterSpec{Name: "Paravent", Procs: 99, Speed: 3.364},
		ClusterSpec{Name: "Paraquad", Procs: 66, Speed: 4.603},
	)
}

// Sophia returns the Sophia site: Azur, Helios, Sol — 180 processors,
// heterogeneity 34.7%, one switch per cluster.
func Sophia() *Platform {
	return New("Sophia", false,
		ClusterSpec{Name: "Azur", Procs: 74, Speed: 3.258},
		ClusterSpec{Name: "Helios", Procs: 56, Speed: 3.675},
		ClusterSpec{Name: "Sol", Procs: 50, Speed: 4.389},
	)
}

// Grid5000Sites returns fresh instances of the four evaluation platforms in
// the paper's order: Lille, Nancy, Rennes, Sophia.
func Grid5000Sites() []*Platform {
	return []*Platform{Lille(), Nancy(), Rennes(), Sophia()}
}

// ByName returns a fresh instance of the named Grid'5000 preset (case
// insensitive: "lille", "nancy", "rennes" or "sophia"). It is the shared
// resolver behind the CLIs and the scheduling service.
func ByName(name string) (*Platform, error) {
	switch strings.ToLower(name) {
	case "lille":
		return Lille(), nil
	case "nancy":
		return Nancy(), nil
	case "rennes":
		return Rennes(), nil
	case "sophia":
		return Sophia(), nil
	default:
		return nil, fmt.Errorf("platform: unknown platform %q (want lille, nancy, rennes or sophia)", name)
	}
}
