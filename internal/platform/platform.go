// Package platform models heterogeneous multi-cluster computing platforms:
// sets of clusters, each with homogeneous processors of a given speed,
// interconnected by a LAN whose topology is either a single shared switch or
// one switch per cluster joined by a backbone.
//
// The concrete platforms used in the paper's evaluation (four multi-cluster
// subsets of Grid'5000, Table 1 of the paper) are provided as presets.
//
// Concurrency: a Platform and its Clusters and Links are immutable after
// New (the presets return fresh instances per call) and safe to share
// read-only across any number of concurrent scheduling runs — the
// foundation of the service and experiment fan-outs.
package platform

import (
	"fmt"
	"strings"

	"ptgsched/internal/sim"
)

// Network constants used for all platforms. The paper describes the
// interconnect qualitatively (LAN, gigabit-class); these values are the
// usual Grid'5000-era numbers and are shared by every strategy under test,
// so they do not bias strategy comparisons.
const (
	// ClusterLinkBandwidth is the capacity of a cluster's uplink to its
	// switch, in bytes/s (10 Gb/s aggregated cluster uplink).
	ClusterLinkBandwidth = 1.25e9
	// BackboneBandwidth is the capacity of the inter-switch backbone used
	// by sites where each cluster has its own switch, in bytes/s.
	BackboneBandwidth = 1.25e9
	// IntraClusterBandwidth is the effective bandwidth available for a data
	// redistribution that stays inside one cluster, in bytes/s (gigabit
	// NICs, several in parallel during a redistribution).
	IntraClusterBandwidth = 5e8
	// LANLatency is the one-hop network latency in seconds.
	LANLatency = 1e-4
)

// ClusterSpec describes a homogeneous cluster: its name, processor count and
// per-processor speed in GFlop/s.
type ClusterSpec struct {
	Name  string
	Procs int
	Speed float64 // GFlop/s per processor
}

// Cluster is an instantiated cluster inside a Platform.
type Cluster struct {
	Name  string
	Procs int
	Speed float64 // GFlop/s per processor

	// Index is the position of the cluster within its platform.
	Index int

	// Uplink connects the cluster to its switch; it carries all traffic
	// entering or leaving the cluster.
	Uplink *sim.Link
	// Intra carries data redistributions that stay within the cluster.
	Intra *sim.Link
}

// Power returns the aggregate processing power of the cluster in GFlop/s.
func (c *Cluster) Power() float64 { return float64(c.Procs) * c.Speed }

// String implements fmt.Stringer.
func (c *Cluster) String() string {
	return fmt.Sprintf("%s(%d procs @ %.3f GFlop/s)", c.Name, c.Procs, c.Speed)
}

// Platform is a multi-cluster site. If SharedSwitch is true all clusters
// hang off one switch (inter-cluster routes use only the two cluster
// uplinks); otherwise each cluster has its own switch and inter-cluster
// routes additionally traverse the shared Backbone link, creating a
// different contention regime (cf. §2 of the paper: Rennes and Lille share
// a switch, Nancy and Sophia do not).
type Platform struct {
	Name         string
	Clusters     []*Cluster
	SharedSwitch bool
	Backbone     *sim.Link // nil when SharedSwitch

	// routes[src][dst] is the precomputed route between every cluster
	// pair. The simulator asks for a route once per data redistribution,
	// so New materializes the (few × few) table up front and Route
	// becomes a lookup of a shared read-only slice.
	routes [][][]*sim.Link
}

// New assembles a platform from cluster specifications. It panics on
// malformed specs (no clusters, non-positive counts or speeds): platform
// descriptions are static configuration, so failing fast is appropriate.
func New(name string, sharedSwitch bool, specs ...ClusterSpec) *Platform {
	if len(specs) == 0 {
		panic("platform: no clusters given")
	}
	p := &Platform{Name: name, SharedSwitch: sharedSwitch}
	for i, s := range specs {
		if s.Procs <= 0 {
			panic(fmt.Sprintf("platform: cluster %q has %d processors", s.Name, s.Procs))
		}
		if s.Speed <= 0 {
			panic(fmt.Sprintf("platform: cluster %q has speed %g", s.Name, s.Speed))
		}
		c := &Cluster{
			Name:   s.Name,
			Procs:  s.Procs,
			Speed:  s.Speed,
			Index:  i,
			Uplink: sim.NewLink(name+"/"+s.Name+"/uplink", ClusterLinkBandwidth, LANLatency),
			Intra:  sim.NewLink(name+"/"+s.Name+"/intra", IntraClusterBandwidth, LANLatency),
		}
		p.Clusters = append(p.Clusters, c)
	}
	if !sharedSwitch {
		p.Backbone = sim.NewLink(name+"/backbone", BackboneBandwidth, LANLatency)
	}
	p.routes = make([][][]*sim.Link, len(p.Clusters))
	for i, src := range p.Clusters {
		p.routes[i] = make([][]*sim.Link, len(p.Clusters))
		for j, dst := range p.Clusters {
			p.routes[i][j] = p.buildRoute(src, dst)
		}
	}
	return p
}

// TotalProcs returns the number of processors across all clusters.
func (p *Platform) TotalProcs() int {
	n := 0
	for _, c := range p.Clusters {
		n += c.Procs
	}
	return n
}

// TotalPower returns the aggregate processing power in GFlop/s. This is the
// denominator of the paper's resource constraint β.
func (p *Platform) TotalPower() float64 {
	w := 0.0
	for _, c := range p.Clusters {
		w += c.Power()
	}
	return w
}

// Heterogeneity returns the platform heterogeneity as defined in §2 of the
// paper: the ratio between the fastest and slowest processor speeds,
// expressed as the excess over 1 (e.g. 0.202 for Lille).
func (p *Platform) Heterogeneity() float64 {
	min, max := p.Clusters[0].Speed, p.Clusters[0].Speed
	for _, c := range p.Clusters[1:] {
		if c.Speed < min {
			min = c.Speed
		}
		if c.Speed > max {
			max = c.Speed
		}
	}
	return max/min - 1
}

// FastestSpeed returns the highest per-processor speed in GFlop/s.
func (p *Platform) FastestSpeed() float64 {
	max := p.Clusters[0].Speed
	for _, c := range p.Clusters[1:] {
		if c.Speed > max {
			max = c.Speed
		}
	}
	return max
}

// Route returns the sequence of links traversed by a data redistribution
// from cluster src to cluster dst. Within one cluster the route is the
// cluster's intra link; between clusters it is the two uplinks, plus the
// backbone on per-cluster-switch sites. The returned slice is shared and
// read-only: New precomputes all pairs, so the simulation's per-transfer
// route lookups allocate nothing.
func (p *Platform) Route(src, dst *Cluster) []*sim.Link {
	if p.routes != nil {
		return p.routes[src.Index][dst.Index]
	}
	return p.buildRoute(src, dst)
}

func (p *Platform) buildRoute(src, dst *Cluster) []*sim.Link {
	if src == dst {
		return []*sim.Link{src.Intra}
	}
	if p.SharedSwitch {
		return []*sim.Link{src.Uplink, dst.Uplink}
	}
	return []*sim.Link{src.Uplink, p.Backbone, dst.Uplink}
}

// TransferTime estimates the contention-free time in seconds to move the
// given number of bytes from src to dst: route latency plus bytes over the
// bottleneck bandwidth. The mapper uses this estimate; the simulator then
// charges the actual contended time.
func (p *Platform) TransferTime(src, dst *Cluster, bytes float64) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("platform: negative transfer size %g", bytes))
	}
	route := p.Route(src, dst)
	lat := 0.0
	bw := route[0].Capacity
	for _, l := range route {
		lat += l.Latency
		if l.Capacity < bw {
			bw = l.Capacity
		}
	}
	return lat + bytes/bw
}

// Reference describes the homogeneous reference cluster used by
// HCPA-style allocation on heterogeneous platforms (§4 of the paper, after
// [9]): allocations are first computed on a virtual cluster whose
// processors all run at the platform's average speed, then translated into
// concrete per-cluster allocations of equivalent power at mapping time.
type Reference struct {
	Procs int     // total processors of the platform
	Speed float64 // GFlop/s of one reference processor (platform average)
}

// ReferenceCluster derives the reference cluster of the platform.
func (p *Platform) ReferenceCluster() Reference {
	return Reference{
		Procs: p.TotalProcs(),
		Speed: p.TotalPower() / float64(p.TotalProcs()),
	}
}

// Power returns the aggregate power of the reference cluster in GFlop/s,
// which equals the platform's total power by construction.
func (r Reference) Power() float64 { return float64(r.Procs) * r.Speed }

// String implements fmt.Stringer.
func (p *Platform) String() string {
	var b strings.Builder
	topo := "per-cluster switches"
	if p.SharedSwitch {
		topo = "shared switch"
	}
	fmt.Fprintf(&b, "%s [%d procs, %.1f GFlop/s, heterogeneity %.1f%%, %s]",
		p.Name, p.TotalProcs(), p.TotalPower(), p.Heterogeneity()*100, topo)
	return b.String()
}
