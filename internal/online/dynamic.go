// Dynamic scenarios: the event-timeline machinery that lets the online
// scheduler run under cluster failures, recoveries, speed changes, and
// application cancellation/resubmission (events.Timeline), and the
// rescheduling policies that decide how much of an application's work an
// invalidating event throws away.
//
// Semantics, in timeline order at each instant (completions first, then
// recoveries, speed changes, failures, cancels, resubmissions, arrivals):
//
//   - ClusterDown kills every running and committed placement on the
//     cluster; the killed task IDs are handed per application to the
//     rescheduling policy, which returns the full set of tasks to
//     invalidate. When that set discards completed work, the application
//     restarts from scratch and a Restart record is emitted for the
//     oracle. A β rebalance follows.
//   - ClusterUp returns the cluster to service and rebalances; tasks left
//     ready because no cluster was available are committed at this
//     instant.
//   - SpeedChange sets the cluster's effective speed to factor × its
//     configured speed. Placements already committed keep their end times
//     (the cost of migrating or re-estimating in-flight work is the
//     rescheduling policies' territory, not the platform model's); the
//     new speed governs every subsequent commitment and translation.
//   - Cancel withdraws an application: in-flight placements are killed,
//     completed placements are dropped from the result, and the
//     application stops counting toward β. Cancelling a completed
//     application is a no-op; cancelling one that has not arrived yet
//     suppresses its arrival.
//   - Resubmit re-enters a cancelled application from scratch at the
//     event instant (its new submission time), with a Restart record.
//
// Platform events never remove a cluster from the platform value itself —
// the scheduler tracks effective speed and up/down state beside it — so
// placements always reference the original *platform.Cluster values and
// every static invariant of the trace oracle keeps holding.
package online

import (
	"fmt"
	"math"
	"sort"

	"ptgsched/internal/dag"
	"ptgsched/internal/events"
	"ptgsched/internal/mapping"
	"ptgsched/internal/platform"
)

// ReschedulePolicy decides which tasks of an application are invalidated
// when an event kills some of its in-flight placements. Implementations
// must be stateless and deterministic.
type ReschedulePolicy interface {
	// Name is the policy's registry key.
	Name() string
	// Invalidate returns the IDs of the tasks to reset, given the killed
	// in-flight task IDs and the per-task completion mask. The result must
	// be a superset of killed (the engine enforces the union).
	Invalidate(g *dag.Graph, killed []int, done []bool) []int
}

// restartPolicy is the resubmit-from-scratch baseline: any kill discards
// the whole application, completed work included.
type restartPolicy struct{}

func (restartPolicy) Name() string { return "restart" }

func (restartPolicy) Invalidate(g *dag.Graph, killed []int, done []bool) []int {
	ids := make([]int, len(g.Tasks))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// checkpointPolicy is the checkpoint-aware remap: completed tasks'
// outputs are durable, so only the killed tasks themselves rerun; their
// successors' precedence constraints are served from the checkpointed
// predecessors.
type checkpointPolicy struct{}

func (checkpointPolicy) Name() string { return "checkpoint" }

func (checkpointPolicy) Invalidate(g *dag.Graph, killed []int, done []bool) []int {
	return append([]int(nil), killed...)
}

// RestartPolicy returns the resubmit-from-scratch baseline policy, the
// default when a timeline is given without an explicit policy.
func RestartPolicy() ReschedulePolicy { return restartPolicy{} }

// CheckpointPolicy returns the checkpoint-aware remap policy.
func CheckpointPolicy() ReschedulePolicy { return checkpointPolicy{} }

// PolicyNames lists the registered rescheduling policies in registry
// order.
func PolicyNames() []string { return []string{"restart", "checkpoint"} }

// PolicyByName resolves a rescheduling policy by its registry key.
func PolicyByName(name string) (ReschedulePolicy, error) {
	switch name {
	case "restart":
		return restartPolicy{}, nil
	case "checkpoint":
		return checkpointPolicy{}, nil
	default:
		return nil, fmt.Errorf("online: unknown rescheduling policy %q (have %v)", name, PolicyNames())
	}
}

// pushTimeline enqueues the timeline's events. Entries referencing
// clusters or applications the run does not have are a caller bug:
// events.Spec.Generate already drops them per point.
func (s *scheduler) pushTimeline(tl events.Timeline) {
	for _, e := range tl {
		if e.At < 0 {
			panic(fmt.Sprintf("online: negative event time %g", e.At))
		}
		ev := event{at: e.At, cluster: e.Cluster, factor: e.Factor, app: e.App}
		switch e.Kind {
		case events.ClusterDown:
			ev.kind = evClusterDown
		case events.ClusterUp:
			ev.kind = evClusterUp
		case events.SpeedChange:
			ev.kind = evSpeedChange
			if e.Factor <= 0 {
				panic(fmt.Sprintf("online: speed change factor %g", e.Factor))
			}
		case events.Cancel:
			ev.kind = evCancel
		case events.Resubmit:
			ev.kind = evResubmit
		default:
			panic(fmt.Sprintf("online: unknown event kind %v", e.Kind))
		}
		switch ev.kind {
		case evClusterDown, evClusterUp, evSpeedChange:
			if e.Cluster < 0 || e.Cluster >= len(s.pf.Clusters) {
				panic(fmt.Sprintf("online: event cluster %d outside platform of %d clusters", e.Cluster, len(s.pf.Clusters)))
			}
		default:
			if e.App < 0 || e.App >= len(s.arrivals) {
				panic(fmt.Sprintf("online: event application %d outside arrival set of %d", e.App, len(s.arrivals)))
			}
		}
		s.pushEvent(ev)
	}
}

// refreshRef recomputes the effective reference cluster over the alive
// clusters at their effective speeds. Only called after a platform event,
// so the static path's reference stays the platform's own, bit for bit.
// With every cluster down the previous reference is kept: nothing can be
// committed anyway, and allocation needs a non-degenerate reference.
func (s *scheduler) refreshRef() {
	procs := 0
	power := 0.0
	for k, c := range s.pf.Clusters {
		if s.downC[k] {
			continue
		}
		procs += c.Procs
		power += float64(c.Procs) * s.speed[k]
	}
	if procs == 0 {
		return
	}
	s.ref = platform.Reference{Procs: procs, Speed: power / float64(procs)}
}

func (s *scheduler) onClusterDown(k int) {
	if s.downC[k] {
		return
	}
	s.downC[k] = true
	s.refreshRef()

	// Kill every in-flight placement on the failed cluster, grouped per
	// application for the policy.
	killed := make(map[int][]int)
	for app := range s.tasks {
		for _, ot := range s.tasks[app] {
			if (ot.state == taskRunning || ot.state == taskCommitted) && ot.placement.Cluster.Index == k {
				killed[app] = append(killed[app], ot.task.ID)
			}
		}
	}
	apps := make([]int, 0, len(killed))
	for app := range killed {
		apps = append(apps, app)
	}
	sort.Ints(apps)
	for _, app := range apps {
		done := make([]bool, len(s.tasks[app]))
		for id, ot := range s.tasks[app] {
			done[id] = ot.state == taskDone
		}
		ids := s.policy.Invalidate(s.arrivals[app].Graph, killed[app], done)
		s.invalidate(app, union(ids, killed[app]))
		s.result.Reschedules++
	}
	s.rebalance()
}

func (s *scheduler) onClusterUp(k int) {
	if !s.downC[k] {
		return
	}
	s.downC[k] = false
	s.refreshRef()
	s.rebalance()
}

func (s *scheduler) onSpeedChange(k int, factor float64) {
	// Factors apply to the configured speed, not the current one, so
	// repeated events are idempotent and order-free within an instant.
	s.speed[k] = s.pf.Clusters[k].Speed * factor
	s.refreshRef()
	s.rebalance()
}

func (s *scheduler) onCancel(app int) {
	if s.cancelled[app] {
		return
	}
	if s.arrived[app] && s.done[app] == len(s.tasks[app]) {
		return // already complete: nothing to withdraw
	}
	s.cancelled[app] = true
	s.result.Cancelled[app] = true
	for _, ot := range s.tasks[app] {
		if ot.state == taskDone {
			s.removePlacement(ot.placement)
		}
		ot.placement = nil // stales any pending completion event
		ot.state = taskPending
		ot.remainingPreds = len(ot.task.In())
	}
	s.done[app] = 0
	s.result.Apps[app].StartedAt = s.result.Apps[app].SubmittedAt
	// CompletedAt records when the application left the system; a
	// cancellation ahead of the arrival charges no residence time.
	s.result.Apps[app].CompletedAt = math.Max(s.now, s.result.Apps[app].SubmittedAt)
	if s.arrived[app] {
		s.rebalance()
	}
}

func (s *scheduler) onResubmit(app int) {
	if !s.cancelled[app] {
		return
	}
	s.cancelled[app] = false
	s.result.Cancelled[app] = false
	s.arrived[app] = true
	s.result.Apps[app] = AppResult{SubmittedAt: s.now, StartedAt: math.Inf(1)}
	for _, ot := range s.tasks[app] {
		ot.placement = nil
		ot.state = taskPending
		ot.remainingPreds = len(ot.task.In())
		if ot.remainingPreds == 0 {
			ot.state = taskReady
		}
	}
	s.done[app] = 0
	s.result.Restarts = append(s.result.Restarts, events.Restart{App: app, At: s.now})
	s.rebalance()
}

// invalidate resets the given tasks of app (in-flight ones lose their
// placements, completed ones their results), recomputes readiness, and —
// when completed work was discarded — records the from-scratch restart.
func (s *scheduler) invalidate(app int, ids []int) {
	tasks := s.tasks[app]
	discardedDone := false
	for _, id := range ids {
		ot := tasks[id]
		if ot.state == taskDone {
			s.done[app]--
			discardedDone = true
			s.removePlacement(ot.placement)
		}
		ot.placement = nil
		ot.state = taskPending
	}
	// Recompute readiness of every non-done task against the surviving
	// completion set.
	for _, ot := range tasks {
		if ot.state == taskDone || ot.state == taskRunning || ot.state == taskCommitted {
			continue
		}
		n := 0
		for _, e := range ot.task.In() {
			if tasks[e.From.ID].state != taskDone {
				n++
			}
		}
		ot.remainingPreds = n
		if n == 0 {
			ot.state = taskReady
		} else {
			ot.state = taskPending
		}
	}
	if discardedDone {
		s.result.Restarts = append(s.result.Restarts, events.Restart{App: app, At: s.now})
	}
	if s.done[app] == 0 {
		s.result.Apps[app].StartedAt = math.Inf(1)
	}
}

// removePlacement drops one surviving placement from the result, keeping
// the completion order of the rest.
func (s *scheduler) removePlacement(p *mapping.Placement) {
	ps := s.result.Placements
	for i, q := range ps {
		if q == p {
			s.result.Placements = append(ps[:i], ps[i+1:]...)
			return
		}
	}
}

// union merges two task-ID sets into a sorted, duplicate-free slice.
func union(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, id := range a {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range b {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
