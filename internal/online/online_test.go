package online_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/online"
	"ptgsched/internal/platform"
	"ptgsched/internal/strategy"
)

func singleCluster(procs int, speed float64) *platform.Platform {
	return platform.New("test", true, platform.ClusterSpec{Name: "c0", Procs: procs, Speed: speed})
}

func chain(name string, works ...float64) *dag.Graph {
	g := dag.New(name)
	var prev *dag.Task
	for i, w := range works {
		t := g.AddTask(name+"-"+string(rune('a'+i)), 1, w, 0)
		if prev != nil {
			g.MustAddEdge(prev, t, 0)
		}
		prev = t
	}
	return g
}

func TestSingleAppMatchesOffline(t *testing.T) {
	// Selfish strategy on a 4-processor cluster: both fully-parallel
	// chain tasks grow to 4 processors, so the makespan is
	// 2/4 + latency + 3/4.
	pf := singleCluster(4, 1)
	res := online.Schedule(pf, []online.Arrival{{Graph: chain("a", 2, 3), At: 0}}, online.Options{})
	if math.Abs(res.Makespan-(1.25+platform.LANLatency)) > 1e-9 {
		t.Fatalf("makespan = %g, want ~1.25", res.Makespan)
	}
	app := res.Apps[0]
	if app.SubmittedAt != 0 || app.StartedAt != 0 {
		t.Errorf("app times: %+v", app)
	}
	if math.Abs(app.FlowTime()-res.Makespan) > 1e-12 {
		t.Errorf("flow time %g != makespan %g", app.FlowTime(), res.Makespan)
	}
	if len(res.Placements) != 2 {
		t.Errorf("%d placements, want 2", len(res.Placements))
	}
}

func TestLateArrivalWaitsForSubmission(t *testing.T) {
	pf := singleCluster(4, 1)
	res := online.Schedule(pf, []online.Arrival{
		{Graph: chain("late", 2), At: 10},
	}, online.Options{})
	if res.Apps[0].StartedAt < 10 {
		t.Fatalf("started at %g before submission at 10", res.Apps[0].StartedAt)
	}
	// Selfish allocation widens the single 2-GFlop task to all 4 procs.
	if math.Abs(res.Apps[0].FlowTime()-0.5) > 1e-9 {
		t.Fatalf("flow time = %g, want 0.5", res.Apps[0].FlowTime())
	}
}

func TestArrivalsNeedNotBeSorted(t *testing.T) {
	pf := singleCluster(8, 1)
	res := online.Schedule(pf, []online.Arrival{
		{Graph: chain("second", 1), At: 5},
		{Graph: chain("first", 1), At: 0},
	}, online.Options{})
	if res.Apps[0].SubmittedAt != 5 || res.Apps[1].SubmittedAt != 0 {
		t.Fatal("submission times not preserved by arrival order")
	}
	if res.Apps[1].CompletedAt > res.Apps[0].CompletedAt {
		t.Fatal("earlier arrival finished later despite free platform")
	}
}

func TestRebalanceCountsArrivalsAndCompletions(t *testing.T) {
	pf := singleCluster(8, 1)
	arrivals := []online.Arrival{
		{Graph: chain("a", 40), At: 0},
		{Graph: chain("b", 40), At: 1},
	}
	res := online.Schedule(pf, arrivals, online.Options{Strategy: strategy.ES()})
	// 2 arrivals + the first app's completion while the second (slowed by
	// the halved constraint) is still active.
	if res.Rebalances < 3 {
		t.Fatalf("rebalances = %d, want >= 3", res.Rebalances)
	}
	noReb := online.Schedule(pf, arrivals, online.Options{
		Strategy:                strategy.ES(),
		NoRebalanceOnCompletion: true,
	})
	if noReb.Rebalances >= res.Rebalances {
		t.Fatalf("NoRebalanceOnCompletion did not reduce rebalances: %d vs %d",
			noReb.Rebalances, res.Rebalances)
	}
}

func TestNewArrivalSqueezesRunningApp(t *testing.T) {
	// One long app alone on the platform under ES; a second app arrives
	// mid-flight. After the arrival the first app's pending tasks must be
	// reallocated under beta = 1/2, so the second app is not starved.
	pf := singleCluster(16, 1)
	long := chain("long", 40, 40, 40) // three sequential stages
	short := chain("short", 8)
	res := online.Schedule(pf, []online.Arrival{
		{Graph: long, At: 0},
		{Graph: short, At: 1},
	}, online.Options{Strategy: strategy.ES()})

	shortRes := res.Apps[1]
	// The short app should run long before the long app finishes.
	if shortRes.CompletedAt >= res.Apps[0].CompletedAt {
		t.Fatalf("short app starved: done at %g vs long done at %g",
			shortRes.CompletedAt, res.Apps[0].CompletedAt)
	}
	if shortRes.StartedAt < 1 {
		t.Fatalf("short app started at %g before its submission", shortRes.StartedAt)
	}
}

func TestPlacementsRespectProcessorExclusivity(t *testing.T) {
	pf := platform.Lille()
	r := rand.New(rand.NewSource(4))
	var arrivals []online.Arrival
	for i := 0; i < 5; i++ {
		arrivals = append(arrivals, online.Arrival{
			Graph: daggen.Generate(daggen.FamilyRandom, r),
			At:    float64(i) * 3,
		})
	}
	res := online.Schedule(pf, arrivals, online.Options{Strategy: strategy.ES()})

	type span struct{ start, end float64 }
	busy := make(map[[2]int][]span)
	for _, p := range res.Placements {
		for _, proc := range p.Procs {
			key := [2]int{p.Cluster.Index, proc}
			busy[key] = append(busy[key], span{p.Start, p.End})
		}
	}
	for key, spans := range busy {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end-1e-9 {
				t.Fatalf("processor %v oversubscribed: [%g,%g] overlaps [%g,%g]",
					key, spans[i].start, spans[i].end, spans[i-1].start, spans[i-1].end)
			}
		}
	}
}

func TestPrecedenceRespectedAcrossRebalances(t *testing.T) {
	pf := platform.Nancy()
	r := rand.New(rand.NewSource(9))
	var arrivals []online.Arrival
	graphs := make([]*dag.Graph, 4)
	for i := range graphs {
		graphs[i] = daggen.Generate(daggen.FamilyFFT, r)
		arrivals = append(arrivals, online.Arrival{Graph: graphs[i], At: float64(i)})
	}
	res := online.Schedule(pf, arrivals, online.Options{Strategy: strategy.WPS(strategy.Work, 0.7)})

	placed := make(map[*dag.Task][2]float64)
	for _, p := range res.Placements {
		placed[p.Task] = [2]float64{p.Start, p.End}
	}
	for _, g := range graphs {
		for _, e := range g.Edges {
			from, okF := placed[e.From]
			to, okT := placed[e.To]
			if !okF || !okT {
				t.Fatalf("edge %s->%s not fully placed", e.From.Name, e.To.Name)
			}
			if to[0] < from[1]-1e-9 {
				t.Fatalf("%s starts at %g before %s ends at %g",
					e.To.Name, to[0], e.From.Name, from[1])
			}
		}
	}
}

func TestBurstMatchesOfflineOrderingBehaviour(t *testing.T) {
	// Submitting everything at t=0 must reproduce the offline scenario of
	// Figure 1: the small app is not postponed.
	pf := singleCluster(2, 1)
	big := chain("big", 10, 5)
	small := chain("small", 2, 2)
	res := online.Schedule(pf, []online.Arrival{
		{Graph: big, At: 0},
		{Graph: small, At: 0},
	}, online.Options{Strategy: strategy.ES()})
	if res.Apps[1].CompletedAt > 4.1 {
		t.Fatalf("small app done at %g, want ~4 (no postponing)", res.Apps[1].CompletedAt)
	}
	if res.Apps[0].CompletedAt > 15.1 {
		t.Fatalf("big app done at %g, want ~15", res.Apps[0].CompletedAt)
	}
}

func TestEmptyArrivalsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty arrivals")
		}
	}()
	online.Schedule(singleCluster(1, 1), nil, online.Options{})
}

func TestNegativeArrivalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative arrival time")
		}
	}()
	online.Schedule(singleCluster(1, 1), []online.Arrival{{Graph: chain("x", 1), At: -1}}, online.Options{})
}

// Property: every application completes, flow times are positive, tasks of
// each app are all placed exactly once, and the run is deterministic.
func TestOnlineCompletenessProperty(t *testing.T) {
	sites := platform.Grid5000Sites()
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		pf := sites[int(uint64(seed)%4)]
		count := int(n%4) + 1
		var arrivals []online.Arrival
		total := 0
		for i := 0; i < count; i++ {
			g := daggen.Generate(daggen.Family(r.Intn(3)), r)
			arrivals = append(arrivals, online.Arrival{Graph: g, At: r.Float64() * 20})
			total += len(g.Tasks)
		}
		res := online.Schedule(pf, arrivals, online.Options{Strategy: strategy.ES()})
		if len(res.Placements) != total {
			return false
		}
		for i, app := range res.Apps {
			if app.CompletedAt <= app.SubmittedAt || app.StartedAt < app.SubmittedAt {
				t.Logf("seed %d app %d: %+v", seed, i, app)
				return false
			}
		}
		res2 := online.Schedule(pf, arrivals, online.Options{Strategy: strategy.ES()})
		return res.Makespan == res2.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
