package online_test

// Tests of the dynamic-scenario machinery: empty-timeline equivalence
// (bit-identical to the static run), failure/recovery kill-and-reschedule
// semantics under both rescheduling policies, speed changes, cancellation
// and resubmission, and the oracle-facing Result records.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/events"
	"ptgsched/internal/mapping"
	"ptgsched/internal/online"
	"ptgsched/internal/platform"
	"ptgsched/internal/strategy"
	"ptgsched/internal/trace"
)

func twoClusters(procs int, speed float64) *platform.Platform {
	return platform.New("duo", true,
		platform.ClusterSpec{Name: "c0", Procs: procs, Speed: speed},
		platform.ClusterSpec{Name: "c1", Procs: procs, Speed: speed},
	)
}

// randomArrivals draws a deterministic poisson workload.
func randomArrivals(n int, seed int64) []online.Arrival {
	r := rand.New(rand.NewSource(seed))
	arrivals := make([]online.Arrival, n)
	t := 0.0
	for i := range arrivals {
		arrivals[i] = online.Arrival{Graph: daggen.Generate(daggen.FamilyRandom, r), At: t}
		t += r.ExpFloat64() / 0.5
	}
	return arrivals
}

// placementsEqual compares two placement lists field by field (bit-exact
// floats included).
func placementsEqual(t *testing.T, a, b []*mapping.Placement) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("placement counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		p, q := a[i], b[i]
		if p.App != q.App || p.Task.ID != q.Task.ID || p.Cluster.Index != q.Cluster.Index ||
			p.Start != q.Start || p.End != q.End || !reflect.DeepEqual(p.Procs, q.Procs) {
			t.Fatalf("placement %d differs:\n  %v\n  %v", i, p, q)
		}
	}
}

// TestEmptyTimelineIsBitIdenticalToStatic: the hard guarantee — a dynamic
// run with an empty timeline reproduces the static run's placements, app
// results and makespan bit for bit.
func TestEmptyTimelineIsBitIdenticalToStatic(t *testing.T) {
	pf := platform.Rennes()
	for _, seed := range []int64{3, 9} {
		arrivals := randomArrivals(4, seed)
		static := online.Schedule(pf, arrivals, online.Options{Strategy: strategy.ES()})
		dyn := online.Schedule(pf, arrivals, online.Options{
			Strategy: strategy.ES(),
			Timeline: events.Timeline{},
			Policy:   online.RestartPolicy(),
		})
		if static.Makespan != dyn.Makespan {
			t.Fatalf("makespans differ: %v vs %v", static.Makespan, dyn.Makespan)
		}
		if !reflect.DeepEqual(static.Apps, dyn.Apps) {
			t.Fatalf("app results differ:\n  %+v\n  %+v", static.Apps, dyn.Apps)
		}
		placementsEqual(t, static.Placements, dyn.Placements)
		if dyn.EventsApplied != 0 || dyn.Reschedules != 0 || len(dyn.Restarts) != 0 {
			t.Fatalf("empty timeline left dynamic traces: %+v", dyn)
		}
	}
}

// TestFailureKillsAndReschedules: a mid-run permanent failure of one
// cluster must leave no surviving placement overlapping the outage, delay
// the makespan, and pass the extended oracle under both policies.
func TestFailureKillsAndReschedules(t *testing.T) {
	pf := twoClusters(8, 1)
	g := chain("work", 20, 20)
	arrivals := []online.Arrival{{Graph: g, At: 0}}
	baseline := online.Schedule(pf, arrivals, online.Options{Strategy: strategy.ES()})
	failAt := baseline.Makespan * 0.5
	tl := events.Timeline{{At: failAt, Kind: events.ClusterDown, Cluster: 0}}

	for _, policy := range []online.ReschedulePolicy{online.RestartPolicy(), online.CheckpointPolicy()} {
		res := online.Schedule(pf, arrivals, online.Options{
			Strategy: strategy.ES(), Timeline: tl, Policy: policy,
		})
		if res.Makespan < baseline.Makespan {
			t.Fatalf("%s: failure improved makespan %g -> %g", policy.Name(), baseline.Makespan, res.Makespan)
		}
		for _, p := range res.Placements {
			if p.Cluster.Index == 0 && p.End > failAt+1e-9 {
				t.Fatalf("%s: surviving placement %v overlaps the outage from %g", policy.Name(), p, failAt)
			}
		}
		err := trace.ValidateDynamic(pf, []*dag.Graph{g}, res.Placements, trace.Dynamic{
			DownIntervals: tl.DownIntervals(len(pf.Clusters)),
			Releases:      []float64{0},
			Cancelled:     res.Cancelled,
			Restarts:      res.Restarts,
		})
		if err != nil {
			t.Fatalf("%s: oracle rejected rescheduled run: %v", policy.Name(), err)
		}
	}
}

// TestCheckpointKeepsCompletedWork: when a failure kills the second stage
// of a two-stage chain, the restart policy reruns stage one (recording a
// restart) while the checkpoint policy keeps it — so checkpoint finishes
// no later and emits no restart record.
func TestCheckpointKeepsCompletedWork(t *testing.T) {
	pf := twoClusters(4, 1)
	g := chain("stages", 8, 8)
	arrivals := []online.Arrival{{Graph: g, At: 0}}
	baseline := online.Schedule(pf, arrivals, online.Options{Strategy: strategy.ES()})
	// Fail the cluster running stage two midway through it.
	half := baseline.Placements[1]
	tl := events.Timeline{
		{At: (half.Start + half.End) / 2, Kind: events.ClusterDown, Cluster: half.Cluster.Index},
	}
	restart := online.Schedule(pf, arrivals, online.Options{
		Strategy: strategy.ES(), Timeline: tl, Policy: online.RestartPolicy(),
	})
	checkpoint := online.Schedule(pf, arrivals, online.Options{
		Strategy: strategy.ES(), Timeline: tl, Policy: online.CheckpointPolicy(),
	})
	if len(restart.Restarts) == 0 {
		t.Fatal("restart policy discarded completed work without a restart record")
	}
	if len(checkpoint.Restarts) != 0 {
		t.Fatalf("checkpoint policy recorded restarts: %+v", checkpoint.Restarts)
	}
	if checkpoint.Makespan > restart.Makespan+1e-9 {
		t.Fatalf("checkpoint (%g) finished later than restart-from-scratch (%g)",
			checkpoint.Makespan, restart.Makespan)
	}
}

// TestRecoveryRestoresCapacity: with every cluster down, ready work waits;
// the recovery event must let it finish.
func TestRecoveryRestoresCapacity(t *testing.T) {
	pf := singleCluster(4, 1)
	tl := events.Timeline{
		{At: 0.0, Kind: events.ClusterDown, Cluster: 0},
		{At: 7.0, Kind: events.ClusterUp, Cluster: 0},
	}
	tl.Sort()
	res := online.Schedule(pf, []online.Arrival{{Graph: chain("w", 4), At: 0}}, online.Options{
		Strategy: strategy.ES(), Timeline: tl, Policy: online.RestartPolicy(),
	})
	if res.Apps[0].StartedAt < 7 {
		t.Fatalf("work started at %g during the outage [0, 7)", res.Apps[0].StartedAt)
	}
	if res.Makespan <= 7 {
		t.Fatalf("makespan %g inside the outage", res.Makespan)
	}
}

// TestSpeedChangeSlowsSubsequentWork: halving the only cluster's speed
// before the run starts doubles the single task's span.
func TestSpeedChangeSlowsSubsequentWork(t *testing.T) {
	pf := singleCluster(1, 2)
	fast := online.Schedule(pf, []online.Arrival{{Graph: chain("x", 6), At: 1}}, online.Options{})
	tl := events.Timeline{{At: 0.5, Kind: events.SpeedChange, Cluster: 0, Factor: 0.5}}
	slow := online.Schedule(pf, []online.Arrival{{Graph: chain("x", 6), At: 1}}, online.Options{
		Timeline: tl, Policy: online.RestartPolicy(),
	})
	if math.Abs(slow.Makespan-(1+2*(fast.Makespan-1))) > 1e-9 {
		t.Fatalf("halved speed: makespan %g, want %g", slow.Makespan, 1+2*(fast.Makespan-1))
	}
}

// TestCancelRemovesApplication: a cancelled application leaves no
// placements and stops counting; a cancel of a completed application is a
// no-op.
func TestCancelRemovesApplication(t *testing.T) {
	pf := singleCluster(8, 1)
	a, b := chain("a", 30, 30), chain("b", 2)
	arrivals := []online.Arrival{{Graph: a, At: 0}, {Graph: b, At: 0}}
	tl := events.Timeline{{At: 5, Kind: events.Cancel, App: 0}}
	res := online.Schedule(pf, arrivals, online.Options{
		Strategy: strategy.ES(), Timeline: tl, Policy: online.RestartPolicy(),
	})
	if !res.Cancelled[0] || res.Cancelled[1] {
		t.Fatalf("cancel marks wrong: %v", res.Cancelled)
	}
	for _, p := range res.Placements {
		if p.App == 0 {
			t.Fatalf("cancelled application left placement %v", p)
		}
	}
	if res.Apps[0].CompletedAt != 5 {
		t.Fatalf("cancelled app left the system at %g, want 5", res.Apps[0].CompletedAt)
	}

	// Cancelling after everything finished changes nothing.
	late := online.Schedule(pf, arrivals, online.Options{
		Strategy: strategy.ES(),
		Timeline: events.Timeline{{At: 1e6, Kind: events.Cancel, App: 0}},
		Policy:   online.RestartPolicy(),
	})
	if late.Cancelled[0] {
		t.Fatal("cancel of a completed application took effect")
	}
}

// TestResubmitRerunsFromScratch: cancel-then-resubmit completes the
// application anew, records the restart, and every surviving placement
// starts at or after the resubmission.
func TestResubmitRerunsFromScratch(t *testing.T) {
	pf := singleCluster(8, 1)
	g := chain("r", 10, 10)
	tl := events.Timeline{
		{At: 2, Kind: events.Cancel, App: 0},
		{At: 6, Kind: events.Resubmit, App: 0},
	}
	tl.Sort()
	res := online.Schedule(pf, []online.Arrival{{Graph: g, At: 0}}, online.Options{
		Strategy: strategy.ES(), Timeline: tl, Policy: online.RestartPolicy(),
	})
	if res.Cancelled[0] {
		t.Fatal("resubmitted application still marked cancelled")
	}
	if res.Apps[0].SubmittedAt != 6 {
		t.Fatalf("resubmitted at %g, want 6", res.Apps[0].SubmittedAt)
	}
	if len(res.Restarts) != 1 || res.Restarts[0].At != 6 {
		t.Fatalf("restart records: %+v", res.Restarts)
	}
	for _, p := range res.Placements {
		if p.Start < 6 {
			t.Fatalf("placement %v predates the resubmission at 6", p)
		}
	}
	if err := trace.ValidateDynamic(pf, []*dag.Graph{g}, res.Placements, trace.Dynamic{
		Releases:  []float64{0},
		Cancelled: res.Cancelled,
		Restarts:  res.Restarts,
	}); err != nil {
		t.Fatalf("oracle rejected resubmitted run: %v", err)
	}
}

// TestPolicyRegistry: names round-trip and unknown names fail.
func TestPolicyRegistry(t *testing.T) {
	for _, name := range online.PolicyNames() {
		p, err := online.PolicyByName(name)
		if err != nil {
			t.Fatalf("registered policy %q: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := online.PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
