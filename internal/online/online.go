// Package online implements the paper's future-work direction (§8):
// concurrent PTGs with *different submission times*. On every application
// arrival — and, optionally, on every application completion — the resource
// constraints β of the active applications are recomputed with the chosen
// strategy, the allocations of their not-yet-started tasks are rebuilt
// under the new constraints, and committed-but-not-started placements are
// revoked and remapped ("the schedules of the already running applications
// may have to be reconsidered").
//
// The driver is an event-driven scheduler over the mapper's cost model:
// decision instants are application arrivals and task completions; at each
// instant, the ready tasks of all active applications are mapped in
// decreasing bottom-level order exactly as the offline mapper does.
// Completion times follow the mapping cost model (computation via Amdahl's
// law, contention-free redistribution estimates); network contention
// replay, as simexec does offline, is orthogonal to the policy decisions
// studied here.
//
// Concurrency: Schedule keeps the whole driver state in per-call values
// and mutates the arrival graphs' analysis caches; concurrent calls are
// safe on disjoint arrival sets (the service layer generates a private
// workload per request).
package online

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"ptgsched/internal/alloc"
	"ptgsched/internal/cost"
	"ptgsched/internal/dag"
	"ptgsched/internal/events"
	"ptgsched/internal/mapping"
	"ptgsched/internal/platform"
	"ptgsched/internal/strategy"
)

// Arrival is one application submission.
type Arrival struct {
	Graph *dag.Graph
	// At is the submission time in seconds; arrivals need not be sorted.
	At float64
}

// Options tunes the online scheduler. The zero value uses the paper's
// offline defaults: SCRAP-MAX allocation, packing on, rebalancing on both
// arrivals and completions.
type Options struct {
	// Strategy determines β over the set of *active* applications at each
	// rebalance point. The zero value is the selfish strategy.
	Strategy strategy.Strategy
	// Procedure is the allocation procedure (default SCRAP-MAX).
	Procedure alloc.Procedure
	// NoPacking disables allocation packing during mapping.
	NoPacking bool
	// NoRebalanceOnCompletion keeps the constraints computed at the last
	// arrival until the next arrival, instead of redistributing a finished
	// application's share immediately (§8 mentions both directions).
	NoRebalanceOnCompletion bool
	// Timeline injects dynamic-scenario events (cluster failures,
	// recoveries, speed changes, cancellations, resubmissions) into the
	// run; see dynamic.go for the semantics. An empty timeline reproduces
	// the static run bit for bit.
	Timeline events.Timeline
	// Policy decides how much of an application an invalidating event
	// discards; nil defaults to RestartPolicy. Ignored without a Timeline.
	Policy ReschedulePolicy
}

// AppResult reports one application's outcome.
type AppResult struct {
	// SubmittedAt echoes the arrival time.
	SubmittedAt float64
	// StartedAt is when the application's first task began executing.
	StartedAt float64
	// CompletedAt is when its last task finished.
	CompletedAt float64
}

// FlowTime is the application's sojourn time: completion minus submission.
func (a AppResult) FlowTime() float64 { return a.CompletedAt - a.SubmittedAt }

// Result is the outcome of an online scheduling run.
type Result struct {
	Apps []AppResult
	// Makespan is the completion time of the last application.
	Makespan float64
	// Placements lists every task placement in commit order (App indexes
	// the arrival order).
	Placements []*mapping.Placement
	// Rebalances counts how many times the constraints were recomputed.
	Rebalances int
	// Cancelled marks applications withdrawn by a Cancel event and never
	// resubmitted; nil for static runs. A cancelled application has no
	// surviving placements and its CompletedAt is the withdrawal time.
	Cancelled []bool
	// Restarts records every from-scratch restart (a rescheduling that
	// discarded completed work, or a resubmission): each application's
	// surviving placements all start at or after its latest restart.
	Restarts []events.Restart
	// Reschedules counts rescheduling-policy invocations (one per
	// application per invalidating event).
	Reschedules int
	// EventsApplied counts the timeline events processed.
	EventsApplied int
}

// taskState tracks one task through the online run.
type taskState int

const (
	taskPending   taskState = iota // not all predecessors finished
	taskReady                      // ready, not yet committed to processors
	taskCommitted                  // placed, start time in the future
	taskRunning                    // placed, executing
	taskDone
)

type onlineTask struct {
	app   int
	task  *dag.Task
	state taskState
	// remainingPreds counts unfinished predecessors.
	remainingPreds int
	placement      *mapping.Placement
}

// scheduler is the online driver's mutable state.
type scheduler struct {
	pf   *platform.Platform
	opts Options
	ref  platform.Reference

	arrivals []Arrival
	tasks    [][]*onlineTask // [app][taskID]
	allocs   []*alloc.Allocation
	bl       [][]float64
	arrived  []bool
	done     []int // finished task count per app
	result   *Result

	// avail[k][i]: when processor i of cluster k frees up, considering
	// running and committed placements.
	avail [][]float64

	// Dynamic-scenario state (see dynamic.go). dyn is set when a timeline
	// is present; the static path never consults downC/cancelled and keeps
	// speed equal to the configured cluster speeds.
	dyn       bool
	policy    ReschedulePolicy
	speed     []float64 // effective per-cluster speed
	downC     []bool    // cluster currently failed
	cancelled []bool    // application currently withdrawn

	events eventHeap
	now    float64
}

// Schedule runs the online scheduler over the given arrivals.
func Schedule(pf *platform.Platform, arrivals []Arrival, opts Options) *Result {
	if len(arrivals) == 0 {
		panic("online: no arrivals")
	}
	s := &scheduler{pf: pf, opts: opts, ref: pf.ReferenceCluster()}
	s.arrivals = append([]Arrival(nil), arrivals...)
	s.result = &Result{Apps: make([]AppResult, len(arrivals))}

	s.tasks = make([][]*onlineTask, len(arrivals))
	s.allocs = make([]*alloc.Allocation, len(arrivals))
	s.bl = make([][]float64, len(arrivals))
	s.arrived = make([]bool, len(arrivals))
	s.done = make([]int, len(arrivals))
	for i, a := range s.arrivals {
		if a.At < 0 {
			panic(fmt.Sprintf("online: negative arrival time %g", a.At))
		}
		if err := a.Graph.Validate(false); err != nil {
			panic(fmt.Sprintf("online: app %d: %v", i, err))
		}
		s.tasks[i] = make([]*onlineTask, len(a.Graph.Tasks))
		for _, t := range a.Graph.Tasks {
			s.tasks[i][t.ID] = &onlineTask{app: i, task: t, remainingPreds: len(t.In())}
		}
		s.result.Apps[i] = AppResult{SubmittedAt: a.At, StartedAt: math.Inf(1)}
		heap.Push(&s.events, event{at: a.At, kind: evArrival, app: i})
	}

	s.avail = make([][]float64, len(pf.Clusters))
	s.speed = make([]float64, len(pf.Clusters))
	s.downC = make([]bool, len(pf.Clusters))
	for k, c := range pf.Clusters {
		s.avail[k] = make([]float64, c.Procs)
		s.speed[k] = c.Speed
	}
	s.cancelled = make([]bool, len(arrivals))

	if len(opts.Timeline) > 0 {
		s.dyn = true
		s.policy = opts.Policy
		if s.policy == nil {
			s.policy = RestartPolicy()
		}
		s.result.Cancelled = make([]bool, len(arrivals))
		s.pushTimeline(opts.Timeline)
	}

	s.run()
	s.finish()
	return s.result
}

// finish checks the run drained completely and normalizes the records of
// applications that never executed (withdrawn before starting).
func (s *scheduler) finish() {
	for i := range s.arrivals {
		if s.cancelled[i] {
			continue
		}
		if s.done[i] < len(s.tasks[i]) {
			// Only reachable when every cluster a point has fails forever
			// with work outstanding; the scenario layer rejects such specs.
			panic(fmt.Sprintf("online: application %d incomplete with no events left (all clusters down forever?)", i))
		}
	}
	for i := range s.result.Apps {
		if math.IsInf(s.result.Apps[i].StartedAt, 1) {
			s.result.Apps[i].StartedAt = s.result.Apps[i].SubmittedAt
		}
	}
}

// stale reports whether a completion event refers to a revoked placement
// (the task was re-committed with a different placement, or is no longer
// placed at all).
func stale(ev event) bool {
	return ev.kind == evCompletion && ev.ot.placement != ev.placement
}

func (s *scheduler) run() {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		if stale(ev) {
			continue
		}
		s.now = ev.at
		s.handle(ev)
		// Drain all events at the same instant before making decisions.
		for s.events.Len() > 0 && s.events[0].at == s.now {
			nxt := heap.Pop(&s.events).(event)
			if stale(nxt) {
				continue
			}
			s.handle(nxt)
		}
		s.dispatch()
	}
}

func (s *scheduler) handle(ev event) {
	switch ev.kind {
	case evArrival:
		s.onArrival(ev.app)
	case evCompletion:
		s.onCompletion(ev.ot)
	case evClusterDown:
		s.result.EventsApplied++
		s.onClusterDown(ev.cluster)
	case evClusterUp:
		s.result.EventsApplied++
		s.onClusterUp(ev.cluster)
	case evSpeedChange:
		s.result.EventsApplied++
		s.onSpeedChange(ev.cluster, ev.factor)
	case evCancel:
		s.result.EventsApplied++
		s.onCancel(ev.app)
	case evResubmit:
		s.result.EventsApplied++
		s.onResubmit(ev.app)
	}
}

func (s *scheduler) onArrival(app int) {
	if s.arrived[app] || s.cancelled[app] {
		// Already re-entered via a Resubmit ahead of this arrival, or
		// withdrawn before arriving.
		return
	}
	s.arrived[app] = true
	for _, ot := range s.tasks[app] {
		if ot.remainingPreds == 0 {
			ot.state = taskReady
		}
	}
	s.rebalance()
}

func (s *scheduler) onCompletion(ot *onlineTask) {
	ot.state = taskDone
	s.done[ot.app]++
	// Only surviving placements enter the results; revoked commitments
	// never ran.
	s.result.Placements = append(s.result.Placements, ot.placement)
	if ot.placement.Start < s.result.Apps[ot.app].StartedAt {
		s.result.Apps[ot.app].StartedAt = ot.placement.Start
	}
	for _, e := range ot.task.Out() {
		succ := s.tasks[ot.app][e.To.ID]
		succ.remainingPreds--
		if succ.remainingPreds == 0 && succ.state == taskPending {
			succ.state = taskReady
		}
	}
	if s.done[ot.app] == len(s.tasks[ot.app]) {
		s.result.Apps[ot.app].CompletedAt = s.now
		if s.now > s.result.Makespan {
			s.result.Makespan = s.now
		}
		if !s.opts.NoRebalanceOnCompletion {
			s.rebalance()
		}
	}
}

// activeApps returns the arrived, unfinished, not-withdrawn applications.
func (s *scheduler) activeApps() []int {
	var ids []int
	for i := range s.arrivals {
		if s.arrived[i] && !s.cancelled[i] && s.done[i] < len(s.tasks[i]) {
			ids = append(ids, i)
		}
	}
	return ids
}

// rebalance recomputes β over the active set, reallocates every active
// application's unfinished-and-not-running tasks, and revokes committed
// placements so dispatch can remap them under the new allocations.
func (s *scheduler) rebalance() {
	active := s.activeApps()
	if len(active) == 0 {
		return
	}
	s.result.Rebalances++

	graphs := make([]*dag.Graph, len(active))
	for i, app := range active {
		graphs[i] = s.arrivals[app].Graph
	}
	betas := s.opts.Strategy.Betas(graphs, s.ref)

	for i, app := range active {
		s.allocs[app] = alloc.Compute(graphs[i], s.ref, betas[i], s.opts.Procedure)
		s.bl[app] = graphs[i].BottomLevels(s.allocs[app].TimeOf, dag.ZeroComm)
		for _, ot := range s.tasks[app] {
			if ot.state == taskCommitted && ot.placement.Start > s.now {
				ot.state = taskReady
				ot.placement = nil
			}
		}
	}
	s.rebuildAvail()
}

// rebuildAvail recomputes processor availability from running and still-
// committed placements.
func (s *scheduler) rebuildAvail() {
	for k := range s.avail {
		for i := range s.avail[k] {
			s.avail[k][i] = s.now
		}
	}
	for _, appTasks := range s.tasks {
		for _, ot := range appTasks {
			if ot.state != taskRunning && ot.state != taskCommitted {
				continue
			}
			p := ot.placement
			for _, i := range p.Procs {
				if p.End > s.avail[p.Cluster.Index][i] {
					s.avail[p.Cluster.Index][i] = p.End
				}
			}
		}
	}
}

// dispatch maps every ready task of every active application at the current
// instant, in decreasing bottom-level order, exactly like the offline
// ready-task mapper.
func (s *scheduler) dispatch() {
	var ready []*onlineTask
	for _, app := range s.activeApps() {
		for _, ot := range s.tasks[app] {
			if ot.state == taskReady {
				ready = append(ready, ot)
			}
		}
	}
	sort.Slice(ready, func(i, j int) bool {
		bi, bj := s.bl[ready[i].app][ready[i].task.ID], s.bl[ready[j].app][ready[j].task.ID]
		if bi != bj {
			return bi > bj
		}
		if ready[i].app != ready[j].app {
			return ready[i].app < ready[j].app
		}
		return ready[i].task.ID < ready[j].task.ID
	})
	for _, ot := range ready {
		s.commit(ot)
	}
}

// commit chooses the earliest-finish (cluster, width) for ot, honouring
// allocation packing, reserves the processors and schedules its completion.
func (s *scheduler) commit(ot *onlineTask) {
	a := s.allocs[ot.app]
	dataReady := func(c *platform.Cluster) float64 {
		ready := s.now
		for _, e := range ot.task.In() {
			pred := s.tasks[ot.app][e.From.ID]
			at := pred.placement.End + s.pf.TransferTime(pred.placement.Cluster, c, e.Bytes)
			if at > ready {
				ready = at
			}
		}
		return ready
	}

	type cand struct {
		cluster *platform.Cluster
		procs   int
		start   float64
		end     float64
	}
	var best cand
	found := false
	for _, c := range s.pf.Clusters {
		if s.downC[c.Index] {
			continue
		}
		speed := s.speed[c.Index]
		want := alloc.TranslateTo(a.Procs[ot.task.ID], a.Ref, c.Procs, speed)
		free := append([]float64(nil), s.avail[c.Index]...)
		sort.Float64s(free)
		ready := dataReady(c)
		eval := func(q int) (float64, float64) {
			start := math.Max(ready, free[q-1])
			return start, start + cost.TaskTime(ot.task, speed, q)
		}
		start, end := eval(want)
		cc := cand{cluster: c, procs: want, start: start, end: end}
		if !s.opts.NoPacking {
			for q := want - 1; q >= 1; q-- {
				st, en := eval(q)
				if st >= cc.start {
					break
				}
				if en <= cc.end {
					cc = cand{cluster: c, procs: q, start: st, end: en}
				}
			}
		}
		if !found || cc.end < best.end ||
			(cc.end == best.end && cc.start < best.start) ||
			(cc.end == best.end && cc.start == best.start && cc.procs < best.procs) {
			best = cc
			found = true
		}
	}
	if !found {
		if s.dyn {
			// Every cluster is down: the task stays ready and is
			// recommitted at the next recovery's dispatch.
			return
		}
		panic("online: no cluster available")
	}

	k := best.cluster.Index
	idx := make([]int, len(s.avail[k]))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return s.avail[k][idx[i]] < s.avail[k][idx[j]] })
	procs := append([]int(nil), idx[:best.procs]...)
	sort.Ints(procs)
	for _, i := range procs {
		s.avail[k][i] = best.end
	}

	ot.placement = &mapping.Placement{
		App:     ot.app,
		Task:    ot.task,
		Cluster: best.cluster,
		Procs:   procs,
		Start:   best.start,
		End:     best.end,
	}
	if best.start <= s.now {
		ot.state = taskRunning
	} else {
		ot.state = taskCommitted
	}
	heap.Push(&s.events, event{at: best.end, kind: evCompletion, ot: ot, placement: ot.placement})
}

// Event plumbing.

type eventKind int

const (
	evArrival eventKind = iota
	evCompletion
	evClusterDown
	evClusterUp
	evSpeedChange
	evCancel
	evResubmit
)

// rank orders same-instant events: completions first (a task finishing
// exactly when its cluster fails survives, and a finishing application
// releases its share before anyone decides), then recoveries, speed
// changes, failures, cancellations, resubmissions, and arrivals last (a
// newcomer sees the platform state of its instant). Same-kind pairs
// compare equal, preserving the static path's heap order exactly.
func (k eventKind) rank() int {
	switch k {
	case evCompletion:
		return 0
	case evClusterUp:
		return 1
	case evSpeedChange:
		return 2
	case evClusterDown:
		return 3
	case evCancel:
		return 4
	case evResubmit:
		return 5
	default: // evArrival
		return 6
	}
}

type event struct {
	at   float64
	kind eventKind
	app  int
	ot   *onlineTask
	// placement identifies which commitment a completion event belongs
	// to; a mismatch with the task's current placement marks it stale.
	placement *mapping.Placement
	// cluster and factor parameterize platform events.
	cluster int
	factor  float64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].kind.rank() < h[j].kind.rank()
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }

// pushEvent enqueues one event (the dynamic machinery's entry point).
func (s *scheduler) pushEvent(ev event) { heap.Push(&s.events, ev) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
