// Package strategy implements the eight resource-constraint determination
// strategies of §6 of the paper. Given the set A of PTGs to schedule
// concurrently, each strategy assigns every PTG i a constraint βᵢ ∈ (0, 1]:
// the fraction of the platform's total processing power PTG i may use to
// build its schedule.
//
//   - S (selfish): βᵢ = 1 — every application may use everything; the
//     baseline corresponding to heuristics designed for dedicated platforms.
//   - ES (equal share): βᵢ = 1/|A|.
//   - PS-x (proportional share): βᵢ = γᵢ/Σⱼγⱼ (Eq. 1), where γ is one of
//     three PTG characteristics x: critical-path length, maximal width, or
//     total work.
//   - WPS-x (weighted proportional share): βᵢ = µ/|A| + (1−µ)·γᵢ/Σⱼγⱼ
//     (Eq. 2), a tunable compromise between ES (µ=1) and PS (µ=0).
//
// Concurrency: Strategy is an immutable value; Betas keeps its state in
// per-call values but reads the graphs' cached analyses, so concurrent
// Betas calls are safe on distinct graph sets.
package strategy

import (
	"fmt"
	"strings"

	"ptgsched/internal/cost"
	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/platform"
)

// Characteristic selects the PTG property γ used by the PS and WPS
// strategies.
type Characteristic int

const (
	// CriticalPath uses the length of the PTG's critical path (sequential
	// reference-cluster times, computation only).
	CriticalPath Characteristic = iota
	// Width uses the PTG's maximal precedence-level width: the maximal
	// task parallelism it can exploit.
	Width
	// Work uses the PTG's total sequential work in GFlop.
	Work
)

// String implements fmt.Stringer.
func (c Characteristic) String() string {
	switch c {
	case CriticalPath:
		return "cp"
	case Width:
		return "width"
	case Work:
		return "work"
	default:
		return fmt.Sprintf("Characteristic(%d)", int(c))
	}
}

// Gamma returns the characteristic value γ of g for the given reference
// cluster.
func Gamma(c Characteristic, g *dag.Graph, ref platform.Reference) float64 {
	switch c {
	case CriticalPath:
		seq := func(t *dag.Task) float64 { return cost.SeqTime(t.SeqGFlop, ref.Speed) }
		return g.CriticalPathLength(seq, dag.ZeroComm)
	case Width:
		return float64(g.MaxWidth())
	case Work:
		return g.TotalWork()
	default:
		panic(fmt.Sprintf("strategy: unknown characteristic %d", int(c)))
	}
}

// Kind identifies a strategy family.
type Kind int

const (
	// Selfish is the S strategy: β = 1 for every PTG.
	Selfish Kind = iota
	// EqualShare is the ES strategy: β = 1/|A|.
	EqualShare
	// ProportionalShare is the PS-x strategy (Eq. 1).
	ProportionalShare
	// WeightedProportionalShare is the WPS-x strategy (Eq. 2).
	WeightedProportionalShare
)

// Strategy is a fully-specified constraint determination strategy.
type Strategy struct {
	Kind Kind
	// Char is the PTG characteristic used by PS and WPS.
	Char Characteristic
	// Mu is the WPS weight µ ∈ [0,1]; 0 degenerates to PS, 1 to ES.
	Mu float64
}

// Paper strategy constructors.

// S returns the selfish strategy.
func S() Strategy { return Strategy{Kind: Selfish} }

// ES returns the equal-share strategy.
func ES() Strategy { return Strategy{Kind: EqualShare} }

// PS returns the proportional-share strategy on characteristic c.
func PS(c Characteristic) Strategy { return Strategy{Kind: ProportionalShare, Char: c} }

// WPS returns the weighted proportional-share strategy on characteristic c
// with weight mu.
func WPS(c Characteristic, mu float64) Strategy {
	if mu < 0 || mu > 1 {
		panic(fmt.Sprintf("strategy: mu %g outside [0,1]", mu))
	}
	return Strategy{Kind: WeightedProportionalShare, Char: c, Mu: mu}
}

// Name returns the paper's name for the strategy (e.g. "WPS-width").
func (s Strategy) Name() string {
	switch s.Kind {
	case Selfish:
		return "S"
	case EqualShare:
		return "ES"
	case ProportionalShare:
		return "PS-" + s.Char.String()
	case WeightedProportionalShare:
		return "WPS-" + s.Char.String()
	default:
		return fmt.Sprintf("Strategy(%d)", int(s.Kind))
	}
}

// String implements fmt.Stringer.
func (s Strategy) String() string { return s.Name() }

// Betas computes the per-PTG resource constraints for the given set of
// applications on the given reference cluster.
func (s Strategy) Betas(graphs []*dag.Graph, ref platform.Reference) []float64 {
	n := len(graphs)
	if n == 0 {
		return nil
	}
	betas := make([]float64, n)
	switch s.Kind {
	case Selfish:
		for i := range betas {
			betas[i] = 1
		}
	case EqualShare:
		for i := range betas {
			betas[i] = 1 / float64(n)
		}
	case ProportionalShare, WeightedProportionalShare:
		gammas := make([]float64, n)
		sum := 0.0
		for i, g := range graphs {
			gammas[i] = Gamma(s.Char, g, ref)
			sum += gammas[i]
		}
		if sum <= 0 {
			panic("strategy: characteristic sum is not positive")
		}
		mu := s.Mu
		if s.Kind == ProportionalShare {
			mu = 0
		}
		for i := range betas {
			betas[i] = mu/float64(n) + (1-mu)*gammas[i]/sum
		}
	default:
		panic(fmt.Sprintf("strategy: unknown kind %d", int(s.Kind)))
	}
	return betas
}

// DefaultMu returns the µ value the paper calibrates for each WPS variant
// (§7): 0.7 for WPS-work on every PTG family, 0.5 for WPS-cp, and for
// WPS-width 0.3 on FFT graphs and 0.5 otherwise.
func DefaultMu(c Characteristic, family daggen.Family) float64 {
	switch c {
	case Work:
		return 0.7
	case CriticalPath:
		return 0.5
	case Width:
		if family == daggen.FamilyFFT {
			return 0.3
		}
		return 0.5
	default:
		panic(fmt.Sprintf("strategy: unknown characteristic %d", int(c)))
	}
}

// Names lists every registered strategy name, in the paper's order. It is
// the registry the property-based invariant suite (FuzzScheduleInvariants)
// iterates: every name resolves through ByName for every family.
func Names() []string {
	return []string{"S", "ES", "PS-cp", "PS-width", "PS-work", "WPS-cp", "WPS-width", "WPS-work"}
}

// PaperSet returns the strategies compared in the paper's evaluation for
// the given PTG family, in the paper's order. For Strassen PTGs the
// width-based strategies are omitted: all Strassen graphs have the same
// maximal width, so PS-width and WPS-width coincide with ES (§7, Fig. 5).
func PaperSet(family daggen.Family) []Strategy {
	all := []Strategy{
		S(),
		ES(),
		PS(CriticalPath),
		PS(Width),
		PS(Work),
		WPS(CriticalPath, DefaultMu(CriticalPath, family)),
		WPS(Width, DefaultMu(Width, family)),
		WPS(Work, DefaultMu(Work, family)),
	}
	if family != daggen.FamilyStrassen {
		return all
	}
	var kept []Strategy
	for _, s := range all {
		if (s.Kind == ProportionalShare || s.Kind == WeightedProportionalShare) && s.Char == Width {
			continue
		}
		kept = append(kept, s)
	}
	return kept
}

// ByName parses a strategy by its paper name ("S", "ES", "PS-cp",
// "PS-width", "PS-work", "WPS-cp", "WPS-width" or "WPS-work", case
// insensitive). A negative mu selects the paper's calibrated default for
// the WPS variants (DefaultMu); family only affects that default. It is the
// shared resolver behind the CLIs and the scheduling service.
func ByName(name string, mu float64, family daggen.Family) (Strategy, error) {
	pick := func(c Characteristic) (float64, error) {
		if mu < 0 {
			return DefaultMu(c, family), nil
		}
		if mu > 1 {
			return 0, fmt.Errorf("strategy: mu %g outside [0,1]", mu)
		}
		return mu, nil
	}
	switch strings.ToLower(name) {
	case "s":
		return S(), nil
	case "es":
		return ES(), nil
	case "ps-cp":
		return PS(CriticalPath), nil
	case "ps-width":
		return PS(Width), nil
	case "ps-work":
		return PS(Work), nil
	case "wps-cp":
		m, err := pick(CriticalPath)
		if err != nil {
			return Strategy{}, err
		}
		return WPS(CriticalPath, m), nil
	case "wps-width":
		m, err := pick(Width)
		if err != nil {
			return Strategy{}, err
		}
		return WPS(Width, m), nil
	case "wps-work":
		m, err := pick(Work)
		if err != nil {
			return Strategy{}, err
		}
		return WPS(Work, m), nil
	default:
		return Strategy{}, fmt.Errorf("strategy: unknown strategy %q (want S, ES, PS-{cp,width,work} or WPS-{cp,width,work})", name)
	}
}
