package strategy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/platform"
)

var testRef = platform.Reference{Procs: 100, Speed: 3}

func graphs(n int, seed int64) []*dag.Graph {
	r := rand.New(rand.NewSource(seed))
	gs := make([]*dag.Graph, n)
	for i := range gs {
		gs[i] = daggen.Generate(daggen.FamilyRandom, r)
	}
	return gs
}

func TestSelfishGivesOne(t *testing.T) {
	for _, b := range S().Betas(graphs(5, 1), testRef) {
		if b != 1 {
			t.Fatalf("S beta = %g, want 1", b)
		}
	}
}

func TestEqualShare(t *testing.T) {
	bs := ES().Betas(graphs(10, 2), testRef)
	for _, b := range bs {
		if math.Abs(b-0.1) > 1e-12 {
			t.Fatalf("ES beta = %g, want 0.1", b)
		}
	}
}

func TestProportionalShareSumsToOne(t *testing.T) {
	for _, c := range []Characteristic{CriticalPath, Width, Work} {
		bs := PS(c).Betas(graphs(6, 3), testRef)
		sum := 0.0
		for _, b := range bs {
			if b <= 0 || b > 1 {
				t.Fatalf("PS-%s beta %g outside (0,1]", c, b)
			}
			sum += b
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("PS-%s betas sum to %g, want 1", c, sum)
		}
	}
}

func TestProportionalShareTracksWork(t *testing.T) {
	// Two graphs with very different works: the bigger one gets the bigger
	// beta under PS-work.
	g1 := dag.New("small")
	g1.AddTask("t", 1e6, 10, 0)
	g2 := dag.New("big")
	g2.AddTask("t", 1e6, 990, 0)
	bs := PS(Work).Betas([]*dag.Graph{g1, g2}, testRef)
	if math.Abs(bs[0]-0.01) > 1e-9 || math.Abs(bs[1]-0.99) > 1e-9 {
		t.Fatalf("PS-work betas = %v, want [0.01, 0.99]", bs)
	}
}

func TestWPSInterpolatesESAndPS(t *testing.T) {
	gs := graphs(4, 4)
	ps := PS(Work).Betas(gs, testRef)
	es := ES().Betas(gs, testRef)
	wps0 := WPS(Work, 0).Betas(gs, testRef)
	wps1 := WPS(Work, 1).Betas(gs, testRef)
	for i := range gs {
		if math.Abs(wps0[i]-ps[i]) > 1e-12 {
			t.Errorf("WPS(mu=0)[%d] = %g, want PS %g", i, wps0[i], ps[i])
		}
		if math.Abs(wps1[i]-es[i]) > 1e-12 {
			t.Errorf("WPS(mu=1)[%d] = %g, want ES %g", i, wps1[i], es[i])
		}
	}
	// Intermediate mu lies between the two extremes.
	wps := WPS(Work, 0.7).Betas(gs, testRef)
	for i := range gs {
		lo, hi := math.Min(ps[i], es[i]), math.Max(ps[i], es[i])
		if wps[i] < lo-1e-12 || wps[i] > hi+1e-12 {
			t.Errorf("WPS(0.7)[%d] = %g outside [%g, %g]", i, wps[i], lo, hi)
		}
	}
}

func TestWPSRejectsBadMu(t *testing.T) {
	for _, mu := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mu=%g accepted", mu)
				}
			}()
			WPS(Work, mu)
		}()
	}
}

func TestNames(t *testing.T) {
	want := map[string]Strategy{
		"S":         S(),
		"ES":        ES(),
		"PS-cp":     PS(CriticalPath),
		"PS-width":  PS(Width),
		"PS-work":   PS(Work),
		"WPS-cp":    WPS(CriticalPath, 0.5),
		"WPS-width": WPS(Width, 0.5),
		"WPS-work":  WPS(Work, 0.7),
	}
	for name, s := range want {
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
}

func TestGammaWidthOfStrassenIsConstant(t *testing.T) {
	g1 := daggen.Strassen(rand.New(rand.NewSource(1)))
	g2 := daggen.Strassen(rand.New(rand.NewSource(2)))
	if Gamma(Width, g1, testRef) != Gamma(Width, g2, testRef) {
		t.Fatal("Strassen widths differ")
	}
}

func TestDefaultMuMatchesPaper(t *testing.T) {
	if DefaultMu(Work, daggen.FamilyRandom) != 0.7 {
		t.Error("WPS-work mu should be 0.7")
	}
	if DefaultMu(CriticalPath, daggen.FamilyFFT) != 0.5 {
		t.Error("WPS-cp mu should be 0.5")
	}
	if DefaultMu(Width, daggen.FamilyFFT) != 0.3 {
		t.Error("WPS-width mu on FFT should be 0.3")
	}
	if DefaultMu(Width, daggen.FamilyRandom) != 0.5 {
		t.Error("WPS-width mu on random should be 0.5")
	}
}

func TestPaperSetSizes(t *testing.T) {
	if n := len(PaperSet(daggen.FamilyRandom)); n != 8 {
		t.Errorf("random paper set has %d strategies, want 8", n)
	}
	if n := len(PaperSet(daggen.FamilyFFT)); n != 8 {
		t.Errorf("fft paper set has %d strategies, want 8", n)
	}
	set := PaperSet(daggen.FamilyStrassen)
	if n := len(set); n != 6 {
		t.Errorf("strassen paper set has %d strategies, want 6", n)
	}
	for _, s := range set {
		if s.Char == Width && s.Kind != Selfish && s.Kind != EqualShare {
			t.Errorf("strassen set contains width strategy %s", s)
		}
	}
}

// Property: every strategy yields betas in (0,1] and WPS betas sum to 1.
func TestBetasProperty(t *testing.T) {
	f := func(seed int64, n uint8, muRaw uint8) bool {
		count := int(n%9) + 2
		gs := graphs(count, seed)
		mu := float64(muRaw%101) / 100
		strategies := []Strategy{
			S(), ES(),
			PS(CriticalPath), PS(Width), PS(Work),
			WPS(CriticalPath, mu), WPS(Width, mu), WPS(Work, mu),
		}
		for _, s := range strategies {
			bs := s.Betas(gs, testRef)
			sum := 0.0
			for _, b := range bs {
				if b <= 0 || b > 1+1e-12 {
					return false
				}
				sum += b
			}
			if s.Kind != Selfish && math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
