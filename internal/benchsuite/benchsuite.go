// Package benchsuite defines the benchmark-regression suite shared by the
// repository's `go test -bench` entry points (bench_test.go) and the
// `ptgbench -experiment bench -json` harness, so both always measure the
// same workloads. See PERFORMANCE.md for the methodology and the recorded
// seed baseline.
package benchsuite

import (
	"math/rand"
	"testing"

	"ptgsched/internal/alloc"
	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/experiment"
	"ptgsched/internal/mapping"
	"ptgsched/internal/platform"
	"ptgsched/internal/sim"
)

// Case is one named benchmark of the regression suite.
type Case struct {
	Name  string
	Bench func(b *testing.B)
}

// Suite returns the regression suite: the paper-figure pipeline benchmarks
// plus the two scale microbenchmarks (mapping at 10k tasks, fair sharing
// at 1000 flows).
func Suite() []Case {
	return []Case{
		{"Fig2MuSweepWPSWork", func(b *testing.B) { Campaign(b, experiment.Fig2Config(42, 1)) }},
		{"Fig3RandomPTGs", func(b *testing.B) { Campaign(b, experiment.Fig3Config(42, 1)) }},
		{"Fig4FFTPTGs", func(b *testing.B) { Campaign(b, experiment.Fig4Config(42, 1)) }},
		{"Fig5StrassenPTGs", func(b *testing.B) { Campaign(b, experiment.Fig5Config(42, 1)) }},
		{"MapLarge", MapLarge},
		{"FairShare1000Flows", FairShare1000Flows},
	}
}

// Campaign shrinks a figure config to benchmark size and measures the cost
// of the complete pipeline that produces the figure.
func Campaign(b *testing.B, cfg experiment.Config) {
	b.Helper()
	cfg.Reps = 1
	cfg.NPTGs = []int{2, 6, 10}
	cfg.Platforms = []*platform.Platform{platform.Rennes()}
	cfg.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiment.Run(cfg)
		if len(res.Points) != 3 {
			b.Fatal("campaign lost points")
		}
	}
}

// MapLarge measures the mapping stage alone at production scale: 20 PTGs
// of 500 tasks each, mapped on all four Grid'5000 sites per iteration.
// Allocation happens once outside the timed loop, so ns/op and allocs/op
// reflect mapping.Map only. This is the headline number of the regression
// harness.
func MapLarge(b *testing.B) {
	r := rand.New(rand.NewSource(101))
	const nPTGs = 20
	graphs := make([]*dag.Graph, nPTGs)
	for i := range graphs {
		graphs[i] = daggen.Random(daggen.RandomConfig{
			Tasks:      500,
			Width:      0.5,
			Regularity: 0.8,
			Density:    0.2,
			Jump:       2,
		}, r)
	}
	sites := platform.Grid5000Sites()
	apps := make([][]*alloc.Allocation, len(sites))
	for si, pf := range sites {
		ref := pf.ReferenceCluster()
		apps[si] = make([]*alloc.Allocation, nPTGs)
		for i, g := range graphs {
			apps[si][i] = alloc.Compute(g, ref, 1.0/nPTGs, alloc.SCRAPMAX)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for si, pf := range sites {
			s := mapping.Map(pf, apps[si], mapping.Options{})
			if len(s.Placements) != nPTGs*500 {
				b.Fatal("lost placements")
			}
		}
	}
}

// FairShare1000Flows measures one progressive-filling solve over 1000
// flows crossing a 4-site-like topology of 24 links.
func FairShare1000Flows(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	links := make([]*sim.Link, 24)
	for i := range links {
		links[i] = sim.NewLink(
			string(rune('a'+i%26))+string(rune('0'+i/26)),
			1e9*(0.5+r.Float64()), 1e-4)
	}
	flows := make([]*sim.Flow, 1000)
	for i := range flows {
		route := []*sim.Link{links[r.Intn(len(links))]}
		for len(route) < 3 && r.Intn(2) == 0 {
			l := links[r.Intn(len(links))]
			dup := false
			for _, have := range route {
				if have == l {
					dup = true
				}
			}
			if !dup {
				route = append(route, l)
			}
		}
		flows[i] = sim.NewTestFlow(route, 1e8*(1+r.Float64()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.FairShareRates(flows)
	}
}
