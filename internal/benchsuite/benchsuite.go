// Package benchsuite defines the benchmark-regression suite shared by the
// repository's `go test -bench` entry points (bench_test.go) and the
// `ptgbench -experiment bench -json` harness, so both always measure the
// same workloads. See PERFORMANCE.md for the methodology and the recorded
// seed baseline.
//
// Concurrency: Suite and the case constructors are pure; each benchmark
// case owns its workload. The throughput cases (CampaignThroughput,
// ServiceSchedule) are themselves concurrency benchmarks and manage their
// own goroutines.
package benchsuite

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"ptgsched/internal/alloc"
	"ptgsched/internal/cache"
	"ptgsched/internal/coord"
	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/experiment"
	"ptgsched/internal/faultinject"
	"ptgsched/internal/mapping"
	"ptgsched/internal/platform"
	"ptgsched/internal/query"
	"ptgsched/internal/scenario"
	"ptgsched/internal/service"
	"ptgsched/internal/sim"
	"ptgsched/internal/store"
)

// Case is one named benchmark of the regression suite.
type Case struct {
	Name  string
	Bench func(b *testing.B)
}

// Suite returns the regression suite: the paper-figure pipeline benchmarks,
// the two scale microbenchmarks (mapping at 10k tasks, fair sharing at 1000
// flows), and the concurrent-throughput pair (the same figure campaign at 1
// and 8 workers — their ns/op ratio is the parallel-speedup number frozen
// in BENCH_mapping.json) plus the service throughput benchmark.
func Suite() []Case {
	return []Case{
		{"Fig2MuSweepWPSWork", func(b *testing.B) { Campaign(b, experiment.Fig2Config(42, 1)) }},
		{"Fig3RandomPTGs", func(b *testing.B) { Campaign(b, experiment.Fig3Config(42, 1)) }},
		{"Fig4FFTPTGs", func(b *testing.B) { Campaign(b, experiment.Fig4Config(42, 1)) }},
		{"Fig5StrassenPTGs", func(b *testing.B) { Campaign(b, experiment.Fig5Config(42, 1)) }},
		{"MapLarge", MapLarge},
		{"FairShare1000Flows", FairShare1000Flows},
		{CampaignWorkers1, func(b *testing.B) { CampaignThroughput(b, 1) }},
		{CampaignWorkers8, func(b *testing.B) { CampaignThroughput(b, 8) }},
		{ServiceThroughput8, func(b *testing.B) { ServiceSchedule(b, 8) }},
		{"CampaignExpand1M", CampaignExpand1M},
		{"CampaignAggregate40kStreaming", func(b *testing.B) { CampaignAggregate40k(b, true) }},
		{"CampaignAggregate40kMaterialized", func(b *testing.B) { CampaignAggregate40k(b, false) }},
		{"FleetCoordinate3Workers", FleetCoordinate},
		{"StoreQueryPushdown", func(b *testing.B) { StoreQuery(b, false) }},
		{"StoreQueryFullScan", func(b *testing.B) { StoreQuery(b, true) }},
		{"CampaignCachedSweep", CampaignCachedSweep},
	}
}

// Names of the concurrency benchmarks, shared with the ptgbench report so
// the speedup derivation cannot drift from the suite definition.
const (
	CampaignWorkers1   = "Fig3Campaign1Worker"
	CampaignWorkers8   = "Fig3Campaign8Workers"
	ServiceThroughput8 = "ServiceSchedule8Clients"
)

// Campaign shrinks a figure config to benchmark size and measures the cost
// of the complete pipeline that produces the figure.
func Campaign(b *testing.B, cfg experiment.Config) {
	b.Helper()
	cfg.Reps = 1
	cfg.NPTGs = []int{2, 6, 10}
	cfg.Platforms = []*platform.Platform{platform.Rennes()}
	cfg.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiment.Run(cfg)
		if len(res.Points) != 3 {
			b.Fatal("campaign lost points")
		}
	}
}

// CampaignThroughput measures the Fig. 3 campaign fanned out over the
// given number of workers: the full 8-strategy pipeline at every point, 2
// combinations × all 4 Grid'5000 sites × 3 PTG counts = 24 runs per
// iteration. The ratio between the 1-worker and 8-worker variants is the
// concurrent-throughput speedup recorded in BENCH_mapping.json; the
// campaign is embarrassingly parallel, so it tracks min(8, GOMAXPROCS) on
// an otherwise idle machine.
//
// Beyond ns/op, three scaling metrics land in BENCH_mapping.json:
// "points/sec/core" (campaign runs completed per second per core actually
// used — the machine-normalized throughput), "allocs/point" (heap
// allocations per campaign run, the number the scratch arenas gate), and —
// for the multi-worker variant only — "parallel-efficiency": the measured
// speedup over an untimed 1-worker reference run divided by
// min(workers, GOMAXPROCS), so 1.0 is perfect scaling on any host.
func CampaignThroughput(b *testing.B, workers int) {
	b.Helper()
	cfg := experiment.Fig3Config(42, 2)
	cfg.NPTGs = []int{2, 6, 10}
	cfg.Workers = workers
	cfg = cfg.Defaults()
	runs := len(cfg.NPTGs) * cfg.Reps * len(cfg.Platforms)

	cores := workers
	if g := runtime.GOMAXPROCS(0); cores > g {
		cores = g
	}
	// Sequential reference for the efficiency metric, outside the timed
	// region. Only the fan-out variants pay for it; the 1-worker benchmark
	// IS the reference.
	refNS := 0.0
	if workers > 1 {
		ref := cfg
		ref.Workers = 1
		start := time.Now()
		if res := experiment.Run(ref); len(res.Points) != 3 {
			b.Fatal("reference campaign lost points")
		}
		refNS = float64(time.Since(start).Nanoseconds())
	}

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res := experiment.Run(cfg)
		if len(res.Points) != 3 {
			b.Fatal("campaign lost points")
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&m1)

	perIterNS := float64(elapsed.Nanoseconds()) / float64(b.N)
	if perIterNS > 0 {
		b.ReportMetric(float64(runs)/(perIterNS/1e9)/float64(cores), "points/sec/core")
	}
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(b.N)/float64(runs), "allocs/point")
	if refNS > 0 && perIterNS > 0 {
		b.ReportMetric((refNS/perIterNS)/float64(cores), "parallel-efficiency")
	}
}

// ServiceSchedule measures the scheduling service end to end: per
// iteration, `clients` concurrent goroutines each submit one deterministic
// schedule request through the bounded worker pool.
func ServiceSchedule(b *testing.B, clients int) {
	b.Helper()
	svc := service.New(service.Options{Workers: clients, QueueDepth: 2 * clients})
	defer svc.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := svc.Schedule(ctx, service.ScheduleRequest{
					Platform: "rennes",
					Family:   "random",
					Count:    4,
					Strategy: "WPS-work",
					Seed:     int64(c + 1),
				})
				if err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
}

// CampaignExpand1M measures the lazy expansion of a one-million-point
// campaign spec: Expand resolves the cells and the arithmetic enumeration
// state, and a handful of PointAt probes exercise O(1) random access
// across the whole sweep. Before the streaming refactor this spec was
// over the engine's materialization cap entirely; the benchmark pins the
// property that expansion cost is per-cell, not per-point.
func CampaignExpand1M(b *testing.B) {
	spec, err := scenario.ParseSpec([]byte(
		`{"name":"expand1m","seed":7,"reps":50000,"families":[{"family":"strassen"}]}`))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := scenario.Expand(spec)
		if err != nil {
			b.Fatal(err)
		}
		if e.NumPoints() != 1_000_000 { // 1 cell × 5 NPTGs × 50000 reps × 4 sites
			b.Fatalf("expansion has %d points", e.NumPoints())
		}
		for _, idx := range []int{0, 123_457, 500_000, 999_999} {
			if p := e.PointAt(idx); p.Index != idx || p.Name == "" {
				b.Fatalf("PointAt(%d) = %+v", idx, p)
			}
		}
	}
}

// CampaignAggregate40k contrasts the two aggregation shapes over a
// 40,000-point sweep of synthetic results: streaming feeds each record
// straight into the incremental Aggregator (live memory = the fixed
// reduction slots), materialized builds the full []PointResult first (the
// pre-refactor pipeline shape) and then aggregates. Besides ns/op and
// allocs/op, each run reports the live heap held just before
// finalization as "live-heap-bytes" — the number PERFORMANCE.md quotes
// for the memory-model change.
func CampaignAggregate40k(b *testing.B, streaming bool) {
	spec, err := scenario.ParseSpec([]byte(
		`{"name":"agg40k","seed":3,"reps":5000,"nptgs":[2,4],"families":[{"family":"strassen"}]}`))
	if err != nil {
		b.Fatal(err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		b.Fatal(err)
	}
	n := e.NumPoints()
	if n != 40_000 {
		b.Fatalf("aggregation spec expands to %d points", n)
	}
	ns := len(e.Cells[0].Config.Strategies)

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	base := m0.HeapAlloc

	live := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var holder any
		if streaming {
			agg := e.NewAggregator()
			for idx := 0; idx < n; idx++ {
				if err := agg.Add(synthResult(e, idx, ns)); err != nil {
					b.Fatal(err)
				}
			}
			holder = agg
			live = liveHeapBytes(base)
			if _, err := agg.Tables(); err != nil {
				b.Fatal(err)
			}
		} else {
			results := make([]scenario.PointResult, 0, n)
			for idx := 0; idx < n; idx++ {
				results = append(results, synthResult(e, idx, ns))
			}
			holder = results
			live = liveHeapBytes(base)
			if _, err := e.Aggregate(results); err != nil {
				b.Fatal(err)
			}
		}
		runtime.KeepAlive(holder)
	}
	b.ReportMetric(live, "live-heap-bytes")
}

// FleetCoordinate measures the fault-tolerant coordinator end to end:
// each iteration boots three in-process workers, coordinates an 8-point
// campaign over them while worker 0's host dies after its opening
// requests (a scripted faultinject schedule, deterministic every run),
// and absorbs the reassigned shard. Beyond ns/op it reports the
// robustness counters per coordinated run as custom metrics —
// "fleet-retries", "fleet-reassignments", "fleet-worker-deaths",
// "fleet-duplicate-points" — so BENCH_mapping.json records the
// failure-handling cost alongside the throughput numbers.
func FleetCoordinate(b *testing.B) {
	b.Helper()
	const spec = `{"name":"fleetbench","seed":9,"reps":2,"nptgs":[2,3],` +
		`"platforms":["lille","rennes"],"families":[{"family":"strassen"}]}`
	fast := coord.ClientOptions{Retry: coord.RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}}
	var retries, reassigns, deaths, dups float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		urls := make([]string, 3)
		teardown := make([]func(), 0, 2*len(urls))
		for w := range urls {
			svc := service.New(service.Options{Workers: 2})
			ts := httptest.NewServer(service.Handler(svc))
			teardown = append(teardown, ts.Close, func() { svc.Close() })
			urls[w] = ts.URL
		}
		// Worker 0 survives exactly its job submission, then its host drops
		// off the network for good: the shard is accepted but never polled
		// home, forcing a death verdict and a reassignment every iteration.
		plan := faultinject.NewScript(faultinject.Action{}).
			Then(faultinject.Action{Kind: faultinject.Drop})
		victim := urls[0]
		b.StartTimer()

		c, err := coord.New([]byte(spec), urls, coord.Options{
			PollInterval: 2 * time.Millisecond,
			Client:       fast,
			TransportFor: func(addr string) coord.ClientOptions {
				co := fast
				if addr == victim {
					co.Transport = &faultinject.Transport{Plan: plan}
				}
				return co
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		tables, err := c.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("coordinated run produced no tables")
		}
		cs := c.Counters()
		if cs.WorkerDeaths == 0 {
			b.Fatal("scripted worker death never happened")
		}
		retries += float64(cs.Retries)
		reassigns += float64(cs.Reassignments)
		deaths += float64(cs.WorkerDeaths)
		dups += float64(cs.DuplicatePoints)

		b.StopTimer()
		for _, f := range teardown {
			f()
		}
		b.StartTimer()
	}
	n := float64(b.N)
	b.ReportMetric(retries/n, "fleet-retries")
	b.ReportMetric(reassigns/n, "fleet-reassignments")
	b.ReportMetric(deaths/n, "fleet-worker-deaths")
	b.ReportMetric(dups/n, "fleet-duplicate-points")
}

// StoreQuery measures the result-query path over an on-disk store of
// 3000 synthetic points (three cells across two families, two shard
// segments, index sidecars built at append time): per iteration, one
// selective predicate — strassen cells only, projected to WPS-work —
// streams through Store.Query (fullScan false, the indexed path reading
// only matching byte runs) or Store.QueryFullScan (true, decoding every
// record; the contrast number). Custom metrics record the pushdown
// evidence BENCH_mapping.json freezes: "query-bytes-read" and
// "query-decoded-lines" against "query-bytes-total" — the indexed
// variant's read volume must stay the selection's share of the store,
// not the store's size.
func StoreQuery(b *testing.B, fullScan bool) {
	b.Helper()
	spec, err := scenario.ParseSpec([]byte(
		`{"name":"querybench","seed":11,"reps":250,"nptgs":[2,4],` +
			`"platforms":["lille","rennes"],` +
			`"families":[{"family":"strassen"},{"family":"fft","k":[2,3]}]}`))
	if err != nil {
		b.Fatal(err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		b.Fatal(err)
	}
	if e.NumPoints() != 3000 {
		b.Fatalf("query benchmark spec expands to %d points", e.NumPoints())
	}
	dir := b.TempDir()
	st, err := store.Create(dir, e, 2)
	if err != nil {
		b.Fatal(err)
	}
	for idx := 0; idx < e.NumPoints(); idx++ {
		ns := len(e.Cells[e.CellOf(idx)].Config.Strategies)
		if err := st.Append(synthResult(e, idx, ns)); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	ro, err := store.OpenRead(dir, e)
	if err != nil {
		b.Fatal(err)
	}
	defer ro.Close()
	if n := ro.RebuiltSegments(); n != 0 {
		b.Fatalf("%d sidecars rebuilt on a cleanly closed store", n)
	}
	p, err := query.CompileCached(e, query.Query{
		Family: "strassen", Strategy: "WPS-work", To: query.NoLimit,
	})
	if err != nil {
		b.Fatal(err)
	}
	want := p.NumSelected()

	var stats store.QueryStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		count := func(scenario.PointResult) error { n++; return nil }
		if fullScan {
			stats, err = ro.QueryFullScan(p, count)
		} else {
			stats, err = ro.Query(p, count)
		}
		if err != nil {
			b.Fatal(err)
		}
		if n != want {
			b.Fatalf("query emitted %d records, want %d", n, want)
		}
	}
	b.ReportMetric(float64(stats.BytesRead), "query-bytes-read")
	b.ReportMetric(float64(stats.LinesDecoded), "query-decoded-lines")
	b.ReportMetric(float64(stats.BytesTotal), "query-bytes-total")
}

// synthResult fabricates a deterministic, realistically shaped result for
// point idx (real name, ns strategy columns) without running the
// scheduling pipeline — the aggregation benchmarks measure reduction
// cost, not scheduling cost.
func synthResult(e *scenario.Expansion, idx, ns int) scenario.PointResult {
	p := e.PointAt(idx)
	r := scenario.PointResult{
		Index:      idx,
		Cell:       p.Cell,
		Name:       p.Name,
		Unfairness: make([]float64, ns),
		Makespan:   make([]float64, ns),
		Rel:        make([]float64, ns),
	}
	for s := 0; s < ns; s++ {
		r.Unfairness[s] = float64(idx%97)/97 + float64(s)*0.01
		r.Makespan[s] = 1000 + float64(idx%1013) + float64(s)
		r.Rel[s] = 1 + float64(s)*0.1
	}
	return r
}

// liveHeapBytes forces a collection and returns the live heap above the
// pre-benchmark baseline.
func liveHeapBytes(base uint64) float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc < base {
		return 0
	}
	return float64(m.HeapAlloc - base)
}

// MapLarge measures the mapping stage alone at production scale: 20 PTGs
// of 500 tasks each, mapped on all four Grid'5000 sites per iteration.
// Allocation happens once outside the timed loop, so ns/op and allocs/op
// reflect mapping.Map only. This is the headline number of the regression
// harness.
func MapLarge(b *testing.B) {
	r := rand.New(rand.NewSource(101))
	const nPTGs = 20
	graphs := make([]*dag.Graph, nPTGs)
	for i := range graphs {
		graphs[i] = daggen.Random(daggen.RandomConfig{
			Tasks:      500,
			Width:      0.5,
			Regularity: 0.8,
			Density:    0.2,
			Jump:       2,
		}, r)
	}
	sites := platform.Grid5000Sites()
	apps := make([][]*alloc.Allocation, len(sites))
	for si, pf := range sites {
		ref := pf.ReferenceCluster()
		apps[si] = make([]*alloc.Allocation, nPTGs)
		for i, g := range graphs {
			apps[si][i] = alloc.Compute(g, ref, 1.0/nPTGs, alloc.SCRAPMAX)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for si, pf := range sites {
			s := mapping.Map(pf, apps[si], mapping.Options{})
			if len(s.Placements) != nPTGs*500 {
				b.Fatal("lost placements")
			}
		}
	}
}

// FairShare1000Flows measures one progressive-filling solve over 1000
// flows crossing a 4-site-like topology of 24 links.
func FairShare1000Flows(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	links := make([]*sim.Link, 24)
	for i := range links {
		links[i] = sim.NewLink(
			string(rune('a'+i%26))+string(rune('0'+i/26)),
			1e9*(0.5+r.Float64()), 1e-4)
	}
	flows := make([]*sim.Flow, 1000)
	for i := range flows {
		route := []*sim.Link{links[r.Intn(len(links))]}
		for len(route) < 3 && r.Intn(2) == 0 {
			l := links[r.Intn(len(links))]
			dup := false
			for _, have := range route {
				if have == l {
					dup = true
				}
			}
			if !dup {
				route = append(route, l)
			}
		}
		flows[i] = sim.NewTestFlow(route, 1e8*(1+r.Float64()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.FairShareRates(flows)
	}
}

// CampaignCachedSweep measures the content-addressed cache on its warm
// path: a Fig. 3-shaped strassen campaign is swept once cold to populate
// a cache directory, then each iteration reopens the directory (verifying
// every segment's hash chain from scratch) and sweeps the whole campaign
// through it. Two custom metrics land in BENCH_mapping.json:
// "cache-hit-rate" (fraction of points served from the cache — 1.0 when
// the cache is healthy) and "cache-verify-ns/point" (chain verification
// cost at open, amortized per cached point).
func CampaignCachedSweep(b *testing.B) {
	b.Helper()
	spec, err := scenario.ParseSpec([]byte(`{
		"name": "cached-sweep",
		"seed": 42,
		"reps": 5,
		"nptgs": [2, 6, 10],
		"platforms": ["rennes"],
		"families": [{"family": "strassen"}]
	}`))
	if err != nil {
		b.Fatal(err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	c, err := cache.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	e.RunMemo(e.All(), 0, c.Bind(e))
	if err := c.Sync(); err != nil {
		b.Fatal(err)
	}
	if err := c.Close(); err != nil {
		b.Fatal(err)
	}

	var verifyNS int64
	var hits, misses uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		cw, err := cache.Open(dir) // full chain verification of every segment
		if err != nil {
			b.Fatal(err)
		}
		verifyNS += time.Since(start).Nanoseconds()
		res := e.RunMemo(e.All(), 0, cw.Bind(e))
		if len(res) != e.NumPoints() {
			b.Fatal("cached sweep lost points")
		}
		st := cw.Stats()
		if st.VerifyFailures != 0 {
			b.Fatalf("pristine cache reported %d verify failures", st.VerifyFailures)
		}
		hits += st.Hits
		misses += st.Misses
	}
	b.StopTimer()
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "cache-hit-rate")
	}
	b.ReportMetric(float64(verifyNS)/float64(int64(b.N)*int64(e.NumPoints())), "cache-verify-ns/point")
}
