package sim

import (
	"fmt"
	"math"
	"sort"
)

// Link is a network resource with a fixed capacity in bytes per second and a
// constant latency in seconds. Links are shared by flows under bounded
// max-min fairness.
type Link struct {
	Name     string
	Capacity float64 // bytes/s
	Latency  float64 // seconds
}

// NewLink returns a link with the given capacity (bytes/s) and latency (s).
func NewLink(name string, capacity, latency float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: link %q capacity must be positive, got %g", name, capacity))
	}
	if latency < 0 {
		panic(fmt.Sprintf("sim: link %q latency must be non-negative, got %g", name, latency))
	}
	return &Link{Name: name, Capacity: capacity, Latency: latency}
}

// Flow is a data transfer over a route of links. Flows are created through
// FlowNet.Start and must not be constructed directly.
type Flow struct {
	Label     string
	route     []*Link
	remaining float64 // bytes still to transfer once started
	rate      float64 // current bytes/s, set by the fair-share solver
	started   bool    // latency elapsed, transferring
	done      bool
	onDone    func(endTime float64)
	startEv   *Event
}

// Remaining returns the bytes still to be transferred (excluding latency).
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the current fair-share transfer rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// FlowNet manages the set of active flows on a network and drives their
// progress on an Engine using a bounded max-min fair-share bandwidth model:
// whenever the set of active flows changes, all rates are recomputed by
// progressive filling and the next completion event is (re)scheduled.
type FlowNet struct {
	eng        *Engine
	active     []*Flow
	lastUpdate float64
	completion *Event
	// nextDone is the flow the pending completion event was scheduled
	// for. It is force-retired when the event fires: floating-point
	// residue (remaining ≈ rate·ulp(now)) could otherwise leave a flow
	// whose completion time underflows against the clock, stalling the
	// simulation in a zero-dt event loop.
	nextDone *Flow
}

// NewFlowNet returns a flow manager bound to eng.
func NewFlowNet(eng *Engine) *FlowNet {
	return &FlowNet{eng: eng}
}

// Start initiates a transfer of the given number of bytes along route. The
// flow first waits for the route latency (the sum of link latencies), then
// transfers at its fair-share rate. onDone, if non-nil, fires at completion
// with the completion time. A transfer of zero bytes completes after the
// route latency alone. An empty route models a purely local exchange and
// completes immediately.
func (n *FlowNet) Start(label string, route []*Link, bytes float64, onDone func(endTime float64)) *Flow {
	if bytes < 0 {
		panic(fmt.Sprintf("sim: flow %q with negative size %g", label, bytes))
	}
	f := &Flow{Label: label, route: route, remaining: bytes, onDone: onDone}
	if len(route) == 0 {
		// Local exchange: no network involvement at all.
		n.eng.After(0, "flow-local:"+label, func() { n.finish(f) })
		return f
	}
	lat := 0.0
	for _, l := range route {
		lat += l.Latency
	}
	f.startEv = n.eng.After(lat, "flow-start:"+label, func() {
		f.started = true
		if f.remaining <= 0 {
			n.finish(f)
			return
		}
		n.advance()
		n.active = append(n.active, f)
		n.reshare()
	})
	return f
}

// ActiveFlows returns the number of flows currently transferring bytes.
func (n *FlowNet) ActiveFlows() int { return len(n.active) }

// advance progresses every active flow's remaining bytes to the current
// simulation time using the rates computed at the last reshare.
func (n *FlowNet) advance() {
	dt := n.eng.Now() - n.lastUpdate
	if dt > 0 {
		for _, f := range n.active {
			f.remaining -= f.rate * dt
			// Snap sub-microbyte residue to zero: real transfers are
			// megabytes, anything this small is floating-point noise.
			if f.remaining < 1e-6 {
				f.remaining = 0
			}
		}
	}
	n.lastUpdate = n.eng.Now()
}

// reshare recomputes all fair-share rates and schedules the next flow
// completion. Must be called with remaining amounts already advanced.
func (n *FlowNet) reshare() {
	if n.completion != nil {
		n.completion.Cancel()
		n.completion = nil
		n.nextDone = nil
	}
	if len(n.active) == 0 {
		return
	}
	FairShareRates(n.active)

	// Find the earliest completion among active flows.
	next := math.Inf(1)
	var first *Flow
	for _, f := range n.active {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < next {
			next = t
			first = f
		}
	}
	if first == nil {
		panic("sim: active flows with no progress possible")
	}
	n.nextDone = first
	n.completion = n.eng.After(next, "flow-completion", n.onCompletion)
}

// onCompletion retires every flow that has finished and reshapes the rest.
// The flow the event was scheduled for is always retired, guaranteeing
// progress even when floating-point residue keeps its remaining amount
// marginally positive.
func (n *FlowNet) onCompletion() {
	target := n.nextDone
	n.advance()
	if target != nil {
		target.remaining = 0
	}
	kept := n.active[:0]
	var finished []*Flow
	for _, f := range n.active {
		if f.remaining <= 0 {
			finished = append(finished, f)
		} else {
			kept = append(kept, f)
		}
	}
	n.active = kept
	n.reshare()
	for _, f := range finished {
		n.finish(f)
	}
}

func (n *FlowNet) finish(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	f.rate = 0
	if f.onDone != nil {
		f.onDone(n.eng.Now())
	}
}

// FairShareRates computes bounded max-min fair rates for the given flows by
// progressive filling and stores them in each flow's rate field. It is
// exported (within the package tree) for direct property testing.
func FairShareRates(flows []*Flow) {
	type linkState struct {
		capLeft float64
		nUnsat  int
	}
	states := make(map[*Link]*linkState)
	unsat := make(map[*Flow]bool, len(flows))
	for _, f := range flows {
		f.rate = 0
		unsat[f] = true
		for _, l := range f.route {
			st, ok := states[l]
			if !ok {
				st = &linkState{capLeft: l.Capacity}
				states[l] = st
			}
			st.nUnsat++
		}
	}
	for len(unsat) > 0 {
		// Find the bottleneck link: smallest fair share capLeft/nUnsat.
		var bottleneck *Link
		share := math.Inf(1)
		// Deterministic iteration: sort candidate links by name.
		links := make([]*Link, 0, len(states))
		for l, st := range states {
			if st.nUnsat > 0 {
				links = append(links, l)
			}
		}
		sort.Slice(links, func(i, j int) bool { return links[i].Name < links[j].Name })
		for _, l := range links {
			st := states[l]
			s := st.capLeft / float64(st.nUnsat)
			if s < share {
				share = s
				bottleneck = l
			}
		}
		if bottleneck == nil {
			// No remaining link constrains the unsaturated flows; this can
			// only happen for flows with empty routes, which Start handles
			// separately, so treat as a bug.
			panic("sim: fair-share solver found unconstrained flows")
		}
		if share < 0 {
			share = 0
		}
		// Saturate every unsaturated flow crossing the bottleneck.
		for f := range unsat {
			crosses := false
			for _, l := range f.route {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rate = share
			delete(unsat, f)
			for _, l := range f.route {
				st := states[l]
				st.capLeft -= share
				if st.capLeft < 0 {
					st.capLeft = 0
				}
				st.nUnsat--
			}
		}
	}
}
