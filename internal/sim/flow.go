package sim

import (
	"fmt"
	"math"
)

// Link is a network resource with a fixed capacity in bytes per second and a
// constant latency in seconds. Links are shared by flows under bounded
// max-min fairness.
type Link struct {
	Name     string
	Capacity float64 // bytes/s
	Latency  float64 // seconds
}

// NewLink returns a link with the given capacity (bytes/s) and latency (s).
func NewLink(name string, capacity, latency float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: link %q capacity must be positive, got %g", name, capacity))
	}
	if latency < 0 {
		panic(fmt.Sprintf("sim: link %q latency must be non-negative, got %g", name, latency))
	}
	return &Link{Name: name, Capacity: capacity, Latency: latency}
}

// Flow is a data transfer over a route of links. Flows are created through
// FlowNet.Start and must not be constructed directly.
type Flow struct {
	Label     string
	route     []*Link
	routeIDs  []int   // dense link IDs within the owning FlowNet's solver
	remaining float64 // bytes still to transfer once started
	rate      float64 // current bytes/s, set by the fair-share solver
	started   bool    // latency elapsed, transferring
	done      bool
	onDone    func(endTime float64)
	startEv   *Event
	// startFn is the latency-elapsed callback, created once per arena
	// slot and reused across recycles (it captures only the slot's stable
	// address and its owning net).
	startFn func()
}

// NewTestFlow returns an unstarted flow over route with the given remaining
// bytes. It is not registered with any FlowNet: it exists so tests and
// benchmarks outside the package can exercise FairShareRates directly.
func NewTestFlow(route []*Link, remaining float64) *Flow {
	return &Flow{route: route, remaining: remaining}
}

// Remaining returns the bytes still to be transferred (excluding latency).
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the current fair-share transfer rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// FlowNet manages the set of active flows on a network and drives their
// progress on an Engine using a bounded max-min fair-share bandwidth model:
// whenever the set of active flows changes, all rates are recomputed by
// progressive filling and the next completion event is (re)scheduled.
type FlowNet struct {
	eng        *Engine
	active     []*Flow
	lastUpdate float64
	completion *Event
	// nextDone is the flow the pending completion event was scheduled
	// for. It is force-retired when the event fires: floating-point
	// residue (remaining ≈ rate·ulp(now)) could otherwise leave a flow
	// whose completion time underflows against the clock, stalling the
	// simulation in a zero-dt event loop.
	nextDone *Flow
	// solver holds the persistent link registry and the scratch state of
	// the fair-share computation, reused across reshares.
	solver fairShareSolver

	// Flow arena: Start hands flows out of fixed-size blocks and Reset
	// recycles them wholesale (keeping each flow's routeIDs capacity), so
	// replaying many schedules on one net allocates flows only while the
	// high-water mark grows.
	flBlocks [][]Flow
	flBlock  int
	flUsed   int

	// finished is onCompletion's scratch for the flows retired by one
	// completion event (events run sequentially, so it is never nested).
	finished []*Flow
}

// NewFlowNet returns a flow manager bound to eng.
func NewFlowNet(eng *Engine) *FlowNet {
	return &FlowNet{eng: eng}
}

// Reset detaches all flows and returns the net to its initial state,
// keeping the solver's link registry (links are immutable and shared
// across simulations) and the flow arena for reuse. The engine must be
// Reset alongside; flows handed out before the Reset are invalidated.
func (n *FlowNet) Reset() {
	for i := range n.active {
		n.active[i] = nil
	}
	n.active = n.active[:0]
	n.lastUpdate = 0
	n.completion = nil
	n.nextDone = nil
	n.flBlock = 0
	n.flUsed = 0
}

// flowBlockSize is the arena block granularity.
const flowBlockSize = 256

// newFlow returns a zeroed flow from the arena, preserving the recycled
// flow's routeIDs capacity.
func (n *FlowNet) newFlow() *Flow {
	if n.flBlock == len(n.flBlocks) {
		n.flBlocks = append(n.flBlocks, make([]Flow, flowBlockSize))
	}
	blk := n.flBlocks[n.flBlock]
	f := &blk[n.flUsed]
	n.flUsed++
	if n.flUsed == len(blk) {
		n.flBlock++
		n.flUsed = 0
	}
	ids := f.routeIDs[:0]
	fn := f.startFn
	*f = Flow{routeIDs: ids, startFn: fn}
	return f
}

// Start initiates a transfer of the given number of bytes along route. The
// flow first waits for the route latency (the sum of link latencies), then
// transfers at its fair-share rate. onDone, if non-nil, fires at completion
// with the completion time. A transfer of zero bytes completes after the
// route latency alone. An empty route models a purely local exchange and
// completes immediately: no network or engine involvement at all, so the
// flow is finished — and onDone has fired — before Start returns.
func (n *FlowNet) Start(label string, route []*Link, bytes float64, onDone func(endTime float64)) *Flow {
	if bytes < 0 {
		panic(fmt.Sprintf("sim: flow %q with negative size %g", label, bytes))
	}
	f := n.newFlow()
	f.Label, f.route, f.remaining, f.onDone = label, route, bytes, onDone
	if len(route) == 0 {
		n.finish(f)
		return f
	}
	f.routeIDs = n.solver.register(route, f.routeIDs)
	lat := 0.0
	for _, l := range route {
		lat += l.Latency
	}
	// The start label is only observable through the engine's OnEvent
	// hook; skip the concatenation on the (hot) unobserved path.
	startLabel := label
	if n.eng.OnEvent != nil {
		startLabel = "flow-start:" + label
	}
	if f.startFn == nil {
		f.startFn = func() { n.flowStarted(f) }
	}
	f.startEv = n.eng.After(lat, startLabel, f.startFn)
	return f
}

// flowStarted runs when a flow's route latency has elapsed: the flow
// joins the active set and bandwidth is reshared.
func (n *FlowNet) flowStarted(f *Flow) {
	f.started = true
	if f.remaining <= 0 {
		n.finish(f)
		return
	}
	n.advance()
	n.active = append(n.active, f)
	n.reshare()
}

// ActiveFlows returns the number of flows currently transferring bytes.
func (n *FlowNet) ActiveFlows() int { return len(n.active) }

// advance progresses every active flow's remaining bytes to the current
// simulation time using the rates computed at the last reshare.
func (n *FlowNet) advance() {
	dt := n.eng.Now() - n.lastUpdate
	if dt > 0 {
		for _, f := range n.active {
			f.remaining -= f.rate * dt
			// Snap sub-microbyte residue to zero: real transfers are
			// megabytes, anything this small is floating-point noise.
			if f.remaining < 1e-6 {
				f.remaining = 0
			}
		}
	}
	n.lastUpdate = n.eng.Now()
}

// reshare recomputes all fair-share rates and schedules the next flow
// completion. Must be called with remaining amounts already advanced.
func (n *FlowNet) reshare() {
	if n.completion != nil {
		n.completion.Cancel()
		n.completion = nil
		n.nextDone = nil
	}
	if len(n.active) == 0 {
		return
	}
	n.solver.solve(n.active, nil)

	// Find the earliest completion among active flows.
	next := math.Inf(1)
	var first *Flow
	for _, f := range n.active {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < next {
			next = t
			first = f
		}
	}
	if first == nil {
		panic("sim: active flows with no progress possible")
	}
	n.nextDone = first
	n.completion = n.eng.After(next, "flow-completion", n.onCompletion)
}

// onCompletion retires every flow that has finished and reshapes the rest.
// The flow the event was scheduled for is always retired, guaranteeing
// progress even when floating-point residue keeps its remaining amount
// marginally positive.
func (n *FlowNet) onCompletion() {
	target := n.nextDone
	n.advance()
	if target != nil {
		target.remaining = 0
	}
	kept := n.active[:0]
	finished := n.finished[:0]
	for _, f := range n.active {
		if f.remaining <= 0 {
			finished = append(finished, f)
		} else {
			kept = append(kept, f)
		}
	}
	n.active = kept
	n.reshare()
	for _, f := range finished {
		n.finish(f)
	}
	for i := range finished {
		finished[i] = nil
	}
	n.finished = finished[:0]
}

func (n *FlowNet) finish(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	f.rate = 0
	if f.onDone != nil {
		f.onDone(n.eng.Now())
	}
}

// FairShareRates computes bounded max-min fair rates for the given flows by
// progressive filling and stores them in each flow's rate field. It is
// exported (within the package tree) for direct property testing; the
// simulation's own reshare path reuses a persistent per-FlowNet solver
// instead, so link registration happens once per flow rather than once per
// call.
func FairShareRates(flows []*Flow) {
	var s fairShareSolver
	total := 0
	for _, f := range flows {
		total += len(f.route)
	}
	flat := make([]int, 0, total)
	routes := make([][]int, len(flows))
	for i, f := range flows {
		start := len(flat)
		flat = s.register(f.route, flat)
		routes[i] = flat[start:]
	}
	s.solve(flows, routes)
}

// fairShareSolver is the index-based progressive-filling engine behind
// FairShareRates. Each distinct link is assigned a dense integer ID at
// registration; all per-round state (remaining capacity, unsaturated-flow
// counts, the unsaturated set itself) lives in slices indexed by those IDs,
// so the solve loop performs no map iteration and no sorting.
//
// Determinism: the seed implementation broke bottleneck-share ties by
// iterating candidate links in name order. The solver precomputes each
// link's rank in that same name order (ties by registration order) and
// breaks share ties by rank, selecting the identical bottleneck without
// re-sorting every round. Flows are saturated in ascending flow-slice
// order, which also fixes the arithmetic order of the capacity decrements
// — the seed left it to map iteration order.
type fairShareSolver struct {
	ids    map[*Link]int // link → dense ID
	links  []*Link       // dense ID → link
	rank   []int         // dense ID → position in name order
	rankOK bool

	// Scratch reused across solves, indexed by dense ID. stamp marks the
	// IDs touched by the current solve (== epoch), so nothing needs
	// clearing between calls.
	epoch   uint64
	stamp   []uint64
	capLeft []float64
	nUnsat  []int
	used    []int // IDs touched by the current solve
	unsat   []int // flow indices not yet saturated, in slice order
}

// register assigns dense IDs to the links of route, appending them to dst.
func (s *fairShareSolver) register(route []*Link, dst []int) []int {
	for _, l := range route {
		id, ok := s.ids[l]
		if !ok {
			if s.ids == nil {
				s.ids = make(map[*Link]int)
			}
			id = len(s.links)
			s.ids[l] = id
			s.links = append(s.links, l)
			s.stamp = append(s.stamp, 0)
			s.capLeft = append(s.capLeft, 0)
			s.nUnsat = append(s.nUnsat, 0)
			s.rankOK = false
		}
		dst = append(dst, id)
	}
	return dst
}

// ensureRanks recomputes the name-order ranks after new registrations.
func (s *fairShareSolver) ensureRanks() {
	if s.rankOK {
		return
	}
	order := make([]int, len(s.links))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by (name, ID): links are few and registrations rare.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if s.links[a].Name < s.links[b].Name ||
				(s.links[a].Name == s.links[b].Name && a < b) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	s.rank = make([]int, len(s.links))
	for pos, id := range order {
		s.rank[id] = pos
	}
	s.rankOK = true
}

// solve computes bounded max-min fair rates for flows by progressive
// filling. routes[i] gives flow i's route as dense IDs; a nil routes uses
// each flow's own registered routeIDs.
func (s *fairShareSolver) solve(flows []*Flow, routes [][]int) {
	if len(flows) == 0 {
		return
	}
	routeOf := func(i int) []int {
		if routes != nil {
			return routes[i]
		}
		return flows[i].routeIDs
	}
	s.ensureRanks()
	s.epoch++
	used := s.used[:0]
	for i, f := range flows {
		f.rate = 0
		for _, id := range routeOf(i) {
			if s.stamp[id] != s.epoch {
				s.stamp[id] = s.epoch
				s.capLeft[id] = s.links[id].Capacity
				s.nUnsat[id] = 0
				used = append(used, id)
			}
			s.nUnsat[id]++
		}
	}
	unsat := s.unsat[:0]
	for i := range flows {
		unsat = append(unsat, i)
	}

	for len(unsat) > 0 {
		// Find the bottleneck link: smallest fair share capLeft/nUnsat,
		// ties broken by name-order rank.
		bott := -1
		share := math.Inf(1)
		for _, id := range used {
			if s.nUnsat[id] == 0 {
				continue
			}
			sh := s.capLeft[id] / float64(s.nUnsat[id])
			if sh < share || (sh == share && bott >= 0 && s.rank[id] < s.rank[bott]) {
				share = sh
				bott = id
			}
		}
		if bott < 0 {
			// No remaining link constrains the unsaturated flows; this can
			// only happen for flows with empty routes, which Start handles
			// separately, so treat as a bug.
			panic("sim: fair-share solver found unconstrained flows")
		}
		if share < 0 {
			share = 0
		}
		// Saturate every unsaturated flow crossing the bottleneck, in
		// flow order; compact the rest in place, preserving order.
		kept := unsat[:0]
		for _, fi := range unsat {
			crosses := false
			for _, id := range routeOf(fi) {
				if id == bott {
					crosses = true
					break
				}
			}
			if !crosses {
				kept = append(kept, fi)
				continue
			}
			flows[fi].rate = share
			for _, id := range routeOf(fi) {
				s.capLeft[id] -= share
				if s.capLeft[id] < 0 {
					s.capLeft[id] = 0
				}
				s.nUnsat[id]--
			}
		}
		unsat = kept
	}
	s.used = used
	s.unsat = unsat
}
