// Package sim provides a from-scratch discrete-event simulation kernel used
// to execute parallel-task-graph schedules on multi-cluster platforms.
//
// The kernel is deliberately small: a virtual clock, a time-ordered event
// queue, and activities (computations and network flows) whose remaining
// work is advanced between events. Network flows share link bandwidth using
// a bounded max-min fair-share model (progressive filling), which is the
// same class of flow-level model SimGrid uses for LAN contention. This is
// the substrate on which the paper's evaluation runs.
//
// Concurrency: a Link is immutable after NewLink and may be shared by any
// number of simulations; Engine, FlowNet and Flow form one single-threaded
// simulation instance and must be confined to one goroutine. Independent
// simulations over the same links parallelize freely — this is what lets
// the service and experiment layers replay schedules concurrently on
// shared platforms.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     float64
	queue   eventQueue
	seq     int64 // tie-breaker for deterministic ordering
	stopped bool

	// Event arena: At hands events out of fixed-size blocks and Reset
	// recycles the blocks wholesale, so replaying many schedules on one
	// engine allocates events only while the high-water mark grows.
	evBlocks [][]Event
	evBlock  int // block the next event comes from
	evUsed   int // events used within that block

	// Hooks, optional. Invoked synchronously inside Run.
	OnEvent func(t float64, label string)
}

// NewEngine returns an empty simulator positioned at virtual time 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Reset returns the engine to virtual time 0 with an empty queue and a
// recycled event arena, keeping allocated capacity for the next
// simulation. Events handed out before the Reset are invalidated: callers
// must not retain or Cancel them across a Reset.
func (e *Engine) Reset() {
	for i := range e.queue {
		e.queue[i] = nil
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.evBlock = 0
	e.evUsed = 0
}

// eventBlockSize is the arena block granularity; a Fig. 3-sized run
// schedules a few thousand events, so blocks stay few.
const eventBlockSize = 512

// newEvent returns a zeroed event from the arena.
func (e *Engine) newEvent() *Event {
	if e.evBlock == len(e.evBlocks) {
		e.evBlocks = append(e.evBlocks, make([]Event, eventBlockSize))
	}
	blk := e.evBlocks[e.evBlock]
	ev := &blk[e.evUsed]
	e.evUsed++
	if e.evUsed == len(blk) {
		e.evBlock++
		e.evUsed = 0
	}
	*ev = Event{}
	return ev
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Stop aborts the simulation after the current event callback returns.
func (e *Engine) Stop() { e.stopped = true }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is an error that panics: it always indicates a simulator bug, not a user
// input problem.
func (e *Engine) At(t float64, label string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event %q at %g before now %g", label, t, e.now))
	}
	if math.IsNaN(t) {
		panic(fmt.Sprintf("sim: scheduling event %q at NaN", label))
	}
	ev := e.newEvent()
	ev.time, ev.seq, ev.label, ev.fn = t, e.seq, label, fn
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay seconds from now.
func (e *Engine) After(delay float64, label string, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g for event %q", delay, label))
	}
	return e.At(e.now+delay, label, fn)
}

// Run processes events until the queue is empty or Stop is called. It
// returns the final virtual time.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		if ev.time < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %g -> %g (%s)", e.now, ev.time, ev.label))
		}
		e.now = ev.time
		if e.OnEvent != nil {
			e.OnEvent(e.now, ev.label)
		}
		if ev.fn != nil {
			ev.fn()
		}
	}
	return e.now
}

// Pending reports the number of not-yet-cancelled events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	time      float64
	seq       int64
	label     string
	fn        func()
	cancelled bool
	index     int
}

// Time returns the virtual time at which the event fires.
func (ev *Event) Time() float64 { return ev.time }

// Label returns the human-readable label given at scheduling time.
func (ev *Event) Label() string { return ev.label }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
