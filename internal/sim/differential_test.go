package sim

// Differential golden test for the fair-share solver: the index-based
// solver must reproduce the seed's progressive-filling rates. seedFairShare
// below is the seed implementation with its map iteration pinned to flow
// slice order — the seed iterated a map[*Flow]bool, so its capacity
// decrements had no defined order; every other decision (bottleneck choice
// by name-sorted links, strict-less share comparison, clamping) is
// reproduced verbatim.

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func seedFairShare(flows []*Flow) {
	type linkState struct {
		capLeft float64
		nUnsat  int
	}
	states := make(map[*Link]*linkState)
	unsat := make([]bool, len(flows))
	nUnsatFlows := len(flows)
	for i, f := range flows {
		f.rate = 0
		unsat[i] = true
		for _, l := range f.route {
			st, ok := states[l]
			if !ok {
				st = &linkState{capLeft: l.Capacity}
				states[l] = st
			}
			st.nUnsat++
		}
	}
	for nUnsatFlows > 0 {
		var bottleneck *Link
		share := math.Inf(1)
		links := make([]*Link, 0, len(states))
		for l, st := range states {
			if st.nUnsat > 0 {
				links = append(links, l)
			}
		}
		sort.Slice(links, func(i, j int) bool { return links[i].Name < links[j].Name })
		for _, l := range links {
			st := states[l]
			s := st.capLeft / float64(st.nUnsat)
			if s < share {
				share = s
				bottleneck = l
			}
		}
		if bottleneck == nil {
			panic("seedFairShare: unconstrained flows")
		}
		if share < 0 {
			share = 0
		}
		for i, f := range flows {
			if !unsat[i] {
				continue
			}
			crosses := false
			for _, l := range f.route {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rate = share
			unsat[i] = false
			nUnsatFlows--
			for _, l := range f.route {
				st := states[l]
				st.capLeft -= share
				if st.capLeft < 0 {
					st.capLeft = 0
				}
				st.nUnsat--
			}
		}
	}
}

// TestDifferentialFairShareGolden compares the optimized solver against the
// seed over 50 seeded random flow populations, including duplicate link
// names and shared links, asserting rates identical to 1e-12.
func TestDifferentialFairShareGolden(t *testing.T) {
	const diffTol = 1e-12
	for batch := 0; batch < 50; batch++ {
		r := rand.New(rand.NewSource(int64(9000 + batch)))
		nLinks := 1 + r.Intn(12)
		links := make([]*Link, nLinks)
		for i := range links {
			// A few duplicate names to exercise tie-breaking.
			name := string(rune('a' + i%7))
			links[i] = NewLink(name, 1e8*(0.1+r.Float64()*10), 1e-4)
		}
		nFlows := 1 + r.Intn(200)
		mk := func() []*Flow {
			fs := make([]*Flow, nFlows)
			rr := rand.New(rand.NewSource(int64(31 * batch)))
			for i := range fs {
				route := []*Link{links[rr.Intn(nLinks)]}
				for len(route) < 4 && rr.Intn(3) == 0 {
					l := links[rr.Intn(nLinks)]
					dup := false
					for _, have := range route {
						if have == l {
							dup = true
						}
					}
					if !dup {
						route = append(route, l)
					}
				}
				fs[i] = &Flow{route: route, remaining: 1e6 * (1 + rr.Float64())}
			}
			return fs
		}

		want := mk()
		seedFairShare(want)
		got := mk()
		FairShareRates(got)

		for i := range got {
			w, g := want[i].rate, got[i].rate
			if math.Abs(w-g) > diffTol*math.Max(1, math.Max(math.Abs(w), math.Abs(g))) {
				t.Fatalf("batch %d flow %d: rate %g, seed %g (Δ %g)",
					batch, i, g, w, g-w)
			}
		}
	}
}

// TestFairShareSolverReuse drives the persistent per-FlowNet solver path
// (registration at Start, reuse across reshares) against the one-shot
// FairShareRates wrapper: an engine run with staggered arrivals must yield
// the same completion times as computing the final rates directly.
func TestFairShareSolverReuse(t *testing.T) {
	links := []*Link{
		NewLink("x", 1e9, 0),
		NewLink("y", 5e8, 0),
		NewLink("z", 2e9, 0),
	}
	run := func() []float64 {
		e := NewEngine()
		n := NewFlowNet(e)
		var ends []float64
		routes := [][]*Link{
			{links[0]},
			{links[0], links[1]},
			{links[1], links[2]},
			{links[2]},
			{links[0], links[2]},
		}
		ends = make([]float64, len(routes))
		for i, route := range routes {
			i := i
			n.Start("f", route, 1e8*float64(i+1), func(at float64) { ends[i] = at })
		}
		e.Run()
		return ends
	}
	first := run()
	for trial := 0; trial < 3; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("trial %d flow %d: end %g != %g", trial, i, again[i], first[i])
			}
		}
	}
	for i, end := range first {
		if end <= 0 {
			t.Fatalf("flow %d never finished (end %g)", i, end)
		}
	}
}
