package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	e.At(3, "c", func() { got = append(got, e.Now()) })
	e.At(1, "a", func() { got = append(got, e.Now()) })
	e.At(2, "b", func() { got = append(got, e.Now()) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final time = %g, want 3", end)
	}
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %g, want %g", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var got []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		e.At(5, name, func() { got = append(got, name) })
	}
	e.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineAfterAccumulates(t *testing.T) {
	e := NewEngine()
	var at float64
	e.After(2, "outer", func() {
		e.After(3, "inner", func() { at = e.Now() })
	})
	e.Run()
	if at != 5 {
		t.Fatalf("nested event fired at %g, want 5", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, "x", func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, "a", func() { count++; e.Stop() })
	e.At(2, "b", func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("ran %d events after Stop, want 1", count)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, "later", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, "past", nil)
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewEngine().After(-1, "bad", nil)
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	a := e.At(1, "a", nil)
	e.At(2, "b", nil)
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	a.Cancel()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
}

func TestEngineOnEventHook(t *testing.T) {
	e := NewEngine()
	var labels []string
	e.OnEvent = func(_ float64, label string) { labels = append(labels, label) }
	e.At(1, "a", nil)
	e.At(2, "b", nil)
	e.Run()
	if len(labels) != 2 || labels[0] != "a" || labels[1] != "b" {
		t.Fatalf("hook labels = %v", labels)
	}
}

// Property: events fire in nondecreasing time order regardless of insertion
// order.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%50) + 1
		var fired []float64
		for i := 0; i < count; i++ {
			e.At(r.Float64()*100, "ev", func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
