package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

const floatTol = 1e-6

func approx(a, b float64) bool {
	return math.Abs(a-b) <= floatTol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleFlowTransferTime(t *testing.T) {
	e := NewEngine()
	n := NewFlowNet(e)
	link := NewLink("l", 1e9, 1e-4) // 1 GB/s, 100 us
	var end float64
	n.Start("f", []*Link{link}, 1e9, func(tEnd float64) { end = tEnd })
	e.Run()
	want := 1e-4 + 1.0
	if !approx(end, want) {
		t.Fatalf("end = %g, want %g", end, want)
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	e := NewEngine()
	n := NewFlowNet(e)
	link := NewLink("l", 1e9, 0)
	var end1, end2 float64
	n.Start("f1", []*Link{link}, 1e9, func(tEnd float64) { end1 = tEnd })
	n.Start("f2", []*Link{link}, 1e9, func(tEnd float64) { end2 = tEnd })
	e.Run()
	// Both share 1 GB/s: each gets 0.5 GB/s, both finish at t=2.
	if !approx(end1, 2) || !approx(end2, 2) {
		t.Fatalf("ends = %g, %g, want 2, 2", end1, end2)
	}
}

func TestFlowRateRecomputedOnDeparture(t *testing.T) {
	e := NewEngine()
	n := NewFlowNet(e)
	link := NewLink("l", 1e9, 0)
	var endBig float64
	n.Start("small", []*Link{link}, 0.5e9, nil)
	n.Start("big", []*Link{link}, 1.5e9, func(tEnd float64) { endBig = tEnd })
	e.Run()
	// Shared until small done: small has 0.5 GB at 0.5 GB/s -> t=1.
	// Big transferred 0.5 GB by then; remaining 1.0 GB at full rate -> t=2.
	if !approx(endBig, 2) {
		t.Fatalf("big end = %g, want 2", endBig)
	}
}

func TestFlowLateArrivalShares(t *testing.T) {
	e := NewEngine()
	n := NewFlowNet(e)
	link := NewLink("l", 1e9, 0)
	var endA, endB float64
	n.Start("a", []*Link{link}, 2e9, func(tEnd float64) { endA = tEnd })
	e.After(1, "launch-b", func() {
		n.Start("b", []*Link{link}, 0.5e9, func(tEnd float64) { endB = tEnd })
	})
	e.Run()
	// a alone for 1 s (1 GB done). Then share: a rate 0.5, b rate 0.5.
	// b finishes at t=2 (0.5 GB at 0.5 GB/s). a has 0.5 GB left at t=2,
	// full rate again -> t=2.5.
	if !approx(endB, 2) {
		t.Fatalf("b end = %g, want 2", endB)
	}
	if !approx(endA, 2.5) {
		t.Fatalf("a end = %g, want 2.5", endA)
	}
}

func TestFlowMultiLinkRouteLatencyAdds(t *testing.T) {
	e := NewEngine()
	n := NewFlowNet(e)
	l1 := NewLink("l1", 1e9, 1e-3)
	l2 := NewLink("l2", 2e9, 1e-3)
	var end float64
	n.Start("f", []*Link{l1, l2}, 1e9, func(tEnd float64) { end = tEnd })
	e.Run()
	// Bottleneck is l1 at 1 GB/s; latency 2 ms.
	want := 2e-3 + 1.0
	if !approx(end, want) {
		t.Fatalf("end = %g, want %g", end, want)
	}
}

func TestZeroByteFlowTakesLatencyOnly(t *testing.T) {
	e := NewEngine()
	n := NewFlowNet(e)
	link := NewLink("l", 1e9, 0.25)
	var end float64
	n.Start("f", []*Link{link}, 0, func(tEnd float64) { end = tEnd })
	e.Run()
	if !approx(end, 0.25) {
		t.Fatalf("end = %g, want 0.25", end)
	}
}

func TestEmptyRouteFlowIsImmediate(t *testing.T) {
	e := NewEngine()
	n := NewFlowNet(e)
	var end = -1.0
	n.Start("local", nil, 42, func(tEnd float64) { end = tEnd })
	e.Run()
	if end != 0 {
		t.Fatalf("local flow ended at %g, want 0", end)
	}
}

// TestEmptyRouteFlowCompletesSynchronously pins Start's documented
// contract for local exchanges: the flow is finished — and onDone has
// fired at the current virtual time — before Start returns, with no
// engine event involved.
func TestEmptyRouteFlowCompletesSynchronously(t *testing.T) {
	e := NewEngine()
	n := NewFlowNet(e)
	end := -1.0
	f := n.Start("local", nil, 42, func(tEnd float64) { end = tEnd })
	if !f.Done() {
		t.Fatal("empty-route flow not done when Start returned")
	}
	if end != 0 {
		t.Fatalf("onDone fired at %g before Run, want 0", end)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events pending, want 0 (no engine involvement)", e.Pending())
	}

	// Mid-simulation the completion time is the current virtual instant.
	at := -1.0
	e.At(3, "go", func() {
		n.Start("local2", nil, 7, func(tEnd float64) { at = tEnd })
	})
	e.Run()
	if at != 3 {
		t.Fatalf("mid-run local flow ended at %g, want 3", at)
	}
}

// TestZeroByteEmptyRouteFlow covers the degenerate corner of both rules:
// no bytes and no links still means synchronous completion.
func TestZeroByteEmptyRouteFlow(t *testing.T) {
	e := NewEngine()
	n := NewFlowNet(e)
	end := -1.0
	f := n.Start("null", nil, 0, func(tEnd float64) { end = tEnd })
	if !f.Done() || end != 0 {
		t.Fatalf("zero-byte empty-route flow: done=%v end=%g, want done at 0", f.Done(), end)
	}
}

// TestZeroByteFlowNotDoneBeforeLatency pins the asymmetry with non-empty
// routes: a zero-byte flow over links still waits for the route latency,
// so it is not done when Start returns.
func TestZeroByteFlowNotDoneBeforeLatency(t *testing.T) {
	e := NewEngine()
	n := NewFlowNet(e)
	link := NewLink("l", 1e9, 0.5)
	f := n.Start("f", []*Link{link}, 0, nil)
	if f.Done() {
		t.Fatal("zero-byte routed flow done before its latency elapsed")
	}
	e.Run()
	if !f.Done() {
		t.Fatal("zero-byte routed flow never finished")
	}
	if now := e.Now(); !approx(now, 0.5) {
		t.Fatalf("finished at %g, want 0.5 (latency)", now)
	}
}

func TestNegativeFlowSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative flow size did not panic")
		}
	}()
	e := NewEngine()
	NewFlowNet(e).Start("bad", []*Link{NewLink("l", 1, 0)}, -1, nil)
}

func TestFairShareBottleneckAsymmetry(t *testing.T) {
	// Three flows: f1 on narrow link only, f2 on both, f3 on wide link only.
	narrow := NewLink("narrow", 10, 0)
	wide := NewLink("wide", 100, 0)
	f1 := &Flow{route: []*Link{narrow}, remaining: 1}
	f2 := &Flow{route: []*Link{narrow, wide}, remaining: 1}
	f3 := &Flow{route: []*Link{wide}, remaining: 1}
	FairShareRates([]*Flow{f1, f2, f3})
	// narrow: 10/2 = 5 for f1 and f2. wide: remaining 95 for f3.
	if !approx(f1.rate, 5) || !approx(f2.rate, 5) {
		t.Fatalf("narrow flows rates = %g, %g, want 5, 5", f1.rate, f2.rate)
	}
	if !approx(f3.rate, 95) {
		t.Fatalf("wide-only flow rate = %g, want 95", f3.rate)
	}
}

// Property: fair-share rates never oversubscribe any link and every flow
// gets a strictly positive rate.
func TestFairShareConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nLinks := r.Intn(5) + 1
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = NewLink(string(rune('a'+i)), 1+r.Float64()*99, 0)
		}
		nFlows := r.Intn(10) + 1
		flows := make([]*Flow, nFlows)
		for i := range flows {
			// Random non-empty subset of links as route.
			var route []*Link
			for _, l := range links {
				if r.Intn(2) == 0 {
					route = append(route, l)
				}
			}
			if len(route) == 0 {
				route = []*Link{links[r.Intn(nLinks)]}
			}
			flows[i] = &Flow{route: route, remaining: 1}
		}
		FairShareRates(flows)
		load := make(map[*Link]float64)
		for _, fl := range flows {
			if fl.rate <= 0 {
				return false
			}
			for _, l := range fl.route {
				load[l] += fl.rate
			}
		}
		for l, total := range load {
			if total > l.Capacity*(1+floatTol) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: max-min fairness — no flow can increase its rate without
// decreasing the rate of a flow with an equal or smaller rate. We check the
// weaker but decisive bottleneck condition: every flow crosses at least one
// saturated link where it has the maximal rate among crossing flows.
func TestFairShareMaxMinProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		links := []*Link{
			NewLink("a", 1+r.Float64()*10, 0),
			NewLink("b", 1+r.Float64()*10, 0),
			NewLink("c", 1+r.Float64()*10, 0),
		}
		nFlows := r.Intn(6) + 2
		flows := make([]*Flow, nFlows)
		for i := range flows {
			route := []*Link{links[r.Intn(len(links))]}
			if r.Intn(2) == 0 {
				route = append(route, links[r.Intn(len(links))])
				if route[1] == route[0] {
					route = route[:1]
				}
			}
			flows[i] = &Flow{route: route, remaining: 1}
		}
		FairShareRates(flows)
		load := make(map[*Link]float64)
		maxRate := make(map[*Link]float64)
		for _, fl := range flows {
			for _, l := range fl.route {
				load[l] += fl.rate
				if fl.rate > maxRate[l] {
					maxRate[l] = fl.rate
				}
			}
		}
		for _, fl := range flows {
			hasBottleneck := false
			for _, l := range fl.route {
				saturated := load[l] >= l.Capacity*(1-1e-9)
				if saturated && fl.rate >= maxRate[l]-floatTol {
					hasBottleneck = true
					break
				}
			}
			if !hasBottleneck {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFlowNoStallAtLargeClockValues is a regression test: flows finishing
// at large virtual times used to leave floating-point residue (remaining ≈
// rate·ulp(now)) whose completion event fired at the same representable
// instant forever, stalling the simulation. Every completion event must
// retire at least one flow.
func TestFlowNoStallAtLargeClockValues(t *testing.T) {
	e := NewEngine()
	n := NewFlowNet(e)
	link := NewLink("l", 1.25e9, 1e-4)
	r := rand.New(rand.NewSource(3))
	finished := 0
	const total = 40
	for i := 0; i < total; i++ {
		at := 1e5 + r.Float64()*10
		e.At(at, "go", func() {
			n.Start("f", []*Link{link}, 1e8*(1+r.Float64()), func(float64) { finished++ })
		})
	}
	doneBy := make(chan struct{})
	go func() {
		e.Run()
		close(doneBy)
	}()
	select {
	case <-doneBy:
	case <-time.After(10 * time.Second):
		t.Fatal("simulation stalled (zero-dt completion loop)")
	}
	if finished != total {
		t.Fatalf("%d flows finished, want %d", finished, total)
	}
}

func TestManyConcurrentFlowsDeterministic(t *testing.T) {
	run := func() float64 {
		e := NewEngine()
		n := NewFlowNet(e)
		backbone := NewLink("bb", 1e9, 1e-4)
		a := NewLink("a", 1e9, 1e-4)
		b := NewLink("b", 1e9, 1e-4)
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 50; i++ {
			route := []*Link{a, backbone, b}
			if i%2 == 0 {
				route = []*Link{b, backbone, a}
			}
			n.Start("f", route, 1e6+r.Float64()*1e8, nil)
		}
		return e.Run()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d end time %g != first %g", i, got, first)
		}
	}
}
