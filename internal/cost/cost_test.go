package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ptgsched/internal/dag"
)

func TestFlopsClasses(t *testing.T) {
	d := 16.0
	if got := Flops(Linear, 3, d); got != 48 {
		t.Errorf("Linear = %g, want 48", got)
	}
	if got := Flops(NLogN, 3, d); got != 3*16*4 {
		t.Errorf("NLogN = %g, want 192", got)
	}
	if got := Flops(Matrix, 0, d); got != 64 {
		t.Errorf("Matrix = %g, want 64", got)
	}
}

func TestFlopsPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { Flops(Linear, 1, 0) },
		func() { Flops(Complexity(42), 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid Flops input")
				}
			}()
			fn()
		}()
	}
}

func TestComplexityString(t *testing.T) {
	for c, want := range map[Complexity]string{Linear: "a·d", NLogN: "a·d·log d", Matrix: "d^3/2"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestEdgeBytes(t *testing.T) {
	if got := EdgeBytes(4e6); got != 32e6 {
		t.Fatalf("EdgeBytes(4M) = %g, want 32e6", got)
	}
}

func TestAmdahlLimits(t *testing.T) {
	seq := 100.0
	if got := AmdahlTime(seq, 0.25, 1); got != seq {
		t.Errorf("p=1 time = %g, want %g", got, seq)
	}
	// With alpha=0, time scales as 1/p.
	if got := AmdahlTime(seq, 0, 4); got != 25 {
		t.Errorf("alpha=0 p=4 time = %g, want 25", got)
	}
	// As p grows, time approaches alpha*seq.
	if got := AmdahlTime(seq, 0.25, 1_000_000); math.Abs(got-25) > 0.01 {
		t.Errorf("asymptotic time = %g, want ~25", got)
	}
}

func TestTaskTimeMatchesPaperFormula(t *testing.T) {
	g := dag.New("g")
	v := g.AddTask("v", 1e6, 10, 0.2) // 10 GFlop, alpha 0.2
	speed := 2.0                      // GFlop/s
	// seq = 5 s; T(4) = 5*(0.2 + 0.8/4) = 2.
	if got := TaskTime(v, speed, 4); math.Abs(got-2) > 1e-12 {
		t.Fatalf("TaskTime = %g, want 2", got)
	}
}

func TestAreaGrowsWithProcs(t *testing.T) {
	g := dag.New("g")
	v := g.AddTask("v", 1e6, 10, 0.2)
	// With alpha > 0, parallel efficiency drops, so area strictly grows.
	prev := Area(v, 3, 1)
	for p := 2; p <= 16; p++ {
		a := Area(v, 3, p)
		if a <= prev {
			t.Fatalf("area not increasing at p=%d: %g <= %g", p, a, prev)
		}
		prev = a
	}
}

func TestAreaConstantWhenPerfectlyParallel(t *testing.T) {
	g := dag.New("g")
	v := g.AddTask("v", 1e6, 10, 0)
	a1 := Area(v, 3, 1)
	a8 := Area(v, 3, 8)
	if math.Abs(a1-a8) > 1e-9 {
		t.Fatalf("area changed for alpha=0: %g vs %g", a1, a8)
	}
}

func TestMarginalGainPositiveAndDiminishing(t *testing.T) {
	g := dag.New("g")
	v := g.AddTask("v", 1e6, 100, 0.1)
	prev := MarginalGain(v, 1, 1)
	for p := 2; p < 32; p++ {
		gain := MarginalGain(v, 1, p)
		if gain <= 0 {
			t.Fatalf("gain at p=%d is %g, want > 0", p, gain)
		}
		if gain >= prev {
			t.Fatalf("gain not diminishing at p=%d: %g >= %g", p, gain, prev)
		}
		prev = gain
	}
}

func TestSpeedupBounds(t *testing.T) {
	if s := Speedup(0, 8); s != 8 {
		t.Errorf("perfect speedup = %g, want 8", s)
	}
	if s := Speedup(0.25, 1_000_000); s > 4 {
		t.Errorf("speedup exceeded Amdahl bound 1/alpha: %g", s)
	}
}

// Property: execution time is non-increasing in p and never below the
// serial floor alpha*seq.
func TestAmdahlMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		seq := 1 + r.Float64()*1000
		alpha := r.Float64() * AlphaMax
		prev := math.Inf(1)
		for p := 1; p <= 128; p *= 2 {
			tt := AmdahlTime(seq, alpha, p)
			if tt > prev || tt < alpha*seq-1e-9 {
				return false
			}
			prev = tt
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: flop counts are monotone in d for every class.
func TestFlopsMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d1 := MinDataElems + r.Float64()*(MaxDataElems-MinDataElems)
		d2 := d1 * (1 + r.Float64())
		a := float64(MinCoeff + r.Intn(MaxCoeff-MinCoeff+1))
		for _, c := range []Complexity{Linear, NLogN, Matrix} {
			if Flops(c, a, d2) < Flops(c, a, d1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
