// Package cost implements the task cost models of §2 of the paper:
// computational complexity classes for data-parallel tasks, the Amdahl
// parallel-speedup model, and the data-volume rule for edges.
//
// Concurrency: the package consists of pure functions over immutable
// inputs and is safe for unrestricted concurrent use.
package cost

import (
	"fmt"
	"math"

	"ptgsched/internal/dag"
)

// Dataset size bounds in double-precision elements (§2: processors have at
// most 1 GByte of memory, so d ≤ 121M — a √d×√d matrix of doubles then
// occupies ~0.97 GB — and d ≥ 4M so tasks are worth distributing).
const (
	MinDataElems = 4e6
	MaxDataElems = 121e6
)

// Iteration-coefficient bounds for the a·d and a·d·log d classes (§2: "a is
// picked randomly between 2^6 and 2^9, to capture the fact that some of
// these tasks often perform multiple iterations").
const (
	MinCoeff = 64  // 2^6
	MaxCoeff = 512 // 2^9
)

// AlphaMax bounds the non-parallelizable fraction (§2: α uniform in
// [0, 0.25]).
const AlphaMax = 0.25

// Complexity identifies one of the three computational complexity classes
// of §2.
type Complexity int

const (
	// Linear is a·d operations, e.g. a stencil sweep over a √d×√d domain.
	Linear Complexity = iota
	// NLogN is a·d·log2(d) operations, e.g. sorting d elements.
	NLogN
	// Matrix is d^(3/2) operations, e.g. multiplying two √d×√d matrices.
	Matrix
)

// String implements fmt.Stringer.
func (c Complexity) String() string {
	switch c {
	case Linear:
		return "a·d"
	case NLogN:
		return "a·d·log d"
	case Matrix:
		return "d^3/2"
	default:
		return fmt.Sprintf("Complexity(%d)", int(c))
	}
}

// Flops returns the sequential operation count of a task of the given class
// on d elements with iteration coefficient a (ignored for Matrix).
func Flops(c Complexity, a, d float64) float64 {
	if d <= 0 {
		panic(fmt.Sprintf("cost: non-positive dataset size %g", d))
	}
	switch c {
	case Linear:
		return a * d
	case NLogN:
		return a * d * math.Log2(d)
	case Matrix:
		return d * math.Sqrt(d)
	default:
		panic(fmt.Sprintf("cost: unknown complexity %d", int(c)))
	}
}

// GFlop converts an operation count to GFlop.
func GFlop(flops float64) float64 { return flops / 1e9 }

// EdgeBytes returns the data volume carried by an edge leaving a task that
// operates on d double-precision elements: 8·d bytes (§2).
func EdgeBytes(d float64) float64 { return 8 * d }

// SeqTime returns the sequential execution time in seconds of a task with
// the given work (GFlop) on a processor of the given speed (GFlop/s).
func SeqTime(seqGFlop, speedGFlops float64) float64 {
	if speedGFlops <= 0 {
		panic(fmt.Sprintf("cost: non-positive speed %g", speedGFlops))
	}
	return seqGFlop / speedGFlops
}

// AmdahlTime applies Amdahl's law (§2): a fraction alpha of the sequential
// time is serial, the rest is perfectly parallelizable over p processors.
func AmdahlTime(seqTime, alpha float64, p int) float64 {
	if p < 1 {
		panic(fmt.Sprintf("cost: allocation of %d processors", p))
	}
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("cost: Amdahl fraction %g outside [0,1]", alpha))
	}
	return seqTime * (alpha + (1-alpha)/float64(p))
}

// TaskTime returns T^k(v, p): the execution time of task v on p processors
// of speed speedGFlops (§2). It combines SeqTime and AmdahlTime.
func TaskTime(v *dag.Task, speedGFlops float64, p int) float64 {
	return AmdahlTime(SeqTime(v.SeqGFlop, speedGFlops), v.Alpha, p)
}

// Area returns the processing-power area of executing task v on p
// processors of the given speed: execution time multiplied by the consumed
// power p·speed, in GFlop·s/s (i.e. GFlop of capacity). SCRAP's global
// constraint compares summed areas against the allowed power share (§4).
func Area(v *dag.Task, speedGFlops float64, p int) float64 {
	return TaskTime(v, speedGFlops, p) * float64(p) * speedGFlops
}

// Speedup returns the Amdahl speedup at p processors for the given serial
// fraction.
func Speedup(alpha float64, p int) float64 {
	return 1 / (alpha + (1-alpha)/float64(p))
}

// MarginalGain returns the reduction in execution time obtained by growing
// an allocation from p to p+1 processors of the given speed: the quantity
// the allocation procedures maximize when choosing which critical-path task
// to widen (§4).
func MarginalGain(v *dag.Task, speedGFlops float64, p int) float64 {
	return TaskTime(v, speedGFlops, p) - TaskTime(v, speedGFlops, p+1)
}
