package scenario

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/events"
	"ptgsched/internal/experiment"
	"ptgsched/internal/platform"
	"ptgsched/internal/strategy"
	"ptgsched/internal/workload"
)

// Cell is one aggregation cell of the sweep: a family grid point crossed
// with an arrival-process point, carrying the fully resolved campaign
// configuration its scenario points run under. One Cell aggregates into
// one summary table (one row per NPTGs value).
type Cell struct {
	// Index is the cell's position in the expansion.
	Index int
	// Label names the cell, e.g. "random", "random[t=20 w=0.5 r=0.2 d=0.8
	// j=2 mixed]" or "fft[k=3]+poisson@0.25".
	Label string
	// Family is the cell's PTG family.
	Family daggen.Family
	// Online is nil for offline (concurrent-submission) cells.
	Online *OnlineCell
	// Policy names the rescheduling policy of dynamic-scenario cells
	// (specs with a non-empty events axis); empty for static cells.
	Policy string
	// Config is the resolved experiment campaign this cell is a slice of:
	// its NPTGs, Reps, Platforms, Strategies, Labels, Seed and Gen fields
	// drive experiment.RunOne for every point of the cell.
	Config experiment.Config
}

// OnlineCell pins one arrival-process point.
type OnlineCell struct {
	Process workload.Process
	// Rate is the arrival rate in applications/second (0 for burst).
	Rate float64
}

// Point is one fully determined scenario of the sweep: a cell sliced to
// one (#PTGs, repetition, platform) triple.
type Point struct {
	// Index is the point's position in the expansion's global order; the
	// shard partition and the aggregation order are defined over it.
	Index int `json:"index"`
	// Cell indexes Expansion.Cells.
	Cell int `json:"cell"`
	// NIdx, Rep and Platform locate the point within its cell: indices
	// into the spec's NPTGs list, repetition range and platform list.
	NIdx     int `json:"nidx"`
	Rep      int `json:"rep"`
	Platform int `json:"platform"`
	// NPTGs is the resolved number of concurrently-submitted PTGs.
	NPTGs int `json:"nptgs"`
	// Name is the point's canonical name, e.g. "random/n=4/rep=7/Rennes".
	Name string `json:"name"`
	// Seed is the point's derived scenario seed (shared across platforms
	// of the same repetition, as in the paper's protocol).
	Seed int64 `json:"seed"`
}

// Expansion is a spec expanded into its deterministic cartesian sweep.
// Only the aggregation cells are materialized; the scenario points are
// generated lazily — PointAt derives any point in O(1) from its global
// index, so the sweep's cardinality is bounded by arithmetic (MaxPoints),
// not by memory.
type Expansion struct {
	Spec *Spec
	// Platforms are the resolved platforms: named presets first, then
	// inline specs, in spec order.
	Platforms []*platform.Platform
	// Cells are the aggregation cells in expansion order.
	Cells []*Cell

	// The lazy point-generation state: the global order is cell-major,
	// then NPTGs, then repetition, then platform — the exact enumeration
	// order of experiment.Run, so aggregation reduces bit-identically.
	nptgs     []int
	reps      int
	perCell   int // points per cell = len(nptgs) * reps * len(Platforms)
	numPoints int

	// digest seeds per-point event timelines: TimelineFor hashes (digest,
	// point index), so timelines are invariant under sharding and
	// execution order.
	digest string
}

// Engine-level expansion caps: Expand refuses sweeps whose cartesian
// cardinality exceeds them, and it computes the cardinality arithmetically
// (EstimatePoints) before materializing anything, so an absurd spec fails
// in microseconds instead of exhausting memory.
const (
	// MaxCells bounds the number of aggregation cells of one expansion
	// (cells are the only materialized axis).
	MaxCells = 100_000
	// MaxPoints bounds the number of scenario points of one expansion.
	// Points are generated lazily and the store keeps one bit per point
	// during a sweep, so the *sweep* is disk-bounded — but the final
	// bit-exact aggregation still holds 3 float64 slots per (point,
	// strategy) (see Aggregator), so the cap reflects that reduction
	// footprint (~2.4 GB per strategy column at the cap), not the old
	// materialize-every-Point limit it replaces (which sat at 2M).
	MaxPoints = 100_000_000
)

// EstimatePoints computes the expansion cardinality of a spec — cells and
// points — without materializing it, mirroring Expand's enumeration
// arithmetic. Callers with tighter budgets than the engine caps (the
// service endpoint) reject oversized specs before Expand allocates.
// Name resolution is not performed; invalid names still fail in Expand.
func EstimatePoints(spec *Spec) (cells, points int, err error) {
	if err := spec.validate(); err != nil {
		return 0, 0, err
	}
	reps := spec.Reps
	if reps == 0 {
		reps = 25
	}
	nptgs := len(spec.NPTGs)
	if nptgs == 0 {
		nptgs = 5
	}
	platforms := len(spec.Platforms) + len(spec.PlatformSpecs)
	if platforms == 0 {
		platforms = 4
	}

	onlineCells := 1
	if o := spec.Online; o != nil {
		procs := o.Processes
		if len(procs) == 0 {
			procs = []string{"poisson"}
		}
		rates := len(o.Rates)
		if rates == 0 {
			rates = 1
		}
		onlineCells = 0
		for _, p := range procs {
			if strings.EqualFold(p, "burst") {
				onlineCells++ // burst collapses the rate axis
			} else {
				onlineCells += rates
			}
		}
	}

	// A non-empty events axis crosses every cell with the rescheduling
	// policies (default: restart only); an empty or absent one adds no
	// axis at all, keeping the expansion identical to a spec without the
	// field.
	policyCells := 1
	if !spec.Events.Empty() && len(spec.Events.Policies) > 0 {
		policyCells = len(spec.Events.Policies)
	}

	families := spec.Families
	if len(families) == 0 {
		families = []FamilySpec{{Family: "random"}}
	}
	axis := func(set, def int) int {
		if set > 0 {
			return set
		}
		return def
	}
	// mulCap multiplies with saturation just above the caps, so absurd
	// axis cardinalities cannot overflow int before the bound checks.
	const sat = MaxPoints + 1
	mulCap := func(a, b int) int {
		if a >= sat || b >= sat || a*b >= sat {
			return sat
		}
		return a * b
	}
	for _, f := range families {
		grid := 1
		if f.gridded() {
			switch strings.ToLower(f.Family) {
			case "fft":
				grid = len(f.K)
			case "random":
				grid = axis(len(f.Tasks), len(daggen.PaperTaskCounts))
				grid = mulCap(grid, axis(len(f.Widths), len(daggen.PaperWidths)))
				grid = mulCap(grid, axis(len(f.Regularities), len(daggen.PaperRegularities)))
				grid = mulCap(grid, axis(len(f.Densities), len(daggen.PaperDensities)))
				grid = mulCap(grid, axis(len(f.Jumps), len(daggen.PaperJumps)))
				grid = mulCap(grid, axis(len(f.Complexities), 1))
			}
		}
		cells += mulCap(mulCap(grid, onlineCells), policyCells)
		if cells > MaxCells {
			return 0, 0, fmt.Errorf("scenario: spec expands to over %d cells", MaxCells)
		}
	}
	points = mulCap(mulCap(mulCap(cells, nptgs), reps), platforms)
	if points > MaxPoints {
		return 0, 0, fmt.Errorf("scenario: spec expands to over %d points", MaxPoints)
	}
	return cells, points, nil
}

// Expand resolves a spec against the platform/family/strategy registries
// and enumerates its full scenario sweep.
func Expand(spec *Spec) (*Expansion, error) {
	if _, _, err := EstimatePoints(spec); err != nil {
		return nil, err
	}
	e := &Expansion{Spec: spec}

	reps := spec.Reps
	if reps == 0 {
		reps = 25
	}
	nptgs := spec.NPTGs
	if len(nptgs) == 0 {
		nptgs = []int{2, 4, 6, 8, 10}
	}

	// Platforms: named presets, then inline specs.
	if len(spec.Platforms) == 0 && len(spec.PlatformSpecs) == 0 {
		e.Platforms = platform.Grid5000Sites()
	} else {
		for _, name := range spec.Platforms {
			pf, err := platform.ByName(name)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			e.Platforms = append(e.Platforms, pf)
		}
		for _, ps := range spec.PlatformSpecs {
			specs := make([]platform.ClusterSpec, len(ps.Clusters))
			for i, c := range ps.Clusters {
				specs[i] = platform.ClusterSpec{Name: c.Name, Procs: c.Procs, Speed: c.Speed}
			}
			e.Platforms = append(e.Platforms, platform.New(ps.Name, ps.SharedSwitch, specs...))
		}
	}

	families := spec.Families
	if len(families) == 0 {
		families = []FamilySpec{{Family: "random"}}
	}

	onlineCells, err := expandOnline(spec.Online)
	if err != nil {
		return nil, err
	}

	// The rescheduling-policy axis of a non-empty events timeline. A point
	// must always be able to finish, so a spec whose scripted permanent
	// failures cover every cluster of some platform is rejected here, with
	// the platforms resolved.
	policies := []string{""}
	if !spec.Events.Empty() {
		policies = spec.Events.Policies
		if len(policies) == 0 {
			policies = []string{"restart"}
		}
		for _, pf := range e.Platforms {
			if len(spec.Events.PermanentDowns(len(pf.Clusters))) == len(pf.Clusters) {
				return nil, fmt.Errorf("scenario: events fail every cluster of platform %q permanently; points there could never finish", pf.Name)
			}
		}
	}

	// Cells: family entries × grid points × arrival points × rescheduling
	// policies, in spec order.
	for _, f := range families {
		gridCells, err := expandFamily(f)
		if err != nil {
			return nil, err
		}
		for _, gc := range gridCells {
			strats, labels, err := resolveStrategies(spec.Strategies, gc.family)
			if err != nil {
				return nil, err
			}
			for _, oc := range onlineCells {
				for _, pol := range policies {
					label := gc.label
					if oc != nil {
						label += "+" + oc.Process.String()
						if oc.Process != workload.Burst {
							label += fmt.Sprintf("@%g", oc.Rate)
						}
					}
					if pol != "" {
						label += fmt.Sprintf("+dyn[%s]", pol)
					}
					cell := &Cell{
						Index:  len(e.Cells),
						Label:  label,
						Family: gc.family,
						Online: oc,
						Policy: pol,
						Config: experiment.Config{
							Family:     gc.family,
							NPTGs:      nptgs,
							Reps:       reps,
							Platforms:  e.Platforms,
							Strategies: strats,
							Labels:     labels,
							Seed:       spec.Seed,
							Gen:        gc.gen,
						},
					}
					e.Cells = append(e.Cells, cell)
				}
			}
		}
	}

	// Points are not materialized: the global enumeration the shard
	// partition and aggregation are defined over is arithmetic — PointAt
	// decomposes any index into (cell, nidx, rep, platform) in O(1).
	e.nptgs = nptgs
	e.reps = reps
	e.perCell = len(nptgs) * reps * len(e.Platforms)
	e.numPoints = len(e.Cells) * e.perCell
	e.digest = SpecDigest(spec)
	return e, nil
}

// TimelineFor draws the event timeline point p runs under: a pure function
// of (spec digest, point index), so the same point gets the same timeline
// on any shard, at any worker count, in any execution order. Static specs
// (absent or empty events axis) yield nil.
func (e *Expansion) TimelineFor(p Point) events.Timeline {
	if e.Spec.Events.Empty() {
		return nil
	}
	pf := e.Platforms[p.Platform]
	r := rand.New(rand.NewSource(eventSeed(e.digest, p.Index)))
	return e.Spec.Events.Generate(len(pf.Clusters), p.NPTGs, r)
}

// eventSeed hashes the spec digest and a point index into the timeline
// seed (FNV-64a; any stable mixing works, it only has to be deterministic
// and spread).
func eventSeed(digest string, index int) int64 {
	h := fnv.New64a()
	io.WriteString(h, digest)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(index))
	h.Write(b[:])
	return int64(h.Sum64())
}

// NumPoints returns the expansion cardinality: the number of scenario
// points of the sweep.
func (e *Expansion) NumPoints() int { return e.numPoints }

// PointAt generates the point with global index i in O(1): the index is
// decomposed along the cell-major enumeration order (cell, then NPTGs,
// then repetition, then platform) and the point's name and seed are
// derived from the decomposition. It panics on an out-of-range index.
func (e *Expansion) PointAt(i int) Point {
	if i < 0 || i >= e.numPoints {
		panic(fmt.Sprintf("scenario: point index %d outside [0,%d)", i, e.numPoints))
	}
	cell := i / e.perCell
	rem := i % e.perCell
	nPf := len(e.Platforms)
	ni := rem / (e.reps * nPf)
	rem %= e.reps * nPf
	rep := rem / nPf
	pi := rem % nPf
	n := e.nptgs[ni]
	return Point{
		Index:    i,
		Cell:     cell,
		NIdx:     ni,
		Rep:      rep,
		Platform: pi,
		NPTGs:    n,
		Name: fmt.Sprintf("%s/n=%d/rep=%d/%s",
			e.Cells[cell].Label, n, rep, e.Platforms[pi].Name),
		Seed: experiment.RunSeed(e.Spec.Seed, ni, rep),
	}
}

// CellOf returns the cell index of point i without generating the point
// (no name formatting); it is the O(1) identity check the aggregator and
// the store validate incoming results against.
func (e *Expansion) CellOf(i int) int {
	if i < 0 || i >= e.numPoints {
		panic(fmt.Sprintf("scenario: point index %d outside [0,%d)", i, e.numPoints))
	}
	return i / e.perCell
}

// CellRange returns the half-open global-index range [lo, hi) of cell ci's
// points. The enumeration is cell-major, so every cell is one contiguous
// index run — the arithmetic a query planner maps cell predicates onto
// byte ranges with.
func (e *Expansion) CellRange(ci int) (lo, hi int) {
	if ci < 0 || ci >= len(e.Cells) {
		panic(fmt.Sprintf("scenario: cell index %d outside [0,%d)", ci, len(e.Cells)))
	}
	return ci * e.perCell, (ci + 1) * e.perCell
}

// CoordsOf decomposes point i into its (cell, NPTGs-index, repetition,
// platform) coordinates without formatting a name — the O(1) arithmetic
// PointAt builds on, exposed for group-by reductions that only need the
// coordinates.
func (e *Expansion) CoordsOf(i int) (cell, nidx, rep, pf int) {
	if i < 0 || i >= e.numPoints {
		panic(fmt.Sprintf("scenario: point index %d outside [0,%d)", i, e.numPoints))
	}
	cell = i / e.perCell
	rem := i % e.perCell
	nPf := len(e.Platforms)
	nidx = rem / (e.reps * nPf)
	rem %= e.reps * nPf
	return cell, nidx, rem / nPf, rem % nPf
}

// NPTGsAt returns the resolved NPTGs value of NPTGs-axis index ni.
func (e *Expansion) NPTGsAt(ni int) int { return e.nptgs[ni] }

// NumNPTGs returns the length of the NPTGs axis.
func (e *Expansion) NumNPTGs() int { return len(e.nptgs) }

// GroupSlots returns the number of points per (cell, NPTGs) aggregation
// group: repetitions × platforms. Within a group, point i occupies slot
// rep*len(Platforms)+platform — exactly the global enumeration order, so
// slot-ordered reductions are arrival-order independent.
func (e *Expansion) GroupSlots() int { return e.reps * len(e.Platforms) }

// gridCell is one family grid point before strategy/arrival resolution.
type gridCell struct {
	family daggen.Family
	label  string
	gen    func(r *rand.Rand) *dag.Graph
}

// expandFamily enumerates a family entry's parameter grid. Ungridded
// entries produce one cell drawing every parameter per graph (the paper's
// protocol, gen nil); gridded entries cartesian-expand their axes, absent
// random axes defaulting to the paper's full value lists.
func expandFamily(f FamilySpec) ([]gridCell, error) {
	fam, err := daggen.FamilyByName(f.Family)
	if err != nil {
		return nil, err
	}
	if !f.gridded() {
		return []gridCell{{family: fam, label: fam.String()}}, nil
	}
	switch fam {
	case daggen.FamilyStrassen:
		return nil, fmt.Errorf("scenario: the strassen family has no grid axes")
	case daggen.FamilyFFT:
		var cells []gridCell
		for _, k := range f.K {
			if k < 1 || k > 10 {
				return nil, fmt.Errorf("scenario: fft exponent k=%d outside [1,10]", k)
			}
			cells = append(cells, gridCell{
				family: fam,
				label:  fmt.Sprintf("fft[k=%d]", k),
				gen:    func(r *rand.Rand) *dag.Graph { return daggen.FFT(k, r) },
			})
		}
		return cells, nil
	}

	// Random family: absent axes take the paper's full lists.
	tasks := []int(f.Tasks)
	if len(tasks) == 0 {
		tasks = daggen.PaperTaskCounts
	}
	widths := []float64(f.Widths)
	if len(widths) == 0 {
		widths = daggen.PaperWidths
	}
	regs := []float64(f.Regularities)
	if len(regs) == 0 {
		regs = daggen.PaperRegularities
	}
	dens := []float64(f.Densities)
	if len(dens) == 0 {
		dens = daggen.PaperDensities
	}
	jumps := []int(f.Jumps)
	if len(jumps) == 0 {
		jumps = daggen.PaperJumps
	}
	complexities := f.Complexities
	if len(complexities) == 0 {
		complexities = []string{"mixed"}
	}
	var cells []gridCell
	for _, t := range tasks {
		for _, w := range widths {
			for _, reg := range regs {
				for _, d := range dens {
					for _, j := range jumps {
						for _, cname := range complexities {
							mode, err := daggen.ComplexityByName(cname)
							if err != nil {
								return nil, err
							}
							cfg := daggen.RandomConfig{
								Tasks: t, Width: w, Regularity: reg,
								Density: d, Jump: j, Complexity: mode,
							}
							if err := cfg.Validate(); err != nil {
								return nil, fmt.Errorf("scenario: %w", err)
							}
							cells = append(cells, gridCell{
								family: fam,
								label: fmt.Sprintf("random[t=%d w=%g r=%g d=%g j=%d %s]",
									t, w, reg, d, j, mode),
								gen: func(r *rand.Rand) *dag.Graph { return daggen.Random(cfg, r) },
							})
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// expandOnline enumerates the arrival-process axis; a nil spec yields the
// single offline cell (nil OnlineCell).
func expandOnline(o *OnlineSpec) ([]*OnlineCell, error) {
	if o == nil {
		return []*OnlineCell{nil}, nil
	}
	procs := o.Processes
	if len(procs) == 0 {
		procs = []string{"poisson"}
	}
	rates := []float64(o.Rates)
	if len(rates) == 0 {
		rates = []float64{0.25}
	}
	var cells []*OnlineCell
	for _, pname := range procs {
		p, err := workload.ProcessByName(pname)
		if err != nil {
			return nil, err
		}
		if p == workload.Burst {
			// Burst ignores the rate; one cell regardless of the axis.
			cells = append(cells, &OnlineCell{Process: p})
			continue
		}
		for _, r := range rates {
			cells = append(cells, &OnlineCell{Process: p, Rate: r})
		}
	}
	return cells, nil
}

// resolveStrategies resolves the spec's strategy set (default: the paper's
// set for the family) into aligned strategy and label slices.
func resolveStrategies(specs []StrategySpec, fam daggen.Family) ([]strategy.Strategy, []string, error) {
	if len(specs) == 0 {
		set := strategy.PaperSet(fam)
		labels := make([]string, len(set))
		for i, s := range set {
			labels[i] = s.Name()
		}
		return set, labels, nil
	}
	strats := make([]strategy.Strategy, len(specs))
	labels := make([]string, len(specs))
	for i, ss := range specs {
		mu := -1.0
		if ss.Mu != nil {
			mu = *ss.Mu
		}
		st, err := strategy.ByName(ss.Name, mu, fam)
		if err != nil {
			return nil, nil, err
		}
		strats[i] = st
		labels[i] = ss.Label
		if labels[i] == "" {
			labels[i] = st.Name()
		}
	}
	return strats, labels, nil
}

// ParseShard parses a shard selector of the form "i/n" (0 ≤ i < n).
// Trailing or malformed input is rejected outright — a typo must not
// silently run the wrong shard.
func ParseShard(s string) (idx, n int, err error) {
	num, den, ok := strings.Cut(strings.TrimSpace(s), "/")
	if ok {
		idx, err = strconv.Atoi(num)
		if err == nil {
			n, err = strconv.Atoi(den)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("scenario: shard %q is not of the form i/n", s)
	}
	if n < 1 || idx < 0 || idx >= n {
		return 0, 0, fmt.Errorf("scenario: shard %d/%d out of range", idx, n)
	}
	return idx, n, nil
}

// IndexSet selects a subset of an expansion's global point indices by
// predicate instead of by materialized slice: the indices i with
// Offset ≤ i < Limit and i ≡ Offset (mod Stride). It is the shape of every
// point selection in the pipeline — the full sweep (Stride 1), one shard
// of n (Stride n), or a prefix (Limit < NumPoints) — and it costs three
// ints regardless of how many points it selects.
type IndexSet struct {
	// Limit is the exclusive upper bound on selected indices (normally the
	// expansion's NumPoints).
	Limit int
	// Offset is the first selected index.
	Offset int
	// Stride is the step between selected indices; values below 1 are
	// treated as 1, so the zero value with a Limit is a plain prefix.
	Stride int
}

// stride normalizes the step.
func (s IndexSet) stride() int {
	if s.Stride < 1 {
		return 1
	}
	return s.Stride
}

// Len returns the number of selected indices.
func (s IndexSet) Len() int {
	if s.Limit <= s.Offset {
		return 0
	}
	return (s.Limit-s.Offset-1)/s.stride() + 1
}

// At returns the j-th selected index (0 ≤ j < Len()), in increasing order.
func (s IndexSet) At(j int) int { return s.Offset + j*s.stride() }

// Contains reports whether the set selects global index i.
func (s IndexSet) Contains(i int) bool {
	return i >= s.Offset && i < s.Limit && (i-s.Offset)%s.stride() == 0
}

// All selects every point of the expansion.
func (e *Expansion) All() IndexSet {
	return IndexSet{Limit: e.numPoints, Stride: 1}
}

// Shard returns the index set of shard idx of n: the points whose global
// index is congruent to idx modulo n. The n shards partition the expansion
// exactly; running them anywhere and recombining their JSONL outputs
// aggregates bit-identically to one unsharded run.
func (e *Expansion) Shard(idx, n int) (IndexSet, error) {
	if n < 1 || idx < 0 || idx >= n {
		return IndexSet{}, fmt.Errorf("scenario: shard %d/%d out of range", idx, n)
	}
	return IndexSet{Limit: e.numPoints, Offset: idx, Stride: n}, nil
}
