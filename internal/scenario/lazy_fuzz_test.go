package scenario

// FuzzLazyExpansionMatchesMaterialized is the property-based proof behind
// the streaming refactor: for fuzzer-chosen spec shapes, the lazy
// generator (PointAt over the arithmetic enumeration) must equal a
// reference materialization — the exact nested-loop enumeration the
// pre-refactor Expansion.Points slice was built with — point for point,
// field for field, and the IndexSet shard partition must select exactly
// the indices the old modulo filter over the materialized slice selected.
// The checked-in corpus under testdata/fuzz covers multi-cell grids,
// online cells, multi-platform specs and degenerate single-point sweeps;
// `go test` replays it on every run, `go test -fuzz` explores beyond it.

import (
	"fmt"
	"testing"

	"ptgsched/internal/experiment"
)

// materializePoints is the reference enumeration: the nested cell → NPTGs
// → repetition → platform loops that used to build Expansion.Points
// eagerly, kept here as the oracle the lazy generator is checked against.
func materializePoints(e *Expansion) []Point {
	var pts []Point
	reps := e.Spec.Reps
	if reps == 0 {
		reps = 25
	}
	nptgs := e.Spec.NPTGs
	if len(nptgs) == 0 {
		nptgs = []int{2, 4, 6, 8, 10}
	}
	for _, c := range e.Cells {
		for ni, n := range nptgs {
			for rep := 0; rep < reps; rep++ {
				for pi := range e.Platforms {
					pts = append(pts, Point{
						Index:    len(pts),
						Cell:     c.Index,
						NIdx:     ni,
						Rep:      rep,
						Platform: pi,
						NPTGs:    n,
						Name: fmt.Sprintf("%s/n=%d/rep=%d/%s",
							c.Label, n, rep, e.Platforms[pi].Name),
						Seed: experiment.RunSeed(e.Spec.Seed, ni, rep),
					})
				}
			}
		}
	}
	return pts
}

func FuzzLazyExpansionMatchesMaterialized(f *testing.F) {
	// Seed corpus: paper defaults trimmed small, a multi-cell fft grid, an
	// online sweep, a gridded random family, and a single-point sweep.
	f.Add(int64(42), uint8(2), uint8(2), uint8(2), uint8(0), false, uint8(3))
	f.Add(int64(7), uint8(1), uint8(3), uint8(1), uint8(1), false, uint8(2))
	f.Add(int64(-9), uint8(3), uint8(1), uint8(2), uint8(2), true, uint8(4))
	f.Add(int64(1), uint8(1), uint8(1), uint8(1), uint8(0), false, uint8(1))
	f.Add(int64(1e15), uint8(4), uint8(2), uint8(3), uint8(1), true, uint8(5))

	f.Fuzz(func(t *testing.T, seed int64, repSel, nptgSel, pfSel, famSel uint8, online bool, shardSel uint8) {
		// Derive a small but shape-diverse spec from the fuzz inputs.
		reps := 1 + int(repSel)%4
		nNPTGs := 1 + int(nptgSel)%3
		nptgs := make([]int, nNPTGs)
		for i := range nptgs {
			nptgs[i] = 1 + i*2
		}
		platforms := []string{"lille", "rennes", "nancy", "sophia"}[:1+int(pfSel)%3]
		spec := &Spec{Seed: seed, Reps: reps, NPTGs: nptgs, Platforms: platforms}
		switch famSel % 3 {
		case 0:
			spec.Families = []FamilySpec{{Family: "strassen"}}
		case 1:
			spec.Families = []FamilySpec{{Family: "fft", K: Ints{2, 3}}, {Family: "strassen"}}
		default:
			spec.Families = []FamilySpec{{
				Family: "random",
				Tasks:  Ints{10, 20}, Widths: Floats{0.5},
				Regularities: Floats{0.5}, Densities: Floats{0.5}, Jumps: Ints{1},
			}}
		}
		if online {
			spec.Online = &OnlineSpec{Processes: []string{"burst", "poisson"}, Rates: Floats{0.25}}
		}
		if err := spec.validate(); err != nil {
			t.Skip()
		}
		e, err := Expand(spec)
		if err != nil {
			t.Skip()
		}

		want := materializePoints(e)
		if got := e.NumPoints(); got != len(want) {
			t.Fatalf("NumPoints() = %d, materialized enumeration has %d", got, len(want))
		}
		for i, w := range want {
			got := e.PointAt(i)
			if got != w {
				t.Fatalf("PointAt(%d) = %+v, materialized point is %+v", i, got, w)
			}
			if e.CellOf(i) != w.Cell {
				t.Fatalf("CellOf(%d) = %d, want %d", i, e.CellOf(i), w.Cell)
			}
		}

		// The shard partition must select exactly the indices the modulo
		// filter over the materialized slice selects, and the n shards
		// must partition the sweep.
		n := 1 + int(shardSel)%5
		if n > len(want) {
			n = len(want)
		}
		covered := make([]bool, len(want))
		for idx := 0; idx < n; idx++ {
			set, err := e.Shard(idx, n)
			if err != nil {
				t.Fatalf("Shard(%d,%d): %v", idx, n, err)
			}
			var ref []int
			for _, p := range want {
				if p.Index%n == idx {
					ref = append(ref, p.Index)
				}
			}
			if set.Len() != len(ref) {
				t.Fatalf("shard %d/%d: Len() = %d, reference has %d", idx, n, set.Len(), len(ref))
			}
			for j, wantIdx := range ref {
				if got := set.At(j); got != wantIdx {
					t.Fatalf("shard %d/%d: At(%d) = %d, want %d", idx, n, j, got, wantIdx)
				}
				if !set.Contains(wantIdx) {
					t.Fatalf("shard %d/%d does not contain its member %d", idx, n, wantIdx)
				}
				if covered[wantIdx] {
					t.Fatalf("point %d selected by two shards", wantIdx)
				}
				covered[wantIdx] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("point %d selected by no shard of %d", i, n)
			}
		}
	})
}
