// Package scenario implements the declarative campaign engine: a JSON spec
// describing a scenario space — platforms (presets or inline heterogeneous
// cluster specs), PTG families with explicit parameter grids, strategy
// sets, replication counts, seeds and online arrival processes — is
// expanded into a deterministic cartesian sweep of scenario points, run
// over internal/experiment's worker pool (optionally partitioned into
// shards), streamed as JSONL per-point results, and aggregated back into
// the paper's summary metrics. The sweep is lazy end to end: only the
// aggregation cells are materialized — points are generated in O(1) from
// their global index (Expansion.PointAt), selections are IndexSet
// predicates, and the incremental Aggregator reduces results arriving in
// any order into fixed slots — so campaign cardinality is bounded by
// MaxPoints arithmetic, not by memory.
//
// The expansion order, per-point seeding (experiment.RunSeed) and
// aggregation order are exactly those of experiment.Run, so a spec
// equivalent to a paper figure reproduces that figure's campaign results
// bit-identically — whether run in one piece or recombined from shards.
//
// Concurrency: a parsed Spec and its Expansion are immutable after Expand;
// Run fans points out over a fixed worker pool with results independent of
// the fan-out (each point derives everything from its own seed).
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"ptgsched/internal/events"
	"ptgsched/internal/online"
)

// Spec is a declarative campaign: the JSON wire format of ptgbench
// -campaign, the /v1/campaign service endpoint and the checked-in specs
// under examples/. Zero fields take the paper's protocol defaults.
type Spec struct {
	// Name labels the campaign in outputs.
	Name string `json:"name,omitempty"`
	// Seed is the campaign's base random seed; per-point seeds derive from
	// it deterministically.
	Seed int64 `json:"seed"`
	// Reps is the number of random PTG combinations per point; default 25.
	Reps int `json:"reps,omitempty"`
	// NPTGs lists the numbers of concurrently-submitted PTGs; default
	// {2,4,6,8,10}.
	NPTGs []int `json:"nptgs,omitempty"`
	// Platforms names Grid'5000 presets (lille, nancy, rennes, sophia).
	Platforms []string `json:"platforms,omitempty"`
	// PlatformSpecs adds inline platforms with arbitrary heterogeneous
	// per-cluster speeds; they follow the named presets in platform order.
	// When both lists are empty the four Grid'5000 sites are used.
	PlatformSpecs []PlatformSpec `json:"platform_specs,omitempty"`
	// Families lists the PTG families to sweep, each optionally pinned to
	// an explicit parameter grid; default one entry of the random family
	// on the paper's randomized grid.
	Families []FamilySpec `json:"families,omitempty"`
	// Strategies selects the constraint-determination strategies; default
	// the paper's set for each family.
	Strategies []StrategySpec `json:"strategies,omitempty"`
	// Online, when present, switches every point to the §8 dynamic-arrival
	// scheduler and sweeps its arrival processes and rates.
	Online *OnlineSpec `json:"online,omitempty"`
	// Events, when present and non-empty, runs every point under a
	// dynamic-scenario event timeline (cluster failures, recoveries, speed
	// changes, PTG cancellation/resubmission) and sweeps the rescheduling
	// policies as an extra cell axis. Per-point timelines derive
	// deterministically from (spec digest, point index), so points stay
	// bit-identical and shardable. An explicitly empty events object is
	// exactly equivalent to omitting the field.
	Events *events.Spec `json:"events,omitempty"`
}

// PlatformSpec is an inline platform description.
type PlatformSpec struct {
	Name string `json:"name"`
	// SharedSwitch selects the single-switch topology; otherwise each
	// cluster has its own switch joined by a backbone.
	SharedSwitch bool `json:"shared_switch"`
	// Clusters lists the (possibly heterogeneous) clusters.
	Clusters []ClusterSpec `json:"clusters"`
}

// ClusterSpec is one cluster of an inline platform.
type ClusterSpec struct {
	Name string `json:"name"`
	// Procs is the processor count.
	Procs int `json:"procs"`
	// Speed is the per-processor speed in GFlop/s.
	Speed float64 `json:"speed"`
}

// FamilySpec selects a PTG family and, optionally, an explicit parameter
// grid. Grid axes are cartesian-expanded: each combination becomes one
// sweep cell. Absent axes of a gridded random family take the paper's full
// value lists; a random family with no axes at all draws every parameter
// per graph, as the paper does.
type FamilySpec struct {
	// Family is random, fft or strassen.
	Family string `json:"family"`
	// Random-family axes (§2): task counts, widths, regularities,
	// densities, jumps, complexity scenarios.
	Tasks        Ints     `json:"tasks,omitempty"`
	Widths       Floats   `json:"widths,omitempty"`
	Regularities Floats   `json:"regularities,omitempty"`
	Densities    Floats   `json:"densities,omitempty"`
	Jumps        Ints     `json:"jumps,omitempty"`
	Complexities []string `json:"complexities,omitempty"`
	// K lists FFT size exponents (2^k points); fft-family axis.
	K Ints `json:"k,omitempty"`
}

// gridded reports whether the family entry pins any explicit axis.
func (f FamilySpec) gridded() bool {
	return len(f.Tasks) > 0 || len(f.Widths) > 0 || len(f.Regularities) > 0 ||
		len(f.Densities) > 0 || len(f.Jumps) > 0 || len(f.Complexities) > 0 || len(f.K) > 0
}

// StrategySpec names one strategy of the campaign's comparison set.
type StrategySpec struct {
	// Name is the paper name: S, ES, PS-{cp,width,work}, WPS-{cp,width,work}.
	Name string `json:"name"`
	// Mu overrides the calibrated µ of WPS strategies.
	Mu *float64 `json:"mu,omitempty"`
	// Label overrides the display label (e.g. "mu=0.3" in a µ sweep).
	Label string `json:"label,omitempty"`
}

// OnlineSpec sweeps the online scheduler's arrival processes.
type OnlineSpec struct {
	// Processes lists arrival processes (burst, poisson, uniform);
	// default poisson.
	Processes []string `json:"processes,omitempty"`
	// Rates lists arrival rates in applications/second; default 0.25.
	Rates Floats `json:"rates,omitempty"`
}

// rangeSpec is the object form of an axis: {"from":a,"to":b,"step":s}.
type rangeSpec struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
	Step float64 `json:"step"`
}

func (r rangeSpec) expand() ([]float64, error) {
	if r.Step <= 0 {
		return nil, fmt.Errorf("scenario: range step %g must be positive", r.Step)
	}
	if r.To < r.From {
		return nil, fmt.Errorf("scenario: empty range [%g, %g]", r.From, r.To)
	}
	if n := (r.To - r.From) / r.Step; n > 10000 {
		return nil, fmt.Errorf("scenario: range [%g, %g] step %g expands to over 10000 values", r.From, r.To, r.Step)
	}
	var vs []float64
	// The epsilon keeps to itself reachable despite accumulated rounding
	// (e.g. from=0.2, step=0.3, to=0.8).
	for x := r.From; x <= r.To+1e-9; x += r.Step {
		vs = append(vs, x)
	}
	return vs, nil
}

// Floats is a float-valued axis: either an explicit JSON list ([0.2, 0.8])
// or a range object ({"from":0.2,"to":0.8,"step":0.3}).
type Floats []float64

// UnmarshalJSON implements json.Unmarshaler, accepting both axis forms.
func (v *Floats) UnmarshalJSON(b []byte) error {
	var list []float64
	if err := json.Unmarshal(b, &list); err == nil {
		*v = list
		return nil
	}
	var r rangeSpec
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("scenario: axis must be a list or {from,to,step}: %w", err)
	}
	vs, err := r.expand()
	if err != nil {
		return err
	}
	*v = vs
	return nil
}

// Ints is an integer-valued axis: an explicit list or a range object whose
// expanded values must all be integers.
type Ints []int

// UnmarshalJSON implements json.Unmarshaler, accepting both axis forms.
func (v *Ints) UnmarshalJSON(b []byte) error {
	var fs Floats
	if err := fs.UnmarshalJSON(b); err != nil {
		return err
	}
	is := make([]int, len(fs))
	for i, f := range fs {
		n := math.Round(f)
		if math.Abs(f-n) > 1e-9 {
			return fmt.Errorf("scenario: axis value %g is not an integer", f)
		}
		is[i] = int(n)
	}
	*v = is
	return nil
}

// ParseSpec decodes and validates a campaign spec, rejecting unknown
// fields so typos in spec files fail loudly instead of silently falling
// back to defaults.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: invalid spec: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// SpecDigest returns the canonical content digest of a spec: the SHA-256
// of its re-serialized (parsed) form, as a hex string. Two spec files that
// differ only in formatting or field order digest identically, while any
// change that alters the expansion — an axis value, a seed, a strategy —
// produces a new digest. The campaign store records it in its manifest so
// a result directory can never be resumed against a different sweep.
func SpecDigest(s *Spec) string {
	b, err := json.Marshal(s)
	if err != nil {
		// A parsed Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("scenario: marshaling spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// validate checks the structural constraints Expand relies on.
func (s *Spec) validate() error {
	if s.Reps < 0 {
		return fmt.Errorf("scenario: reps %d must be non-negative", s.Reps)
	}
	for _, n := range s.NPTGs {
		if n < 1 {
			return fmt.Errorf("scenario: nptgs value %d must be at least 1", n)
		}
	}
	for _, ps := range s.PlatformSpecs {
		if ps.Name == "" {
			return fmt.Errorf("scenario: inline platform needs a name")
		}
		if len(ps.Clusters) == 0 {
			return fmt.Errorf("scenario: inline platform %q has no clusters", ps.Name)
		}
		for _, c := range ps.Clusters {
			if c.Procs < 1 {
				return fmt.Errorf("scenario: platform %q cluster %q has %d processors", ps.Name, c.Name, c.Procs)
			}
			if c.Speed <= 0 || math.IsNaN(c.Speed) || math.IsInf(c.Speed, 0) {
				return fmt.Errorf("scenario: platform %q cluster %q has speed %g", ps.Name, c.Name, c.Speed)
			}
		}
	}
	for i, f := range s.Families {
		fam := strings.ToLower(f.Family)
		if fam != "random" && fam != "fft" && fam != "strassen" {
			return fmt.Errorf("scenario: families[%d]: unknown family %q (want random, fft or strassen)", i, f.Family)
		}
		randomAxes := len(f.Tasks) > 0 || len(f.Widths) > 0 || len(f.Regularities) > 0 ||
			len(f.Densities) > 0 || len(f.Jumps) > 0 || len(f.Complexities) > 0
		if randomAxes && fam != "random" {
			return fmt.Errorf("scenario: families[%d]: random-grid axes on family %q", i, f.Family)
		}
		if len(f.K) > 0 && fam != "fft" {
			return fmt.Errorf("scenario: families[%d]: k axis on family %q", i, f.Family)
		}
	}
	if s.Online != nil {
		for _, r := range s.Online.Rates {
			if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return fmt.Errorf("scenario: online rate %g must be positive and finite", r)
			}
		}
	}
	if s.Events != nil {
		if err := s.Events.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		for _, p := range s.Events.Policies {
			if _, err := online.PolicyByName(p); err != nil {
				return fmt.Errorf("scenario: %w", err)
			}
		}
	}
	return nil
}
