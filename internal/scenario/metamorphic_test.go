package scenario

// Cross-strategy metamorphic tests: exact equivalences the strategy
// definitions imply (Eq. 1–2 degenerate cases) and monotonicity of the
// best achievable makespan under added resources, checked over a
// deterministic scenario sample. Everything here is bit-exact or holds on
// the pinned sample forever, so failures always mean a real regression.

import (
	"math/rand"
	"testing"

	"ptgsched/internal/core"
	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/events"
	"ptgsched/internal/online"
	"ptgsched/internal/platform"
	"ptgsched/internal/strategy"
)

// batch draws a deterministic PTG combination.
func batch(t *testing.T, fam daggen.Family, n int, seed int64) []*dag.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	graphs := make([]*dag.Graph, n)
	for i := range graphs {
		graphs[i] = daggen.Generate(fam, r)
	}
	return graphs
}

// makespans schedules the batch under strat and returns per-app simulated
// makespans plus the global one.
func makespans(pf *platform.Platform, graphs []*dag.Graph, strat strategy.Strategy) (app []float64, global float64) {
	res := core.New(pf).Schedule(graphs, strat)
	return res.Exec.AppMakespans, res.GlobalMakespan()
}

// sameSchedules asserts two strategies produce bit-identical makespans on
// the same batch.
func sameSchedules(t *testing.T, pf *platform.Platform, graphs []*dag.Graph, a, b strategy.Strategy) {
	t.Helper()
	appA, globalA := makespans(pf, graphs, a)
	appB, globalB := makespans(pf, graphs, b)
	if globalA != globalB {
		t.Fatalf("%s and %s global makespans differ: %g vs %g", a, b, globalA, globalB)
	}
	for i := range appA {
		if appA[i] != appB[i] {
			t.Fatalf("%s and %s app %d makespans differ: %g vs %g", a, b, i, appA[i], appB[i])
		}
	}
}

// TestWPSDegeneratesToPSAndES: WPS with µ=0 is PS (Eq. 2 collapses to
// Eq. 1) and WPS with µ=1 is ES, bit-identically, for every characteristic
// and family.
func TestWPSDegeneratesToPSAndES(t *testing.T) {
	chars := []strategy.Characteristic{strategy.CriticalPath, strategy.Width, strategy.Work}
	for _, fam := range []daggen.Family{daggen.FamilyRandom, daggen.FamilyFFT, daggen.FamilyStrassen} {
		graphs := batch(t, fam, 4, 101)
		pf := platform.Rennes()
		for _, c := range chars {
			sameSchedules(t, pf, graphs, strategy.WPS(c, 0), strategy.PS(c))
			sameSchedules(t, pf, graphs, strategy.WPS(c, 1), strategy.ES())
		}
	}
}

// TestStrassenWidthStrategiesCoincideWithES: every Strassen PTG has the
// same maximal width, so width-proportional shares are equal shares (the
// reason Fig. 5 drops them).
func TestStrassenWidthStrategiesCoincideWithES(t *testing.T) {
	for _, seed := range []int64{7, 19, 23} {
		graphs := batch(t, daggen.FamilyStrassen, 5, seed)
		for _, pf := range platform.Grid5000Sites() {
			sameSchedules(t, pf, graphs, strategy.PS(strategy.Width), strategy.ES())
			sameSchedules(t, pf, graphs, strategy.WPS(strategy.Width, 0.5), strategy.ES())
		}
	}
}

// TestSingleApplicationStrategiesCoincide: with one application every
// strategy yields β=1, so all eight registered strategies schedule it
// bit-identically.
func TestSingleApplicationStrategiesCoincide(t *testing.T) {
	for _, fam := range []daggen.Family{daggen.FamilyRandom, daggen.FamilyFFT, daggen.FamilyStrassen} {
		graphs := batch(t, fam, 1, 31)
		pf := platform.Sophia()
		ref, _ := makespans(pf, graphs, strategy.S())
		for _, name := range strategy.Names() {
			strat, err := strategy.ByName(name, -1, fam)
			if err != nil {
				t.Fatal(err)
			}
			app, _ := makespans(pf, graphs, strat)
			if app[0] != ref[0] {
				t.Fatalf("family %s: %s makespan %g differs from S %g on a single app",
					fam, name, app[0], ref[0])
			}
		}
	}
}

// bestMakespan returns the best global makespan any registered strategy
// achieves on the batch.
func bestMakespan(t *testing.T, pf *platform.Platform, graphs []*dag.Graph, fam daggen.Family) float64 {
	t.Helper()
	best := 0.0
	for i, name := range strategy.Names() {
		strat, err := strategy.ByName(name, -1, fam)
		if err != nil {
			t.Fatal(err)
		}
		_, g := makespans(pf, graphs, strat)
		if i == 0 || g < best {
			best = g
		}
	}
	return best
}

// TestAddingClusterNeverWorsensBestMakespan: growing the platform by one
// cluster must not worsen the best strategy's makespan on the same
// deterministic scenario sample. (List-scheduling anomalies could in
// principle hurt individual strategies; the invariant is asserted for the
// best over the registered set, on a pinned sample, so it is stable.)
func TestAddingClusterNeverWorsensBestMakespan(t *testing.T) {
	base := []platform.ClusterSpec{
		{Name: "c0", Procs: 32, Speed: 3.5},
		{Name: "c1", Procs: 16, Speed: 4.2},
	}
	grown := append(append([]platform.ClusterSpec{}, base...),
		platform.ClusterSpec{Name: "c2", Procs: 24, Speed: 3.8})

	const tol = 1e-9
	for _, fam := range []daggen.Family{daggen.FamilyRandom, daggen.FamilyFFT, daggen.FamilyStrassen} {
		for _, seed := range []int64{1, 2, 3} {
			for _, n := range []int{2, 4} {
				graphs := batch(t, fam, n, seed)
				small := bestMakespan(t, platform.New("small", true, base...), graphs, fam)
				big := bestMakespan(t, platform.New("big", true, grown...), graphs, fam)
				if big > small*(1+tol) {
					t.Errorf("family %s seed %d n=%d: adding a cluster worsened best makespan %g → %g",
						fam, seed, n, small, big)
				}
			}
		}
	}
}

// onlineBestMakespan runs the batch as a concurrent burst through the
// online engine under every registered strategy and returns the best
// global makespan.
func onlineBestMakespan(t *testing.T, pf *platform.Platform, graphs []*dag.Graph, fam daggen.Family, tl events.Timeline, policy online.ReschedulePolicy) float64 {
	t.Helper()
	arrivals := make([]online.Arrival, len(graphs))
	for i, g := range graphs {
		arrivals[i] = online.Arrival{Graph: g}
	}
	best := 0.0
	for i, name := range strategy.Names() {
		strat, err := strategy.ByName(name, -1, fam)
		if err != nil {
			t.Fatal(err)
		}
		res := online.Schedule(pf, arrivals, online.Options{Strategy: strat, Timeline: tl, Policy: policy})
		if i == 0 || res.Makespan < best {
			best = res.Makespan
		}
	}
	return best
}

// TestInjectingFailureNeverImprovesBestMakespan: the dual of the
// added-cluster monotonicity test — taking a cluster away for a window
// (killing its in-flight work) strictly cannot improve the best
// strategy's makespan on the same deterministic scenario sample, under
// either rescheduling policy. Failure instants are placed at fractions of
// the failure-free best makespan so the outage always lands mid-run.
func TestInjectingFailureNeverImprovesBestMakespan(t *testing.T) {
	const tol = 1e-9
	pf := platform.Rennes()
	policies := []online.ReschedulePolicy{online.RestartPolicy(), online.CheckpointPolicy()}
	for _, fam := range []daggen.Family{daggen.FamilyRandom, daggen.FamilyStrassen} {
		for _, seed := range []int64{1, 2} {
			graphs := batch(t, fam, 3, seed)
			baseline := onlineBestMakespan(t, pf, graphs, fam, nil, nil)
			if baseline <= 0 {
				t.Fatalf("family %s seed %d: degenerate baseline makespan %g", fam, seed, baseline)
			}
			for _, frac := range []float64{0.3, 0.7} {
				failAt := baseline * frac
				tl := events.Timeline{
					{At: failAt, Kind: events.ClusterDown, Cluster: 0},
					{At: failAt + baseline*0.25, Kind: events.ClusterUp, Cluster: 0},
				}
				tl.Sort()
				for _, policy := range policies {
					failed := onlineBestMakespan(t, pf, graphs, fam, tl, policy)
					if failed < baseline*(1-tol) {
						t.Errorf("family %s seed %d frac %g policy %s: failure improved best makespan %g → %g",
							fam, seed, frac, policy.Name(), baseline, failed)
					}
				}
			}
		}
	}
}

// TestFasterProcessorsNeverWorsenBestMakespan: doubling every cluster's
// speed must not worsen the best strategy's makespan on the pinned sample
// (computation halves, redistribution costs stay).
func TestFasterProcessorsNeverWorsenBestMakespan(t *testing.T) {
	slow := []platform.ClusterSpec{
		{Name: "c0", Procs: 32, Speed: 3.5},
		{Name: "c1", Procs: 16, Speed: 4.2},
	}
	fast := make([]platform.ClusterSpec, len(slow))
	for i, c := range slow {
		c.Speed *= 2
		fast[i] = c
	}

	const tol = 1e-9
	for _, fam := range []daggen.Family{daggen.FamilyRandom, daggen.FamilyStrassen} {
		for _, seed := range []int64{4, 5} {
			graphs := batch(t, fam, 3, seed)
			s := bestMakespan(t, platform.New("slow", true, slow...), graphs, fam)
			f := bestMakespan(t, platform.New("fast", true, fast...), graphs, fam)
			if f > s*(1+tol) {
				t.Errorf("family %s seed %d: doubling speeds worsened best makespan %g → %g",
					fam, seed, s, f)
			}
		}
	}
}
