package scenario

// The dynamic Fig. 3 acceptance golden is only compared in full (non
// -short) runs; its hygiene — LF endings, no stray bytes, exactly one
// trailing newline — is checked unconditionally, so a mangled golden
// can't hide until the next acceptance pass.

import (
	"testing"

	"ptgsched/internal/clitest"
)

func TestGoldenFilesAreHygienic(t *testing.T) {
	clitest.GoldenHygiene(t)
}
