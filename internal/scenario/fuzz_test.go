package scenario

// FuzzScheduleInvariants is the property-based schedule-invariant suite:
// arbitrary fuzzer-chosen scenario points (platform, family, batch size,
// seed, arrival process) are driven through every registered strategy, and
// every resulting schedule — offline and online — must pass the full
// trace oracle: placement uniqueness, allotment bounds, per-processor
// exclusivity, per-cluster capacity, precedence with redistribution
// delays, and (online) release-time respect. The checked-in corpus under
// testdata/fuzz covers every platform topology, family and arrival
// process; `go test` replays it on every run, `go test -fuzz` explores
// beyond it.

import (
	"math"
	"math/rand"
	"testing"

	"ptgsched/internal/core"
	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/online"
	"ptgsched/internal/platform"
	"ptgsched/internal/strategy"
	"ptgsched/internal/trace"
	"ptgsched/internal/workload"
)

// fuzzPlatform maps a selector onto the four Grid'5000 presets plus a
// deliberately skewed heterogeneous platform (tiny fast cluster next to a
// large slow one, per-cluster switches).
func fuzzPlatform(sel uint8) *platform.Platform {
	switch sel % 5 {
	case 0:
		return platform.Lille()
	case 1:
		return platform.Nancy()
	case 2:
		return platform.Rennes()
	case 3:
		return platform.Sophia()
	default:
		return platform.New("skewed", false,
			platform.ClusterSpec{Name: "hare", Procs: 4, Speed: 12.0},
			platform.ClusterSpec{Name: "herd", Procs: 96, Speed: 1.5},
		)
	}
}

func FuzzScheduleInvariants(f *testing.F) {
	// One seed input per platform topology × family × arrival process
	// corner, mirrored by the checked-in corpus.
	f.Add(int64(1), uint8(0), uint8(0), uint8(2), uint8(0), 0.25)
	f.Add(int64(42), uint8(2), uint8(1), uint8(4), uint8(1), 0.25)
	f.Add(int64(7), uint8(4), uint8(2), uint8(3), uint8(2), 2.0)
	f.Add(int64(-3), uint8(1), uint8(0), uint8(1), uint8(1), 0.05)
	f.Add(int64(1e12), uint8(3), uint8(1), uint8(5), uint8(0), 0.5)

	f.Fuzz(func(t *testing.T, seed int64, pfSel, famSel, nSel, procSel uint8, rate float64) {
		pf := fuzzPlatform(pfSel)
		fam := daggen.Family(int(famSel) % 3)
		n := 1 + int(nSel)%5
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0.01 || rate > 100 {
			rate = 0.25
		}
		process := workload.Process(int(procSel) % 3)

		// Offline: one concurrently-submitted batch per strategy.
		r := rand.New(rand.NewSource(seed))
		graphs := make([]*dag.Graph, n)
		for i := range graphs {
			graphs[i] = daggen.Generate(fam, r)
		}
		sched := core.New(pf)
		for _, name := range strategy.Names() {
			strat, err := strategy.ByName(name, -1, fam)
			if err != nil {
				t.Fatalf("registry broke: %v", err)
			}
			res := sched.Schedule(graphs, strat)
			if err := trace.Validate(res.Schedule); err != nil {
				t.Fatalf("offline %s on %s (fam=%s n=%d seed=%d): %v",
					name, pf.Name, fam, n, seed, err)
			}
		}

		// Online: the same scenario as a dynamic-arrival workload; every
		// placement must also respect its application's release time.
		r = rand.New(rand.NewSource(seed))
		arrivals := workload.Generate(workload.Spec{
			Family: fam, Count: n, Process: process, Rate: rate,
		}, r)
		onGraphs := make([]*dag.Graph, len(arrivals))
		releases := make([]float64, len(arrivals))
		for i, a := range arrivals {
			onGraphs[i] = a.Graph
			releases[i] = a.At
		}
		for _, name := range strategy.Names() {
			strat, err := strategy.ByName(name, -1, fam)
			if err != nil {
				t.Fatalf("registry broke: %v", err)
			}
			res := online.Schedule(pf, arrivals, online.Options{Strategy: strat})
			if err := trace.ValidatePlacements(pf, onGraphs, res.Placements, releases); err != nil {
				t.Fatalf("online %s on %s (fam=%s n=%d proc=%s rate=%g seed=%d): %v",
					name, pf.Name, fam, n, process, rate, seed, err)
			}
		}
	})
}
