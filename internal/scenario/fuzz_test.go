package scenario

// FuzzScheduleInvariants is the property-based schedule-invariant suite:
// arbitrary fuzzer-chosen scenario points (platform, family, batch size,
// seed, arrival process, dynamic event timeline) are driven through every
// registered strategy, and every resulting schedule — offline, online,
// and dynamic under both rescheduling policies — must pass the full trace
// oracle: placement uniqueness, allotment bounds, per-processor
// exclusivity, per-cluster capacity, precedence with redistribution
// delays, release-time respect (online), and the dynamic invariants (no
// placement overlapping a down interval, restarts respected, cancelled
// applications leaving nothing behind). The checked-in corpus under
// testdata/fuzz covers every platform topology, family, arrival process
// and event-timeline shape; `go test` replays it on every run, `go test
// -fuzz` explores beyond it.

import (
	"math"
	"math/rand"
	"testing"

	"ptgsched/internal/core"
	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/events"
	"ptgsched/internal/online"
	"ptgsched/internal/platform"
	"ptgsched/internal/strategy"
	"ptgsched/internal/trace"
	"ptgsched/internal/workload"
)

// fuzzPlatform maps a selector onto the four Grid'5000 presets plus a
// deliberately skewed heterogeneous platform (tiny fast cluster next to a
// large slow one, per-cluster switches).
func fuzzPlatform(sel uint8) *platform.Platform {
	switch sel % 5 {
	case 0:
		return platform.Lille()
	case 1:
		return platform.Nancy()
	case 2:
		return platform.Rennes()
	case 3:
		return platform.Sophia()
	default:
		return platform.New("skewed", false,
			platform.ClusterSpec{Name: "hare", Procs: 4, Speed: 12.0},
			platform.ClusterSpec{Name: "herd", Procs: 96, Speed: 1.5},
		)
	}
}

// fuzzTimeline derives a dynamic event timeline from two fuzzer bytes:
// the shape selector picks one of the covered timeline corners (none,
// permanent mid-run failure, fail-then-recover, speed change, cancel,
// cancel-and-resubmit) and evAt places it in time. Every shape keeps the
// run finishable: permanent failures never take the last alive cluster
// (all fuzz platforms have at least two).
func fuzzTimeline(evSel uint8, evAt float64, pf *platform.Platform, nApps int) events.Timeline {
	if math.IsNaN(evAt) || math.IsInf(evAt, 0) || evAt < 0 || evAt > 1e6 {
		evAt = 5
	}
	last := len(pf.Clusters) - 1
	var tl events.Timeline
	switch evSel % 6 {
	case 0:
		return nil
	case 1: // permanent mid-run failure of the last cluster
		tl = events.Timeline{{At: evAt, Kind: events.ClusterDown, Cluster: last}}
	case 2: // fail then recover
		tl = events.Timeline{
			{At: evAt, Kind: events.ClusterDown, Cluster: 0},
			{At: evAt + 1 + evAt/2, Kind: events.ClusterUp, Cluster: 0},
		}
	case 3: // speed change mid-run (slow down, then speed past original)
		tl = events.Timeline{
			{At: evAt, Kind: events.SpeedChange, Cluster: 0, Factor: 0.5},
			{At: 2*evAt + 1, Kind: events.SpeedChange, Cluster: 0, Factor: 2},
		}
	case 4: // cancel, never resubmitted
		tl = events.Timeline{{At: evAt, Kind: events.Cancel, App: 0}}
	default: // cancel and resubmit
		tl = events.Timeline{
			{At: evAt, Kind: events.Cancel, App: nApps - 1},
			{At: evAt + 1 + evAt/4, Kind: events.Resubmit, App: nApps - 1},
		}
	}
	tl.Sort()
	return tl
}

func FuzzScheduleInvariants(f *testing.F) {
	// One seed input per platform topology × family × arrival process
	// corner, mirrored by the checked-in corpus; the last two values
	// select the dynamic event timeline.
	f.Add(int64(1), uint8(0), uint8(0), uint8(2), uint8(0), 0.25, uint8(0), 0.0)
	f.Add(int64(42), uint8(2), uint8(1), uint8(4), uint8(1), 0.25, uint8(0), 0.0)
	f.Add(int64(7), uint8(4), uint8(2), uint8(3), uint8(2), 2.0, uint8(0), 0.0)
	f.Add(int64(-3), uint8(1), uint8(0), uint8(1), uint8(1), 0.05, uint8(0), 0.0)
	f.Add(int64(1e12), uint8(3), uint8(1), uint8(5), uint8(0), 0.5, uint8(0), 0.0)
	// Dynamic corners: mid-run failure, fail-then-recover, speed change
	// during a placement, cancel-and-resubmit.
	f.Add(int64(11), uint8(0), uint8(0), uint8(3), uint8(0), 0.25, uint8(1), 4.0)
	f.Add(int64(13), uint8(4), uint8(1), uint8(4), uint8(1), 0.5, uint8(2), 2.0)
	f.Add(int64(17), uint8(2), uint8(2), uint8(2), uint8(2), 1.0, uint8(3), 1.0)
	f.Add(int64(19), uint8(1), uint8(0), uint8(4), uint8(1), 0.25, uint8(5), 3.0)

	f.Fuzz(func(t *testing.T, seed int64, pfSel, famSel, nSel, procSel uint8, rate float64, evSel uint8, evAt float64) {
		pf := fuzzPlatform(pfSel)
		fam := daggen.Family(int(famSel) % 3)
		n := 1 + int(nSel)%5
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0.01 || rate > 100 {
			rate = 0.25
		}
		process := workload.Process(int(procSel) % 3)

		// Offline: one concurrently-submitted batch per strategy.
		r := rand.New(rand.NewSource(seed))
		graphs := make([]*dag.Graph, n)
		for i := range graphs {
			graphs[i] = daggen.Generate(fam, r)
		}
		sched := core.New(pf)
		for _, name := range strategy.Names() {
			strat, err := strategy.ByName(name, -1, fam)
			if err != nil {
				t.Fatalf("registry broke: %v", err)
			}
			res := sched.Schedule(graphs, strat)
			if err := trace.Validate(res.Schedule); err != nil {
				t.Fatalf("offline %s on %s (fam=%s n=%d seed=%d): %v",
					name, pf.Name, fam, n, seed, err)
			}
		}

		// Online: the same scenario as a dynamic-arrival workload; every
		// placement must also respect its application's release time.
		r = rand.New(rand.NewSource(seed))
		arrivals := workload.Generate(workload.Spec{
			Family: fam, Count: n, Process: process, Rate: rate,
		}, r)
		onGraphs := make([]*dag.Graph, len(arrivals))
		releases := make([]float64, len(arrivals))
		for i, a := range arrivals {
			onGraphs[i] = a.Graph
			releases[i] = a.At
		}
		for _, name := range strategy.Names() {
			strat, err := strategy.ByName(name, -1, fam)
			if err != nil {
				t.Fatalf("registry broke: %v", err)
			}
			res := online.Schedule(pf, arrivals, online.Options{Strategy: strat})
			if err := trace.ValidatePlacements(pf, onGraphs, res.Placements, releases); err != nil {
				t.Fatalf("online %s on %s (fam=%s n=%d proc=%s rate=%g seed=%d): %v",
					name, pf.Name, fam, n, process, rate, seed, err)
			}
		}

		// Dynamic: the same workload under a fuzzer-chosen event timeline,
		// every strategy × both rescheduling policies, against the extended
		// oracle. The down intervals are derived from the timeline itself,
		// independently of the engine's bookkeeping.
		tl := fuzzTimeline(evSel, evAt, pf, len(arrivals))
		if len(tl) == 0 {
			return
		}
		downs := tl.DownIntervals(len(pf.Clusters))
		hasCancel := false
		for _, ev := range tl {
			if ev.Kind == events.Cancel {
				hasCancel = true
			}
		}
		policies := []online.ReschedulePolicy{online.RestartPolicy(), online.CheckpointPolicy()}
		for _, name := range strategy.Names() {
			strat, err := strategy.ByName(name, -1, fam)
			if err != nil {
				t.Fatalf("registry broke: %v", err)
			}
			for _, policy := range policies {
				res := online.Schedule(pf, arrivals, online.Options{
					Strategy: strat, Timeline: tl, Policy: policy,
				})
				err := trace.ValidateDynamic(pf, onGraphs, res.Placements, trace.Dynamic{
					DownIntervals: downs,
					Releases:      releases,
					Cancelled:     res.Cancelled,
					Restarts:      res.Restarts,
				})
				if err != nil {
					t.Fatalf("dynamic %s/%s on %s (fam=%s n=%d ev=%d at=%g seed=%d): %v",
						name, policy.Name(), pf.Name, fam, n, evSel%6, evAt, seed, err)
				}
				for i, c := range res.Cancelled {
					if c && !hasCancel {
						t.Fatalf("dynamic %s/%s: app %d cancelled by a timeline with no cancel events",
							name, policy.Name(), i)
					}
				}
			}
		}
	})
}
