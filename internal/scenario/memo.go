package scenario

import "ptgsched/internal/experiment"

// Memo is a per-point memoization source consulted by every sweep engine
// (RunMemo, RunEachMemo, a store.Sweep with a memo attached, the service
// and the fleet coordinator): Lookup is asked for a point's result before
// it is computed, and Publish is offered the result after a miss was
// computed. Implementations decide what "known" means — the canonical one
// is the content-addressed cache (internal/cache), which only answers
// Lookup from entries whose hash chain verified, so a memo hit is exactly
// as trustworthy as a fresh computation.
//
// Contract: a Lookup hit MUST be bit-identical to what RunPoint would
// return for the same point (PointResult round-trips float64 values
// exactly, so byte equality of the JSONL wire form is the test). Both
// methods must be safe for concurrent use; they are called from sweep
// worker goroutines. Publish is best-effort — an implementation that
// cannot persist a result simply drops it, it must not fail the sweep.
type Memo interface {
	Lookup(p Point) (PointResult, bool)
	Publish(p Point, r PointResult)
}

// ComputePoint is RunPoint behind a memo: a Lookup hit is returned as-is,
// a miss is computed and offered back via Publish. A nil memo degenerates
// to RunPoint exactly. All sweep paths funnel through this, so "consult
// the cache before computing, publish after" holds everywhere a point can
// be executed.
func (e *Expansion) ComputePoint(p Point, m Memo) PointResult {
	return e.ComputePointScratch(nil, p, m)
}

// ComputePointScratch is ComputePoint drawing per-point working state
// from a worker-owned scratch (nil degrades to ComputePoint exactly).
// The returned result is never scratch-owned — see Scratch — so it may
// be retained, batched and published freely.
func (e *Expansion) ComputePointScratch(sc *Scratch, p Point, m Memo) PointResult {
	if m != nil {
		if r, ok := m.Lookup(p); ok {
			return r
		}
	}
	r := e.runPoint(p, sc)
	if m != nil {
		m.Publish(p, r)
	}
	return r
}

// RunMemo is Run with a memo consulted per point. Results are
// bit-identical to Run at every worker count and every hit/miss split:
// the memo contract pins hits to what RunPoint would have produced.
func (e *Expansion) RunMemo(set IndexSet, workers int, m Memo) []PointResult {
	outs := make([]PointResult, set.Len())
	scratches := make([]*Scratch, experiment.Workers(set.Len(), workers))
	experiment.ForEachWorker(set.Len(), workers, func(w, j int) {
		if scratches[w] == nil {
			scratches[w] = NewScratch()
		}
		outs[j] = e.ComputePointScratch(scratches[w], e.PointAt(set.At(j)), m)
	})
	return outs
}

// RunEachMemo is RunEach with a memo consulted per point.
func (e *Expansion) RunEachMemo(set IndexSet, workers int, m Memo, emit func(PointResult) error) error {
	return e.runEach(set, workers, 0, false, m, emit)
}

// RunEachIsolatedMemo is RunEachIsolated with a memo consulted per point.
func (e *Expansion) RunEachIsolatedMemo(set IndexSet, workers int, m Memo, emit func(PointResult) error) error {
	return e.runEach(set, workers, 0, true, m, emit)
}
