package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"
)

// AppendJSONL appends r's compact JSON encoding plus the trailing newline
// to buf and returns the extended buffer — the allocation-free form of
// json.Marshal for the hot emit paths (JSONL sinks, store segments). The
// produced bytes are identical to encoding/json's, so the wire format,
// the cache hash chain and every differential golden are unchanged; a
// dedicated test diffs the two encoders over adversarial values. On error
// (a non-finite float, which json.Marshal rejects too) the returned
// buffer holds a partial record and must be discarded.
func AppendJSONL(buf []byte, r PointResult) ([]byte, error) {
	var err error
	buf = append(buf, `{"index":`...)
	buf = strconv.AppendInt(buf, int64(r.Index), 10)
	buf = append(buf, `,"cell":`...)
	buf = strconv.AppendInt(buf, int64(r.Cell), 10)
	buf = append(buf, `,"name":`...)
	if buf, err = appendJSONString(buf, r.Name); err != nil {
		return buf, err
	}
	buf = append(buf, `,"unfairness":`...)
	if buf, err = appendJSONFloats(buf, r.Unfairness); err != nil {
		return buf, err
	}
	buf = append(buf, `,"makespan":`...)
	if buf, err = appendJSONFloats(buf, r.Makespan); err != nil {
		return buf, err
	}
	buf = append(buf, `,"rel":`...)
	if buf, err = appendJSONFloats(buf, r.Rel); err != nil {
		return buf, err
	}
	return append(buf, '}', '\n'), nil
}

// appendJSONString writes s as a JSON string. The fast path covers the
// characters point names are actually made of — printable ASCII minus the
// characters encoding/json escapes ('"', '\\', and the HTML-safety set
// '<', '>', '&'); anything else falls back to json.Marshal so the escape
// forms (\u003c for '<', the U+FFFD replacement for invalid UTF-8, …)
// stay byte-identical.
func appendJSONString(buf []byte, s string) ([]byte, error) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= utf8.RuneSelf || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			b, err := json.Marshal(s)
			if err != nil {
				return buf, err
			}
			return append(buf, b...), nil
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"'), nil
}

// appendJSONFloats writes a float slice, with encoding/json's nil-slice
// convention (null) preserved.
func appendJSONFloats(buf []byte, s []float64) ([]byte, error) {
	if s == nil {
		return append(buf, `null`...), nil
	}
	buf = append(buf, '[')
	var err error
	for i, f := range s {
		if i > 0 {
			buf = append(buf, ',')
		}
		if buf, err = appendJSONFloat(buf, f); err != nil {
			return buf, err
		}
	}
	return append(buf, ']'), nil
}

// appendJSONFloat replicates encoding/json's float64 encoding exactly:
// shortest round-trip form, 'f' format unless the magnitude calls for
// exponent form ('e' below 1e-6 or at/above 1e21), with the exponent's
// leading zero trimmed ("2e-09" → "2e-9").
func appendJSONFloat(buf []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return buf, fmt.Errorf("scenario: unsupported non-finite value %v in point result", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf, nil
}
