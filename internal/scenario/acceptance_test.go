package scenario

// Acceptance tests over the checked-in specs: examples/campaign.json must
// reproduce the paper's Figure 3 campaign bit-identically through the
// declarative engine — both unsharded and recombined from four freshly-run
// shards — and every spec under examples/campaigns must stay in sync with
// its PaperSpec definition. The full-campaign test runs ~100 scheduling
// runs per point and is skipped under -short.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ptgsched/internal/experiment"
)

// readSpec loads a checked-in spec relative to the repository root.
func readSpec(t *testing.T, rel string) *Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", rel))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("%s: %v", rel, err)
	}
	return spec
}

func TestCheckedInSpecsMatchPaperSpecs(t *testing.T) {
	cases := []struct{ rel, name string }{
		{"examples/campaign.json", "fig3"},
		{"examples/campaigns/fig2.json", "fig2"},
		{"examples/campaigns/fig3.json", "fig3"},
		{"examples/campaigns/fig4.json", "fig4"},
		{"examples/campaigns/fig5.json", "fig5"},
	}
	for _, c := range cases {
		data, err := os.ReadFile(filepath.Join("..", "..", c.rel))
		if err != nil {
			t.Fatal(err)
		}
		want, err := PaperSpec(c.name, 42, 25)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		wantJSON = append(wantJSON, '\n')
		if !bytes.Equal(bytes.TrimSpace(data), bytes.TrimSpace(wantJSON)) {
			t.Errorf("%s drifted from PaperSpec(%q, 42, 25):\n--- file ---\n%s\n--- want ---\n%s",
				c.rel, c.name, data, wantJSON)
		}
	}
}

// TestExampleCampaignReproducesFig3 is the acceptance criterion: the
// checked-in examples/campaign.json, swept through the declarative engine,
// reproduces experiment.Run(Fig3Config(42, 25)) bit-identically — once as
// a single unsharded run and once recombined from four independently-run
// shards.
func TestExampleCampaignReproducesFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 3 campaign (3×500 runs); run without -short")
	}
	spec := readSpec(t, "examples/campaign.json")
	e, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := experiment.Run(experiment.Fig3Config(42, 25))

	// Unsharded, streamed through the incremental aggregator exactly as
	// ptgbench's campaign mode runs it.
	agg := e.NewAggregator()
	if err := e.RunEach(e.All(), 0, agg.Add); err != nil {
		t.Fatal(err)
	}
	tables, err := agg.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("%d tables, want 1", len(tables))
	}
	if !reflect.DeepEqual(tables[0].Result.Points, want.Points) {
		t.Fatal("unsharded examples/campaign.json does not reproduce Fig. 3 bit-identically")
	}

	// Recombined from shards 0/4..3/4, each run independently and
	// round-tripped through the JSONL wire format.
	var merged []PointResult
	for _, shard := range []int{3, 1, 0, 2} {
		set, err := e.Shard(shard, 4)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, e.Run(set, 0)); err != nil {
			t.Fatal(err)
		}
		back, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, back...)
	}
	recombined, err := e.Aggregate(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recombined[0].Result.Points, want.Points) {
		t.Fatal("shard-recombined examples/campaign.json does not reproduce Fig. 3 bit-identically")
	}
}
