package scenario

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"ptgsched/internal/experiment"
)

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	return s
}

func mustExpand(t *testing.T, s *Spec) *Expansion {
	t.Helper()
	e, err := Expand(s)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	return e
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"seed": 1, "repz": 3}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseSpecRejectsBadValues(t *testing.T) {
	for _, src := range []string{
		`{"nptgs": [0]}`,
		`{"families": [{"family": "weird"}]}`,
		`{"families": [{"family": "fft", "tasks": [10]}]}`,
		`{"families": [{"family": "random", "k": [3]}]}`,
		`{"platform_specs": [{"name": "p", "clusters": []}]}`,
		`{"platform_specs": [{"name": "p", "clusters": [{"name":"c","procs":0,"speed":1}]}]}`,
		`{"platform_specs": [{"name": "p", "clusters": [{"name":"c","procs":4,"speed":-1}]}]}`,
		`{"online": {"rates": [0]}}`,
		`{"reps": -1}`,
	} {
		if _, err := ParseSpec([]byte(src)); err == nil {
			t.Errorf("spec %s accepted", src)
		}
	}
}

func TestAxisListAndRangeForms(t *testing.T) {
	s := mustParse(t, `{
		"families": [{
			"family": "random",
			"tasks": [10, 20],
			"widths": {"from": 0.2, "to": 0.8, "step": 0.3}
		}]
	}`)
	if got, want := []int(s.Families[0].Tasks), []int{10, 20}; !reflect.DeepEqual(got, want) {
		t.Fatalf("tasks = %v, want %v", got, want)
	}
	w := []float64(s.Families[0].Widths)
	if len(w) != 3 || w[0] != 0.2 || w[2] < 0.799 || w[2] > 0.801 {
		t.Fatalf("widths = %v, want [0.2 0.5 0.8]", w)
	}
}

func TestAxisRejectsNonIntegerAndBadRange(t *testing.T) {
	for _, src := range []string{
		`{"families": [{"family": "random", "tasks": [10.5]}]}`,
		`{"families": [{"family": "random", "widths": {"from": 1, "to": 0, "step": 0.1}}]}`,
		`{"families": [{"family": "random", "widths": {"from": 0, "to": 1, "step": 0}}]}`,
		`{"families": [{"family": "random", "widths": {"from": 0, "to": 1, "steep": 0.5}}]}`,
	} {
		if _, err := ParseSpec([]byte(src)); err == nil {
			t.Errorf("axis %s accepted", src)
		}
	}
}

func TestExpandDefaultsMatchPaperProtocol(t *testing.T) {
	e := mustExpand(t, &Spec{Seed: 42})
	if len(e.Cells) != 1 {
		t.Fatalf("%d cells, want 1", len(e.Cells))
	}
	if got, want := e.NumPoints(), 5*25*4; got != want {
		t.Fatalf("%d points, want %d", got, want)
	}
	if got, want := len(e.Cells[0].Config.Strategies), 8; got != want {
		t.Fatalf("%d strategies, want %d", got, want)
	}
	// Global order is cell → nptgs → rep → platform, and platforms of the
	// same repetition share the scenario seed.
	if e.PointAt(0).Seed != e.PointAt(3).Seed {
		t.Fatal("platforms of one repetition do not share a seed")
	}
	if e.PointAt(0).Seed == e.PointAt(4).Seed {
		t.Fatal("distinct repetitions share a seed")
	}
	for i := 0; i < e.NumPoints(); i++ {
		if p := e.PointAt(i); p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
	}
}

func TestGridExpansionCartesianProduct(t *testing.T) {
	s := mustParse(t, `{
		"nptgs": [2],
		"reps": 1,
		"platforms": ["rennes"],
		"families": [{
			"family": "random",
			"tasks": [10, 20],
			"widths": [0.2, 0.8],
			"regularities": [0.5],
			"densities": [0.5],
			"jumps": [1, 2],
			"complexities": ["mixed"]
		}]
	}`)
	e := mustExpand(t, s)
	if got, want := len(e.Cells), 2*2*1*1*2; got != want {
		t.Fatalf("%d cells, want %d", got, want)
	}
	seen := map[string]bool{}
	for _, c := range e.Cells {
		if seen[c.Label] {
			t.Fatalf("duplicate cell label %q", c.Label)
		}
		seen[c.Label] = true
		if c.Config.Gen == nil {
			t.Fatalf("grid cell %q has no pinned generator", c.Label)
		}
	}
	// A pinned generator must be deterministic given the seed.
	g1 := e.Cells[0].Config.Gen(rand.New(rand.NewSource(7)))
	g2 := e.Cells[0].Config.Gen(rand.New(rand.NewSource(7)))
	if g1.Name != g2.Name || len(g1.Tasks) != len(g2.Tasks) {
		t.Fatal("pinned generator is not deterministic")
	}
}

func TestFFTGridAndStrassenRejection(t *testing.T) {
	e := mustExpand(t, mustParse(t, `{
		"nptgs": [2], "reps": 1, "platforms": ["rennes"],
		"families": [{"family": "fft", "k": [2, 3]}]
	}`))
	if len(e.Cells) != 2 {
		t.Fatalf("%d fft cells, want 2", len(e.Cells))
	}
	if _, err := Expand(&Spec{Families: []FamilySpec{{Family: "strassen", K: Ints{2}}}}); err == nil {
		t.Fatal("strassen grid accepted")
	}
}

func TestInlineHeterogeneousPlatform(t *testing.T) {
	s := mustParse(t, `{
		"seed": 7, "nptgs": [2], "reps": 1,
		"platforms": ["lille"],
		"platform_specs": [{
			"name": "skewed", "shared_switch": true,
			"clusters": [
				{"name": "slow", "procs": 40, "speed": 1.0},
				{"name": "fast", "procs": 8, "speed": 9.0}
			]
		}],
		"families": [{"family": "strassen"}]
	}`)
	e := mustExpand(t, s)
	if len(e.Platforms) != 2 {
		t.Fatalf("%d platforms, want 2", len(e.Platforms))
	}
	if e.Platforms[1].Name != "skewed" || e.Platforms[1].Heterogeneity() < 7.9 {
		t.Fatalf("inline platform not resolved: %v", e.Platforms[1])
	}
	res := e.Run(e.All(), 1)
	if len(res) != 2 {
		t.Fatalf("%d results, want 2", len(res))
	}
	for _, r := range res {
		for s, m := range r.Makespan {
			if m <= 0 {
				t.Fatalf("point %q strategy %d has makespan %g", r.Name, s, m)
			}
		}
	}
}

// TestAggregateBitIdenticalToExperimentRun is the heart of the engine: a
// spec mirroring Figure 3 must aggregate to exactly the numbers the
// experiment package computes for Fig3Config — same seeds, same reduction
// order, bit-identical floats.
func TestAggregateBitIdenticalToExperimentRun(t *testing.T) {
	const seed, reps = 42, 2
	spec, err := PaperSpec("fig3", seed, reps)
	if err != nil {
		t.Fatal(err)
	}
	e := mustExpand(t, spec)
	tables, err := e.Aggregate(e.Run(e.All(), 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("%d tables, want 1", len(tables))
	}
	want := experiment.Run(experiment.Fig3Config(seed, reps))
	if !reflect.DeepEqual(tables[0].Result.Points, want.Points) {
		t.Fatalf("aggregated points differ from experiment.Run:\n got %+v\nwant %+v",
			tables[0].Result.Points, want.Points)
	}
	if !reflect.DeepEqual(tables[0].Result.Config.Labels, want.Config.Labels) {
		t.Fatalf("labels differ: %v vs %v", tables[0].Result.Config.Labels, want.Config.Labels)
	}
}

// TestShardsRecombineBitIdentically partitions the same reduced Fig. 3
// campaign into 4 shards, round-trips each shard through JSONL, merges
// them out of order, and requires the aggregate to match the unsharded
// run exactly.
func TestShardsRecombineBitIdentically(t *testing.T) {
	spec, err := PaperSpec("fig3", 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec.NPTGs = []int{2, 4}
	spec.Platforms = []string{"lille", "rennes"}
	e := mustExpand(t, spec)

	full, err := e.Aggregate(e.Run(e.All(), 2))
	if err != nil {
		t.Fatal(err)
	}

	var merged []PointResult
	for _, shard := range []int{2, 0, 3, 1} { // deliberately out of order
		set, err := e.Shard(shard, 4)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, e.Run(set, 2)); err != nil {
			t.Fatal(err)
		}
		back, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, back...)
	}
	if len(merged) != e.NumPoints() {
		t.Fatalf("shards cover %d of %d points", len(merged), e.NumPoints())
	}
	recombined, err := e.Aggregate(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recombined[0].Result.Points, full[0].Result.Points) {
		t.Fatal("recombined shard aggregate differs from unsharded run")
	}
}

func TestShardPartitionExact(t *testing.T) {
	e := mustExpand(t, &Spec{Seed: 1, Reps: 2, NPTGs: []int{2, 3}, Platforms: []string{"lille", "nancy"}})
	seen := make([]bool, e.NumPoints())
	for i := 0; i < 3; i++ {
		set, err := e.Shard(i, 3)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < set.Len(); j++ {
			idx := set.At(j)
			if !set.Contains(idx) {
				t.Fatalf("set does not contain its own member %d", idx)
			}
			if p := e.PointAt(idx); p.Index != idx {
				t.Fatalf("PointAt(%d) has index %d", idx, p.Index)
			}
			if seen[idx] {
				t.Fatalf("point %d in two shards", idx)
			}
			seen[idx] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d in no shard", i)
		}
	}
	if _, err := e.Shard(3, 3); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

func TestParseShard(t *testing.T) {
	i, n, err := ParseShard("2/4")
	if err != nil || i != 2 || n != 4 {
		t.Fatalf("ParseShard(2/4) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "x", "4/4", "-1/4", "1/0", "1", "0/4junk", "1/4 2", "a/4", "1/b"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

func TestEstimatePointsMatchesExpansion(t *testing.T) {
	specs := []string{
		`{}`,
		`{"reps": 2, "nptgs": [2, 3], "platforms": ["lille"], "families": [{"family": "strassen"}, {"family": "fft", "k": [2, 3]}]}`,
		`{"families": [{"family": "random", "tasks": [10, 20], "jumps": [1]}], "reps": 2, "nptgs": [2], "platforms": ["lille"]}`,
		`{"online": {"processes": ["burst", "poisson"], "rates": [0.1, 0.2]}, "reps": 1, "nptgs": [2]}`,
	}
	for _, src := range specs {
		s := mustParse(t, src)
		cells, points, err := EstimatePoints(s)
		if err != nil {
			t.Fatalf("EstimatePoints(%s): %v", src, err)
		}
		e := mustExpand(t, s)
		if cells != len(e.Cells) || points != e.NumPoints() {
			t.Errorf("spec %s: estimate (%d cells, %d points) vs expansion (%d, %d)",
				src, cells, points, len(e.Cells), e.NumPoints())
		}
	}
}

func TestExpandRejectsOversizedSweepsWithoutMaterializing(t *testing.T) {
	// Two range axes whose product explodes: the estimate must reject it
	// arithmetically — quickly — before any cell is built.
	src := `{"families": [{
		"family": "random",
		"tasks": {"from": 1, "to": 5000, "step": 1},
		"widths": {"from": 0.001, "to": 1, "step": 0.001}
	}]}`
	s := mustParse(t, src)
	start := time.Now()
	if _, _, err := EstimatePoints(s); err == nil {
		t.Fatal("oversized sweep estimated without error")
	}
	if _, err := Expand(s); err == nil {
		t.Fatal("oversized sweep expanded without error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("oversized-sweep rejection took %v; it must not materialize the grid", elapsed)
	}
	// Absurd reps must not overflow the arithmetic into acceptance.
	if _, _, err := EstimatePoints(mustParse(t, `{"reps": 4000000000000000000}`)); err == nil {
		t.Fatal("absurd reps accepted")
	}
}

func TestAggregateRejectsIncompleteAndDuplicates(t *testing.T) {
	e := mustExpand(t, &Spec{Seed: 1, Reps: 1, NPTGs: []int{2}, Platforms: []string{"lille", "nancy"},
		Families: []FamilySpec{{Family: "strassen"}}})
	res := e.Run(e.All(), 1)
	if _, err := e.Aggregate(res[:1]); err == nil {
		t.Fatal("incomplete result set accepted")
	}
	dup := append([]PointResult{}, res...)
	dup[1] = dup[0]
	if _, err := e.Aggregate(dup); err == nil {
		t.Fatal("duplicated result accepted")
	}
}

func TestJSONLRoundTripsBitExactly(t *testing.T) {
	e := mustExpand(t, &Spec{Seed: 3, Reps: 1, NPTGs: []int{2}, Platforms: []string{"sophia"},
		Families: []FamilySpec{{Family: "fft"}}})
	res := e.Run(e.All(), 1)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatal("JSONL round trip not bit-exact")
	}
}

func TestOnlineSweepDeterministicAndLabeled(t *testing.T) {
	s := mustParse(t, `{
		"seed": 11, "nptgs": [3], "reps": 2,
		"platforms": ["rennes"],
		"families": [{"family": "random"}],
		"strategies": [{"name": "ES"}, {"name": "WPS-work"}],
		"online": {"processes": ["burst", "poisson"], "rates": [0.25, 0.5]}
	}`)
	e := mustExpand(t, s)
	// burst collapses the rate axis; poisson sweeps it.
	if got, want := len(e.Cells), 3; got != want {
		t.Fatalf("%d online cells, want %d", got, want)
	}
	if !strings.Contains(e.Cells[1].Label, "poisson@0.25") {
		t.Fatalf("cell label %q missing process point", e.Cells[1].Label)
	}
	r1 := e.Run(e.All(), 1)
	r2 := e.Run(e.All(), 3)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("online sweep depends on worker count")
	}
	for _, r := range r1 {
		for s := range r.Makespan {
			if r.Makespan[s] <= 0 || r.Rel[s] < 1 {
				t.Fatalf("point %q has invalid measurement %+v", r.Name, r)
			}
		}
	}
}

func TestFindPointAndMaterialize(t *testing.T) {
	e := mustExpand(t, &Spec{Seed: 5, Reps: 2, NPTGs: []int{2, 4}, Platforms: []string{"lille", "nancy"}})
	p, err := e.FindPoint("random/n=4/rep=1/Nancy")
	if err != nil {
		t.Fatal(err)
	}
	if p.NPTGs != 4 || p.Rep != 1 || e.Platforms[p.Platform].Name != "Nancy" {
		t.Fatalf("wrong point: %+v", p)
	}
	byIdx, err := e.FindPoint("7")
	if err != nil || byIdx.Index != 7 {
		t.Fatalf("FindPoint(7) = %+v, %v", byIdx, err)
	}
	if _, err := e.FindPoint("nope"); err == nil {
		t.Fatal("unknown point accepted")
	}

	pf, graphs, releases := e.Materialize(p)
	if pf.Name != "Nancy" || len(graphs) != 4 || len(releases) != 4 {
		t.Fatalf("materialized %s with %d graphs", pf.Name, len(graphs))
	}
	for _, r := range releases {
		if r != 0 {
			t.Fatal("offline point has nonzero release")
		}
	}
	// Materializing twice yields the same deterministic batch.
	_, graphs2, _ := e.Materialize(p)
	for i := range graphs {
		if graphs[i].Name != graphs2[i].Name {
			t.Fatal("materialization not deterministic")
		}
	}
}

func TestPaperSpecNames(t *testing.T) {
	for _, name := range []string{"fig2", "fig3", "fig4", "fig5"} {
		s, err := PaperSpec(name, 1, 2)
		if err != nil {
			t.Fatalf("PaperSpec(%s): %v", name, err)
		}
		if _, err := Expand(s); err != nil {
			t.Fatalf("Expand(PaperSpec(%s)): %v", name, err)
		}
	}
	if _, err := PaperSpec("fig9", 1, 2); err == nil {
		t.Fatal("unknown paper campaign accepted")
	}
}

func TestPaperSpecFig2MuSweepLabels(t *testing.T) {
	s, err := PaperSpec("fig2", 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := mustExpand(t, s)
	labels := e.Cells[0].Config.Labels
	if len(labels) != len(experiment.MuSweep) || labels[0] != "mu=0.0" {
		t.Fatalf("fig2 labels = %v", labels)
	}
	cfgWant := experiment.Fig2Config(42, 1).Defaults()
	if !reflect.DeepEqual(e.Cells[0].Config.Strategies, cfgWant.Strategies) {
		t.Fatalf("fig2 strategies differ: %v vs %v", e.Cells[0].Config.Strategies, cfgWant.Strategies)
	}
}
