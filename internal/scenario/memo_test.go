package scenario

// The Memo seam, tested with an in-memory fake: hits bypass computation,
// misses are computed and offered back, a nil memo degenerates to the
// plain sweep, and every engine (RunMemo, RunEachMemo, isolated) funnels
// through the same lookup→compute→publish contract. The canonical disk
// implementation lives in internal/cache; this file keeps the seam itself
// under the scenario package's own race coverage.

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// mapMemo is a concurrency-safe in-memory Memo keyed by point index,
// counting its traffic.
type mapMemo struct {
	mu        sync.Mutex
	m         map[int]PointResult
	hits      atomic.Int64
	misses    atomic.Int64
	published atomic.Int64
}

func newMapMemo() *mapMemo { return &mapMemo{m: make(map[int]PointResult)} }

func (f *mapMemo) Lookup(p Point) (PointResult, bool) {
	f.mu.Lock()
	r, ok := f.m[p.Index]
	f.mu.Unlock()
	if ok {
		f.hits.Add(1)
		return r, true
	}
	f.misses.Add(1)
	return PointResult{}, false
}

func (f *mapMemo) Publish(p Point, r PointResult) {
	f.published.Add(1)
	f.mu.Lock()
	f.m[p.Index] = r
	f.mu.Unlock()
}

func memoExpansion(t *testing.T) *Expansion {
	t.Helper()
	s := mustParse(t, `{
		"name": "memo",
		"seed": 5,
		"reps": 2,
		"nptgs": [2, 3],
		"platforms": ["lille", "rennes"],
		"families": [{"family": "strassen"}]
	}`)
	return mustExpand(t, s)
}

func TestComputePointConsultsMemo(t *testing.T) {
	e := memoExpansion(t)
	m := newMapMemo()
	p := e.PointAt(0)

	r1 := e.ComputePoint(p, m)
	if m.misses.Load() != 1 || m.published.Load() != 1 {
		t.Fatalf("first compute: misses=%d published=%d, want 1/1", m.misses.Load(), m.published.Load())
	}
	r2 := e.ComputePoint(p, m)
	if m.hits.Load() != 1 || m.published.Load() != 1 {
		t.Fatalf("second compute: hits=%d published=%d, want 1/1", m.hits.Load(), m.published.Load())
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("memo hit differs from the computed result")
	}
	if !reflect.DeepEqual(r1, e.RunPoint(p)) {
		t.Fatal("memoized result differs from RunPoint")
	}
}

func TestComputePointNilMemoIsRunPoint(t *testing.T) {
	e := memoExpansion(t)
	p := e.PointAt(1)
	if !reflect.DeepEqual(e.ComputePoint(p, nil), e.RunPoint(p)) {
		t.Fatal("nil memo does not degenerate to RunPoint")
	}
}

func TestRunMemoMatchesRunAtEveryHitSplit(t *testing.T) {
	e := memoExpansion(t)
	want := e.Run(e.All(), 1)

	// Pre-warm the memo with a prefix of the points; the sweep must fill
	// in the rest and return results identical to the plain run, at
	// several worker counts.
	for _, warm := range []int{0, e.NumPoints() / 2, e.NumPoints()} {
		for _, workers := range []int{1, 4} {
			m := newMapMemo()
			for i := 0; i < warm; i++ {
				m.Publish(e.PointAt(i), want[i])
			}
			got := e.RunMemo(e.All(), workers, m)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("warm=%d workers=%d: RunMemo differs from Run", warm, workers)
			}
			if h := m.hits.Load(); h != int64(warm) {
				t.Fatalf("warm=%d workers=%d: hits=%d", warm, workers, h)
			}
			// Pre-warm publishes plus one publish per miss.
			if p := m.published.Load(); p != int64(e.NumPoints()) {
				t.Fatalf("warm=%d: published=%d, want %d", warm, p, e.NumPoints())
			}
		}
	}
}

func TestRunEachMemoStreamsMemoHits(t *testing.T) {
	e := memoExpansion(t)
	want := e.Run(e.All(), 1)
	m := newMapMemo()
	for i, r := range want {
		m.Publish(e.PointAt(i), r)
	}
	var got []PointResult
	if err := e.RunEachMemo(e.All(), 1, m, func(r PointResult) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RunEachMemo over a fully warm memo differs from Run")
	}
	if m.hits.Load() != int64(e.NumPoints()) {
		t.Fatalf("hits=%d, want %d", m.hits.Load(), e.NumPoints())
	}
}
