package scenario

// Differential coverage for the hand-rolled JSONL encoder: AppendJSONL
// exists only because its bytes are indistinguishable from json.Marshal's,
// so every case here (and the fuzzer) is a byte-level diff of the two.

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// marshalLine is the reference encoding: json.Marshal plus the newline
// the JSONL format appends per record.
func marshalLine(t *testing.T, r PointResult) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func TestAppendJSONLMatchesEncodingJSON(t *testing.T) {
	floats := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.1, 1.0 / 3.0,
		1e-6, 9.999999e-7, 1e-7, 5e-324, // exponent-form threshold and denormal
		1e20, 1e21, 1.0000001e21, math.MaxFloat64,
		-2.5e-9, 123456.789, 1013.0, 2.718281828459045,
	}
	cases := []PointResult{
		{}, // zero value: nil slices must encode as null
		{Index: 3, Cell: 1, Name: "strassen/n=2/rep=0/lille",
			Unfairness: []float64{}, Makespan: []float64{}, Rel: []float64{}},
		{Index: -7, Cell: -1, Name: "negative indices still encode"},
		{Index: 1 << 40, Name: "big index"},
		{Name: `quotes " and \ backslash`},
		{Name: "html <escapes> & ampersand"},
		{Name: "control \x00\x1f chars"},
		{Name: "unicode π µ — and invalid \xff\xfe bytes"},
		{Name: "line\u2028sep\u2029"},
		{Index: 42, Cell: 2, Name: "floats", Unfairness: floats,
			Makespan: floats[:4], Rel: floats[4:]},
	}
	for i, r := range cases {
		got, err := AppendJSONL(nil, r)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if want := marshalLine(t, r); !bytes.Equal(got, want) {
			t.Errorf("case %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestAppendJSONLBufferReuse(t *testing.T) {
	a := PointResult{Index: 1, Name: "a", Makespan: []float64{1.5}}
	b := PointResult{Index: 2, Name: "bb", Rel: []float64{2.25, 1e-9}}
	buf, err := AppendJSONL(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	buf, err = AppendJSONL(buf, b) // append, not reset: both records in one buffer
	if err != nil {
		t.Fatal(err)
	}
	want := append(marshalLine(t, a), marshalLine(t, b)...)
	if !bytes.Equal(buf, want) {
		t.Fatalf("concatenated records differ:\n got %s\nwant %s", buf, want)
	}
}

func TestAppendJSONLRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := AppendJSONL(nil, PointResult{Makespan: []float64{v}}); err == nil {
			t.Errorf("value %v accepted; json.Marshal rejects it", v)
		}
	}
}

// FuzzAppendJSONL diffs the two encoders over arbitrary float bit patterns
// and names — the float formatting thresholds and the string fast path are
// exactly the places a byte-level divergence could hide.
func FuzzAppendJSONL(f *testing.F) {
	f.Add(0, "strassen/n=2/rep=0/lille", uint64(0x3ff0000000000000), uint64(0))
	f.Add(-1, "π <&> \x01", uint64(0x0000000000000001), uint64(0x7fefffffffffffff))
	f.Add(1<<30, "", uint64(0x3eb0c6f7a0b5ed8d), uint64(0x44b52d02c7e14af6)) // ~1e-6, ~1e22
	f.Fuzz(func(t *testing.T, idx int, name string, bits1, bits2 uint64) {
		v1, v2 := math.Float64frombits(bits1), math.Float64frombits(bits2)
		if math.IsNaN(v1) || math.IsInf(v1, 0) || math.IsNaN(v2) || math.IsInf(v2, 0) {
			return
		}
		r := PointResult{
			Index: idx, Cell: idx / 2, Name: name,
			Unfairness: []float64{v1, v2}, Makespan: []float64{v2}, Rel: nil,
		}
		got, err := AppendJSONL(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, append(want, '\n')) {
			t.Fatalf("encoders diverge:\n got %s\nwant %s\n", got, want)
		}
	})
}
