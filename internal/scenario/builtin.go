package scenario

import (
	"fmt"
	"strings"

	"ptgsched/internal/experiment"
)

// PaperSpec returns the declarative spec of one of the paper's evaluation
// campaigns ("fig2" … "fig5"): the spec-driven form of the corresponding
// experiment.FigNConfig. Expanding and running it reproduces that figure's
// campaign bit-identically; the checked-in examples/campaign.json is the
// serialized PaperSpec("fig3", 42, 25).
func PaperSpec(name string, seed int64, reps int) (*Spec, error) {
	s := &Spec{Name: strings.ToLower(name), Seed: seed, Reps: reps}
	switch s.Name {
	case "fig2":
		// Figure 2: the µ parameter of WPS-work swept over the paper's
		// grid on random PTGs.
		s.Families = []FamilySpec{{Family: "random"}}
		for _, mu := range experiment.MuSweep {
			mu := mu
			s.Strategies = append(s.Strategies, StrategySpec{
				Name: "WPS-work", Mu: &mu, Label: fmt.Sprintf("mu=%.1f", mu),
			})
		}
	case "fig3":
		// Figure 3: the eight strategies on random PTGs.
		s.Families = []FamilySpec{{Family: "random"}}
	case "fig4":
		// Figure 4: the eight strategies on FFT PTGs.
		s.Families = []FamilySpec{{Family: "fft"}}
	case "fig5":
		// Figure 5: the six applicable strategies on Strassen PTGs.
		s.Families = []FamilySpec{{Family: "strassen"}}
	default:
		return nil, fmt.Errorf("scenario: unknown paper campaign %q (want fig2, fig3, fig4 or fig5)", name)
	}
	return s, nil
}
