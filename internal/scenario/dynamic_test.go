package scenario

// Tests of the dynamic-scenario expansion: the rescheduling-policy axis,
// digest-seeded per-point timelines (deterministic, shard-invariant,
// platform-aware), the empty-events ≡ no-events structural guarantee, and
// the sweep path through runDynamicPoint.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ptgsched/internal/clitest"
	"ptgsched/internal/events"
)

const dynSpecSrc = `{
  "name": "dyn", "seed": 7, "reps": 2, "nptgs": [2], "platforms": ["nancy"],
  "events": {
    "failures": [{"cluster": 0, "at": 50, "duration": 20}],
    "policies": ["restart", "checkpoint"]
  }
}`

func TestExpandAddsPolicyAxis(t *testing.T) {
	e := mustExpand(t, mustParse(t, dynSpecSrc))
	if len(e.Cells) != 2 {
		t.Fatalf("got %d cells, want one per policy", len(e.Cells))
	}
	wantLabels := []string{"random+dyn[restart]", "random+dyn[checkpoint]"}
	for i, c := range e.Cells {
		if c.Label != wantLabels[i] || c.Policy != strings.TrimSuffix(strings.TrimPrefix(wantLabels[i], "random+dyn["), "]") {
			t.Fatalf("cell %d: label %q policy %q", i, c.Label, c.Policy)
		}
	}
	// 2 reps × one nptgs value × one platform × 2 policies.
	if got, want := e.NumPoints(), 4; got != want {
		t.Fatalf("NumPoints %d, want %d", got, want)
	}
	cells, points, err := EstimatePoints(mustParse(t, dynSpecSrc))
	if err != nil {
		t.Fatal(err)
	}
	if cells != len(e.Cells) || points != e.NumPoints() {
		t.Fatalf("EstimatePoints %d/%d disagrees with expansion %d/%d",
			cells, points, len(e.Cells), e.NumPoints())
	}
}

func TestEventsDefaultPolicyIsRestart(t *testing.T) {
	e := mustExpand(t, mustParse(t, `{
	  "seed": 1, "reps": 1, "nptgs": [2],
	  "events": {"cancels": [{"app": 0, "at": 5}]}
	}`))
	for _, c := range e.Cells {
		if c.Policy != "restart" {
			t.Fatalf("cell %q: policy %q, want implicit restart", c.Label, c.Policy)
		}
	}
}

// TestEmptyEventsSpecExpandsAsStatic: an explicitly empty events block
// must change nothing structurally — same cells, labels, point names and
// seeds as the same spec without the block.
func TestEmptyEventsSpecExpandsAsStatic(t *testing.T) {
	static := mustExpand(t, mustParse(t, `{"seed": 3, "reps": 2, "nptgs": [2], "platforms": ["lille"]}`))
	empty := mustExpand(t, mustParse(t, `{"seed": 3, "reps": 2, "nptgs": [2], "platforms": ["lille"], "events": {}}`))
	if !reflect.DeepEqual(static.Cells, empty.Cells) {
		t.Fatal("empty events block changed the expansion's cells")
	}
	if static.NumPoints() != empty.NumPoints() {
		t.Fatalf("point counts differ: %d vs %d", static.NumPoints(), empty.NumPoints())
	}
	for i := 0; i < static.NumPoints(); i++ {
		a, b := static.PointAt(i), empty.PointAt(i)
		if a.Name != b.Name || a.Seed != b.Seed {
			t.Fatalf("point %d differs: %q/%d vs %q/%d", i, a.Name, a.Seed, b.Name, b.Seed)
		}
		if tl := empty.TimelineFor(b); tl != nil {
			t.Fatalf("point %d: empty events block yields a timeline: %v", i, tl)
		}
	}
	// And the point results are the byte-level guarantee's substrate:
	// identical runs.
	ra, rb := static.RunPoint(static.PointAt(0)), empty.RunPoint(empty.PointAt(0))
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("point 0 results differ:\n  %+v\n  %+v", ra, rb)
	}
}

// TestTimelineForDeterministicAndShardInvariant: per-point timelines
// depend only on (spec digest, point index) — re-expansion and
// shard-subset enumeration reproduce them exactly, and distinct points
// get distinct draws.
func TestTimelineForDeterministicAndShardInvariant(t *testing.T) {
	spec := mustParse(t, `{
	  "seed": 11, "reps": 3, "nptgs": [2, 5], "platforms": ["sophia"],
	  "events": {"failures": [{"cluster": 1, "mttf": 200, "mttr": 50, "count": 2}]}
	}`)
	a, b := mustExpand(t, spec), mustExpand(t, spec)
	sawDistinct := false
	var prev events.Timeline
	for i := 0; i < a.NumPoints(); i++ {
		ta, tb := a.TimelineFor(a.PointAt(i)), b.TimelineFor(b.PointAt(i))
		if !reflect.DeepEqual(ta, tb) {
			t.Fatalf("point %d: timeline differs across expansions:\n  %v\n  %v", i, ta, tb)
		}
		if len(ta) == 0 {
			t.Fatalf("point %d: failure process drew no events", i)
		}
		if prev != nil && !reflect.DeepEqual(prev, ta) {
			sawDistinct = true
		}
		prev = ta
	}
	if !sawDistinct {
		t.Fatal("every point drew the identical timeline; seeds are not per-point")
	}
}

// TestTimelineForDiffersAcrossSpecs: the digest seeds the draw, so a
// different spec (different seed field) yields different process
// timelines at the same point index.
func TestTimelineForDiffersAcrossSpecs(t *testing.T) {
	mk := func(seed string) events.Timeline {
		e := mustExpand(t, mustParse(t, `{
		  "seed": `+seed+`, "reps": 1, "nptgs": [2], "platforms": ["lille"],
		  "events": {"failures": [{"cluster": 0, "mttf": 100, "mttr": 30}]}
		}`))
		return e.TimelineFor(e.PointAt(0))
	}
	if reflect.DeepEqual(mk("1"), mk("2")) {
		t.Fatal("different specs drew identical timelines; digest does not feed the seed")
	}
}

// TestExpandRejectsUnsurvivablePermanentFailures: a spec whose scripted
// failures permanently take down every cluster of a platform can never
// finish a point there; Expand must refuse it up front.
func TestExpandRejectsUnsurvivablePermanentFailures(t *testing.T) {
	spec := mustParse(t, `{
	  "seed": 1, "reps": 1, "nptgs": [2],
	  "platform_specs": [{"name": "solo", "clusters": [{"name": "c0", "procs": 8, "speed": 1}]}],
	  "events": {"failures": [{"cluster": 0, "at": 10}]}
	}`)
	if _, err := Expand(spec); err == nil || !strings.Contains(err.Error(), "permanently") {
		t.Fatalf("unsurvivable spec accepted: %v", err)
	}
}

func TestParseSpecRejectsBadEvents(t *testing.T) {
	for _, src := range []string{
		`{"events": {"failures": [{"cluster": -1, "at": 5}]}}`,
		`{"events": {"failures": [{"cluster": 0, "at": 5, "mttf": 10, "mttr": 2}]}}`,
		`{"events": {"failures": [{"cluster": 0, "mttf": 10}]}}`,
		`{"events": {"speed_changes": [{"cluster": 0, "at": 1, "factor": 0}]}}`,
		`{"events": {"cancels": [{"app": -1, "at": 1}]}}`,
		`{"events": {"cancels": [{"app": 0, "at": 1}], "policies": ["optimist"]}}`,
	} {
		if _, err := ParseSpec([]byte(src)); err == nil {
			t.Errorf("bad events spec accepted: %s", src)
		}
	}
}

// TestDynamicSweepDeterministic: running the same dynamic point twice is
// bit-identical (the sweep path re-derives the timeline each run), and
// restart/checkpoint cells of the same scenario may legitimately differ.
func TestDynamicSweepDeterministic(t *testing.T) {
	e := mustExpand(t, mustParse(t, dynSpecSrc))
	p := e.PointAt(0)
	if !reflect.DeepEqual(e.RunPoint(p), e.RunPoint(p)) {
		t.Fatal("dynamic point reruns differ")
	}
	for s, mk := range e.RunPoint(p).Makespan {
		if mk <= 0 {
			t.Fatalf("strategy %d: non-positive makespan %g", s, mk)
		}
	}
}

// TestDynamicFig3CampaignMatchesGolden is the dynamic acceptance pin: a
// Fig. 3-scale campaign on Rennes with one scripted mid-run failure,
// swept under both rescheduling policies, must reproduce the checked-in
// JSONL golden byte for byte (regenerate with
// `go test ./internal/scenario -run TestDynamicFig3 -update`). Skipped
// under -short like the static Fig. 3 acceptance run.
func TestDynamicFig3CampaignMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 3-scale dynamic campaign; run without -short")
	}
	spec := mustParse(t, `{
	  "name": "fig3-failure", "seed": 42, "reps": 5, "nptgs": [5, 10],
	  "platforms": ["rennes"],
	  "events": {
	    "failures": [{"cluster": 0, "at": 60, "duration": 40}],
	    "policies": ["restart", "checkpoint"]
	  }
	}`)
	e := mustExpand(t, spec)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, e.Run(e.All(), 0)); err != nil {
		t.Fatal(err)
	}
	clitest.CheckGolden(t, "dynamic-fig3.golden", buf.Bytes())
}
