package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/experiment"
	"ptgsched/internal/metrics"
	"ptgsched/internal/online"
	"ptgsched/internal/platform"
	"ptgsched/internal/workload"
)

// PointResult is one scenario point's measurement: one value per strategy
// of the point's cell. It is the JSONL wire record of sharded sweeps;
// encoding/json round-trips its float64 values bit-exactly, so shards can
// be recombined without loss.
type PointResult struct {
	Index int    `json:"index"`
	Cell  int    `json:"cell"`
	Name  string `json:"name"`
	// Unfairness is Eq. 5 per strategy (for online cells, the analogous
	// mean-normalized flow-time deviation).
	Unfairness []float64 `json:"unfairness"`
	// Makespan is the global makespan per strategy in seconds (for online
	// cells, the completion time of the last application).
	Makespan []float64 `json:"makespan"`
	// Rel is each strategy's makespan divided by the point's best one.
	Rel []float64 `json:"rel"`
}

// RunPoint executes one scenario point on the calling goroutine.
func (e *Expansion) RunPoint(p Point) PointResult {
	c := e.Cells[p.Cell]
	if c.Online == nil {
		m := experiment.RunOne(c.Config, p.NIdx, p.Rep, p.Platform)
		return PointResult{
			Index: p.Index, Cell: p.Cell, Name: p.Name,
			Unfairness: m.Unfairness, Makespan: m.Makespan, Rel: m.Rel,
		}
	}
	return e.runOnlinePoint(c, p)
}

// runOnlinePoint measures one dynamic-arrivals point: a workload drawn
// from the point's seed is replayed under every strategy of the cell.
func (e *Expansion) runOnlinePoint(c *Cell, p Point) PointResult {
	r := rand.New(rand.NewSource(p.Seed))
	arrivals := workload.Generate(workload.Spec{
		Family:  c.Family,
		Count:   p.NPTGs,
		Process: c.Online.Process,
		Rate:    c.Online.Rate,
		Gen:     c.Config.Gen,
	}, r)

	out := PointResult{
		Index: p.Index, Cell: p.Cell, Name: p.Name,
		Unfairness: make([]float64, len(c.Config.Strategies)),
		Makespan:   make([]float64, len(c.Config.Strategies)),
	}
	pf := e.Platforms[p.Platform]
	for s, strat := range c.Config.Strategies {
		res := online.Schedule(pf, arrivals, online.Options{Strategy: strat})
		flows := make([]float64, len(res.Apps))
		for i, app := range res.Apps {
			flows[i] = app.FlowTime()
		}
		out.Makespan[s] = res.Makespan
		out.Unfairness[s] = flowUnfairness(flows)
	}
	out.Rel = metrics.RelativeMakespans(out.Makespan)
	return out
}

// flowUnfairness is the online analog of Eq. 5: flow times are normalized
// by their mean (the role M_own plays offline is not defined for dynamic
// arrivals) and the absolute deviations from 1 are summed.
func flowUnfairness(flows []float64) float64 {
	mean := metrics.Mean(flows)
	if mean <= 0 {
		return 0
	}
	u := 0.0
	for _, f := range flows {
		u += math.Abs(f/mean - 1)
	}
	return u
}

// Run executes the given points (all of them, or one shard) over a fixed
// pool of workers goroutines (0 = GOMAXPROCS, ≤1 = inline) and returns
// their results in point order. Results are bit-identical at every worker
// count: each point derives its whole scenario from its own seed.
func (e *Expansion) Run(points []Point, workers int) []PointResult {
	outs := make([]PointResult, len(points))
	experiment.ForEach(len(points), workers, func(i int) {
		outs[i] = e.RunPoint(points[i])
	})
	return outs
}

// WriteJSONL streams results as JSON Lines: one compact PointResult object
// per line, the shard interchange format.
func WriteJSONL(w io.Writer, results []PointResult) error {
	bw := bufio.NewWriter(w)
	for _, r := range results {
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadJSONL loads results written by WriteJSONL; blank lines are skipped,
// so concatenated shard files read back directly.
func ReadJSONL(r io.Reader) ([]PointResult, error) {
	var out []PointResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var pr PointResult
		if err := json.Unmarshal(text, &pr); err != nil {
			return nil, fmt.Errorf("scenario: jsonl line %d: %w", line, err)
		}
		out = append(out, pr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Table is one cell's aggregated campaign outcome: Result carries the
// paper's summary metrics (one point per NPTGs value, one column per
// strategy) and renders through the experiment package's table and CSV
// writers.
type Table struct {
	Cell   *Cell
	Result *experiment.Result
}

// Aggregate reduces a complete result set — one unsharded run, or the
// recombined outputs of all shards — into per-cell summary tables. The
// reduction visits results in global point order regardless of the order
// (or shard) they arrive in, so recombined shards aggregate bit-identically
// to an unsharded run; it is also exactly experiment.Run's reduction, so a
// spec mirroring a paper figure reproduces that figure's numbers.
// Incomplete or duplicated result sets are rejected.
func (e *Expansion) Aggregate(results []PointResult) ([]Table, error) {
	if len(results) != len(e.Points) {
		return nil, fmt.Errorf("scenario: %d results for %d points (missing shards?)",
			len(results), len(e.Points))
	}
	ordered := make([]*PointResult, len(e.Points))
	for i := range results {
		r := &results[i]
		if r.Index < 0 || r.Index >= len(e.Points) {
			return nil, fmt.Errorf("scenario: result index %d outside expansion", r.Index)
		}
		if ordered[r.Index] != nil {
			return nil, fmt.Errorf("scenario: duplicate result for point %d", r.Index)
		}
		if r.Cell != e.Points[r.Index].Cell {
			return nil, fmt.Errorf("scenario: result %d is for cell %d, expansion says %d (stale shard?)",
				r.Index, r.Cell, e.Points[r.Index].Cell)
		}
		ordered[r.Index] = r
	}

	// Group results by (cell, NPTGs index) in one pass over the global
	// point order, so the per-group reduction below visits them in exactly
	// experiment.Run's order without rescanning e.Points per group.
	nNPTGs := 0
	if len(e.Cells) > 0 {
		nNPTGs = len(e.Cells[0].Config.NPTGs)
	}
	groups := make([][]*PointResult, len(e.Cells)*nNPTGs)
	for _, p := range e.Points {
		g := p.Cell*nNPTGs + p.NIdx
		groups[g] = append(groups[g], ordered[p.Index])
	}

	var tables []Table
	for _, c := range e.Cells {
		cfg := c.Config
		ns := len(cfg.Strategies)
		res := &experiment.Result{Config: cfg}
		for ni, n := range cfg.NPTGs {
			perStratUnf := make([][]float64, ns)
			perStratMak := make([][]float64, ns)
			perStratRel := make([][]float64, ns)
			runs := 0
			for _, r := range groups[c.Index*nNPTGs+ni] {
				if len(r.Unfairness) != ns || len(r.Makespan) != ns || len(r.Rel) != ns {
					return nil, fmt.Errorf("scenario: result %d has wrong strategy count", r.Index)
				}
				runs++
				for s := 0; s < ns; s++ {
					perStratUnf[s] = append(perStratUnf[s], r.Unfairness[s])
					perStratMak[s] = append(perStratMak[s], r.Makespan[s])
					perStratRel[s] = append(perStratRel[s], r.Rel[s])
				}
			}
			pt := experiment.Point{
				NPTGs:          n,
				Unfairness:     make([]float64, ns),
				AvgMakespan:    make([]float64, ns),
				RelMakespan:    make([]float64, ns),
				UnfairnessStd:  make([]float64, ns),
				RelMakespanStd: make([]float64, ns),
				Runs:           runs,
			}
			for s := 0; s < ns; s++ {
				pt.Unfairness[s] = metrics.Mean(perStratUnf[s])
				pt.AvgMakespan[s] = metrics.Mean(perStratMak[s])
				pt.RelMakespan[s] = metrics.Mean(perStratRel[s])
				pt.UnfairnessStd[s] = metrics.StdDev(perStratUnf[s])
				pt.RelMakespanStd[s] = metrics.StdDev(perStratRel[s])
			}
			res.Points = append(res.Points, pt)
		}
		tables = append(tables, Table{Cell: c, Result: res})
	}
	return tables, nil
}

// SortResults orders results by point index in place (shard files may be
// merged in any order before aggregation; Aggregate does not require it,
// but sorted JSONL diffs cleanly).
func SortResults(results []PointResult) {
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
}

// FindPoint resolves a point by canonical name or decimal global index.
func (e *Expansion) FindPoint(key string) (Point, error) {
	var idx int
	if _, err := fmt.Sscanf(key, "%d", &idx); err == nil && fmt.Sprintf("%d", idx) == key {
		if idx < 0 || idx >= len(e.Points) {
			return Point{}, fmt.Errorf("scenario: point index %d outside [0,%d)", idx, len(e.Points))
		}
		return e.Points[idx], nil
	}
	for _, p := range e.Points {
		if p.Name == key {
			return p, nil
		}
	}
	return Point{}, fmt.Errorf("scenario: no point named %q (try an index in [0,%d) or a name like %q)",
		key, len(e.Points), e.Points[0].Name)
}

// Materialize regenerates a point's scenario inputs — the platform and the
// deterministic PTG batch (with arrival times for online cells, all zero
// otherwise) — so callers like ptgsim can rerun and inspect a single point
// in depth. The graphs are fresh instances owned by the caller; the cell
// (strategies, labels, family) is e.Cells[p.Cell].
func (e *Expansion) Materialize(p Point) (pf *platform.Platform, graphs []*dag.Graph, releases []float64) {
	c := e.Cells[p.Cell]
	r := rand.New(rand.NewSource(p.Seed))
	gen := c.Config.Gen
	if gen == nil {
		fam := c.Family
		gen = func(r *rand.Rand) *dag.Graph { return daggen.Generate(fam, r) }
	}
	releases = make([]float64, p.NPTGs)
	if c.Online == nil {
		graphs = make([]*dag.Graph, p.NPTGs)
		for i := range graphs {
			graphs[i] = gen(r)
		}
	} else {
		arrivals := workload.Generate(workload.Spec{
			Family:  c.Family,
			Count:   p.NPTGs,
			Process: c.Online.Process,
			Rate:    c.Online.Rate,
			Gen:     c.Config.Gen,
		}, r)
		graphs = make([]*dag.Graph, len(arrivals))
		for i, a := range arrivals {
			graphs[i] = a.Graph
			releases[i] = a.At
		}
	}
	return e.Platforms[p.Platform], graphs, releases
}
