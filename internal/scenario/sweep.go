package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/experiment"
	"ptgsched/internal/metrics"
	"ptgsched/internal/online"
	"ptgsched/internal/platform"
	"ptgsched/internal/workload"
)

// PointResult is one scenario point's measurement: one value per strategy
// of the point's cell. It is the JSONL wire record of sharded sweeps;
// encoding/json round-trips its float64 values bit-exactly, so shards can
// be recombined without loss.
type PointResult struct {
	Index int    `json:"index"`
	Cell  int    `json:"cell"`
	Name  string `json:"name"`
	// Unfairness is Eq. 5 per strategy (for online cells, the analogous
	// mean-normalized flow-time deviation).
	Unfairness []float64 `json:"unfairness"`
	// Makespan is the global makespan per strategy in seconds (for online
	// cells, the completion time of the last application).
	Makespan []float64 `json:"makespan"`
	// Rel is each strategy's makespan divided by the point's best one.
	Rel []float64 `json:"rel"`
}

// Scratch amortizes one sweep worker's per-point state (the experiment
// layer's simulation and scheduling buffers) across the points a pool slot
// executes. It must be confined to one goroutine. Only static cells draw
// on it — online and dynamic points build their engines per point — and
// the PointResults produced through it are never scratch-owned: their
// slices escape, so results batch and aggregate freely.
type Scratch struct {
	exp *experiment.Scratch
}

// NewScratch returns an empty scratch ready for ComputePointScratch.
func NewScratch() *Scratch {
	return &Scratch{exp: experiment.NewScratch()}
}

// RunPoint executes one scenario point on the calling goroutine.
func (e *Expansion) RunPoint(p Point) PointResult {
	return e.runPoint(p, nil)
}

func (e *Expansion) runPoint(p Point, sc *Scratch) PointResult {
	c := e.Cells[p.Cell]
	if c.Policy != "" {
		return e.runDynamicPoint(c, p)
	}
	if c.Online == nil {
		var m experiment.Measurement
		if sc != nil {
			m = experiment.RunOneWith(c.Config, p.NIdx, p.Rep, p.Platform, sc.exp)
		} else {
			m = experiment.RunOne(c.Config, p.NIdx, p.Rep, p.Platform)
		}
		return PointResult{
			Index: p.Index, Cell: p.Cell, Name: p.Name,
			Unfairness: m.Unfairness, Makespan: m.Makespan, Rel: m.Rel,
		}
	}
	return e.runOnlinePoint(c, p)
}

// runDynamicPoint measures one dynamic-scenario point: the point's
// workload (its arrival process, or a concurrent burst for offline-style
// cells — drawn from the point seed in the same order as the static
// paths), replayed per strategy through the online engine under the
// point's event timeline and the cell's rescheduling policy. Cancelled
// applications are excluded from the flow-time metrics; the relative
// makespans are guarded, since a point whose applications are all
// cancelled has no positive makespan.
func (e *Expansion) runDynamicPoint(c *Cell, p Point) PointResult {
	process, rate := workload.Burst, 0.0
	if c.Online != nil {
		process, rate = c.Online.Process, c.Online.Rate
	}
	r := rand.New(rand.NewSource(p.Seed))
	arrivals := workload.Generate(workload.Spec{
		Family:  c.Family,
		Count:   p.NPTGs,
		Process: process,
		Rate:    rate,
		Gen:     c.Config.Gen,
	}, r)
	timeline := e.TimelineFor(p)
	policy, err := online.PolicyByName(c.Policy)
	if err != nil {
		// Policies were validated at parse time; an unknown one here is an
		// engine bug.
		panic(fmt.Sprintf("scenario: %v", err))
	}

	out := PointResult{
		Index: p.Index, Cell: p.Cell, Name: p.Name,
		Unfairness: make([]float64, len(c.Config.Strategies)),
		Makespan:   make([]float64, len(c.Config.Strategies)),
	}
	pf := e.Platforms[p.Platform]
	for s, strat := range c.Config.Strategies {
		res := online.Schedule(pf, arrivals, online.Options{
			Strategy: strat,
			Timeline: timeline,
			Policy:   policy,
		})
		flows := make([]float64, 0, len(res.Apps))
		for i, app := range res.Apps {
			if res.Cancelled != nil && res.Cancelled[i] {
				continue
			}
			flows = append(flows, app.FlowTime())
		}
		out.Makespan[s] = res.Makespan
		out.Unfairness[s] = flowUnfairness(flows)
	}
	out.Rel = relMakespansGuarded(out.Makespan)
	return out
}

// relMakespansGuarded is metrics.RelativeMakespans with the dynamic case's
// degenerate points allowed: the best makespan is the smallest positive
// one; with none positive (every application cancelled) all ratios are 1,
// and a zero makespan maps to 0. All outputs are finite, keeping the JSONL
// wire format intact.
func relMakespansGuarded(mk []float64) []float64 {
	best := math.Inf(1)
	for _, m := range mk {
		if m > 0 && m < best {
			best = m
		}
	}
	rel := make([]float64, len(mk))
	for i, m := range mk {
		switch {
		case math.IsInf(best, 1):
			rel[i] = 1
		case m <= 0:
			rel[i] = 0
		default:
			rel[i] = m / best
		}
	}
	return rel
}

// runOnlinePoint measures one dynamic-arrivals point: a workload drawn
// from the point's seed is replayed under every strategy of the cell.
func (e *Expansion) runOnlinePoint(c *Cell, p Point) PointResult {
	r := rand.New(rand.NewSource(p.Seed))
	arrivals := workload.Generate(workload.Spec{
		Family:  c.Family,
		Count:   p.NPTGs,
		Process: c.Online.Process,
		Rate:    c.Online.Rate,
		Gen:     c.Config.Gen,
	}, r)

	out := PointResult{
		Index: p.Index, Cell: p.Cell, Name: p.Name,
		Unfairness: make([]float64, len(c.Config.Strategies)),
		Makespan:   make([]float64, len(c.Config.Strategies)),
	}
	pf := e.Platforms[p.Platform]
	for s, strat := range c.Config.Strategies {
		res := online.Schedule(pf, arrivals, online.Options{Strategy: strat})
		flows := make([]float64, len(res.Apps))
		for i, app := range res.Apps {
			flows[i] = app.FlowTime()
		}
		out.Makespan[s] = res.Makespan
		out.Unfairness[s] = flowUnfairness(flows)
	}
	out.Rel = metrics.RelativeMakespans(out.Makespan)
	return out
}

// flowUnfairness is the online analog of Eq. 5: flow times are normalized
// by their mean (the role M_own plays offline is not defined for dynamic
// arrivals) and the absolute deviations from 1 are summed.
func flowUnfairness(flows []float64) float64 {
	mean := metrics.Mean(flows)
	if mean <= 0 {
		return 0
	}
	u := 0.0
	for _, f := range flows {
		u += math.Abs(f/mean - 1)
	}
	return u
}

// Run executes the set's points (all of them, or one shard) over a fixed
// pool of workers goroutines (0 = GOMAXPROCS, ≤1 = inline) and returns
// their results in point order. Results are bit-identical at every worker
// count: each point derives its whole scenario from its own seed. The
// result slice is materialized; sweeps too large for that stream through
// RunEach (or a store.Sweep) instead.
func (e *Expansion) Run(set IndexSet, workers int) []PointResult {
	return e.RunMemo(set, workers, nil)
}

// RunEach executes the set's points over the same worker pool, delivering
// each result to emit as it completes instead of materializing a slice —
// the streaming form of Run. Each worker gathers its results into a
// private batch and flushes it to emit in one mutex acquisition, so the
// emit lock is taken once per defaultEmitBatch points, not once per
// point. emit calls are serialized (one at a time), arrive in completion
// order within a batch and in no particular order across batches; callers
// needing order feed an Aggregator, which accepts any order. The first
// emit error stops the sweep (already-running points drain; their not-yet-
// flushed batches are discarded) and is returned.
func (e *Expansion) RunEach(set IndexSet, workers int, emit func(PointResult) error) error {
	return e.runEach(set, workers, 0, false, nil, emit)
}

// RunEachBatch is RunEach with an explicit per-worker flush batch size
// (≤ 0 selects the default). The batch size changes flush granularity —
// latency of results reaching emit, nothing else; the emitted result set
// is identical for every value. Exposed so the determinism suite can pin
// extreme batch shapes.
func (e *Expansion) RunEachBatch(set IndexSet, workers, batch int, emit func(PointResult) error) error {
	return e.runEach(set, workers, batch, false, nil, emit)
}

// RunEachIsolated is RunEach with per-point panic isolation: a panicking
// point (a degenerate generated scenario) is converted into the returned
// error instead of unwinding a worker goroutine. The service layer
// streams campaigns through it so one bad point fails one request, not
// the process.
func (e *Expansion) RunEachIsolated(set IndexSet, workers int, emit func(PointResult) error) error {
	return e.runEach(set, workers, 0, true, nil, emit)
}

// RunEachIsolatedBatch is RunEachIsolated with an explicit batch size,
// the isolation-enabled twin of RunEachBatch.
func (e *Expansion) RunEachIsolatedBatch(set IndexSet, workers, batch int, emit func(PointResult) error) error {
	return e.runEach(set, workers, batch, true, nil, emit)
}

// defaultEmitBatch is the per-worker flush granularity of the streaming
// sweep runners: small enough that consumers (JSONL sinks, progress
// reporting) see results promptly, large enough that the emit mutex stops
// being a contention point at high worker counts.
const defaultEmitBatch = 64

func (e *Expansion) runEach(set IndexSet, workers, batch int, isolate bool, m Memo, emit func(PointResult) error) error {
	if batch <= 0 {
		batch = defaultEmitBatch
	}
	n := set.Len()
	// Per-worker state: the scratch arena points are computed with and the
	// result batch flushed wholesale. Slots are goroutine-confined by
	// ForEachWorker, so none of this needs its own locking.
	type workerState struct {
		sc  *Scratch
		buf []PointResult
	}
	states := make([]workerState, experiment.Workers(n, workers))
	var (
		mu       sync.Mutex
		firstErr error
		stop     atomic.Bool
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	// flush drains one worker's batch through emit under a single mutex
	// acquisition. After a failure the batch is discarded unsent — the
	// sweep is already stopping and partial output past the first error is
	// not part of RunEach's contract.
	flush := func(ws *workerState) {
		if len(ws.buf) == 0 {
			return
		}
		mu.Lock()
		for i := range ws.buf {
			if firstErr != nil {
				break
			}
			if err := emit(ws.buf[i]); err != nil {
				firstErr = err
				stop.Store(true)
			}
		}
		mu.Unlock()
		ws.buf = ws.buf[:0]
	}
	experiment.ForEachWorker(n, workers, func(w, j int) {
		if stop.Load() {
			return
		}
		ws := &states[w]
		if isolate {
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("scenario: point %d panicked: %v", set.At(j), r))
				}
			}()
		}
		if ws.sc == nil {
			ws.sc = NewScratch()
		}
		ws.buf = append(ws.buf, e.ComputePointScratch(ws.sc, e.PointAt(set.At(j)), m))
		if len(ws.buf) >= batch {
			flush(ws)
		}
	})
	// Workers have all returned; drain the partial batches. flush itself
	// skips emitting once a failure is recorded.
	for w := range states {
		flush(&states[w])
	}
	return firstErr
}

// WriteJSONL streams results as JSON Lines: one compact PointResult object
// per line, the shard interchange format. One encode buffer is reused for
// the whole set (via AppendJSONL), so writing allocates only while the
// longest line grows.
func WriteJSONL(w io.Writer, results []PointResult) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := range results {
		var err error
		buf, err = AppendJSONL(buf[:0], results[i])
		if err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONLFunc streams results written by WriteJSONL through fn, one
// record at a time, without materializing the set; blank lines are
// skipped, so concatenated shard files read back directly. It is the
// memory-flat reader behind merge flows: fed into an Aggregator, a
// multi-million-point result file reduces without ever being resident.
func ReadJSONLFunc(r io.Reader, fn func(PointResult) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var pr PointResult
		if err := json.Unmarshal(text, &pr); err != nil {
			return fmt.Errorf("scenario: jsonl line %d: %w", line, err)
		}
		if err := fn(pr); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadJSONL loads results written by WriteJSONL into a slice — the
// materialized convenience over ReadJSONLFunc for small result sets.
func ReadJSONL(r io.Reader) ([]PointResult, error) {
	var out []PointResult
	if err := ReadJSONLFunc(r, func(pr PointResult) error {
		out = append(out, pr)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Table is one cell's aggregated campaign outcome: Result carries the
// paper's summary metrics (one point per NPTGs value, one column per
// strategy) and renders through the experiment package's table and CSV
// writers.
type Table struct {
	Cell   *Cell
	Result *experiment.Result
}

// Aggregate reduces a complete result set — one unsharded run, or the
// recombined outputs of all shards — into per-cell summary tables: the
// materialized convenience over Aggregator for result sets already held in
// a slice. Incomplete or duplicated result sets are rejected.
func (e *Expansion) Aggregate(results []PointResult) ([]Table, error) {
	if len(results) != e.numPoints {
		return nil, fmt.Errorf("scenario: %d results for %d points (missing shards?)",
			len(results), e.numPoints)
	}
	agg := e.NewAggregator()
	for i := range results {
		if err := agg.Add(results[i]); err != nil {
			return nil, err
		}
	}
	return agg.Tables()
}

// SortResults orders results by point index in place (shard files may be
// merged in any order before aggregation; Aggregate does not require it,
// but sorted JSONL diffs cleanly).
func SortResults(results []PointResult) {
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
}

// FindPoint resolves a point by canonical name or decimal global index.
// The name form is parsed back into its (cell, NPTGs, repetition,
// platform) coordinates and the index computed arithmetically — O(cells),
// never a scan over the (possibly enormous) point space.
func (e *Expansion) FindPoint(key string) (Point, error) {
	var idx int
	if _, err := fmt.Sscanf(key, "%d", &idx); err == nil && fmt.Sprintf("%d", idx) == key {
		if idx < 0 || idx >= e.numPoints {
			return Point{}, fmt.Errorf("scenario: point index %d outside [0,%d)", idx, e.numPoints)
		}
		return e.PointAt(idx), nil
	}
	if p, ok := e.findPointByName(key); ok {
		return p, nil
	}
	example := ""
	if e.numPoints > 0 {
		example = e.PointAt(0).Name
	}
	return Point{}, fmt.Errorf("scenario: no point named %q (try an index in [0,%d) or a name like %q)",
		key, e.numPoints, example)
}

// findPointByName inverts the canonical "<cell>/n=<n>/rep=<rep>/<site>"
// name: each cell label is tried as a prefix (labels never contain the
// "/n=" separator), the remaining coordinates are parsed, and the final
// PointAt regenerates the name to confirm the match — so an ambiguous
// parse can reject, never mis-resolve.
func (e *Expansion) findPointByName(key string) (Point, bool) {
	nPf := len(e.Platforms)
	for ci, c := range e.Cells {
		rest, ok := strings.CutPrefix(key, c.Label+"/n=")
		if !ok {
			continue
		}
		nStr, rest, ok := strings.Cut(rest, "/rep=")
		if !ok {
			continue
		}
		repStr, pfName, ok := strings.Cut(rest, "/")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(nStr)
		if err != nil {
			continue
		}
		rep, err := strconv.Atoi(repStr)
		if err != nil || rep < 0 || rep >= e.reps {
			continue
		}
		ni := -1
		for i, v := range e.nptgs {
			if v == n {
				ni = i
				break
			}
		}
		pi := -1
		for i, pf := range e.Platforms {
			if pf.Name == pfName {
				pi = i
				break
			}
		}
		if ni < 0 || pi < 0 {
			continue
		}
		idx := ci*e.perCell + (ni*e.reps+rep)*nPf + pi
		if p := e.PointAt(idx); p.Name == key {
			return p, true
		}
	}
	return Point{}, false
}

// Materialize regenerates a point's scenario inputs — the platform and the
// deterministic PTG batch (with arrival times for online cells, all zero
// otherwise) — so callers like ptgsim can rerun and inspect a single point
// in depth. The graphs are fresh instances owned by the caller; the cell
// (strategies, labels, family) is e.Cells[p.Cell].
func (e *Expansion) Materialize(p Point) (pf *platform.Platform, graphs []*dag.Graph, releases []float64) {
	c := e.Cells[p.Cell]
	r := rand.New(rand.NewSource(p.Seed))
	gen := c.Config.Gen
	if gen == nil {
		fam := c.Family
		gen = func(r *rand.Rand) *dag.Graph { return daggen.Generate(fam, r) }
	}
	releases = make([]float64, p.NPTGs)
	if c.Online == nil {
		graphs = make([]*dag.Graph, p.NPTGs)
		for i := range graphs {
			graphs[i] = gen(r)
		}
	} else {
		arrivals := workload.Generate(workload.Spec{
			Family:  c.Family,
			Count:   p.NPTGs,
			Process: c.Online.Process,
			Rate:    c.Online.Rate,
			Gen:     c.Config.Gen,
		}, r)
		graphs = make([]*dag.Graph, len(arrivals))
		for i, a := range arrivals {
			graphs[i] = a.Graph
			releases[i] = a.At
		}
	}
	return e.Platforms[p.Platform], graphs, releases
}
