package scenario

// Determinism suite for the batched sweep runners: the emitted result set,
// the aggregated campaign tables, and the JSONL wire bytes must be
// bit-identical across every worker count × emit batch size combination,
// and the streaming error semantics (first emit error stops the sweep,
// per-point panic isolation) must survive the batching. Run under -race
// in CI's multicore lane.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ptgsched/internal/dag"
)

// determinismSpec covers two static cells (strassen and a fixed FFT size)
// across two sites: 2 cells × 2 NPTGs × 3 reps × 2 platforms = 24 points,
// enough for every worker/batch shape below to split unevenly.
const determinismSpec = `{
	"name": "determinism",
	"seed": 77,
	"reps": 3,
	"nptgs": [2, 3],
	"platforms": ["lille", "rennes"],
	"families": [{"family": "strassen"}, {"family": "fft", "k": [2]}]
}`

// jsonlBytes pins results to their wire form: byte equality here is the
// bit-identity test (PointResult round-trips float64 exactly).
func jsonlBytes(t *testing.T, results []PointResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunEachBatchWorkerAndBatchInvariance(t *testing.T) {
	e := mustExpand(t, mustParse(t, determinismSpec))
	set := e.All()

	baseline := e.Run(set, 1)
	wantJSONL := jsonlBytes(t, baseline)
	wantTables, err := e.Aggregate(baseline)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		for _, batch := range []int{1, 16, 256} {
			for _, isolated := range []bool{false, true} {
				name := fmt.Sprintf("workers=%d/batch=%d", workers, batch)
				runner := e.RunEachBatch
				if isolated {
					name += "/isolated"
					runner = e.RunEachIsolatedBatch
				}
				t.Run(name, func(t *testing.T) {
					var got []PointResult
					if err := runner(set, workers, batch, func(r PointResult) error {
						got = append(got, r)
						return nil
					}); err != nil {
						t.Fatal(err)
					}
					if len(got) != set.Len() {
						t.Fatalf("emitted %d results, want %d", len(got), set.Len())
					}
					SortResults(got)
					if !bytes.Equal(jsonlBytes(t, got), wantJSONL) {
						t.Fatal("emitted results differ from the 1-worker reference")
					}
					tables, err := e.Aggregate(got)
					if err != nil {
						t.Fatal(err)
					}
					for i := range tables {
						if !reflect.DeepEqual(tables[i].Result.Points, wantTables[i].Result.Points) {
							t.Fatalf("cell %d tables differ from the 1-worker reference", i)
						}
					}
				})
			}
		}
	}
}

// TestRunEachBatchFirstErrorStops pins the contract the batching must not
// erode: after emit returns an error, no further result is emitted —
// buffered batches are discarded, not delivered — and the sweep returns
// exactly that error.
func TestRunEachBatchFirstErrorStops(t *testing.T) {
	e := mustExpand(t, mustParse(t, determinismSpec))
	set := e.All()
	sentinel := errors.New("sink full")

	for _, workers := range []int{1, 2, 8} {
		for _, batch := range []int{1, 16, 256} {
			emitted, after := 0, 0
			err := e.RunEachBatch(set, workers, batch, func(PointResult) error {
				if emitted == 5 {
					emitted++
					return sentinel
				}
				if emitted > 5 {
					after++
				}
				emitted++
				return nil
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("workers=%d batch=%d: err = %v, want the emit error", workers, batch, err)
			}
			if after != 0 {
				t.Fatalf("workers=%d batch=%d: %d results emitted after the error", workers, batch, after)
			}
		}
	}
}

// TestRunEachIsolatedBatchPanicIsolation: a panicking point must surface
// as an error from the isolated runner (not unwind a worker goroutine),
// at every worker count and batch size.
func TestRunEachIsolatedBatchPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, batch := range []int{1, 16, 256} {
			e := mustExpand(t, mustParse(t, determinismSpec))
			// Every point of cell 0 panics inside its generator; cell 1
			// stays healthy, so workers cross the failure mid-sweep.
			e.Cells[0].Config.Gen = func(*rand.Rand) *dag.Graph {
				panic("degenerate scenario")
			}
			err := e.RunEachIsolatedBatch(e.All(), workers, batch, func(PointResult) error { return nil })
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("workers=%d batch=%d: err = %v, want a panic conversion", workers, batch, err)
			}
		}
	}
}

// TestRunMemoWorkerInvariance covers the scratch-threaded materializing
// runner the batched path shares its per-worker state discipline with.
func TestRunMemoWorkerInvariance(t *testing.T) {
	e := mustExpand(t, mustParse(t, determinismSpec))
	set := e.All()
	want := jsonlBytes(t, e.Run(set, 1))
	for _, workers := range []int{2, 8} {
		if got := jsonlBytes(t, e.Run(set, workers)); !bytes.Equal(got, want) {
			t.Fatalf("Run with %d workers differs from 1-worker reference", workers)
		}
	}
}
