package scenario

import (
	"fmt"

	"ptgsched/internal/bitset"
	"ptgsched/internal/experiment"
	"ptgsched/internal/metrics"
)

// Aggregator is the incremental, order-insensitive campaign reduction:
// results are fed one at a time with Add — in any order, from any shard,
// store segment or stream — and reduce into fixed per-cell slots, so the
// final Tables are bit-identical to experiment.Run's reduction order no
// matter how the results arrived. It is the streaming replacement for
// materializing a full []PointResult: memory is 3 float64 slots per
// (point, strategy) plus one seen-bit per point, independent of result
// names, slice headers or arrival buffering.
//
// Concurrency: an Aggregator is not synchronized; stream into it from one
// goroutine (Expansion.RunEach already serializes its emit calls).
type Aggregator struct {
	e *Expansion
	// groups[g] is the slot block of group g = cell*len(nptgs) + nidx,
	// allocated on first touch: a flat [metric][strategy][slot] layout of
	// 3 × ns × (reps × platforms) float64s. Slot order within a group is
	// (rep, platform) — exactly the global enumeration order — so the
	// final Mean/StdDev passes sum in experiment.Run's order regardless of
	// the order the slots were filled in.
	groups [][]float64
	seen   bitset.Set
	added  int
}

// NewAggregator returns an empty incremental reduction over the expansion.
func (e *Expansion) NewAggregator() *Aggregator {
	return &Aggregator{
		e:      e,
		groups: make([][]float64, len(e.Cells)*len(e.nptgs)),
		seen:   bitset.New(e.numPoints),
	}
}

// Added returns the number of results absorbed so far.
func (a *Aggregator) Added() int { return a.added }

// Seen reports whether point i's result has already been absorbed. It is
// the membership view of the duplicate check Add enforces, so a caller
// merging streams that may overlap (a coordinator re-fetching a
// reassigned shard, a resumed merge) can skip duplicates instead of
// treating Add's rejection as an error.
func (a *Aggregator) Seen(i int) bool { return a.seen.Get(i) }

// Add absorbs one point result, validating it against the expansion:
// out-of-range indices, duplicates, cell mismatches (a stale shard) and
// wrong strategy counts are rejected.
func (a *Aggregator) Add(r PointResult) error {
	e := a.e
	if r.Index < 0 || r.Index >= e.numPoints {
		return fmt.Errorf("scenario: result index %d outside expansion", r.Index)
	}
	if r.Cell != e.CellOf(r.Index) {
		return fmt.Errorf("scenario: result %d is for cell %d, expansion says %d (stale shard?)",
			r.Index, r.Cell, e.CellOf(r.Index))
	}
	ns := len(e.Cells[r.Cell].Config.Strategies)
	if len(r.Unfairness) != ns || len(r.Makespan) != ns || len(r.Rel) != ns {
		return fmt.Errorf("scenario: result %d has wrong strategy count", r.Index)
	}
	if a.seen.Set(r.Index) {
		return fmt.Errorf("scenario: duplicate result for point %d", r.Index)
	}
	a.added++

	nPf := len(e.Platforms)
	rem := r.Index % e.perCell
	ni := rem / (e.reps * nPf)
	rem %= e.reps * nPf
	slot := rem // rep*nPf + platform: the point's position in its group
	slots := e.reps * nPf

	g := r.Cell*len(e.nptgs) + ni
	buf := a.groups[g]
	if buf == nil {
		buf = make([]float64, 3*ns*slots)
		a.groups[g] = buf
	}
	for s := 0; s < ns; s++ {
		buf[(0*ns+s)*slots+slot] = r.Unfairness[s]
		buf[(1*ns+s)*slots+slot] = r.Makespan[s]
		buf[(2*ns+s)*slots+slot] = r.Rel[s]
	}
	return nil
}

// Tables finalizes the reduction into per-cell summary tables. The result
// set must be complete — every point added exactly once (duplicates were
// already rejected by Add). The reduction visits slots in global point
// order regardless of arrival order, so recombined shards aggregate
// bit-identically to an unsharded run; it is also exactly experiment.Run's
// reduction, so a spec mirroring a paper figure reproduces that figure's
// numbers.
func (a *Aggregator) Tables() ([]Table, error) {
	e := a.e
	if a.added != e.numPoints {
		return nil, fmt.Errorf("scenario: %d results for %d points (missing shards?)",
			a.added, e.numPoints)
	}
	slots := e.reps * len(e.Platforms)
	var tables []Table
	for _, c := range e.Cells {
		cfg := c.Config
		ns := len(cfg.Strategies)
		res := &experiment.Result{Config: cfg}
		for ni, n := range cfg.NPTGs {
			buf := a.groups[c.Index*len(e.nptgs)+ni]
			pt := experiment.Point{
				NPTGs:          n,
				Unfairness:     make([]float64, ns),
				AvgMakespan:    make([]float64, ns),
				RelMakespan:    make([]float64, ns),
				UnfairnessStd:  make([]float64, ns),
				RelMakespanStd: make([]float64, ns),
				Runs:           slots,
			}
			for s := 0; s < ns; s++ {
				unf := buf[(0*ns+s)*slots : (0*ns+s)*slots+slots]
				mak := buf[(1*ns+s)*slots : (1*ns+s)*slots+slots]
				rel := buf[(2*ns+s)*slots : (2*ns+s)*slots+slots]
				pt.Unfairness[s] = metrics.Mean(unf)
				pt.AvgMakespan[s] = metrics.Mean(mak)
				pt.RelMakespan[s] = metrics.Mean(rel)
				pt.UnfairnessStd[s] = metrics.StdDev(unf)
				pt.RelMakespanStd[s] = metrics.StdDev(rel)
			}
			res.Points = append(res.Points, pt)
		}
		tables = append(tables, Table{Cell: c, Result: res})
	}
	return tables, nil
}
