package events_test

// Unit tests of the event-timeline layer: canonical ordering, down-window
// derivation, worst-case event budgeting, spec validation, and the
// determinism and platform-size independence of Generate.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ptgsched/internal/events"
)

func TestSortCanonicalOrder(t *testing.T) {
	tl := events.Timeline{
		{At: 5, Kind: events.Resubmit, App: 0},
		{At: 5, Kind: events.ClusterUp, Cluster: 1},
		{At: 2, Kind: events.Cancel, App: 0},
		{At: 5, Kind: events.ClusterDown, Cluster: 0},
		{At: 5, Kind: events.SpeedChange, Cluster: 0, Factor: 2},
	}
	tl.Sort()
	want := []events.Kind{events.Cancel, events.ClusterUp, events.SpeedChange, events.ClusterDown, events.Resubmit}
	for i, ev := range tl {
		if ev.Kind != want[i] {
			t.Fatalf("position %d: %s, want %s (full: %v)", i, ev.Kind, want[i], tl)
		}
	}
}

func TestDownIntervals(t *testing.T) {
	tl := events.Timeline{
		{At: 10, Kind: events.ClusterDown, Cluster: 0},
		{At: 12, Kind: events.ClusterDown, Cluster: 0}, // repeat: ignored
		{At: 20, Kind: events.ClusterUp, Cluster: 0},
		{At: 25, Kind: events.ClusterUp, Cluster: 0},   // already up: ignored
		{At: 30, Kind: events.ClusterDown, Cluster: 0}, // never recovers
		{At: 5, Kind: events.ClusterDown, Cluster: 2},
		{At: 6, Kind: events.ClusterUp, Cluster: 2},
		{At: 1, Kind: events.ClusterDown, Cluster: 9}, // out of range: dropped
	}
	tl.Sort()
	ivs := tl.DownIntervals(3)
	if len(ivs[0]) != 2 || ivs[0][0] != (events.Interval{From: 10, To: 20}) ||
		ivs[0][1].From != 30 || !math.IsInf(ivs[0][1].To, 1) {
		t.Fatalf("cluster 0 windows: %v", ivs[0])
	}
	if len(ivs[1]) != 0 {
		t.Fatalf("cluster 1 windows: %v", ivs[1])
	}
	if len(ivs[2]) != 1 || ivs[2][0] != (events.Interval{From: 5, To: 6}) {
		t.Fatalf("cluster 2 windows: %v", ivs[2])
	}
}

func TestIntervalOverlapsBoundary(t *testing.T) {
	iv := events.Interval{From: 10, To: 20}
	const tol = 1e-9
	if iv.Overlaps(0, 10, tol) || iv.Overlaps(20, 30, tol) {
		t.Fatal("boundary contact counted as overlap")
	}
	if !iv.Overlaps(19, 21, tol) || !iv.Overlaps(0, 30, tol) || !iv.Overlaps(12, 13, tol) {
		t.Fatal("real overlap missed")
	}
}

func TestSpecEmptyAndCount(t *testing.T) {
	var nilSpec *events.Spec
	if !nilSpec.Empty() || nilSpec.Count() != 0 {
		t.Fatal("nil spec not empty")
	}
	if !(&events.Spec{Policies: []string{"restart"}}).Empty() {
		t.Fatal("policies alone should not make a spec non-empty")
	}
	s := &events.Spec{
		Failures: []events.FailureSpec{
			{Cluster: 0, At: 5, Duration: 2},            // down + up
			{Cluster: 1, MTTF: 100, MTTR: 10, Count: 3}, // 3 cycles
		},
		SpeedChanges: []events.SpeedChangeSpec{{Cluster: 0, At: 1, Factor: 2}},
		Cancels: []events.CancelSpec{
			{App: 0, At: 1},                   // cancel only
			{App: 1, At: 2, ResubmitAfter: 3}, // cancel + resubmit
		},
	}
	if s.Empty() {
		t.Fatal("populated spec reported empty")
	}
	if got, want := s.Count(), 2+6+1+1+2; got != want {
		t.Fatalf("Count %d, want %d", got, want)
	}
}

func TestSpecValidateRejections(t *testing.T) {
	cases := []events.Spec{
		{Failures: []events.FailureSpec{{Cluster: -1, At: 1}}},
		{Failures: []events.FailureSpec{{Cluster: 0, At: math.Inf(1)}}},
		{Failures: []events.FailureSpec{{Cluster: 0, At: 1, Duration: -2}}},
		{Failures: []events.FailureSpec{{Cluster: 0, At: 1, MTTF: 5, MTTR: 1}}}, // both forms
		{Failures: []events.FailureSpec{{Cluster: 0, MTTF: 5}}},                 // process without mttr
		{Failures: []events.FailureSpec{{Cluster: 0, MTTF: 5, MTTR: 1, Count: events.MaxTimelineEvents}}},
		{SpeedChanges: []events.SpeedChangeSpec{{Cluster: 0, At: 1, Factor: 0}}},
		{SpeedChanges: []events.SpeedChangeSpec{{Cluster: 0, At: -1, Factor: 1}}},
		{Cancels: []events.CancelSpec{{App: -1, At: 1}}},
		{Cancels: []events.CancelSpec{{App: 0, At: 1, ResubmitAfter: math.NaN()}}},
		{Cancels: []events.CancelSpec{{App: 0, At: 1}}, Policies: []string{""}},
	}
	for i := range cases {
		if err := cases[i].Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, cases[i])
		}
	}
	ok := events.Spec{Failures: []events.FailureSpec{{Cluster: 0, At: 5}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid permanent scripted failure rejected: %v", err)
	}
}

func TestPermanentDowns(t *testing.T) {
	s := &events.Spec{Failures: []events.FailureSpec{
		{Cluster: 2, At: 5},              // permanent
		{Cluster: 0, At: 1, Duration: 3}, // recovers
		{Cluster: 1, MTTF: 10, MTTR: 2},  // process: always recovers
		{Cluster: 7, At: 1},              // beyond the platform: not counted
	}}
	if got := s.PermanentDowns(3); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("PermanentDowns %v, want [2]", got)
	}
}

// TestGenerateDeterministicAndSizeIndependent: the same seed reproduces
// the same timeline, and a process entry targeting a cluster the platform
// lacks still consumes its draws, so later entries land identically on
// any platform size.
func TestGenerateDeterministicAndSizeIndependent(t *testing.T) {
	s := &events.Spec{Failures: []events.FailureSpec{
		{Cluster: 5, MTTF: 100, MTTR: 10}, // exists only on big platforms
		{Cluster: 0, MTTF: 50, MTTR: 5},
	}}
	gen := func(nClusters int) events.Timeline {
		return s.Generate(nClusters, 1, rand.New(rand.NewSource(42)))
	}
	if !reflect.DeepEqual(gen(2), gen(2)) {
		t.Fatal("same seed drew different timelines")
	}
	small, big := gen(2), gen(8)
	// On the small platform the cluster-5 entry is dropped; the cluster-0
	// events must still be exactly the big platform's cluster-0 events.
	var bigC0 events.Timeline
	for _, ev := range big {
		if ev.Cluster == 0 {
			bigC0 = append(bigC0, ev)
		}
	}
	if !reflect.DeepEqual(small, bigC0) {
		t.Fatalf("cluster-0 draws depend on platform size:\n  small: %v\n  big c0: %v", small, bigC0)
	}
	for i := 1; i < len(small); i++ {
		prev, cur := small[i-1], small[i]
		if cur.At < prev.At {
			t.Fatalf("generated timeline not sorted: %v", small)
		}
	}
}

func TestGenerateScriptedAndWorkloadEvents(t *testing.T) {
	s := &events.Spec{
		Failures:     []events.FailureSpec{{Cluster: 1, At: 10, Duration: 5}},
		SpeedChanges: []events.SpeedChangeSpec{{Cluster: 0, At: 3, Factor: 0.5}},
		Cancels:      []events.CancelSpec{{App: 2, At: 7, ResubmitAfter: 4}, {App: 9, At: 1}},
	}
	tl := s.Generate(2, 3, rand.New(rand.NewSource(1)))
	// App 9 does not exist on a 3-app point; everything else lands.
	want := events.Timeline{
		{At: 3, Kind: events.SpeedChange, Cluster: 0, Factor: 0.5},
		{At: 7, Kind: events.Cancel, App: 2},
		{At: 10, Kind: events.ClusterDown, Cluster: 1},
		{At: 11, Kind: events.Resubmit, App: 2},
		{At: 15, Kind: events.ClusterUp, Cluster: 1},
	}
	if !reflect.DeepEqual(tl, want) {
		t.Fatalf("generated timeline:\n  got  %v\n  want %v", tl, want)
	}
}
