// Package events models dynamic-scenario timelines: platform events
// (cluster failures, recoveries, speed changes) and workload events
// (application cancellation and resubmission) that mutate a scheduling
// scenario mid-execution. A Timeline is the fully materialized, sorted
// event list one scenario point runs under; a Spec is the declarative
// description campaign specs carry — scripted entries plus random
// failure/repair processes — from which per-point timelines are drawn
// deterministically (same spec, same seed: bit-identical timeline, on any
// shard, in any order).
//
// The package holds only data and pure derivations so every layer can
// share it without cycles: the online scheduler consumes timelines, the
// trace oracle validates against them, and the scenario engine generates
// them per point.
//
// Concurrency: Spec and Timeline values are immutable after construction;
// Generate is pure given its *rand.Rand (one source per caller).
package events

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind discriminates timeline events.
type Kind int

const (
	// ClusterDown takes a cluster out of service: its running and
	// committed placements are killed and nothing may be placed on it
	// until a ClusterUp.
	ClusterDown Kind = iota
	// ClusterUp returns a failed cluster to service.
	ClusterUp
	// SpeedChange sets a cluster's per-processor speed to Factor times its
	// original speed.
	SpeedChange
	// Cancel withdraws an application: its in-flight work is killed and
	// its completed work discarded.
	Cancel
	// Resubmit re-enters a previously cancelled application from scratch.
	Resubmit
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ClusterDown:
		return "cluster-down"
	case ClusterUp:
		return "cluster-up"
	case SpeedChange:
		return "speed-change"
	case Cancel:
		return "cancel"
	case Resubmit:
		return "resubmit"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one timeline entry. Cluster indexes the platform's cluster
// list for platform events; App indexes the arrival order for workload
// events; Factor is the speed multiplier of SpeedChange events.
type Event struct {
	At      float64 `json:"at"`
	Kind    Kind    `json:"kind"`
	Cluster int     `json:"cluster,omitempty"`
	Factor  float64 `json:"factor,omitempty"`
	App     int     `json:"app,omitempty"`
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Kind {
	case ClusterDown, ClusterUp:
		return fmt.Sprintf("t=%g %s cluster %d", e.At, e.Kind, e.Cluster)
	case SpeedChange:
		return fmt.Sprintf("t=%g %s cluster %d ×%g", e.At, e.Kind, e.Cluster, e.Factor)
	default:
		return fmt.Sprintf("t=%g %s app %d", e.At, e.Kind, e.App)
	}
}

// rank orders same-instant events deterministically: completions are
// handled by the scheduler first (outside this package), then recoveries
// (capacity returns before anything is decided), speed changes, failures
// (a task finishing exactly at the failure instant survives), cancels and
// resubmissions.
func (k Kind) rank() int {
	switch k {
	case ClusterUp:
		return 0
	case SpeedChange:
		return 1
	case ClusterDown:
		return 2
	case Cancel:
		return 3
	case Resubmit:
		return 4
	default:
		return 5
	}
}

// Timeline is a sorted event sequence: ascending time, same-instant events
// ordered by kind rank, insertion order last — a total, deterministic
// order.
type Timeline []Event

// Sort orders the timeline in place into its canonical order.
func (tl Timeline) Sort() {
	sort.SliceStable(tl, func(i, j int) bool {
		if tl[i].At != tl[j].At {
			return tl[i].At < tl[j].At
		}
		return tl[i].Kind.rank() < tl[j].Kind.rank()
	})
}

// Interval is a half-open time window [From, To); To is +Inf for a window
// that never closes (a permanent failure).
type Interval struct {
	From, To float64
}

// Overlaps reports whether the window overlaps the span [start, end) with
// tolerance tol (a span touching the boundary within tol does not count).
func (iv Interval) Overlaps(start, end, tol float64) bool {
	return start < iv.To-tol && end > iv.From+tol
}

// DownIntervals derives each cluster's outage windows from the timeline's
// ClusterDown/ClusterUp events: one slice of intervals per cluster index
// in [0, nClusters). A down with no matching up yields [t, +Inf); repeated
// downs of an already-down cluster (or ups of an up one) are ignored, the
// interpretation the scheduling engine applies.
func (tl Timeline) DownIntervals(nClusters int) [][]Interval {
	out := make([][]Interval, nClusters)
	downAt := make([]float64, nClusters)
	down := make([]bool, nClusters)
	for _, e := range tl {
		if e.Cluster < 0 || e.Cluster >= nClusters {
			continue
		}
		switch e.Kind {
		case ClusterDown:
			if !down[e.Cluster] {
				down[e.Cluster] = true
				downAt[e.Cluster] = e.At
			}
		case ClusterUp:
			if down[e.Cluster] {
				down[e.Cluster] = false
				out[e.Cluster] = append(out[e.Cluster], Interval{From: downAt[e.Cluster], To: e.At})
			}
		}
	}
	for k := range down {
		if down[k] {
			out[k] = append(out[k], Interval{From: downAt[k], To: math.Inf(1)})
		}
	}
	return out
}

// Restart records one engine rescheduling decision that discarded an
// application's completed work: from At on, every surviving placement of
// the application belongs to a fresh from-scratch execution and must not
// start earlier. The trace oracle validates final placements against these
// records.
type Restart struct {
	App int     `json:"app"`
	At  float64 `json:"at"`
}

// Spec is the declarative event-timeline description a campaign spec
// carries: scripted and process-driven cluster failures, scripted speed
// changes, and application cancellations with optional resubmission.
// Per-point timelines are drawn from it with Generate.
type Spec struct {
	// Failures lists cluster failure sources.
	Failures []FailureSpec `json:"failures,omitempty"`
	// SpeedChanges lists scripted cluster speed changes.
	SpeedChanges []SpeedChangeSpec `json:"speed_changes,omitempty"`
	// Cancels lists scripted application cancellations.
	Cancels []CancelSpec `json:"cancels,omitempty"`
	// Policies names the rescheduling policies to sweep ("restart",
	// "checkpoint"); each becomes one campaign cell axis value. Default
	// restart only.
	Policies []string `json:"policies,omitempty"`
}

// FailureSpec is one cluster failure source: either scripted (At set, with
// Duration 0 meaning the cluster never recovers) or a random
// failure/repair process (MTTF set: exponential time to failure, MTTR
// exponential repair time, Count failure cycles — the process form always
// recovers, so only scripted failures can be permanent).
type FailureSpec struct {
	// Cluster is the platform cluster index the failure applies to;
	// entries referencing clusters a point's platform does not have are
	// dropped for that point.
	Cluster int `json:"cluster"`
	// At is the scripted failure time in seconds.
	At float64 `json:"at,omitempty"`
	// Duration is the scripted outage length; 0 means permanent.
	Duration float64 `json:"duration,omitempty"`
	// MTTF is the mean time to failure of the process form, in seconds.
	MTTF float64 `json:"mttf,omitempty"`
	// MTTR is the mean time to repair of the process form, in seconds.
	MTTR float64 `json:"mttr,omitempty"`
	// Count is the number of failure cycles the process draws; default 1.
	Count int `json:"count,omitempty"`
}

// scripted reports whether the entry is the scripted (non-process) form.
func (f FailureSpec) scripted() bool { return f.MTTF == 0 }

// SpeedChangeSpec is one scripted cluster speed change: at time At the
// cluster's per-processor speed becomes Factor times its original speed
// (factors compose against the original, not the current, speed — the
// entry is idempotent and order-independent within an instant).
type SpeedChangeSpec struct {
	Cluster int     `json:"cluster"`
	At      float64 `json:"at"`
	Factor  float64 `json:"factor"`
}

// CancelSpec cancels application App (by arrival order) at time At and,
// when ResubmitAfter is positive, resubmits it from scratch at
// At+ResubmitAfter. Entries referencing applications a point does not
// have are dropped for that point.
type CancelSpec struct {
	App           int     `json:"app"`
	At            float64 `json:"at"`
	ResubmitAfter float64 `json:"resubmit_after,omitempty"`
}

// MaxTimelineEvents bounds the number of events one point's timeline may
// hold — an engine-level sanity cap mirroring the scenario expansion caps;
// services enforce tighter per-spec budgets on top of it.
const MaxTimelineEvents = 4096

// Empty reports whether the spec describes no event source at all. An
// empty spec behaves exactly like a nil one: the scenario engine treats it
// as "no events axis", so a spec with "events": {} expands — and runs —
// byte-identically to the same spec without the field.
func (s *Spec) Empty() bool {
	return s == nil || (len(s.Failures) == 0 && len(s.SpeedChanges) == 0 && len(s.Cancels) == 0)
}

// Count returns the worst-case number of events one point's timeline can
// hold, the quantity admission caps budget against.
func (s *Spec) Count() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, f := range s.Failures {
		cycles := f.Count
		if cycles <= 0 {
			cycles = 1
		}
		n += 2 * cycles
	}
	n += len(s.SpeedChanges)
	for _, c := range s.Cancels {
		n++
		if c.ResubmitAfter > 0 {
			n++
		}
	}
	return n
}

// finite reports x is a finite float.
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Validate checks the structural constraints Generate relies on.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	for i, f := range s.Failures {
		if f.Cluster < 0 {
			return fmt.Errorf("events: failures[%d]: negative cluster index %d", i, f.Cluster)
		}
		switch {
		case f.scripted():
			if f.At < 0 || !finite(f.At) {
				return fmt.Errorf("events: failures[%d]: scripted failure time %g must be finite and non-negative", i, f.At)
			}
			if f.Duration < 0 || !finite(f.Duration) {
				return fmt.Errorf("events: failures[%d]: duration %g must be finite and non-negative", i, f.Duration)
			}
			if f.MTTR != 0 || f.Count != 0 {
				return fmt.Errorf("events: failures[%d]: mttr/count are process-form fields (set mttf)", i)
			}
		default:
			if f.MTTF < 0 || !finite(f.MTTF) {
				return fmt.Errorf("events: failures[%d]: mttf %g must be finite and positive", i, f.MTTF)
			}
			if f.MTTR <= 0 || !finite(f.MTTR) {
				return fmt.Errorf("events: failures[%d]: process failures need a positive finite mttr (only scripted failures may be permanent)", i)
			}
			if f.At != 0 || f.Duration != 0 {
				return fmt.Errorf("events: failures[%d]: at/duration are scripted-form fields (drop mttf)", i)
			}
			if f.Count < 0 || f.Count > MaxTimelineEvents/2 {
				return fmt.Errorf("events: failures[%d]: count %d outside [0,%d]", i, f.Count, MaxTimelineEvents/2)
			}
		}
	}
	for i, sc := range s.SpeedChanges {
		if sc.Cluster < 0 {
			return fmt.Errorf("events: speed_changes[%d]: negative cluster index %d", i, sc.Cluster)
		}
		if sc.At < 0 || !finite(sc.At) {
			return fmt.Errorf("events: speed_changes[%d]: time %g must be finite and non-negative", i, sc.At)
		}
		if sc.Factor <= 0 || !finite(sc.Factor) {
			return fmt.Errorf("events: speed_changes[%d]: factor %g must be finite and positive", i, sc.Factor)
		}
	}
	for i, c := range s.Cancels {
		if c.App < 0 {
			return fmt.Errorf("events: cancels[%d]: negative application index %d", i, c.App)
		}
		if c.At < 0 || !finite(c.At) {
			return fmt.Errorf("events: cancels[%d]: time %g must be finite and non-negative", i, c.At)
		}
		if c.ResubmitAfter < 0 || !finite(c.ResubmitAfter) {
			return fmt.Errorf("events: cancels[%d]: resubmit_after %g must be finite and non-negative", i, c.ResubmitAfter)
		}
	}
	for i, p := range s.Policies {
		if p == "" {
			return fmt.Errorf("events: policies[%d] is empty", i)
		}
	}
	if n := s.Count(); n > MaxTimelineEvents {
		return fmt.Errorf("events: spec draws up to %d events per point, cap is %d", n, MaxTimelineEvents)
	}
	return nil
}

// PermanentDowns returns the cluster indices (< nClusters) that some
// scripted entry fails permanently. The scenario engine refuses specs
// whose permanent failures would leave a platform with no cluster at all —
// a sweep must always be able to finish.
func (s *Spec) PermanentDowns(nClusters int) []int {
	if s == nil {
		return nil
	}
	perm := make(map[int]bool)
	for _, f := range s.Failures {
		if f.scripted() && f.Duration == 0 && f.Cluster < nClusters {
			perm[f.Cluster] = true
		}
	}
	out := make([]int, 0, len(perm))
	for k := range perm {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Generate draws one point's timeline: scripted entries verbatim, process
// entries from r — so the result is a pure function of (spec, seed).
// Entries referencing clusters ≥ nClusters or applications ≥ nApps are
// dropped (a spec sweeping platforms of different sizes applies each event
// only where its target exists). The returned timeline is in canonical
// order.
func (s *Spec) Generate(nClusters, nApps int, r *rand.Rand) Timeline {
	if s.Empty() {
		return nil
	}
	var tl Timeline
	for _, f := range s.Failures {
		// Process draws consume r even for dropped clusters, so the draws
		// of later entries do not depend on the point's platform size.
		if f.scripted() {
			if f.Cluster >= nClusters {
				continue
			}
			tl = append(tl, Event{At: f.At, Kind: ClusterDown, Cluster: f.Cluster})
			if f.Duration > 0 {
				tl = append(tl, Event{At: f.At + f.Duration, Kind: ClusterUp, Cluster: f.Cluster})
			}
			continue
		}
		cycles := f.Count
		if cycles <= 0 {
			cycles = 1
		}
		t := 0.0
		for c := 0; c < cycles; c++ {
			t += r.ExpFloat64() * f.MTTF
			down := t
			t += r.ExpFloat64() * f.MTTR
			if f.Cluster >= nClusters {
				continue
			}
			tl = append(tl, Event{At: down, Kind: ClusterDown, Cluster: f.Cluster})
			tl = append(tl, Event{At: t, Kind: ClusterUp, Cluster: f.Cluster})
		}
	}
	for _, sc := range s.SpeedChanges {
		if sc.Cluster >= nClusters {
			continue
		}
		tl = append(tl, Event{At: sc.At, Kind: SpeedChange, Cluster: sc.Cluster, Factor: sc.Factor})
	}
	for _, c := range s.Cancels {
		if c.App >= nApps {
			continue
		}
		tl = append(tl, Event{At: c.At, Kind: Cancel, App: c.App})
		if c.ResubmitAfter > 0 {
			tl = append(tl, Event{At: c.At + c.ResubmitAfter, Kind: Resubmit, App: c.App})
		}
	}
	tl.Sort()
	return tl
}
