// Package alloc implements the constrained resource allocation step of the
// paper's two-step scheduling approach (§4): deciding how many processors
// each task of a PTG receives, under a resource constraint β that bounds
// the fraction of the platform's total processing power the PTG may use.
//
// Following HCPA, allocation happens on a homogeneous *reference cluster*
// (platform.Reference): every task is allocated a number of reference
// processors; at mapping time the reference allocation is translated into a
// concrete allocation of equivalent power on the chosen cluster.
//
// Two procedures are provided, both from the authors' earlier work recalled
// in §4. Starting from one processor per task, each iteration gives one
// more processor to the critical-path task that benefits most; they differ
// in how a violation of β is detected:
//
//   - SCRAP: global test — the total task area (time × power) divided by
//     the critical path length must not exceed β times the platform power.
//   - SCRAP-MAX: per-precedence-level test — the summed power of the
//     allocations within any precedence level must not exceed β times the
//     platform power, so that concurrent ready tasks of one level can all
//     run inside the PTG's share.
//
// Concurrency: the package is stateless — Compute keeps all mutable state
// in per-call values — but it drives the cached analyses of the dag.Graph
// it is given, so concurrent calls are safe only on distinct graphs.
package alloc

import (
	"fmt"
	"math"

	"ptgsched/internal/cost"
	"ptgsched/internal/dag"
	"ptgsched/internal/platform"
)

// Procedure selects the constraint-violation test.
type Procedure int

const (
	// SCRAP applies the global area test.
	SCRAP Procedure = iota
	// SCRAPMAX applies the per-precedence-level power test. The paper's
	// evaluation uses only SCRAP-MAX (§4, last paragraph).
	SCRAPMAX
)

// String implements fmt.Stringer.
func (p Procedure) String() string {
	switch p {
	case SCRAP:
		return "SCRAP"
	case SCRAPMAX:
		return "SCRAP-MAX"
	default:
		return fmt.Sprintf("Procedure(%d)", int(p))
	}
}

// Allocation is the result of the allocation step: a number of reference
// processors per task (indexed by task ID).
type Allocation struct {
	Graph *dag.Graph
	Ref   platform.Reference
	Beta  float64
	Procs []int

	// powers is the reusable buffer behind violates' per-level power
	// test: the growth loop runs it once per tentative step, so the
	// buffer amortizes to zero allocations across an entire Compute.
	powers []float64
}

// TimeOf returns the estimated execution time of t on its reference
// allocation.
func (a *Allocation) TimeOf(t *dag.Task) float64 {
	return cost.TaskTime(t, a.Ref.Speed, a.Procs[t.ID])
}

// PowerOf returns the reference processing power consumed by t's
// allocation, in GFlop/s.
func (a *Allocation) PowerOf(t *dag.Task) float64 {
	return float64(a.Procs[t.ID]) * a.Ref.Speed
}

// CriticalPathLength returns the critical path length of the graph under
// the current allocation, ignoring communication (allocation, like CPA,
// reasons on computation only; the mapper accounts for redistribution).
func (a *Allocation) CriticalPathLength() float64 {
	return a.Graph.CriticalPathLength(a.TimeOf, dag.ZeroComm)
}

// TotalArea returns the summed area (execution time × consumed power) of
// all tasks under the current allocation, in GFlop.
func (a *Allocation) TotalArea() float64 {
	area := 0.0
	for _, t := range a.Graph.Tasks {
		area += a.TimeOf(t) * a.PowerOf(t)
	}
	return area
}

// LevelPowers returns, per precedence level, the summed power of the
// allocations of the level's tasks, in GFlop/s.
func (a *Allocation) LevelPowers() []float64 {
	sets := a.Graph.LevelSets()
	powers := make([]float64, len(sets))
	a.levelPowersInto(powers, sets)
	return powers
}

// levelPowersInto computes LevelPowers into powers, which must have
// length len(sets).
func (a *Allocation) levelPowersInto(powers []float64, sets [][]*dag.Task) {
	for l, set := range sets {
		sum := 0.0
		for _, t := range set {
			sum += a.PowerOf(t)
		}
		powers[l] = sum
	}
}

// violates reports whether the allocation breaks the β constraint under the
// given procedure. The minimal allocation (one processor per task) is never
// reported as violating: a task cannot use less than one processor.
func (a *Allocation) violates(proc Procedure) bool {
	minimal := true
	for _, p := range a.Procs {
		if p > 1 {
			minimal = false
			break
		}
	}
	if minimal {
		return false
	}
	budget := a.Beta * a.Ref.Power()
	const tol = 1e-9
	switch proc {
	case SCRAP:
		cp := a.CriticalPathLength()
		if cp <= 0 {
			return false
		}
		return a.TotalArea()/cp > budget*(1+tol)
	case SCRAPMAX:
		sets := a.Graph.LevelSets()
		if len(a.powers) != len(sets) {
			a.powers = make([]float64, len(sets))
		}
		a.levelPowersInto(a.powers, sets)
		for _, p := range a.powers {
			if p > budget*(1+tol) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("alloc: unknown procedure %d", int(proc)))
	}
}

// Respected reports whether the final allocation satisfies its constraint
// (it may not when β is so small that even one processor per task exceeds
// the budget; the paper reports 99% respect across its scenarios).
func (a *Allocation) Respected(proc Procedure) bool { return !a.violates(proc) }

// Compute runs the constrained allocation procedure on g for a platform
// described by ref, under resource constraint beta ∈ (0, 1].
func Compute(g *dag.Graph, ref platform.Reference, beta float64, proc Procedure) *Allocation {
	if beta <= 0 || beta > 1 {
		panic(fmt.Sprintf("alloc: beta %g outside (0,1]", beta))
	}
	if err := g.Validate(false); err != nil {
		panic(fmt.Sprintf("alloc: invalid graph: %v", err))
	}
	a := &Allocation{Graph: g, Ref: ref, Beta: beta, Procs: make([]int, len(g.Tasks))}
	for i := range a.Procs {
		a.Procs[i] = 1
	}

	// saturated marks tasks that can no longer grow: either at the
	// platform size or whose last tentative growth violated the
	// constraint.
	saturated := make([]bool, len(g.Tasks))

	for {
		marks := g.OnCriticalPath(a.TimeOf, dag.ZeroComm)
		best := -1
		bestGain := 0.0
		for _, t := range g.Tasks {
			if !marks[t.ID] || saturated[t.ID] || a.Procs[t.ID] >= ref.Procs {
				continue
			}
			gain := cost.MarginalGain(t, ref.Speed, a.Procs[t.ID])
			if gain > bestGain {
				bestGain = gain
				best = t.ID
			}
		}
		if best < 0 {
			// No critical-path task can grow: either all saturated or no
			// task gains from one more processor (alpha = 1).
			return a
		}
		a.Procs[best]++
		if a.violates(proc) {
			a.Procs[best]--
			saturated[best] = true
			continue
		}
	}
}

// TranslateBatch translates a whole reference allocation vector (indexed by
// task ID) into per-cluster concrete widths in one pass: the result is
// indexed [cluster][taskID]. The mapper evaluates every (task, cluster)
// candidate, so batching the translation hoists the rounding and clamping
// out of its innermost loop while producing exactly Translate's values.
func TranslateBatch(procs []int, ref platform.Reference, clusters []*platform.Cluster) [][]int {
	out := make([][]int, len(clusters))
	flat := make([]int, len(clusters)*len(procs))
	for k, c := range clusters {
		row := flat[k*len(procs) : (k+1)*len(procs)]
		for i, p := range procs {
			row[i] = Translate(p, ref, c)
		}
		out[k] = row
	}
	return out
}

// Translate converts a reference allocation of p processors into an
// allocation on cluster c of (approximately) equivalent processing power,
// as HCPA does on heterogeneous platforms: round(p·s_ref/s_c), clamped to
// [1, c.Procs].
func Translate(p int, ref platform.Reference, c *platform.Cluster) int {
	return TranslateTo(p, ref, c.Procs, c.Speed)
}

// TranslateTo is Translate against an explicit capacity and speed instead
// of a cluster's static ones. The online scheduler uses it under dynamic
// scenarios, where a cluster's effective speed can differ from its
// configured speed; with procs = c.Procs and speed = c.Speed it computes
// exactly Translate's value.
func TranslateTo(p int, ref platform.Reference, procs int, speed float64) int {
	if p < 1 {
		panic(fmt.Sprintf("alloc: translating allocation of %d processors", p))
	}
	q := int(math.Round(float64(p) * ref.Speed / speed))
	if q < 1 {
		q = 1
	}
	if q > procs {
		q = procs
	}
	return q
}
