package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ptgsched/internal/daggen"
	"ptgsched/internal/platform"
)

func ref(procs int, speed float64) platform.Reference {
	return platform.Reference{Procs: procs, Speed: speed}
}

func TestComputeStartsFromOneProcEach(t *testing.T) {
	g := daggen.Random(daggen.RandomConfig{Tasks: 10, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 1, Complexity: daggen.Mixed}, rand.New(rand.NewSource(1)))
	// With a tiny beta nothing can grow beyond the minimal allocation.
	a := Compute(g, ref(100, 3), 1e-9, SCRAPMAX)
	for id, p := range a.Procs {
		if p != 1 {
			t.Errorf("task %d allocated %d procs under minuscule beta, want 1", id, p)
		}
	}
}

func TestComputeGrowsWithBeta(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := daggen.Random(daggen.RandomConfig{Tasks: 20, Width: 0.5, Regularity: 0.5, Density: 0.5, Jump: 2, Complexity: daggen.Mixed}, r)
	total := func(a *Allocation) int {
		n := 0
		for _, p := range a.Procs {
			n += p
		}
		return n
	}
	small := Compute(g, ref(100, 3), 0.1, SCRAPMAX)
	large := Compute(g, ref(100, 3), 1.0, SCRAPMAX)
	if total(large) <= total(small) {
		t.Fatalf("beta=1 total %d <= beta=0.1 total %d", total(large), total(small))
	}
}

func TestComputeReducesCriticalPath(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := daggen.Random(daggen.RandomConfig{Tasks: 20, Width: 0.2, Regularity: 0.8, Density: 0.5, Jump: 1, Complexity: daggen.Mixed}, r)
	rf := ref(200, 3)
	initial := &Allocation{Graph: g, Ref: rf, Beta: 1, Procs: make([]int, len(g.Tasks))}
	for i := range initial.Procs {
		initial.Procs[i] = 1
	}
	grown := Compute(g, rf, 1.0, SCRAPMAX)
	if grown.CriticalPathLength() >= initial.CriticalPathLength() {
		t.Fatalf("allocation did not shorten critical path: %g >= %g",
			grown.CriticalPathLength(), initial.CriticalPathLength())
	}
}

func TestSCRAPMAXRespectsLevelBudget(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := daggen.Generate(daggen.FamilyRandom, r)
		rf := ref(229, 3.78)
		beta := []float64{0.1, 0.25, 0.5, 1.0}[seed%4]
		a := Compute(g, rf, beta, SCRAPMAX)
		budget := beta * rf.Power()
		minimalLevel := func(l int) bool {
			for _, task := range g.LevelSets()[l] {
				if a.Procs[task.ID] > 1 {
					return false
				}
			}
			return true
		}
		for l, p := range a.LevelPowers() {
			if p > budget*(1+1e-9) && !minimalLevel(l) {
				t.Errorf("seed %d beta %g: level %d power %g exceeds budget %g", seed, beta, l, p, budget)
			}
		}
	}
}

func TestSCRAPRespectsAreaBudget(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := daggen.Generate(daggen.FamilyRandom, r)
		rf := ref(167, 3.24)
		beta := []float64{0.1, 0.25, 0.5, 1.0}[seed%4]
		a := Compute(g, rf, beta, SCRAP)
		grown := false
		for _, p := range a.Procs {
			if p > 1 {
				grown = true
				break
			}
		}
		if !grown {
			continue // minimal allocations are exempt by definition
		}
		if a.TotalArea()/a.CriticalPathLength() > beta*rf.Power()*(1+1e-9) {
			t.Errorf("seed %d beta %g: area/cp %g exceeds budget %g",
				seed, beta, a.TotalArea()/a.CriticalPathLength(), beta*rf.Power())
		}
	}
}

func TestRespectedReportsMinimalAllocations(t *testing.T) {
	g := daggen.Strassen(rand.New(rand.NewSource(4)))
	a := Compute(g, ref(99, 3.8), 1e-9, SCRAPMAX)
	if !a.Respected(SCRAPMAX) {
		t.Fatal("minimal allocation reported as violating")
	}
}

func TestSelfishSCRAPMAXGrowsLargeAllocations(t *testing.T) {
	// Under beta=1 a chain-like PTG's tasks should reach far beyond one
	// processor: the selfish strategy builds resource-hungry schedules.
	r := rand.New(rand.NewSource(5))
	g := daggen.Random(daggen.RandomConfig{Tasks: 10, Width: 0.2, Regularity: 0.8, Density: 0.2, Jump: 1, Complexity: daggen.AllMatrix}, r)
	a := Compute(g, ref(100, 3), 1.0, SCRAPMAX)
	max := 0
	for _, p := range a.Procs {
		if p > max {
			max = p
		}
	}
	if max < 10 {
		t.Fatalf("selfish allocation max width %d, expected substantial growth", max)
	}
}

func TestComputeRejectsBadBeta(t *testing.T) {
	g := daggen.Strassen(rand.New(rand.NewSource(1)))
	for _, beta := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("beta=%g accepted", beta)
				}
			}()
			Compute(g, ref(10, 1), beta, SCRAPMAX)
		}()
	}
}

func TestProcedureString(t *testing.T) {
	if SCRAP.String() != "SCRAP" || SCRAPMAX.String() != "SCRAP-MAX" {
		t.Fatal("Procedure.String mismatch")
	}
}

func TestTranslatePreservesPower(t *testing.T) {
	rf := ref(100, 3.0)
	fast := &platform.Cluster{Name: "fast", Procs: 64, Speed: 6.0}
	slow := &platform.Cluster{Name: "slow", Procs: 64, Speed: 1.5}
	if got := Translate(10, rf, fast); got != 5 {
		t.Errorf("fast translation = %d, want 5 (30 GFlop/s / 6)", got)
	}
	if got := Translate(10, rf, slow); got != 20 {
		t.Errorf("slow translation = %d, want 20 (30 GFlop/s / 1.5)", got)
	}
}

func TestTranslateClamps(t *testing.T) {
	rf := ref(100, 3.0)
	tiny := &platform.Cluster{Name: "tiny", Procs: 4, Speed: 3.0}
	if got := Translate(50, rf, tiny); got != 4 {
		t.Errorf("translation not clamped to cluster size: %d", got)
	}
	fast := &platform.Cluster{Name: "fast", Procs: 64, Speed: 100}
	if got := Translate(1, rf, fast); got != 1 {
		t.Errorf("translation below one processor: %d", got)
	}
}

// Property: allocations are always within [1, ref.Procs] and allocation is
// deterministic for a given seed.
func TestComputeBoundsProperty(t *testing.T) {
	f := func(seed int64, betaRaw uint8, procRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := daggen.Generate(daggen.Family(uint64(seed)%3), r)
		beta := 0.05 + float64(betaRaw%95)/100
		rf := ref(int(procRaw)%200+20, 3)
		proc := Procedure(uint64(seed) % 2)
		a := Compute(g, rf, beta, proc)
		for _, p := range a.Procs {
			if p < 1 || p > rf.Procs {
				return false
			}
		}
		b := Compute(g, rf, beta, proc)
		for i := range a.Procs {
			if a.Procs[i] != b.Procs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
