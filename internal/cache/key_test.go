package cache

// Satellite: cache-key determinism as a property. The per-point digest
// must be a pure function of (spec digest, global point index): byte
// identical across re-expansions, shard layouts, worker counts, publish
// orders, and resume-after-SIGKILL. Specs are generated quick-check
// style from a seeded rng so the suite is reproducible.

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ptgsched/internal/scenario"
)

// randomSpec generates a small but varied campaign spec. Families,
// platforms, axes and optional dynamic/online sections are all drawn from
// rng so successive calls cover the spec space.
func randomSpec(rng *rand.Rand, i int) string {
	families := []string{
		`{"family": "strassen"}`,
		`{"family": "fft", "k": [2]}`,
		`{"family": "random", "tasks": [10], "widths": [0.4], "regularities": [0.5], "densities": [0.5], "jumps": [1], "complexities": ["mixed"]}`,
	}
	platforms := []string{"lille", "nancy", "rennes", "sophia"}
	rng.Shuffle(len(platforms), func(a, b int) { platforms[a], platforms[b] = platforms[b], platforms[a] })
	nPlat := 1 + rng.Intn(2)
	var quoted []string
	for _, p := range platforms[:nPlat] {
		quoted = append(quoted, fmt.Sprintf("%q", p))
	}
	var nptgs []string
	for n := 0; n < 1+rng.Intn(2); n++ {
		nptgs = append(nptgs, fmt.Sprint(2+rng.Intn(4)))
	}
	spec := fmt.Sprintf(`{
		"name": "prop-%d",
		"seed": %d,
		"reps": %d,
		"nptgs": [%s],
		"platforms": [%s],
		"families": [%s]`,
		i, rng.Int63n(1<<32), 1+rng.Intn(2),
		strings.Join(nptgs, ", "), strings.Join(quoted, ", "),
		families[rng.Intn(len(families))])
	if rng.Intn(3) == 0 {
		spec += fmt.Sprintf(`,
		"online": {"processes": ["poisson"], "rates": [%g]}`, 0.5+rng.Float64())
	}
	return spec + "\n}"
}

// keysOf computes the full key sequence for an expansion, in global point
// order.
func keysOf(t *testing.T, e *scenario.Expansion) []Key {
	t.Helper()
	d := scenario.SpecDigest(e.Spec)
	ks := make([]Key, e.NumPoints())
	for i := range ks {
		ks[i] = KeyFor(e, d, e.PointAt(i))
	}
	return ks
}

func TestKeyDeterminismProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	for trial := 0; trial < 25; trial++ {
		spec := randomSpec(rng, trial)
		e := expand(t, spec)
		keys := keysOf(t, e)

		// Pure function of the spec: a fresh parse+expand of the same
		// bytes yields the identical key sequence.
		if again := keysOf(t, expand(t, spec)); !reflect.DeepEqual(again, keys) {
			t.Fatalf("trial %d: re-expansion changed keys\nspec: %s", trial, spec)
		}

		// Injective within a campaign: distinct global indices must never
		// collide, or the cache would silently conflate points.
		seen := make(map[Key]int, len(keys))
		for i, k := range keys {
			if j, dup := seen[k]; dup {
				t.Fatalf("trial %d: points %d and %d share key %s\nspec: %s", trial, j, i, k, spec)
			}
			seen[k] = i
		}

		// Shard-layout invariance: for every layout 1..4, the key of a
		// point reached through a shard's index set equals the key from
		// global enumeration.
		d := scenario.SpecDigest(e.Spec)
		for shards := 1; shards <= 4; shards++ {
			covered := 0
			for s := 0; s < shards; s++ {
				set, err := e.Shard(s, shards)
				if err != nil {
					t.Fatal(err)
				}
				for j := 0; j < set.Len(); j++ {
					gi := set.At(j)
					if k := KeyFor(e, d, e.PointAt(gi)); k != keys[gi] {
						t.Fatalf("trial %d: shard %d/%d point %d key mismatch", trial, s, shards, gi)
					}
					covered++
				}
			}
			if covered != len(keys) {
				t.Fatalf("trial %d: %d-way sharding covered %d of %d points", trial, shards, covered, len(keys))
			}
		}
	}
}

func TestKeyIgnoresSpecName(t *testing.T) {
	// Renaming a campaign must not invalidate its static cells: the key
	// captures what is computed, not what the spec file is called.
	a := expand(t, smokeSpec)
	b := expand(t, strings.Replace(smokeSpec, `"smoke"`, `"smoke-renamed"`, 1))
	da := scenario.SpecDigest(a.Spec)
	db := scenario.SpecDigest(b.Spec)
	if da == db {
		t.Fatal("renaming the spec did not change its digest")
	}
	for i := 0; i < a.NumPoints(); i++ {
		if KeyFor(a, da, a.PointAt(i)) != KeyFor(b, db, b.PointAt(i)) {
			t.Fatalf("static point %d keyed differently under a renamed spec", i)
		}
	}
}

func TestKeySensitivity(t *testing.T) {
	// Each semantically meaningful axis change must change every key it
	// governs — otherwise stale results would be served across campaigns
	// that genuinely differ.
	base := keysOf(t, expand(t, smokeSpec))
	mutations := map[string]string{
		"seed":     strings.Replace(smokeSpec, `"seed": 9`, `"seed": 10`, 1),
		"nptgs":    strings.Replace(smokeSpec, `[2, 3]`, `[2, 4]`, 1),
		"platform": strings.Replace(smokeSpec, `"rennes"`, `"sophia"`, 1),
		"family":   strings.Replace(smokeSpec, `"strassen"`, `"fft"`, 1),
	}
	for name, spec := range mutations {
		mut := keysOf(t, expand(t, spec))
		// Individual points untouched by the mutation may legitimately keep
		// their keys (an nptgs change leaves the n=2 half identical — that
		// is the memoization working); but the sequence as a whole must
		// differ, or the axis is not keyed at all.
		if reflect.DeepEqual(mut, base) {
			t.Fatalf("mutating %s left the whole key sequence unchanged", name)
		}
	}
}

func TestKeyStableUnderWorkersAndOrder(t *testing.T) {
	// Fill the same campaign into separate cache dirs with different
	// worker counts and publish orders; the resulting entry sets must be
	// identical and every lookup must serve byte-identical payloads.
	e := expand(t, smokeSpec)
	want := e.Run(e.All(), 1)

	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	// dir 0: sequential. dir 1: 4 workers. dir 2: shuffled publish order.
	c0 := open(t, dirs[0])
	fill(t, c0, e, 1)
	c1 := open(t, dirs[1])
	fill(t, c1, e, 4)
	c2 := open(t, dirs[2])
	b2 := c2.Bind(e)
	order := rand.New(rand.NewSource(7)).Perm(e.NumPoints())
	for _, i := range order {
		b2.Publish(e.PointAt(i), want[i])
	}
	for _, c := range []*Cache{c0, c1, c2} {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}

	for _, dir := range dirs {
		c := open(t, dir)
		got := fill(t, c, e, 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cache %s served results differing from the reference run", dir)
		}
		st := c.Stats()
		if st.Hits != uint64(e.NumPoints()) || st.VerifyFailures != 0 {
			t.Fatalf("cache %s: hits=%d fails=%d, want %d/0", dir, st.Hits, st.VerifyFailures, e.NumPoints())
		}
	}
}

func TestKeyStableAcrossKilledResume(t *testing.T) {
	// Simulate SIGKILL mid-campaign: publish a prefix through one handle,
	// abandon it without Close (no seal, file handle dropped on GC), then
	// resume with a fresh handle. The resumed sweep must hit exactly the
	// prefix and recompute the rest, ending byte-identical to a clean run.
	e := expand(t, smokeSpec)
	want := e.Run(e.All(), 1)
	dir := t.TempDir()

	c := open(t, dir)
	b := c.Bind(e)
	half := e.NumPoints() / 2
	for i := 0; i < half; i++ {
		b.Publish(e.PointAt(i), want[i])
	}
	// Abandoned: no Close, no Sync, no seal.

	c2 := open(t, dir)
	got := fill(t, c2, e, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed sweep differs from clean run")
	}
	st := c2.Stats()
	if st.Hits != uint64(half) || st.Misses != uint64(e.NumPoints()-half) {
		t.Fatalf("resume: hits=%d misses=%d, want %d/%d", st.Hits, st.Misses, half, e.NumPoints()-half)
	}
	if st.VerifyFailures != 0 {
		t.Fatalf("resume flagged %d verify failures on an intact unsealed segment", st.VerifyFailures)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third generation sees the union of both writers' segments.
	c3 := open(t, dir)
	if st := c3.Stats(); st.Entries != e.NumPoints() || st.Segments != 2 {
		t.Fatalf("after resume: entries=%d segments=%d, want %d/2", st.Entries, st.Segments, e.NumPoints())
	}
}
