package cache

// Satellite: cross-campaign memoization differential. Two overlapping
// specs share one cache directory; the second campaign must (a) produce
// tables byte-identical to a cold run of itself, and (b) hit the cache on
// exactly the overlap — whose cardinality is computed independently, as
// the intersection of the two campaigns' key sets.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"ptgsched/internal/scenario"
)

// keySet computes the set of content addresses a campaign touches.
func keySet(t *testing.T, e *scenario.Expansion) map[Key]bool {
	t.Helper()
	out := make(map[Key]bool, e.NumPoints())
	for _, k := range keysOf(t, e) {
		out[k] = true
	}
	return out
}

func overlap(a, b map[Key]bool) int {
	n := 0
	for k := range a {
		if b[k] {
			n++
		}
	}
	return n
}

func TestCrossCampaignMemoization(t *testing.T) {
	// Campaign A: the strassen smoke campaign. Campaign B: the same cell
	// region plus an extra fft family — A's points are a strict subset of
	// B's work.
	specA := smokeSpec
	specB := `{
		"name": "widened",
		"seed": 9,
		"reps": 2,
		"nptgs": [2, 3],
		"platforms": ["lille", "rennes"],
		"families": [{"family": "strassen"}, {"family": "fft", "k": [2]}]
	}`
	eA, eB := expand(t, specA), expand(t, specB)

	// The expected hit count comes from the key sets alone — an
	// independent oracle over the content addresses, not over the cache.
	want := overlap(keySet(t, eA), keySet(t, eB))
	if want != eA.NumPoints() {
		t.Fatalf("oracle: overlap=%d, want all %d of campaign A inside B", want, eA.NumPoints())
	}

	// Cold reference for B, no cache anywhere near it.
	cold := eB.Run(eB.All(), 1)

	dir := t.TempDir()
	cA := open(t, dir)
	fill(t, cA, eA, 1)
	if err := cA.Close(); err != nil {
		t.Fatal(err)
	}

	cB := open(t, dir)
	got := fill(t, cB, eB, 1)
	if !reflect.DeepEqual(got, cold) {
		t.Fatal("campaign B over A's cache differs from B's cold run")
	}
	tc, err := eB.Aggregate(cold)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := eB.Aggregate(got)
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := json.Marshal(tc)
	gb, _ := json.Marshal(tg)
	if !bytes.Equal(cb, gb) {
		t.Fatal("campaign B tables not byte-identical to the cold run")
	}

	st := cB.Stats()
	if st.Hits != uint64(want) {
		t.Fatalf("hits=%d, want exactly the overlap %d", st.Hits, want)
	}
	if st.Misses != uint64(eB.NumPoints()-want) {
		t.Fatalf("misses=%d, want %d", st.Misses, eB.NumPoints()-want)
	}
}

func TestCrossCampaignPartialOverlap(t *testing.T) {
	// A proper partial overlap: campaign C swaps one platform of the
	// smoke campaign, so exactly the lille half of its grid is shared.
	// (The nptgs list must stay identical: the per-point seed mixes the
	// nptgs *index*, so the same value at a different position is a
	// different experiment.) The oracle and the hit counter must agree
	// exactly.
	specC := `{
		"name": "narrowed",
		"seed": 9,
		"reps": 2,
		"nptgs": [2, 3],
		"platforms": ["lille", "sophia"],
		"families": [{"family": "strassen"}]
	}`
	eA, eC := expand(t, smokeSpec), expand(t, specC)
	want := overlap(keySet(t, eA), keySet(t, eC))
	if want == 0 || want == eC.NumPoints() {
		t.Fatalf("oracle: overlap=%d of %d — spec pair no longer exercises a partial overlap", want, eC.NumPoints())
	}

	cold := eC.Run(eC.All(), 1)
	dir := t.TempDir()
	cA := open(t, dir)
	fill(t, cA, eA, 1)
	if err := cA.Close(); err != nil {
		t.Fatal(err)
	}

	cC := open(t, dir)
	got := fill(t, cC, eC, 1)
	if !reflect.DeepEqual(got, cold) {
		t.Fatal("partially warmed campaign differs from its cold run")
	}
	st := cC.Stats()
	if st.Hits != uint64(want) || st.Misses != uint64(eC.NumPoints()-want) {
		t.Fatalf("hits=%d misses=%d, oracle wants %d/%d", st.Hits, st.Misses, want, eC.NumPoints()-want)
	}
}

func TestCrossCampaignDynamicIsPrivate(t *testing.T) {
	// Dynamic cells derive their event timelines from (spec digest,
	// index), so their results are only reusable within the identical
	// campaign: across different dynamic specs the oracle overlap must be
	// zero and the cache must not serve a single hit — while re-running
	// the *same* dynamic spec hits everything.
	dynA := `{
		"name": "dyn-a",
		"seed": 9,
		"reps": 1,
		"nptgs": [2],
		"platforms": ["lille"],
		"families": [{"family": "strassen"}],
		"events": {"policies": ["restart"], "failures": [{"cluster": 0, "at": 50, "duration": 10}]}
	}`
	dynB := `{
		"name": "dyn-b",
		"seed": 9,
		"reps": 1,
		"nptgs": [2],
		"platforms": ["lille"],
		"families": [{"family": "strassen"}],
		"events": {"policies": ["restart"], "failures": [{"cluster": 0, "at": 80, "duration": 10}]}
	}`
	eA, eB := expand(t, dynA), expand(t, dynB)
	if n := overlap(keySet(t, eA), keySet(t, eB)); n != 0 {
		t.Fatalf("dynamic campaigns share %d keys, want 0", n)
	}

	dir := t.TempDir()
	cA := open(t, dir)
	wantA := fill(t, cA, eA, 1)
	if err := cA.Close(); err != nil {
		t.Fatal(err)
	}

	// Different dynamic campaign: all misses.
	cB := open(t, dir)
	fill(t, cB, eB, 1)
	if st := cB.Stats(); st.Hits != 0 {
		t.Fatalf("dynamic campaign B hit A's entries %d times", st.Hits)
	}
	if err := cB.Close(); err != nil {
		t.Fatal(err)
	}

	// Same dynamic campaign again: all hits, identical results.
	cA2 := open(t, dir)
	got := fill(t, cA2, eA, 1)
	if !reflect.DeepEqual(got, wantA) {
		t.Fatal("re-run of a dynamic campaign differs")
	}
	if st := cA2.Stats(); st.Hits != uint64(eA.NumPoints()) || st.Misses != 0 {
		t.Fatalf("dynamic re-run: hits=%d misses=%d, want %d/0", st.Hits, st.Misses, eA.NumPoints())
	}
}
