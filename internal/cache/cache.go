package cache

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ptgsched/internal/scenario"
)

// On-disk layout of a cache directory:
//
//	cache.json            manifest: format version + random cache identity
//	seg-<hex>.jsonl       one segment per writer process, append-only
//	seg-<hex>.jsonl.head  seal: record count + final chain proof (atomic
//	                      replace on Sync/Close)
//
// A segment starts with a header line binding it to this cache (the
// manifest identity) and to its own file name, then carries one record
// per line. Each record stores its body's SHA-256 (`sum`) and a chain
// proof `proof = SHA-256(prev_proof ‖ sum)` seeded from a genesis value
// derived from (cache id, segment name) — the audit-log construction:
// bulk data in cheap append-only files, a hash chain for integrity.
// Several processes share one directory safely because every writer owns
// a distinct segment (O_EXCL at creation) and readers only ever scan.
const (
	// FormatVersion is the cache directory format. Readers refuse other
	// versions.
	FormatVersion = 1

	manifestName = "cache.json"
	segPrefix    = "seg-"
	segSuffix    = ".jsonl"
	headSuffix   = ".head"
)

// Class partitions verification failures by what the evidence shows.
// Distinct corruption injections map to distinct classes, so the
// adversarial test battery can assert not only *that* a corruption was
// caught but that it was diagnosed correctly.
type Class int

const (
	// ClassCorrupt: a line is not a parsable record (garbled JSON, bad
	// hex). The rest of the segment is unreadable — the chain cannot be
	// resumed past a record whose proof is unknown.
	ClassCorrupt Class = iota
	// ClassSum: a record parses but its body hashes to a different sum —
	// the payload bytes were altered in place (bit-rot, poisoning).
	ClassSum
	// ClassChain: a record's proof does not extend the running chain —
	// entries were reordered, spliced in from elsewhere, or history was
	// rewritten behind a seal.
	ClassChain
	// ClassForeign: a segment's header binds it to a different cache
	// identity or file name — a segment transplanted from another cache
	// directory (e.g. a different spec region's cache) or renamed.
	ClassForeign
	// ClassTruncated: a sealed segment holds fewer records than its head
	// attests — the file lost committed entries.
	ClassTruncated
)

func (c Class) String() string {
	switch c {
	case ClassCorrupt:
		return "corrupt-record"
	case ClassSum:
		return "sum-mismatch"
	case ClassChain:
		return "chain-mismatch"
	case ClassForeign:
		return "foreign-segment"
	case ClassTruncated:
		return "truncated"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// VerifyError describes one detected corruption. Failed entries are never
// served — the affected points read as misses and are recomputed — so a
// VerifyError is a diagnosis, not a failure of the sweep.
type VerifyError struct {
	Class   Class
	Segment string
	// Record is the zero-based record position within the segment
	// (ignoring the header line); -1 for segment-level classes.
	Record int
	Detail string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("cache: %s: segment %s record %d: %s", e.Class, e.Segment, e.Record, e.Detail)
}

// manifest is the cache.json payload.
type manifest struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
}

// record is one cached measurement. Sum and Proof are omitted from the
// canonical body (the bytes Sum hashes) by their omitempty tags.
type record struct {
	Key        string    `json:"key"`
	Name       string    `json:"name"`
	Unfairness []float64 `json:"unfairness"`
	Makespan   []float64 `json:"makespan"`
	Rel        []float64 `json:"rel"`
	Sum        string    `json:"sum,omitempty"`
	Proof      string    `json:"proof,omitempty"`
}

// header is a segment's first line.
type header struct {
	Cache   string `json:"cache"`
	Segment string `json:"segment"`
	Version int    `json:"version"`
}

// head is the seal sidecar: the chain state a clean writer left behind.
type head struct {
	Count int    `json:"count"`
	Proof string `json:"proof"`
}

// entry is the in-memory value of one verified record.
type entry struct {
	name       string
	unfairness []float64
	makespan   []float64
	rel        []float64
}

// segState tracks how far a segment has been verified, so Refresh is
// incremental: only bytes past off are read, exactly like the store's
// recovery scan.
type segState struct {
	name    string
	off     int64
	records int
	proof   [32]byte
	started bool // header verified
	dead    bool // unrecoverable (corrupt/foreign/truncated); never rescan
	sealed  head
	hasSeal bool
}

// Stats is a counter snapshot. Hits and misses are counted at Lookup,
// verify failures at Open/Refresh scan time — once per detected
// corruption, not once per affected lookup.
type Stats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	VerifyFailures uint64 `json:"verify_failures"`
	Entries        int    `json:"entries"`
	Segments       int    `json:"segments"`
}

// Cache is an open cache directory. It is safe for concurrent use; many
// processes may share one directory (each writes its own segment).
type Cache struct {
	dir string
	id  string

	mu      sync.RWMutex
	entries map[Key]entry
	segs    map[string]*segState
	fails   []VerifyError // capped diagnostic log

	// The lazily created writer segment.
	own      *os.File
	ownState *segState
	writeErr error

	hits     atomic.Uint64
	misses   atomic.Uint64
	verfails atomic.Uint64
}

// maxFailLog caps the retained VerifyError diagnostics; the counter keeps
// counting past it.
const maxFailLog = 64

// Open opens dir as a cache, creating it (and its manifest) if needed,
// then verifies and loads every segment. Corrupt state never fails Open:
// detected corruption is counted, diagnosed in VerifyErrors, and the
// affected entries read as misses. Open fails only on real I/O errors or
// a manifest from a different format version.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	m, err := loadOrCreateManifest(dir)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		dir:     dir,
		id:      m.ID,
		entries: make(map[Key]entry),
		segs:    make(map[string]*segState),
	}
	if err := c.Refresh(); err != nil {
		return nil, err
	}
	return c, nil
}

func loadOrCreateManifest(dir string) (*manifest, error) {
	path := filepath.Join(dir, manifestName)
	read := func() (*manifest, error) {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var m manifest
		if err := json.Unmarshal(b, &m); err != nil {
			return nil, fmt.Errorf("cache: %s: %w", path, err)
		}
		if m.Version != FormatVersion {
			return nil, fmt.Errorf("cache: %s: format version %d, this build reads %d", path, m.Version, FormatVersion)
		}
		if m.ID == "" {
			return nil, fmt.Errorf("cache: %s: empty cache id", path)
		}
		return &m, nil
	}
	if m, err := read(); err == nil {
		return m, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, err
	}
	m := &manifest{Version: FormatVersion, ID: hex.EncodeToString(raw[:])}
	b, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			// Another process won the creation race; adopt its identity.
			return read()
		}
		return nil, err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return nil, err
	}
	return m, f.Close()
}

// Refresh scans every segment for bytes appended since the last scan
// (including whole new segments from other processes), verifying the hash
// chain as it goes. It is cheap when nothing changed — one readdir and
// one stat per live segment — so sweep layers call it at bind time to see
// entries other fleet workers published after this handle opened.
func (c *Cache) Refresh() error {
	names, err := c.listSegments()
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range names {
		st := c.segs[name]
		if st == nil {
			st = &segState{name: name}
			c.segs[name] = st
		}
		if st.dead || st == c.ownState {
			continue
		}
		if err := c.scanSegment(st); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cache) listSegments() ([]string, error) {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range ents {
		n := de.Name()
		if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// fail records one verification failure: the counter always increments,
// the diagnostic log is capped.
func (c *Cache) fail(v VerifyError) {
	c.verfails.Add(1)
	if len(c.fails) < maxFailLog {
		c.fails = append(c.fails, v)
	}
}

// scanSegment verifies and loads the segment's unread suffix. Called with
// c.mu held.
func (c *Cache) scanSegment(st *segState) error {
	f, err := os.Open(filepath.Join(c.dir, st.name))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // deleted between readdir and open
		}
		return err
	}
	defer f.Close()

	// (Re)load the seal; another process may have sealed the segment
	// since the last scan.
	if !st.hasSeal {
		if hb, err := os.ReadFile(filepath.Join(c.dir, st.name+headSuffix)); err == nil {
			var h head
			if json.Unmarshal(hb, &h) == nil && h.Count >= 0 {
				st.sealed, st.hasSeal = h, true
			}
		}
	}

	if _, err := f.Seek(st.off, 0); err != nil {
		return err
	}
	// Verified records are staged here and committed only once the whole
	// batch survives the segment-level checks: a truncated seal or a
	// rewritten-history seal mismatch quarantines everything the scan
	// loaded, because the file as a whole has proven untrustworthy. An
	// unparsable record is gentler — the chain-verified prefix before it
	// is still committed; only the unreadable remainder is lost.
	pending := make(map[Key]entry)
	commit := func() {
		for k, e := range pending {
			if _, dup := c.entries[k]; !dup {
				c.entries[k] = e
			}
		}
	}
	br := bufio.NewReaderSize(f, 256*1024)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// A trailing fragment without its newline is a write in
			// flight (or a torn tail): leave off where it is and retry on
			// the next Refresh. Losing an unsealed tail is always safe —
			// those points read as misses.
			break
		}
		rec := bytes.TrimSuffix(line, []byte("\n"))
		if !st.started {
			if !c.verifyHeader(st, rec) {
				return nil // dead, diagnosed by verifyHeader
			}
			st.started = true
			st.off += int64(len(line))
			continue
		}
		fatal := c.verifyRecord(st, rec, pending)
		st.off += int64(len(line))
		st.records++
		if fatal {
			st.dead = true
			commit() // the prefix before the damage chain-verified
			return nil
		}
		if st.hasSeal && st.records == st.sealed.Count {
			var want [32]byte
			if h, err := hex.DecodeString(st.sealed.Proof); err == nil && len(h) == 32 {
				copy(want[:], h)
			}
			if want != st.proof {
				c.fail(VerifyError{Class: ClassChain, Segment: st.name, Record: st.records - 1,
					Detail: "chain proof at seal point does not match sealed head (history rewritten)"})
				st.dead = true
				return nil // quarantine: drop everything this scan staged
			}
		}
	}
	if st.hasSeal && st.records < st.sealed.Count {
		c.fail(VerifyError{Class: ClassTruncated, Segment: st.name, Record: st.records,
			Detail: fmt.Sprintf("segment sealed at %d records, only %d present", st.sealed.Count, st.records)})
		st.dead = true
		return nil // quarantine: the file lost committed records
	}
	commit()
	return nil
}

// verifyHeader checks the segment's binding line. A bad header kills the
// whole segment (one failure), because nothing below it can be trusted.
func (c *Cache) verifyHeader(st *segState, line []byte) bool {
	var h header
	if err := json.Unmarshal(line, &h); err != nil {
		c.fail(VerifyError{Class: ClassCorrupt, Segment: st.name, Record: -1,
			Detail: fmt.Sprintf("unparsable header: %v", err)})
		st.dead = true
		return false
	}
	switch {
	case h.Version != FormatVersion:
		c.fail(VerifyError{Class: ClassCorrupt, Segment: st.name, Record: -1,
			Detail: fmt.Sprintf("segment format version %d", h.Version)})
	case h.Cache != c.id:
		c.fail(VerifyError{Class: ClassForeign, Segment: st.name, Record: -1,
			Detail: fmt.Sprintf("segment belongs to cache %s, this cache is %s", h.Cache, c.id)})
	case h.Segment != st.name:
		c.fail(VerifyError{Class: ClassForeign, Segment: st.name, Record: -1,
			Detail: fmt.Sprintf("segment header names %q", h.Segment)})
	default:
		st.proof = genesis(c.id, st.name)
		return true
	}
	st.dead = true
	return false
}

// verifyRecord checks one record line against the running chain and, when
// clean, stages it into pending. A sum- or chain-level failure skips just
// this record (the chain resumes from the record's own recorded proof, so
// one poisoned entry costs exactly one failure); an unparsable record is
// fatal for the rest of the segment.
func (c *Cache) verifyRecord(st *segState, line []byte, pending map[Key]entry) (fatal bool) {
	pos := st.records
	var rec record
	if err := json.Unmarshal(line, &rec); err != nil {
		c.fail(VerifyError{Class: ClassCorrupt, Segment: st.name, Record: pos,
			Detail: fmt.Sprintf("unparsable record: %v", err)})
		return true
	}
	keyBytes, kerr := hex.DecodeString(rec.Key)
	sumBytes, serr := hex.DecodeString(rec.Sum)
	proofBytes, perr := hex.DecodeString(rec.Proof)
	if kerr != nil || serr != nil || perr != nil ||
		len(keyBytes) != sha256.Size || len(sumBytes) != sha256.Size || len(proofBytes) != sha256.Size {
		c.fail(VerifyError{Class: ClassCorrupt, Segment: st.name, Record: pos,
			Detail: "malformed key/sum/proof field"})
		return true
	}

	// The chain always advances to the *recorded* proof: successors were
	// chained over what the writer wrote, so a single altered record is
	// exactly one failure, not a cascade.
	prev := st.proof
	copy(st.proof[:], proofBytes)

	body := rec
	body.Sum, body.Proof = "", ""
	bodyBytes, err := json.Marshal(body)
	if err != nil {
		c.fail(VerifyError{Class: ClassCorrupt, Segment: st.name, Record: pos,
			Detail: fmt.Sprintf("remarshal: %v", err)})
		return true
	}
	if sum := sha256.Sum256(bodyBytes); !bytes.Equal(sum[:], sumBytes) {
		c.fail(VerifyError{Class: ClassSum, Segment: st.name, Record: pos,
			Detail: "record body does not hash to its sum (payload altered in place)"})
		return false
	}
	if want := chain(prev, sumBytes); !bytes.Equal(want[:], proofBytes) {
		c.fail(VerifyError{Class: ClassChain, Segment: st.name, Record: pos,
			Detail: "record proof does not extend the running chain (reordered, spliced, or transplanted)"})
		return false
	}

	var k Key
	copy(k[:], keyBytes)
	if _, dup := pending[k]; !dup {
		pending[k] = entry{name: rec.Name, unfairness: rec.Unfairness, makespan: rec.Makespan, rel: rec.Rel}
	}
	return false
}

func genesis(cacheID, segName string) [32]byte {
	return sha256.Sum256([]byte("ptgsched-cache\x00" + cacheID + "\x00" + segName))
}

func chain(prev [32]byte, sum []byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(sum)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// get serves one verified entry.
func (c *Cache) get(k Key) (entry, bool) {
	c.mu.RLock()
	e, ok := c.entries[k]
	c.mu.RUnlock()
	return e, ok
}

// put appends one entry to this process's own segment (creating it on
// first use) and indexes it. Duplicate keys are dropped: the first
// verified value wins, and identical points produce identical payloads
// anyway. Write errors poison the writer — the cache keeps serving reads,
// further publishes are dropped, and the error surfaces on Sync/Close.
func (c *Cache) put(k Key, e entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[k]; dup {
		return
	}
	if c.writeErr != nil {
		c.entries[k] = e // still index it for this handle
		return
	}
	if c.own == nil {
		if err := c.openOwnLocked(); err != nil {
			c.writeErr = err
			c.entries[k] = e
			return
		}
	}
	rec := record{Key: k.String(), Name: e.name, Unfairness: e.unfairness, Makespan: e.makespan, Rel: e.rel}
	bodyBytes, err := json.Marshal(rec)
	if err != nil {
		c.writeErr = err
		c.entries[k] = e
		return
	}
	sum := sha256.Sum256(bodyBytes)
	proof := chain(c.ownState.proof, sum[:])
	rec.Sum, rec.Proof = hex.EncodeToString(sum[:]), hex.EncodeToString(proof[:])
	line, err := json.Marshal(rec)
	if err != nil {
		c.writeErr = err
		c.entries[k] = e
		return
	}
	line = append(line, '\n')
	// One write(2) per record, like the store: an append either lands
	// whole or becomes a torn tail the next reader ignores.
	if _, err := c.own.Write(line); err != nil {
		c.writeErr = err
		c.entries[k] = e
		return
	}
	c.ownState.proof = proof
	c.ownState.records++
	c.ownState.off += int64(len(line))
	c.entries[k] = e
}

// openOwnLocked creates this process's writer segment: a fresh O_EXCL
// file named from 8 random bytes, so concurrent writers sharing the
// directory never interleave appends.
func (c *Cache) openOwnLocked() error {
	for attempt := 0; ; attempt++ {
		var raw [8]byte
		if _, err := rand.Read(raw[:]); err != nil {
			return err
		}
		name := segPrefix + hex.EncodeToString(raw[:]) + segSuffix
		f, err := os.OpenFile(filepath.Join(c.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o666)
		if errors.Is(err, os.ErrExist) && attempt < 4 {
			continue
		}
		if err != nil {
			return err
		}
		hdr, err := json.Marshal(header{Cache: c.id, Segment: name, Version: FormatVersion})
		if err != nil {
			f.Close()
			return err
		}
		hdr = append(hdr, '\n')
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return err
		}
		st := &segState{name: name, off: int64(len(hdr)), proof: genesis(c.id, name), started: true}
		c.own, c.ownState = f, st
		c.segs[name] = st
		return nil
	}
}

// seal writes the writer segment's head sidecar: its record count and
// final chain proof, replaced atomically. A sealed segment can no longer
// be silently truncated; an unsealed tail (the SIGKILL case) stays
// chain-verified but truncation-undetectable, which only ever costs
// recomputation.
func (c *Cache) sealLocked() error {
	if c.own == nil || c.ownState.records == 0 {
		return nil
	}
	h := head{Count: c.ownState.records, Proof: hex.EncodeToString(c.ownState.proof[:])}
	b, err := json.Marshal(h)
	if err != nil {
		return err
	}
	path := filepath.Join(c.dir, c.ownState.name+headSuffix)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o666); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Sync flushes and seals the writer segment (fsync + head replace) and
// reports any write error a Publish swallowed.
func (c *Cache) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.writeErr != nil {
		return c.writeErr
	}
	if c.own == nil {
		return nil
	}
	if err := c.own.Sync(); err != nil {
		return err
	}
	return c.sealLocked()
}

// Close seals and closes the writer segment. The Cache keeps serving
// lookups afterwards; publishes become no-ops on disk.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.own == nil {
		return c.writeErr
	}
	err := c.writeErr
	if err == nil {
		err = c.sealLocked()
	}
	if cerr := c.own.Close(); err == nil {
		err = cerr
	}
	c.own = nil
	return err
}

// Dir reports the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	entries, segs := len(c.entries), len(c.segs)
	c.mu.RUnlock()
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		VerifyFailures: c.verfails.Load(),
		Entries:        entries,
		Segments:       segs,
	}
}

// VerifyErrors returns the retained corruption diagnoses (capped; the
// Stats counter is exhaustive).
func (c *Cache) VerifyErrors() []VerifyError {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]VerifyError, len(c.fails))
	copy(out, c.fails)
	return out
}

// Bound is a Cache scoped to one expansion: it implements scenario.Memo,
// deriving each point's content address under that expansion's spec
// digest. Bind hashes the spec once; Bound is safe for concurrent use.
type Bound struct {
	c      *Cache
	e      *scenario.Expansion
	digest string
}

// Bind scopes the cache to an expansion. The returned Bound is the memo
// handed to RunMemo/RunEachMemo/store.Sweep — lookups hit only entries
// whose chain verified AND whose stored point name matches the requested
// point exactly (a defense-in-depth check over the content address).
func (c *Cache) Bind(e *scenario.Expansion) *Bound {
	return &Bound{c: c, e: e, digest: scenario.SpecDigest(e.Spec)}
}

// Lookup implements scenario.Memo: a verified entry for the point's
// content address, rehydrated into the requesting expansion's coordinate
// frame (Index and Cell are campaign-relative; the measurement is not).
func (b *Bound) Lookup(p scenario.Point) (scenario.PointResult, bool) {
	k := KeyFor(b.e, b.digest, p)
	e, ok := b.c.get(k)
	if !ok || e.name != p.Name {
		b.c.misses.Add(1)
		return scenario.PointResult{}, false
	}
	b.c.hits.Add(1)
	return scenario.PointResult{
		Index: p.Index, Cell: p.Cell, Name: p.Name,
		Unfairness: append([]float64(nil), e.unfairness...),
		Makespan:   append([]float64(nil), e.makespan...),
		Rel:        append([]float64(nil), e.rel...),
	}, true
}

// Publish implements scenario.Memo: best-effort, duplicate-safe append of
// a freshly computed result.
func (b *Bound) Publish(p scenario.Point, r scenario.PointResult) {
	k := KeyFor(b.e, b.digest, p)
	b.c.put(k, entry{name: r.Name, unfairness: r.Unfairness, makespan: r.Makespan, rel: r.Rel})
}

// Cache exposes the underlying cache of a Bound (for stats and sealing).
func (b *Bound) Cache() *Cache { return b.c }
