package cache

// Satellite: adversarial tamper-injection battery. Every corruption class
// — bit-flip, truncation, entry reorder, chain splice, cross-spec
// transplant, garbled bytes — must be (a) detected at scan time with the
// correct diagnosis class, (b) counted exactly once per poisoned entry
// where the poison is per-entry, and (c) invisible in the final output:
// the sweep falls back to recomputation and produces tables byte-identical
// to an uncached run. A silent acceptance anywhere here is a correctness
// bug, not a performance bug.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"ptgsched/internal/scenario"
)

// buildSealed fills a fresh cache dir from smokeSpec and seals it,
// returning the expansion, the reference results, and the dir.
func buildSealed(t *testing.T) (*scenario.Expansion, []scenario.PointResult, string) {
	t.Helper()
	e := expand(t, smokeSpec)
	dir := t.TempDir()
	c := open(t, dir)
	want := fill(t, c, e, 1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return e, want, dir
}

// readLines splits a segment file into its lines (header first).
func readLines(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimSuffix(string(b), "\n"), "\n")
}

func writeLines(t *testing.T, path string, lines []string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o666); err != nil {
		t.Fatal(err)
	}
}

// flipPayload alters the measured data of record r (0-based, ignoring the
// header) in place, keeping the stale sum/proof — the bit-rot/poisoning
// shape.
func flipPayload(t *testing.T, seg string, r int) {
	t.Helper()
	lines := readLines(t, seg)
	var rec record
	if err := json.Unmarshal([]byte(lines[r+1]), &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Makespan) == 0 {
		t.Fatal("record has no makespan samples to poison")
	}
	rec.Makespan[0] += 1 // a poisoned measurement
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	lines[r+1] = string(b)
	writeLines(t, seg, lines)
}

// classesOf collects the distinct classes seen, and fails the test if any
// class outside allowed appears.
func assertClasses(t *testing.T, c *Cache, allowed ...Class) {
	t.Helper()
	ok := make(map[Class]bool)
	for _, cl := range allowed {
		ok[cl] = true
	}
	for _, ve := range c.VerifyErrors() {
		if !ok[ve.Class] {
			t.Fatalf("unexpected corruption class %s: %v", ve.Class, ve.Error())
		}
	}
}

// assertFallback runs the full sweep against the (corrupted) cache and
// checks the output is byte-identical to the uncached reference: same
// point results, same aggregated tables down to the marshaled bytes.
func assertFallback(t *testing.T, c *Cache, e *scenario.Expansion, want []scenario.PointResult) {
	t.Helper()
	got := fill(t, c, e, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fallback sweep differs from uncached run")
	}
	wt, err := e.Aggregate(want)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := e.Aggregate(got)
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(wt)
	gb, _ := json.Marshal(gt)
	if !bytes.Equal(wb, gb) {
		t.Fatal("aggregated tables not byte-identical after fallback")
	}
}

func TestTamperBitFlipSingleRecord(t *testing.T) {
	e, want, dir := buildSealed(t)
	flipPayload(t, oneSegment(t, dir), 3)

	c := open(t, dir)
	st := c.Stats()
	if st.VerifyFailures != 1 {
		t.Fatalf("one poisoned record, %d verify failures (want exactly 1)", st.VerifyFailures)
	}
	assertClasses(t, c, ClassSum)
	if ve := c.VerifyErrors(); len(ve) != 1 || ve[0].Record != 3 {
		t.Fatalf("diagnosis %+v, want record 3", ve)
	}
	// Exactly the poisoned entry is lost; its neighbors still verify,
	// because the chain resumes from the recorded proof.
	if st.Entries != e.NumPoints()-1 {
		t.Fatalf("entries=%d, want %d (only the poisoned one dropped)", st.Entries, e.NumPoints()-1)
	}
	assertFallback(t, c, e, want)
	st = c.Stats()
	if st.Misses != 1 || st.Hits != uint64(e.NumPoints()-1) {
		t.Fatalf("fallback: hits=%d misses=%d, want %d/1", st.Hits, st.Misses, e.NumPoints()-1)
	}
}

func TestTamperBitFlipCountsOncePerEntry(t *testing.T) {
	e, want, dir := buildSealed(t)
	seg := oneSegment(t, dir)
	for _, r := range []int{1, 4, 6} {
		flipPayload(t, seg, r)
	}
	c := open(t, dir)
	if st := c.Stats(); st.VerifyFailures != 3 {
		t.Fatalf("three poisoned records, %d verify failures (want exactly 3)", st.VerifyFailures)
	}
	assertClasses(t, c, ClassSum)
	if st := c.Stats(); st.Entries != e.NumPoints()-3 {
		t.Fatalf("entries=%d, want %d", st.Entries, e.NumPoints()-3)
	}
	assertFallback(t, c, e, want)
}

func TestTamperPoisonedValueNeverServed(t *testing.T) {
	// The poisoned record carries a wrong makespan; assert the sweep's
	// value for that point is the recomputed (correct) one, not the
	// poison.
	e, want, dir := buildSealed(t)
	flipPayload(t, oneSegment(t, dir), 0)
	c := open(t, dir)
	got := fill(t, c, e, 1)
	if got[0].Makespan[0] != want[0].Makespan[0] {
		t.Fatalf("poisoned makespan served: got %v want %v", got[0].Makespan[0], want[0].Makespan[0])
	}
}

func TestTamperTruncation(t *testing.T) {
	e, want, dir := buildSealed(t)
	seg := oneSegment(t, dir)
	lines := readLines(t, seg)
	writeLines(t, seg, lines[:len(lines)-2]) // drop the last two records

	c := open(t, dir)
	st := c.Stats()
	if st.VerifyFailures != 1 {
		t.Fatalf("truncation: %d failures, want 1", st.VerifyFailures)
	}
	assertClasses(t, c, ClassTruncated)
	// A sealed segment that lost committed records is dead: nothing from
	// it is trusted.
	if st.Entries != 0 {
		t.Fatalf("truncated sealed segment still served %d entries", st.Entries)
	}
	assertFallback(t, c, e, want)
}

func TestTamperReorder(t *testing.T) {
	e, want, dir := buildSealed(t)
	seg := oneSegment(t, dir)
	lines := readLines(t, seg)
	// Swap records 1 and 2 (file lines 2 and 3, after the header).
	lines[2], lines[3] = lines[3], lines[2]
	writeLines(t, seg, lines)

	c := open(t, dir)
	st := c.Stats()
	// An adjacent swap breaks the chain at the two displaced records and
	// their immediate successor: exactly three link mismatches.
	if st.VerifyFailures != 3 {
		t.Fatalf("reorder: %d failures, want 3", st.VerifyFailures)
	}
	assertClasses(t, c, ClassChain)
	if st.Entries != e.NumPoints()-3 {
		t.Fatalf("reorder: entries=%d, want %d", st.Entries, e.NumPoints()-3)
	}
	assertFallback(t, c, e, want)
}

func TestTamperChainSplice(t *testing.T) {
	// Build a second cache for the same spec (different cache identity,
	// hence a different genesis and chain), and splice one of its record
	// lines over the last record of an UNSEALED segment in the first
	// cache. The spliced record parses and its sum verifies — only the
	// chain exposes it.
	e := expand(t, smokeSpec)
	dirA, dirB := t.TempDir(), t.TempDir()
	a := open(t, dirA)
	want := fill(t, a, e, 1)
	// Abandon a unsealed so the splice is the only detectable defect.
	b := open(t, dirB)
	fill(t, b, e, 1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	segA, segB := oneSegment(t, dirA), oneSegment(t, dirB)
	la, lb := readLines(t, segA), readLines(t, segB)
	la[len(la)-1] = lb[len(lb)-1]
	writeLines(t, segA, la)

	c := open(t, dirA)
	st := c.Stats()
	if st.VerifyFailures != 1 {
		t.Fatalf("splice: %d failures, want exactly 1", st.VerifyFailures)
	}
	assertClasses(t, c, ClassChain)
	assertFallback(t, c, e, want)
}

func TestTamperCrossSpecTransplant(t *testing.T) {
	// A whole segment lifted from another cache directory (a different
	// campaign's cache) is rejected at the header: it is bound to the
	// other cache's identity.
	e, want, dir := buildSealed(t)

	other := expand(t, strings.Replace(smokeSpec, `"seed": 9`, `"seed": 77`, 1))
	dirB := t.TempDir()
	b := open(t, dirB)
	fill(t, b, other, 1)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(oneSegment(t, dirB))
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite our good segment wholesale with the foreign one: its
	// header is bound to dirB's cache identity, which trips first.
	if err := os.WriteFile(oneSegment(t, dir), raw, 0o666); err != nil {
		t.Fatal(err)
	}
	c := open(t, dir)
	st := c.Stats()
	if st.VerifyFailures != 1 {
		t.Fatalf("transplant: %d failures, want 1", st.VerifyFailures)
	}
	assertClasses(t, c, ClassForeign)
	if st.Entries != 0 {
		t.Fatalf("transplanted segment served %d entries", st.Entries)
	}
	assertFallback(t, c, e, want)
}

func TestTamperRenamedSegment(t *testing.T) {
	// Renaming a segment within its own cache also breaks the header
	// binding: proofs are seeded from the segment name, so a rename is a
	// transplant in miniature.
	e, want, dir := buildSealed(t)
	seg := oneSegment(t, dir)
	renamed := strings.Replace(seg, segPrefix, segPrefix+"feed", 1)
	if err := os.Rename(seg, renamed); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(seg + headSuffix); err != nil {
		t.Fatal(err)
	}

	c := open(t, dir)
	if st := c.Stats(); st.VerifyFailures != 1 {
		t.Fatalf("rename: %d failures, want 1", st.VerifyFailures)
	}
	assertClasses(t, c, ClassForeign)
	assertFallback(t, c, e, want)
}

func TestTamperGarbledRecord(t *testing.T) {
	// Unparsable bytes mid-segment: the damaged record and everything
	// after it are unreadable (the chain cannot resume past an unknown
	// proof), but everything before it still serves.
	e, want, dir := buildSealed(t)
	seg := oneSegment(t, dir)
	lines := readLines(t, seg)
	lines[3] = strings.Repeat("x", len(lines[3])) // record 2
	writeLines(t, seg, lines)
	if err := os.Remove(seg + headSuffix); err != nil { // keep it a pure parse failure
		t.Fatal(err)
	}

	c := open(t, dir)
	st := c.Stats()
	if st.VerifyFailures != 1 {
		t.Fatalf("garbled record: %d failures, want 1", st.VerifyFailures)
	}
	assertClasses(t, c, ClassCorrupt)
	if st.Entries != 2 {
		t.Fatalf("entries=%d, want 2 (records before the damage)", st.Entries)
	}
	assertFallback(t, c, e, want)
}

func TestTamperSealProofRewrite(t *testing.T) {
	// Rewriting history *consistently* (re-chaining every proof from the
	// altered record onward) defeats per-record checks — that is exactly
	// what the seal exists for: the sealed head proof no longer matches.
	e, want, dir := buildSealed(t)
	seg := oneSegment(t, dir)
	lines := readLines(t, seg)

	// Re-chain the whole segment with record 3's payload poisoned.
	var hdr header
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
	proof := genesis(hdr.Cache, hdr.Segment)
	for i := 1; i < len(lines); i++ {
		var rec record
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatal(err)
		}
		rec.Sum, rec.Proof = "", ""
		if i == 4 {
			rec.Makespan[0] += 1
		}
		body, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(body)
		proof = chain(proof, sum[:])
		rec.Sum, rec.Proof = hex.EncodeToString(sum[:]), hex.EncodeToString(proof[:])
		out, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = string(out)
	}
	writeLines(t, seg, lines)

	c := open(t, dir)
	st := c.Stats()
	if st.VerifyFailures == 0 {
		t.Fatal("a fully re-chained rewrite behind a seal was accepted silently")
	}
	assertClasses(t, c, ClassChain)
	assertFallback(t, c, e, want)
}
