// Package cache is a content-addressed, tamper-evident result cache for
// campaign points. Every scenario point is a deterministic function of
// (spec digest, global index); the cache names each point by a SHA-256
// digest of the point's fully resolved identity — itself a pure function
// of those two coordinates — and stores its measurement in append-only
// hash-chained segments, so a shared cache directory is *verified rather
// than trusted*: bit-rot, truncation, reordering, splicing or foreign
// entries are detected on read and the affected points transparently fall
// back to recomputation.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ptgsched/internal/scenario"
)

// KeyVersion is baked into every per-point digest. Bump it whenever the
// meaning of a measurement changes (engine semantics, simulator
// constants), so stale caches miss instead of serving results computed
// under different physics.
const KeyVersion = 1

// Key is a per-point content address: SHA-256 over the point's canonical
// identity (see KeyFor).
type Key [sha256.Size]byte

// String renders the key as lowercase hex, the wire form used in cache
// segment records.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// The identity record is the canonical JSON the key hashes. It pins
// everything a point's measurement depends on and nothing it doesn't:
//
//   - static (offline and online-arrivals) cells resolve to the cell's
//     semantics — family grid point (the label prints every grid
//     parameter), strategies with their µ, resolved platform, NPTGs
//     value, repetition, derived run seed, arrival process — so two
//     *different* campaigns whose expansions share a cell region produce
//     identical keys for the shared points and memoize across specs;
//   - dynamic cells (non-empty events axis) additionally pin the campaign
//     spec digest and the global point index, because the event timeline
//     is drawn from exactly that pair (Expansion.TimelineFor); their
//     entries are therefore campaign-private by construction.
//
// Coordinates that only relocate a point without changing its physics —
// shard layout, worker count, cell index, NPTGs *index* (the run seed
// already encodes it) — are deliberately absent: the key is invariant
// under every execution layout, which the key-determinism property suite
// asserts.
type identity struct {
	V          int                `json:"v"`
	Cell       string             `json:"cell"`
	Family     string             `json:"family"`
	Strategies []strategyIdentity `json:"strategies"`
	Platform   platformIdentity   `json:"platform"`
	NPTGs      int                `json:"nptgs"`
	Rep        int                `json:"rep"`
	Seed       int64              `json:"seed"`
	Online     *onlineIdentity    `json:"online,omitempty"`
	Policy     string             `json:"policy"`
	Campaign   string             `json:"campaign"`
	Index      int                `json:"index"`
}

type strategyIdentity struct {
	Name string  `json:"name"`
	Mu   float64 `json:"mu"`
}

type clusterIdentity struct {
	Name  string  `json:"name"`
	Procs int     `json:"procs"`
	Speed float64 `json:"speed"`
}

type platformIdentity struct {
	Name         string            `json:"name"`
	SharedSwitch bool              `json:"shared_switch"`
	Clusters     []clusterIdentity `json:"clusters"`
}

type onlineIdentity struct {
	Process string  `json:"process"`
	Rate    float64 `json:"rate"`
}

// KeyFor derives point p's content address under expansion e. specDigest
// must be scenario.SpecDigest(e.Spec); it is passed in so per-sweep
// callers (Bound) hash the spec once, not once per point. The result is a
// pure function of (spec digest, global index): the identity record is
// fully determined by the expansion arithmetic, which those two
// coordinates pin.
func KeyFor(e *scenario.Expansion, specDigest string, p scenario.Point) Key {
	c := e.Cells[p.Cell]
	pf := e.Platforms[p.Platform]
	id := identity{
		V:          KeyVersion,
		Cell:       c.Label,
		Family:     c.Family.String(),
		Strategies: make([]strategyIdentity, len(c.Config.Strategies)),
		Platform: platformIdentity{
			Name:         pf.Name,
			SharedSwitch: pf.SharedSwitch,
			Clusters:     make([]clusterIdentity, len(pf.Clusters)),
		},
		NPTGs: p.NPTGs,
		Rep:   p.Rep,
		Seed:  p.Seed,
		// Static cells leave the campaign coordinates neutral so equal
		// points of different specs collide (that is the cross-campaign
		// memoization); dynamic cells overwrite them below.
		Index: -1,
	}
	for i, s := range c.Config.Strategies {
		id.Strategies[i] = strategyIdentity{Name: s.Name(), Mu: s.Mu}
	}
	for i, cl := range pf.Clusters {
		id.Platform.Clusters[i] = clusterIdentity{Name: cl.Name, Procs: cl.Procs, Speed: cl.Speed}
	}
	if c.Online != nil {
		id.Online = &onlineIdentity{Process: c.Online.Process.String(), Rate: c.Online.Rate}
	}
	if c.Policy != "" {
		id.Policy = c.Policy
		id.Campaign = specDigest
		id.Index = p.Index
	}
	b, err := json.Marshal(id)
	if err != nil {
		// The identity record is plain data; a marshal failure is an
		// engine bug, not an input condition.
		panic(fmt.Sprintf("cache: marshal point identity: %v", err))
	}
	return Key(sha256.Sum256(b))
}
