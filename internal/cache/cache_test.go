package cache

// Core behavior of the content-addressed cache: publish/lookup round
// trips, persistence across handles, incremental Refresh visibility
// between handles sharing a directory, seal sidecars, and survival of an
// abandoned (SIGKILL-shaped) writer. The adversarial battery lives in
// tamper_test.go, the cross-campaign differential in differential_test.go
// and the key-determinism property suite in key_test.go.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ptgsched/internal/scenario"
)

// smokeSpec is the 8-point strassen campaign the store tests use: small
// enough to sweep in milliseconds, rich enough to exercise two platforms.
const smokeSpec = `{
	"name": "smoke",
	"seed": 9,
	"reps": 2,
	"nptgs": [2, 3],
	"platforms": ["lille", "rennes"],
	"families": [{"family": "strassen"}]
}`

func expand(t *testing.T, specJSON string) *scenario.Expansion {
	t.Helper()
	spec, err := scenario.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func open(t *testing.T, dir string) *Cache {
	t.Helper()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fill sweeps the whole expansion through the cache and returns the
// results.
func fill(t *testing.T, c *Cache, e *scenario.Expansion, workers int) []scenario.PointResult {
	t.Helper()
	return e.RunMemo(e.All(), workers, c.Bind(e))
}

// segments lists the cache's segment files (not heads), sorted.
func segments(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range ents {
		n := de.Name()
		if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			out = append(out, filepath.Join(dir, n))
		}
	}
	return out
}

// oneSegment expects exactly one segment file.
func oneSegment(t *testing.T, dir string) string {
	t.Helper()
	segs := segments(t, dir)
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, found %v", segs)
	}
	return segs[0]
}

func TestPublishLookupRoundTrip(t *testing.T) {
	e := expand(t, smokeSpec)
	dir := t.TempDir()
	c := open(t, dir)

	want := e.Run(e.All(), 1)
	got := fill(t, c, e, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cold cached sweep differs from plain run")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != uint64(e.NumPoints()) {
		t.Fatalf("cold sweep: hits=%d misses=%d, want 0/%d", st.Hits, st.Misses, e.NumPoints())
	}

	// Second sweep through the same handle: all hits, identical results.
	got = fill(t, c, e, 4)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("warm cached sweep differs from plain run")
	}
	st = c.Stats()
	if st.Hits != uint64(e.NumPoints()) {
		t.Fatalf("warm sweep: hits=%d, want %d", st.Hits, e.NumPoints())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistenceAcrossHandles(t *testing.T) {
	e := expand(t, smokeSpec)
	dir := t.TempDir()
	c := open(t, dir)
	want := fill(t, c, e, 2)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := open(t, dir)
	got := fill(t, c2, e, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reopened cache served different results")
	}
	st := c2.Stats()
	if st.Hits != uint64(e.NumPoints()) || st.Misses != 0 || st.VerifyFailures != 0 {
		t.Fatalf("reopen: hits=%d misses=%d fails=%d, want %d/0/0",
			st.Hits, st.Misses, st.VerifyFailures, e.NumPoints())
	}
	if st.Entries != e.NumPoints() {
		t.Fatalf("entries=%d, want %d", st.Entries, e.NumPoints())
	}
}

func TestRefreshSeesSiblingWriter(t *testing.T) {
	// Two handles share one directory, as two fleet workers would share
	// one filesystem: entries published through one become visible to the
	// other after Refresh, without reopening.
	e := expand(t, smokeSpec)
	dir := t.TempDir()
	a, b := open(t, dir), open(t, dir)

	fill(t, a, e, 1)
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}

	bb := b.Bind(e)
	if _, ok := bb.Lookup(e.PointAt(0)); ok {
		t.Fatal("b saw a's entry before Refresh")
	}
	if err := b.Refresh(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.NumPoints(); i++ {
		if _, ok := bb.Lookup(e.PointAt(i)); !ok {
			t.Fatalf("point %d not visible through sibling handle after Refresh", i)
		}
	}
	if st := b.Stats(); st.VerifyFailures != 0 {
		t.Fatalf("refresh of a clean sibling segment flagged %d failures", st.VerifyFailures)
	}
	if len(segments(t, dir)) != 1 {
		t.Fatalf("reader handle grew its own segment without publishing")
	}
}

func TestCloseSealsSegment(t *testing.T) {
	e := expand(t, smokeSpec)
	dir := t.TempDir()
	c := open(t, dir)
	fill(t, c, e, 1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	seg := oneSegment(t, dir)
	if _, err := os.Stat(seg + headSuffix); err != nil {
		t.Fatalf("Close left no seal sidecar: %v", err)
	}
}

func TestAbandonedWriterSurvives(t *testing.T) {
	// A SIGKILL'd process neither Closes nor seals. Its segment must
	// still verify (the chain needs no seal) and serve every entry.
	e := expand(t, smokeSpec)
	dir := t.TempDir()
	c := open(t, dir)
	want := fill(t, c, e, 1)
	// Abandon c without Close: no seal is written.
	if segs := segments(t, dir); len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	if _, err := os.Stat(oneSegment(t, dir) + headSuffix); err == nil {
		t.Fatal("seal exists without Close/Sync")
	}

	c2 := open(t, dir)
	got := fill(t, c2, e, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("abandoned segment served different results")
	}
	st := c2.Stats()
	if st.Hits != uint64(e.NumPoints()) || st.VerifyFailures != 0 {
		t.Fatalf("abandoned segment: hits=%d fails=%d, want %d/0", st.Hits, st.VerifyFailures, e.NumPoints())
	}
}

func TestDuplicatePublishesCollapse(t *testing.T) {
	e := expand(t, smokeSpec)
	dir := t.TempDir()
	c := open(t, dir)
	b := c.Bind(e)
	r := e.RunPoint(e.PointAt(0))
	for i := 0; i < 5; i++ {
		b.Publish(e.PointAt(0), r)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := open(t, dir)
	if st := c2.Stats(); st.Entries != 1 {
		t.Fatalf("5 duplicate publishes left %d entries, want 1", st.Entries)
	}
}

func TestForeignDirectoryIsNotAdopted(t *testing.T) {
	// Opening a different directory never sees another cache's entries
	// (sanity for the content-address scoping).
	e := expand(t, smokeSpec)
	a := open(t, t.TempDir())
	fill(t, a, e, 1)
	b := open(t, t.TempDir())
	if st := b.Stats(); st.Entries != 0 {
		t.Fatalf("fresh dir has %d entries", st.Entries)
	}
}
