package query

import (
	"errors"
	"strings"
	"testing"

	"ptgsched/internal/scenario"
)

// testSpec covers two families with distinct strategy label sets: the
// paper set drops PS-width/WPS-width for strassen, so those labels exist
// only in the fft cells — and a shared label like PS-work sits at a
// different column index in each family.
const testSpec = `{
  "name": "query-unit",
  "seed": 5,
  "reps": 3,
  "nptgs": [2, 4],
  "platforms": ["lille", "rennes"],
  "families": [
    {"family": "strassen"},
    {"family": "fft", "k": [2, 3]}
  ]
}`

func expand(t *testing.T) *scenario.Expansion {
	t.Helper()
	spec, err := scenario.ParseSpec([]byte(testSpec))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	return e
}

// fullResult fabricates a deterministic full-width record for point i.
func fullResult(e *scenario.Expansion, i int) scenario.PointResult {
	pt := e.PointAt(i)
	ns := len(e.Cells[pt.Cell].Config.Labels)
	r := scenario.PointResult{
		Index: pt.Index, Cell: pt.Cell, Name: pt.Name,
		Unfairness: make([]float64, ns),
		Makespan:   make([]float64, ns),
		Rel:        make([]float64, ns),
	}
	for s := 0; s < ns; s++ {
		r.Unfairness[s] = float64(i) + float64(s)/10
		r.Makespan[s] = float64(i)*2 + float64(s)/10
		r.Rel[s] = float64(i)/2 + float64(s)/10
	}
	return r
}

// naive is the reference predicate: a full walk deciding each point by
// direct inspection of its cell.
func naive(e *scenario.Expansion, q Query, i int) bool {
	to := q.To
	if to < 0 || to > e.NumPoints() {
		to = e.NumPoints()
	}
	if i < q.From || i >= to {
		return false
	}
	c := e.Cells[e.CellOf(i)]
	if q.Family != "" && c.Family.String() != q.Family {
		return false
	}
	if q.Strategy != "" {
		found := false
		for _, l := range c.Config.Labels {
			if l == q.Strategy {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestPlanMatchesNaivePredicate(t *testing.T) {
	e := expand(t)
	queries := []Query{
		{To: NoLimit},
		{Family: "strassen", To: NoLimit},
		{Family: "fft", To: NoLimit},
		{Strategy: "PS-width", To: NoLimit},
		{Strategy: "PS-work", To: NoLimit},
		{Family: "fft", Strategy: "ES", To: NoLimit},
		{From: 5, To: 17},
		{From: 0, To: 0},
		{From: e.NumPoints() - 1, To: NoLimit},
		{Family: "strassen", From: 3, To: e.NumPoints() - 2},
	}
	for _, q := range queries {
		p, err := Compile(e, q)
		if err != nil {
			t.Fatalf("Compile(%s): %v", q, err)
		}
		want := 0
		for i := 0; i < e.NumPoints(); i++ {
			n := naive(e, q, i)
			if p.Matches(i) != n {
				t.Fatalf("%s: Matches(%d)=%v, naive says %v", q, i, p.Matches(i), n)
			}
			if n {
				want++
			}
		}
		if got := p.NumSelected(); got != want {
			t.Errorf("%s: NumSelected=%d, naive count %d", q, got, want)
		}
	}
}

func TestEachRangeCoversExactlyTheSelection(t *testing.T) {
	e := expand(t)
	for _, q := range []Query{
		{To: NoLimit},
		{Family: "fft", To: NoLimit},
		{Family: "strassen", From: 2, To: 20},
		{Strategy: "PS-width", From: 10, To: NoLimit},
		{From: 7, To: 7},
	} {
		p, err := Compile(e, q)
		if err != nil {
			t.Fatalf("Compile(%s): %v", q, err)
		}
		covered := make([]bool, e.NumPoints())
		prevHi := -1
		p.EachRange(func(lo, hi int) error {
			if lo >= hi {
				t.Fatalf("%s: empty range [%d,%d)", q, lo, hi)
			}
			if lo <= prevHi {
				t.Fatalf("%s: range [%d,%d) not strictly after previous end %d (unmerged or overlapping)", q, lo, hi, prevHi)
			}
			prevHi = hi
			for i := lo; i < hi; i++ {
				covered[i] = true
			}
			return nil
		})
		for i := range covered {
			if covered[i] != p.Matches(i) {
				t.Fatalf("%s: index %d covered=%v matches=%v", q, i, covered[i], p.Matches(i))
			}
		}
	}
}

func TestCompileRejectsBadQueries(t *testing.T) {
	e := expand(t)
	for _, tc := range []struct {
		q    Query
		want string
	}{
		{Query{Family: "nosuch", To: NoLimit}, "no cell of family"},
		{Query{Strategy: "NOPE", To: NoLimit}, "no strategy labeled"},
		{Query{Family: "strassen", Strategy: "PS-width", To: NoLimit}, "no strategy labeled"},
		{Query{From: -1, To: NoLimit}, "negative"},
		{Query{From: 3, To: 2}, "invalid"},
		{Query{From: e.NumPoints(), To: NoLimit}, "outside expansion"},
		{Query{From: e.NumPoints() + 5, To: NoLimit}, "outside expansion"},
	} {
		if _, err := Compile(e, tc.q); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Compile(%s): err=%v, want substring %q", tc.q, err, tc.want)
		}
	}
	// From == 0 is always legal, even on an empty range.
	if _, err := Compile(e, Query{From: 0, To: 0}); err != nil {
		t.Errorf("Compile([0,0)): %v", err)
	}
}

func TestProjectionColumnIsPerCell(t *testing.T) {
	e := expand(t)
	p, err := Compile(e, Query{Strategy: "PS-work", To: NoLimit})
	if err != nil {
		t.Fatal(err)
	}
	// PS-work sits at a different column in strassen (no width strategies)
	// than in fft; the plan must resolve the column per cell.
	cols := map[string]int{}
	for _, ci := range p.Cells() {
		cols[e.Cells[ci].Family.String()] = p.ProjectColumn(ci)
	}
	if cols["strassen"] == cols["fft"] {
		t.Fatalf("PS-work column identical across families (%v); expected per-cell resolution", cols)
	}
	for i := 0; i < e.NumPoints(); i++ {
		if !p.Matches(i) {
			continue
		}
		r := fullResult(e, i)
		k := p.ProjectColumn(r.Cell)
		proj, err := p.Project(r)
		if err != nil {
			t.Fatalf("Project(%d): %v", i, err)
		}
		if len(proj.Unfairness) != 1 || proj.Unfairness[0] != r.Unfairness[k] {
			t.Fatalf("Project(%d) picked %v, want column %d = %v", i, proj.Unfairness, k, r.Unfairness[k])
		}
	}
}

func TestProjectValidatesColumns(t *testing.T) {
	e := expand(t)
	p, err := Compile(e, Query{Strategy: "PS-work", To: NoLimit})
	if err != nil {
		t.Fatal(err)
	}
	good := fullResult(e, 0)
	if _, err := p.Project(good); err != nil {
		t.Fatalf("Project(good): %v", err)
	}
	// A record missing the projected column must classify, not panic.
	bad := good
	bad.Unfairness = bad.Unfairness[:1]
	if _, err := p.Project(bad); !errors.Is(err, ErrMalformedRecord) {
		t.Fatalf("Project(short record): err=%v, want ErrMalformedRecord", err)
	}
	// Without a projection the record passes through untouched.
	all, err := Compile(e, Query{To: NoLimit})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := all.Project(good); err != nil || len(out.Unfairness) != len(good.Unfairness) {
		t.Fatalf("Project without projection = %+v, %v", out, err)
	}
}

func TestCompileCachedMemoizes(t *testing.T) {
	e := expand(t)
	before := PlanCacheStats()
	q := Query{Family: "fft", Strategy: "PS-width", From: 1, To: 40}
	p1, err := CompileCached(e, q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileCached(e, q)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("CompileCached returned distinct plans for the same (digest, query)")
	}
	after := PlanCacheStats()
	if after.Hits < before.Hits+1 {
		t.Errorf("cache hits %d -> %d, want at least one hit", before.Hits, after.Hits)
	}
	if after.Misses < before.Misses+1 {
		t.Errorf("cache misses %d -> %d, want at least one miss", before.Misses, after.Misses)
	}
	// A failed compile is not cached and does not poison later lookups.
	if _, err := CompileCached(e, Query{Family: "nosuch", To: NoLimit}); err == nil {
		t.Fatal("CompileCached(bad family): want error")
	}
}

func TestGroupAggregatorPartialAndOrderInsensitive(t *testing.T) {
	e := expand(t)
	p, err := Compile(e, Query{Family: "strassen", Strategy: "PS-work", From: 1, To: e.NumPoints()})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int) scenario.PointResult {
		out, err := p.Project(fullResult(e, i))
		if err != nil {
			t.Fatalf("Project(%d): %v", i, err)
		}
		return out
	}
	var sel []int
	p.EachRange(func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			sel = append(sel, i)
		}
		return nil
	})
	fwd := NewGroupAggregator(p)
	for _, i := range sel {
		if err := fwd.Add(mk(i)); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	rev := NewGroupAggregator(p)
	for j := len(sel) - 1; j >= 0; j-- {
		if err := rev.Add(mk(sel[j])); err != nil {
			t.Fatalf("Add(%d) reversed: %v", sel[j], err)
		}
	}
	a, b := fwd.Rows(), rev.Rows()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("rows: %d forward, %d reversed", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs by arrival order:\n fwd %+v\n rev %+v", i, a[i], b[i])
		}
	}
	// From=1 cut the first group: its count must be short of a full group.
	if a[0].Count >= e.GroupSlots() {
		t.Errorf("first row count %d, want partial group (< %d)", a[0].Count, e.GroupSlots())
	}
	// Duplicates, out-of-plan records and short records are rejected.
	if err := fwd.Add(mk(sel[0])); err == nil {
		t.Error("duplicate Add: want error")
	}
	if err := fwd.Add(mk(sel[len(sel)-1])); err == nil {
		t.Error("duplicate Add (last point): want error")
	}
	outside := fullResult(e, 0) // index 0 is below From=1
	if err := fwd.Add(outside); err == nil {
		t.Error("Add outside plan: want error")
	}
}
