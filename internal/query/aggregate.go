package query

import (
	"fmt"

	"ptgsched/internal/metrics"
	"ptgsched/internal/scenario"
)

// GroupRow is one line of a filtered aggregation: the summary of one
// strategy column over one (cell, NPTGs) group's selected points.
type GroupRow struct {
	Cell     int     `json:"cell"`
	Label    string  `json:"label"`
	Family   string  `json:"family"`
	NPTGs    int     `json:"nptgs"`
	Strategy string  `json:"strategy"`
	Count    int     `json:"count"`
	Unfair   float64 `json:"unfairness"`
	Makespan float64 `json:"makespan"`
	Rel      float64 `json:"rel_makespan"`
}

// GroupAggregator reduces a filtered result stream into per-(cell, NPTGs)
// summary rows. Unlike scenario.Aggregator it tolerates partial groups —
// a predicate that cuts a cell's index range mid-group still reduces
// deterministically, because slots are filled by position and the final
// means visit filled slots in global point order regardless of arrival
// order. Feed it records already passed through the plan's Project.
//
// Not synchronized: stream into it from one goroutine.
type GroupAggregator struct {
	p *Plan
	// groups[g], g = cell*numNPTGs + nidx, is a flat [metric][col][slot]
	// block like scenario.Aggregator's, where col counts the projected
	// columns (1 under a strategy projection, the cell's strategy count
	// otherwise). filled[g] marks which slots hold a result.
	groups [][]float64
	filled [][]bool
	added  int
}

// NewGroupAggregator returns an empty filtered reduction under the plan.
func NewGroupAggregator(p *Plan) *GroupAggregator {
	e := p.Expansion()
	n := len(e.Cells) * e.NumNPTGs()
	return &GroupAggregator{p: p, groups: make([][]float64, n), filled: make([][]bool, n)}
}

// Added returns the number of results absorbed so far.
func (a *GroupAggregator) Added() int { return a.added }

// cols returns how many strategy columns cell ci's records carry after
// the plan's projection.
func (a *GroupAggregator) cols(ci int) int {
	if a.p.ProjectColumn(ci) >= 0 {
		return 1
	}
	return len(a.p.Expansion().Cells[ci].Config.Strategies)
}

// Add absorbs one projected point result. Records outside the plan,
// duplicates, and records whose column count contradicts the projection
// are rejected.
func (a *GroupAggregator) Add(r scenario.PointResult) error {
	e := a.p.Expansion()
	if r.Index < 0 || r.Index >= e.NumPoints() {
		return fmt.Errorf("query: result index %d outside expansion", r.Index)
	}
	if !a.p.Matches(r.Index) {
		return fmt.Errorf("query: result %d outside the plan's selection (%s)", r.Index, a.p.Query())
	}
	cell, nidx, rep, pf := e.CoordsOf(r.Index)
	if r.Cell != cell {
		return fmt.Errorf("query: result %d is for cell %d, expansion says %d (stale shard?)",
			r.Index, r.Cell, cell)
	}
	nc := a.cols(cell)
	if len(r.Unfairness) != nc || len(r.Makespan) != nc || len(r.Rel) != nc {
		return fmt.Errorf("%w: point %d carries %d/%d/%d strategy columns, group wants %d",
			ErrMalformedRecord, r.Index, len(r.Unfairness), len(r.Makespan), len(r.Rel), nc)
	}

	slots := e.GroupSlots()
	slot := rep*len(e.Platforms) + pf
	g := cell*e.NumNPTGs() + nidx
	if a.groups[g] == nil {
		a.groups[g] = make([]float64, 3*nc*slots)
		a.filled[g] = make([]bool, slots)
	}
	if a.filled[g][slot] {
		return fmt.Errorf("query: duplicate result for point %d", r.Index)
	}
	a.filled[g][slot] = true
	a.added++
	buf := a.groups[g]
	for s := 0; s < nc; s++ {
		buf[(0*nc+s)*slots+slot] = r.Unfairness[s]
		buf[(1*nc+s)*slots+slot] = r.Makespan[s]
		buf[(2*nc+s)*slots+slot] = r.Rel[s]
	}
	return nil
}

// Rows finalizes the reduction: one row per (cell, NPTGs, strategy
// column) group that received at least one result, in global enumeration
// order. Partial groups summarize their filled slots only; Count says how
// many. Means visit slots in global point order, so the rows are
// bit-identical no matter how the stream was interleaved.
func (a *GroupAggregator) Rows() []GroupRow {
	e := a.p.Expansion()
	var rows []GroupRow
	vals := make([]float64, 0, e.GroupSlots())
	for _, ci := range a.p.Cells() {
		c := e.Cells[ci]
		nc := a.cols(ci)
		slots := e.GroupSlots()
		for ni := 0; ni < e.NumNPTGs(); ni++ {
			g := ci*e.NumNPTGs() + ni
			buf, fill := a.groups[g], a.filled[g]
			if buf == nil {
				continue
			}
			count := 0
			for _, ok := range fill {
				if ok {
					count++
				}
			}
			if count == 0 {
				continue
			}
			for s := 0; s < nc; s++ {
				label := a.p.Query().Strategy
				if label == "" {
					label = c.Config.Labels[s]
				}
				row := GroupRow{
					Cell:     ci,
					Label:    c.Label,
					Family:   c.Family.String(),
					NPTGs:    e.NPTGsAt(ni),
					Strategy: label,
					Count:    count,
				}
				for m := 0; m < 3; m++ {
					vals = vals[:0]
					col := buf[(m*nc+s)*slots : (m*nc+s)*slots+slots]
					for slot, ok := range fill {
						if ok {
							vals = append(vals, col[slot])
						}
					}
					mean := metrics.Mean(vals)
					switch m {
					case 0:
						row.Unfair = mean
					case 1:
						row.Makespan = mean
					case 2:
						row.Rel = mean
					}
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}
