// Package query is the result-store query layer: it compiles a
// ResultQuery-shaped predicate (family, strategy projection, index range)
// against a campaign expansion into a Plan — the set of matching cells,
// their contiguous global-index ranges, and the per-cell projection
// column — so readers can push the predicate down to segment byte ranges
// instead of decoding every record and filtering afterwards.
//
// The enumeration arithmetic makes pushdown exact: the global order is
// cell-major, so every cell (and therefore every family and strategy
// predicate, which resolve to cell sets) is a contiguous index run, and an
// index range intersects it in O(1). A Plan is pure derived data; Compile
// is deterministic, so plans are memoized process-wide keyed by
// (spec digest, normalized query) — the dashboard pattern of re-issuing
// the same handful of selective queries pays compilation once.
//
// Concurrency: a Plan is immutable after Compile and safe for concurrent
// use; the memo cache and CacheStats are synchronized. A GroupAggregator
// is not synchronized — feed it from one goroutine.
package query

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ptgsched/internal/scenario"
)

// ErrMalformedRecord classifies a stored record whose shape contradicts
// its cell — e.g. fewer strategy columns than the cell declares, so a
// projection would slice out of range. Readers surface it as a corrupt-
// data error instead of panicking mid-stream.
var ErrMalformedRecord = errors.New("query: malformed result record")

// Query is the normalized predicate over a campaign's point results.
// The zero value selects everything.
type Query struct {
	// Family keeps only points of cells with this PTG family (random,
	// fft, strassen). Empty keeps all families.
	Family string
	// Strategy projects every result down to the single named strategy
	// column, and drops cells that do not carry the label. Empty keeps
	// all columns and all cells.
	Strategy string
	// From is the inclusive lower bound on global point indices.
	From int
	// To is the exclusive upper bound; negative means the end of the
	// expansion. Zero is a real bound: [0,0) is the empty range, not a
	// request for everything — callers encoding "unset" use -1 (NoLimit).
	To int
}

// NoLimit is the Query.To value meaning "the end of the expansion".
const NoLimit = -1

// Key returns the query's canonical cache-key form. Two queries selecting
// the same points under the same projection share a key (To clamping is
// applied by Compile, not here, so the key is expansion-independent only
// in its filter fields — the digest namespaces it).
func (q Query) Key() string {
	to := q.To
	if to < 0 {
		to = NoLimit
	}
	return q.Family + "\x00" + q.Strategy + "\x00" + strconv.Itoa(q.From) + "\x00" + strconv.Itoa(to)
}

// String renders the predicate for error messages and logs.
func (q Query) String() string {
	var parts []string
	if q.Family != "" {
		parts = append(parts, "family="+q.Family)
	}
	if q.Strategy != "" {
		parts = append(parts, "strategy="+q.Strategy)
	}
	if q.From != 0 || q.To >= 0 {
		to := "end"
		if q.To >= 0 {
			to = strconv.Itoa(q.To)
		}
		parts = append(parts, fmt.Sprintf("range=[%d,%s)", q.From, to))
	}
	if len(parts) == 0 {
		return "all"
	}
	return strings.Join(parts, " ")
}

// Plan is a query compiled against one expansion: the matching cells,
// the normalized index range, and the projection columns. Immutable.
type Plan struct {
	e *scenario.Expansion
	q Query

	// From/To is the normalized absolute range: 0 ≤ From ≤ To ≤ NumPoints.
	From, To int

	cellSet []bool // indexed by cell: cell passes the family+strategy filter
	cells   []int  // the matching cells, ascending
	// stratCol[ci] is the projection column of q.Strategy in cell ci, -1
	// when the cell lacks the label; nil when no projection is requested.
	stratCol []int
}

// Compile validates the query against the expansion and derives the plan.
// Unknown families or strategy labels, negative or inverted ranges, and a
// From at or beyond the expansion are errors — a selective query that can
// only ever match nothing is a client mistake, not an empty stream.
func Compile(e *scenario.Expansion, q Query) (*Plan, error) {
	n := e.NumPoints()
	if q.From < 0 {
		return nil, fmt.Errorf("query: from %d is negative", q.From)
	}
	if q.From > 0 && q.From >= n {
		return nil, fmt.Errorf("query: from %d outside expansion [0,%d)", q.From, n)
	}
	to := q.To
	if to < 0 || to > n {
		to = n
	}
	if to < q.From {
		return nil, fmt.Errorf("query: result range [%d,%d) is invalid", q.From, q.To)
	}

	p := &Plan{e: e, q: q, From: q.From, To: to,
		cellSet: make([]bool, len(e.Cells))}
	if q.Strategy != "" {
		p.stratCol = make([]int, len(e.Cells))
	}
	famSeen, stratSeen := q.Family == "", q.Strategy == ""
	for ci, c := range e.Cells {
		if q.Strategy != "" {
			p.stratCol[ci] = -1
		}
		if q.Family != "" {
			if c.Family.String() != q.Family {
				continue
			}
			famSeen = true
		}
		if q.Strategy != "" {
			col := -1
			for li, l := range c.Config.Labels {
				if l == q.Strategy {
					col = li
					break
				}
			}
			if col < 0 {
				continue
			}
			p.stratCol[ci] = col
			stratSeen = true
		}
		p.cellSet[ci] = true
		p.cells = append(p.cells, ci)
	}
	if !famSeen {
		return nil, fmt.Errorf("query: no cell of family %q in this campaign", q.Family)
	}
	if !stratSeen {
		return nil, fmt.Errorf("query: no strategy labeled %q in this campaign", q.Strategy)
	}
	return p, nil
}

// Query returns the predicate the plan was compiled from.
func (p *Plan) Query() Query { return p.q }

// Expansion returns the expansion the plan was compiled against.
func (p *Plan) Expansion() *scenario.Expansion { return p.e }

// CellMatches reports whether cell ci passes the family and strategy
// filters (range excluded — ranges cut within cells).
func (p *Plan) CellMatches(ci int) bool { return p.cellSet[ci] }

// Cells returns the matching cell indices, ascending. Callers must not
// mutate the returned slice.
func (p *Plan) Cells() []int { return p.cells }

// Matches is the full per-point predicate: the residual filter readers
// apply to records pulled from byte ranges that straddle the plan's
// boundaries.
func (p *Plan) Matches(i int) bool {
	return i >= p.From && i < p.To && p.cellSet[p.e.CellOf(i)]
}

// IndexRangeMatches reports whether any index in the closed interval
// [lo, hi] can match the plan's From/To range — the O(1) pruning test for
// an index run that records its min/max point index.
func (p *Plan) IndexRangeMatches(lo, hi int) bool {
	return lo < p.To && hi >= p.From
}

// OverlapsSelection reports whether any index of the closed interval
// [lo, hi] belongs to the plan's selection — the exact pruning test for
// an index run that records its min/max point index: the interval is
// clamped to [From, To) and the matching-cell list is binary-searched
// over the cell span the clamped interval covers (cells are contiguous
// index ranges, so interval-to-cell-span is O(1)).
func (p *Plan) OverlapsSelection(lo, hi int) bool {
	if !p.IndexRangeMatches(lo, hi) {
		return false
	}
	if lo < p.From {
		lo = p.From
	}
	if hi >= p.To {
		hi = p.To - 1
	}
	cLo, cHi := p.e.CellOf(lo), p.e.CellOf(hi)
	j := sort.SearchInts(p.cells, cLo)
	return j < len(p.cells) && p.cells[j] <= cHi
}

// Covers reports whether every index of the closed interval [lo, hi]
// falls inside the plan's From/To range — when a single-cell run is
// covered, its records can be relayed without decoding them.
func (p *Plan) Covers(lo, hi int) bool {
	return lo >= p.From && hi < p.To
}

// EachRange calls fn for every maximal contiguous global-index range the
// plan selects, ascending: matching cells' ranges are intersected with
// [From, To) and adjacent cells merged. This is the minimal set of index
// runs a reader has to visit.
func (p *Plan) EachRange(fn func(lo, hi int) error) error {
	runLo, runHi := 0, 0 // current open run, empty when runLo == runHi
	for _, ci := range p.cells {
		lo, hi := p.e.CellRange(ci)
		if lo < p.From {
			lo = p.From
		}
		if hi > p.To {
			hi = p.To
		}
		if lo >= hi {
			continue
		}
		if lo == runHi && runHi > runLo {
			runHi = hi // contiguous with the open run
			continue
		}
		if runHi > runLo {
			if err := fn(runLo, runHi); err != nil {
				return err
			}
		}
		runLo, runHi = lo, hi
	}
	if runHi > runLo {
		return fn(runLo, runHi)
	}
	return nil
}

// NumSelected returns how many points the plan selects — the sum of its
// EachRange extents, computed arithmetically.
func (p *Plan) NumSelected() int {
	n := 0
	p.EachRange(func(lo, hi int) error { n += hi - lo; return nil })
	return n
}

// ProjectColumn returns the projection column of cell ci, or -1 when no
// projection is requested (or the cell lacks the label — but such cells
// never pass CellMatches).
func (p *Plan) ProjectColumn(ci int) int {
	if p.stratCol == nil {
		return -1
	}
	return p.stratCol[ci]
}

// Project applies the plan's strategy projection to one record: the
// record is narrowed to the single selected column. Records are validated
// first — a record with fewer columns than its cell declares is a
// malformed (torn or foreign) record and yields ErrMalformedRecord, never
// a panic. Without a projection the record is returned unchanged.
func (p *Plan) Project(r scenario.PointResult) (scenario.PointResult, error) {
	if p.stratCol == nil {
		return r, nil
	}
	k := p.stratCol[r.Cell]
	if k < 0 {
		return r, nil
	}
	if k >= len(r.Unfairness) || k >= len(r.Makespan) || k >= len(r.Rel) {
		return scenario.PointResult{}, fmt.Errorf(
			"%w: point %d carries %d/%d/%d strategy columns, projection %q needs column %d",
			ErrMalformedRecord, r.Index, len(r.Unfairness), len(r.Makespan), len(r.Rel), p.q.Strategy, k)
	}
	return scenario.PointResult{
		Index: r.Index, Cell: r.Cell, Name: r.Name,
		Unfairness: r.Unfairness[k : k+1],
		Makespan:   r.Makespan[k : k+1],
		Rel:        r.Rel[k : k+1],
	}, nil
}

// maxCachedPlans bounds the process-wide plan memo; eviction is FIFO —
// the dashboard workload re-issues a small stable set of queries, so
// anything fancier buys nothing.
const maxCachedPlans = 256

// planCache is the process-wide plan memo.
type planCache struct {
	mu    sync.Mutex
	plans map[string]*Plan
	order []string
	hits  atomic.Int64
	miss  atomic.Int64
}

var cache = planCache{plans: make(map[string]*Plan)}

// CacheStats reports the plan memo's hit/miss counters and current size.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Size   int   `json:"size"`
}

// PlanCacheStats snapshots the process-wide plan memo counters.
func PlanCacheStats() CacheStats {
	cache.mu.Lock()
	size := len(cache.plans)
	cache.mu.Unlock()
	return CacheStats{Hits: cache.hits.Load(), Misses: cache.miss.Load(), Size: size}
}

// CompileCached is Compile behind the process-wide memo: plans are keyed
// by (spec digest, normalized query), so repeated dashboard-style queries
// over the same campaign reuse one compilation. Expansions of the same
// spec are deterministic and interchangeable, so a cached plan compiled
// against an earlier expansion of the same digest answers identically.
// Failed compilations are not cached — they are cheap and carry errors.
func CompileCached(e *scenario.Expansion, q Query) (*Plan, error) {
	key := scenario.SpecDigest(e.Spec) + "\x00" + q.Key()
	cache.mu.Lock()
	if p, ok := cache.plans[key]; ok {
		cache.mu.Unlock()
		cache.hits.Add(1)
		return p, nil
	}
	cache.mu.Unlock()
	p, err := Compile(e, q)
	if err != nil {
		cache.miss.Add(1)
		return nil, err
	}
	cache.mu.Lock()
	if _, ok := cache.plans[key]; !ok {
		if len(cache.order) >= maxCachedPlans {
			delete(cache.plans, cache.order[0])
			cache.order = cache.order[1:]
		}
		cache.plans[key] = p
		cache.order = append(cache.order, key)
	}
	cache.mu.Unlock()
	cache.miss.Add(1)
	return p, nil
}
