package experiment

import (
	"fmt"

	"ptgsched/internal/daggen"
	"ptgsched/internal/strategy"
)

// MuSweep is the µ grid of Figure 2.
var MuSweep = []float64{0, 0.3, 0.5, 0.7, 0.8, 0.9, 1}

// Fig2Config returns the campaign of Figure 2: the µ parameter of the
// WPS-work strategy swept over MuSweep on randomly generated PTGs,
// reporting unfairness and (absolute) average makespan per number of
// concurrent PTGs.
func Fig2Config(seed int64, reps int) Config {
	cfg := Config{Family: daggen.FamilyRandom, Seed: seed, Reps: reps}
	for _, mu := range MuSweep {
		cfg.Strategies = append(cfg.Strategies, strategy.WPS(strategy.Work, mu))
		cfg.Labels = append(cfg.Labels, fmt.Sprintf("mu=%.1f", mu))
	}
	return cfg
}

// MuCalibrationConfig returns the analogous sweep for any WPS variant and
// PTG family, used to justify the paper's per-variant µ defaults (§7).
func MuCalibrationConfig(char strategy.Characteristic, family daggen.Family, seed int64, reps int) Config {
	cfg := Config{Family: family, Seed: seed, Reps: reps}
	for _, mu := range MuSweep {
		cfg.Strategies = append(cfg.Strategies, strategy.WPS(char, mu))
		cfg.Labels = append(cfg.Labels, fmt.Sprintf("mu=%.1f", mu))
	}
	return cfg
}

// Fig3Config returns the campaign of Figure 3: the eight constraint
// determination strategies on randomly generated PTGs.
func Fig3Config(seed int64, reps int) Config {
	return Config{Family: daggen.FamilyRandom, Seed: seed, Reps: reps}
}

// Fig4Config returns the campaign of Figure 4: the eight strategies on FFT
// PTGs.
func Fig4Config(seed int64, reps int) Config {
	return Config{Family: daggen.FamilyFFT, Seed: seed, Reps: reps}
}

// Fig5Config returns the campaign of Figure 5: the six applicable
// strategies on Strassen PTGs (width-based strategies coincide with ES).
func Fig5Config(seed int64, reps int) Config {
	return Config{Family: daggen.FamilyStrassen, Seed: seed, Reps: reps}
}
