package experiment

import (
	"reflect"
	"testing"

	"ptgsched/internal/daggen"
	"ptgsched/internal/platform"
)

// parallelTestConfig is a reduced campaign that still exercises multiple
// points, reps and platforms — enough keys (2×2×2 = 8 runs) to force real
// interleaving at 8 workers.
func parallelTestConfig() Config {
	return Config{
		Family:    daggen.FamilyStrassen,
		NPTGs:     []int{2, 4},
		Reps:      2,
		Platforms: []*platform.Platform{platform.Rennes(), platform.Nancy()},
		Seed:      17,
	}
}

// TestRunParallelMatchesSequential is the acceptance test for the parallel
// campaign engine: fanning the runs out over workers must leave every
// aggregated figure value bit-identical to the sequential runner — not
// approximately equal, identical, because neither the per-run seeds nor
// the aggregation order depend on the interleaving.
func TestRunParallelMatchesSequential(t *testing.T) {
	seq := parallelTestConfig()
	seq.Workers = 1
	want := Run(seq)

	for _, workers := range []int{2, 8, 16} {
		cfg := parallelTestConfig()
		cfg.Workers = workers
		got := Run(cfg)
		if !reflect.DeepEqual(want.Points, got.Points) {
			t.Errorf("Workers=%d diverges from the sequential runner:\nseq: %+v\npar: %+v",
				workers, want.Points, got.Points)
		}
	}
}

// TestRunParallelRepeatable re-runs the same parallel campaign twice: the
// fan-out must also be reproducible against itself.
func TestRunParallelRepeatable(t *testing.T) {
	cfg := parallelTestConfig()
	cfg.Workers = 8
	a := Run(cfg)
	b := Run(cfg)
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatal("two identical parallel campaigns diverged")
	}
}

// TestWorkersDefaultsToGOMAXPROCS pins the documented default.
func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	cfg := Config{}.Defaults()
	if cfg.Workers < 1 {
		t.Fatalf("default workers = %d", cfg.Workers)
	}
}
