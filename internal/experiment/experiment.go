// Package experiment implements the paper's evaluation protocol (§7): for
// each number of concurrent PTGs (2–10), generate 25 random PTG
// combinations, schedule each combination on the four Grid'5000 platforms
// (= 100 runs per point) under every strategy, simulate the executions, and
// aggregate unfairness, average makespan and average relative makespan.
//
// Concurrency: Run fans the campaign's runs out over a fixed pool of
// Config.Workers goroutines (default GOMAXPROCS); Workers ≤ 1 runs inline
// on the calling goroutine. Results are bit-identical at every worker
// count: each run derives its scenario from a deterministic seed (runSeed),
// writes only its own output slot, and the aggregation pass reduces those
// slots in a fixed order, so no floating-point operation depends on
// execution interleaving. Runs share only immutable state (platforms,
// strategy values); every dag.Graph is generated privately per run.
package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"ptgsched/internal/core"
	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/metrics"
	"ptgsched/internal/platform"
	"ptgsched/internal/strategy"
)

// Config describes one experiment campaign. Zero fields take the paper's
// defaults (see Defaults).
type Config struct {
	// Family selects the PTG family (random, FFT, Strassen).
	Family daggen.Family
	// NPTGs lists the numbers of concurrent PTGs; default {2,4,6,8,10}.
	NPTGs []int
	// Reps is the number of random PTG combinations per point; default 25
	// (so 100 runs per point over the 4 default platforms).
	Reps int
	// Platforms are the target sites; default the four Grid'5000 subsets.
	Platforms []*platform.Platform
	// Strategies to compare; default strategy.PaperSet(Family). Labels, if
	// set, must be aligned with Strategies and override display names
	// (used by the µ sweep).
	Strategies []strategy.Strategy
	Labels     []string
	// Seed makes the campaign deterministic.
	Seed int64
	// Gen overrides the per-graph generator. When nil, graphs are drawn
	// with daggen.Generate(Family, r) — the paper's random parameter
	// grids. The scenario package sets it to pin one explicit grid cell
	// (e.g. a fixed RandomConfig or FFT size) per campaign.
	Gen func(r *rand.Rand) *dag.Graph `json:"-"`
	// Workers is the number of goroutines runs are fanned out over;
	// default GOMAXPROCS. 1 (or negative) runs the campaign sequentially
	// on the calling goroutine. Results are identical for any value.
	Workers int
}

// Defaults returns cfg with unset fields filled with the paper's protocol.
func (cfg Config) Defaults() Config {
	if cfg.NPTGs == nil {
		cfg.NPTGs = []int{2, 4, 6, 8, 10}
	}
	if cfg.Reps == 0 {
		cfg.Reps = 25
	}
	if cfg.Platforms == nil {
		cfg.Platforms = platform.Grid5000Sites()
	}
	if cfg.Strategies == nil {
		cfg.Strategies = strategy.PaperSet(cfg.Family)
	}
	if cfg.Labels == nil {
		cfg.Labels = make([]string, len(cfg.Strategies))
		for i, s := range cfg.Strategies {
			cfg.Labels[i] = s.Name()
		}
	}
	if len(cfg.Labels) != len(cfg.Strategies) {
		panic("experiment: Labels not aligned with Strategies")
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// Point aggregates one (number of PTGs) measurement across runs: one value
// per strategy, averaged over Reps × len(Platforms) runs.
type Point struct {
	NPTGs int
	// Unfairness[s] is the mean unfairness of strategy s (Eq. 5).
	Unfairness []float64
	// AvgMakespan[s] is the mean simulated global makespan in seconds
	// (used by Fig. 2, which reports absolute makespans).
	AvgMakespan []float64
	// RelMakespan[s] is the mean relative makespan: per run, each
	// strategy's makespan divided by the best strategy's makespan of that
	// run (used by Figs. 3–5).
	RelMakespan []float64
	// UnfairnessStd and RelMakespanStd are sample standard deviations
	// across runs, for error reporting.
	UnfairnessStd  []float64
	RelMakespanStd []float64
	// Runs is the number of runs aggregated.
	Runs int
}

// Result is a full campaign outcome.
type Result struct {
	Config Config
	Points []Point
}

// Run executes the campaign and aggregates the paper's metrics. The run
// grid is never materialized: the worker pool is driven by a bare index
// generator (ForEach), and each index is decomposed arithmetically into
// its (point, rep, platform) key — the same lazy-enumeration discipline
// the scenario layer's PointAt uses. Each pool slot owns one Scratch, so
// the simulation state is reused across all the runs a worker executes.
func Run(cfg Config) *Result {
	cfg = cfg.Defaults()

	perPoint := cfg.Reps * len(cfg.Platforms)
	total := len(cfg.NPTGs) * perPoint
	outs := make([]Measurement, total)
	scratches := make([]*Scratch, Workers(total, cfg.Workers))
	ForEachWorker(total, cfg.Workers, func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = NewScratch()
			scratches[w] = sc
		}
		// Decompose i along the (point, rep, platform) enumeration order.
		pi := i / perPoint
		rem := i % perPoint
		outs[i] = RunOneWith(cfg, pi, rem/len(cfg.Platforms), rem%len(cfg.Platforms), sc)
	})

	res := &Result{Config: cfg}
	ns := len(cfg.Strategies)
	for pi, n := range cfg.NPTGs {
		perStratUnf := make([][]float64, ns)
		perStratMak := make([][]float64, ns)
		perStratRel := make([][]float64, ns)
		runs := 0
		// The point's runs occupy a contiguous index block, in exactly the
		// order the materialized key slice used to enumerate them.
		for _, out := range outs[pi*perPoint : (pi+1)*perPoint] {
			runs++
			for s := 0; s < ns; s++ {
				perStratUnf[s] = append(perStratUnf[s], out.Unfairness[s])
				perStratMak[s] = append(perStratMak[s], out.Makespan[s])
				perStratRel[s] = append(perStratRel[s], out.Rel[s])
			}
		}
		pt := Point{
			NPTGs:          n,
			Unfairness:     make([]float64, ns),
			AvgMakespan:    make([]float64, ns),
			RelMakespan:    make([]float64, ns),
			UnfairnessStd:  make([]float64, ns),
			RelMakespanStd: make([]float64, ns),
			Runs:           runs,
		}
		for s := 0; s < ns; s++ {
			pt.Unfairness[s] = metrics.Mean(perStratUnf[s])
			pt.AvgMakespan[s] = metrics.Mean(perStratMak[s])
			pt.RelMakespan[s] = metrics.Mean(perStratRel[s])
			pt.UnfairnessStd[s] = metrics.StdDev(perStratUnf[s])
			pt.RelMakespanStd[s] = metrics.StdDev(perStratRel[s])
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Workers resolves the effective pool size ForEach and ForEachWorker use
// for n jobs: 0 means GOMAXPROCS, anything ≤ 1 means inline, and the pool
// never exceeds the job count. Callers sizing per-worker state (scratch
// arenas, emit batches) allocate exactly Workers(n, workers) slots.
func Workers(n, workers int) int {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) over a fixed pool of workers
// goroutines (workers ≤ 1 runs inline on the calling goroutine; workers = 0
// uses GOMAXPROCS). It is the campaign worker pool shared by Run and the
// scenario sweep runner: fn must write only state owned by its index, so
// results are independent of the fan-out. ForEach returns when every call
// has finished.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with the pool slot identity exposed: fn runs as
// fn(worker, i) where worker ∈ [0, Workers(n, workers)) names the goroutine
// executing the call. A slot runs its calls strictly sequentially, so
// per-worker state indexed by the slot — scratch arenas, result batches —
// needs no synchronization of its own. Which indices land on which slot is
// scheduling-dependent; fn must not let that affect its results.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	workers = Workers(n, workers)
	if workers <= 1 {
		// Sequential reference path: no goroutines at all.
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Fixed worker pool over an index feed. Each worker touches only the
	// indices it consumes; deterministic per-index work makes the fan-out
	// invisible in the results.
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// RunSeed derives a deterministic seed for one run, independent of
// execution order. The PTG combination is shared by all platforms of the
// same (point, rep) pair, as in the paper's "25 random combinations"
// protocol, so the platform index does not enter the seed.
func RunSeed(base int64, point, rep int) int64 {
	h := uint64(base) * 0x9e3779b97f4a7c15
	h ^= uint64(point+1) * 0xbf58476d1ce4e5b9
	h ^= uint64(rep+1) * 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

// Measurement is the outcome of one campaign run: one value per strategy.
type Measurement struct {
	// Unfairness is Eq. 5 per strategy.
	Unfairness []float64
	// Makespan is the simulated global makespan in seconds per strategy.
	Makespan []float64
	// Rel is each strategy's makespan divided by the run's best one.
	Rel []float64
}

// Scratch amortizes one worker's per-run state — the core scheduler
// scratch (simulation engine, flow net, executor buffers) plus the run's
// graph and M_own slices and a per-platform scheduler — across the many
// runs a pool slot executes. A Scratch must be confined to one goroutine.
// The Measurements RunOneWith returns are NOT scratch-owned: their slices
// are freshly allocated, so results may be retained and batched freely.
type Scratch struct {
	core   *core.Scratch
	graphs []*dag.Graph
	own    []float64
	// Scheduler cache keyed by platform index; pfs guards reuse across
	// calls with different Config values.
	pfs    []*platform.Platform
	scheds []*core.Scheduler
}

// NewScratch returns an empty scratch ready for RunOneWith.
func NewScratch() *Scratch {
	return &Scratch{core: core.NewScratch()}
}

// schedulerFor returns the cached paper-configuration scheduler for
// platform pfIdx, building it on first use (or when the platform set
// changed between calls, which only mixed-config callers do).
func (sc *Scratch) schedulerFor(pf *platform.Platform, pfIdx int) *core.Scheduler {
	for len(sc.scheds) <= pfIdx {
		sc.scheds = append(sc.scheds, nil)
		sc.pfs = append(sc.pfs, nil)
	}
	if sc.pfs[pfIdx] != pf {
		sc.scheds[pfIdx] = core.New(pf)
		sc.pfs[pfIdx] = pf
	}
	return sc.scheds[pfIdx]
}

// RunOne executes the single campaign run identified by (point, rep,
// platform) — indices into cfg.NPTGs and cfg.Platforms — on the calling
// goroutine. Run is exactly an aggregation of RunOne over the full key
// grid; the scenario package calls it directly to sweep spec-driven
// expansions point by point with bit-identical results.
func RunOne(cfg Config, point, rep, pfIdx int) Measurement {
	return RunOneWith(cfg, point, rep, pfIdx, NewScratch())
}

// RunOneWith is RunOne on a reusable worker-owned scratch: the simulation
// and scheduling state is recycled across calls, so a worker sweeping
// thousands of runs allocates only what escapes into the Measurement.
// Results are bit-identical to RunOne — the scratch changes where buffers
// live, never what is computed.
func RunOneWith(cfg Config, point, rep, pfIdx int, sc *Scratch) Measurement {
	r := rand.New(rand.NewSource(RunSeed(cfg.Seed, point, rep)))
	n := cfg.NPTGs[point]
	gen := cfg.Gen
	if gen == nil {
		gen = func(r *rand.Rand) *dag.Graph { return daggen.Generate(cfg.Family, r) }
	}
	sc.graphs = growSlice(sc.graphs, n)
	graphs := sc.graphs
	for i := range graphs {
		graphs[i] = gen(r)
	}
	pf := cfg.Platforms[pfIdx]
	sched := sc.schedulerFor(pf, pfIdx)

	sc.own = growSlice(sc.own, n)
	own := sc.own
	for i, g := range graphs {
		own[i] = sched.ScheduleAloneWith(sc.core, g)
	}

	m := Measurement{
		Unfairness: make([]float64, len(cfg.Strategies)),
		Makespan:   make([]float64, len(cfg.Strategies)),
	}
	for s, strat := range cfg.Strategies {
		res := sched.ScheduleWith(sc.core, graphs, strat)
		ev := res.EvaluateWith(sc.core, own)
		m.Unfairness[s] = ev.Unfairness
		m.Makespan[s] = ev.Makespan
	}
	m.Rel = metrics.RelativeMakespans(m.Makespan)
	return m
}

// growSlice resizes s to length n, reusing capacity when possible. The
// returned slice's contents are unspecified; callers overwrite them.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// String summarizes a result compactly.
func (r *Result) String() string {
	return fmt.Sprintf("experiment(%s, %d strategies, %d points, %d runs/point)",
		r.Config.Family, len(r.Config.Strategies), len(r.Points),
		r.Config.Reps*len(r.Config.Platforms))
}
