package experiment

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"ptgsched/internal/daggen"
	"ptgsched/internal/platform"
	"ptgsched/internal/strategy"
)

// smallConfig keeps campaign tests fast: one platform, few reps, two
// points.
func smallConfig(family daggen.Family) Config {
	return Config{
		Family:    family,
		NPTGs:     []int{2, 4},
		Reps:      2,
		Platforms: []*platform.Platform{platform.Lille()},
		Seed:      7,
		Workers:   4,
	}
}

func TestRunProducesAlignedPoints(t *testing.T) {
	res := Run(smallConfig(daggen.FamilyRandom))
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	ns := len(res.Config.Strategies)
	if ns != 8 {
		t.Fatalf("%d strategies, want 8 for random family", ns)
	}
	for _, pt := range res.Points {
		if pt.Runs != 2 {
			t.Errorf("point %d aggregated %d runs, want 2", pt.NPTGs, pt.Runs)
		}
		for _, series := range [][]float64{pt.Unfairness, pt.AvgMakespan, pt.RelMakespan} {
			if len(series) != ns {
				t.Fatalf("series length %d, want %d", len(series), ns)
			}
		}
		for s := 0; s < ns; s++ {
			if pt.Unfairness[s] < 0 {
				t.Errorf("negative unfairness")
			}
			if pt.AvgMakespan[s] <= 0 {
				t.Errorf("non-positive makespan")
			}
			if pt.RelMakespan[s] < 1 {
				t.Errorf("relative makespan %g < 1", pt.RelMakespan[s])
			}
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := smallConfig(daggen.FamilyStrassen)
	cfg.Workers = 1
	seq := Run(cfg)
	cfg.Workers = 8
	par := Run(cfg)
	for p := range seq.Points {
		for s := range seq.Points[p].Unfairness {
			if seq.Points[p].Unfairness[s] != par.Points[p].Unfairness[s] {
				t.Fatalf("unfairness differs across worker counts at point %d strategy %d", p, s)
			}
			if seq.Points[p].AvgMakespan[s] != par.Points[p].AvgMakespan[s] {
				t.Fatalf("makespan differs across worker counts")
			}
		}
	}
}

func TestSameCombinationAcrossPlatforms(t *testing.T) {
	// The paper schedules the same 25 PTG combinations on all 4 platforms.
	if RunSeed(42, 0, 3) != RunSeed(42, 0, 3) {
		t.Fatal("PTG combination seed differs across platforms")
	}
	if RunSeed(42, 0, 3) == RunSeed(42, 0, 4) {
		t.Fatal("different reps share a seed")
	}
}

func TestFig2ConfigShape(t *testing.T) {
	cfg := Fig2Config(1, 5).Defaults()
	if len(cfg.Strategies) != len(MuSweep) {
		t.Fatalf("%d strategies, want %d", len(cfg.Strategies), len(MuSweep))
	}
	for i, s := range cfg.Strategies {
		if s.Kind != strategy.WeightedProportionalShare || s.Char != strategy.Work {
			t.Errorf("strategy %d is %s, want WPS-work", i, s)
		}
		if s.Mu != MuSweep[i] {
			t.Errorf("mu[%d] = %g, want %g", i, s.Mu, MuSweep[i])
		}
		if !strings.HasPrefix(cfg.Labels[i], "mu=") {
			t.Errorf("label %q lacks mu prefix", cfg.Labels[i])
		}
	}
}

func TestFigConfigsFamilies(t *testing.T) {
	if Fig3Config(1, 1).Family != daggen.FamilyRandom {
		t.Error("Fig3 family")
	}
	if Fig4Config(1, 1).Family != daggen.FamilyFFT {
		t.Error("Fig4 family")
	}
	cfg := Fig5Config(1, 1).Defaults()
	if cfg.Family != daggen.FamilyStrassen {
		t.Error("Fig5 family")
	}
	if len(cfg.Strategies) != 6 {
		t.Errorf("Fig5 has %d strategies, want 6", len(cfg.Strategies))
	}
}

func TestRenderTable(t *testing.T) {
	res := Run(smallConfig(daggen.FamilyRandom))
	var buf bytes.Buffer
	if err := res.RenderTable(&buf, Unfairness); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"unfairness", "#PTGs", "WPS-work", "S"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	res := Run(smallConfig(daggen.FamilyFFT))
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + len(res.Points)*len(res.Config.Strategies)
	if len(records) != want {
		t.Fatalf("%d CSV records, want %d", len(records), want)
	}
	if records[0][0] != "family" {
		t.Errorf("header = %v", records[0])
	}
}

func TestMetricString(t *testing.T) {
	if Unfairness.String() != "unfairness" || RelMakespan.String() != "average relative makespan" {
		t.Fatal("Metric.String mismatch")
	}
}

func TestDefaultsFillPaperProtocol(t *testing.T) {
	cfg := Config{Family: daggen.FamilyRandom}.Defaults()
	if len(cfg.NPTGs) != 5 || cfg.NPTGs[0] != 2 || cfg.NPTGs[4] != 10 {
		t.Errorf("NPTGs = %v", cfg.NPTGs)
	}
	if cfg.Reps != 25 {
		t.Errorf("Reps = %d, want 25", cfg.Reps)
	}
	if len(cfg.Platforms) != 4 {
		t.Errorf("%d platforms, want 4", len(cfg.Platforms))
	}
	if cfg.Reps*len(cfg.Platforms) != 100 {
		t.Error("runs per point != 100")
	}
}
