package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Metric selects which aggregated series to render.
type Metric int

const (
	// Unfairness renders Eq. 5 averages (left plots of Figs. 2–5).
	Unfairness Metric = iota
	// AvgMakespan renders absolute makespans in seconds (right plot of
	// Fig. 2).
	AvgMakespan
	// RelMakespan renders average relative makespans (right plots of
	// Figs. 3–5).
	RelMakespan
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Unfairness:
		return "unfairness"
	case AvgMakespan:
		return "average makespan (s)"
	case RelMakespan:
		return "average relative makespan"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

func (p Point) series(m Metric) []float64 {
	switch m {
	case Unfairness:
		return p.Unfairness
	case AvgMakespan:
		return p.AvgMakespan
	case RelMakespan:
		return p.RelMakespan
	default:
		panic(fmt.Sprintf("experiment: unknown metric %d", int(m)))
	}
}

// RenderTable writes an aligned text table of the chosen metric: one row
// per number of concurrent PTGs, one column per strategy.
func (r *Result) RenderTable(w io.Writer, m Metric) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s PTGs (%d runs/point)\n",
		m, r.Config.Family, r.Config.Reps*len(r.Config.Platforms))
	fmt.Fprintf(&b, "%-7s", "#PTGs")
	for _, label := range r.Config.Labels {
		fmt.Fprintf(&b, "%12s", label)
	}
	b.WriteByte('\n')
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-7d", pt.NPTGs)
		for _, v := range pt.series(m) {
			fmt.Fprintf(&b, "%12.3f", v)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV exports every metric of every point in long form:
// family,nptgs,strategy,unfairness,unfairness_std,avg_makespan,rel_makespan,rel_makespan_std,runs.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"family", "nptgs", "strategy",
		"unfairness", "unfairness_std",
		"avg_makespan_s", "rel_makespan", "rel_makespan_std", "runs",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, pt := range r.Points {
		for s, label := range r.Config.Labels {
			rec := []string{
				r.Config.Family.String(),
				strconv.Itoa(pt.NPTGs),
				label,
				f(pt.Unfairness[s]), f(pt.UnfairnessStd[s]),
				f(pt.AvgMakespan[s]), f(pt.RelMakespan[s]), f(pt.RelMakespanStd[s]),
				strconv.Itoa(pt.Runs),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
