package store_test

import (
	"fmt"
	"os"
	"path/filepath"

	"ptgsched/internal/scenario"
	"ptgsched/internal/store"
)

// ExampleCreate sweeps a small campaign into a durable store: every
// completed point is appended to the store's JSONL segments, and the final
// aggregate is read back from disk state.
func ExampleCreate() {
	spec, err := scenario.ParseSpec([]byte(`{
		"name": "demo", "seed": 9, "reps": 2, "nptgs": [2, 3],
		"platforms": ["lille"], "families": [{"family": "strassen"}]
	}`))
	if err != nil {
		panic(err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		panic(err)
	}

	dir := filepath.Join(os.TempDir(), "ptgsched-store-example")
	os.RemoveAll(dir)
	defer os.RemoveAll(dir)

	s, err := store.Create(dir, e, 2) // 2 segments: point i lives in i mod 2
	if err != nil {
		panic(err)
	}
	defer s.Close()

	ran, skipped, err := s.Sweep(e.All(), 1)
	if err != nil {
		panic(err)
	}
	tables, err := s.Aggregate()
	if err != nil {
		panic(err)
	}
	fmt.Printf("ran %d, skipped %d of %d points\n", ran, skipped, e.NumPoints())
	fmt.Printf("%d summary table(s), %d rows\n", len(tables), len(tables[0].Result.Points))
	// Output:
	// ran 4, skipped 0 of 4 points
	// 1 summary table(s), 2 rows
}

// ExampleOpen resumes a killed sweep: the store is reopened (recovering a
// torn final line if the crash hit mid-append), the done bitmap reports
// what is already complete, and Sweep runs only the pending points — the
// final aggregate is bit-identical to an uninterrupted run.
func ExampleOpen() {
	spec, err := scenario.ParseSpec([]byte(`{
		"name": "demo", "seed": 9, "reps": 2, "nptgs": [2, 3],
		"platforms": ["lille"], "families": [{"family": "strassen"}]
	}`))
	if err != nil {
		panic(err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		panic(err)
	}

	dir := filepath.Join(os.TempDir(), "ptgsched-resume-example")
	os.RemoveAll(dir)
	defer os.RemoveAll(dir)

	// First life: the sweep is "killed" after half the points (a prefix
	// index set).
	s, err := store.Create(dir, e, 1)
	if err != nil {
		panic(err)
	}
	if _, _, err := s.Sweep(scenario.IndexSet{Limit: 2, Stride: 1}, 1); err != nil {
		panic(err)
	}
	s.Close()

	// Second life: reopen against the same expansion and continue.
	s, err = store.Open(dir, e)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	fmt.Printf("already complete: %d points\n", s.CountDone(e.All()))
	ran, skipped, err := s.Sweep(e.All(), 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("resumed: ran %d, skipped %d\n", ran, skipped)
	fmt.Printf("progress: %d/%d\n", s.Progress().Completed, s.Progress().Total)
	// Output:
	// already complete: 2 points
	// resumed: ran 2, skipped 2
	// progress: 4/4
}
