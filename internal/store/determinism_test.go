package store

// Worker-count invariance for the scratch-threaded Sweep: the store's
// logical contents (results by point index, in their JSONL wire form) must
// be bit-identical at every worker count. Segment byte order is append
// order and legitimately varies with scheduling; the sorted wire form is
// the determinism contract.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"ptgsched/internal/scenario"
)

func TestSweepWorkerInvariance(t *testing.T) {
	e := expand(t, smokeSpec)

	wire := func(t *testing.T, workers int) []byte {
		t.Helper()
		dir := filepath.Join(t.TempDir(), "store")
		s, err := Create(dir, e, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if ran, skipped, err := s.Sweep(e.All(), workers); err != nil || ran != e.NumPoints() || skipped != 0 {
			t.Fatalf("Sweep = (%d, %d, %v), want (%d, 0, nil)", ran, skipped, err, e.NumPoints())
		}
		results, err := s.Results() // sorted by point index
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := scenario.WriteJSONL(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := wire(t, 1)
	for _, workers := range []int{2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			if got := wire(t, workers); !bytes.Equal(got, want) {
				t.Fatal("store contents differ from the 1-worker reference")
			}
		})
	}
}
