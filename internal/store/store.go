// Package store implements the durable campaign result store: an
// append-only, crash-tolerant directory of per-point results that lets a
// killed sweep resume exactly where it stopped and still aggregate
// bit-identically to an uninterrupted run.
//
// On-disk format (documented in docs/ARCHITECTURE.md):
//
//	DIR/manifest.json    — Manifest: format version, campaign name, the
//	                       canonical spec digest (scenario.SpecDigest), the
//	                       expansion cardinality and the shard layout.
//	DIR/segment-NNNN.jsonl — one append-only JSONL segment per shard; a
//	                       point with global index i lives in segment
//	                       i mod Shards (exactly scenario's shard
//	                       partition). Each line is one scenario.PointResult
//	                       in the bit-exact campaign wire format.
//
// Durability and recovery rules: every Append writes one whole line with a
// single write(2) call to an O_APPEND file, so a crash — SIGKILL, OOM, power
// loss mid-write — can tear at most the final line of each segment. Open
// recovers by dropping an incomplete or unparsable final line; the
// physical truncation back to the last good record is deferred until this
// process first appends to that segment, so opening a shared store never
// mutates segments owned by other still-running shard processes. A
// malformed line anywhere *before* the end is real corruption and fails
// loudly. Every recovered
// record is validated against the expansion (index range, segment
// congruence, cell agreement), and the manifest's spec digest must match
// the expansion's, so a store can never silently resume a different sweep.
//
// Concurrency: one Store may be appended to by any number of goroutines
// (appends to the same segment serialize on a per-segment mutex); Sweep
// fans pending points over the experiment worker pool and appends each
// result as it completes. Multiple *processes* may share one store
// directory only if they write disjoint shards (the ptgbench -shard
// workflow); the manifest is written once by whoever creates the store.
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ptgsched/internal/experiment"
	"ptgsched/internal/scenario"
)

// ErrFailed poisons a Store whose segment write failed: the failed record
// may be half on disk, so further appends through the same handle could
// concatenate onto the torn bytes and turn a recoverable tail into
// mid-segment corruption. Reopen the store — Open truncates the torn tail
// and the point becomes pending again.
var ErrFailed = errors.New("store: a previous append failed; reopen the store to recover")

// FormatVersion identifies the on-disk layout; Open rejects manifests
// written by a newer, unknown layout.
const FormatVersion = 1

// manifestName is the manifest file inside a store directory.
const manifestName = "manifest.json"

// Manifest pins a store directory to one campaign expansion.
type Manifest struct {
	// Version is the on-disk format version (FormatVersion).
	Version int `json:"version"`
	// Name echoes the spec's campaign name.
	Name string `json:"name,omitempty"`
	// SpecDigest is scenario.SpecDigest of the campaign spec; Open refuses
	// a store whose digest differs from the expansion it is opened with.
	SpecDigest string `json:"spec_digest"`
	// Points is the expansion cardinality.
	Points int `json:"points"`
	// Shards is the segment layout: point i lives in segment i mod Shards.
	Shards int `json:"shards"`
}

// ShardState describes one segment's progress.
type ShardState struct {
	// Index is the segment index (= shard index of the modulo partition).
	Index int `json:"index"`
	// Points is the number of expansion points the segment owns.
	Points int `json:"points"`
	// Completed is the number of results it holds.
	Completed int `json:"completed"`
}

// Progress is a point-in-time snapshot of a store's completion state.
type Progress struct {
	Completed int          `json:"completed"`
	Total     int          `json:"total"`
	Shards    []ShardState `json:"shards"`
}

// Store is an open campaign result store. Create and Open are the two
// constructors; Close releases the segment files.
type Store struct {
	dir string
	man Manifest
	e   *scenario.Expansion

	segs []*segment

	mu        sync.Mutex // guards done/results/completed
	done      []bool     // per global point index
	results   []scenario.PointResult
	completed int

	failed atomic.Bool // sticky append-failure flag; Sweep drains fast once set
}

// segment is one append-only JSONL file.
type segment struct {
	mu     sync.Mutex
	f      *os.File
	points int // expansion points owned by this segment
	// truncateAt ≥ 0 marks a torn tail found at Open: the file is
	// physically truncated back to this offset immediately before this
	// process's first append to the segment. Deferring the truncation
	// keeps Open read-only on segments owned by other still-running shard
	// processes (a shared-filesystem reader can misclassify a foreign
	// in-flight append as torn; it must not destroy it).
	truncateAt int64
}

// segmentPath names segment i of a store directory.
func segmentPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("segment-%04d.jsonl", i))
}

// Create initializes dir as a new store for the expansion, partitioned into
// shards segments (shards < 1 means 1). dir must not already contain a
// store; a fresh or empty directory is created as needed.
func Create(dir string, e *scenario.Expansion, shards int) (*Store, error) {
	if shards < 1 {
		shards = 1
	}
	if shards > len(e.Points) && len(e.Points) > 0 {
		return nil, fmt.Errorf("store: %d shards for %d points", shards, len(e.Points))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Refuse to build a store around stale segments (e.g. a directory
	// whose manifest was deleted to "reset" it): records invisible to
	// this run's done-set would be concatenated with fresh ones and brick
	// the store at the next Open with duplicate-point errors.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".jsonl") {
			return nil, fmt.Errorf("store: %s already contains segment %s (empty the directory, or open the store it belongs to)",
				dir, ent.Name())
		}
	}
	man := Manifest{
		Version:    FormatVersion,
		Name:       e.Spec.Name,
		SpecDigest: scenario.SpecDigest(e.Spec),
		Points:     len(e.Points),
		Shards:     shards,
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	// O_EXCL makes creation the atomic claim on the directory: two
	// concurrent creators cannot both succeed and leave segments laid out
	// under two different manifests.
	mf, err := os.OpenFile(filepath.Join(dir, manifestName), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("store: %s already holds a store (open it instead)", dir)
		}
		return nil, err
	}
	if _, err := mf.Write(append(mb, '\n')); err != nil {
		mf.Close()
		return nil, err
	}
	if err := mf.Close(); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, man: man, e: e, done: make([]bool, len(e.Points))}
	if err := s.openSegments(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Open opens an existing store and recovers its completed-result state:
// each segment is scanned, a torn final line (the footprint of a crash
// mid-append) is dropped — its point becomes pending again, and the torn
// bytes are physically truncated just before this process first appends to
// that segment — and every surviving record is validated against the
// expansion. The manifest must match the expansion — same spec digest,
// same cardinality — so stale or foreign directories fail instead of
// resuming the wrong sweep.
func Open(dir string, e *scenario.Expansion) (*Store, error) {
	mb, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: %s is not a store: %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(mb, &man); err != nil {
		return nil, fmt.Errorf("store: %s: invalid manifest: %w", dir, err)
	}
	if man.Version != FormatVersion {
		return nil, fmt.Errorf("store: %s: format version %d, this build reads %d", dir, man.Version, FormatVersion)
	}
	if got, want := scenario.SpecDigest(e.Spec), man.SpecDigest; got != want {
		return nil, fmt.Errorf("store: %s was written by a different campaign spec (digest %.12s, expansion has %.12s)", dir, want, got)
	}
	if man.Points != len(e.Points) {
		return nil, fmt.Errorf("store: %s records %d points, expansion has %d", dir, man.Points, len(e.Points))
	}
	if man.Shards < 1 || (man.Points > 0 && man.Shards > man.Points) {
		// The same invariant Create enforces; a corrupt shard count must
		// not drive openSegments into fabricating files.
		return nil, fmt.Errorf("store: %s: invalid shard count %d for %d points", dir, man.Shards, man.Points)
	}
	s := &Store{dir: dir, man: man, e: e, done: make([]bool, len(e.Points))}
	trunc := make(map[int]int64)
	for i := 0; i < man.Shards; i++ {
		if err := s.recoverSegment(i, trunc); err != nil {
			s.Close()
			return nil, err
		}
	}
	if err := s.openSegments(); err != nil {
		s.Close()
		return nil, err
	}
	for i, off := range trunc {
		s.segs[i].truncateAt = off
	}
	return s, nil
}

// openSegments opens every segment file for append — creating any that do
// not exist yet, e.g. the segment of a shard that never started — and
// counts the expansion points each segment owns.
func (s *Store) openSegments() error {
	s.segs = make([]*segment, s.man.Shards)
	for i := range s.segs {
		f, err := os.OpenFile(segmentPath(s.dir, i), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		s.segs[i] = &segment{f: f, truncateAt: -1}
	}
	for i := range s.e.Points {
		s.segs[i%s.man.Shards].points++
	}
	return nil
}

// recoverSegment replays one segment's records. A torn tail is dropped
// from the recovered state and its offset recorded in trunc; the physical
// truncation is deferred to the first append (see segment.truncateAt).
func (s *Store) recoverSegment(idx int, trunc map[int]int64) error {
	path := segmentPath(s.dir, idx)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil // a shard that never started; its points are pending
	}
	if err != nil {
		return err
	}
	good := 0 // byte offset after the last valid record
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Trailing bytes without a newline: a torn final line.
			break
		}
		line := data[off : off+nl]
		var r scenario.PointResult
		if len(bytes.TrimSpace(line)) == 0 {
			good = off + nl + 1
			off = good
			continue
		}
		if err := json.Unmarshal(line, &r); err != nil {
			if off+nl+1 >= len(data) {
				// The final line parsed as garbage: also a torn write
				// (crashed between the payload and its newline landing).
				break
			}
			return fmt.Errorf("store: %s: corrupt record before end of segment: %w", path, err)
		}
		if err := s.validate(r, idx); err != nil {
			return fmt.Errorf("store: %s: %w", path, err)
		}
		if s.done[r.Index] {
			return fmt.Errorf("store: %s: duplicate result for point %d", path, r.Index)
		}
		s.done[r.Index] = true
		s.results = append(s.results, r)
		s.completed++
		good = off + nl + 1
		off = good
	}
	if good < len(data) {
		trunc[idx] = int64(good)
	}
	return nil
}

// validate checks one record against the expansion and the shard layout.
func (s *Store) validate(r scenario.PointResult, seg int) error {
	if r.Index < 0 || r.Index >= len(s.e.Points) {
		return fmt.Errorf("point index %d outside expansion [0,%d)", r.Index, len(s.e.Points))
	}
	if r.Index%s.man.Shards != seg {
		return fmt.Errorf("point %d does not belong to segment %d of %d", r.Index, seg, s.man.Shards)
	}
	if r.Cell != s.e.Points[r.Index].Cell {
		return fmt.Errorf("point %d is for cell %d, expansion says %d", r.Index, r.Cell, s.e.Points[r.Index].Cell)
	}
	return nil
}

// Manifest returns the store's manifest.
func (s *Store) Manifest() Manifest { return s.man }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Append durably records one point result: the JSONL line is written with a
// single write call to the point's O_APPEND segment, so a crash tears at
// most the final line (which Open truncates away). Appending a point that
// the store already holds is an error — resume flows skip completed points,
// so a duplicate means two writers raced on the same shard.
func (s *Store) Append(r scenario.PointResult) error {
	if s.failed.Load() {
		return ErrFailed
	}
	// validate rejects an out-of-range index before the modulo below can
	// pick a segment from it.
	if err := s.validate(r, r.Index%s.man.Shards); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	seg := s.segs[r.Index%s.man.Shards]
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')

	s.mu.Lock()
	if s.done[r.Index] {
		s.mu.Unlock()
		return fmt.Errorf("store: point %d already recorded", r.Index)
	}
	s.done[r.Index] = true
	s.mu.Unlock()

	seg.mu.Lock()
	if seg.truncateAt >= 0 {
		// First append since recovery found a torn tail here: this
		// process owns the segment now, so drop the torn bytes before
		// they can be concatenated onto.
		if err := seg.f.Truncate(seg.truncateAt); err != nil {
			seg.mu.Unlock()
			s.failed.Store(true)
			return fmt.Errorf("store: truncating torn tail before append: %w", err)
		}
		seg.truncateAt = -1
	}
	_, err = seg.f.Write(line)
	seg.mu.Unlock()
	if err != nil {
		// The record may be half on disk; mark the store failed so Sweep
		// stops, and leave recovery to the next Open's torn-tail rule.
		s.failed.Store(true)
		return fmt.Errorf("store: appending point %d: %w", r.Index, err)
	}

	s.mu.Lock()
	s.results = append(s.results, r)
	s.completed++
	s.mu.Unlock()
	return nil
}

// Resume returns the set of completed point indices — the points a resumed
// sweep must skip. The scenario runner subtracts it from its point list and
// fans only the pending indices over experiment.ForEachIndices.
func (s *Store) Resume() map[int]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	done := make(map[int]bool, s.completed)
	for i, d := range s.done {
		if d {
			done[i] = true
		}
	}
	return done
}

// Pending filters points down to those the store has not yet recorded.
func (s *Store) Pending(points []scenario.Point) []scenario.Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []scenario.Point
	for _, p := range points {
		if !s.done[p.Index] {
			out = append(out, p)
		}
	}
	return out
}

// Progress snapshots completion per shard and overall.
func (s *Store) Progress() Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	pr := Progress{Completed: s.completed, Total: len(s.e.Points)}
	perShard := make([]int, s.man.Shards)
	for i, d := range s.done {
		if d {
			perShard[i%s.man.Shards]++
		}
	}
	for i, seg := range s.segs {
		pr.Shards = append(pr.Shards, ShardState{Index: i, Points: seg.points, Completed: perShard[i]})
	}
	return pr
}

// Results returns the store's completed results in global point order. The
// slice is a copy; for a fully-complete store it aggregates through
// scenario.Aggregate bit-identically to an uninterrupted in-memory run.
func (s *Store) Results() []scenario.PointResult {
	s.mu.Lock()
	out := make([]scenario.PointResult, len(s.results))
	copy(out, s.results)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Aggregate reduces a complete store into per-cell summary tables — exactly
// scenario.Aggregate over Results, so a resumed run's summary is
// bit-identical to an uninterrupted one.
func (s *Store) Aggregate() ([]scenario.Table, error) {
	return s.e.Aggregate(s.Results())
}

// Sweep runs every pending point of points (a full expansion or one shard)
// over the experiment worker pool, appending each result as it completes,
// and reports how many points it ran and how many were already recorded.
// Results are bit-identical at every worker count and across any
// kill/resume split: each point derives everything from its own seed.
func (s *Store) Sweep(points []scenario.Point, workers int) (ran, skipped int, err error) {
	if s.failed.Load() {
		return 0, 0, ErrFailed
	}
	pending := s.Pending(points)
	skipped = len(points) - len(pending)
	idx := make([]int, len(pending))
	for i, p := range pending {
		idx[i] = p.Index
	}
	var (
		errMu    sync.Mutex
		firstErr error
	)
	experiment.ForEachIndices(idx, workers, func(i int) {
		if s.failed.Load() {
			return // an earlier append failed; drain fast
		}
		r := s.e.RunPoint(s.e.Points[i])
		if err := s.Append(r); err != nil {
			errMu.Lock()
			// Keep the most informative error: a worker racing in after
			// the failure sees the bare poisoned-handle ErrFailed, which
			// must not shadow the root cause.
			if firstErr == nil || (errors.Is(firstErr, ErrFailed) && !errors.Is(err, ErrFailed)) {
				firstErr = err
			}
			errMu.Unlock()
		}
	})
	if firstErr != nil {
		return 0, skipped, firstErr
	}
	return len(pending), skipped, nil
}

// Sync flushes every segment to stable storage (fsync). Append itself does
// not fsync — a SIGKILL'd process loses nothing because the page cache
// survives it — so callers that must survive machine crashes call Sync at
// checkpoints.
func (s *Store) Sync() error {
	for _, seg := range s.segs {
		if seg == nil {
			continue
		}
		seg.mu.Lock()
		err := seg.f.Sync()
		seg.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close releases the segment files. The store's data is already on disk;
// Close only drops the handles.
func (s *Store) Close() error {
	var first error
	for _, seg := range s.segs {
		if seg == nil || seg.f == nil {
			continue
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
		seg.f = nil
	}
	return first
}
