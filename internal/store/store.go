// Package store implements the durable campaign result store: an
// append-only, crash-tolerant directory of per-point results that lets a
// killed sweep resume exactly where it stopped and still aggregate
// bit-identically to an uninterrupted run. The store is memory-flat: the
// only per-point state a handle keeps is the done bitmap (one bit per
// point) — results live on disk only, and Results/Aggregate re-scan the
// JSONL segments, streaming each record into the caller (or the
// scenario.Aggregator) instead of holding the set resident. Campaign size
// is therefore bounded by disk, not RAM.
//
// On-disk format (documented in docs/ARCHITECTURE.md):
//
//	DIR/manifest.json    — Manifest: format version, campaign name, the
//	                       canonical spec digest (scenario.SpecDigest), the
//	                       expansion cardinality and the shard layout.
//	DIR/segment-NNNN.jsonl — one append-only JSONL segment per shard; a
//	                       point with global index i lives in segment
//	                       i mod Shards (exactly scenario's shard
//	                       partition). Each line is one scenario.PointResult
//	                       in the bit-exact campaign wire format.
//
// Durability and recovery rules: every Append writes one whole line with a
// single write(2) call to an O_APPEND file, so a crash — SIGKILL, OOM, power
// loss mid-write — can tear at most the final line of each segment. Open
// recovers by dropping an incomplete or unparsable final line; the
// physical truncation back to the last good record is deferred until this
// process first appends to that segment, so opening a shared store never
// mutates segments owned by other still-running shard processes. A
// malformed line anywhere *before* the end is real corruption and fails
// loudly. Every recovered
// record is validated against the expansion (index range, segment
// congruence, cell agreement), and the manifest's spec digest must match
// the expansion's, so a store can never silently resume a different sweep.
//
// Concurrency: one Store may be appended to by any number of goroutines
// (appends to the same segment serialize on a per-segment mutex); Sweep
// fans pending points over the experiment worker pool and appends each
// result as it completes. Multiple *processes* may share one store
// directory only if they write disjoint shards (the ptgbench -shard
// workflow); the manifest is written once by whoever creates the store.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ptgsched/internal/bitset"
	"ptgsched/internal/experiment"
	"ptgsched/internal/scenario"
)

// ErrFailed poisons a Store whose segment write failed: the failed record
// may be half on disk, so further appends through the same handle could
// concatenate onto the torn bytes and turn a recoverable tail into
// mid-segment corruption. Reopen the store — Open truncates the torn tail
// and the point becomes pending again.
var ErrFailed = errors.New("store: a previous append failed; reopen the store to recover")

// FormatVersion identifies the on-disk layout; Open rejects manifests
// written by a newer, unknown layout.
const FormatVersion = 1

// manifestName is the manifest file inside a store directory.
const manifestName = "manifest.json"

// Manifest pins a store directory to one campaign expansion.
type Manifest struct {
	// Version is the on-disk format version (FormatVersion).
	Version int `json:"version"`
	// Name echoes the spec's campaign name.
	Name string `json:"name,omitempty"`
	// SpecDigest is scenario.SpecDigest of the campaign spec; Open refuses
	// a store whose digest differs from the expansion it is opened with.
	SpecDigest string `json:"spec_digest"`
	// Points is the expansion cardinality.
	Points int `json:"points"`
	// Shards is the segment layout: point i lives in segment i mod Shards.
	Shards int `json:"shards"`
}

// ShardState describes one segment's progress.
type ShardState struct {
	// Index is the segment index (= shard index of the modulo partition).
	Index int `json:"index"`
	// Points is the number of expansion points the segment owns.
	Points int `json:"points"`
	// Completed is the number of results it holds.
	Completed int `json:"completed"`
}

// Progress is a point-in-time snapshot of a store's completion state.
type Progress struct {
	Completed int          `json:"completed"`
	Total     int          `json:"total"`
	Shards    []ShardState `json:"shards"`
}

// Store is an open campaign result store. Create and Open are the two
// constructors; Close releases the segment files. During Sweep the handle
// holds exactly one bit of per-point state (the done bitmap); completed
// results are never resident — Results and Aggregate re-scan the segments.
type Store struct {
	dir string
	man Manifest
	e   *scenario.Expansion

	segs []*segment

	mu        sync.Mutex // guards done/completed
	done      bitset.Set // one bit per global point index
	completed int

	failed atomic.Bool // sticky append-failure flag; Sweep drains fast once set

	// memo, when set via UseMemo, is consulted by Sweep before computing
	// a point and offered every freshly computed result — the
	// content-addressed cache hook. The store's own durability is
	// unchanged: hits are appended to segments exactly like computed
	// results.
	memo scenario.Memo

	// readOnly marks a handle from OpenRead: no write fds are held, no
	// done bitmap was recovered, and mutations return ErrReadOnly.
	readOnly bool
	// rebuilt counts segments OpenRead re-indexed by scanning because
	// their sidecar was unusable (see RebuiltSegments).
	rebuilt int
}

// segment is one append-only JSONL file.
type segment struct {
	mu     sync.Mutex
	f      *os.File
	points int // expansion points owned by this segment
	// truncateAt ≥ 0 marks a torn tail found at Open: the file is
	// physically truncated back to this offset immediately before this
	// process's first append to the segment. Deferring the truncation
	// keeps Open read-only on segments owned by other still-running shard
	// processes (a shared-filesystem reader can misclassify a foreign
	// in-flight append as torn; it must not destroy it).
	truncateAt int64

	// end is the byte offset just past the last valid record — the offset
	// the next append lands at (the torn tail, if any, is above it and
	// gone before the write). Maintained under mu.
	end int64
	// idx is the segment's sparse byte-run index (see index.go): the
	// authoritative in-memory form, rebuilt from the segment scan or the
	// sidecar at open and extended on every append. The sidecar file on
	// disk may lag behind it (entries flush when runs close); never ahead.
	idx runIndex
	// idxFlushed counts idx runs whose entries are durably in the sidecar
	// file. reconciled flips when this process first rewrites the sidecar
	// (deferred to the first append, like truncateAt, so opening a shared
	// store never touches sidecars of segments owned by other processes).
	idxFlushed int
	reconciled bool
	// idxf is the open sidecar file once reconciled. idxDead marks a
	// sidecar whose write failed: the index is derived data, so a failed
	// sidecar write degrades (the next open rebuilds by scan) instead of
	// poisoning the sweep.
	idxf    *os.File
	idxDead bool
	// dirty flips on this process's first append to the segment; only
	// dirty segments ever have their sidecar reconciled or flushed.
	dirty bool
}

// segmentPath names segment i of a store directory.
func segmentPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("segment-%04d.jsonl", i))
}

// Create initializes dir as a new store for the expansion, partitioned into
// shards segments (shards < 1 means 1). dir must not already contain a
// store; a fresh or empty directory is created as needed.
func Create(dir string, e *scenario.Expansion, shards int) (*Store, error) {
	if shards < 1 {
		shards = 1
	}
	if shards > e.NumPoints() && e.NumPoints() > 0 {
		return nil, fmt.Errorf("store: %d shards for %d points", shards, e.NumPoints())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Refuse to build a store around stale segments (e.g. a directory
	// whose manifest was deleted to "reset" it): records invisible to
	// this run's done-set would be concatenated with fresh ones and brick
	// the store at the next Open with duplicate-point errors.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		if !ent.IsDir() && (strings.HasSuffix(ent.Name(), ".jsonl") || strings.HasSuffix(ent.Name(), ".idx")) {
			return nil, fmt.Errorf("store: %s already contains segment %s (empty the directory, or open the store it belongs to)",
				dir, ent.Name())
		}
	}
	man := Manifest{
		Version:    FormatVersion,
		Name:       e.Spec.Name,
		SpecDigest: scenario.SpecDigest(e.Spec),
		Points:     e.NumPoints(),
		Shards:     shards,
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	// O_EXCL makes creation the atomic claim on the directory: two
	// concurrent creators cannot both succeed and leave segments laid out
	// under two different manifests.
	mf, err := os.OpenFile(filepath.Join(dir, manifestName), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("store: %s already holds a store (open it instead)", dir)
		}
		return nil, err
	}
	if _, err := mf.Write(append(mb, '\n')); err != nil {
		mf.Close()
		return nil, err
	}
	if err := mf.Close(); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, man: man, e: e, done: bitset.New(e.NumPoints())}
	if err := s.openSegments(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Open opens an existing store and recovers its completed-point bitmap:
// each segment is scanned in a streaming pass (records are validated and
// their done bits set, never retained), a torn final line (the footprint
// of a crash mid-append) is dropped — its point becomes pending again, and
// the torn bytes are physically truncated just before this process first
// appends to that segment. The manifest must match the expansion — same
// spec digest, same cardinality — so stale or foreign directories fail
// instead of resuming the wrong sweep.
func Open(dir string, e *scenario.Expansion) (*Store, error) {
	man, err := readManifest(dir, e)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, man: man, e: e, done: bitset.New(e.NumPoints())}
	trunc := make(map[int]int64)
	recov := make([]recoveredSegment, man.Shards)
	for i := 0; i < man.Shards; i++ {
		if err := s.recoverSegment(i, trunc, &recov[i]); err != nil {
			s.Close()
			return nil, err
		}
	}
	if err := s.openSegments(); err != nil {
		s.Close()
		return nil, err
	}
	// idxFlushed stays 0: whatever the on-disk sidecar holds, the first
	// append reconciles it wholesale from the scan-derived index.
	for i := range s.segs {
		s.segs[i].idx = recov[i].idx
		s.segs[i].end = recov[i].end
	}
	for i, off := range trunc {
		s.segs[i].truncateAt = off
	}
	return s, nil
}

// readManifest reads and validates a store directory's manifest against
// the expansion — the gate shared by Open and OpenRead.
func readManifest(dir string, e *scenario.Expansion) (Manifest, error) {
	var man Manifest
	mb, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return man, fmt.Errorf("store: %s is not a store: %w", dir, err)
	}
	if err := json.Unmarshal(mb, &man); err != nil {
		return man, fmt.Errorf("store: %s: invalid manifest: %w", dir, err)
	}
	if man.Version != FormatVersion {
		return man, fmt.Errorf("store: %s: format version %d, this build reads %d", dir, man.Version, FormatVersion)
	}
	if got, want := scenario.SpecDigest(e.Spec), man.SpecDigest; got != want {
		return man, fmt.Errorf("store: %s was written by a different campaign spec (digest %.12s, expansion has %.12s)", dir, want, got)
	}
	if man.Points != e.NumPoints() {
		return man, fmt.Errorf("store: %s records %d points, expansion has %d", dir, man.Points, e.NumPoints())
	}
	if man.Shards < 1 || (man.Points > 0 && man.Shards > man.Points) {
		// The same invariant Create enforces; a corrupt shard count must
		// not drive openSegments into fabricating files.
		return man, fmt.Errorf("store: %s: invalid shard count %d for %d points", dir, man.Shards, man.Points)
	}
	return man, nil
}

// openSegments opens every segment file for append — creating any that do
// not exist yet, e.g. the segment of a shard that never started — and
// counts the expansion points each segment owns.
func (s *Store) openSegments() error {
	s.segs = make([]*segment, s.man.Shards)
	for i := range s.segs {
		f, err := os.OpenFile(segmentPath(s.dir, i), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		s.segs[i] = &segment{f: f, truncateAt: -1}
	}
	// Segment k owns the points congruent to k modulo Shards; count them
	// arithmetically instead of enumerating the (lazy) point set.
	n, shards := s.e.NumPoints(), s.man.Shards
	for i := range s.segs {
		s.segs[i].points = n / shards
		if i < n%shards {
			s.segs[i].points++
		}
	}
	return nil
}

// scanSegment streams one segment's records through fn in a single
// buffered pass starting at byte offset from (0 for the whole segment),
// without ever holding the segment resident. It applies the
// crash-recovery classification shared by Open and the re-scan readers:
// a final line without a newline, or an unparsable final line, is a torn
// tail — skipped, with the offset of the last good byte returned — while
// a malformed line before the end is real corruption and fails. A
// missing segment (a shard that never started) scans as empty. fn
// receives each record with its byte extent [lineStart, lineEnd).
// goodEnd is the byte offset just past the last valid record; size is
// the segment's total length. All offsets are absolute.
func (s *Store) scanSegment(idx int, from int64, fn func(r scenario.PointResult, lineStart, lineEnd int64) error) (goodEnd, size int64, err error) {
	path := segmentPath(s.dir, idx)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	if from > 0 {
		if _, err := f.Seek(from, io.SeekStart); err != nil {
			return from, from, err
		}
	}

	br := bufio.NewReaderSize(f, 256*1024)
	off := from
	for {
		line, err := br.ReadBytes('\n')
		size = off + int64(len(line))
		if err == io.EOF {
			// Trailing bytes without a newline: a torn final line (or a
			// clean end when the tail is empty).
			return off, size, nil
		}
		if err != nil {
			return off, size, err
		}
		text := line[:len(line)-1]
		if len(bytes.TrimSpace(text)) == 0 {
			off = size
			continue
		}
		var r scenario.PointResult
		if err := json.Unmarshal(text, &r); err != nil {
			// Peek: if nothing follows this line, it is the final line and
			// parsed as garbage — a torn write (crashed between the payload
			// and its newline landing). Anything after it means mid-segment
			// corruption.
			if _, peekErr := br.Peek(1); peekErr == io.EOF {
				return off, size, nil
			}
			return off, size, fmt.Errorf("store: %s: corrupt record before end of segment: %w", path, err)
		}
		if err := s.validate(r, idx); err != nil {
			return off, size, fmt.Errorf("store: %s: %w", path, err)
		}
		if err := fn(r, off, size); err != nil {
			return off, size, err
		}
		off = size
	}
}

// recoveredSegment carries what one segment's recovery scan derived: its
// rebuilt sparse index and the offset just past the last valid record.
type recoveredSegment struct {
	idx runIndex
	end int64
}

// recoverSegment replays one segment's records into the done bitmap —
// records themselves are not retained — and rebuilds the segment's
// sparse index from the same pass (the on-disk sidecar is ignored by the
// writer: the scan is authoritative, and the first append rewrites the
// sidecar from it, which is also how a stale or torn sidecar heals). A
// torn tail is dropped from the recovered state and its offset recorded
// in trunc; the physical truncation is deferred to the first append (see
// segment.truncateAt).
func (s *Store) recoverSegment(idx int, trunc map[int]int64, rec *recoveredSegment) error {
	path := segmentPath(s.dir, idx)
	good, size, err := s.scanSegment(idx, 0, func(r scenario.PointResult, lineStart, lineEnd int64) error {
		if s.done.Set(r.Index) {
			return fmt.Errorf("store: %s: duplicate result for point %d", path, r.Index)
		}
		s.completed++
		rec.idx.add(r.Index, s.e.CellOf(r.Index), lineStart, lineEnd)
		return nil
	})
	if err != nil {
		return err
	}
	rec.end = good
	if good < size {
		trunc[idx] = good
	}
	return nil
}

// validate checks one record against the expansion and the shard layout.
func (s *Store) validate(r scenario.PointResult, seg int) error {
	if r.Index < 0 || r.Index >= s.e.NumPoints() {
		return fmt.Errorf("point index %d outside expansion [0,%d)", r.Index, s.e.NumPoints())
	}
	if r.Index%s.man.Shards != seg {
		return fmt.Errorf("point %d does not belong to segment %d of %d", r.Index, seg, s.man.Shards)
	}
	if r.Cell != s.e.CellOf(r.Index) {
		return fmt.Errorf("point %d is for cell %d, expansion says %d", r.Index, r.Cell, s.e.CellOf(r.Index))
	}
	return nil
}

// Manifest returns the store's manifest.
func (s *Store) Manifest() Manifest { return s.man }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Append durably records one point result: the JSONL line is written with a
// single write call to the point's O_APPEND segment, so a crash tears at
// most the final line (which Open truncates away). Appending a point that
// the store already holds is an error — resume flows skip completed points,
// so a duplicate means two writers raced on the same shard.
func (s *Store) Append(r scenario.PointResult) error {
	return s.append(r, nil)
}

// append is Append with an optional caller-owned encode buffer: Sweep's
// workers pass theirs so the per-point line encoding reuses one buffer per
// worker instead of allocating per record. The encoding (AppendJSONL) is
// byte-identical to json.Marshal, so segment files do not change.
func (s *Store) append(r scenario.PointResult, buf *[]byte) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if s.failed.Load() {
		return ErrFailed
	}
	// validate rejects an out-of-range index before the modulo below can
	// pick a segment from it.
	if err := s.validate(r, r.Index%s.man.Shards); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	seg := s.segs[r.Index%s.man.Shards]
	var line []byte
	var err error
	if buf != nil {
		*buf, err = scenario.AppendJSONL((*buf)[:0], r)
		line = *buf
	} else {
		line, err = scenario.AppendJSONL(nil, r)
	}
	if err != nil {
		return err
	}

	// The done bit is claimed before the write (two racing writers must
	// not both append); completed is counted only after the write lands,
	// so a failed append never inflates progress reporting — the store is
	// poisoned (ErrFailed) at that point and must be reopened anyway.
	s.mu.Lock()
	if s.done.Set(r.Index) {
		s.mu.Unlock()
		return fmt.Errorf("store: point %d already recorded", r.Index)
	}
	s.mu.Unlock()

	seg.mu.Lock()
	if seg.truncateAt >= 0 {
		// First append since recovery found a torn tail here: this
		// process owns the segment now, so drop the torn bytes before
		// they can be concatenated onto.
		if err := seg.f.Truncate(seg.truncateAt); err != nil {
			seg.mu.Unlock()
			s.failed.Store(true)
			return fmt.Errorf("store: truncating torn tail before append: %w", err)
		}
		seg.truncateAt = -1
	}
	_, err = seg.f.Write(line)
	if err == nil {
		// Extend the sparse index under the same lock that ordered the
		// write, so run offsets mirror the file exactly; sealed runs
		// flush to the sidecar here too (best-effort — see flushIndex).
		seg.dirty = true
		lineStart := seg.end
		seg.end += int64(len(line))
		seg.idx.add(r.Index, r.Cell, lineStart, seg.end)
		s.flushIndex(r.Index%s.man.Shards, seg)
	}
	seg.mu.Unlock()
	if err != nil {
		// The record may be half on disk; mark the store failed so Sweep
		// stops, and leave recovery to the next Open's torn-tail rule.
		s.failed.Store(true)
		return fmt.Errorf("store: appending point %d: %w", r.Index, err)
	}
	s.mu.Lock()
	s.completed++
	s.mu.Unlock()
	return nil
}

// IsDone reports whether the store already holds point i's result — the
// predicate a resumed sweep skips completed points with.
func (s *Store) IsDone(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done.Get(i)
}

// CountDone returns how many of the set's points the store already holds.
func (s *Store) CountDone(set scenario.IndexSet) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.countDoneLocked(set)
}

func (s *Store) countDoneLocked(set scenario.IndexSet) int {
	if set.Offset == 0 && set.Stride <= 1 {
		return s.done.CountRange(set.Limit)
	}
	n := 0
	for j, l := 0, set.Len(); j < l; j++ {
		if s.done.Get(set.At(j)) {
			n++
		}
	}
	return n
}

// Progress snapshots completion per shard and overall.
func (s *Store) Progress() Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	pr := Progress{Completed: s.completed, Total: s.e.NumPoints()}
	for i, seg := range s.segs {
		done := s.countDoneLocked(scenario.IndexSet{Limit: s.e.NumPoints(), Offset: i, Stride: s.man.Shards})
		pr.Shards = append(pr.Shards, ShardState{Index: i, Points: seg.points, Completed: done})
	}
	return pr
}

// Each re-scans the store's segments and streams every completed result
// through fn, segment by segment, without materializing the set — the
// memory-flat read path. Records arrive in segment order (within a
// segment, append order), not global point order; feed a
// scenario.Aggregator, which accepts any order. A torn trailing line
// (from a crash that has not been resumed yet) is skipped, exactly as
// Open's recovery classifies it.
func (s *Store) Each(fn func(scenario.PointResult) error) error {
	for i := 0; i < s.man.Shards; i++ {
		if _, _, err := s.scanSegment(i, 0, func(r scenario.PointResult, _, _ int64) error {
			return fn(r)
		}); err != nil {
			return err
		}
	}
	return nil
}

// Results re-reads the store's completed results into a slice in global
// point order — the materialized convenience over Each for small sweeps
// and tests; multi-million-point stores stream through Each or Aggregate
// instead.
func (s *Store) Results() ([]scenario.PointResult, error) {
	var out []scenario.PointResult
	if err := s.Each(func(r scenario.PointResult) error {
		out = append(out, r)
		return nil
	}); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

// Aggregate reduces a complete store into per-cell summary tables by
// streaming the segments into a scenario.Aggregator — results are never
// resident, so a resumed multi-million-point sweep aggregates in
// slot-bounded memory, bit-identically to an uninterrupted run.
func (s *Store) Aggregate() ([]scenario.Table, error) {
	agg := s.e.NewAggregator()
	if err := s.Each(agg.Add); err != nil {
		return nil, err
	}
	return agg.Tables()
}

// Sweep runs every pending point of the set (the full expansion or one
// shard) over the experiment worker pool, appending each result as it
// completes, and reports how many points it ran and how many were already
// recorded. The set is an index predicate and the skip test is one bitmap
// read, so a resumed sweep carries no per-point bookkeeping beyond the
// done bitmap. Results are bit-identical at every worker count and across
// any kill/resume split: each point derives everything from its own seed.
// UseMemo attaches a per-point memoization source (typically a bound
// content-addressed cache) consulted by Sweep: a memoized point is
// appended without recomputation. Set it before Sweep runs; it must not
// be changed while a sweep is in flight.
func (s *Store) UseMemo(m scenario.Memo) { s.memo = m }

// PublishTo streams every completed result of the store into a memo —
// the store side of "completed segments are a cache source": a finished
// (or partially finished) campaign store seeds a shared cache so other
// campaigns, jobs and fleet workers skip its points. It works on
// read-only handles and returns the number of results offered.
func (s *Store) PublishTo(m scenario.Memo) (int, error) {
	n := 0
	err := s.Each(func(r scenario.PointResult) error {
		m.Publish(s.e.PointAt(r.Index), r)
		n++
		return nil
	})
	return n, err
}

func (s *Store) Sweep(set scenario.IndexSet, workers int) (ran, skipped int, err error) {
	if s.readOnly {
		return 0, 0, ErrReadOnly
	}
	if s.failed.Load() {
		return 0, 0, ErrFailed
	}
	skipped = s.CountDone(set)
	pending := set.Len() - skipped
	var (
		errMu    sync.Mutex
		firstErr error
	)
	// Per-worker compute scratch and encode buffer: each pool slot reuses
	// its simulation state and JSONL line buffer across all the points it
	// sweeps (both are goroutine-confined by ForEachWorker).
	type workerState struct {
		sc  *scenario.Scratch
		buf []byte
	}
	states := make([]workerState, experiment.Workers(set.Len(), workers))
	experiment.ForEachWorker(set.Len(), workers, func(w, j int) {
		if s.failed.Load() {
			return // an earlier append failed; drain fast
		}
		i := set.At(j)
		if s.IsDone(i) {
			return
		}
		ws := &states[w]
		if ws.sc == nil {
			ws.sc = scenario.NewScratch()
		}
		r := s.e.ComputePointScratch(ws.sc, s.e.PointAt(i), s.memo)
		if err := s.append(r, &ws.buf); err != nil {
			errMu.Lock()
			// Keep the most informative error: a worker racing in after
			// the failure sees the bare poisoned-handle ErrFailed, which
			// must not shadow the root cause.
			if firstErr == nil || (errors.Is(firstErr, ErrFailed) && !errors.Is(err, ErrFailed)) {
				firstErr = err
			}
			errMu.Unlock()
		}
	})
	if firstErr != nil {
		return 0, skipped, firstErr
	}
	return pending, skipped, nil
}

// Sync flushes every segment to stable storage (fsync). Append itself does
// not fsync — a SIGKILL'd process loses nothing because the page cache
// survives it — so callers that must survive machine crashes call Sync at
// checkpoints. The index sidecars flush too: each segment's open run is
// sealed and written, so a sidecar read after Sync covers everything the
// segment holds (sealing keeps the sidecar append-only — a flushed entry
// is never extended in place).
func (s *Store) Sync() error {
	for i, seg := range s.segs {
		if seg == nil || seg.f == nil {
			continue
		}
		seg.mu.Lock()
		err := seg.f.Sync()
		if err == nil && seg.dirty {
			seg.idx.seal()
			s.flushIndex(i, seg)
			if seg.idxf != nil && !seg.idxDead {
				if serr := seg.idxf.Sync(); serr != nil {
					seg.idxDead = true
				}
			}
		}
		seg.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Close releases the segment files, sealing and flushing each segment's
// index sidecar first. The store's data is already on disk; Close only
// drops the handles.
func (s *Store) Close() error {
	var first error
	for i, seg := range s.segs {
		if seg == nil {
			continue
		}
		seg.mu.Lock()
		if seg.f != nil {
			if seg.dirty {
				seg.idx.seal()
				s.flushIndex(i, seg)
			}
			if err := seg.f.Close(); err != nil && first == nil {
				first = err
			}
			seg.f = nil
		}
		if seg.idxf != nil {
			seg.idxf.Close()
			seg.idxf = nil
		}
		seg.mu.Unlock()
	}
	return first
}
