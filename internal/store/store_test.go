package store

// Crash-resume coverage: sweeps are killed by truncating a segment
// mid-record (the exact footprint of a SIGKILL during an append), reopened,
// resumed, and their final aggregates compared bit-identically against
// uninterrupted references — on a small spec for the fast path, and against
// the unsharded Fig. 3 golden (experiment.Run(Fig3Config(42,25)), the same
// reference the scenario acceptance test uses) when run without -short.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ptgsched/internal/experiment"
	"ptgsched/internal/scenario"
)

// smokeSpec is a tiny campaign (8 points, strassen on two sites).
const smokeSpec = `{
	"name": "smoke",
	"seed": 9,
	"reps": 2,
	"nptgs": [2, 3],
	"platforms": ["lille", "rennes"],
	"families": [{"family": "strassen"}]
}`

func expand(t *testing.T, specJSON string) *scenario.Expansion {
	t.Helper()
	spec, err := scenario.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// truncateTail chops n bytes off the end of a file, simulating a crash that
// tore the final record.
func truncateTail(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= n {
		t.Fatalf("segment %s too small (%d bytes) to tear %d", path, fi.Size(), n)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	e := expand(t, smokeSpec)
	dir := filepath.Join(t.TempDir(), "store")

	s, err := Create(dir, e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ran, skipped, err := s.Sweep(e.All(), 2); err != nil || ran != 8 || skipped != 0 {
		t.Fatalf("Sweep = (%d, %d, %v), want (8, 0, nil)", ran, skipped, err)
	}
	want, err := s.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Progress(); got.Completed != 8 || got.Total != 8 {
		t.Fatalf("reopened progress %+v, want 8/8", got)
	}
	if ran, skipped, err := s2.Sweep(e.All(), 0); err != nil || ran != 0 || skipped != 8 {
		t.Fatalf("resumed Sweep = (%d, %d, %v), want (0, 8, nil)", ran, skipped, err)
	}
	got, err := s2.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0].Result.Points, want[0].Result.Points) {
		t.Fatal("reopened aggregate differs from original")
	}
}

func TestTornFinalLineIsRecoveredAndResumed(t *testing.T) {
	e := expand(t, smokeSpec)

	// The uninterrupted reference.
	ref, err := e.Aggregate(e.Run(e.All(), 0))
	if err != nil {
		t.Fatal(err)
	}

	for _, tear := range []int64{1, 7} { // mid-record and just-the-newline-ish
		t.Run(fmt.Sprintf("tear=%d", tear), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "store")
			s, err := Create(dir, e, 2)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Sweep(e.All(), 1); err != nil {
				t.Fatal(err)
			}
			s.Close()

			truncateTail(t, segmentPath(dir, 1), tear)

			s2, err := Open(dir, e)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			pr := s2.Progress()
			if pr.Completed != 7 {
				t.Fatalf("after tear: %d completed, want 7", pr.Completed)
			}
			if got := s2.CountDone(e.All()); got != 7 {
				t.Fatalf("CountDone reports %d completed, want 7", got)
			}
			if s2.IsDone(7) {
				t.Fatal("torn point still marked done")
			}
			if ran, skipped, err := s2.Sweep(e.All(), 2); err != nil || ran != 1 || skipped != 7 {
				t.Fatalf("resumed Sweep = (%d, %d, %v), want (1, 7, nil)", ran, skipped, err)
			}
			got, err := s2.Aggregate()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got[0].Result.Points, ref[0].Result.Points) {
				t.Fatal("killed+resumed aggregate differs from uninterrupted run")
			}
		})
	}
}

func TestShardedStoresRecombineAfterCrash(t *testing.T) {
	e := expand(t, smokeSpec)
	ref, err := e.Aggregate(e.Run(e.All(), 0))
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "store")
	s, err := Create(dir, e, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Shards 0..2 complete; shard 3 is killed mid-final-record.
	for shard := 0; shard < 4; shard++ {
		pts, err := e.Shard(shard, 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Sweep(pts, 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	truncateTail(t, segmentPath(dir, 3), 5)

	s2, err := Open(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	pr := s2.Progress()
	if len(pr.Shards) != 4 {
		t.Fatalf("%d shard states, want 4", len(pr.Shards))
	}
	if pr.Shards[3].Completed != pr.Shards[3].Points-1 {
		t.Fatalf("shard 3 state %+v, want one pending", pr.Shards[3])
	}
	pts3, _ := e.Shard(3, 4)
	if ran, _, err := s2.Sweep(pts3, 0); err != nil || ran != 1 {
		t.Fatalf("shard-3 resume ran %d (%v), want 1", ran, err)
	}
	got, err := s2.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0].Result.Points, ref[0].Result.Points) {
		t.Fatal("4-shard crash-resumed aggregate differs from unsharded run")
	}
}

// TestOpenLeavesForeignSegmentsUntouched pins the shared-store contract:
// recovery classifies a torn tail but must not mutate a segment this
// process never appends to — over a shared filesystem that tail may be
// another shard's in-flight append, not a torn record.
func TestOpenLeavesForeignSegmentsUntouched(t *testing.T) {
	e := expand(t, smokeSpec)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Create(dir, e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Sweep(e.All(), 1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	truncateTail(t, segmentPath(dir, 0), 7) // "torn" tail in shard 0's segment

	sizeBefore := func(i int) int64 {
		fi, err := os.Stat(segmentPath(dir, i))
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	torn := sizeBefore(0)

	// Open, then sweep only shard 1's points: segment 0 must keep its
	// torn bytes on disk (its owner may still be alive elsewhere).
	s2, err := Open(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	pts1, _ := e.Shard(1, 2)
	if _, _, err := s2.Sweep(pts1, 1); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if got := sizeBefore(0); got != torn {
		t.Fatalf("segment 0 changed from %d to %d bytes without an append to it", torn, got)
	}

	// A sweep that does append to segment 0 truncates the tail first and
	// completes the store.
	s3, err := Open(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if ran, _, err := s3.Sweep(e.All(), 1); err != nil || ran != 1 {
		t.Fatalf("final resume ran %d (%v), want 1", ran, err)
	}
	if got := s3.Progress(); got.Completed != got.Total {
		t.Fatalf("store incomplete after resume: %+v", got)
	}
}

func TestOpenRejectsForeignAndCorruptStores(t *testing.T) {
	e := expand(t, smokeSpec)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Create(dir, e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Sweep(e.All(), 1); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A different spec (different seed → different digest) must be refused.
	other := expand(t, `{"name":"smoke","seed":10,"reps":2,"nptgs":[2,3],
		"platforms":["lille","rennes"],"families":[{"family":"strassen"}]}`)
	if _, err := Open(dir, other); err == nil {
		t.Error("store opened against a different campaign spec")
	}

	// Corruption before the end of a segment is an error, not a recovery.
	seg := segmentPath(dir, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[10] = 'X' // damage the first record
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, e); err == nil {
		t.Error("store with mid-segment corruption opened cleanly")
	}

	// Creating over an existing store must be refused — and still refused
	// when only the manifest was deleted: stale segments invisible to a
	// fresh done-set would corrupt the new run.
	if _, err := Create(dir, e, 1); err == nil {
		t.Error("Create over an existing store succeeded")
	}
	if err := os.Remove(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, e, 1); err == nil {
		t.Error("Create over stale segments (manifest deleted) succeeded")
	}

	// A directory without a manifest is not a store.
	if _, err := Open(t.TempDir(), e); err == nil {
		t.Error("empty directory opened as a store")
	}
}

func TestAppendRejectsDuplicatesAndForeignPoints(t *testing.T) {
	e := expand(t, smokeSpec)
	s, err := Create(filepath.Join(t.TempDir(), "store"), e, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	r := e.RunPoint(e.PointAt(3))
	if err := s.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(r); err == nil {
		t.Error("duplicate append accepted")
	}
	bad := r
	bad.Index = 99
	if err := s.Append(bad); err == nil {
		t.Error("out-of-range index accepted")
	}
	bad = r
	bad.Index = 4
	bad.Cell = 7
	if err := s.Append(bad); err == nil {
		t.Error("cell-mismatched record accepted")
	}
}

// TestCrashResumeReproducesFig3Golden is the acceptance criterion at paper
// scale: the Fig. 3 campaign, killed mid-run (a segment torn mid-record)
// and resumed from its store, aggregates bit-identically to the unsharded
// golden experiment.Run(Fig3Config(42, 25)) — both as a 1-segment store and
// recombined from a 4-shard store. Skipped under -short like the scenario
// acceptance sweep it mirrors.
func TestCrashResumeReproducesFig3Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 3 campaign; run without -short")
	}
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "campaign.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := experiment.Run(experiment.Fig3Config(42, 25))

	for _, shards := range []int{1, 4} {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("store%d", shards))
		s, err := Create(dir, e, shards)
		if err != nil {
			t.Fatal(err)
		}
		// First life: run 60% of the sweep (a prefix index set), then
		// "crash": close the store and tear the final record of the last
		// segment.
		cut := e.NumPoints() * 3 / 5
		if _, _, err := s.Sweep(scenario.IndexSet{Limit: cut, Stride: 1}, 0); err != nil {
			t.Fatal(err)
		}
		s.Close()
		truncateTail(t, segmentPath(dir, (cut-1)%shards), 9)

		// Second life: reopen, resume, finish.
		s, err = Open(dir, e)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Progress().Completed; got != cut-1 {
			t.Fatalf("shards=%d: %d completed after crash, want %d", shards, got, cut-1)
		}
		ran, skipped, err := s.Sweep(e.All(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if ran != e.NumPoints()-cut+1 || skipped != cut-1 {
			t.Fatalf("shards=%d: resume ran %d skipped %d", shards, ran, skipped)
		}
		tables, err := s.Aggregate()
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		if !reflect.DeepEqual(tables[0].Result.Points, want.Points) {
			t.Fatalf("shards=%d: crash-resumed store does not reproduce the Fig. 3 golden bit-identically", shards)
		}
	}
}
