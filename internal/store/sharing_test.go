package store

// Concurrent-sharing coverage: one store directory, several live handles.
// The rules under test are the documented ones — any number of goroutines
// may append through one handle while another handle re-scans and
// aggregates; separate handles (processes) may write only disjoint
// shards, and a raced shard is refused at reopen; a foreign in-flight
// append (bytes after the last newline) is classified as a torn tail and
// skipped by readers, never destroyed and never reported as corruption.

import (
	"encoding/json"
	"os"
	"reflect"
	"sync"
	"testing"

	"ptgsched/internal/scenario"
)

// runAll computes every point of the smoke campaign once, for feeding
// handles manually.
func runAll(t *testing.T, e *scenario.Expansion) []scenario.PointResult {
	t.Helper()
	return e.Run(e.All(), 0)
}

// TestAppendWhileOtherHandleAggregates interleaves a writer handle
// appending the campaign with a reader handle re-scanning the same
// directory: every scan must see only whole records (monotonically more
// of them, no errors), and once the writer syncs, the reader's Aggregate
// must be bit-identical to an uninterrupted in-memory run.
func TestAppendWhileOtherHandleAggregates(t *testing.T) {
	e := expand(t, smokeSpec)
	results := runAll(t, e)
	dir := t.TempDir() + "/store"

	w, err := Create(dir, e, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := Open(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	writerDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev, last := 0, false
		for !last {
			select {
			case <-writerDone:
				last = true // one more scan after the final append, then stop
			default:
			}
			n := 0
			if err := r.Each(func(scenario.PointResult) error { n++; return nil }); err != nil {
				t.Errorf("reader scan failed mid-write: %v", err)
				return
			}
			if n < prev {
				t.Errorf("reader scan went backwards: %d after %d records", n, prev)
				return
			}
			prev = n
		}
	}()

	for _, res := range results {
		if err := w.Append(res); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	close(writerDone)
	wg.Wait()

	got, err := r.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Aggregate(results)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reader handle's aggregate differs from the in-memory run")
	}
}

// TestTwoHandlesWriteDisjointShards is the sanctioned multi-process
// layout: two handles on one directory, each appending only its own
// modulo shard, concurrently. A fresh handle recovers the union and
// aggregates bit-identically.
func TestTwoHandlesWriteDisjointShards(t *testing.T) {
	e := expand(t, smokeSpec)
	results := runAll(t, e)
	dir := t.TempDir() + "/store"

	a, err := Create(dir, e, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, e)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for shard, h := range map[int]*Store{0: a, 1: b} {
		wg.Add(1)
		go func(shard int, h *Store) {
			defer wg.Done()
			for _, res := range results {
				if res.Index%2 != shard {
					continue
				}
				if err := h.Append(res); err != nil {
					t.Errorf("shard %d: %v", shard, err)
					return
				}
			}
		}(shard, h)
	}
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := Open(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Progress(); got.Completed != e.NumPoints() {
		t.Fatalf("recovered %d of %d points", got.Completed, e.NumPoints())
	}
	got, err := c.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Aggregate(results)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("two-writer store aggregates differently from the in-memory run")
	}
}

// TestRacedWritersRefusedOnReopen: two handles racing on the *same* shard
// is the unsupported layout — each handle's duplicate check knows only
// its own bitmap, so the race lands two copies of a point on disk. The
// store must refuse to reopen rather than silently double-count.
func TestRacedWritersRefusedOnReopen(t *testing.T) {
	e := expand(t, smokeSpec)
	results := runAll(t, e)
	dir := t.TempDir() + "/store"

	a, err := Create(dir, e, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	// Both handles append point 0: b's bitmap was recovered before a's
	// append landed, so b cannot see the duplicate coming.
	if err := a.Append(results[0]); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(results[0]); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b.Close()

	if _, err := Open(dir, e); err == nil {
		t.Fatal("reopen accepted a store with a raced (duplicated) point")
	}
}

// TestForeignInFlightAppendReadsAsTornTail: a reader scanning a segment
// while another process is mid-append sees bytes after the last newline.
// That tail must be classified exactly like a crash's torn tail — skipped
// without error — and must be picked up once the line completes; the
// reader must never truncate it away (it owns no append to that segment).
func TestForeignInFlightAppendReadsAsTornTail(t *testing.T) {
	e := expand(t, smokeSpec)
	results := runAll(t, e)
	dir := t.TempDir() + "/store"

	w, err := Create(dir, e, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two whole records in segment 0 (points 0 and 2), then stop.
	for _, res := range results {
		if res.Index == 0 || res.Index == 2 {
			if err := w.Append(res); err != nil {
				t.Fatal(err)
			}
		}
	}
	w.Close()

	// A foreign writer is mid-append of point 4: half its line, no newline.
	var line []byte
	for _, res := range results {
		if res.Index == 4 {
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			line = append(b, '\n')
		}
	}
	seg := segmentPath(dir, 0)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(line[:len(line)/2]); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, e)
	if err != nil {
		t.Fatalf("open with a foreign in-flight append: %v", err)
	}
	defer r.Close()
	n := 0
	if err := r.Each(func(scenario.PointResult) error { n++; return nil }); err != nil {
		t.Fatalf("scan with a foreign in-flight append: %v", err)
	}
	if n != 2 {
		t.Fatalf("scanned %d records, want 2 (the in-flight line skipped)", n)
	}

	// The foreign append completes; the reader must NOT have truncated it.
	if _, err := f.Write(line[len(line)/2:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	n = 0
	if err := r.Each(func(scenario.PointResult) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("scanned %d records after the append completed, want 3", n)
	}
}
