package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"ptgsched/internal/query"
	"ptgsched/internal/scenario"
)

// This file is the store's sparse segment index: per-segment sidecar
// files mapping point-index runs to byte-offset runs, so a selective
// query reads only the byte ranges whose runs can match its predicate
// instead of decoding every segment line.
//
// On-disk format: segment-NNNN.idx sits next to segment-NNNN.jsonl, one
// JSON entry per line — {"off","len","n","lo","hi"} — describing a run
// of n consecutive records occupying segment bytes [off, off+len) whose
// point indices all lie in [lo, hi]. Entries tile the segment from byte
// 0 upward (entry k starts where entry k-1 ended), so sidecar coverage
// is a byte prefix of the segment. Entries are appended with one
// write(2) each, after the records they describe are on the segment —
// the same crash discipline as segments, with the same consequence: a
// crash tears at most the sidecar's final line, and a sidecar can only
// ever lag its segment (cover less), never lead it.
//
// Recovery: readers validate a sidecar structurally (parse, tiling,
// index bounds, shard congruence) and against the segment's length.
// A torn final line is dropped; coverage short of the segment means the
// uncovered tail is scanned and indexed on the fly; any inconsistency —
// mid-file garbage, coverage past the segment, overlap — discards the
// sidecar and rebuilds the index by a full segment scan. A sidecar can
// therefore never make a store unopenable or a query wrong; the worst a
// bad one costs is the scan the index would have saved. Writers never
// trust sidecars at all: Open's recovery scan rebuilds the index, and
// the first append to a segment rewrites its sidecar wholesale
// (deferred, like torn-tail truncation, so opening a shared store never
// mutates sidecars of segments owned by other live shard processes).
//
// Runs are kept sparse by construction (see runIndex.add): a run seals
// at maxRunRecords and at every cell boundary — so with cell-ordered
// appends (the single-writer sweep) runs align to cells exactly and
// family/strategy predicates prune them precisely — while adversarially
// interleaved appends, which would otherwise degenerate to one run per
// record, are bounded by compaction: past maxRunsPerSegment, adjacent
// runs merge pairwise into coarser spans that still prune by index
// range. The index can therefore cost at most ~1.5 MB of memory per
// segment no matter the append order, preserving the store's
// memory-flat promise.

// ErrReadOnly rejects mutations on a store opened with OpenRead.
var ErrReadOnly = errors.New("store: opened read-only")

const (
	// maxRunRecords seals a run at this many records, bounding how many
	// lines a matching run decodes beyond the predicate's true selection.
	maxRunRecords = 512
	// maxRunsPerSegment triggers pairwise compaction: appends that
	// alternate cells every record (possible through raw Append, never
	// through a sweep) would otherwise grow one run per record.
	maxRunsPerSegment = 1 << 16
)

// run describes n records occupying segment bytes [off, off+len) whose
// point indices lie within [lo, hi] (closed interval).
type run struct {
	off, len int64
	n        int
	lo, hi   int
}

// runEntry is run's sidecar wire form.
type runEntry struct {
	Off int64 `json:"off"`
	Len int64 `json:"len"`
	N   int   `json:"n"`
	Lo  int   `json:"lo"`
	Hi  int   `json:"hi"`
}

// runIndex is one segment's in-memory index: runs in byte order, the
// last one still open (absorbing appends) until seal.
type runIndex struct {
	runs     []run
	open     bool
	lastCell int
	// compacted flips when compact() rewrote runs that may already have
	// flushed sidecar entries; the store resets its flush state and
	// re-reconciles the sidecar when it sees this.
	compacted bool
}

// add absorbs one record occupying [lineStart, lineEnd) with point index
// idx in cell ci, extending the open run or sealing it and starting a
// new one per the sparseness rules.
func (ix *runIndex) add(idx, ci int, lineStart, lineEnd int64) {
	if ix.open {
		r := &ix.runs[len(ix.runs)-1]
		if r.n < maxRunRecords && ci == ix.lastCell {
			r.len = lineEnd - r.off
			r.n++
			if idx < r.lo {
				r.lo = idx
			}
			if idx > r.hi {
				r.hi = idx
			}
			return
		}
		ix.open = false
	}
	if len(ix.runs) >= maxRunsPerSegment {
		ix.compact()
	}
	ix.runs = append(ix.runs, run{off: lineStart, len: lineEnd - lineStart, n: 1, lo: idx, hi: idx})
	ix.open = true
	ix.lastCell = ci
}

// compact halves the run count by merging adjacent pairs (they tile, so
// a merged run is just the pair's joint extent). Pruning gets coarser —
// a merged run spans both pair members' index ranges — but never wrong,
// and the amortized cost is O(1) per append.
func (ix *runIndex) compact() {
	merged := ix.runs[:0]
	for i := 0; i < len(ix.runs); i += 2 {
		r := ix.runs[i]
		if i+1 < len(ix.runs) {
			next := ix.runs[i+1]
			r.len = next.off + next.len - r.off
			r.n += next.n
			if next.lo < r.lo {
				r.lo = next.lo
			}
			if next.hi > r.hi {
				r.hi = next.hi
			}
		}
		merged = append(merged, r)
	}
	ix.runs = merged
	ix.open = false
	ix.compacted = true
}

// seal closes the open run so it becomes flushable; the next add starts
// a fresh run.
func (ix *runIndex) seal() { ix.open = false }

// closed returns how many runs are sealed (flushable to the sidecar).
func (ix *runIndex) closed() int {
	if ix.open {
		return len(ix.runs) - 1
	}
	return len(ix.runs)
}

// sidecarPath names segment i's index sidecar.
func sidecarPath(dir string, i int) string {
	return segmentPath(dir, i) + ".idx"
}

func encodeRun(r run) []byte {
	b, err := json.Marshal(runEntry{Off: r.off, Len: r.len, N: r.n, Lo: r.lo, Hi: r.hi})
	if err != nil {
		panic(err) // fixed struct of ints cannot fail to marshal
	}
	return append(b, '\n')
}

// flushIndex writes the segment's newly sealed runs to its sidecar. Only
// segments this process appended to are touched (seg.dirty); the first
// flush reconciles the sidecar wholesale — rewriting it from the
// authoritative in-memory index via temp+rename — which is also how a
// stale or torn sidecar heals. A sidecar write failure marks the sidecar
// dead and degrades silently: the index is derived data, and the next
// open rebuilds it by scan, so it must never fail a sweep. Callers hold
// seg.mu.
func (s *Store) flushIndex(i int, seg *segment) {
	if !seg.dirty || seg.idxDead {
		return
	}
	if seg.idx.compacted {
		// Compaction rewrote runs whose entries may already be on disk;
		// drop the flush state so the sidecar is reconciled from scratch.
		seg.idx.compacted = false
		seg.reconciled = false
		seg.idxFlushed = 0
		if seg.idxf != nil {
			seg.idxf.Close()
			seg.idxf = nil
		}
	}
	closed := seg.idx.closed()
	if !seg.reconciled {
		if err := s.reconcileSidecar(i, seg, closed); err != nil {
			seg.idxDead = true
			return
		}
		seg.reconciled = true
		seg.idxFlushed = closed
		return
	}
	for ; seg.idxFlushed < closed; seg.idxFlushed++ {
		if _, err := seg.idxf.Write(encodeRun(seg.idx.runs[seg.idxFlushed])); err != nil {
			seg.idxDead = true
			return
		}
	}
}

// reconcileSidecar rewrites segment i's sidecar to exactly the first
// closed runs of the in-memory index, atomically (temp file + rename),
// and leaves the renamed file open for appending further entries.
func (s *Store) reconcileSidecar(i int, seg *segment, closed int) error {
	path := sidecarPath(s.dir, i)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, r := range seg.idx.runs[:closed] {
		buf.Write(encodeRun(r))
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	idxf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	seg.idxf = idxf
	return nil
}

// loadSidecar reads and validates segment i's sidecar. ok reports a
// structurally valid sidecar; runs are its entries and cover is the byte
// offset its tiling reaches. A torn final line is dropped (the segment
// crash rule, applied to the sidecar); any other inconsistency returns
// ok == false, sending the caller to the rebuild-by-scan path.
func (s *Store) loadSidecar(i int) (runs []run, cover int64, ok bool) {
	f, err := os.Open(sidecarPath(s.dir, i))
	if err != nil {
		return nil, 0, false
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64*1024)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// Trailing bytes without a newline: torn sidecar tail, drop.
			return runs, cover, true
		}
		if err != nil {
			return nil, 0, false
		}
		text := bytes.TrimSpace(line)
		if len(text) == 0 {
			continue
		}
		var e runEntry
		if err := json.Unmarshal(text, &e); err != nil {
			// Unparsable final line is a torn tail; anything after it is
			// corruption — either way the entry is unusable, and only a
			// clean EOF next keeps the prefix trustworthy.
			if _, peekErr := br.Peek(1); peekErr == io.EOF {
				return runs, cover, true
			}
			return nil, 0, false
		}
		if e.Off != cover || e.Len <= 0 || e.N <= 0 ||
			e.Lo < 0 || e.Hi < e.Lo || e.Hi >= s.man.Points ||
			e.Lo%s.man.Shards != i || e.Hi%s.man.Shards != i {
			return nil, 0, false
		}
		runs = append(runs, run{off: e.Off, len: e.Len, n: e.N, lo: e.Lo, hi: e.Hi})
		cover = e.Off + e.Len
	}
}

// OpenRead opens a store for querying without scanning segments whose
// sidecar already indexes them: the manifest is validated exactly as
// Open does, then each segment's index loads from its sidecar, scanning
// only the bytes the sidecar does not cover (none, after a clean close;
// the unindexed tail, after a crash; the whole segment when the sidecar
// is missing, stale or corrupt — including stores written before
// sidecars existed). Nothing on disk is modified, no done bitmap is
// recovered, and mutating methods return ErrReadOnly: the handle serves
// Query, QueryFullScan, AggregateWhere, Each and Results.
func OpenRead(dir string, e *scenario.Expansion) (*Store, error) {
	man, err := readManifest(dir, e)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, man: man, e: e, readOnly: true}
	s.segs = make([]*segment, man.Shards)
	for i := range s.segs {
		seg := &segment{truncateAt: -1}
		s.segs[i] = seg
		runs, cover, ok := s.loadSidecar(i)
		var size int64
		if st, err := os.Stat(segmentPath(s.dir, i)); err == nil {
			size = st.Size()
		}
		if ok && cover <= size {
			seg.idx.runs = runs
			seg.end = cover
			if cover == size {
				continue
			}
		} else {
			// Missing, torn-beyond-repair or stale-past-the-segment
			// sidecar: rebuild this segment's index by a full scan.
			seg.idx = runIndex{}
			seg.end = 0
			cover = 0
			if size > 0 || ok {
				s.rebuilt++
			}
		}
		good, _, err := s.scanSegment(i, cover, func(r scenario.PointResult, lineStart, lineEnd int64) error {
			seg.idx.add(r.Index, s.e.CellOf(r.Index), lineStart, lineEnd)
			return nil
		})
		if err != nil {
			return nil, err
		}
		seg.end = good
	}
	return s, nil
}

// RebuiltSegments reports how many segments OpenRead had to re-index by
// scanning because their sidecar was missing, stale or corrupt. Zero
// after a clean close; always zero on write-mode handles (the writer
// rebuilds every index from its recovery scan regardless).
func (s *Store) RebuiltSegments() int { return s.rebuilt }

// QueryStats accounts one query execution — the evidence that pushdown
// pruned: BytesRead/LinesDecoded cover only the byte runs whose index
// span could match the predicate, versus BytesTotal/RunsTotal for the
// whole store.
type QueryStats struct {
	// SegmentsTouched counts segments with at least one matching run, of
	// SegmentsTotal.
	SegmentsTouched, SegmentsTotal int
	// RunsMatched counts index runs whose span overlapped the plan's
	// selection (and were therefore read), of RunsTotal.
	RunsMatched, RunsTotal int
	// BytesRead is the bytes fetched from matching runs; BytesTotal is
	// every segment's valid extent.
	BytesRead, BytesTotal int64
	// LinesDecoded counts records unmarshalled; Emitted counts records
	// that survived the residual filter and reached the caller.
	LinesDecoded, Emitted int64
}

// snapshotRuns copies the segment's current index and valid extent under
// its lock, so a query sees a consistent point-in-time view while
// appends continue.
func (seg *segment) snapshotRuns() ([]run, int64) {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	return append([]run(nil), seg.idx.runs...), seg.end
}

// Query streams the plan's selection through fn, reading only byte runs
// whose index span can match: per segment, each run is pruned against
// the plan's cell selection and index range arithmetically, matching
// runs are fetched with one ReadAt each, and their records decode,
// validate, pass the residual per-record filter (runs straddling a
// boundary carry non-matching neighbors) and the plan's strategy
// projection before emission. Records arrive in segment order, then
// byte order — exactly QueryFullScan's order, so the two paths are
// byte-for-byte comparable. Safe under concurrent appends: each
// segment's index is snapshotted, and runs only ever describe fully
// written records.
func (s *Store) Query(p *query.Plan, fn func(scenario.PointResult) error) (QueryStats, error) {
	var st QueryStats
	if err := s.checkPlan(p); err != nil {
		return st, err
	}
	st.SegmentsTotal = len(s.segs)
	buf := make([]byte, 0, 256*1024)
	for i, seg := range s.segs {
		runs, end := seg.snapshotRuns()
		st.RunsTotal += len(runs)
		st.BytesTotal += end
		var matched []run
		for _, r := range runs {
			if p.OverlapsSelection(r.lo, r.hi) {
				matched = append(matched, r)
			}
		}
		if len(matched) == 0 {
			continue
		}
		st.SegmentsTouched++
		st.RunsMatched += len(matched)
		f, err := os.Open(segmentPath(s.dir, i))
		if err != nil {
			return st, err
		}
		for _, r := range matched {
			if int64(cap(buf)) < r.len {
				buf = make([]byte, r.len)
			}
			b := buf[:r.len]
			if _, err := f.ReadAt(b, r.off); err != nil {
				f.Close()
				return st, fmt.Errorf("store: reading indexed run of %s: %w", segmentPath(s.dir, i), err)
			}
			st.BytesRead += r.len
			if err := s.emitRun(p, i, r, b, &st, fn); err != nil {
				f.Close()
				return st, err
			}
		}
		f.Close()
	}
	return st, nil
}

// emitRun decodes one fetched byte run and streams its matching records.
func (s *Store) emitRun(p *query.Plan, segIdx int, r run, b []byte, st *QueryStats, fn func(scenario.PointResult) error) error {
	for len(b) > 0 {
		nl := bytes.IndexByte(b, '\n')
		var line []byte
		if nl < 0 {
			line, b = b, nil // sidecar runs end on record boundaries; tolerate anyway
		} else {
			line, b = b[:nl], b[nl+1:]
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec scenario.PointResult
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("store: %s: corrupt record inside indexed run [%d,%d): %w (delete the .idx sidecar to force a rebuild)",
				segmentPath(s.dir, segIdx), r.off, r.off+r.len, err)
		}
		st.LinesDecoded++
		if err := s.validate(rec, segIdx); err != nil {
			return fmt.Errorf("store: %s: %w", segmentPath(s.dir, segIdx), err)
		}
		if !p.Matches(rec.Index) {
			continue
		}
		out, err := p.Project(rec)
		if err != nil {
			return err
		}
		st.Emitted++
		if err := fn(out); err != nil {
			return err
		}
	}
	return nil
}

// QueryFullScan is Query's oracle: the same selection and projection
// computed the pre-index way, by decoding every record of every segment
// and filtering afterwards. It exists for differential testing and for
// auditing what pushdown saves (its stats count the full scan); results
// are emitted in the same order as Query.
func (s *Store) QueryFullScan(p *query.Plan, fn func(scenario.PointResult) error) (QueryStats, error) {
	var st QueryStats
	if err := s.checkPlan(p); err != nil {
		return st, err
	}
	st.SegmentsTotal = len(s.segs)
	st.SegmentsTouched = len(s.segs)
	for i, seg := range s.segs {
		runs, end := seg.snapshotRuns()
		st.RunsTotal += len(runs)
		st.RunsMatched += len(runs)
		st.BytesTotal += end
		st.BytesRead += end
		_, _, err := s.scanSegment(i, 0, func(r scenario.PointResult, lineStart, lineEnd int64) error {
			if lineEnd > end {
				return nil // appended after the snapshot; keep parity with Query
			}
			st.LinesDecoded++
			if !p.Matches(r.Index) {
				return nil
			}
			out, err := p.Project(r)
			if err != nil {
				return err
			}
			st.Emitted++
			return fn(out)
		})
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// AggregateWhere is the predicate-taking companion of Aggregate: it
// reduces only the plan's selection — through the indexed read path, so
// a selective aggregation stops paying full-store cost — into per-(cell,
// NPTGs, strategy) summary rows that tolerate partial groups. A nil plan
// aggregates everything unprojected (compiling the match-all query).
func (s *Store) AggregateWhere(p *query.Plan) ([]query.GroupRow, QueryStats, error) {
	if p == nil {
		var err error
		p, err = query.CompileCached(s.e, query.Query{To: query.NoLimit})
		if err != nil {
			return nil, QueryStats{}, err
		}
	}
	agg := query.NewGroupAggregator(p)
	st, err := s.Query(p, agg.Add)
	if err != nil {
		return nil, st, err
	}
	return agg.Rows(), st, nil
}

// checkPlan rejects a plan compiled against a different campaign than
// the store holds.
func (s *Store) checkPlan(p *query.Plan) error {
	if got := scenario.SpecDigest(p.Expansion().Spec); got != s.man.SpecDigest {
		return fmt.Errorf("store: plan compiled for campaign digest %.12s, store holds %.12s", got, s.man.SpecDigest)
	}
	return nil
}

// sortRunsCheck is referenced by tests asserting run ordering invariants.
func sortRunsCheck(runs []run) bool {
	return sort.SliceIsSorted(runs, func(i, j int) bool { return runs[i].off < runs[j].off })
}
