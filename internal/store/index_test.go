package store

// Index sidecar coverage: sidecar roundtrip through close/reopen, the
// OpenRead fast path, crash injection against both the segment and its
// sidecar (stale, torn, corrupt — every case must fall back to
// rebuild-from-segments, never error or serve wrong ranges), and the
// query-equivalence property suite (indexed Query ≡ naive full scan,
// byte-identically, for seeded random specs and predicates).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ptgsched/internal/query"
	"ptgsched/internal/scenario"
)

// twoFamilySpec has 288 points across strassen and fft cells, so family
// and strategy predicates have both matching and non-matching cells.
const twoFamilySpec = `{
	"name": "index-test",
	"seed": 13,
	"reps": 4,
	"nptgs": [2, 4],
	"platforms": ["lille", "rennes", "nancy"],
	"families": [
		{"family": "strassen"},
		{"family": "fft", "k": [2, 3]},
		{"family": "random", "tasks": [20], "widths": [0.5], "regularities": [0.5], "densities": [0.5], "jumps": [1]}
	]
}`

// synth fabricates a deterministic full-width result for point idx —
// store tests exercise durability and indexing, not the scheduler, so
// results need not come from real runs.
func synth(e *scenario.Expansion, idx int) scenario.PointResult {
	p := e.PointAt(idx)
	ns := len(e.Cells[p.Cell].Config.Strategies)
	r := scenario.PointResult{
		Index: idx, Cell: p.Cell, Name: p.Name,
		Unfairness: make([]float64, ns),
		Makespan:   make([]float64, ns),
		Rel:        make([]float64, ns),
	}
	for s := 0; s < ns; s++ {
		r.Unfairness[s] = float64(idx%97)/97 + float64(s)*0.01
		r.Makespan[s] = 1000 + float64(idx%1013) + float64(s)
		r.Rel[s] = 1 + float64(s)*0.1
	}
	return r
}

// fillStore creates a store with the given shard count and appends every
// point's synthetic result in the given order (nil = index order).
func fillStore(t *testing.T, dir string, e *scenario.Expansion, shards int, order []int) *Store {
	t.Helper()
	s, err := Create(dir, e, shards)
	if err != nil {
		t.Fatal(err)
	}
	if order == nil {
		order = make([]int, e.NumPoints())
		for i := range order {
			order[i] = i
		}
	}
	for _, i := range order {
		if err := s.Append(synth(e, i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	return s
}

// collect runs one query path and returns the emitted records as
// marshalled JSONL — the byte-exact form the equivalence suite compares.
func collect(t *testing.T, st QueryStats, err error, got *bytes.Buffer) (QueryStats, string) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	return st, got.String()
}

func runQuery(t *testing.T, s *Store, p *query.Plan, full bool) (QueryStats, string) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	fn := func(r scenario.PointResult) error { return enc.Encode(r) }
	if full {
		st, err := s.QueryFullScan(p, fn)
		return collect(t, st, err, &buf)
	}
	st, err := s.Query(p, fn)
	return collect(t, st, err, &buf)
}

func compile(t *testing.T, e *scenario.Expansion, q query.Query) *query.Plan {
	t.Helper()
	p, err := query.Compile(e, q)
	if err != nil {
		t.Fatalf("Compile(%s): %v", q, err)
	}
	return p
}

func TestSidecarRoundTripAndOpenReadFastPath(t *testing.T) {
	e := expand(t, twoFamilySpec)
	dir := filepath.Join(t.TempDir(), "store")
	s := fillStore(t, dir, e, 3, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(sidecarPath(dir, i)); err != nil {
			t.Fatalf("sidecar %d missing after close: %v", i, err)
		}
	}

	r, err := OpenRead(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.RebuiltSegments(); n != 0 {
		t.Fatalf("clean close, yet OpenRead rebuilt %d segments", n)
	}
	for _, seg := range r.segs {
		if len(seg.idx.runs) == 0 || !sortRunsCheck(seg.idx.runs) {
			t.Fatalf("segment index empty or out of order: %+v", seg.idx.runs)
		}
	}
	if err := r.Append(synth(e, 0)); err != ErrReadOnly {
		t.Fatalf("Append on read-only handle: %v, want ErrReadOnly", err)
	}
	if _, _, err := r.Sweep(e.All(), 1); err != ErrReadOnly {
		t.Fatalf("Sweep on read-only handle: %v, want ErrReadOnly", err)
	}

	// The fast path must serve the same records a full scan does.
	p := compile(t, e, query.Query{Family: "fft", Strategy: "PS-work", To: query.NoLimit})
	ist, indexed := runQuery(t, r, p, false)
	fst, scanned := runQuery(t, r, p, true)
	if indexed != scanned {
		t.Fatal("indexed query differs from full scan after OpenRead")
	}
	if ist.Emitted == 0 || ist.Emitted != fst.Emitted {
		t.Fatalf("emitted %d indexed vs %d scanned", ist.Emitted, fst.Emitted)
	}
	if ist.BytesRead >= fst.BytesRead {
		t.Fatalf("pushdown read %d bytes, full scan %d — no pruning", ist.BytesRead, fst.BytesRead)
	}
	if ist.LinesDecoded >= fst.LinesDecoded {
		t.Fatalf("pushdown decoded %d lines, full scan %d — no pruning", ist.LinesDecoded, fst.LinesDecoded)
	}
}

func TestOpenReadWithoutSidecarsRebuildsByScan(t *testing.T) {
	e := expand(t, twoFamilySpec)
	dir := filepath.Join(t.TempDir(), "store")
	s := fillStore(t, dir, e, 2, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a store written before sidecars existed.
	for i := 0; i < 2; i++ {
		if err := os.Remove(sidecarPath(dir, i)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := OpenRead(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.RebuiltSegments(); n != 2 {
		t.Fatalf("RebuiltSegments = %d, want 2", n)
	}
	p := compile(t, e, query.Query{Family: "strassen", To: query.NoLimit})
	_, indexed := runQuery(t, r, p, false)
	_, scanned := runQuery(t, r, p, true)
	if indexed != scanned || indexed == "" {
		t.Fatal("rebuilt index serves different records than full scan")
	}
}

// TestSidecarCrashInjection tears the store down mid-write in every way a
// crash can — stale sidecar (records landed, entries did not), torn
// sidecar final line, corrupt sidecar mid-file, torn segment tail with a
// sidecar that still covers the dropped record — and checks both Open
// and OpenRead recover: fall back to scan where needed, never serve a
// wrong range, never error.
func TestSidecarCrashInjection(t *testing.T) {
	e := expand(t, twoFamilySpec)
	n := e.NumPoints()

	build := func(t *testing.T) string {
		dir := filepath.Join(t.TempDir(), "store")
		s := fillStore(t, dir, e, 2, nil)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	check := func(t *testing.T, dir string, wantRebuilt bool) {
		t.Helper()
		r, err := OpenRead(dir, e)
		if err != nil {
			t.Fatalf("OpenRead after injection: %v", err)
		}
		defer r.Close()
		if wantRebuilt && r.RebuiltSegments() == 0 {
			t.Fatal("expected at least one rebuilt segment")
		}
		for _, q := range []query.Query{
			{To: query.NoLimit},
			{Family: "fft", To: query.NoLimit},
			{Family: "strassen", Strategy: "ES", From: n / 4, To: 3 * n / 4},
		} {
			p := compile(t, e, q)
			_, indexed := runQuery(t, r, p, false)
			_, scanned := runQuery(t, r, p, true)
			if indexed != scanned {
				t.Fatalf("%s: indexed ≠ full scan after injection", q)
			}
		}
		// The writer path must also recover (it rescans regardless) and
		// heal the sidecar on its next append-capable open.
		w, err := Open(dir, e)
		if err != nil {
			t.Fatalf("Open after injection: %v", err)
		}
		defer w.Close()
		if got := w.Progress(); got.Completed == 0 {
			t.Fatal("writer recovered nothing")
		}
	}

	t.Run("stale", func(t *testing.T) {
		// A crash window between record write and entry write: the
		// sidecar legitimately lags. Emulate by chopping whole entries
		// off the sidecar (coverage < segment, tiling intact).
		dir := build(t)
		idx := sidecarPath(dir, 0)
		data, err := os.ReadFile(idx)
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.SplitAfter(data, []byte("\n"))
		if len(lines) < 2 {
			t.Skip("sidecar has a single entry; stale case needs two")
		}
		if err := os.WriteFile(idx, bytes.Join(lines[:1], nil), 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir, false) // a lagging sidecar is normal, not a rebuild
	})
	t.Run("torn-entry", func(t *testing.T) {
		dir := build(t)
		truncateTail(t, sidecarPath(dir, 0), 7) // mid-entry: torn final line
		check(t, dir, false)
	})
	t.Run("corrupt-midfile", func(t *testing.T) {
		dir := build(t)
		idx := sidecarPath(dir, 1)
		data, err := os.ReadFile(idx)
		if err != nil {
			t.Fatal(err)
		}
		data[0] = '{' + 1 // first entry no longer parses; rest follows
		if err := os.WriteFile(idx, data, 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir, true)
	})
	t.Run("sidecar-past-segment", func(t *testing.T) {
		// Segment torn back below sidecar coverage: entries point past
		// the file. Must rebuild, not serve ranges beyond EOF.
		dir := build(t)
		truncateTail(t, segmentPath(dir, 0), 30)
		check(t, dir, true)
	})
	t.Run("lying-entry", func(t *testing.T) {
		// An entry whose index span violates shard congruence fails
		// validation and sends the whole sidecar to the scan path.
		dir := build(t)
		idx := sidecarPath(dir, 0)
		data, err := os.ReadFile(idx)
		if err != nil {
			t.Fatal(err)
		}
		nl := bytes.IndexByte(data, '\n')
		var entry runEntry
		if err := json.Unmarshal(data[:nl], &entry); err != nil {
			t.Fatal(err)
		}
		entry.Lo++ // now congruent to the wrong shard
		fixed, err := json.Marshal(entry)
		if err != nil {
			t.Fatal(err)
		}
		out := append(append([]byte{}, fixed...), data[nl:]...)
		if err := os.WriteFile(idx, out, 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir, true)
	})
}

// TestWriterHealsSidecarOnAppend: after injection, a write-mode open plus
// one append must rewrite the sidecar so the next OpenRead is clean.
func TestWriterHealsSidecarOnAppend(t *testing.T) {
	e := expand(t, twoFamilySpec)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Create(dir, e, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < e.NumPoints()-1; i++ {
		if err := s.Append(synth(e, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the sidecar wholesale.
	if err := os.WriteFile(sidecarPath(dir, 0), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(synth(e, e.NumPoints()-1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRead(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.RebuiltSegments(); n != 0 {
		t.Fatalf("sidecar not healed by append: %d segments rebuilt", n)
	}
	p := compile(t, e, query.Query{To: query.NoLimit})
	st, _ := runQuery(t, r, p, false)
	if st.Emitted != int64(e.NumPoints()) {
		t.Fatalf("healed store emitted %d of %d", st.Emitted, e.NumPoints())
	}
}

// TestQueryEquivalenceProperty is the seeded-random differential suite:
// random shard counts, append orders (including shuffled, worst-case for
// run/cell alignment) and predicates — the indexed path must match the
// naive full scan byte-for-byte every time.
func TestQueryEquivalenceProperty(t *testing.T) {
	e := expand(t, twoFamilySpec)
	n := e.NumPoints()
	labels := []string{"", "S", "ES", "PS-work", "PS-width", "WPS-cp"}
	families := []string{"", "strassen", "fft", "random"}
	rng := rand.New(rand.NewSource(20260808))

	for trial := 0; trial < 6; trial++ {
		shards := 1 + rng.Intn(4)
		order := rng.Perm(n)
		if trial%2 == 0 {
			order = nil // index order: the cell-aligned fast case
		}
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("store-%d", trial))
		s := fillStore(t, dir, e, shards, order)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := OpenRead(dir, e)
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 8; qi++ {
			q := query.Query{
				Family:   families[rng.Intn(len(families))],
				Strategy: labels[rng.Intn(len(labels))],
			}
			if rng.Intn(2) == 0 {
				q.From = rng.Intn(n)
				q.To = q.From + rng.Intn(n-q.From+1)
			} else {
				q.To = query.NoLimit
			}
			p, err := query.Compile(e, q)
			if err != nil {
				// Predicate invalid for this campaign (e.g. PS-width on
				// a strassen-only selection is fine, but some label may
				// not exist); both paths must agree it is invalid, which
				// Compile already guarantees — skip.
				continue
			}
			ist, indexed := runQuery(t, r, p, false)
			fst, scanned := runQuery(t, r, p, true)
			if indexed != scanned {
				t.Fatalf("trial %d shards=%d q=%s: indexed output differs from full scan", trial, shards, q)
			}
			if ist.Emitted != fst.Emitted || ist.Emitted != int64(p.NumSelected()) {
				t.Fatalf("trial %d q=%s: emitted %d/%d, plan selects %d", trial, q, ist.Emitted, fst.Emitted, p.NumSelected())
			}
			if ist.BytesRead > fst.BytesRead {
				t.Fatalf("trial %d q=%s: indexed read more bytes (%d) than the full scan (%d)", trial, q, ist.BytesRead, fst.BytesRead)
			}
		}
		r.Close()
	}
}

// TestAggregateWhereMatchesManualReduction: the predicate-taking
// aggregation equals feeding the full-scan selection through the same
// group reduction, and reads fewer bytes doing it.
func TestAggregateWhereMatchesManualReduction(t *testing.T) {
	e := expand(t, twoFamilySpec)
	dir := filepath.Join(t.TempDir(), "store")
	s := fillStore(t, dir, e, 2, nil)
	defer s.Close()

	p := compile(t, e, query.Query{Family: "fft", Strategy: "ES", To: query.NoLimit})
	rows, st, err := s.AggregateWhere(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	want := query.NewGroupAggregator(p)
	if _, err := s.QueryFullScan(p, want.Add); err != nil {
		t.Fatal(err)
	}
	wantRows := want.Rows()
	if len(rows) != len(wantRows) {
		t.Fatalf("%d rows indexed, %d full-scan", len(rows), len(wantRows))
	}
	for i := range rows {
		if rows[i] != wantRows[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, rows[i], wantRows[i])
		}
	}
	if st.BytesRead >= st.BytesTotal {
		t.Fatalf("filtered aggregation read %d of %d bytes — no pruning", st.BytesRead, st.BytesTotal)
	}
	// Nil plan aggregates everything.
	all, _, err := s.AggregateWhere(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= len(rows) {
		t.Fatalf("match-all rows %d, filtered rows %d", len(all), len(rows))
	}
}
