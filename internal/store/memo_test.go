package store

// Store ↔ memo integration: a Sweep with a memo attached serves warm
// points without computing them, and a completed store republishes its
// results into a memo (the store-as-cache-source direction used by
// `ptgbench -resume -cache`).

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ptgsched/internal/scenario"
)

// countingMemo is an in-memory scenario.Memo keyed by point index.
type countingMemo struct {
	mu        sync.Mutex
	m         map[int]scenario.PointResult
	hits      int
	published int
}

func newCountingMemo() *countingMemo {
	return &countingMemo{m: make(map[int]scenario.PointResult)}
}

func (f *countingMemo) Lookup(p scenario.Point) (scenario.PointResult, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.m[p.Index]
	if ok {
		f.hits++
	}
	return r, ok
}

func (f *countingMemo) Publish(p scenario.Point, r scenario.PointResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.m[p.Index] = r
	f.published++
}

func TestSweepConsultsMemo(t *testing.T) {
	e := expand(t, smokeSpec)
	want := e.Run(e.All(), 1)

	m := newCountingMemo()
	for i, r := range want {
		m.Publish(e.PointAt(i), r)
	}

	s, err := Create(filepath.Join(t.TempDir(), "store"), e, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.UseMemo(m)
	if ran, skipped, err := s.Sweep(e.All(), 1); err != nil || ran != 8 || skipped != 0 {
		t.Fatalf("Sweep = (%d, %d, %v)", ran, skipped, err)
	}
	m.mu.Lock()
	hits := m.hits
	m.mu.Unlock()
	if hits != e.NumPoints() {
		t.Fatalf("memo hits=%d, want %d (every sweep point served warm)", hits, e.NumPoints())
	}
	got, err := s.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("memo-fed store holds results differing from a plain run")
	}
}

func TestPublishToFeedsMemoFromCompletedStore(t *testing.T) {
	e := expand(t, smokeSpec)
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Create(dir, e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Sweep(e.All(), 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m := newCountingMemo()
	n, err := s2.PublishTo(m)
	if err != nil {
		t.Fatal(err)
	}
	if n != e.NumPoints() {
		t.Fatalf("PublishTo republished %d points, want %d", n, e.NumPoints())
	}
	// The memo now answers every point with the store's value.
	for i := 0; i < e.NumPoints(); i++ {
		if _, ok := m.Lookup(e.PointAt(i)); !ok {
			t.Fatalf("point %d missing from memo after PublishTo", i)
		}
	}
}
