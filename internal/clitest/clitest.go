// Package clitest is the shared golden-test harness of the cmd CLIs:
// each command's tests capture run()'s stdout for fixed seeds and compare
// it against checked-in testdata/*.golden files, so wire-format drift is
// caught. `go test ./cmd/... -update` rewrites the files after an
// intended output change.
package clitest

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// update is registered once per test binary; every cmd test package that
// imports clitest shares it.
var update = flag.Bool("update", false, "rewrite golden files")

// Run invokes a CLI's testable run function and fails the test on error,
// returning captured stdout.
func Run(t *testing.T, run func(args []string, stdout io.Writer) error, args ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.Bytes())
	}
	return buf.Bytes()
}

// CheckGolden compares got against testdata/<name>, rewriting the file
// first under -update. The golden file itself must pass Hygiene — a
// CRLF'd, NUL-bearing or trailing-newline-mangled golden would otherwise
// masquerade as a real output diff (or, worse, mask one after a careless
// editor pass).
func CheckGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if err := Hygiene(want); err != nil {
		t.Errorf("golden file %s is unhygienic: %v (re-run with -update)", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// Hygiene validates golden-file bytes: printable line-oriented text with
// LF line endings and exactly one trailing newline. This is what keeps a
// byte-exact comparison honest — every golden in the repo is plain text,
// so any carriage return, NUL byte or missing/doubled final newline is an
// editing or transfer accident, never an intended output change.
func Hygiene(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty golden file")
	}
	if i := bytes.IndexByte(b, '\r'); i >= 0 {
		return fmt.Errorf("carriage return at byte %d (CRLF line endings)", i)
	}
	if i := bytes.IndexByte(b, 0); i >= 0 {
		return fmt.Errorf("NUL byte at offset %d", i)
	}
	if b[len(b)-1] != '\n' {
		return errors.New("missing trailing newline")
	}
	if len(b) > 1 && b[len(b)-2] == '\n' {
		return errors.New("trailing blank line (doubled final newline)")
	}
	return nil
}

// GoldenHygiene asserts Hygiene for every testdata/*.golden file of the
// calling package. Golden-producing acceptance tests are often skipped
// under -short; this check is cheap enough to always run, so a mangled
// golden is caught by the tier-1 lane and not first by a nightly
// acceptance run.
func GoldenHygiene(t *testing.T) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join("testdata", "*.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := Hygiene(b); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
