// Package clitest is the shared golden-test harness of the cmd CLIs:
// each command's tests capture run()'s stdout for fixed seeds and compare
// it against checked-in testdata/*.golden files, so wire-format drift is
// caught. `go test ./cmd/... -update` rewrites the files after an
// intended output change.
package clitest

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// update is registered once per test binary; every cmd test package that
// imports clitest shares it.
var update = flag.Bool("update", false, "rewrite golden files")

// Run invokes a CLI's testable run function and fails the test on error,
// returning captured stdout.
func Run(t *testing.T, run func(args []string, stdout io.Writer) error, args ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.Bytes())
	}
	return buf.Bytes()
}

// CheckGolden compares got against testdata/<name>, rewriting the file
// first under -update.
func CheckGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
