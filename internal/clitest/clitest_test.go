package clitest

import (
	"strings"
	"testing"
)

func TestHygiene(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error, "" for clean
	}{
		{"clean single line", "hello\n", ""},
		{"clean multi line", "a\nb\nc\n", ""},
		{"empty", "", "empty"},
		{"crlf", "a\r\nb\n", "carriage return"},
		{"lone cr", "a\rb\n", "carriage return"},
		{"nul byte", "a\x00b\n", "NUL"},
		{"no trailing newline", "a\nb", "missing trailing newline"},
		{"doubled trailing newline", "a\n\n", "trailing blank line"},
		{"bare newline", "\n", ""},
	}
	for _, tc := range cases {
		err := Hygiene([]byte(tc.in))
		switch {
		case tc.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.want != "" && err == nil:
			t.Errorf("%s: accepted, want error containing %q", tc.name, tc.want)
		case tc.want != "" && !strings.Contains(err.Error(), tc.want):
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
