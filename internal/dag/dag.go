// Package dag implements the parallel task graph (PTG) model of the paper:
// a directed acyclic graph whose vertices are moldable data-parallel tasks
// and whose edges carry the amount of data exchanged between tasks (§2).
//
// The package is purely structural: task durations on a given platform are
// provided by the cost package; scheduling lives in alloc, mapping and core.
//
// Concurrency: a Graph confines its cached analyses (and their shared
// scratch buffers) to one goroutine at a time — see the Graph doc comment.
// Distinct graphs are fully independent; every scheduling pipeline in this
// module generates or owns its graphs privately, which is what lets the
// service and experiment layers parallelize over shared platforms.
package dag

import (
	"errors"
	"fmt"
)

// Task is a data-parallel (moldable) task: a node of a PTG. Its sequential
// work and Amdahl fraction determine its execution time on any number of
// processors of any cluster (see the cost package).
type Task struct {
	// ID is the task's index within its graph's Tasks slice.
	ID int
	// Name is a human-readable label, unique within the graph.
	Name string
	// DataElems is the size d of the dataset the task operates on, in
	// double-precision elements (§2: 4M ≤ d ≤ 121M).
	DataElems float64
	// SeqGFlop is the task's sequential work in GFlop.
	SeqGFlop float64
	// Alpha is the non-parallelizable fraction of the task per Amdahl's
	// law (§2: drawn uniformly in [0, 0.25]).
	Alpha float64

	in, out []*Edge
}

// Edge is a precedence/communication dependence between two tasks. Bytes is
// the volume of data the source must send to the destination (§2: 8·d bytes
// where d is the producer's dataset size).
type Edge struct {
	From, To *Task
	Bytes    float64
}

// Graph is a parallel task graph. Create one with New, add tasks with
// AddTask and dependences with AddEdge, then call Validate (or any of the
// analyses, which validate lazily by panicking on cycles).
//
// Structural analyses (TopoOrder, PrecedenceLevels, LevelSets, Entries,
// Exits) are cached on the graph and invalidated by AddTask/AddEdge, and
// the level analyses share internal scratch buffers: the constrained
// allocation procedure re-runs them on an unchanged graph thousands of
// times. Returned slices are therefore shared — callers must treat them as
// read-only — and a Graph must not be analyzed from multiple goroutines
// concurrently (scheduling pipelines own their graphs, so this matches how
// every caller in this module behaves).
type Graph struct {
	Name  string
	Tasks []*Task
	Edges []*Edge

	// Caches of structure-only analyses; valid while the corresponding
	// slice is non-nil.
	topo      []*Task
	levels    []int
	levelSets [][]*Task
	entries   []*Task
	exits     []*Task
	// Scratch for level computations whose results are not returned to
	// callers (OnCriticalPath, CriticalPathLength internals).
	scratchBL []float64
	scratchTL []float64
	// Scratch behind OnCriticalPath's returned marks: the allocator calls
	// it once per growth step, so the marks are graph-owned and
	// overwritten by the next call (read-only for callers, like every
	// other cached analysis).
	scratchMarks []bool
}

// invalidate drops the structural caches after a mutation.
func (g *Graph) invalidate() {
	g.topo = nil
	g.levels = nil
	g.levelSets = nil
	g.entries = nil
	g.exits = nil
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// AddTask appends a task to the graph and returns it. The task's ID is its
// position in g.Tasks.
func (g *Graph) AddTask(name string, dataElems, seqGFlop, alpha float64) *Task {
	t := &Task{
		ID:        len(g.Tasks),
		Name:      name,
		DataElems: dataElems,
		SeqGFlop:  seqGFlop,
		Alpha:     alpha,
	}
	g.Tasks = append(g.Tasks, t)
	g.invalidate()
	return t
}

// AddEdge records that from must complete before to starts, transferring
// the given number of bytes. Duplicate and self edges are rejected.
func (g *Graph) AddEdge(from, to *Task, bytes float64) (*Edge, error) {
	if from == to {
		return nil, fmt.Errorf("dag: self edge on task %q", from.Name)
	}
	if bytes < 0 {
		return nil, fmt.Errorf("dag: negative edge weight %g on %q->%q", bytes, from.Name, to.Name)
	}
	for _, e := range from.out {
		if e.To == to {
			return nil, fmt.Errorf("dag: duplicate edge %q->%q", from.Name, to.Name)
		}
	}
	e := &Edge{From: from, To: to, Bytes: bytes}
	g.Edges = append(g.Edges, e)
	from.out = append(from.out, e)
	to.in = append(to.in, e)
	g.invalidate()
	return e, nil
}

// MustAddEdge is AddEdge that panics on error; intended for generators whose
// construction logic guarantees validity.
func (g *Graph) MustAddEdge(from, to *Task, bytes float64) *Edge {
	e, err := g.AddEdge(from, to, bytes)
	if err != nil {
		panic(err)
	}
	return e
}

// In returns the incoming edges of t.
func (t *Task) In() []*Edge { return t.in }

// Out returns the outgoing edges of t.
func (t *Task) Out() []*Edge { return t.out }

// Predecessors returns the direct predecessors of t.
func (t *Task) Predecessors() []*Task {
	ps := make([]*Task, len(t.in))
	for i, e := range t.in {
		ps[i] = e.From
	}
	return ps
}

// Successors returns the direct successors of t.
func (t *Task) Successors() []*Task {
	ss := make([]*Task, len(t.out))
	for i, e := range t.out {
		ss[i] = e.To
	}
	return ss
}

// Entries returns the tasks with no predecessors. The slice is cached;
// treat it as read-only.
func (g *Graph) Entries() []*Task {
	if g.entries == nil {
		es := make([]*Task, 0, 1)
		for _, t := range g.Tasks {
			if len(t.in) == 0 {
				es = append(es, t)
			}
		}
		g.entries = es
	}
	return g.entries
}

// Exits returns the tasks with no successors. The slice is cached; treat it
// as read-only.
func (g *Graph) Exits() []*Task {
	if g.exits == nil {
		xs := make([]*Task, 0, 1)
		for _, t := range g.Tasks {
			if len(t.out) == 0 {
				xs = append(xs, t)
			}
		}
		g.exits = xs
	}
	return g.exits
}

// ErrCycle is returned by Validate and TopoOrder when the graph contains a
// cycle and therefore is not a DAG.
var ErrCycle = errors.New("dag: graph contains a cycle")

// TopoOrder returns the tasks in a topological order (ties broken by task
// ID, so the order is deterministic), or ErrCycle. The order is cached
// while the graph is unmodified; treat the slice as read-only.
func (g *Graph) TopoOrder() ([]*Task, error) {
	if g.topo != nil {
		return g.topo, nil
	}
	order, err := g.topoOrderUncached()
	if err != nil {
		return nil, err
	}
	g.topo = order
	return order, nil
}

func (g *Graph) topoOrderUncached() ([]*Task, error) {
	indeg := make([]int, len(g.Tasks))
	for _, t := range g.Tasks {
		indeg[t.ID] = len(t.in)
	}
	// Kahn's algorithm with an ID-ordered frontier for determinism.
	var frontier []*Task
	for _, t := range g.Tasks {
		if indeg[t.ID] == 0 {
			frontier = append(frontier, t)
		}
	}
	order := make([]*Task, 0, len(g.Tasks))
	for len(frontier) > 0 {
		t := frontier[0]
		frontier = frontier[1:]
		order = append(order, t)
		for _, e := range t.out {
			indeg[e.To.ID]--
			if indeg[e.To.ID] == 0 {
				frontier = append(frontier, e.To)
			}
		}
	}
	if len(order) != len(g.Tasks) {
		return nil, ErrCycle
	}
	return order, nil
}

// Validate checks structural invariants: at least one task, acyclicity,
// consistent IDs, and that the graph has a single entry and a single exit
// task when strict is true (§2 assumes single-entry single-exit PTGs; the
// generators guarantee it, imported graphs may not).
func (g *Graph) Validate(strict bool) error {
	if len(g.Tasks) == 0 {
		return errors.New("dag: graph has no tasks")
	}
	for i, t := range g.Tasks {
		if t.ID != i {
			return fmt.Errorf("dag: task %q has ID %d at position %d", t.Name, t.ID, i)
		}
		if t.DataElems < 0 || t.SeqGFlop < 0 {
			return fmt.Errorf("dag: task %q has negative size or work", t.Name)
		}
		if t.Alpha < 0 || t.Alpha > 1 {
			return fmt.Errorf("dag: task %q has Amdahl fraction %g outside [0,1]", t.Name, t.Alpha)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	if strict {
		if n := len(g.Entries()); n != 1 {
			return fmt.Errorf("dag: graph has %d entry tasks, want 1", n)
		}
		if n := len(g.Exits()); n != 1 {
			return fmt.Errorf("dag: graph has %d exit tasks, want 1", n)
		}
	}
	return nil
}

// TotalWork returns the sum of the sequential works of all tasks in GFlop.
// This is the "amount of work" characteristic used by the PS-work and
// WPS-work strategies (§6).
func (g *Graph) TotalWork() float64 {
	w := 0.0
	for _, t := range g.Tasks {
		w += t.SeqGFlop
	}
	return w
}
