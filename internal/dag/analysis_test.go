package dag

import (
	"testing"
	"testing/quick"
)

func TestComputeStatsDiamond(t *testing.T) {
	g, _, _, _, _ := diamond(t, 8e6)
	s := g.ComputeStats()
	if s.Tasks != 4 || s.Edges != 4 || s.Depth != 3 || s.MaxWidth != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalWorkG != 7 {
		t.Errorf("total work = %g", s.TotalWorkG)
	}
	if s.TotalBytes != 32e6 {
		t.Errorf("total bytes = %g", s.TotalBytes)
	}
	if s.CPWorkG != 5 { // a(1) + c(3) + d(1)
		t.Errorf("cp work = %g", s.CPWorkG)
	}
	if s.SerialFraction != 5.0/7.0 {
		t.Errorf("serial fraction = %g", s.SerialFraction)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestTransitiveReductionRemovesShortcut(t *testing.T) {
	g := New("jump")
	a := g.AddTask("a", 1, 1, 0)
	b := g.AddTask("b", 1, 1, 0)
	c := g.AddTask("c", 1, 1, 0)
	g.MustAddEdge(a, b, 10)
	g.MustAddEdge(b, c, 10)
	g.MustAddEdge(a, c, 10) // redundant shortcut
	red := g.TransitiveReduction()
	if len(red.Edges) != 2 {
		t.Fatalf("reduced graph has %d edges, want 2", len(red.Edges))
	}
	for _, e := range red.Edges {
		if e.From.Name == "a" && e.To.Name == "c" {
			t.Fatal("shortcut edge survived reduction")
		}
	}
}

func TestTransitiveReductionKeepsDiamond(t *testing.T) {
	g, _, _, _, _ := diamond(t, 8)
	red := g.TransitiveReduction()
	if len(red.Edges) != 4 {
		t.Fatalf("diamond reduced to %d edges, want 4 (no redundancy)", len(red.Edges))
	}
}

func TestReachable(t *testing.T) {
	g, a, b, c, d := diamond(t, 8)
	if !g.Reachable(a, d) {
		t.Error("a should reach d")
	}
	if g.Reachable(b, c) {
		t.Error("b should not reach c")
	}
	if !g.Reachable(b, b) {
		t.Error("a task reaches itself")
	}
	if g.Reachable(d, a) {
		t.Error("reachability should be directed")
	}
}

func TestWorkHistogram(t *testing.T) {
	g := New("h")
	for _, w := range []float64{1, 1, 5, 10} {
		g.AddTask("t", 1, w, 0)
	}
	bins := g.WorkHistogram(3)
	// span [1,10]: 1→bin0, 1→bin0, 5→bin1, 10→bin2.
	if bins[0] != 2 || bins[1] != 1 || bins[2] != 1 {
		t.Fatalf("bins = %v", bins)
	}
}

func TestWorkHistogramDegenerate(t *testing.T) {
	g := New("h")
	g.AddTask("t", 1, 3, 0)
	g.AddTask("u", 1, 3, 0)
	bins := g.WorkHistogram(4)
	if bins[0] != 2 {
		t.Fatalf("identical works should land in bin 0: %v", bins)
	}
	defer func() {
		if recover() == nil {
			t.Error("0-bin histogram accepted")
		}
	}()
	g.WorkHistogram(0)
}

// Property: transitive reduction preserves reachability and precedence
// levels while never adding edges.
func TestTransitiveReductionProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 12)
		red := g.TransitiveReduction()
		if len(red.Edges) > len(g.Edges) || len(red.Tasks) != len(g.Tasks) {
			return false
		}
		for i := range g.Tasks {
			for j := range g.Tasks {
				if g.Reachable(g.Tasks[i], g.Tasks[j]) != red.Reachable(red.Tasks[i], red.Tasks[j]) {
					return false
				}
			}
		}
		lv, rlv := g.PrecedenceLevels(), red.PrecedenceLevels()
		for i := range lv {
			if lv[i] != rlv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomDAG builds a random DAG by adding forward edges over a random
// permutation, so it is acyclic by construction.
func randomDAG(seed int64, n int) *Graph {
	g := New("rand")
	for i := 0; i < n; i++ {
		g.AddTask("t", 1, 1+float64((seed>>uint(i%8))&7), 0)
	}
	state := uint64(seed)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if next(100) < 25 {
				g.MustAddEdge(g.Tasks[i], g.Tasks[j], 1)
			}
		}
	}
	return g
}
