package dag

import "fmt"

// PrecedenceLevels returns, for each task (indexed by ID), its precedence
// level as defined in §4 of the paper: a task is at level a ≥ 0 if all its
// predecessors are at levels < a and at least one predecessor is at level
// a−1; entry tasks are at level 0. This is the longest path from an entry
// task counted in edges. The result is cached while the graph is
// unmodified; treat it as read-only.
func (g *Graph) PrecedenceLevels() []int {
	if g.levels != nil {
		return g.levels
	}
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	levels := make([]int, len(g.Tasks))
	for _, t := range order {
		lvl := 0
		for _, e := range t.in {
			if l := levels[e.From.ID] + 1; l > lvl {
				lvl = l
			}
		}
		levels[t.ID] = lvl
	}
	g.levels = levels
	return levels
}

// LevelSets groups tasks by precedence level, ordered by level. The result
// is cached while the graph is unmodified; treat it as read-only. The
// constrained allocation procedures test the per-level power budget on
// every growth step, so this cache takes LevelSets off their hot path.
func (g *Graph) LevelSets() [][]*Task {
	if g.levelSets != nil {
		return g.levelSets
	}
	levels := g.PrecedenceLevels()
	max := 0
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	sets := make([][]*Task, max+1)
	for _, t := range g.Tasks {
		sets[levels[t.ID]] = append(sets[levels[t.ID]], t)
	}
	g.levelSets = sets
	return sets
}

// MaxWidth returns the size of the largest precedence level: the maximal
// task parallelism the PTG can exploit. This is the "width" characteristic
// used by the PS-width and WPS-width strategies (§6).
func (g *Graph) MaxWidth() int {
	w := 0
	for _, set := range g.LevelSets() {
		if len(set) > w {
			w = len(set)
		}
	}
	return w
}

// Depth returns the number of precedence levels.
func (g *Graph) Depth() int { return len(g.LevelSets()) }

// TimeFunc gives the (estimated) execution time of a task in seconds under
// some allocation; CommFunc gives the (estimated) transfer time of an edge.
// They parameterize bottom levels and critical paths so the same analyses
// serve the allocator (reference-cluster times) and the mapper (placed
// times).
type (
	TimeFunc func(*Task) float64
	CommFunc func(*Edge) float64
)

// ZeroComm is a CommFunc that ignores communication.
func ZeroComm(*Edge) float64 { return 0 }

// bottomLevelsInto computes bottom levels into bl, which must have length
// len(g.Tasks). It backs both the exported BottomLevels (fresh slice, the
// caller keeps it) and the scratch-buffer paths of OnCriticalPath and
// CriticalPathLength, which the allocator re-runs on every growth step.
func (g *Graph) bottomLevelsInto(bl []float64, timeOf TimeFunc, commOf CommFunc) {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, e := range t.out {
			v := commOf(e) + bl[e.To.ID]
			if v > best {
				best = v
			}
		}
		bl[t.ID] = timeOf(t) + best
	}
}

// topLevelsInto computes top levels into tl, which must have length
// len(g.Tasks).
func (g *Graph) topLevelsInto(tl []float64, timeOf TimeFunc, commOf CommFunc) {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	for _, t := range order {
		best := 0.0
		for _, e := range t.in {
			v := tl[e.From.ID] + timeOf(e.From) + commOf(e)
			if v > best {
				best = v
			}
		}
		tl[t.ID] = best
	}
}

// scratchLevels returns the graph-owned bottom- and top-level scratch
// buffers, allocating them on first use.
func (g *Graph) scratchLevels() (bl, tl []float64) {
	if len(g.scratchBL) != len(g.Tasks) {
		g.scratchBL = make([]float64, len(g.Tasks))
		g.scratchTL = make([]float64, len(g.Tasks))
	}
	return g.scratchBL, g.scratchTL
}

// BottomLevels returns, indexed by task ID, each task's bottom level: its
// execution time plus the maximum over successors of edge cost plus the
// successor's bottom level — the distance to the end of the application
// (§5). The mapper sorts ready tasks by decreasing bottom level.
func (g *Graph) BottomLevels(timeOf TimeFunc, commOf CommFunc) []float64 {
	bl := make([]float64, len(g.Tasks))
	g.bottomLevelsInto(bl, timeOf, commOf)
	return bl
}

// TopLevels returns, indexed by task ID, the length of the longest path
// from an entry task to the task, excluding the task's own time.
func (g *Graph) TopLevels(timeOf TimeFunc, commOf CommFunc) []float64 {
	tl := make([]float64, len(g.Tasks))
	g.topLevelsInto(tl, timeOf, commOf)
	return tl
}

// maxEntryLevel returns the critical path length given computed bottom
// levels: the maximal bottom level over entry tasks.
func (g *Graph) maxEntryLevel(bl []float64) float64 {
	best := 0.0
	for _, t := range g.Entries() {
		if bl[t.ID] > best {
			best = bl[t.ID]
		}
	}
	return best
}

// CriticalPathLength returns the length of the critical path: the maximal
// bottom level over entry tasks. This is the "critical path" characteristic
// used by the PS-cp and WPS-cp strategies (§6).
func (g *Graph) CriticalPathLength(timeOf TimeFunc, commOf CommFunc) float64 {
	bl, _ := g.scratchLevels()
	g.bottomLevelsInto(bl, timeOf, commOf)
	return g.maxEntryLevel(bl)
}

// CriticalPath returns one maximal-length chain of tasks from an entry to
// an exit under the given time and communication estimates. Ties are broken
// by task ID for determinism.
func (g *Graph) CriticalPath(timeOf TimeFunc, commOf CommFunc) []*Task {
	bl, _ := g.scratchLevels()
	g.bottomLevelsInto(bl, timeOf, commOf)
	var cur *Task
	for _, t := range g.Entries() {
		if cur == nil || bl[t.ID] > bl[cur.ID] {
			cur = t
		}
	}
	if cur == nil {
		return nil
	}
	path := []*Task{cur}
	for len(cur.out) > 0 {
		var next *Task
		var nextVal float64
		for _, e := range cur.out {
			v := commOf(e) + bl[e.To.ID]
			if next == nil || v > nextVal {
				next, nextVal = e.To, v
			}
		}
		const tol = 1e-12
		if bl[cur.ID]-timeOf(cur) > nextVal+tol {
			// The chain through successors is shorter than the recorded
			// bottom level: numerical inconsistency in the caller's
			// estimates.
			panic(fmt.Sprintf("dag: inconsistent bottom levels at %q", cur.Name))
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// OnCriticalPath returns a boolean per task ID marking tasks whose top
// level + time + bottom level equals the critical path length (within
// tolerance): the set of critical tasks the allocator may widen. Bottom
// levels are computed once and shared between the mark test and the
// critical path length (the seed recomputed them three times per call).
// The returned slice is graph-owned scratch, overwritten by the next
// call: the allocator re-runs the analysis on every growth step and
// consumes the marks before the next one.
func (g *Graph) OnCriticalPath(timeOf TimeFunc, commOf CommFunc) []bool {
	bl, tl := g.scratchLevels()
	g.bottomLevelsInto(bl, timeOf, commOf)
	g.topLevelsInto(tl, timeOf, commOf)
	cp := g.maxEntryLevel(bl)
	const relTol = 1e-9
	if len(g.scratchMarks) != len(g.Tasks) {
		g.scratchMarks = make([]bool, len(g.Tasks))
	}
	marks := g.scratchMarks
	for _, t := range g.Tasks {
		marks[t.ID] = tl[t.ID]+bl[t.ID] >= cp*(1-relTol)
	}
	return marks
}
