package dag

import "fmt"

// PrecedenceLevels returns, for each task (indexed by ID), its precedence
// level as defined in §4 of the paper: a task is at level a ≥ 0 if all its
// predecessors are at levels < a and at least one predecessor is at level
// a−1; entry tasks are at level 0. This is the longest path from an entry
// task counted in edges.
func (g *Graph) PrecedenceLevels() []int {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	levels := make([]int, len(g.Tasks))
	for _, t := range order {
		lvl := 0
		for _, e := range t.in {
			if l := levels[e.From.ID] + 1; l > lvl {
				lvl = l
			}
		}
		levels[t.ID] = lvl
	}
	return levels
}

// LevelSets groups tasks by precedence level, ordered by level.
func (g *Graph) LevelSets() [][]*Task {
	levels := g.PrecedenceLevels()
	max := 0
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	sets := make([][]*Task, max+1)
	for _, t := range g.Tasks {
		sets[levels[t.ID]] = append(sets[levels[t.ID]], t)
	}
	return sets
}

// MaxWidth returns the size of the largest precedence level: the maximal
// task parallelism the PTG can exploit. This is the "width" characteristic
// used by the PS-width and WPS-width strategies (§6).
func (g *Graph) MaxWidth() int {
	w := 0
	for _, set := range g.LevelSets() {
		if len(set) > w {
			w = len(set)
		}
	}
	return w
}

// Depth returns the number of precedence levels.
func (g *Graph) Depth() int { return len(g.LevelSets()) }

// TimeFunc gives the (estimated) execution time of a task in seconds under
// some allocation; CommFunc gives the (estimated) transfer time of an edge.
// They parameterize bottom levels and critical paths so the same analyses
// serve the allocator (reference-cluster times) and the mapper (placed
// times).
type (
	TimeFunc func(*Task) float64
	CommFunc func(*Edge) float64
)

// ZeroComm is a CommFunc that ignores communication.
func ZeroComm(*Edge) float64 { return 0 }

// BottomLevels returns, indexed by task ID, each task's bottom level: its
// execution time plus the maximum over successors of edge cost plus the
// successor's bottom level — the distance to the end of the application
// (§5). The mapper sorts ready tasks by decreasing bottom level.
func (g *Graph) BottomLevels(timeOf TimeFunc, commOf CommFunc) []float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	bl := make([]float64, len(g.Tasks))
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, e := range t.out {
			v := commOf(e) + bl[e.To.ID]
			if v > best {
				best = v
			}
		}
		bl[t.ID] = timeOf(t) + best
	}
	return bl
}

// TopLevels returns, indexed by task ID, the length of the longest path
// from an entry task to the task, excluding the task's own time.
func (g *Graph) TopLevels(timeOf TimeFunc, commOf CommFunc) []float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	tl := make([]float64, len(g.Tasks))
	for _, t := range order {
		best := 0.0
		for _, e := range t.in {
			v := tl[e.From.ID] + timeOf(e.From) + commOf(e)
			if v > best {
				best = v
			}
		}
		tl[t.ID] = best
	}
	return tl
}

// CriticalPathLength returns the length of the critical path: the maximal
// bottom level over entry tasks. This is the "critical path" characteristic
// used by the PS-cp and WPS-cp strategies (§6).
func (g *Graph) CriticalPathLength(timeOf TimeFunc, commOf CommFunc) float64 {
	bl := g.BottomLevels(timeOf, commOf)
	best := 0.0
	for _, t := range g.Entries() {
		if bl[t.ID] > best {
			best = bl[t.ID]
		}
	}
	return best
}

// CriticalPath returns one maximal-length chain of tasks from an entry to
// an exit under the given time and communication estimates. Ties are broken
// by task ID for determinism.
func (g *Graph) CriticalPath(timeOf TimeFunc, commOf CommFunc) []*Task {
	bl := g.BottomLevels(timeOf, commOf)
	var cur *Task
	for _, t := range g.Entries() {
		if cur == nil || bl[t.ID] > bl[cur.ID] {
			cur = t
		}
	}
	if cur == nil {
		return nil
	}
	path := []*Task{cur}
	for len(cur.out) > 0 {
		var next *Task
		var nextVal float64
		for _, e := range cur.out {
			v := commOf(e) + bl[e.To.ID]
			if next == nil || v > nextVal {
				next, nextVal = e.To, v
			}
		}
		const tol = 1e-12
		if bl[cur.ID]-timeOf(cur) > nextVal+tol {
			// The chain through successors is shorter than the recorded
			// bottom level: numerical inconsistency in the caller's
			// estimates.
			panic(fmt.Sprintf("dag: inconsistent bottom levels at %q", cur.Name))
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// OnCriticalPath returns a boolean per task ID marking tasks whose top
// level + time + bottom level equals the critical path length (within
// tolerance): the set of critical tasks the allocator may widen.
func (g *Graph) OnCriticalPath(timeOf TimeFunc, commOf CommFunc) []bool {
	bl := g.BottomLevels(timeOf, commOf)
	tl := g.TopLevels(timeOf, commOf)
	cp := g.CriticalPathLength(timeOf, commOf)
	const relTol = 1e-9
	marks := make([]bool, len(g.Tasks))
	for _, t := range g.Tasks {
		if tl[t.ID]+bl[t.ID] >= cp*(1-relTol) {
			marks[t.ID] = true
		}
	}
	return marks
}
