package dag

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// diamond builds the 4-task diamond A -> {B, C} -> D with unit works and
// the given edge volume.
func diamond(t *testing.T, vol float64) (*Graph, *Task, *Task, *Task, *Task) {
	t.Helper()
	g := New("diamond")
	a := g.AddTask("A", 1e6, 1, 0)
	b := g.AddTask("B", 1e6, 2, 0)
	c := g.AddTask("C", 1e6, 3, 0)
	d := g.AddTask("D", 1e6, 1, 0)
	g.MustAddEdge(a, b, vol)
	g.MustAddEdge(a, c, vol)
	g.MustAddEdge(b, d, vol)
	g.MustAddEdge(c, d, vol)
	return g, a, b, c, d
}

func TestAddTaskAssignsSequentialIDs(t *testing.T) {
	g := New("g")
	for i := 0; i < 5; i++ {
		task := g.AddTask("t", 1, 1, 0)
		if task.ID != i {
			t.Fatalf("task %d got ID %d", i, task.ID)
		}
	}
}

func TestAddEdgeRejectsSelfAndDuplicate(t *testing.T) {
	g := New("g")
	a := g.AddTask("a", 1, 1, 0)
	b := g.AddTask("b", 1, 1, 0)
	if _, err := g.AddEdge(a, a, 0); err == nil {
		t.Error("self edge accepted")
	}
	if _, err := g.AddEdge(a, b, 1); err != nil {
		t.Fatalf("first edge rejected: %v", err)
	}
	if _, err := g.AddEdge(a, b, 1); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := g.AddEdge(b, a, -1); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestEntriesAndExits(t *testing.T) {
	g, a, _, _, d := diamond(t, 8)
	es, xs := g.Entries(), g.Exits()
	if len(es) != 1 || es[0] != a {
		t.Errorf("Entries = %v", es)
	}
	if len(xs) != 1 || xs[0] != d {
		t.Errorf("Exits = %v", xs)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g, _, _, _, _ := diamond(t, 8)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[*Task]int)
	for i, task := range order {
		pos[task] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %s->%s violated in topo order", e.From.Name, e.To.Name)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New("cyclic")
	a := g.AddTask("a", 1, 1, 0)
	b := g.AddTask("b", 1, 1, 0)
	c := g.AddTask("c", 1, 1, 0)
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, a, 0)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if err := g.Validate(false); err != ErrCycle {
		t.Fatalf("Validate err = %v, want ErrCycle", err)
	}
}

func TestValidateStrictSingleEntryExit(t *testing.T) {
	g := New("two-entries")
	a := g.AddTask("a", 1, 1, 0)
	b := g.AddTask("b", 1, 1, 0)
	c := g.AddTask("c", 1, 1, 0)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, c, 0)
	if err := g.Validate(false); err != nil {
		t.Fatalf("non-strict Validate: %v", err)
	}
	if err := g.Validate(true); err == nil {
		t.Fatal("strict Validate accepted two entries")
	}
}

func TestValidateRejectsBadAlpha(t *testing.T) {
	g := New("g")
	g.AddTask("a", 1, 1, 1.5)
	if err := g.Validate(false); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
}

func TestPrecedenceLevelsDiamond(t *testing.T) {
	g, a, b, c, d := diamond(t, 8)
	lv := g.PrecedenceLevels()
	want := map[*Task]int{a: 0, b: 1, c: 1, d: 2}
	for task, wl := range want {
		if lv[task.ID] != wl {
			t.Errorf("%s: level %d, want %d", task.Name, lv[task.ID], wl)
		}
	}
}

func TestPrecedenceLevelsWithJumpEdge(t *testing.T) {
	// a -> b -> c plus jump a -> c: c is still at level 2 (longest path).
	g := New("jump")
	a := g.AddTask("a", 1, 1, 0)
	b := g.AddTask("b", 1, 1, 0)
	c := g.AddTask("c", 1, 1, 0)
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(a, c, 0)
	lv := g.PrecedenceLevels()
	if lv[c.ID] != 2 {
		t.Fatalf("c at level %d, want 2", lv[c.ID])
	}
}

func TestMaxWidthAndDepth(t *testing.T) {
	g, _, _, _, _ := diamond(t, 8)
	if w := g.MaxWidth(); w != 2 {
		t.Errorf("MaxWidth = %d, want 2", w)
	}
	if d := g.Depth(); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
}

func TestBottomLevelsDiamond(t *testing.T) {
	g, a, b, c, d := diamond(t, 8)
	timeOf := func(t *Task) float64 { return t.SeqGFlop } // 1 GFlop/s
	bl := g.BottomLevels(timeOf, ZeroComm)
	// d=1; b=2+1=3; c=3+1=4; a=1+max(3,4)=5.
	want := map[*Task]float64{d: 1, b: 3, c: 4, a: 5}
	for task, w := range want {
		if bl[task.ID] != w {
			t.Errorf("%s: bottom level %g, want %g", task.Name, bl[task.ID], w)
		}
	}
}

func TestBottomLevelsWithComm(t *testing.T) {
	g, a, _, _, _ := diamond(t, 8)
	timeOf := func(t *Task) float64 { return t.SeqGFlop }
	commOf := func(e *Edge) float64 { return 0.5 }
	bl := g.BottomLevels(timeOf, commOf)
	// d=1; b=2+0.5+1=3.5; c=3+0.5+1=4.5; a=1+0.5+4.5=6.
	if bl[a.ID] != 6 {
		t.Fatalf("a bottom level = %g, want 6", bl[a.ID])
	}
}

func TestTopLevelsDiamond(t *testing.T) {
	g, a, b, c, d := diamond(t, 8)
	timeOf := func(t *Task) float64 { return t.SeqGFlop }
	tl := g.TopLevels(timeOf, ZeroComm)
	want := map[*Task]float64{a: 0, b: 1, c: 1, d: 4} // d: via c = 1+3
	for task, w := range want {
		if tl[task.ID] != w {
			t.Errorf("%s: top level %g, want %g", task.Name, tl[task.ID], w)
		}
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g, a, _, c, d := diamond(t, 8)
	timeOf := func(t *Task) float64 { return t.SeqGFlop }
	if cp := g.CriticalPathLength(timeOf, ZeroComm); cp != 5 {
		t.Fatalf("critical path length = %g, want 5", cp)
	}
	path := g.CriticalPath(timeOf, ZeroComm)
	want := []*Task{a, c, d}
	if len(path) != len(want) {
		t.Fatalf("critical path %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("critical path task %d = %s, want %s", i, path[i].Name, want[i].Name)
		}
	}
}

func TestOnCriticalPathMarksChain(t *testing.T) {
	g, a, b, c, d := diamond(t, 8)
	timeOf := func(t *Task) float64 { return t.SeqGFlop }
	marks := g.OnCriticalPath(timeOf, ZeroComm)
	if !marks[a.ID] || !marks[c.ID] || !marks[d.ID] {
		t.Error("critical chain a-c-d not fully marked")
	}
	if marks[b.ID] {
		t.Error("non-critical task b marked")
	}
}

func TestTotalWork(t *testing.T) {
	g, _, _, _, _ := diamond(t, 8)
	if w := g.TotalWork(); w != 7 {
		t.Fatalf("TotalWork = %g, want 7", w)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, _, _, _, _ := diamond(t, 8e6)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || len(back.Tasks) != len(g.Tasks) || len(back.Edges) != len(g.Edges) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	for i, task := range g.Tasks {
		bt := back.Tasks[i]
		if bt.Name != task.Name || bt.SeqGFlop != task.SeqGFlop || bt.DataElems != task.DataElems {
			t.Errorf("task %d mismatch after round trip", i)
		}
	}
	if back.Edges[0].Bytes != 8e6 {
		t.Errorf("edge bytes = %g, want 8e6", back.Edges[0].Bytes)
	}
}

func TestUnmarshalRejectsOutOfRangeEdge(t *testing.T) {
	var g Graph
	err := json.Unmarshal([]byte(`{"name":"x","tasks":[{"name":"a"}],"edges":[{"from":0,"to":5}]}`), &g)
	if err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	g, _, _, _, _ := diamond(t, 8e6)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"digraph", "t0 ->", "GFlop"} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, out)
		}
	}
}
