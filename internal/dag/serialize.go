package dag

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonGraph is the wire format for graphs.
type jsonGraph struct {
	Name  string     `json:"name"`
	Tasks []jsonTask `json:"tasks"`
	Edges []jsonEdge `json:"edges"`
}

type jsonTask struct {
	Name      string  `json:"name"`
	DataElems float64 `json:"data_elems"`
	SeqGFlop  float64 `json:"seq_gflop"`
	Alpha     float64 `json:"alpha"`
}

type jsonEdge struct {
	From  int     `json:"from"`
	To    int     `json:"to"`
	Bytes float64 `json:"bytes"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name}
	for _, t := range g.Tasks {
		jg.Tasks = append(jg.Tasks, jsonTask{t.Name, t.DataElems, t.SeqGFlop, t.Alpha})
	}
	for _, e := range g.Edges {
		jg.Edges = append(jg.Edges, jsonEdge{e.From.ID, e.To.ID, e.Bytes})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON implements json.Unmarshaler. The decoded graph is validated
// (non-strictly: multiple entries/exits are allowed on import).
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	*g = Graph{Name: jg.Name}
	for _, jt := range jg.Tasks {
		g.AddTask(jt.Name, jt.DataElems, jt.SeqGFlop, jt.Alpha)
	}
	for _, je := range jg.Edges {
		if je.From < 0 || je.From >= len(g.Tasks) || je.To < 0 || je.To >= len(g.Tasks) {
			return fmt.Errorf("dag: edge %d->%d out of range", je.From, je.To)
		}
		if _, err := g.AddEdge(g.Tasks[je.From], g.Tasks[je.To], je.Bytes); err != nil {
			return err
		}
	}
	return g.Validate(false)
}

// WriteDOT renders the graph in Graphviz DOT format, labelling each task
// with its name and sequential work and each edge with its data volume.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", g.Name)
	for _, t := range g.Tasks {
		fmt.Fprintf(&b, "  t%d [label=\"%s\\n%.1f GFlop\"];\n", t.ID, t.Name, t.SeqGFlop)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  t%d -> t%d [label=\"%.0f MB\"];\n", e.From.ID, e.To.ID, e.Bytes/1e6)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
