package dag

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes a PTG's structure and cost distribution.
type Stats struct {
	Tasks, Edges  int
	Depth         int
	MaxWidth      int
	TotalWorkG    float64 // GFlop
	TotalBytes    float64 // summed edge volumes
	MeanOutDegree float64
	// CPWorkG is the work along one critical path under sequential unit
	// speed, in GFlop.
	CPWorkG float64
	// SerialFraction is CPWorkG / TotalWorkG: 1 for chains, → 0 for wide
	// graphs.
	SerialFraction float64
}

// ComputeStats gathers the structural statistics of g.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Tasks: len(g.Tasks), Edges: len(g.Edges)}
	s.Depth = g.Depth()
	s.MaxWidth = g.MaxWidth()
	s.TotalWorkG = g.TotalWork()
	for _, e := range g.Edges {
		s.TotalBytes += e.Bytes
	}
	if len(g.Tasks) > 0 {
		s.MeanOutDegree = float64(len(g.Edges)) / float64(len(g.Tasks))
	}
	seq := func(t *Task) float64 { return t.SeqGFlop }
	s.CPWorkG = g.CriticalPathLength(seq, ZeroComm)
	if s.TotalWorkG > 0 {
		s.SerialFraction = s.CPWorkG / s.TotalWorkG
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("%d tasks, %d edges, depth %d, width %d, %.0f GFlop (%.0f%% serial)",
		s.Tasks, s.Edges, s.Depth, s.MaxWidth, s.TotalWorkG, s.SerialFraction*100)
}

// TransitiveReduction returns a copy of g without redundant edges: an edge
// u→v is removed when another path from u to v exists. Precedence is
// preserved exactly; communication volumes of removed edges are dropped
// (the data still flows along the remaining path in the PTG model, where
// every task forwards its full dataset). Generated graphs with jump edges
// often contain such redundancies.
func (g *Graph) TransitiveReduction() *Graph {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	pos := make([]int, len(g.Tasks))
	for i, t := range order {
		pos[t.ID] = i
	}

	// reach[i] is the set of task IDs reachable from order[i] via paths of
	// length >= 1, built backwards.
	reach := make([]map[int]bool, len(g.Tasks))
	red := New(g.Name)
	for _, t := range g.Tasks {
		red.AddTask(t.Name, t.DataElems, t.SeqGFlop, t.Alpha)
	}
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		rs := make(map[int]bool)
		// Consider direct successors in a deterministic order; an edge is
		// redundant if its head is already reachable through a previously
		// kept successor's closure.
		succs := append([]*Edge(nil), t.Out()...)
		sort.Slice(succs, func(a, b int) bool {
			// Farther-away heads (in topological position) are examined
			// last so short edges are preferred as the kept skeleton.
			return pos[succs[a].To.ID] < pos[succs[b].To.ID]
		})
		for _, e := range succs {
			if rs[e.To.ID] {
				continue // redundant: already reachable
			}
			red.MustAddEdge(red.Tasks[t.ID], red.Tasks[e.To.ID], e.Bytes)
			rs[e.To.ID] = true
			for id := range reach[e.To.ID] {
				rs[id] = true
			}
		}
		reach[t.ID] = rs
	}
	return red
}

// Reachable reports whether dst is reachable from src via directed edges.
func (g *Graph) Reachable(src, dst *Task) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, len(g.Tasks))
	stack := []*Task{src}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.Out() {
			if e.To == dst {
				return true
			}
			if !seen[e.To.ID] {
				seen[e.To.ID] = true
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

// WorkHistogram buckets task works into n equal-width bins between the
// minimum and maximum task work, returning the bin counts. Useful for
// inspecting generated workloads.
func (g *Graph) WorkHistogram(n int) []int {
	if n < 1 {
		panic(fmt.Sprintf("dag: histogram with %d bins", n))
	}
	bins := make([]int, n)
	if len(g.Tasks) == 0 {
		return bins
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range g.Tasks {
		lo = math.Min(lo, t.SeqGFlop)
		hi = math.Max(hi, t.SeqGFlop)
	}
	span := hi - lo
	for _, t := range g.Tasks {
		i := 0
		if span > 0 {
			i = int(float64(n) * (t.SeqGFlop - lo) / span)
			if i >= n {
				i = n - 1
			}
		}
		bins[i]++
	}
	return bins
}
