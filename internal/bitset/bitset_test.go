package bitset

import "testing"

func TestSetGetCount(t *testing.T) {
	s := New(200)
	if s.Len() != 200 || s.Count() != 0 {
		t.Fatalf("fresh set: len %d count %d", s.Len(), s.Count())
	}
	for _, i := range []int{0, 63, 64, 127, 199} {
		if s.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		if was := s.Set(i); was {
			t.Fatalf("bit %d reported already set", i)
		}
		if !s.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if was := s.Set(64); !was {
		t.Fatal("re-set bit not reported as already set")
	}
	if got := s.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
}

func TestCountRange(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 100, 129} {
		s.Set(i)
	}
	cases := []struct{ limit, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 2}, {65, 3}, {101, 4}, {130, 5}, {1000, 5},
	}
	for _, c := range cases {
		if got := s.CountRange(c.limit); got != c.want {
			t.Errorf("CountRange(%d) = %d, want %d", c.limit, got, c.want)
		}
	}
}

func TestOutOfRange(t *testing.T) {
	s := New(10)
	if s.Get(-1) || s.Get(10) {
		t.Fatal("out-of-range Get returned true")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Set did not panic")
		}
	}()
	s.Set(10)
}
