// Package bitset implements the fixed-size bitmap behind the streaming
// campaign pipeline: the store's done-set and the aggregator's seen-set
// track one bit per scenario point, so resumable multi-million-point
// sweeps cost bits, not retained result structs.
//
// Concurrency: a Set is not synchronized; callers guard it with their own
// mutex (the store and aggregator both do).
package bitset

import "math/bits"

// Set is a fixed-size bitmap over [0, Len()). The zero value is an empty
// set of length 0; create sized sets with New.
type Set struct {
	words []uint64
	n     int
}

// New returns an all-clear set over [0, n).
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the set's capacity (the n passed to New).
func (s Set) Len() int { return s.n }

// Get reports whether bit i is set. Out-of-range indices are false.
func (s Set) Get(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i and reports whether it was already set. It panics on an
// out-of-range index: the callers' indices are pre-validated point
// indices, so a miss is a bug, not data.
func (s Set) Set(i int) (was bool) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	was = s.words[w]&m != 0
	s.words[w] |= m
	return was
}

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the number of set bits in [0, limit).
func (s Set) CountRange(limit int) int {
	if limit > s.n {
		limit = s.n
	}
	if limit <= 0 {
		return 0
	}
	c := 0
	full := limit >> 6
	for _, w := range s.words[:full] {
		c += bits.OnesCount64(w)
	}
	if rem := uint(limit) & 63; rem != 0 {
		c += bits.OnesCount64(s.words[full] & (1<<rem - 1))
	}
	return c
}
