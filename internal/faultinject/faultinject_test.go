package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newClient(plan Plan) (*http.Client, *httptest.Server) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 64))
	}))
	return &http.Client{Transport: &Transport{Base: ts.Client().Transport, Plan: plan}}, ts
}

func TestScriptSequence(t *testing.T) {
	plan := NewScript(
		Action{Kind: Drop},
		Action{Kind: Status, Code: http.StatusServiceUnavailable, RetryAfter: 7},
		Action{Kind: Pass},
	)
	c, ts := newClient(plan)
	defer ts.Close()

	if _, err := c.Get(ts.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("first call: err %v, want injected drop", err)
	}
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("second call: status %d retry-after %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 64 {
		t.Fatalf("third call: status %d, %d body bytes", resp.StatusCode, len(body))
	}
	if plan.Used() != 3 {
		t.Fatalf("used %d actions, want 3", plan.Used())
	}
	// Exhausted script passes by default.
	if resp, err = c.Get(ts.URL); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-script call: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestScriptThen(t *testing.T) {
	plan := NewScript(Action{Kind: Pass}).Then(Action{Kind: Drop})
	c, ts := newClient(plan)
	defer ts.Close()
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Get(ts.URL); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d after script: err %v, want permanent drop", i, err)
		}
	}
}

func TestSever(t *testing.T) {
	plan := NewScript(Action{Kind: Sever, After: 10})
	c, ts := newClient(plan)
	defer ts.Close()
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read err %v, want injected sever", err)
	}
	if len(body) > 10 {
		t.Fatalf("read %d bytes past the cut", len(body))
	}
}

func TestDelayRespectsContext(t *testing.T) {
	plan := NewScript(Action{Kind: Delay, Delay: 10 * time.Second})
	c, ts := newClient(plan)
	defer ts.Close()
	c.Timeout = 30 * time.Millisecond
	start := time.Now()
	if _, err := c.Get(ts.URL); err == nil {
		t.Fatal("delayed call succeeded under a shorter client timeout")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("injected delay ignored the request context")
	}
}

func TestSeededDeterminism(t *testing.T) {
	drawn := func() []Kind {
		p := NewSeeded(42, 0.3, 0.2, 0.2)
		kinds := make([]Kind, 32)
		for i := range kinds {
			kinds[i] = p.Next(nil).Kind
		}
		return kinds
	}
	a, b := drawn(), drawn()
	var mix map[Kind]int = map[Kind]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
		mix[a[i]]++
	}
	if len(mix) < 2 {
		t.Fatalf("seeded plan drew only %v — not a mix of faults", mix)
	}
}

func TestListenerPartition(t *testing.T) {
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	ln := Wrap(ts.Listener)
	ts.Listener = ln
	ts.Start()
	defer ts.Close()

	c := &http.Client{Timeout: 5 * time.Second}
	get := func() error {
		resp, err := c.Get(ts.URL)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		return resp.Body.Close()
	}
	if err := get(); err != nil {
		t.Fatalf("pre-partition: %v", err)
	}
	ln.Partition()
	if err := get(); err == nil {
		t.Fatal("request crossed a partitioned listener")
	}
	ln.Heal()
	if err := get(); err != nil {
		t.Fatalf("post-heal: %v", err)
	}
}
