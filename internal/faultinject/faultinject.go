// Package faultinject makes network failure deterministic: an injectable
// http.RoundTripper and a net.Listener wrapper that drop, delay, answer
// with synthetic statuses, or sever connections — by a scripted sequence
// or a seeded pseudo-random plan. The fleet coordinator's failure paths
// (retry, backoff, dead-worker reassignment, partition handling) are
// tested against these instead of flaky timing tricks: the same schedule
// produces the same failures every run.
//
// Concurrency: plans and the transport are safe for concurrent use; each
// RoundTrip consumes exactly one action atomically.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable failure modes.
type Kind int

const (
	// Pass forwards the request untouched.
	Pass Kind = iota
	// Drop fails the round trip with a synthetic connection error, as if
	// the worker's host vanished.
	Drop
	// Delay sleeps for Action.Delay (respecting the request context)
	// before forwarding — a slow network, not a broken one.
	Delay
	// Status short-circuits with a synthetic HTTP response of Action.Code
	// (optionally carrying a Retry-After header), never reaching the
	// server — an overloaded proxy or a throttling worker.
	Status
	// Sever forwards the request but cuts the response body after
	// Action.After bytes — a connection torn mid-stream.
	Sever
)

// ErrInjected is the base error of every synthetic failure, so tests can
// tell injected faults from real ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Action is one scheduled behavior of the transport.
type Action struct {
	Kind Kind
	// Delay applies to Kind Delay.
	Delay time.Duration
	// Code and RetryAfter (seconds; 0 omits the header) apply to Kind
	// Status.
	Code       int
	RetryAfter int
	// After applies to Kind Sever: response-body bytes relayed before the
	// cut. 0 severs immediately.
	After int64
}

// A Plan hands the transport one action per round trip.
type Plan interface {
	Next(req *http.Request) Action
}

// Script is a Plan that replays a fixed action sequence, then settles on
// Then (zero value: Pass) forever. The zero Script passes everything.
type Script struct {
	mu      sync.Mutex
	actions []Action
	then    Action
	used    int
}

// NewScript returns a Plan replaying actions in order, passing afterwards.
func NewScript(actions ...Action) *Script {
	return &Script{actions: actions}
}

// Then sets the action every round trip after the script gets, and
// returns the script for chaining. NewScript(...).Then(Action{Kind: Drop})
// scripts a worker that dies for good after its opening moves.
func (s *Script) Then(a Action) *Script {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.then = a
	return s
}

// Next consumes the next scheduled action.
func (s *Script) Next(*http.Request) Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used < len(s.actions) {
		s.used++
		return s.actions[s.used-1]
	}
	return s.then
}

// Used reports how many scripted (non-Then) actions were consumed.
func (s *Script) Used() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Seeded is a pseudo-random Plan: each round trip independently drops,
// delays or 503s with the given probabilities, deterministically from the
// seed. Probabilities are evaluated in order drop, delay, status; the
// remainder passes.
type Seeded struct {
	mu  sync.Mutex
	rng *rand.Rand

	// DropP, DelayP and StatusP are per-request probabilities in [0,1].
	DropP, DelayP, StatusP float64
	// MaxDelay bounds injected delays (default 10ms).
	MaxDelay time.Duration
	// Code is the injected status (default 503).
	Code int
}

// NewSeeded returns a deterministic random plan over the seed.
func NewSeeded(seed int64, dropP, delayP, statusP float64) *Seeded {
	return &Seeded{
		rng:   rand.New(rand.NewSource(seed)),
		DropP: dropP, DelayP: delayP, StatusP: statusP,
	}
}

// Next draws one action.
func (s *Seeded) Next(*http.Request) Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	roll := s.rng.Float64()
	switch {
	case roll < s.DropP:
		return Action{Kind: Drop}
	case roll < s.DropP+s.DelayP:
		max := s.MaxDelay
		if max <= 0 {
			max = 10 * time.Millisecond
		}
		return Action{Kind: Delay, Delay: time.Duration(s.rng.Int63n(int64(max)) + 1)}
	case roll < s.DropP+s.DelayP+s.StatusP:
		code := s.Code
		if code == 0 {
			code = http.StatusServiceUnavailable
		}
		return Action{Kind: Status, Code: code}
	}
	return Action{Kind: Pass}
}

// Transport is the injectable RoundTripper: every request first asks the
// plan what to suffer. A nil Plan or Base falls back to Pass and
// http.DefaultTransport.
type Transport struct {
	Base http.RoundTripper
	Plan Plan
}

// RoundTrip applies the plan's next action to the request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	a := Action{Kind: Pass}
	if t.Plan != nil {
		a = t.Plan.Next(req)
	}
	switch a.Kind {
	case Drop:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: connection to %s dropped", ErrInjected, req.URL.Host)
	case Delay:
		select {
		case <-time.After(a.Delay):
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
	case Status:
		if req.Body != nil {
			req.Body.Close()
		}
		h := http.Header{"Content-Type": []string{"application/json; charset=utf-8"}}
		if a.RetryAfter > 0 {
			h.Set("Retry-After", strconv.Itoa(a.RetryAfter))
		}
		body := fmt.Sprintf("{\n  \"error\": \"injected status %d\",\n  \"code\": \"injected\"\n}\n", a.Code)
		return &http.Response{
			StatusCode: a.Code,
			Status:     fmt.Sprintf("%d %s", a.Code, http.StatusText(a.Code)),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        h,
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case Sever:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &severedBody{rc: resp.Body, remain: a.After}
		return resp, nil
	}
	return base.RoundTrip(req)
}

// severedBody relays up to remain bytes, then fails the read — the
// mid-stream cut a dying worker produces, distinct from a clean EOF.
type severedBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *severedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("%w: connection severed mid-body", ErrInjected)
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	if err == io.EOF {
		return n, err // the real body ended before the cut
	}
	if b.remain <= 0 && err == nil {
		return n, fmt.Errorf("%w: connection severed mid-body", ErrInjected)
	}
	return n, err
}

func (b *severedBody) Close() error { return b.rc.Close() }

// Listener wraps a net.Listener so a test can partition a live server:
// Partition closes every open connection and makes the listener swallow
// (accept-and-close) new ones — the server process stays up, but nothing
// reaches it, exactly a network split. Heal restores it.
type Listener struct {
	net.Listener

	mu          sync.Mutex
	conns       map[net.Conn]struct{}
	partitioned bool
}

// Wrap returns a partitionable view of ln.
func Wrap(ln net.Listener) *Listener {
	return &Listener{Listener: ln, conns: make(map[net.Conn]struct{})}
}

// Accept tracks accepted connections; while partitioned it closes them
// immediately and keeps listening, so clients see resets, not a dead port
// owner (the listener's backlog still answers the TCP handshake — the
// failure mode of a machine whose process hangs, as opposed to one whose
// port is closed).
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		if l.partitioned {
			l.mu.Unlock()
			c.Close()
			continue
		}
		tc := &trackedConn{Conn: c, l: l}
		l.conns[tc] = struct{}{}
		l.mu.Unlock()
		return tc, nil
	}
}

// Partition severs every open connection and refuses new ones until Heal.
func (l *Listener) Partition() {
	l.mu.Lock()
	l.partitioned = true
	open := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		open = append(open, c)
	}
	l.mu.Unlock()
	for _, c := range open {
		c.Close()
	}
}

// Heal lets new connections through again.
func (l *Listener) Heal() {
	l.mu.Lock()
	l.partitioned = false
	l.mu.Unlock()
}

// trackedConn removes itself from the listener's registry on Close.
type trackedConn struct {
	net.Conn
	l    *Listener
	once sync.Once
}

func (c *trackedConn) Close() error {
	c.once.Do(func() {
		c.l.mu.Lock()
		delete(c.l.conns, c)
		c.l.mu.Unlock()
	})
	return c.Conn.Close()
}
