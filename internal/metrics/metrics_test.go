package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlowdownRatio(t *testing.T) {
	if s := Slowdown(10, 50); s != 0.2 {
		t.Fatalf("Slowdown = %g, want 0.2", s)
	}
	if s := Slowdown(10, 10); s != 1 {
		t.Fatalf("undelayed slowdown = %g, want 1", s)
	}
}

func TestSlowdownPanicsOnInvalid(t *testing.T) {
	for _, c := range [][2]float64{{-1, 1}, {1, 0}, {1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slowdown(%g,%g) did not panic", c[0], c[1])
				}
			}()
			Slowdown(c[0], c[1])
		}()
	}
}

func TestUnfairnessPaperExample(t *testing.T) {
	// §7's worked example: 8 undelayed PTGs (slowdown 1) and 2 delayed 5×
	// (slowdown 0.2): average slowdown 0.84, unfairness 2.56.
	sl := make([]float64, 10)
	for i := 0; i < 8; i++ {
		sl[i] = 1
	}
	sl[8], sl[9] = 0.2, 0.2
	if avg := AvgSlowdown(sl); math.Abs(avg-0.84) > 1e-12 {
		t.Fatalf("avg slowdown = %g, want 0.84", avg)
	}
	if u := Unfairness(sl); math.Abs(u-2.56) > 1e-12 {
		t.Fatalf("unfairness = %g, want 2.56", u)
	}
}

func TestUnfairnessZeroWhenUniform(t *testing.T) {
	if u := Unfairness([]float64{0.5, 0.5, 0.5}); u != 0 {
		t.Fatalf("uniform unfairness = %g, want 0", u)
	}
}

func TestRelativeMakespansBestIsOne(t *testing.T) {
	rel := RelativeMakespans([]float64{200, 100, 150})
	want := []float64{2, 1, 1.5}
	for i := range want {
		if math.Abs(rel[i]-want[i]) > 1e-12 {
			t.Fatalf("rel[%d] = %g, want %g", i, rel[i], want[i])
		}
	}
}

func TestRelativeMakespansEmpty(t *testing.T) {
	if rel := RelativeMakespans(nil); rel != nil {
		t.Fatal("empty input should yield nil")
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %g", m)
	}
	if sd := StdDev(xs); math.Abs(sd-math.Sqrt(5.0/3)) > 1e-12 {
		t.Errorf("StdDev = %g", sd)
	}
	if mn := Min(xs); mn != 1 {
		t.Errorf("Min = %g", mn)
	}
	if mx := Max(xs); mx != 4 {
		t.Errorf("Max = %g", mx)
	}
	if sd := StdDev([]float64{5}); sd != 0 {
		t.Errorf("single-sample StdDev = %g, want 0", sd)
	}
}

// Property: unfairness is non-negative, zero iff all slowdowns equal, and
// invariant under permutation.
func TestUnfairnessProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%10) + 2
		sl := make([]float64, count)
		for i := range sl {
			sl[i] = 0.05 + r.Float64()
		}
		u := Unfairness(sl)
		if u < 0 {
			return false
		}
		// Permutation invariance.
		perm := make([]float64, count)
		for i, j := range r.Perm(count) {
			perm[i] = sl[j]
		}
		if math.Abs(Unfairness(perm)-u) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: relative makespans are ≥ 1 with at least one exactly 1.
func TestRelativeMakespanProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%8) + 1
		ms := make([]float64, count)
		for i := range ms {
			ms[i] = 1 + r.Float64()*1000
		}
		rel := RelativeMakespans(ms)
		ones := 0
		for _, v := range rel {
			if v < 1-1e-12 {
				return false
			}
			if v == 1 {
				ones++
			}
		}
		return ones >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
