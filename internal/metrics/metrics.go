// Package metrics implements the paper's two evaluation metrics (§7):
// unfairness, built on per-application slowdowns (Eq. 3–5), and the average
// relative makespan protocol, plus small summary-statistics helpers used by
// the experiment harness.
//
// Concurrency: pure functions over slices the caller owns; safe for
// unrestricted concurrent use.
package metrics

import (
	"fmt"
	"math"
)

// Slowdown returns the slowdown of an application (Eq. 3): the ratio
// between the makespan achieved with the resources on its own (own) and the
// makespan achieved in presence of concurrency (multi). Values are ≤ 1 when
// sharing delays the application; 1 means no perturbation at all.
func Slowdown(own, multi float64) float64 {
	if own < 0 || multi <= 0 {
		panic(fmt.Sprintf("metrics: invalid makespans own=%g multi=%g", own, multi))
	}
	return own / multi
}

// AvgSlowdown returns the mean slowdown over a set of applications (Eq. 4).
func AvgSlowdown(slowdowns []float64) float64 {
	if len(slowdowns) == 0 {
		panic("metrics: no slowdowns")
	}
	return Mean(slowdowns)
}

// Unfairness returns the unfairness of a schedule (Eq. 5): the sum of the
// absolute deviations of each application's slowdown from the average
// slowdown. Zero means perfectly fair (all applications perturbed alike);
// values grow both with dissimilarity and with the number of applications.
func Unfairness(slowdowns []float64) float64 {
	avg := AvgSlowdown(slowdowns)
	u := 0.0
	for _, s := range slowdowns {
		u += math.Abs(s - avg)
	}
	return u
}

// RelativeMakespans divides each strategy's makespan by the best (smallest)
// makespan of the experiment, implementing the paper's average relative
// makespan protocol: "the makespan achieved by each strategy ... is divided
// by the best makespan achieved for this experiment". The best strategy
// scores exactly 1.
func RelativeMakespans(makespans []float64) []float64 {
	if len(makespans) == 0 {
		return nil
	}
	best := math.Inf(1)
	for _, m := range makespans {
		if m <= 0 {
			panic(fmt.Sprintf("metrics: non-positive makespan %g", m))
		}
		if m < best {
			best = m
		}
	}
	rel := make([]float64, len(makespans))
	for i, m := range makespans {
		rel[i] = m / best
	}
	return rel
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (zero for fewer than
// two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)-1))
}

// Min returns the smallest element of xs.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
