package trace_test

// Tests of the extended schedule-invariant oracle: the bare placement-list
// entry point, release-time respect, and the per-cluster capacity sweep
// (exercised through the exported test hook, since exclusivity over valid
// processor indices subsumes it on well-formed placements).

import (
	"strings"
	"testing"

	"ptgsched/internal/dag"
	"ptgsched/internal/mapping"
	"ptgsched/internal/platform"
	"ptgsched/internal/trace"
)

func TestValidatePlacementsAcceptsMapperOutput(t *testing.T) {
	s := validSchedule(t)
	graphs := make([]*dag.Graph, len(s.Apps))
	for i, app := range s.Apps {
		graphs[i] = app.Graph
	}
	if err := trace.ValidatePlacements(s.Platform, graphs, s.Placements, nil); err != nil {
		t.Fatalf("mapper output rejected: %v", err)
	}
}

func TestValidateReleasesAcceptsZeroReleases(t *testing.T) {
	s := validSchedule(t)
	if err := trace.ValidateReleases(s, make([]float64, len(s.Apps))); err != nil {
		t.Fatalf("zero releases rejected: %v", err)
	}
}

func TestValidateReleasesDetectsEarlyStart(t *testing.T) {
	s := validSchedule(t)
	releases := make([]float64, len(s.Apps))
	releases[0] = 1e9 // app 0 supposedly arrives far in the future
	err := trace.ValidateReleases(s, releases)
	if err == nil || !strings.Contains(err.Error(), "release") {
		t.Fatalf("early start not detected: %v", err)
	}
}

func TestValidateReleasesRejectsMismatchedLength(t *testing.T) {
	s := validSchedule(t)
	if err := trace.ValidateReleases(s, []float64{0}); err == nil {
		t.Fatal("mismatched release vector accepted")
	}
}

func TestValidatePlacementsDetectsUnknownApp(t *testing.T) {
	s := validSchedule(t)
	graphs := make([]*dag.Graph, len(s.Apps))
	for i, app := range s.Apps {
		graphs[i] = app.Graph
	}
	err := trace.ValidatePlacements(s.Platform, graphs[:1], s.Placements, nil)
	if err == nil {
		t.Fatal("placements referencing dropped applications accepted")
	}
}

func TestCapacitySweepDetectsOverCommitment(t *testing.T) {
	pf := platform.New("tiny", true, platform.ClusterSpec{Name: "c", Procs: 4, Speed: 1})
	c := pf.Clusters[0]
	g := dag.New("g")
	t0 := g.AddTask("t0", 1, 1, 0)
	t1 := g.AddTask("t1", 1, 1, 0)
	// Two overlapping placements claiming 3 processors each on a
	// 4-processor cluster: 6 > 4 at t ∈ [0, 5).
	ps := []*mapping.Placement{
		{App: 0, Task: t0, Cluster: c, Procs: []int{0, 1, 2}, Start: 0, End: 10},
		{App: 0, Task: t1, Cluster: c, Procs: []int{0, 1, 2}, Start: 0, End: 5},
	}
	err := trace.ValidateCapacityForTest(pf, ps)
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("capacity violation not detected: %v", err)
	}
}

func TestCapacitySweepAllowsBackToBack(t *testing.T) {
	pf := platform.New("tiny", true, platform.ClusterSpec{Name: "c", Procs: 4, Speed: 1})
	c := pf.Clusters[0]
	g := dag.New("g")
	t0 := g.AddTask("t0", 1, 1, 0)
	t1 := g.AddTask("t1", 1, 1, 0)
	// Full-cluster use back to back, the second start within float noise
	// of the first end: one instant, not a violation.
	ps := []*mapping.Placement{
		{App: 0, Task: t0, Cluster: c, Procs: []int{0, 1, 2, 3}, Start: 0, End: 10},
		{App: 0, Task: t1, Cluster: c, Procs: []int{0, 1, 2, 3}, Start: 10 - 1e-12, End: 20},
	}
	if err := trace.ValidateCapacityForTest(pf, ps); err != nil {
		t.Fatalf("back-to-back full-cluster placements rejected: %v", err)
	}
}
