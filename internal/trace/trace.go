// Package trace provides schedule inspection tools: structural validation
// of mapped schedules (processor exclusivity, per-cluster capacity,
// precedence with redistribution delays, allocation bounds, release-time
// respect for online schedules), a text Gantt renderer, and JSON export.
//
// The validation entry points form the schedule-invariant oracle behind the
// property-based suite (FuzzScheduleInvariants in internal/scenario): every
// schedule any registered strategy produces must pass it.
//
// Concurrency: all functions only read the schedule they are given; they
// are safe to call concurrently on distinct schedules, or on one schedule
// that is no longer being mutated.
package trace

import (
	"fmt"
	"sort"

	"ptgsched/internal/dag"
	"ptgsched/internal/events"
	"ptgsched/internal/mapping"
	"ptgsched/internal/platform"
)

// tol absorbs floating-point noise in time comparisons.
const tol = 1e-9

// Validate checks that a schedule is executable:
//
//  1. every task of every application is placed exactly once;
//  2. no processor runs two tasks at overlapping times, and at no instant
//     does a cluster run more processors than it has;
//  3. every task starts no earlier than each predecessor's end plus the
//     contention-free redistribution estimate between their clusters;
//  4. placements use at least one processor, at most the cluster's size,
//     and have non-negative spans.
//
// It returns the first violation found, or nil.
func Validate(s *mapping.Schedule) error {
	return ValidateReleases(s, nil)
}

// ValidateReleases checks the same invariants as Validate plus, when
// releases is non-nil, release-time respect: no placement of application i
// may start before releases[i], the application's submission time. It is
// the oracle for online (dynamic arrival) schedules, whose placements
// carry App indices into the arrival order.
func ValidateReleases(s *mapping.Schedule, releases []float64) error {
	graphs := make([]*dag.Graph, len(s.Apps))
	for i, app := range s.Apps {
		graphs[i] = app.Graph
	}
	// The schedule's task→placement index must agree with the placement
	// list before the list-level oracle applies.
	for _, p := range s.Placements {
		if s.PlacementOf(p.Task) != p {
			return fmt.Errorf("trace: placement index out of sync for task %q", p.Task.Name)
		}
	}
	return ValidatePlacements(s.Platform, graphs, s.Placements, releases)
}

// ValidatePlacements is the full schedule-invariant oracle over a bare
// placement list: graphs[i] is application i's PTG (matched against each
// placement's App field), and releases, when non-nil, gives per-application
// submission times that no placement may precede. It validates placement
// uniqueness, allotment bounds (1..cluster size, distinct in-range
// processor indices), per-processor exclusivity, an explicit per-cluster
// capacity sweep, precedence with contention-free redistribution estimates,
// and release-time respect. It returns the first violation found, or nil.
//
// Validate and ValidateReleases are thin wrappers for *mapping.Schedule
// values; the online scheduler's results are validated directly from their
// placement lists. ValidateDynamic extends the oracle to dynamic
// scenarios.
func ValidatePlacements(pf *platform.Platform, graphs []*dag.Graph, placements []*mapping.Placement, releases []float64) error {
	return ValidateDynamic(pf, graphs, placements, Dynamic{Releases: releases})
}

// Dynamic is the dynamic-scenario context the extended oracle validates a
// placement list against. The zero value reduces ValidateDynamic to the
// static ValidatePlacements checks.
type Dynamic struct {
	// DownIntervals gives, per platform cluster index, the outage windows
	// of the run's event timeline (events.Timeline.DownIntervals); no
	// surviving placement may overlap a down window of its cluster.
	DownIntervals [][]events.Interval
	// Releases are per-application submission times, as in
	// ValidatePlacements.
	Releases []float64
	// Cancelled marks applications withdrawn and never resubmitted; a
	// cancelled application must have no placements at all, and its tasks
	// are exempt from the completeness check.
	Cancelled []bool
	// Restarts are the engine's from-scratch restart records: every
	// placement of application r.App must start at or after r.At (all
	// earlier work was discarded).
	Restarts []events.Restart
}

// ValidateDynamic is the schedule-invariant oracle over a bare placement
// list under a dynamic scenario: all the ValidatePlacements checks, plus
// no placement overlapping a down window of its cluster, no placement of a
// cancelled application, and restart-time respect (releases carried across
// reschedules). It returns the first violation found, or nil.
func ValidateDynamic(pf *platform.Platform, graphs []*dag.Graph, placements []*mapping.Placement, dyn Dynamic) error {
	releases := dyn.Releases
	if releases != nil && len(releases) != len(graphs) {
		return fmt.Errorf("trace: %d release times for %d applications", len(releases), len(graphs))
	}
	if dyn.Cancelled != nil && len(dyn.Cancelled) != len(graphs) {
		return fmt.Errorf("trace: %d cancellation marks for %d applications", len(dyn.Cancelled), len(graphs))
	}
	// restartAt[i]: the application's latest from-scratch restart. A
	// restart supersedes the original release as the effective release of
	// the surviving placements — a resubmission is a new submission, which
	// may even precede the original arrival it replaced.
	restartAt := make([]float64, len(graphs))
	hasRestart := make([]bool, len(graphs))
	for _, r := range dyn.Restarts {
		if r.App < 0 || r.App >= len(graphs) {
			return fmt.Errorf("trace: restart references unknown application %d", r.App)
		}
		if !hasRestart[r.App] || r.At > restartAt[r.App] {
			restartAt[r.App] = r.At
		}
		hasRestart[r.App] = true
	}

	// 1. Placement uniqueness and completeness per application; cancelled
	// applications must have left nothing behind.
	byApp := make([]map[int]*mapping.Placement, len(graphs))
	for i := range byApp {
		byApp[i] = make(map[int]*mapping.Placement, len(graphs[i].Tasks))
	}
	for _, p := range placements {
		if p.App < 0 || p.App >= len(graphs) {
			return fmt.Errorf("trace: %s references unknown application %d", p, p.App)
		}
		if dyn.Cancelled != nil && dyn.Cancelled[p.App] {
			return fmt.Errorf("trace: %s belongs to cancelled application %d", p, p.App)
		}
		if prev := byApp[p.App][p.Task.ID]; prev != nil {
			return fmt.Errorf("trace: app %d task %q placed twice", p.App, p.Task.Name)
		}
		byApp[p.App][p.Task.ID] = p
	}
	for ai, g := range graphs {
		if dyn.Cancelled != nil && dyn.Cancelled[ai] {
			continue
		}
		for _, t := range g.Tasks {
			if byApp[ai][t.ID] == nil {
				return fmt.Errorf("trace: app %d task %q not placed", ai, t.Name)
			}
		}
	}

	// 2. Allotment bounds, span sanity, release- and restart-time respect,
	// down-interval avoidance.
	type span struct {
		start, end float64
		label      string
	}
	busy := make(map[string][]span)
	for _, p := range placements {
		if len(p.Procs) == 0 {
			return fmt.Errorf("trace: %s uses no processors", p)
		}
		if p.End < p.Start || p.Start < -tol {
			return fmt.Errorf("trace: %s has invalid span", p)
		}
		if len(p.Procs) > p.Cluster.Procs {
			return fmt.Errorf("trace: %s uses more processors than cluster has", p)
		}
		if hasRestart[p.App] {
			if p.Start < restartAt[p.App]-tol {
				return fmt.Errorf("trace: %s starts before its application's restart at %g",
					p, restartAt[p.App])
			}
		} else if releases != nil && p.Start < releases[p.App]-tol {
			return fmt.Errorf("trace: %s starts before its application's release at %g",
				p, releases[p.App])
		}
		if dyn.DownIntervals != nil && p.Cluster.Index < len(dyn.DownIntervals) {
			for _, iv := range dyn.DownIntervals[p.Cluster.Index] {
				if iv.Overlaps(p.Start, p.End, tol) {
					return fmt.Errorf("trace: %s overlaps down interval [%g, %g) of cluster %s",
						p, iv.From, iv.To, p.Cluster.Name)
				}
			}
		}
		seen := make(map[int]bool, len(p.Procs))
		for _, i := range p.Procs {
			if i < 0 || i >= p.Cluster.Procs {
				return fmt.Errorf("trace: %s uses processor %d outside cluster", p, i)
			}
			if seen[i] {
				return fmt.Errorf("trace: %s lists processor %d twice", p, i)
			}
			seen[i] = true
			key := fmt.Sprintf("%s/%d", p.Cluster.Name, i)
			busy[key] = append(busy[key], span{p.Start, p.End, p.String()})
		}
	}

	// 3a. Per-processor exclusivity.
	for proc, spans := range busy {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end-tol {
				return fmt.Errorf("trace: processor %s oversubscribed: %s overlaps %s",
					proc, spans[i].label, spans[i-1].label)
			}
		}
	}

	// 3b. Per-cluster capacity at every instant: a sweep line over
	// placement start/end events. Exclusivity over valid processor indices
	// already implies this bound; the explicit sweep keeps the oracle
	// honest should placements ever stop naming concrete processors.
	if err := validateCapacity(pf, placements); err != nil {
		return err
	}

	// 4. Precedence with contention-free redistribution estimates
	// (cancelled applications have no placements to check).
	for ai, g := range graphs {
		if dyn.Cancelled != nil && dyn.Cancelled[ai] {
			continue
		}
		for _, e := range g.Edges {
			from, to := byApp[ai][e.From.ID], byApp[ai][e.To.ID]
			need := from.End + pf.TransferTime(from.Cluster, to.Cluster, e.Bytes)
			if to.Start < need-tol {
				return fmt.Errorf("trace: %q starts at %g before data from %q arrives at %g",
					e.To.Name, to.Start, e.From.Name, need)
			}
		}
	}
	return nil
}

// validateCapacity sweeps each cluster's timeline and checks that the
// number of processors in use never exceeds the cluster's size. Zero-width
// placements release their processors at the instant they claim them, so
// the sweep processes releases before claims at equal times.
func validateCapacity(pf *platform.Platform, placements []*mapping.Placement) error {
	type event struct {
		at    float64
		delta int
	}
	perCluster := make(map[*platform.Cluster][]event)
	for _, p := range placements {
		perCluster[p.Cluster] = append(perCluster[p.Cluster],
			event{p.Start, len(p.Procs)}, event{p.End, -len(p.Procs)})
	}
	for c, evs := range perCluster {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].at != evs[j].at {
				return evs[i].at < evs[j].at
			}
			return evs[i].delta < evs[j].delta
		})
		// Events closer than tol are one instant: apply the whole group
		// before checking, so a task starting exactly (up to float noise)
		// when another ends is not flagged.
		inUse := 0
		for i := 0; i < len(evs); {
			j := i
			for j < len(evs) && evs[j].at <= evs[i].at+tol {
				inUse += evs[j].delta
				j++
			}
			if inUse > c.Procs {
				return fmt.Errorf("trace: cluster %s over capacity at t=%g: %d of %d processors",
					c.Name, evs[i].at, inUse, c.Procs)
			}
			i = j
		}
	}
	return nil
}
