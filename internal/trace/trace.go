// Package trace provides schedule inspection tools: structural validation
// of mapped schedules (processor exclusivity, precedence with
// redistribution delays, allocation-translation consistency), a text Gantt
// renderer, and JSON export.
//
// Concurrency: all functions only read the schedule they are given; they
// are safe to call concurrently on distinct schedules, or on one schedule
// that is no longer being mutated.
package trace

import (
	"fmt"
	"sort"

	"ptgsched/internal/mapping"
)

// Validate checks that a schedule is executable:
//
//  1. every task of every application is placed exactly once;
//  2. no processor runs two tasks at overlapping times;
//  3. every task starts no earlier than each predecessor's end plus the
//     contention-free redistribution estimate between their clusters;
//  4. placements use at least one processor and have non-negative spans.
//
// It returns the first violation found, or nil.
func Validate(s *mapping.Schedule) error {
	const tol = 1e-9

	placed := make(map[string]bool, len(s.Placements))
	for ai, app := range s.Apps {
		for _, t := range app.Graph.Tasks {
			p := s.PlacementOf(t)
			if p == nil {
				return fmt.Errorf("trace: app %d task %q not placed", ai, t.Name)
			}
			key := fmt.Sprintf("%d/%d", ai, t.ID)
			if placed[key] {
				return fmt.Errorf("trace: app %d task %q placed twice", ai, t.Name)
			}
			placed[key] = true
		}
	}

	type span struct {
		start, end float64
		label      string
	}
	busy := make(map[string][]span)
	for _, p := range s.Placements {
		if len(p.Procs) == 0 {
			return fmt.Errorf("trace: %s uses no processors", p)
		}
		if p.End < p.Start || p.Start < -tol {
			return fmt.Errorf("trace: %s has invalid span", p)
		}
		if len(p.Procs) > p.Cluster.Procs {
			return fmt.Errorf("trace: %s uses more processors than cluster has", p)
		}
		seen := make(map[int]bool, len(p.Procs))
		for _, i := range p.Procs {
			if i < 0 || i >= p.Cluster.Procs {
				return fmt.Errorf("trace: %s uses processor %d outside cluster", p, i)
			}
			if seen[i] {
				return fmt.Errorf("trace: %s lists processor %d twice", p, i)
			}
			seen[i] = true
			key := fmt.Sprintf("%s/%d", p.Cluster.Name, i)
			busy[key] = append(busy[key], span{p.Start, p.End, p.String()})
		}
	}
	for proc, spans := range busy {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end-tol {
				return fmt.Errorf("trace: processor %s oversubscribed: %s overlaps %s",
					proc, spans[i].label, spans[i-1].label)
			}
		}
	}

	for _, app := range s.Apps {
		for _, e := range app.Graph.Edges {
			from, to := s.PlacementOf(e.From), s.PlacementOf(e.To)
			need := from.End + s.Platform.TransferTime(from.Cluster, to.Cluster, e.Bytes)
			if to.Start < need-tol {
				return fmt.Errorf("trace: %q starts at %g before data from %q arrives at %g",
					e.To.Name, to.Start, e.From.Name, need)
			}
		}
	}
	return nil
}
