package trace_test

// Rejection tests of the dynamic-scenario oracle: each invalid trace a
// dynamic run could produce — a placement overlapping a down window, a
// release violated after a reschedule, a cancelled application leaving
// placements behind, capacity exceeded — must be detected with a
// distinguishable error message.

import (
	"math"
	"strings"
	"testing"

	"ptgsched/internal/dag"
	"ptgsched/internal/events"
	"ptgsched/internal/mapping"
	"ptgsched/internal/platform"
	"ptgsched/internal/trace"
)

// dynFixture builds a one-cluster platform, a two-task chain, and a valid
// placement pair for it.
func dynFixture() (*platform.Platform, []*dag.Graph, []*mapping.Placement) {
	pf := platform.New("tiny", true, platform.ClusterSpec{Name: "c", Procs: 4, Speed: 1})
	c := pf.Clusters[0]
	g := dag.New("g")
	t0 := g.AddTask("t0", 1, 1, 0)
	t1 := g.AddTask("t1", 1, 1, 0)
	g.MustAddEdge(t0, t1, 0)
	ps := []*mapping.Placement{
		{App: 0, Task: t0, Cluster: c, Procs: []int{0}, Start: 10, End: 11},
		{App: 0, Task: t1, Cluster: c, Procs: []int{0}, Start: 11.5, End: 12},
	}
	return pf, []*dag.Graph{g}, ps
}

func TestDynamicOracleAcceptsCleanTrace(t *testing.T) {
	pf, graphs, ps := dynFixture()
	err := trace.ValidateDynamic(pf, graphs, ps, trace.Dynamic{
		DownIntervals: [][]events.Interval{{{From: 0, To: 5}}},
		Releases:      []float64{0},
		Cancelled:     []bool{false},
	})
	if err != nil {
		t.Fatalf("clean dynamic trace rejected: %v", err)
	}
}

func TestDynamicOracleRejectsDownOverlap(t *testing.T) {
	pf, graphs, ps := dynFixture()
	// The outage [10.5, 20) cuts through both placements.
	err := trace.ValidateDynamic(pf, graphs, ps, trace.Dynamic{
		DownIntervals: [][]events.Interval{{{From: 10.5, To: 20}}},
	})
	if err == nil || !strings.Contains(err.Error(), "down interval") {
		t.Fatalf("down-interval overlap not detected: %v", err)
	}
}

func TestDynamicOracleRejectsPermanentDownOverlap(t *testing.T) {
	pf, graphs, ps := dynFixture()
	// An unrecovered failure: the outage extends to +Inf.
	err := trace.ValidateDynamic(pf, graphs, ps, trace.Dynamic{
		DownIntervals: [][]events.Interval{{{From: 11.5, To: math.Inf(1)}}},
	})
	if err == nil || !strings.Contains(err.Error(), "down interval") {
		t.Fatalf("permanent-outage overlap not detected: %v", err)
	}
}

func TestDynamicOracleAllowsPlacementTouchingOutageEdge(t *testing.T) {
	pf, graphs, ps := dynFixture()
	// Outage ends exactly when the first placement starts and the next one
	// begins exactly when a later outage starts: boundary contact is legal.
	err := trace.ValidateDynamic(pf, graphs, ps, trace.Dynamic{
		DownIntervals: [][]events.Interval{{{From: 0, To: 10}, {From: 12, To: 13}}},
	})
	if err != nil {
		t.Fatalf("boundary-touching placements rejected: %v", err)
	}
}

func TestDynamicOracleRejectsStartBeforeRestart(t *testing.T) {
	pf, graphs, ps := dynFixture()
	// The application restarted from scratch at t=11.5, yet a placement
	// from before the restart survived.
	err := trace.ValidateDynamic(pf, graphs, ps, trace.Dynamic{
		Releases: []float64{0},
		Restarts: []events.Restart{{App: 0, At: 11.5}},
	})
	if err == nil || !strings.Contains(err.Error(), "restart at") {
		t.Fatalf("pre-restart placement not detected: %v", err)
	}
}

func TestDynamicOracleRestartSupersedesRelease(t *testing.T) {
	pf, graphs, ps := dynFixture()
	// A resubmission is a new submission: placements may precede the
	// original release (20) as long as they follow the restart (10).
	err := trace.ValidateDynamic(pf, graphs, ps, trace.Dynamic{
		Releases: []float64{20},
		Restarts: []events.Restart{{App: 0, At: 10}},
	})
	if err != nil {
		t.Fatalf("restart did not supersede the original release: %v", err)
	}
}

func TestDynamicOracleRejectsUnknownRestartApp(t *testing.T) {
	pf, graphs, ps := dynFixture()
	err := trace.ValidateDynamic(pf, graphs, ps, trace.Dynamic{
		Restarts: []events.Restart{{App: 3, At: 1}},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown application") {
		t.Fatalf("restart for unknown application not detected: %v", err)
	}
}

func TestDynamicOracleRejectsCancelledAppWithPlacements(t *testing.T) {
	pf, graphs, ps := dynFixture()
	err := trace.ValidateDynamic(pf, graphs, ps, trace.Dynamic{
		Cancelled: []bool{true},
	})
	if err == nil || !strings.Contains(err.Error(), "cancelled application") {
		t.Fatalf("cancelled application's leftovers not detected: %v", err)
	}
}

func TestDynamicOracleExemptsCancelledAppFromCompleteness(t *testing.T) {
	pf, graphs, _ := dynFixture()
	// A cancelled application with no placements at all is complete.
	err := trace.ValidateDynamic(pf, graphs, nil, trace.Dynamic{
		Cancelled: []bool{true},
	})
	if err != nil {
		t.Fatalf("empty cancelled application rejected: %v", err)
	}
}

func TestDynamicOracleRejectsCapacityAfterSpeedChange(t *testing.T) {
	// A buggy engine that forgets a speed change would keep stale (shorter)
	// end times, piling overlapping placements beyond cluster capacity. The
	// capacity sweep runs unchanged in the dynamic oracle and must flag it.
	pf := platform.New("tiny", true, platform.ClusterSpec{Name: "c", Procs: 2, Speed: 1})
	c := pf.Clusters[0]
	g := dag.New("g")
	t0 := g.AddTask("t0", 1, 1, 0)
	t1 := g.AddTask("t1", 1, 1, 0)
	ps := []*mapping.Placement{
		{App: 0, Task: t0, Cluster: c, Procs: []int{0, 1}, Start: 0, End: 8},
		{App: 0, Task: t1, Cluster: c, Procs: []int{0, 1}, Start: 4, End: 12},
	}
	err := trace.ValidateDynamic(pf, graphs(g), ps, trace.Dynamic{
		DownIntervals: [][]events.Interval{nil},
	})
	if err == nil || !strings.Contains(err.Error(), "oversubscribed") {
		t.Fatalf("post-speed-change oversubscription not detected: %v", err)
	}
}

func TestDynamicOracleRejectsMismatchedCancelLength(t *testing.T) {
	pf, graphs, ps := dynFixture()
	err := trace.ValidateDynamic(pf, graphs, ps, trace.Dynamic{
		Cancelled: []bool{false, true},
	})
	if err == nil || !strings.Contains(err.Error(), "cancellation marks") {
		t.Fatalf("mismatched cancellation vector accepted: %v", err)
	}
}

func graphs(gs ...*dag.Graph) []*dag.Graph { return gs }
