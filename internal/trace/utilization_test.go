package trace_test

import (
	"math"
	"testing"

	"ptgsched/internal/alloc"
	"ptgsched/internal/dag"
	"ptgsched/internal/mapping"
	"ptgsched/internal/platform"
	"ptgsched/internal/trace"
)

// twoTaskSchedule builds a hand-crafted schedule: two unit-work tasks of
// two apps on a 2-proc, speed-1 cluster, serial on processor 0 and with
// processor 1 idle.
func twoTaskSchedule(t *testing.T) *mapping.Schedule {
	t.Helper()
	pf := platform.New("u", true, platform.ClusterSpec{Name: "c0", Procs: 2, Speed: 1})
	g1 := dag.New("a")
	g1.AddTask("a0", 1, 1, 0)
	g2 := dag.New("b")
	g2.AddTask("b0", 1, 1, 0)
	mk := func(g *dag.Graph) *alloc.Allocation {
		return &alloc.Allocation{Graph: g, Ref: pf.ReferenceCluster(), Beta: 1, Procs: []int{1}}
	}
	s := mapping.NewSchedule(pf, []*alloc.Allocation{mk(g1), mk(g2)})
	c := pf.Clusters[0]
	s.Add(&mapping.Placement{App: 0, Task: g1.Tasks[0], Cluster: c, Procs: []int{0}, Start: 0, End: 1})
	s.Add(&mapping.Placement{App: 1, Task: g2.Tasks[0], Cluster: c, Procs: []int{0}, Start: 1, End: 2})
	return s
}

func TestUtilizationHalfBusy(t *testing.T) {
	s := twoTaskSchedule(t)
	us := trace.Utilization(s)
	if len(us) != 1 {
		t.Fatalf("%d clusters", len(us))
	}
	// 2 busy proc-seconds out of 2 procs × 2 s horizon.
	if math.Abs(us[0].BusyProcSeconds-2) > 1e-12 {
		t.Errorf("busy = %g, want 2", us[0].BusyProcSeconds)
	}
	if math.Abs(us[0].Utilization-0.5) > 1e-12 {
		t.Errorf("utilization = %g, want 0.5", us[0].Utilization)
	}
}

func TestEfficiencyPerfectForSerialTasks(t *testing.T) {
	s := twoTaskSchedule(t)
	es := trace.Efficiencies(s)
	if len(es) != 2 {
		t.Fatalf("%d apps", len(es))
	}
	for _, e := range es {
		// 1 GFlop at 1 GFlop/s on 1 proc for 1 s: perfectly efficient.
		if math.Abs(e.Efficiency-1) > 1e-12 {
			t.Errorf("app %d efficiency = %g, want 1", e.App, e.Efficiency)
		}
	}
}

func TestEfficiencyDropsWithAmdahl(t *testing.T) {
	pf := platform.New("u", true, platform.ClusterSpec{Name: "c0", Procs: 8, Speed: 1})
	g := dag.New("a")
	g.AddTask("a0", 1, 8, 0.25) // alpha 0.25
	a := &alloc.Allocation{Graph: g, Ref: pf.ReferenceCluster(), Beta: 1, Procs: []int{8}}
	s := mapping.Map(pf, []*alloc.Allocation{a}, mapping.Options{})
	es := trace.Efficiencies(s)
	// T(8) = 8*(0.25 + 0.75/8) = 2.75 s on 8 procs: 22 proc-seconds for
	// 8 seconds of sequential work -> efficiency 8/22.
	want := 8.0 / 22.0
	if math.Abs(es[0].Efficiency-want) > 1e-9 {
		t.Fatalf("efficiency = %g, want %g", es[0].Efficiency, want)
	}
}

func TestSummarize(t *testing.T) {
	s := twoTaskSchedule(t)
	sum := trace.Summarize(s)
	if sum.Placements != 2 {
		t.Errorf("placements = %d", sum.Placements)
	}
	if math.Abs(sum.Makespan-2) > 1e-12 {
		t.Errorf("makespan = %g", sum.Makespan)
	}
	if math.Abs(sum.MeanUtilization-0.5) > 1e-12 {
		t.Errorf("mean utilization = %g", sum.MeanUtilization)
	}
	if math.Abs(sum.MeanEfficiency-1) > 1e-12 {
		t.Errorf("mean efficiency = %g", sum.MeanEfficiency)
	}
	if sum.String() == "" {
		t.Error("empty summary string")
	}
}

func TestBusiestCluster(t *testing.T) {
	s := validSchedule(t)
	name := trace.BusiestCluster(s)
	found := false
	for _, c := range s.Platform.Clusters {
		if c.Name == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("busiest cluster %q not on platform", name)
	}
}

func TestConstrainedStrategiesUseFewerProcSeconds(t *testing.T) {
	// The whole point of beta: a constrained allocation consumes less
	// processor time than a selfish one for the same applications.
	pf := platform.Rennes()
	selfishTotal, constrainedTotal := 0.0, 0.0
	for seed := int64(0); seed < 5; seed++ {
		gs := graphsForSeed(t, seed, 4)
		selfish := scheduleWith(t, pf, gs, 1.0)
		constrained := scheduleWith(t, pf, gs, 0.25)
		for _, e := range trace.Efficiencies(selfish) {
			selfishTotal += e.ConsumedProcSeconds
		}
		for _, e := range trace.Efficiencies(constrained) {
			constrainedTotal += e.ConsumedProcSeconds
		}
	}
	if constrainedTotal >= selfishTotal {
		t.Fatalf("constrained allocations consumed %g proc-seconds >= selfish %g",
			constrainedTotal, selfishTotal)
	}
}

// --- edge cases: empty schedules, single tasks, zero-width placements ---

// emptySchedule is a schedule with apps registered but nothing placed.
func emptySchedule() *mapping.Schedule {
	pf := platform.New("u", true, platform.ClusterSpec{Name: "c0", Procs: 2, Speed: 1})
	g := dag.New("a")
	g.AddTask("a0", 1, 1, 0)
	a := &alloc.Allocation{Graph: g, Ref: pf.ReferenceCluster(), Beta: 1, Procs: []int{1}}
	return mapping.NewSchedule(pf, []*alloc.Allocation{a})
}

func TestUtilizationEmptySchedule(t *testing.T) {
	s := emptySchedule()
	us := trace.Utilization(s)
	if len(us) != 1 {
		t.Fatalf("%d clusters", len(us))
	}
	if us[0].BusyProcSeconds != 0 || us[0].Utilization != 0 {
		t.Fatalf("empty schedule reports busy=%g util=%g", us[0].BusyProcSeconds, us[0].Utilization)
	}
}

func TestSummarizeEmptyScheduleNoNaN(t *testing.T) {
	sum := trace.Summarize(emptySchedule())
	if sum.Placements != 0 || sum.Makespan != 0 {
		t.Fatalf("summary %+v", sum)
	}
	for name, v := range map[string]float64{
		"mean utilization": sum.MeanUtilization,
		"mean efficiency":  sum.MeanEfficiency,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %g on an empty schedule", name, v)
		}
	}
	if sum.String() == "" {
		t.Error("empty summary string")
	}
}

func TestEfficienciesEmptySchedule(t *testing.T) {
	es := trace.Efficiencies(emptySchedule())
	if len(es) != 1 {
		t.Fatalf("%d apps", len(es))
	}
	if es[0].Efficiency != 0 || es[0].ConsumedProcSeconds != 0 {
		t.Fatalf("unplaced app reports %+v", es[0])
	}
}

func TestUtilizationSingleTask(t *testing.T) {
	pf := platform.New("u", true, platform.ClusterSpec{Name: "c0", Procs: 4, Speed: 2})
	g := dag.New("a")
	g.AddTask("a0", 1, 2, 0) // 2 GFlop at 2 GFlop/s = 1 s on one proc
	a := &alloc.Allocation{Graph: g, Ref: pf.ReferenceCluster(), Beta: 1, Procs: []int{1}}
	s := mapping.Map(pf, []*alloc.Allocation{a}, mapping.Options{})
	us := trace.Utilization(s)
	// One of four processors busy for the whole horizon.
	if math.Abs(us[0].Utilization-0.25) > 1e-12 {
		t.Fatalf("utilization = %g, want 0.25", us[0].Utilization)
	}
	sum := trace.Summarize(s)
	if sum.Placements != 1 {
		t.Fatalf("%d placements", sum.Placements)
	}
	if math.Abs(sum.MeanEfficiency-1) > 1e-12 {
		t.Fatalf("single serial task efficiency = %g, want 1", sum.MeanEfficiency)
	}
}

func TestUtilizationZeroWidthPlacements(t *testing.T) {
	// All placements have zero duration: the horizon collapses to zero and
	// the utilization guard must keep every ratio finite.
	pf := platform.New("u", true, platform.ClusterSpec{Name: "c0", Procs: 2, Speed: 1})
	g := dag.New("a")
	g.AddTask("a0", 1, 0, 0) // zero work -> zero-width placement
	a := &alloc.Allocation{Graph: g, Ref: pf.ReferenceCluster(), Beta: 1, Procs: []int{1}}
	s := mapping.NewSchedule(pf, []*alloc.Allocation{a})
	s.Add(&mapping.Placement{App: 0, Task: g.Tasks[0], Cluster: pf.Clusters[0], Procs: []int{0}, Start: 0, End: 0})

	us := trace.Utilization(s)
	if us[0].Utilization != 0 || math.IsNaN(us[0].Utilization) {
		t.Fatalf("zero-horizon utilization = %g", us[0].Utilization)
	}
	sum := trace.Summarize(s)
	if math.IsNaN(sum.MeanUtilization) || math.IsNaN(sum.MeanEfficiency) {
		t.Fatalf("zero-horizon summary has NaN: %+v", sum)
	}
	es := trace.Efficiencies(s)
	if math.IsNaN(es[0].Efficiency) {
		t.Fatalf("zero-consumption efficiency is NaN")
	}
}

func TestBusiestClusterEmptySchedule(t *testing.T) {
	// With no placements every cluster ties at zero; the alphabetical
	// tie-break must still return a real cluster, and a platform-less call
	// pattern (no clusters) is impossible by construction.
	name := trace.BusiestCluster(emptySchedule())
	if name != "c0" {
		t.Fatalf("busiest = %q, want c0", name)
	}
}
