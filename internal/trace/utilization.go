package trace

import (
	"fmt"
	"sort"

	"ptgsched/internal/mapping"
)

// ClusterUtilization is the busy fraction of one cluster over a horizon.
type ClusterUtilization struct {
	Cluster string
	// BusyProcSeconds is the total processor-seconds spent executing
	// tasks.
	BusyProcSeconds float64
	// Utilization is BusyProcSeconds divided by the cluster's capacity
	// over the horizon (procs × horizon).
	Utilization float64
}

// Utilization summarizes how much of each cluster the schedule actually
// uses over the schedule's makespan. The paper's related-work discussion
// (§3) motivates this: HCPA trades a slightly longer makespan for much
// better parallel efficiency, and the resource constraint β exists
// precisely to stop applications from hoarding processors they use
// inefficiently.
func Utilization(s *mapping.Schedule) []ClusterUtilization {
	horizon := s.GlobalMakespan()
	busy := make(map[string]float64)
	for _, p := range s.Placements {
		busy[p.Cluster.Name] += float64(len(p.Procs)) * p.Duration()
	}
	out := make([]ClusterUtilization, 0, len(s.Platform.Clusters))
	for _, c := range s.Platform.Clusters {
		u := ClusterUtilization{Cluster: c.Name, BusyProcSeconds: busy[c.Name]}
		if horizon > 0 {
			u.Utilization = busy[c.Name] / (float64(c.Procs) * horizon)
		}
		out = append(out, u)
	}
	return out
}

// AppEfficiency is the parallel efficiency of one application's schedule.
type AppEfficiency struct {
	App int
	// SeqWorkSeconds is the work of the application expressed as
	// sequential seconds on the processors it actually used: for each
	// task, its work divided by its host cluster's speed.
	SeqWorkSeconds float64
	// ConsumedProcSeconds is the processor-seconds its placements
	// reserved.
	ConsumedProcSeconds float64
	// Efficiency is the ratio of the two: 1 means perfect speedup, lower
	// values mean processors were held while Amdahl serial fractions or
	// packing idled them.
	Efficiency float64
}

// Efficiencies computes per-application parallel efficiency: how well each
// application converted the processor time it reserved into useful work.
func Efficiencies(s *mapping.Schedule) []AppEfficiency {
	out := make([]AppEfficiency, len(s.Apps))
	for i := range out {
		out[i].App = i
	}
	for _, p := range s.Placements {
		e := &out[p.App]
		e.SeqWorkSeconds += p.Task.SeqGFlop / p.Cluster.Speed
		e.ConsumedProcSeconds += float64(len(p.Procs)) * p.Duration()
	}
	for i := range out {
		if out[i].ConsumedProcSeconds > 0 {
			out[i].Efficiency = out[i].SeqWorkSeconds / out[i].ConsumedProcSeconds
		}
	}
	return out
}

// Summary aggregates headline schedule statistics for reports.
type Summary struct {
	Makespan        float64
	Placements      int
	MeanUtilization float64
	MeanEfficiency  float64
}

// Summarize computes a Summary of the schedule.
func Summarize(s *mapping.Schedule) Summary {
	sum := Summary{Makespan: s.GlobalMakespan(), Placements: len(s.Placements)}
	us := Utilization(s)
	for _, u := range us {
		sum.MeanUtilization += u.Utilization
	}
	if len(us) > 0 {
		sum.MeanUtilization /= float64(len(us))
	}
	es := Efficiencies(s)
	for _, e := range es {
		sum.MeanEfficiency += e.Efficiency
	}
	if len(es) > 0 {
		sum.MeanEfficiency /= float64(len(es))
	}
	return sum
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("makespan %.2f s, %d placements, utilization %.1f%%, efficiency %.1f%%",
		s.Makespan, s.Placements, s.MeanUtilization*100, s.MeanEfficiency*100)
}

// BusiestCluster returns the name of the cluster with the highest busy
// processor-seconds, breaking ties alphabetically.
func BusiestCluster(s *mapping.Schedule) string {
	us := Utilization(s)
	sort.Slice(us, func(i, j int) bool {
		if us[i].BusyProcSeconds != us[j].BusyProcSeconds {
			return us[i].BusyProcSeconds > us[j].BusyProcSeconds
		}
		return us[i].Cluster < us[j].Cluster
	})
	if len(us) == 0 {
		return ""
	}
	return us[0].Cluster
}
