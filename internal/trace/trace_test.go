package trace_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"ptgsched/internal/alloc"
	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/mapping"
	"ptgsched/internal/platform"
	"ptgsched/internal/trace"
)

func validSchedule(t *testing.T) *mapping.Schedule {
	t.Helper()
	pf := platform.Lille()
	r := rand.New(rand.NewSource(1))
	var apps []*alloc.Allocation
	for i := 0; i < 3; i++ {
		g := daggen.Generate(daggen.FamilyRandom, r)
		apps = append(apps, alloc.Compute(g, pf.ReferenceCluster(), 0.33, alloc.SCRAPMAX))
	}
	return mapping.Map(pf, apps, mapping.Options{})
}

// graphsForSeed generates n random PTGs deterministically.
func graphsForSeed(t *testing.T, seed int64, n int) []*dag.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	gs := make([]*dag.Graph, n)
	for i := range gs {
		gs[i] = daggen.Generate(daggen.FamilyRandom, r)
	}
	return gs
}

// scheduleWith allocates every graph under the given beta and maps them.
func scheduleWith(t *testing.T, pf *platform.Platform, gs []*dag.Graph, beta float64) *mapping.Schedule {
	t.Helper()
	apps := make([]*alloc.Allocation, len(gs))
	for i, g := range gs {
		apps[i] = alloc.Compute(g, pf.ReferenceCluster(), beta, alloc.SCRAPMAX)
	}
	return mapping.Map(pf, apps, mapping.Options{})
}

func TestValidateAcceptsMapperOutput(t *testing.T) {
	if err := trace.Validate(validSchedule(t)); err != nil {
		t.Fatal(err)
	}
}

func handBuilt(pf *platform.Platform, g *dag.Graph, places []*mapping.Placement) *mapping.Schedule {
	procs := make([]int, len(g.Tasks))
	for i := range procs {
		procs[i] = 1
	}
	a := &alloc.Allocation{Graph: g, Ref: pf.ReferenceCluster(), Beta: 1, Procs: procs}
	s := mapping.NewSchedule(pf, []*alloc.Allocation{a})
	for _, p := range places {
		s.Add(p)
	}
	return s
}

func TestValidateDetectsMissingPlacement(t *testing.T) {
	pf := platform.Lille()
	g := dag.New("g")
	g.AddTask("a", 1, 1, 0)
	g.AddTask("b", 1, 1, 0)
	c := pf.Clusters[0]
	s := handBuilt(pf, g, []*mapping.Placement{
		{App: 0, Task: g.Tasks[0], Cluster: c, Procs: []int{0}, Start: 0, End: 1},
	})
	if err := trace.Validate(s); err == nil || !strings.Contains(err.Error(), "not placed") {
		t.Fatalf("err = %v, want 'not placed'", err)
	}
}

func TestValidateDetectsOversubscription(t *testing.T) {
	pf := platform.Lille()
	g := dag.New("g")
	g.AddTask("a", 1, 1, 0)
	g.AddTask("b", 1, 1, 0)
	c := pf.Clusters[0]
	s := handBuilt(pf, g, []*mapping.Placement{
		{App: 0, Task: g.Tasks[0], Cluster: c, Procs: []int{0}, Start: 0, End: 2},
		{App: 0, Task: g.Tasks[1], Cluster: c, Procs: []int{0}, Start: 1, End: 3},
	})
	if err := trace.Validate(s); err == nil || !strings.Contains(err.Error(), "oversubscribed") {
		t.Fatalf("err = %v, want 'oversubscribed'", err)
	}
}

func TestValidateDetectsPrecedenceViolation(t *testing.T) {
	pf := platform.Lille()
	g := dag.New("g")
	a := g.AddTask("a", 1, 1, 0)
	b := g.AddTask("b", 1, 1, 0)
	g.MustAddEdge(a, b, 1e9)
	c := pf.Clusters[0]
	s := handBuilt(pf, g, []*mapping.Placement{
		{App: 0, Task: a, Cluster: c, Procs: []int{0}, Start: 0, End: 2},
		{App: 0, Task: b, Cluster: c, Procs: []int{1}, Start: 2, End: 3}, // ignores transfer
	})
	if err := trace.Validate(s); err == nil || !strings.Contains(err.Error(), "before data") {
		t.Fatalf("err = %v, want precedence violation", err)
	}
}

func TestValidateDetectsBadProcIndex(t *testing.T) {
	pf := platform.Lille()
	g := dag.New("g")
	g.AddTask("a", 1, 1, 0)
	c := pf.Clusters[1] // Chti: 20 procs
	s := handBuilt(pf, g, []*mapping.Placement{
		{App: 0, Task: g.Tasks[0], Cluster: c, Procs: []int{25}, Start: 0, End: 1},
	})
	if err := trace.Validate(s); err == nil || !strings.Contains(err.Error(), "outside cluster") {
		t.Fatalf("err = %v, want bad index", err)
	}
}

func TestValidateDetectsDuplicateProc(t *testing.T) {
	pf := platform.Lille()
	g := dag.New("g")
	g.AddTask("a", 1, 1, 0)
	c := pf.Clusters[0]
	s := handBuilt(pf, g, []*mapping.Placement{
		{App: 0, Task: g.Tasks[0], Cluster: c, Procs: []int{3, 3}, Start: 0, End: 1},
	})
	if err := trace.Validate(s); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v, want duplicate proc", err)
	}
}

func TestGanttRendersAllClusters(t *testing.T) {
	s := validSchedule(t)
	var buf bytes.Buffer
	if err := trace.Gantt(&buf, s, 80); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, c := range s.Platform.Clusters {
		used := false
		for _, p := range s.Placements {
			if p.Cluster == c {
				used = true
				break
			}
		}
		if used && !strings.Contains(out, c.Name+":") {
			t.Errorf("gantt missing cluster %s", c.Name)
		}
	}
	if !strings.Contains(out, "#") {
		t.Error("gantt has no bars")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	s := validSchedule(t)
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(s.Placements) {
		t.Fatalf("%d JSON placements, want %d", len(decoded), len(s.Placements))
	}
	for _, rec := range decoded {
		for _, field := range []string{"app", "task", "cluster", "procs", "start", "end"} {
			if _, ok := rec[field]; !ok {
				t.Fatalf("JSON record missing %q", field)
			}
		}
	}
}
