package trace

// ValidateCapacityForTest exposes the per-cluster capacity sweep to the
// oracle tests: on well-formed placements it is subsumed by processor
// exclusivity, so only a direct call can exercise its failure path.
var ValidateCapacityForTest = validateCapacity
