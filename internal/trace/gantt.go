package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"ptgsched/internal/mapping"
)

// Gantt renders a text Gantt chart of the schedule, one line per cluster,
// showing for each placement its span and width. Width is the number of
// character columns of the chart area.
func Gantt(w io.Writer, s *mapping.Schedule, width int) error {
	if width < 20 {
		width = 20
	}
	horizon := s.GlobalMakespan()
	if horizon <= 0 {
		horizon = 1
	}
	scale := float64(width) / horizon

	byCluster := make(map[string][]*mapping.Placement)
	for _, p := range s.Placements {
		byCluster[p.Cluster.Name] = append(byCluster[p.Cluster.Name], p)
	}
	names := make([]string, 0, len(byCluster))
	for name := range byCluster {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "schedule on %s, makespan %.2f s\n", s.Platform.Name, s.GlobalMakespan())
	for _, name := range names {
		ps := byCluster[name]
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Start != ps[j].Start {
				return ps[i].Start < ps[j].Start
			}
			return ps[i].Task.Name < ps[j].Task.Name
		})
		fmt.Fprintf(&b, "%s:\n", name)
		for _, p := range ps {
			from := int(p.Start * scale)
			to := int(p.End * scale)
			if to <= from {
				to = from + 1
			}
			if to > width {
				to = width
			}
			bar := strings.Repeat(" ", from) + strings.Repeat("#", to-from)
			fmt.Fprintf(&b, "  |%-*s| app%d/%-10s ×%-3d [%8.2f,%8.2f]\n",
				width, bar, p.App, p.Task.Name, len(p.Procs), p.Start, p.End)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonPlacement is the JSON wire form of one placement.
type jsonPlacement struct {
	App     int     `json:"app"`
	Task    string  `json:"task"`
	Cluster string  `json:"cluster"`
	Procs   []int   `json:"procs"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
}

// WriteJSON exports the schedule's placements as a JSON array.
func WriteJSON(w io.Writer, s *mapping.Schedule) error {
	out := make([]jsonPlacement, 0, len(s.Placements))
	for _, p := range s.Placements {
		out = append(out, jsonPlacement{
			App:     p.App,
			Task:    p.Task.Name,
			Cluster: p.Cluster.Name,
			Procs:   p.Procs,
			Start:   p.Start,
			End:     p.End,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
