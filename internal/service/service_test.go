package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ptgsched/internal/service"
)

// newService returns a small test service and arranges its shutdown.
func newService(t *testing.T, opts service.Options) *service.Service {
	t.Helper()
	s := service.New(opts)
	t.Cleanup(s.Close)
	return s
}

// waitStats polls the service stats until ok holds or a deadline passes.
func waitStats(t *testing.T, s *service.Service, ok func(service.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ok(s.Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached; stats: %+v", s.Stats())
}

// smallReq is a cheap deterministic schedule request.
func smallReq(seed int64) service.ScheduleRequest {
	return service.ScheduleRequest{
		Platform: "lille",
		Family:   "strassen",
		Count:    2,
		Strategy: "ES",
		Seed:     seed,
	}
}

func TestScheduleDeterministic(t *testing.T) {
	s := newService(t, service.Options{Workers: 2})
	a, err := s.Schedule(context.Background(), smallReq(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Schedule(context.Background(), smallReq(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("same seed, different makespans: %g vs %g", a.Makespan, b.Makespan)
	}
	if a.Makespan <= 0 {
		t.Fatalf("non-positive makespan %g", a.Makespan)
	}
	if len(a.Betas) != 2 || len(a.AppMakespans) != 2 {
		t.Fatalf("expected 2 apps, got %d betas / %d makespans", len(a.Betas), len(a.AppMakespans))
	}
	for _, beta := range a.Betas {
		if math.Abs(beta-0.5) > 1e-12 {
			t.Fatalf("ES beta = %g, want 0.5", beta)
		}
	}
}

func TestScheduleComputeOwn(t *testing.T) {
	s := newService(t, service.Options{Workers: 1})
	req := smallReq(3)
	req.ComputeOwn = true
	resp, err := s.Schedule(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Unfairness == nil {
		t.Fatal("ComputeOwn set but no unfairness reported")
	}
	if len(resp.Slowdowns) != 2 {
		t.Fatalf("%d slowdowns", len(resp.Slowdowns))
	}
	for i, sl := range resp.Slowdowns {
		if sl <= 0 || math.IsNaN(sl) {
			t.Fatalf("slowdown[%d] = %g", i, sl)
		}
	}
}

// TestConcurrentScheduleRequests drives well over 8 concurrent schedule
// requests through a shared service — the acceptance scenario for the
// -race job — and checks every response is the deterministic one for its
// seed.
func TestConcurrentScheduleRequests(t *testing.T) {
	s := newService(t, service.Options{Workers: 4, QueueDepth: 64})

	// Reference responses, computed sequentially.
	const seeds = 8
	want := make([]float64, seeds)
	for i := range want {
		resp, err := s.Schedule(context.Background(), smallReq(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resp.Makespan
	}

	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			seed := c % seeds
			resp, err := s.Schedule(context.Background(), smallReq(int64(seed)))
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			if resp.Makespan != want[seed] {
				errs <- fmt.Errorf("client %d: makespan %g, want %g", c, resp.Makespan, want[seed])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.Completed != seeds+clients {
		t.Errorf("completed = %d, want %d", st.Completed, seeds+clients)
	}
	if st.CompletedByKind["schedule"] != seeds+clients {
		t.Errorf("schedule completions = %d", st.CompletedByKind["schedule"])
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("idle service reports in_flight=%d queued=%d", st.InFlight, st.Queued)
	}
}

// TestMixedRequestKindsConcurrently exercises all three request kinds at
// once, which is what the -race job is really after: schedule, online and
// workload pipelines sharing nothing but platforms and counters.
func TestMixedRequestKindsConcurrently(t *testing.T) {
	s := newService(t, service.Options{Workers: 4, QueueDepth: 64})
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Schedule(context.Background(), smallReq(int64(i))); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Online(context.Background(), service.OnlineRequest{
				Platform: "lille", Family: "strassen", Count: 2,
				Process: "poisson", Rate: 0.5, Strategy: "ES", Seed: int64(i),
			})
			if err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Workload(context.Background(), service.WorkloadRequest{
				Family: "fft", Count: 3, Process: "uniform", Rate: 1, Seed: int64(i),
			})
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	for _, kind := range []string{"schedule", "online", "workload"} {
		if st.CompletedByKind[kind] != 4 {
			t.Errorf("%s completions = %d, want 4", kind, st.CompletedByKind[kind])
		}
	}
}

func TestOnlineDeterministicAndOrdered(t *testing.T) {
	s := newService(t, service.Options{Workers: 2})
	req := service.OnlineRequest{
		Platform: "rennes", Family: "strassen", Count: 3,
		Process: "uniform", Rate: 0.5, Strategy: "WPS-work", Seed: 11,
	}
	a, err := s.Online(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Online(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.MeanFlowTime != b.MeanFlowTime {
		t.Fatalf("online run not deterministic: %+v vs %+v", a, b)
	}
	if len(a.FlowTimes) != 3 {
		t.Fatalf("%d flow times", len(a.FlowTimes))
	}
	for i, ft := range a.FlowTimes {
		if ft <= 0 {
			t.Fatalf("flow time[%d] = %g", i, ft)
		}
	}
}

func TestWorkloadSummary(t *testing.T) {
	s := newService(t, service.Options{Workers: 1})
	resp, err := s.Workload(context.Background(), service.WorkloadRequest{
		Family: "strassen", Count: 5, Process: "uniform", Rate: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Apps) != 5 {
		t.Fatalf("%d apps", len(resp.Apps))
	}
	// Uniform at rate 2: arrivals at 0, 0.5, ..., 2.
	if math.Abs(resp.Span-2) > 1e-12 {
		t.Fatalf("span = %g, want 2", resp.Span)
	}
	for _, app := range resp.Apps {
		if app.Tasks != 25 { // every Strassen PTG has 25 tasks
			t.Fatalf("strassen app with %d tasks", app.Tasks)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	s := newService(t, service.Options{Workers: 1})
	cases := []service.ScheduleRequest{
		{Platform: "mars"},
		{Family: "cyclic"},
		{Strategy: "FIFO"},
		{Count: -1},
		{Count: 1000},
		{Ordering: "alphabetical"},
	}
	for _, req := range cases {
		_, err := s.Schedule(context.Background(), req)
		var verr *service.ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("request %+v: error %v is not a ValidationError", req, err)
		}
	}
	if got := s.Stats().Invalid; got != uint64(len(cases)) {
		t.Errorf("invalid counter = %d, want %d", got, len(cases))
	}
}

func TestQueueFullRejects(t *testing.T) {
	// One worker, one queue slot: occupy the worker, fill the slot, then a
	// third request must be rejected immediately. Blocking test jobs make
	// the saturation deterministic.
	s := newService(t, service.Options{Workers: 1, QueueDepth: 1})

	var wg sync.WaitGroup
	defer wg.Wait()
	release := make(chan struct{})
	defer close(release)
	// Stage the two blocking jobs: the first must reach a worker (freeing
	// the queue slot) before the second can occupy the queue.
	submitBlocking := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.SubmitTestJob(context.Background(), release); err != nil {
				t.Error(err)
			}
		}()
	}
	submitBlocking()
	waitStats(t, s, func(st service.Stats) bool { return st.InFlight == 1 })
	submitBlocking()
	waitStats(t, s, func(st service.Stats) bool { return st.InFlight == 1 && st.Queued == 1 })

	_, err := s.Schedule(context.Background(), smallReq(3))
	if !errors.Is(err, service.ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	if s.Stats().Rejected == 0 {
		t.Error("rejected counter not incremented")
	}
}

func TestRequestTimeout(t *testing.T) {
	// A blocking job held past the request timeout must yield
	// DeadlineExceeded and be accounted as expired exactly once.
	s := newService(t, service.Options{Workers: 1, RequestTimeout: 50 * time.Millisecond})
	release := make(chan struct{})
	defer close(release)
	err := s.SubmitTestJob(context.Background(), release)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	st := s.Stats()
	if st.Expired != 1 || st.Completed != 0 || st.Failed != 0 {
		t.Fatalf("accounting after timeout: %+v", st)
	}
}

func TestClosedServiceRejects(t *testing.T) {
	s := service.New(service.Options{Workers: 1})
	s.Close()
	s.Close() // idempotent
	_, err := s.Schedule(context.Background(), smallReq(1))
	if !errors.Is(err, service.ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

// --- HTTP layer ---

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHTTPScheduleRoundTrip(t *testing.T) {
	s := newService(t, service.Options{Workers: 2})
	h := service.Handler(s)

	w := postJSON(t, h, "/v1/schedule", smallReq(5))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp service.ScheduleResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Makespan <= 0 || resp.Platform != "Lille" || resp.Strategy != "ES" {
		t.Fatalf("bad response: %+v", resp)
	}

	// Same request straight through the service must agree with the wire.
	direct, err := s.Schedule(context.Background(), smallReq(5))
	if err != nil {
		t.Fatal(err)
	}
	if direct.Makespan != resp.Makespan {
		t.Fatalf("wire %g != direct %g", resp.Makespan, direct.Makespan)
	}
}

func TestHTTPValidationAndErrors(t *testing.T) {
	s := newService(t, service.Options{Workers: 1})
	h := service.Handler(s)

	if w := postJSON(t, h, "/v1/schedule", service.ScheduleRequest{Platform: "mars"}); w.Code != http.StatusBadRequest {
		t.Errorf("unknown platform: status %d", w.Code)
	}
	// Unknown fields are rejected.
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(`{"platfrom":"rennes"}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", w.Code)
	}
	// Wrong method.
	req = httptest.NewRequest(http.MethodGet, "/v1/schedule", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET on schedule: status %d", w.Code)
	}
}

func TestHTTPStatsAndMetrics(t *testing.T) {
	s := newService(t, service.Options{Workers: 2})
	h := service.Handler(s)
	if w := postJSON(t, h, "/v1/schedule", smallReq(1)); w.Code != http.StatusOK {
		t.Fatalf("schedule failed: %d %s", w.Code, w.Body)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("stats status %d", w.Code)
	}
	var st service.Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.CompletedByKind["schedule"] != 1 {
		t.Fatalf("stats %+v", st)
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	body := w.Body.String()
	for _, want := range []string{
		"ptgserve_requests_completed_total 1",
		`ptgserve_requests_completed_by_kind_total{kind="schedule"} 1`,
		"# TYPE ptgserve_requests_completed_total counter",
		"# TYPE ptgserve_workers gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Errorf("healthz: %d %q", w.Code, w.Body)
	}
}

func TestHTTPQueueFullMapsTo429(t *testing.T) {
	s := newService(t, service.Options{Workers: 1, QueueDepth: 1})
	h := service.Handler(s)

	// Saturate the pool and the queue with blocking jobs, then the wire
	// must answer 429 with a Retry-After hint.
	var wg sync.WaitGroup
	defer wg.Wait()
	release := make(chan struct{})
	defer close(release)
	// Stage the two blocking jobs: the first must reach a worker (freeing
	// the queue slot) before the second can occupy the queue.
	submitBlocking := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.SubmitTestJob(context.Background(), release); err != nil {
				t.Error(err)
			}
		}()
	}
	submitBlocking()
	waitStats(t, s, func(st service.Stats) bool { return st.InFlight == 1 })
	submitBlocking()
	waitStats(t, s, func(st service.Stats) bool { return st.InFlight == 1 && st.Queued == 1 })

	w := postJSON(t, h, "/v1/schedule", smallReq(9))
	if w.Code != http.StatusTooManyRequests {
		t.Errorf("status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}
