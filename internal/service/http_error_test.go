package service_test

// The HTTP error matrix: every failing response — whichever layer
// produces it, including the mux's own 404/405 — must carry the JSON
// envelope {"error": ..., "code": ...} with the right status and a stable
// machine-readable code. No plain-text error bodies on the wire.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ptgsched/internal/service"
)

// errorEnvelope decodes a response body that must be the JSON envelope.
func errorEnvelope(t *testing.T, w *httptest.ResponseRecorder) (msg, code string) {
	t.Helper()
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("error response content type %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body %q is not the JSON envelope: %v", w.Body, err)
	}
	if body.Error == "" || body.Code == "" {
		t.Fatalf("error envelope incomplete: %q", w.Body)
	}
	return body.Error, body.Code
}

func do(h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHTTPErrorMatrix400(t *testing.T) {
	s := newService(t, service.Options{Workers: 1})
	h := service.Handler(s)

	// Validation failure inside the service.
	w := do(h, http.MethodPost, "/v1/schedule", `{"platform": "mars"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if _, code := errorEnvelope(t, w); code != service.CodeValidation {
		t.Fatalf("code %q, want %q", code, service.CodeValidation)
	}

	// Malformed body fails before the service.
	w = do(h, http.MethodPost, "/v1/online", `{"platfrom": "rennes"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if _, code := errorEnvelope(t, w); code != service.CodeBadRequest {
		t.Fatalf("code %q, want %q", code, service.CodeBadRequest)
	}
}

func TestHTTPErrorMatrix404And405(t *testing.T) {
	s := newService(t, service.Options{Workers: 1})
	h := service.Handler(s)

	w := do(h, http.MethodGet, "/v1/nothing", "")
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", w.Code)
	}
	if _, code := errorEnvelope(t, w); code != service.CodeNotFound {
		t.Fatalf("code %q, want %q", code, service.CodeNotFound)
	}

	w = do(h, http.MethodGet, "/v1/schedule", "")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", w.Code)
	}
	if _, code := errorEnvelope(t, w); code != service.CodeMethodNotAllowed {
		t.Fatalf("code %q, want %q", code, service.CodeMethodNotAllowed)
	}
}

func TestHTTPErrorMatrix429(t *testing.T) {
	s := newService(t, service.Options{Workers: 1, QueueDepth: 1})
	h := service.Handler(s)

	var wg sync.WaitGroup
	defer wg.Wait()
	release := make(chan struct{})
	defer close(release)
	submitBlocking := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.SubmitTestJob(context.Background(), release); err != nil {
				t.Error(err)
			}
		}()
	}
	submitBlocking()
	waitStats(t, s, func(st service.Stats) bool { return st.InFlight == 1 })
	submitBlocking()
	waitStats(t, s, func(st service.Stats) bool { return st.InFlight == 1 && st.Queued == 1 })

	w := do(h, http.MethodPost, "/v1/workload", `{"count": 2}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if _, code := errorEnvelope(t, w); code != service.CodeQueueFull {
		t.Fatalf("code %q, want %q", code, service.CodeQueueFull)
	}
}

func TestHTTPErrorMatrix503(t *testing.T) {
	s := service.New(service.Options{Workers: 1})
	s.Close()
	h := service.Handler(s)

	w := do(h, http.MethodPost, "/v1/workload", `{"count": 2}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if _, code := errorEnvelope(t, w); code != service.CodeClosed {
		t.Fatalf("code %q, want %q", code, service.CodeClosed)
	}
}

func TestHTTPErrorMatrix504(t *testing.T) {
	s := newService(t, service.Options{Workers: 1, QueueDepth: 4, RequestTimeout: 30 * time.Millisecond})
	h := service.Handler(s)

	// Hold the only worker so the wire request times out in the queue.
	var wg sync.WaitGroup
	defer wg.Wait()
	release := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The blocking job itself expires; both outcomes are fine.
		_ = s.SubmitTestJob(context.Background(), release)
	}()
	waitStats(t, s, func(st service.Stats) bool { return st.InFlight == 1 })

	w := do(h, http.MethodPost, "/v1/workload", `{"count": 2}`)
	close(release)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", w.Code)
	}
	if _, code := errorEnvelope(t, w); code != service.CodeTimeout {
		t.Fatalf("code %q, want %q", code, service.CodeTimeout)
	}
}
