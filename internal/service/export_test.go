package service

import "context"

// SubmitTestJob enqueues a job that blocks until release is closed. It lets
// tests saturate the worker pool and queue deterministically, without
// depending on how fast the real pipeline runs.
func (s *Service) SubmitTestJob(ctx context.Context, release <-chan struct{}) error {
	_, err := s.submit(ctx, "schedule", func() (any, error) {
		<-release
		return &ScheduleResponse{}, nil
	})
	return err
}
