package service

// The fleet-facing service surface: shard-lease job execution (the unit a
// coordinator dispatches), the /v1/healthz JSON probe, the queue-derived
// Retry-After hint and the bounded CloseGrace drain.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ptgsched/internal/scenario"
)

// TestJobShardExecution splits the smoke campaign into two shard-lease
// jobs and checks that (a) each job executes exactly its stride partition
// and (b) the merged streams aggregate bit-identically to a direct
// unsharded run — the invariant the fleet coordinator is built on.
func TestJobShardExecution(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()

	spec, err := scenario.ParseSpec([]byte(jobSpec))
	if err != nil {
		t.Fatal(err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}

	agg := e.NewAggregator()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		shard := []string{"0/2", "1/2"}[i]
		st, err := s.SubmitJob(JobRequest{Spec: json.RawMessage(jobSpec), Shard: shard})
		if err != nil {
			t.Fatal(err)
		}
		if st.Points != e.NumPoints()/2 {
			t.Fatalf("shard %s: %d points, want %d", shard, st.Points, e.NumPoints()/2)
		}
		if st.Shard != shard {
			t.Fatalf("status shard %q, want %q", st.Shard, shard)
		}
		final, err := s.WaitJob(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != JobDone || final.Completed != st.Points {
			t.Fatalf("shard %s final status %+v", shard, final)
		}
		var buf bytes.Buffer
		if err := s.JobResults(st.ID, ResultQuery{}, &buf); err != nil {
			t.Fatal(err)
		}
		set, err := e.Shard(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := scenario.ReadJSONLFunc(&buf, func(r scenario.PointResult) error {
			if !set.Contains(r.Index) {
				t.Errorf("shard %s streamed foreign point %d", shard, r.Index)
			}
			n++
			return agg.Add(r)
		}); err != nil {
			t.Fatal(err)
		}
		if n != set.Len() {
			t.Fatalf("shard %s streamed %d points, want %d", shard, n, set.Len())
		}
	}

	got, err := agg.Tables()
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Aggregate(e.Run(e.All(), 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded job results do not aggregate bit-identically to a direct run")
	}
}

// TestJobShardValidation rejects malformed and out-of-range selectors.
func TestJobShardValidation(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	for _, shard := range []string{"2", "a/b", "-1/2", "2/2", "0/0"} {
		if _, err := s.SubmitJob(JobRequest{Spec: json.RawMessage(jobSpec), Shard: shard}); err == nil {
			t.Errorf("shard %q accepted", shard)
		}
	}
}

// TestHealthz exercises the JSON health probe: name echoed, load visible,
// status flipping to draining after Close.
func TestHealthz(t *testing.T) {
	s := New(Options{Name: "worker-7", Workers: 3})
	h := Handler(s)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200", w.Code)
	}
	var hs Health
	if err := json.Unmarshal(w.Body.Bytes(), &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Status != "ok" || hs.Name != "worker-7" || hs.Workers != 3 {
		t.Fatalf("health %+v", hs)
	}

	s.Close()
	if got := s.Health().Status; got != "draining" {
		t.Fatalf("status after Close %q, want draining", got)
	}
}

// TestRetryAfterSeconds checks the derived hint's floor and that a backlog
// with latency history raises it.
func TestRetryAfterSeconds(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	if got := s.RetryAfterSeconds(); got != 1 {
		t.Fatalf("idle hint %d, want 1", got)
	}
	// Fabricate history: 2 completed requests at 30s each, one in flight →
	// ceil(1 × 30s / 1 worker) = 30.
	s.stats.completed.Store(2)
	s.stats.busyNanos.Store(int64(60 * time.Second))
	s.stats.inFlight.Store(1)
	if got := s.RetryAfterSeconds(); got != 30 {
		t.Fatalf("loaded hint %d, want 30", got)
	}
	// A huge backlog clamps at the ceiling.
	s.stats.inFlight.Store(100)
	if got := s.RetryAfterSeconds(); got != 60 {
		t.Fatalf("clamped hint %d, want 60", got)
	}
	s.stats.inFlight.Store(0)
}

// TestCloseGrace bounds the drain: a worker stuck on an uncancellable
// request must not block shutdown forever, and the blocked request is
// reported; once it finishes, a second drain is clean.
func TestCloseGrace(t *testing.T) {
	s := New(Options{Workers: 1, NoTimeout: true})
	release := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- s.SubmitTestJob(context.Background(), release) }()
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked the request up")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	if left := s.CloseGrace(50 * time.Millisecond); left != 1 {
		t.Fatalf("CloseGrace reported %d stuck requests, want 1", left)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("CloseGrace did not respect its deadline")
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if left := s.CloseGrace(time.Second); left != 0 {
		t.Fatalf("second CloseGrace reported %d stuck requests, want 0", left)
	}
}
