// Package service turns the per-batch scheduling pipeline into a concurrent
// scheduling service: many client sessions are multiplexed through one
// shared server core, the architecture the ROADMAP's production target
// calls for. Requests — offline batch scheduling, online dynamic-arrival
// scheduling, workload generation, synchronous campaign sweeps and
// asynchronous campaign *jobs* (submit, poll progress, stream results,
// cancel; see jobs.go) — are queued onto a bounded worker pool; each
// worker executes one request at a time on a private Scheduler instance
// over shared read-only platform state.
//
// Concurrency: the Service is safe for use by any number of goroutines.
// The safety argument mirrors how the rest of the module is built: a
// platform.Platform and its sim.Links are immutable after construction, the
// strategy/alloc/mapping/simexec pipeline keeps all mutable state in
// per-call values, and the only caching mutable structure — dag.Graph's
// analysis caches — is confined to graphs generated privately per request.
// Nothing is shared between two in-flight requests except immutable
// platforms, so requests never contend on scheduling state, only on the
// queue and the stats counters.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ptgsched/internal/cache"
	"ptgsched/internal/core"
	"ptgsched/internal/dag"
	"ptgsched/internal/daggen"
	"ptgsched/internal/mapping"
	"ptgsched/internal/online"
	"ptgsched/internal/platform"
	"ptgsched/internal/scenario"
	"ptgsched/internal/strategy"
	"ptgsched/internal/trace"
	"ptgsched/internal/workload"
)

// Service errors. The HTTP layer maps them onto status codes (429, 503).
var (
	// ErrQueueFull is returned when the bounded request queue is at
	// capacity; the client should back off and retry.
	ErrQueueFull = errors.New("service: request queue full")
	// ErrClosed is returned for requests submitted after Close.
	ErrClosed = errors.New("service: closed")
)

// ValidationError wraps a request-resolution failure (unknown platform or
// strategy name, out-of-range parameter). The HTTP layer maps it to 400.
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying resolution error to errors.Is/As.
func (e *ValidationError) Unwrap() error { return e.Err }

// invalidf marks err as a validation failure and counts it.
func (s *Service) invalid(err error) error {
	s.stats.invalid.Add(1)
	return &ValidationError{Err: err}
}

// Options configures a Service. The zero value is production-reasonable:
// one worker per GOMAXPROCS, a 64-request queue, a 60-second per-request
// timeout, and the default campaign/job admission limits.
type Options struct {
	// Name identifies this service instance to fleet tooling (the
	// ptgserve -name flag): it is echoed by GET /v1/healthz so a
	// coordinator can tell its workers apart. Empty is fine.
	Name string
	// Workers is the number of scheduling workers; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of requests waiting for a worker;
	// default 64. Submissions beyond it fail fast with ErrQueueFull.
	QueueDepth int
	// RequestTimeout caps the time a request may spend queued plus
	// executing; default 60s. Zero or negative values use the default; use
	// NoTimeout to disable.
	RequestTimeout time.Duration
	// NoTimeout disables the per-request timeout (contexts passed by the
	// caller still apply).
	NoTimeout bool
	// Limits tunes the campaign and job admission caps; zero fields take
	// the Default* values (see Limits).
	Limits Limits
	// Cache, when set, memoizes campaign and job points through a shared
	// content-addressed cache (the ptgserve -cache flag): every sweep
	// consults it before computing and publishes after, and its
	// hit/miss/verify-failure counters surface in Stats. Fleet workers
	// pointed at one cache directory share each other's results — a
	// reassigned shard skips the points its dead owner already proved.
	Cache *cache.Cache
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	o.Limits = o.Limits.withDefaults()
	return o
}

// Service is a concurrent scheduling service: a bounded queue feeding a
// fixed pool of workers, each running the full paper pipeline per request.
// Create one with New and release it with Close.
type Service struct {
	opts  Options
	queue chan *job
	wg    sync.WaitGroup
	start time.Time

	mu     sync.Mutex // guards closed and the queue send vs Close
	closed bool

	jobs jobRegistry

	stats counters
}

// job is one queued request.
type job struct {
	ctx      context.Context
	kind     string
	enqueued time.Time
	run      func() (any, error)
	done     chan outcome
	// settled arbitrates the accounting between the worker and the
	// submitter: whoever swaps it first counts the job's fate, so
	// Completed + Failed + Expired partitions Accepted exactly even when a
	// result and a deadline race.
	settled atomic.Bool
}

// settle reports whether the caller won the right to account for the job.
func (j *job) settle() bool { return j.settled.CompareAndSwap(false, true) }

type outcome struct {
	resp any
	err  error
}

// New starts a service with opts defaults applied.
func New(opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		opts:  opts,
		queue: make(chan *job, opts.QueueDepth),
		start: time.Now(),
	}
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Options returns the effective (defaulted) options the service runs with.
func (s *Service) Options() Options { return s.opts }

// Close stops accepting requests, cancels running async jobs, waits for
// queued and in-flight requests to finish, and releases the workers. It is
// idempotent.
func (s *Service) Close() {
	s.CloseGrace(0)
}

// CloseGrace is Close with a bounded drain: it stops accepting requests,
// cancels running async jobs (their fate is counted as expired, like any
// request whose client gave up), and waits at most grace for the workers
// to finish — grace ≤ 0 waits without bound, exactly Close. It returns
// the number of requests still executing when the deadline passed; 0
// means the drain was clean and every spool was released. A nonzero
// return means some worker is still burning CPU on an uncancellable
// request — the caller is expected to be exiting the process, which is
// the only way to reclaim it. Idempotent: later calls (including a
// bounded call after an unbounded one already returned) re-wait on the
// same drained state and return 0.
func (s *Service) CloseGrace(grace time.Duration) int {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
		// A running campaign job would otherwise hold its worker until the
		// sweep finishes; cancel them all so the drain completes promptly.
		s.jobs.cancelAll()
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	if grace > 0 {
		select {
		case <-drained:
		case <-time.After(grace):
			select {
			case <-drained: // drained at the wire: fall through, clean
			default:
				// Workers still running: report how many, leave their
				// spools alone (a worker may hold the spool mutex
				// mid-append; the process is exiting anyway).
				if n := int(s.stats.inFlight.Load()); n > 0 {
					return n
				}
				return 1
			}
		}
	} else {
		<-drained
	}
	// Jobs are not queryable after Close; drop every result spool.
	s.jobs.releaseAll()
	return 0
}

// worker executes queued jobs until the queue closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if err := j.ctx.Err(); err != nil {
			// The client gave up while the job was queued; don't burn a
			// worker on an answer nobody reads.
			if j.settle() {
				s.stats.expired.Add(1)
			}
			j.done <- outcome{err: err}
			continue
		}
		s.stats.inFlight.Add(1)
		started := time.Now()
		resp, err := runSafely(j.run)
		elapsed := time.Since(started)
		s.stats.inFlight.Add(-1)
		s.stats.busyNanos.Add(elapsed.Nanoseconds())
		s.stats.queueWaitNanos.Add(started.Sub(j.enqueued).Nanoseconds())
		if j.settle() {
			switch {
			case err == nil:
				s.stats.completed.Add(1)
				s.stats.byKind(j.kind).Add(1)
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				// The client gave up mid-execution (a canceled async job,
				// or a rare ctx-aware run): that is an expiry, not a
				// pipeline failure.
				s.stats.expired.Add(1)
			default:
				s.stats.failed.Add(1)
			}
		}
		j.done <- outcome{resp: resp, err: err}
	}
}

// runSafely converts a panic in the pipeline (e.g. a degenerate generated
// scenario) into an error, so one bad request cannot take down a worker.
func runSafely(run func() (any, error)) (resp any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: request panicked: %v", r)
		}
	}()
	return run()
}

// submit enqueues a validated request and waits for its outcome or the
// context. Requests abandoned at a timeout keep their queue slot until a
// worker pops and discards them.
func (s *Service) submit(ctx context.Context, kind string, run func() (any, error)) (any, error) {
	if !s.opts.NoTimeout {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	j := &job{ctx: ctx, kind: kind, enqueued: time.Now(), run: run, done: make(chan outcome, 1)}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.stats.rejected.Add(1)
		return nil, ErrClosed
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
		s.stats.accepted.Add(1)
	default:
		s.mu.Unlock()
		s.stats.rejected.Add(1)
		return nil, ErrQueueFull
	}

	select {
	case out := <-j.done:
		// Enforce the deadline strictly even when the result arrives in
		// the same scheduling instant: a timed-out request reports the
		// timeout, not a lucky result. The worker already settled the
		// accounting for an execution that finished, so this path adds no
		// second count.
		if err := ctx.Err(); err != nil {
			if j.settle() {
				s.stats.expired.Add(1)
			}
			return nil, err
		}
		return out.resp, out.err
	case <-ctx.Done():
		if j.settle() {
			s.stats.expired.Add(1)
		}
		return nil, ctx.Err()
	}
}

// ScheduleRequest describes one offline batch-scheduling request: generate
// Count PTGs of Family with Seed, schedule them on Platform under Strategy,
// and simulate the execution. All fields are JSON-friendly so the request
// can travel over the ptgserve wire format unchanged.
type ScheduleRequest struct {
	// Platform names a Grid'5000 preset: lille, nancy, rennes (default) or
	// sophia.
	Platform string `json:"platform,omitempty"`
	// Family is the PTG family: random (default), fft or strassen.
	Family string `json:"family,omitempty"`
	// Count is the number of concurrently-submitted PTGs; default 4.
	Count int `json:"count,omitempty"`
	// Strategy is the paper name of the constraint strategy; default
	// "WPS-work".
	Strategy string `json:"strategy,omitempty"`
	// Mu overrides the paper's calibrated µ for WPS strategies; nil keeps
	// the default.
	Mu *float64 `json:"mu,omitempty"`
	// Seed makes the generated scenario deterministic.
	Seed int64 `json:"seed,omitempty"`
	// Ordering selects the mapping ordering: "" or "ready" (the paper's),
	// or "global" (the Fig. 1 counterexample).
	Ordering string `json:"ordering,omitempty"`
	// NoPacking disables allocation packing.
	NoPacking bool `json:"no_packing,omitempty"`
	// ComputeOwn additionally schedules each PTG alone to report slowdowns
	// and unfairness (Eq. 3–5); it costs Count extra pipeline runs.
	ComputeOwn bool `json:"compute_own,omitempty"`
}

// ScheduleResponse reports one scheduled batch.
type ScheduleResponse struct {
	Platform string `json:"platform"`
	Strategy string `json:"strategy"`
	Count    int    `json:"count"`
	// Betas are the per-application resource constraints.
	Betas []float64 `json:"betas"`
	// AppMakespans are simulated per-application completion times (s).
	AppMakespans []float64 `json:"app_makespans"`
	// Makespan is the simulated completion time of the whole batch (s).
	Makespan float64 `json:"makespan"`
	// Slowdowns and Unfairness are only set when ComputeOwn was requested.
	Slowdowns  []float64 `json:"slowdowns,omitempty"`
	Unfairness *float64  `json:"unfairness,omitempty"`
	// Summary aggregates utilization/efficiency statistics.
	Summary trace.Summary `json:"summary"`
	// Utilization lists per-cluster busy fractions.
	Utilization []trace.ClusterUtilization `json:"utilization"`
	// ElapsedMS is the worker-side execution time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// scheduleScenario is a ScheduleRequest resolved against the registries.
type scheduleScenario struct {
	pf     *platform.Platform
	family daggen.Family
	strat  strategy.Strategy
	count  int
	opts   mapping.Options
}

// resolve validates the request and resolves names; it runs on the caller's
// goroutine so malformed requests fail fast without a queue slot.
func (r ScheduleRequest) resolve() (scheduleScenario, error) {
	var sc scheduleScenario
	name := r.Platform
	if name == "" {
		name = "rennes"
	}
	pf, err := platform.ByName(name)
	if err != nil {
		return sc, err
	}
	famName := r.Family
	if famName == "" {
		famName = "random"
	}
	fam, err := daggen.FamilyByName(famName)
	if err != nil {
		return sc, err
	}
	stratName := r.Strategy
	if stratName == "" {
		stratName = "WPS-work"
	}
	mu := -1.0
	if r.Mu != nil {
		mu = *r.Mu
	}
	strat, err := strategy.ByName(stratName, mu, fam)
	if err != nil {
		return sc, err
	}
	count := r.Count
	if count == 0 {
		count = 4
	}
	if count < 1 || count > 64 {
		return sc, fmt.Errorf("service: count %d outside [1,64]", count)
	}
	var opts mapping.Options
	switch r.Ordering {
	case "", "ready":
	case "global":
		opts.Ordering = mapping.Global
	default:
		return sc, fmt.Errorf("service: unknown ordering %q (want ready or global)", r.Ordering)
	}
	opts.NoPacking = r.NoPacking
	sc = scheduleScenario{pf: pf, family: fam, strat: strat, count: count, opts: opts}
	return sc, nil
}

// Schedule runs one offline batch-scheduling request through the worker
// pool. It is safe for concurrent use.
func (s *Service) Schedule(ctx context.Context, req ScheduleRequest) (*ScheduleResponse, error) {
	sc, err := req.resolve()
	if err != nil {
		return nil, s.invalid(err)
	}
	resp, err := s.submit(ctx, "schedule", func() (any, error) {
		started := time.Now()
		r := rand.New(rand.NewSource(req.Seed))
		graphs := make([]*dag.Graph, sc.count)
		for i := range graphs {
			graphs[i] = daggen.Generate(sc.family, r)
		}
		sched := core.New(sc.pf)
		sched.MapOptions = sc.opts

		var own []float64
		if req.ComputeOwn {
			own = make([]float64, len(graphs))
			for i, g := range graphs {
				own[i] = sched.ScheduleAlone(g)
			}
		}
		res := sched.Schedule(graphs, sc.strat)
		out := &ScheduleResponse{
			Platform:     sc.pf.Name,
			Strategy:     sc.strat.Name(),
			Count:        sc.count,
			Betas:        res.Betas,
			AppMakespans: res.Exec.AppMakespans,
			Makespan:     res.GlobalMakespan(),
			Summary:      trace.Summarize(res.Schedule),
			Utilization:  trace.Utilization(res.Schedule),
		}
		if own != nil {
			ev := res.Evaluate(own)
			out.Slowdowns = ev.Slowdowns
			unf := ev.Unfairness
			out.Unfairness = &unf
		}
		out.ElapsedMS = float64(time.Since(started).Microseconds()) / 1e3
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return resp.(*ScheduleResponse), nil
}

// OnlineRequest describes one online (dynamic-arrivals) scheduling request:
// generate a workload of Count PTGs arriving by Process and schedule it with
// the §8 online rebalancing scheduler.
type OnlineRequest struct {
	Platform string `json:"platform,omitempty"`
	Family   string `json:"family,omitempty"`
	// Count is the number of applications; default 4.
	Count int `json:"count,omitempty"`
	// Process is the arrival process: burst, poisson (default) or uniform.
	Process string `json:"process,omitempty"`
	// Rate is the arrival rate in applications/second; default 0.25.
	Rate     float64  `json:"rate,omitempty"`
	Strategy string   `json:"strategy,omitempty"`
	Mu       *float64 `json:"mu,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
	// NoRebalanceOnCompletion keeps constraints until the next arrival.
	NoRebalanceOnCompletion bool `json:"no_rebalance_on_completion,omitempty"`
}

// OnlineResponse reports one online run.
type OnlineResponse struct {
	Platform string `json:"platform"`
	Strategy string `json:"strategy"`
	Count    int    `json:"count"`
	// Makespan is the completion time of the last application (s).
	Makespan float64 `json:"makespan"`
	// FlowTimes are per-application sojourn times (s), in arrival order.
	FlowTimes []float64 `json:"flow_times"`
	// MeanFlowTime averages FlowTimes.
	MeanFlowTime float64 `json:"mean_flow_time"`
	// Rebalances counts constraint recomputations.
	Rebalances int     `json:"rebalances"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// Online runs one dynamic-arrivals request through the worker pool. It is
// safe for concurrent use.
func (s *Service) Online(ctx context.Context, req OnlineRequest) (*OnlineResponse, error) {
	spec, pf, strat, err := req.resolve()
	if err != nil {
		return nil, s.invalid(err)
	}
	resp, err := s.submit(ctx, "online", func() (any, error) {
		started := time.Now()
		r := rand.New(rand.NewSource(req.Seed))
		arrivals := workload.Generate(spec, r)
		res := online.Schedule(pf, arrivals, online.Options{
			Strategy:                strat,
			NoRebalanceOnCompletion: req.NoRebalanceOnCompletion,
		})
		out := &OnlineResponse{
			Platform:   pf.Name,
			Strategy:   strat.Name(),
			Count:      spec.Count,
			Makespan:   res.Makespan,
			FlowTimes:  make([]float64, len(res.Apps)),
			Rebalances: res.Rebalances,
		}
		for i, app := range res.Apps {
			out.FlowTimes[i] = app.FlowTime()
			out.MeanFlowTime += app.FlowTime()
		}
		if len(res.Apps) > 0 {
			out.MeanFlowTime /= float64(len(res.Apps))
		}
		out.ElapsedMS = float64(time.Since(started).Microseconds()) / 1e3
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return resp.(*OnlineResponse), nil
}

// resolveSpec validates the workload fields shared by the online and
// workload requests; empty strings and zero values take the defaults
// (random family, poisson at 0.25/s, 4 applications).
func resolveSpec(family string, count int, process string, rate float64) (workload.Spec, error) {
	var spec workload.Spec
	if family == "" {
		family = "random"
	}
	fam, err := daggen.FamilyByName(family)
	if err != nil {
		return spec, err
	}
	if process == "" {
		process = "poisson"
	}
	proc, err := workload.ProcessByName(process)
	if err != nil {
		return spec, err
	}
	if count == 0 {
		count = 4
	}
	if count < 1 || count > 64 {
		return spec, fmt.Errorf("service: count %d outside [1,64]", count)
	}
	if rate == 0 {
		rate = 0.25
	}
	if proc != workload.Burst && rate <= 0 {
		return spec, fmt.Errorf("service: rate %g must be positive for a timed process", rate)
	}
	return workload.Spec{Family: fam, Count: count, Process: proc, Rate: rate}, nil
}

// resolve validates an OnlineRequest.
func (r OnlineRequest) resolve() (workload.Spec, *platform.Platform, strategy.Strategy, error) {
	spec, err := resolveSpec(r.Family, r.Count, r.Process, r.Rate)
	if err != nil {
		return spec, nil, strategy.Strategy{}, err
	}
	name := r.Platform
	if name == "" {
		name = "rennes"
	}
	pf, err := platform.ByName(name)
	if err != nil {
		return spec, nil, strategy.Strategy{}, err
	}
	stratName := r.Strategy
	if stratName == "" {
		stratName = "WPS-work"
	}
	mu := -1.0
	if r.Mu != nil {
		mu = *r.Mu
	}
	strat, err := strategy.ByName(stratName, mu, spec.Family)
	if err != nil {
		return spec, nil, strategy.Strategy{}, err
	}
	return spec, pf, strat, nil
}

// WorkloadRequest describes one workload-generation request: draw a
// submission workload and report per-application structure, without
// scheduling it.
type WorkloadRequest struct {
	Family  string  `json:"family,omitempty"`
	Count   int     `json:"count,omitempty"`
	Process string  `json:"process,omitempty"`
	Rate    float64 `json:"rate,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// WorkloadApp summarizes one generated application.
type WorkloadApp struct {
	At        float64 `json:"at"`
	Name      string  `json:"name"`
	Tasks     int     `json:"tasks"`
	Edges     int     `json:"edges"`
	Depth     int     `json:"depth"`
	Width     int     `json:"width"`
	WorkGFlop float64 `json:"work_gflop"`
}

// WorkloadResponse reports one generated workload.
type WorkloadResponse struct {
	Apps []WorkloadApp `json:"apps"`
	// Span is the time of the last arrival (s).
	Span      float64 `json:"span"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Workload runs one workload-generation request through the worker pool.
// It is safe for concurrent use.
func (s *Service) Workload(ctx context.Context, req WorkloadRequest) (*WorkloadResponse, error) {
	spec, err := resolveSpec(req.Family, req.Count, req.Process, req.Rate)
	if err != nil {
		return nil, s.invalid(err)
	}
	resp, err := s.submit(ctx, "workload", func() (any, error) {
		started := time.Now()
		r := rand.New(rand.NewSource(req.Seed))
		arrivals := workload.Generate(spec, r)
		out := &WorkloadResponse{Apps: make([]WorkloadApp, len(arrivals))}
		for i, a := range arrivals {
			st := a.Graph.ComputeStats()
			out.Apps[i] = WorkloadApp{
				At:        a.At,
				Name:      a.Graph.Name,
				Tasks:     st.Tasks,
				Edges:     st.Edges,
				Depth:     st.Depth,
				Width:     st.MaxWidth,
				WorkGFlop: st.TotalWorkG,
			}
			if a.At > out.Span {
				out.Span = a.At
			}
		}
		out.ElapsedMS = float64(time.Since(started).Microseconds()) / 1e3
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return resp.(*WorkloadResponse), nil
}

// counters is the service's internal atomic instrumentation.
type counters struct {
	accepted  atomic.Uint64
	rejected  atomic.Uint64
	invalid   atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	expired   atomic.Uint64
	inFlight  atomic.Int64

	busyNanos      atomic.Int64
	queueWaitNanos atomic.Int64

	schedule atomic.Uint64
	online   atomic.Uint64
	workload atomic.Uint64
	campaign atomic.Uint64
	jobRuns  atomic.Uint64
}

// byKind maps a request kind to its completion counter.
func (c *counters) byKind(kind string) *atomic.Uint64 {
	switch kind {
	case "schedule":
		return &c.schedule
	case "online":
		return &c.online
	case "workload":
		return &c.workload
	case "campaign":
		return &c.campaign
	case "job":
		return &c.jobRuns
	default:
		panic(fmt.Sprintf("service: unknown request kind %q", kind))
	}
}

// Stats is a point-in-time snapshot of the service's instrumentation, the
// payload of ptgserve's /v1/stats endpoint (and, reformatted, /metrics).
type Stats struct {
	// Workers and QueueDepth echo the effective options.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Accepted counts requests that obtained a queue slot; Rejected those
	// refused by a full queue or a closed service; Invalid those failing
	// validation before queuing.
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	Invalid  uint64 `json:"invalid"`
	// Completed, Failed and Expired partition accepted requests exactly
	// (once drained): an accepted request is counted under whichever fate
	// settles first — successful execution, failed execution, or the
	// client giving up (timeout or cancellation) before the result was
	// delivered.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Expired   uint64 `json:"expired"`
	// InFlight and Queued describe the instantaneous load.
	InFlight int64 `json:"in_flight"`
	Queued   int   `json:"queued"`
	// CompletedByKind breaks Completed down per request type.
	CompletedByKind map[string]uint64 `json:"completed_by_kind"`
	// BusySeconds is cumulative worker execution time; MeanLatencyMS and
	// MeanQueueWaitMS are derived per completed-or-failed execution.
	BusySeconds     float64 `json:"busy_seconds"`
	MeanLatencyMS   float64 `json:"mean_latency_ms"`
	MeanQueueWaitMS float64 `json:"mean_queue_wait_ms"`
	// UptimeSeconds is time since New.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// CacheHits, CacheMisses and CacheVerifyFailures mirror the attached
	// content-addressed cache's counters (all zero without Options.Cache):
	// points served from verified cache entries, points computed fresh,
	// and corrupted cache records detected and excluded on read.
	CacheHits           uint64 `json:"cache_hits"`
	CacheMisses         uint64 `json:"cache_misses"`
	CacheVerifyFailures uint64 `json:"cache_verify_failures"`
}

// Stats snapshots the service counters. Counters are read individually
// without a global lock, so a snapshot taken under load is internally
// consistent only up to in-flight increments — fine for monitoring.
func (s *Service) Stats() Stats {
	st := Stats{
		Workers:    s.opts.Workers,
		QueueDepth: s.opts.QueueDepth,
		Accepted:   s.stats.accepted.Load(),
		Rejected:   s.stats.rejected.Load(),
		Invalid:    s.stats.invalid.Load(),
		Completed:  s.stats.completed.Load(),
		Failed:     s.stats.failed.Load(),
		Expired:    s.stats.expired.Load(),
		InFlight:   s.stats.inFlight.Load(),
		Queued:     len(s.queue),
		CompletedByKind: map[string]uint64{
			"schedule": s.stats.schedule.Load(),
			"online":   s.stats.online.Load(),
			"workload": s.stats.workload.Load(),
			"campaign": s.stats.campaign.Load(),
			"job":      s.stats.jobRuns.Load(),
		},
		BusySeconds:   float64(s.stats.busyNanos.Load()) / 1e9,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if ran := st.Completed + st.Failed; ran > 0 {
		st.MeanLatencyMS = float64(s.stats.busyNanos.Load()) / 1e6 / float64(ran)
		st.MeanQueueWaitMS = float64(s.stats.queueWaitNanos.Load()) / 1e6 / float64(ran)
	}
	if s.opts.Cache != nil {
		cs := s.opts.Cache.Stats()
		st.CacheHits, st.CacheMisses, st.CacheVerifyFailures = cs.Hits, cs.Misses, cs.VerifyFailures
	}
	return st
}

// memoFor binds the attached cache to one expansion, refreshing the cache
// first so entries published by other processes sharing the directory
// (fleet workers, earlier jobs) are visible to this sweep. Nil without a
// cache; a failed refresh is not fatal — it only costs cache hits.
func (s *Service) memoFor(e *scenario.Expansion) scenario.Memo {
	if s.opts.Cache == nil {
		return nil
	}
	_ = s.opts.Cache.Refresh()
	return s.opts.Cache.Bind(e)
}

// Health is the payload of GET /v1/healthz: liveness plus the load facts
// a fleet coordinator needs to pick among workers.
type Health struct {
	// Status is "ok" for a serving instance, "draining" after Close.
	Status string `json:"status"`
	// Name echoes Options.Name, the worker's fleet identity.
	Name string `json:"name,omitempty"`
	// Workers and QueueDepth echo the effective options; Queued and
	// InFlight describe the instantaneous load.
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	Queued        int     `json:"queued"`
	InFlight      int64   `json:"in_flight"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Health snapshots the service's health view. Safe for concurrent use.
func (s *Service) Health() Health {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	h := Health{
		Status:        "ok",
		Name:          s.opts.Name,
		Workers:       s.opts.Workers,
		QueueDepth:    s.opts.QueueDepth,
		Queued:        len(s.queue),
		InFlight:      s.stats.inFlight.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if closed {
		h.Status = "draining"
	}
	return h
}

// RetryAfterSeconds derives the Retry-After hint a throttled (429/503)
// response carries from the current backlog: the queued plus in-flight
// requests, each costing the observed mean execution latency, spread over
// the worker pool — clamped to [1, 60] seconds so clients neither
// hot-spin on a deep queue nor stall on a hostile estimate. With no
// latency history yet it falls back to the floor.
func (s *Service) RetryAfterSeconds() int {
	backlog := int64(len(s.queue)) + s.stats.inFlight.Load()
	if backlog <= 0 {
		return 1
	}
	ran := s.stats.completed.Load() + s.stats.failed.Load()
	if ran == 0 {
		return 1
	}
	meanNanos := float64(s.stats.busyNanos.Load()) / float64(ran)
	secs := int(math.Ceil(float64(backlog) * meanNanos / float64(s.opts.Workers) / 1e9))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}
