package service_test

// Service ↔ cache integration: an attached campaign cache turns repeated
// campaign requests into lookups, surfaces its counters through /v1/stats
// and the metrics endpoint, and is shared across requests — the
// fleet-worker sharing shape, one process at a time.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"ptgsched/internal/cache"
	"ptgsched/internal/service"
)

func TestCampaignCacheSecondRequestAllHits(t *testing.T) {
	ch, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	s := newService(t, service.Options{Workers: 1, Cache: ch})

	req := service.CampaignRequest{Spec: json.RawMessage(smallCampaignSpec)}
	first, err := s.Campaign(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheHits != 0 || st.CacheMisses == 0 {
		t.Fatalf("cold campaign: cache_hits=%d cache_misses=%d", st.CacheHits, st.CacheMisses)
	}

	second, err := s.Campaign(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Tables, second.Tables) {
		t.Fatal("cached campaign tables differ from the cold run")
	}
	st = s.Stats()
	if st.CacheHits != uint64(first.Points) {
		t.Fatalf("warm campaign: cache_hits=%d, want %d", st.CacheHits, first.Points)
	}
	if st.CacheVerifyFailures != 0 {
		t.Fatalf("clean cache reported %d verify failures", st.CacheVerifyFailures)
	}
}

func TestStatsEndpointCarriesCacheCounters(t *testing.T) {
	ch, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	s := newService(t, service.Options{Workers: 1, Cache: ch})
	if _, err := s.Campaign(context.Background(), service.CampaignRequest{
		Spec: json.RawMessage(smallCampaignSpec),
	}); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	service.Handler(s).ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"cache_hits", "cache_misses", "cache_verify_failures"} {
		if _, ok := body[k]; !ok {
			t.Fatalf("stats payload missing %q: %s", k, w.Body.String())
		}
	}
	if body["cache_misses"].(float64) == 0 {
		t.Fatal("cache_misses stayed zero after a cold campaign")
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w = httptest.NewRecorder()
	service.Handler(s).ServeHTTP(w, req)
	for _, m := range []string{"ptgserve_cache_hits_total", "ptgserve_cache_misses_total", "ptgserve_cache_verify_failures_total"} {
		if !strings.Contains(w.Body.String(), m) {
			t.Fatalf("metrics missing %s", m)
		}
	}
}

func TestServiceWithoutCacheReportsZeroes(t *testing.T) {
	s := newService(t, service.Options{Workers: 1})
	if _, err := s.Campaign(context.Background(), service.CampaignRequest{
		Spec: json.RawMessage(smallCampaignSpec),
	}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheVerifyFailures != 0 {
		t.Fatalf("cacheless service reported cache traffic: %+v", st)
	}
}
