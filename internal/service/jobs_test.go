package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ptgsched/internal/scenario"
)

const jobSpec = `{
	"name": "jobsmoke",
	"seed": 9,
	"reps": 2,
	"nptgs": [2, 3],
	"platforms": ["lille", "rennes"],
	"families": [{"family": "strassen"}]
}`

func submitSmokeJob(t *testing.T, s *Service, shards int) *JobStatus {
	t.Helper()
	st, err := s.SubmitJob(JobRequest{Spec: json.RawMessage(jobSpec), Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestJobRoundTrip(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()

	st := submitSmokeJob(t, s, 2)
	if st.ID == "" || st.Points != 8 {
		t.Fatalf("initial status %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := s.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || final.Completed != 8 {
		t.Fatalf("final status %+v", final)
	}
	if len(final.Shards) != 2 || final.Shards[0].Completed != 4 || final.Shards[1].Completed != 4 {
		t.Fatalf("per-shard state %+v", final.Shards)
	}

	// The streamed results must aggregate bit-identically to a direct run.
	var buf bytes.Buffer
	if err := s.JobResults(st.ID, ResultQuery{}, &buf); err != nil {
		t.Fatal(err)
	}
	results, err := scenario.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("%d streamed results, want 8", len(results))
	}
	spec, _ := scenario.ParseSpec([]byte(jobSpec))
	e, _ := scenario.Expand(spec)
	want, err := e.Aggregate(e.Run(e.All(), 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Aggregate(results)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want[0].Result.Points {
		w, g := want[0].Result.Points[i], got[0].Result.Points[i]
		for sIdx := range w.Unfairness {
			if w.Unfairness[sIdx] != g.Unfairness[sIdx] || w.RelMakespan[sIdx] != g.RelMakespan[sIdx] {
				t.Fatalf("row %d strategy %d: job aggregate differs from direct run", i, sIdx)
			}
		}
	}

	if list := s.Jobs(); len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("Jobs() = %+v", list)
	}
}

func TestJobResultFilters(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	st := submitSmokeJob(t, s, 1)
	if _, err := s.WaitJob(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}

	count := func(q ResultQuery) int {
		var buf bytes.Buffer
		if err := s.JobResults(st.ID, q, &buf); err != nil {
			t.Fatal(err)
		}
		n := 0
		sc := bufio.NewScanner(&buf)
		for sc.Scan() {
			n++
		}
		return n
	}
	if n := count(ResultQuery{From: 2, To: 5}); n != 3 {
		t.Errorf("range filter kept %d, want 3", n)
	}
	if n := count(ResultQuery{Family: "strassen"}); n != 8 {
		t.Errorf("family filter kept %d, want 8", n)
	}

	// Strategy projection keeps one column per record.
	var buf bytes.Buffer
	if err := s.JobResults(st.ID, ResultQuery{Strategy: "ES"}, &buf); err != nil {
		t.Fatal(err)
	}
	results, err := scenario.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("%d projected results, want 8", len(results))
	}
	for _, r := range results {
		if len(r.Makespan) != 1 || len(r.Unfairness) != 1 || len(r.Rel) != 1 {
			t.Fatalf("projection left %d columns: %+v", len(r.Makespan), r)
		}
	}

	// Unknown filter values are validation errors.
	if err := s.JobResults(st.ID, ResultQuery{Family: "fft"}, &bytes.Buffer{}); err == nil {
		t.Error("family absent from the campaign accepted")
	}
	if err := s.JobResults(st.ID, ResultQuery{Strategy: "nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown strategy label accepted")
	}
	if err := s.JobResults(st.ID, ResultQuery{From: 5, To: 2}, &bytes.Buffer{}); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestJobCancelWhileQueued(t *testing.T) {
	// One worker: the first job occupies it, the second sits queued and
	// can be canceled deterministically before it ever runs.
	s := New(Options{Workers: 1})
	defer s.Close()

	j1 := submitSmokeJob(t, s, 1)
	j2 := submitSmokeJob(t, s, 1)

	st, err := s.CancelJob(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobCanceled {
		t.Fatalf("canceled-from-queue state %q", st.State)
	}
	if _, err := s.JobStatusByID(j2.ID); err == nil {
		t.Error("canceled job still in registry")
	}
	if _, err := s.WaitJob(context.Background(), j1.ID); err != nil {
		t.Fatal(err)
	}
}

func TestJobValidation(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	cases := []JobRequest{
		{},                                     // no spec
		{Spec: json.RawMessage(`{"bogus":1}`)}, // unknown field
		{Spec: json.RawMessage(jobSpec), Shards: -1},
		{Spec: json.RawMessage(jobSpec), Shards: 100},       // > points
		{Spec: json.RawMessage(`{"seed":1,"reps":100000}`)}, // 2M points, over Limits.JobPoints
	}
	for i, req := range cases {
		if _, err := s.SubmitJob(req); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := s.JobStatusByID("job-999999"); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := s.CancelJob("job-999999"); err == nil {
		t.Error("unknown id canceled")
	}
}

func TestJobHTTPRoundTrip(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	// Submit.
	body := `{"spec": ` + jobSpec + `, "shards": 2}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Poll until done.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == JobDone {
			break
		}
		if st.State == JobFailed || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Completed != 8 {
		t.Fatalf("completed %d, want 8", st.Completed)
	}

	// Stream filtered results.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/results?strategy=ES&from=0&to=4")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("results content type %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d result lines, want 4:\n%s", len(lines), b)
	}

	// List, then delete.
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 {
		t.Fatalf("job list %+v", list)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}

	// Unknown ids are 404 with the JSON envelope.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted job GET = %d", resp.StatusCode)
	}
	var envelope struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Code != CodeNotFound {
		t.Fatalf("error code %q, want %q", envelope.Code, CodeNotFound)
	}
}

func TestJobQueueFullRefusesSubmission(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()

	// One running, one queued: the queue is now full.
	submitSmokeJob(t, s, 1)
	waitForQueueFull := func() bool {
		for i := 0; i < 100; i++ {
			if _, err := s.SubmitJob(JobRequest{Spec: json.RawMessage(jobSpec)}); err == nil {
				continue // consumed a slot that freed up; try again
			} else {
				return errors.Is(err, ErrQueueFull)
			}
		}
		return false
	}
	if !waitForQueueFull() {
		t.Skip("jobs drained faster than submissions; nothing to assert")
	}
	if got := s.Stats().Rejected; got == 0 {
		t.Error("rejected counter not incremented")
	}
}

func TestJobStatsKind(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	st := submitSmokeJob(t, s, 1)
	if _, err := s.WaitJob(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().CompletedByKind["job"]; got != 1 {
		t.Errorf("job kind completed = %d, want 1", got)
	}
}

func TestCloseCancelsRunningJobs(t *testing.T) {
	s := New(Options{Workers: 1})
	// A long job: 600 cheap points on one worker.
	spec := `{"name":"long","seed":1,"reps":300,"nptgs":[2],"platforms":["lille"],"families":[{"family":"strassen"}]}`
	if _, err := s.SubmitJob(JobRequest{Spec: json.RawMessage(spec)}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain with a running job")
	}
}
