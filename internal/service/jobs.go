package service

// The asynchronous job subsystem: a campaign sweep too long for one
// synchronous HTTP request is submitted as a *job* — the submission
// validates and expands the spec, enqueues one execution onto the same
// bounded worker pool every other request shares, and returns immediately
// with a job id. The job's progress (completed/total points, per-shard
// state) is polled, its completed per-point results are streamed as JSONL
// with simple query filters while it runs, and a delete cancels it through
// its context. Results are never resident: each completed point is
// appended to a per-job spool file (one JSONL line per point, the
// campaign wire format), and the handle keeps only the line's offset and
// length plus a ready bit — 13 bytes per point — so job size is bounded
// by the admission limits and spool disk, not server memory. The durable,
// resumable on-disk counterpart of this subsystem is internal/store,
// which ptgbench drives for kill/resume workflows.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ptgsched/internal/experiment"
	"ptgsched/internal/query"
	"ptgsched/internal/scenario"
)

// Job subsystem errors and caps.
var (
	// ErrJobNotFound is returned for an unknown job id. The HTTP layer
	// maps it to 404.
	ErrJobNotFound = errors.New("service: no such job")
	// ErrTooManyJobs is returned when the registry is full of live jobs;
	// the client should cancel or wait. The HTTP layer maps it to 429.
	ErrTooManyJobs = errors.New("service: too many active jobs")
)

const (
	// MaxJobs bounds the job registry: terminal jobs are evicted
	// oldest-first to admit new ones, but live jobs are never evicted.
	MaxJobs = 64
	// MaxJobShards bounds the progress-reporting partition of a job.
	MaxJobShards = 256
)

// The job size and backlog caps are configurable per Service — see
// Limits.JobPoints / Limits.JobBacklog and the DefaultMaxJob* constants
// in campaign.go.

// Job states.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobRequest describes one asynchronous campaign job.
type JobRequest struct {
	// Spec is the inline campaign spec (the scenario JSON format).
	Spec json.RawMessage `json:"spec"`
	// Shard, when set to "i/n", executes only that shard's points (the
	// scenario stride partition: point p belongs to shard p mod n) — the
	// lease a fleet coordinator dispatches to one worker. Empty runs the
	// whole expansion.
	Shard string `json:"shard,omitempty"`
	// Shards partitions progress reporting: point i belongs to shard
	// i mod Shards, exactly the scenario/store partition. Default 1.
	Shards int `json:"shards,omitempty"`
	// Workers bounds the job's intra-run parallelism; default 1 (a job
	// occupies one service worker). The server clamps it to GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// JobShardState reports one shard's progress.
type JobShardState struct {
	Index     int `json:"index"`
	Points    int `json:"points"`
	Completed int `json:"completed"`
}

// JobStatus is a point-in-time snapshot of one job, the payload of
// GET /v1/jobs/{id}.
type JobStatus struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// State is queued, running, done, failed or canceled.
	State string `json:"state"`
	// SpecDigest identifies the campaign content (scenario.SpecDigest).
	SpecDigest string `json:"spec_digest"`
	// Shard echoes the request's shard selector ("i/n"), empty for a
	// whole-expansion job.
	Shard string `json:"shard,omitempty"`
	// Points is the number of points this job executes — the shard's
	// cardinality for a sharded job, the whole expansion otherwise;
	// Completed the number measured so far.
	Points    int `json:"points"`
	Completed int `json:"completed"`
	// Shards breaks Completed down by the modulo partition.
	Shards []JobShardState `json:"shards"`
	// Error carries the failure reason of a failed job.
	Error string `json:"error,omitempty"`
	// ElapsedMS is time spent executing so far (0 while queued).
	ElapsedMS float64 `json:"elapsed_ms"`
}

// jobHandle is the server-side state of one job.
type jobHandle struct {
	id       string
	name     string
	digest   string
	e        *scenario.Expansion
	set      scenario.IndexSet // the points this job executes
	shardSel string            // the request's shard selector, "" for all
	shards   int
	worker   int

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed when the job reaches a terminal state

	mu       sync.Mutex // guards state, err, sweepErr, started, finished
	state    string
	err      error
	sweepErr error // first panic of a sweep worker, converted to an error
	started  time.Time
	finished time.Time

	completed  atomic.Int64
	perShard   []atomic.Int64
	shardSizes []int

	// The result spool: completed points are appended as JSONL lines to a
	// temp file instead of being held resident. offs/lens locate point
	// i's line; ready[i] publishes it to concurrent readers (release: the
	// line and its offsets are written before the ready bit is set).
	spoolMu     sync.Mutex
	spool       *os.File
	spoolEnd    int64
	spoolClosed bool
	offs        []int64
	lens        []int32
	ready       []atomic.Bool
}

// record spools one completed point result (worker side). A record
// arriving after release (a point in flight when the job was canceled and
// dropped) is discarded silently.
func (h *jobHandle) record(r scenario.PointResult) error {
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	h.spoolMu.Lock()
	if h.spoolClosed {
		h.spoolMu.Unlock()
		return nil
	}
	off := h.spoolEnd
	if _, err := h.spool.Write(line); err != nil {
		h.spoolMu.Unlock()
		return fmt.Errorf("service: spooling job point %d: %w", r.Index, err)
	}
	h.spoolEnd = off + int64(len(line))
	h.offs[r.Index] = off
	h.lens[r.Index] = int32(len(line))
	h.spoolMu.Unlock()

	h.ready[r.Index].Store(true) // release: readers Load before ReadAt
	h.perShard[r.Index%h.shards].Add(1)
	h.completed.Add(1)
	return nil
}

// release closes and deletes the spool file; the job's results are gone.
// Called when the job leaves the registry (cancel, eviction, Close).
func (h *jobHandle) release() {
	h.spoolMu.Lock()
	defer h.spoolMu.Unlock()
	if h.spoolClosed {
		return
	}
	h.spoolClosed = true
	if h.spool != nil {
		name := h.spool.Name()
		h.spool.Close()
		os.Remove(name)
	}
}

// readRecord fetches point i's spooled line. ok is false when the point
// is not ready yet; a released spool (the job was canceled, evicted or
// the service closed mid-stream) is an error, not a skip — a client must
// never receive a silently truncated stream that looks complete.
func (h *jobHandle) readRecord(i int) (line []byte, ok bool, err error) {
	if !h.ready[i].Load() {
		return nil, false, nil
	}
	h.spoolMu.Lock()
	defer h.spoolMu.Unlock()
	if h.spoolClosed {
		return nil, false, fmt.Errorf("%w: %q (results released mid-stream)", ErrJobNotFound, h.id)
	}
	line = make([]byte, h.lens[i])
	if _, err := h.spool.ReadAt(line, h.offs[i]); err != nil {
		return nil, false, fmt.Errorf("service: reading spooled job point %d: %w", i, err)
	}
	return line, true, nil
}

// status snapshots the handle.
func (h *jobHandle) status() *JobStatus {
	h.mu.Lock()
	state, err, started, finished := h.state, h.err, h.started, h.finished
	h.mu.Unlock()
	st := &JobStatus{
		ID:         h.id,
		Name:       h.name,
		State:      state,
		SpecDigest: h.digest,
		Shard:      h.shardSel,
		Points:     h.set.Len(),
		Completed:  int(h.completed.Load()),
	}
	if err != nil {
		st.Error = err.Error()
	}
	switch {
	case !finished.IsZero():
		st.ElapsedMS = float64(finished.Sub(started).Microseconds()) / 1e3
	case !started.IsZero():
		st.ElapsedMS = float64(time.Since(started).Microseconds()) / 1e3
	}
	for i := 0; i < h.shards; i++ {
		st.Shards = append(st.Shards, JobShardState{
			Index:     i,
			Points:    h.shardSizes[i],
			Completed: int(h.perShard[i].Load()),
		})
	}
	return st
}

// setState transitions the handle; terminal states close done exactly once.
func (h *jobHandle) setState(state string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case JobDone, JobFailed, JobCanceled:
		return // already terminal
	}
	h.state = state
	switch state {
	case JobRunning:
		h.started = time.Now()
	case JobDone, JobFailed, JobCanceled:
		h.err = err
		h.finished = time.Now()
		if h.started.IsZero() {
			h.started = h.finished // canceled while still queued
		}
		close(h.done)
	}
}

// terminal reports whether the job has finished.
func (h *jobHandle) terminal() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state == JobDone || h.state == JobFailed || h.state == JobCanceled
}

// jobRegistry owns the service's job handles.
type jobRegistry struct {
	mu   sync.Mutex
	byID map[string]*jobHandle
	seq  int
}

// add registers a handle under a fresh id, evicting the oldest terminal
// job (and its spool) if the registry is full; a registry full of live
// jobs, or one whose live jobs already hold backlogCap points, refuses.
func (reg *jobRegistry) add(h *jobHandle, backlogCap int) (string, error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.byID == nil {
		reg.byID = make(map[string]*jobHandle)
	}
	live := 0
	for _, j := range reg.byID {
		if !j.terminal() {
			live += j.set.Len()
		}
	}
	if live+h.set.Len() > backlogCap {
		return "", fmt.Errorf("%w: %d points already queued or running, backlog cap is %d",
			ErrTooManyJobs, live, backlogCap)
	}
	if len(reg.byID) >= MaxJobs {
		oldest := ""
		for id, j := range reg.byID {
			if j.terminal() && (oldest == "" || id < oldest) {
				oldest = id
			}
		}
		if oldest == "" {
			return "", ErrTooManyJobs
		}
		reg.byID[oldest].release()
		delete(reg.byID, oldest)
	}
	reg.seq++
	id := fmt.Sprintf("job-%06d", reg.seq)
	h.id = id
	reg.byID[id] = h
	return id, nil
}

// get looks a handle up.
func (reg *jobRegistry) get(id string) (*jobHandle, error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	h, ok := reg.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	return h, nil
}

// remove deletes a handle from the registry and releases its spool.
func (reg *jobRegistry) remove(id string) {
	reg.mu.Lock()
	h := reg.byID[id]
	delete(reg.byID, id)
	reg.mu.Unlock()
	if h != nil {
		h.release()
	}
}

// list snapshots all handles, id-ordered.
func (reg *jobRegistry) list() []*jobHandle {
	reg.mu.Lock()
	hs := make([]*jobHandle, 0, len(reg.byID))
	for _, h := range reg.byID {
		hs = append(hs, h)
	}
	reg.mu.Unlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].id < hs[j].id })
	return hs
}

// cancelAll cancels every job's context (used by Close).
func (reg *jobRegistry) cancelAll() {
	for _, h := range reg.list() {
		h.cancel()
	}
}

// releaseAll drops every job's result spool (used by Close, after the
// workers drained).
func (reg *jobRegistry) releaseAll() {
	for _, h := range reg.list() {
		h.release()
	}
}

// resolveJob validates a job request against the campaign caps (minus the
// synchronous per-request point cap: jobs are bounded by
// Limits.JobPoints).
func (r JobRequest) resolve(lim Limits) (*scenario.Expansion, scenario.IndexSet, int, int, error) {
	var none scenario.IndexSet
	if len(r.Spec) == 0 {
		return nil, none, 0, 0, fmt.Errorf("service: job request needs a spec")
	}
	// Reuse the campaign request's structural caps (strategies, platform
	// sizes) without a shard selector.
	spec, err := (CampaignRequest{Spec: r.Spec}).resolveSpecCaps()
	if err != nil {
		return nil, none, 0, 0, err
	}
	// The point cap applies to the whole expansion even for a sharded job:
	// the result spool index is addressed by global point index, so the
	// handle's per-point arrays are sized by the expansion.
	if _, points, err := scenario.EstimatePoints(spec); err != nil {
		return nil, none, 0, 0, err
	} else if points > lim.JobPoints {
		return nil, none, 0, 0, fmt.Errorf("service: job expands to %d points, cap is %d (use ptgbench -campaign -store for larger sweeps)",
			points, lim.JobPoints)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		return nil, none, 0, 0, err
	}
	set := e.All()
	if r.Shard != "" {
		idx, n, err := scenario.ParseShard(r.Shard)
		if err != nil {
			return nil, none, 0, 0, err
		}
		if set, err = e.Shard(idx, n); err != nil {
			return nil, none, 0, 0, err
		}
	}
	shards := r.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 1 || shards > MaxJobShards || shards > set.Len() {
		return nil, none, 0, 0, fmt.Errorf("service: %d shards for %d points (cap %d)", shards, set.Len(), MaxJobShards)
	}
	return e, set, shards, clampWorkers(r.Workers), nil
}

// SubmitJob validates, expands and enqueues an asynchronous campaign job
// onto the service's bounded worker pool and returns its initial status
// immediately — the job id is the handle for polling (JobStatusByID),
// result streaming (JobResults) and cancellation (CancelJob). A full queue
// or a registry full of live jobs refuses the submission. Safe for
// concurrent use.
func (s *Service) SubmitJob(req JobRequest) (*JobStatus, error) {
	e, set, shards, workers, err := req.resolve(s.opts.Limits)
	if err != nil {
		return nil, s.invalid(err)
	}
	spool, err := os.CreateTemp("", "ptgsched-job-*.jsonl")
	if err != nil {
		return nil, fmt.Errorf("service: creating job result spool: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &jobHandle{
		name:       e.Spec.Name,
		digest:     scenario.SpecDigest(e.Spec),
		e:          e,
		set:        set,
		shardSel:   req.Shard,
		shards:     shards,
		worker:     workers,
		ctx:        ctx,
		cancel:     cancel,
		done:       make(chan struct{}),
		state:      JobQueued,
		perShard:   make([]atomic.Int64, shards),
		shardSizes: make([]int, shards),
		spool:      spool,
		offs:       make([]int64, e.NumPoints()),
		lens:       make([]int32, e.NumPoints()),
		ready:      make([]atomic.Bool, e.NumPoints()),
	}
	// Progress shards partition the *executed* set by global index modulo
	// Shards — for a whole-expansion job this is exactly the n/shards
	// (+1 for the first n mod shards) split of the stride partition.
	for j := 0; j < set.Len(); j++ {
		h.shardSizes[set.At(j)%shards]++
	}
	if _, err := s.jobs.add(h, s.opts.Limits.JobBacklog); err != nil {
		cancel()
		h.release()
		// A full registry or backlog is a rejection like a full queue:
		// count it so throttled submissions show up in /v1/stats.
		s.stats.rejected.Add(1)
		return nil, err
	}
	if err := s.enqueueJob(h); err != nil {
		s.jobs.remove(h.id) // remove releases the spool
		cancel()
		return nil, err
	}
	return h.status(), nil
}

// enqueueJob places the job's single pool entry on the queue synchronously
// (so a full queue refuses the submission, like any other request) and
// collects its outcome in the background. Jobs run without the per-request
// timeout: their lifetime is governed by their own context.
func (s *Service) enqueueJob(h *jobHandle) error {
	pj := &job{ctx: h.ctx, kind: "job", enqueued: time.Now(), run: func() (any, error) {
		return nil, s.runJob(h)
	}, done: make(chan outcome, 1)}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.stats.rejected.Add(1)
		return ErrClosed
	}
	select {
	case s.queue <- pj:
		s.mu.Unlock()
		s.stats.accepted.Add(1)
	default:
		s.mu.Unlock()
		s.stats.rejected.Add(1)
		return ErrQueueFull
	}

	go func() {
		out := <-pj.done
		switch {
		case out.err == nil:
			h.setState(JobDone, nil)
		case errors.Is(out.err, context.Canceled):
			h.setState(JobCanceled, nil)
		default:
			h.setState(JobFailed, out.err)
		}
		h.cancel() // release the context's resources in every path
	}()
	return nil
}

// runJob executes the sweep on a pool worker, fanning points over the
// job's intra-run workers and publishing each result as it completes.
// Each point recovers its own panics: with worker > 1 ForEach runs points
// on goroutines outside runSafely's recover, where an unrecovered panic
// would kill the whole process instead of failing the job.
func (s *Service) runJob(h *jobHandle) error {
	h.setState(JobRunning, nil)
	memo := s.memoFor(h.e)
	experiment.ForEach(h.set.Len(), h.worker, func(j int) {
		i := h.set.At(j)
		if h.ctx.Err() != nil {
			return // canceled: drain the remaining indices fast
		}
		defer func() {
			if r := recover(); r != nil {
				h.mu.Lock()
				if h.sweepErr == nil {
					h.sweepErr = fmt.Errorf("service: job point %d panicked: %v", i, r)
				}
				h.mu.Unlock()
				h.cancel() // drain the remaining points fast
			}
		}()
		if err := h.record(h.e.ComputePoint(h.e.PointAt(i), memo)); err != nil {
			h.mu.Lock()
			if h.sweepErr == nil {
				h.sweepErr = err
			}
			h.mu.Unlock()
			h.cancel() // a failed spool append fails the job; drain fast
		}
	})
	if s.opts.Cache != nil {
		// Seal the cache segment after each job so sibling workers
		// sharing the directory get truncation-proof entries even if this
		// process dies before a clean shutdown. Best-effort: a seal
		// failure costs durability of the seal, not the job.
		_ = s.opts.Cache.Sync()
	}
	h.mu.Lock()
	err := h.sweepErr
	h.mu.Unlock()
	if err != nil {
		return err
	}
	return h.ctx.Err()
}

// JobStatusByID snapshots one job's progress.
func (s *Service) JobStatusByID(id string) (*JobStatus, error) {
	h, err := s.jobs.get(id)
	if err != nil {
		return nil, err
	}
	return h.status(), nil
}

// Jobs lists every registered job's status, id-ordered.
func (s *Service) Jobs() []*JobStatus {
	hs := s.jobs.list()
	out := make([]*JobStatus, len(hs))
	for i, h := range hs {
		out[i] = h.status()
	}
	return out
}

// CancelJob cancels a queued or running job through its context and
// removes it from the registry, returning its final status. Canceling a
// job that already finished just removes it.
func (s *Service) CancelJob(id string) (*JobStatus, error) {
	h, err := s.jobs.get(id)
	if err != nil {
		return nil, err
	}
	h.cancel()
	// The worker (or the queued-job drop path) observes the canceled
	// context and settles the terminal state; don't wait for it here —
	// cancellation must return promptly even mid-sweep.
	s.jobs.remove(id)
	st := h.status()
	if st.State == JobQueued || st.State == JobRunning {
		st.State = JobCanceled
	}
	return st, nil
}

// WaitJob blocks until the job reaches a terminal state (done, failed or
// canceled) or ctx expires, and returns its final status.
func (s *Service) WaitJob(ctx context.Context, id string) (*JobStatus, error) {
	h, err := s.jobs.get(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-h.done:
		return h.status(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ResultQuery filters a job's streamed results.
type ResultQuery struct {
	// Family keeps only points of cells with this PTG family (random, fft,
	// strassen). Empty keeps all.
	Family string
	// Strategy projects every result down to the single named strategy
	// column (matching the cell's labels). Empty keeps all columns.
	Strategy string
	// From/To keep only points with From ≤ index < To. A zero To means
	// the end of the expansion UNLESS ToSet is true — a client explicitly
	// asking for the empty range [x,x) must get nothing, not everything.
	From, To int
	// ToSet marks To as explicitly provided. The HTTP layer sets it when
	// the `to` parameter is present, so `to=0` and an absent `to` stop
	// conflating. Struct literals that set a positive To without ToSet
	// keep their historical meaning (an explicit bound).
	ToSet bool
}

// plan compiles the query against an expansion, normalizing the
// unset-vs-zero To distinction into the query package's NoLimit sentinel.
func (q ResultQuery) plan(e *scenario.Expansion) (*query.Plan, error) {
	to := q.To
	if to == 0 && !q.ToSet {
		to = query.NoLimit
	}
	return query.CompileCached(e, query.Query{
		Family:   q.Family,
		Strategy: q.Strategy,
		From:     q.From,
		To:       to,
	})
}

// JobResults streams the job's completed results as JSONL — one
// scenario.PointResult per line, in global point order — applying the
// query's filters. The query compiles to a memoized plan
// (internal/query) that resolves the family/strategy/range predicate to
// the minimal contiguous index ranges, so the walk visits only selected
// indices instead of every point of the expansion. Lines are read back
// from the job's result spool file (nothing is resident server-side);
// records needing no projection are relayed byte-for-byte, and the
// strategy projection re-marshals through the same bit-exact wire
// encoding, so a client can resume aggregation later. It may be called
// while the job is still running: it streams whatever has completed so
// far. Safe for concurrent use.
func (s *Service) JobResults(id string, q ResultQuery, w io.Writer) error {
	h, err := s.jobs.get(id)
	if err != nil {
		return err
	}
	if q.To < 0 {
		// Reject before plan() could read a negative To as "unbounded".
		return s.invalid(fmt.Errorf("service: result range [%d,%d) is invalid", q.From, q.To))
	}
	p, err := q.plan(h.e)
	if err != nil {
		// Every compile failure — unknown family or strategy, inverted or
		// out-of-range bounds (including From ≥ NumPoints) — is a bad
		// request, not an empty 200 stream.
		return s.invalid(err)
	}
	return p.EachRange(func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if !h.set.Contains(i) {
				continue // not part of this job's shard
			}
			line, ok, err := h.readRecord(i)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if p.ProjectColumn(h.e.CellOf(i)) >= 0 {
				var r scenario.PointResult
				if err := json.Unmarshal(line, &r); err != nil {
					return err
				}
				// Project validates the record's column count before
				// slicing: a malformed spool record (torn, foreign, or
				// short) surfaces as query.ErrMalformedRecord instead of
				// panicking mid-stream.
				if r, err = p.Project(r); err != nil {
					return err
				}
				if line, err = json.Marshal(r); err != nil {
					return err
				}
				line = append(line, '\n')
			}
			if _, err := w.Write(line); err != nil {
				return err
			}
		}
		return nil
	})
}

// resolveSpecCaps applies the campaign request's structural caps (NPTGs,
// strategy count, platform sizes) to the spec; shared by the synchronous
// campaign endpoint and the job subsystem.
func (r CampaignRequest) resolveSpecCaps() (*scenario.Spec, error) {
	spec, err := scenario.ParseSpec(r.Spec)
	if err != nil {
		return nil, err
	}
	for _, n := range spec.NPTGs {
		if n > MaxCampaignNPTGs {
			return nil, fmt.Errorf("service: nptgs value %d above cap %d", n, MaxCampaignNPTGs)
		}
	}
	if len(spec.Strategies) > MaxCampaignStrategies {
		return nil, fmt.Errorf("service: %d strategies, cap is %d", len(spec.Strategies), MaxCampaignStrategies)
	}
	for _, ps := range spec.PlatformSpecs {
		if len(ps.Clusters) > MaxCampaignClusters {
			return nil, fmt.Errorf("service: platform %q has %d clusters, cap is %d",
				ps.Name, len(ps.Clusters), MaxCampaignClusters)
		}
		for _, c := range ps.Clusters {
			if c.Procs > MaxCampaignProcs {
				return nil, fmt.Errorf("service: platform %q cluster %q has %d processors, cap is %d",
					ps.Name, c.Name, c.Procs, MaxCampaignProcs)
			}
		}
	}
	if n := spec.Events.Count(); n > MaxCampaignEvents {
		return nil, fmt.Errorf("service: events block implies up to %d events per point, cap is %d",
			n, MaxCampaignEvents)
	}
	return spec, nil
}
