package service_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"ptgsched/internal/scenario"
	"ptgsched/internal/service"
)

// smallCampaignSpec is a fast deterministic sweep: 1 platform × 2 NPTGs ×
// 2 reps on Strassen PTGs = 8 points.
const smallCampaignSpec = `{
	"name": "smoke",
	"seed": 9,
	"reps": 2,
	"nptgs": [2, 3],
	"platforms": ["lille"],
	"families": [{"family": "strassen"}]
}`

func TestCampaignEndToEnd(t *testing.T) {
	s := newService(t, service.Options{Workers: 1})
	resp, err := s.Campaign(context.Background(), service.CampaignRequest{
		Spec: json.RawMessage(smallCampaignSpec),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != "smoke" || resp.Points != 4 || resp.RunPoints != 4 {
		t.Fatalf("bad response header: %+v", resp)
	}
	if len(resp.Tables) != 1 || len(resp.Results) != 0 {
		t.Fatalf("unsharded campaign: %d tables, %d results", len(resp.Tables), len(resp.Results))
	}
	tb := resp.Tables[0]
	if tb.Family != "strassen" || len(tb.Rows) != 2 || len(tb.Labels) != 6 {
		t.Fatalf("bad table: %+v", tb)
	}
	for _, row := range tb.Rows {
		if row.Runs != 2 {
			t.Fatalf("row aggregates %d runs, want 2", row.Runs)
		}
		for s, m := range row.AvgMakespan {
			if m <= 0 {
				t.Fatalf("row n=%d strategy %d makespan %g", row.NPTGs, s, m)
			}
		}
	}

	// The same request again is deterministic.
	again, err := s.Campaign(context.Background(), service.CampaignRequest{
		Spec: json.RawMessage(smallCampaignSpec),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Tables, again.Tables) {
		t.Fatal("campaign response not deterministic")
	}
}

func TestCampaignShardsRecombineThroughService(t *testing.T) {
	s := newService(t, service.Options{Workers: 2})
	full, err := s.Campaign(context.Background(), service.CampaignRequest{
		Spec: json.RawMessage(smallCampaignSpec),
	})
	if err != nil {
		t.Fatal(err)
	}

	var merged []scenario.PointResult
	for _, shard := range []string{"1/2", "0/2"} {
		resp, err := s.Campaign(context.Background(), service.CampaignRequest{
			Spec:  json.RawMessage(smallCampaignSpec),
			Shard: shard,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Tables) != 0 || len(resp.Results) == 0 || resp.Shard != shard {
			t.Fatalf("shard response shape: %+v", resp)
		}
		merged = append(merged, resp.Results...)
	}

	spec, err := scenario.ParseSpec([]byte(smallCampaignSpec))
	if err != nil {
		t.Fatal(err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Aggregate(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tables[0].Result.Points[0].Unfairness, full.Tables[0].Rows[0].Unfairness) {
		t.Fatal("recombined shards differ from the unsharded service run")
	}
}

func TestCampaignValidation(t *testing.T) {
	// Tight admission limits so the cardinality cases exercise rejection
	// without queuing real work; the structural caps are constants.
	s := newService(t, service.Options{Workers: 1, Limits: service.Limits{
		CampaignPoints:    2048,
		CampaignExpansion: 65536,
	}})
	cases := []struct {
		name string
		req  service.CampaignRequest
	}{
		{"missing spec", service.CampaignRequest{}},
		{"unknown field", service.CampaignRequest{Spec: json.RawMessage(`{"repz": 1}`)}},
		{"bad family", service.CampaignRequest{Spec: json.RawMessage(`{"families": [{"family": "weird"}]}`)}},
		{"nptgs cap", service.CampaignRequest{Spec: json.RawMessage(`{"nptgs": [65]}`)}},
		{"points cap", service.CampaignRequest{Spec: json.RawMessage(`{"reps": 200}`)}},
		{"grid explosion", service.CampaignRequest{Spec: json.RawMessage(
			`{"families": [{"family": "random", "tasks": {"from": 1, "to": 5000, "step": 1}, "widths": {"from": 0.001, "to": 1, "step": 0.001}}]}`)}},
		{"procs cap", service.CampaignRequest{Spec: json.RawMessage(
			`{"platform_specs": [{"name": "x", "clusters": [{"name": "c", "procs": 2000000000, "speed": 1}]}]}`)}},
		{"bad shard", service.CampaignRequest{Spec: json.RawMessage(smallCampaignSpec), Shard: "9/4"}},
		{"expansion cap even sharded", service.CampaignRequest{
			Spec: json.RawMessage(`{"reps": 4000}`), Shard: "0/100"}},
		{"strategy cap", service.CampaignRequest{Spec: json.RawMessage(
			`{"reps": 1, "nptgs": [2], "platforms": ["lille"], "strategies": [` +
				strings.Repeat(`{"name": "S"},`, 70) + `{"name": "ES"}]}`)}},
		{"trailing shard garbage", service.CampaignRequest{Spec: json.RawMessage(smallCampaignSpec), Shard: "0/2junk"}},
		{"events budget cap", service.CampaignRequest{Spec: json.RawMessage(
			`{"reps": 1, "nptgs": [2], "events": {"failures": [{"cluster": 0, "mttf": 10, "mttr": 2, "count": 200}]}}`)}},
		{"unknown reschedule policy", service.CampaignRequest{Spec: json.RawMessage(
			`{"reps": 1, "nptgs": [2], "events": {"cancels": [{"app": 0, "at": 1}], "policies": ["optimist"]}}`)}},
	}
	for _, tc := range cases {
		_, err := s.Campaign(context.Background(), tc.req)
		var verr *service.ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("%s: error %v, want ValidationError", tc.name, err)
		}
	}
}

// TestCampaignLimitsDefaultAndOverride pins the streaming-era admission
// model: the default caps sit far above the old materialize-everything
// values (a 4000-point expansion is admissible by default), and a service
// can still be configured down to a tight budget.
func TestCampaignLimitsDefaultAndOverride(t *testing.T) {
	s := newService(t, service.Options{Workers: 1})
	lim := s.Options().Limits
	if lim.CampaignPoints != service.DefaultMaxCampaignPoints ||
		lim.CampaignExpansion != service.DefaultMaxCampaignExpansion ||
		lim.JobPoints != service.DefaultMaxJobPoints ||
		lim.JobBacklog != service.DefaultMaxJobBacklog {
		t.Fatalf("default limits not applied: %+v", lim)
	}
	if service.DefaultMaxCampaignPoints < 4000 {
		t.Fatalf("default campaign cap %d regressed below the old 2048-era scale", service.DefaultMaxCampaignPoints)
	}
	// A 4000-point expansion (reps 200, paper defaults) is admissible now;
	// run only a 1/1000 shard of it so the test stays fast.
	resp, err := s.Campaign(context.Background(), service.CampaignRequest{
		Spec:  json.RawMessage(`{"seed": 1, "reps": 200}`),
		Shard: "0/1000",
	})
	if err != nil {
		t.Fatalf("4000-point campaign rejected under default limits: %v", err)
	}
	if resp.Points != 4000 || resp.RunPoints != 4 {
		t.Fatalf("shard response %+v, want 4000 points / 4 run", resp)
	}

	// The same spec against a tight configured cap is refused up front.
	tight := newService(t, service.Options{Workers: 1, Limits: service.Limits{CampaignExpansion: 100}})
	_, err = tight.Campaign(context.Background(), service.CampaignRequest{
		Spec:  json.RawMessage(`{"seed": 1, "reps": 200}`),
		Shard: "0/1000",
	})
	var verr *service.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("tight expansion cap not enforced: %v", err)
	}
}

func TestCampaignOverHTTP(t *testing.T) {
	s := newService(t, service.Options{Workers: 1})
	h := service.Handler(s)
	w := postJSON(t, h, "/v1/campaign", service.CampaignRequest{
		Spec: json.RawMessage(smallCampaignSpec),
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp service.CampaignResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != 1 || resp.Points != 4 {
		t.Fatalf("wire response: %+v", resp)
	}
	st := s.Stats()
	if st.CompletedByKind["campaign"] != 1 {
		t.Fatalf("campaign completions not counted: %+v", st.CompletedByKind)
	}
}
