package service

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ptgsched/internal/experiment"
	"ptgsched/internal/scenario"
)

// Campaign caps. A service worker runs a whole campaign request as one
// job, so the expansion must stay queue-friendly; larger sweeps are run
// shard by shard (each request executing only its shard's points) or
// offline with ptgbench -campaign.
const (
	// MaxCampaignPoints bounds the scenario points one request may
	// execute.
	MaxCampaignPoints = 2048
	// MaxCampaignNPTGs bounds the per-point batch size, matching the
	// schedule endpoint's count cap.
	MaxCampaignNPTGs = 64
	// MaxCampaignProcs bounds one inline cluster's processor count (the
	// mapper allocates per-processor state for every run).
	MaxCampaignProcs = 4096
	// MaxCampaignClusters bounds one inline platform's cluster count.
	MaxCampaignClusters = 64
	// MaxCampaignExpansion bounds the total expansion a request may ask
	// the server to materialize, sharded or not: resolve() runs on the
	// caller's goroutine, outside the queue, so even a 1/n shard of a
	// huge sweep must not hold the whole point list in server memory.
	MaxCampaignExpansion = 65536
	// MaxCampaignStrategies bounds the comparison set: every strategy
	// entry multiplies the per-point work, so it is part of the budget.
	MaxCampaignStrategies = 64
)

// CampaignRequest describes one declarative campaign sweep: an inline
// scenario spec (the scenario package's JSON format, also the format of
// the checked-in specs under examples/) and an optional shard selector.
type CampaignRequest struct {
	// Spec is the campaign spec. Unknown fields are rejected.
	Spec json.RawMessage `json:"spec"`
	// Shard, when set to "i/n", executes only that shard's points and
	// returns their per-point results (the JSONL records) instead of
	// aggregated tables; a client recombines shards with ptgbench
	// -campaign -merge or scenario.Aggregate.
	Shard string `json:"shard,omitempty"`
	// Workers bounds the sweep's intra-request parallelism; default 1 (a
	// campaign occupies one service worker; raise it only on services
	// sized for it). The server clamps it to GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// CampaignRow is one aggregated summary row: one NPTGs value of a cell,
// one entry per strategy.
type CampaignRow struct {
	NPTGs int `json:"nptgs"`
	// Runs is the number of scenario points aggregated into the row.
	Runs           int       `json:"runs"`
	Unfairness     []float64 `json:"unfairness"`
	AvgMakespan    []float64 `json:"avg_makespan"`
	RelMakespan    []float64 `json:"rel_makespan"`
	UnfairnessStd  []float64 `json:"unfairness_std"`
	RelMakespanStd []float64 `json:"rel_makespan_std"`
}

// CampaignTable is one cell's aggregated summary.
type CampaignTable struct {
	// Cell is the cell label, e.g. "random[t=20 w=0.5 r=0.2 d=0.8 j=1 mixed]".
	Cell   string        `json:"cell"`
	Family string        `json:"family"`
	Labels []string      `json:"labels"`
	Rows   []CampaignRow `json:"rows"`
}

// CampaignResponse reports one campaign request: aggregated tables for a
// full sweep, per-point results for a shard.
type CampaignResponse struct {
	Name string `json:"name,omitempty"`
	// Points is the size of the full expansion; RunPoints the number this
	// request executed (smaller for shards).
	Points    int    `json:"points"`
	RunPoints int    `json:"run_points"`
	Shard     string `json:"shard,omitempty"`
	// Tables carries the aggregated summary (unsharded requests).
	Tables []CampaignTable `json:"tables,omitempty"`
	// Results carries per-point results (sharded requests), bit-exact
	// JSONL records.
	Results   []scenario.PointResult `json:"results,omitempty"`
	ElapsedMS float64                `json:"elapsed_ms"`
}

// campaignScenario is a CampaignRequest resolved and expanded.
type campaignScenario struct {
	expansion *scenario.Expansion
	points    []scenario.Point
	shard     string
	workers   int
}

// resolve parses, validates and expands the request on the caller's
// goroutine, so malformed or oversized campaigns fail fast without a
// queue slot.
func (r CampaignRequest) resolve() (campaignScenario, error) {
	var cs campaignScenario
	if len(r.Spec) == 0 {
		return cs, fmt.Errorf("service: campaign request needs a spec")
	}
	spec, err := r.resolveSpecCaps()
	if err != nil {
		return cs, err
	}

	// Reject oversized sweeps arithmetically before the expansion
	// materializes anything: the shard selector divides the executed
	// share, so it enters the budget check, not the expansion.
	shardN := 1
	var shardIdx int
	if r.Shard != "" {
		if shardIdx, shardN, err = scenario.ParseShard(r.Shard); err != nil {
			return cs, err
		}
	}
	if _, points, err := scenario.EstimatePoints(spec); err != nil {
		return cs, err
	} else if points > MaxCampaignExpansion {
		return cs, fmt.Errorf("service: campaign expands to %d points, server cap is %d even sharded (use ptgbench -campaign for larger sweeps)",
			points, MaxCampaignExpansion)
	} else if points > MaxCampaignPoints*shardN {
		return cs, fmt.Errorf("service: campaign would execute ~%d points per shard, cap is %d (shard it further, or use ptgbench -campaign)",
			points/shardN, MaxCampaignPoints)
	}

	e, err := scenario.Expand(spec)
	if err != nil {
		return cs, err
	}
	pts := e.Points
	if r.Shard != "" {
		if pts, err = e.Shard(shardIdx, shardN); err != nil {
			return cs, err
		}
	}
	if len(pts) > MaxCampaignPoints {
		return cs, fmt.Errorf("service: campaign executes %d points, cap is %d (shard it, or use ptgbench -campaign)",
			len(pts), MaxCampaignPoints)
	}
	cs = campaignScenario{expansion: e, points: pts, shard: r.Shard, workers: clampWorkers(r.Workers)}
	return cs, nil
}

// clampWorkers applies the intra-request parallelism policy shared by the
// synchronous campaign endpoint and the job subsystem: default 1 (one
// request occupies one service worker), capped at GOMAXPROCS.
func clampWorkers(w int) int {
	if w <= 0 {
		w = 1
	}
	if max := runtime.GOMAXPROCS(0); w > max {
		return max
	}
	return w
}

// runPoints is Expansion.Run with panic isolation: with workers > 1 the
// points run on ForEach's own goroutines, outside runSafely's recover,
// where a panicking point (a degenerate generated scenario) would kill the
// whole process instead of failing the one request.
func runPoints(e *scenario.Expansion, pts []scenario.Point, workers int) (outs []scenario.PointResult, err error) {
	outs = make([]scenario.PointResult, len(pts))
	var mu sync.Mutex
	experiment.ForEach(len(pts), workers, func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if err == nil {
					err = fmt.Errorf("service: campaign point %d panicked: %v", pts[i].Index, r)
				}
				mu.Unlock()
			}
		}()
		outs[i] = e.RunPoint(pts[i])
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// Campaign runs one declarative campaign sweep through the worker pool.
// It is safe for concurrent use.
func (s *Service) Campaign(ctx context.Context, req CampaignRequest) (*CampaignResponse, error) {
	cs, err := req.resolve()
	if err != nil {
		return nil, s.invalid(err)
	}
	resp, err := s.submit(ctx, "campaign", func() (any, error) {
		started := time.Now()
		results, err := runPoints(cs.expansion, cs.points, cs.workers)
		if err != nil {
			return nil, err
		}
		out := &CampaignResponse{
			Name:      cs.expansion.Spec.Name,
			Points:    len(cs.expansion.Points),
			RunPoints: len(cs.points),
			Shard:     cs.shard,
		}
		if cs.shard == "" {
			tables, err := cs.expansion.Aggregate(results)
			if err != nil {
				return nil, err
			}
			for _, tb := range tables {
				ct := CampaignTable{
					Cell:   tb.Cell.Label,
					Family: tb.Cell.Family.String(),
					Labels: tb.Result.Config.Labels,
				}
				for _, pt := range tb.Result.Points {
					ct.Rows = append(ct.Rows, CampaignRow{
						NPTGs:          pt.NPTGs,
						Runs:           pt.Runs,
						Unfairness:     pt.Unfairness,
						AvgMakespan:    pt.AvgMakespan,
						RelMakespan:    pt.RelMakespan,
						UnfairnessStd:  pt.UnfairnessStd,
						RelMakespanStd: pt.RelMakespanStd,
					})
				}
				out.Tables = append(out.Tables, ct)
			}
		} else {
			out.Results = results
		}
		out.ElapsedMS = float64(time.Since(started).Microseconds()) / 1e3
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return resp.(*CampaignResponse), nil
}
