package service

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ptgsched/internal/experiment"
	"ptgsched/internal/scenario"
)

// Structural campaign caps, shared by the synchronous endpoint and the
// job subsystem. These bound per-point cost; the *cardinality* caps —
// points per request, total expansion, job sizes — are configurable per
// Service through Options.Limits and default to the Default* values
// below.
const (
	// MaxCampaignNPTGs bounds the per-point batch size, matching the
	// schedule endpoint's count cap.
	MaxCampaignNPTGs = 64
	// MaxCampaignProcs bounds one inline cluster's processor count (the
	// mapper allocates per-processor state for every run).
	MaxCampaignProcs = 4096
	// MaxCampaignClusters bounds one inline platform's cluster count.
	MaxCampaignClusters = 64
	// MaxCampaignStrategies bounds the comparison set: every strategy
	// entry multiplies the per-point work, so it is part of the budget.
	MaxCampaignStrategies = 64
	// MaxCampaignEvents bounds the per-point dynamic event budget a spec's
	// events block may imply (scripted events plus the worst-case draw of
	// every failure process): each event replays through the online engine
	// on every point, so it multiplies per-point work like a strategy does.
	MaxCampaignEvents = 256
)

// Default admission limits. The streaming pipeline — lazy point
// generation, slot-based aggregation, spooled job results — keeps the
// per-point memory cost of a sweep to bits and slots, so the defaults are
// CPU-budget numbers (how much work one request may queue), far above the
// old materialize-everything caps.
const (
	// DefaultMaxCampaignPoints bounds the points one synchronous request
	// executes. A campaign occupies one pool worker for its whole sweep,
	// so this is a latency budget, not a memory one.
	DefaultMaxCampaignPoints = 16_384
	// DefaultMaxCampaignExpansion bounds the total expansion a request
	// may sweep a shard of. Expansion cardinality is arithmetic
	// (EstimatePoints) and points are generated lazily, so the cap
	// reflects how much of a sweep may be aggregated per request, not
	// what fits in server memory.
	DefaultMaxCampaignExpansion = 1 << 24
	// DefaultMaxJobPoints bounds one asynchronous job. Job results spool
	// to disk (13 bytes per point resident), so the budget is wall-clock
	// and spool space; truly unbounded sweeps belong to
	// ptgbench -campaign -store.
	DefaultMaxJobPoints = 1 << 20
	// DefaultMaxJobBacklog bounds the total points across all live jobs.
	DefaultMaxJobBacklog = 2 << 20
)

// Limits are the per-Service campaign and job admission caps, set through
// Options.Limits; zero fields take the Default* constants.
type Limits struct {
	// CampaignPoints bounds the points one synchronous campaign request
	// may execute.
	CampaignPoints int
	// CampaignExpansion bounds the total expansion a synchronous request
	// may address, sharded or not.
	CampaignExpansion int
	// JobPoints bounds the expansion of one asynchronous job.
	JobPoints int
	// JobBacklog bounds the total points across all live (queued or
	// running) jobs.
	JobBacklog int
}

// withDefaults fills unset fields.
func (l Limits) withDefaults() Limits {
	if l.CampaignPoints <= 0 {
		l.CampaignPoints = DefaultMaxCampaignPoints
	}
	if l.CampaignExpansion <= 0 {
		l.CampaignExpansion = DefaultMaxCampaignExpansion
	}
	if l.JobPoints <= 0 {
		l.JobPoints = DefaultMaxJobPoints
	}
	if l.JobBacklog <= 0 {
		l.JobBacklog = DefaultMaxJobBacklog
	}
	return l
}

// CampaignRequest describes one declarative campaign sweep: an inline
// scenario spec (the scenario package's JSON format, also the format of
// the checked-in specs under examples/) and an optional shard selector.
type CampaignRequest struct {
	// Spec is the campaign spec. Unknown fields are rejected.
	Spec json.RawMessage `json:"spec"`
	// Shard, when set to "i/n", executes only that shard's points and
	// returns their per-point results (the JSONL records) instead of
	// aggregated tables; a client recombines shards with ptgbench
	// -campaign -merge or scenario.Aggregate.
	Shard string `json:"shard,omitempty"`
	// Workers bounds the sweep's intra-request parallelism; default 1 (a
	// campaign occupies one service worker; raise it only on services
	// sized for it). The server clamps it to GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// CampaignRow is one aggregated summary row: one NPTGs value of a cell,
// one entry per strategy.
type CampaignRow struct {
	NPTGs int `json:"nptgs"`
	// Runs is the number of scenario points aggregated into the row.
	Runs           int       `json:"runs"`
	Unfairness     []float64 `json:"unfairness"`
	AvgMakespan    []float64 `json:"avg_makespan"`
	RelMakespan    []float64 `json:"rel_makespan"`
	UnfairnessStd  []float64 `json:"unfairness_std"`
	RelMakespanStd []float64 `json:"rel_makespan_std"`
}

// CampaignTable is one cell's aggregated summary.
type CampaignTable struct {
	// Cell is the cell label, e.g. "random[t=20 w=0.5 r=0.2 d=0.8 j=1 mixed]".
	Cell   string        `json:"cell"`
	Family string        `json:"family"`
	Labels []string      `json:"labels"`
	Rows   []CampaignRow `json:"rows"`
}

// CampaignResponse reports one campaign request: aggregated tables for a
// full sweep, per-point results for a shard.
type CampaignResponse struct {
	Name string `json:"name,omitempty"`
	// Points is the size of the full expansion; RunPoints the number this
	// request executed (smaller for shards).
	Points    int    `json:"points"`
	RunPoints int    `json:"run_points"`
	Shard     string `json:"shard,omitempty"`
	// Tables carries the aggregated summary (unsharded requests).
	Tables []CampaignTable `json:"tables,omitempty"`
	// Results carries per-point results (sharded requests), bit-exact
	// JSONL records.
	Results   []scenario.PointResult `json:"results,omitempty"`
	ElapsedMS float64                `json:"elapsed_ms"`
}

// campaignScenario is a CampaignRequest resolved and expanded. The
// executed share is an index set (a predicate over the lazy expansion),
// never a materialized point slice.
type campaignScenario struct {
	expansion *scenario.Expansion
	set       scenario.IndexSet
	shard     string
	workers   int
}

// resolve parses, validates and expands the request on the caller's
// goroutine, so malformed or oversized campaigns fail fast without a
// queue slot.
func (r CampaignRequest) resolve(lim Limits) (campaignScenario, error) {
	var cs campaignScenario
	if len(r.Spec) == 0 {
		return cs, fmt.Errorf("service: campaign request needs a spec")
	}
	spec, err := r.resolveSpecCaps()
	if err != nil {
		return cs, err
	}

	// Reject oversized sweeps arithmetically before the expansion
	// resolves anything: the shard selector divides the executed share,
	// so it enters the budget check, not the expansion.
	shardN := 1
	var shardIdx int
	if r.Shard != "" {
		if shardIdx, shardN, err = scenario.ParseShard(r.Shard); err != nil {
			return cs, err
		}
	}
	if _, points, err := scenario.EstimatePoints(spec); err != nil {
		return cs, err
	} else if points > lim.CampaignExpansion {
		return cs, fmt.Errorf("service: campaign expands to %d points, server cap is %d even sharded (use ptgbench -campaign for larger sweeps)",
			points, lim.CampaignExpansion)
	} else if points > lim.CampaignPoints*shardN {
		return cs, fmt.Errorf("service: campaign would execute ~%d points per shard, cap is %d (shard it further, or use ptgbench -campaign)",
			points/shardN, lim.CampaignPoints)
	}

	e, err := scenario.Expand(spec)
	if err != nil {
		return cs, err
	}
	set := e.All()
	if r.Shard != "" {
		if set, err = e.Shard(shardIdx, shardN); err != nil {
			return cs, err
		}
	}
	if set.Len() > lim.CampaignPoints {
		return cs, fmt.Errorf("service: campaign executes %d points, cap is %d (shard it, or use ptgbench -campaign)",
			set.Len(), lim.CampaignPoints)
	}
	cs = campaignScenario{expansion: e, set: set, shard: r.Shard, workers: clampWorkers(r.Workers)}
	return cs, nil
}

// clampWorkers applies the intra-request parallelism policy shared by the
// synchronous campaign endpoint and the job subsystem: default 1 (one
// request occupies one service worker), capped at GOMAXPROCS.
func clampWorkers(w int) int {
	if w <= 0 {
		w = 1
	}
	if max := runtime.GOMAXPROCS(0); w > max {
		return max
	}
	return w
}

// runPoints is Expansion.Run with panic isolation: with workers > 1 the
// points run on ForEach's own goroutines, outside runSafely's recover,
// where a panicking point (a degenerate generated scenario) would kill the
// whole process instead of failing the one request.
func runPoints(e *scenario.Expansion, set scenario.IndexSet, workers int, m scenario.Memo) (outs []scenario.PointResult, err error) {
	outs = make([]scenario.PointResult, set.Len())
	var mu sync.Mutex
	experiment.ForEach(set.Len(), workers, func(j int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if err == nil {
					err = fmt.Errorf("service: campaign point %d panicked: %v", set.At(j), r)
				}
				mu.Unlock()
			}
		}()
		outs[j] = e.ComputePoint(e.PointAt(set.At(j)), m)
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// runPointsInto is the streaming counterpart of runPoints: each completed
// result is delivered to emit (serialized, in completion order) instead
// of being materialized — the unsharded campaign path feeds a
// scenario.Aggregator this way, so a request's memory is bounded by the
// aggregation slots, not the result set. Panic isolation comes from
// scenario.RunEachIsolated: one degenerate point fails one request, not
// the process.
func runPointsInto(e *scenario.Expansion, set scenario.IndexSet, workers int, m scenario.Memo, emit func(scenario.PointResult) error) error {
	return e.RunEachIsolatedMemo(set, workers, m, emit)
}

// Campaign runs one declarative campaign sweep through the worker pool.
// Unsharded requests stream every completed point straight into the
// incremental aggregator — results are never materialized; sharded
// requests return their (cap-bounded) per-point results. It is safe for
// concurrent use.
func (s *Service) Campaign(ctx context.Context, req CampaignRequest) (*CampaignResponse, error) {
	cs, err := req.resolve(s.opts.Limits)
	if err != nil {
		return nil, s.invalid(err)
	}
	resp, err := s.submit(ctx, "campaign", func() (any, error) {
		started := time.Now()
		out := &CampaignResponse{
			Name:      cs.expansion.Spec.Name,
			Points:    cs.expansion.NumPoints(),
			RunPoints: cs.set.Len(),
			Shard:     cs.shard,
		}
		if cs.shard == "" {
			agg := cs.expansion.NewAggregator()
			if err := runPointsInto(cs.expansion, cs.set, cs.workers, s.memoFor(cs.expansion), agg.Add); err != nil {
				return nil, err
			}
			tables, err := agg.Tables()
			if err != nil {
				return nil, err
			}
			for _, tb := range tables {
				ct := CampaignTable{
					Cell:   tb.Cell.Label,
					Family: tb.Cell.Family.String(),
					Labels: tb.Result.Config.Labels,
				}
				for _, pt := range tb.Result.Points {
					ct.Rows = append(ct.Rows, CampaignRow{
						NPTGs:          pt.NPTGs,
						Runs:           pt.Runs,
						Unfairness:     pt.Unfairness,
						AvgMakespan:    pt.AvgMakespan,
						RelMakespan:    pt.RelMakespan,
						UnfairnessStd:  pt.UnfairnessStd,
						RelMakespanStd: pt.RelMakespanStd,
					})
				}
				out.Tables = append(out.Tables, ct)
			}
		} else {
			results, err := runPoints(cs.expansion, cs.set, cs.workers, s.memoFor(cs.expansion))
			if err != nil {
				return nil, err
			}
			out.Results = results
		}
		out.ElapsedMS = float64(time.Since(started).Microseconds()) / 1e3
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return resp.(*CampaignResponse), nil
}
