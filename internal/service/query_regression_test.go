package service

// Regression coverage for the result-query path hardening:
//   - a malformed spool record (fewer strategy columns than its cell
//     declares) must classify, not panic the projection slice;
//   - an explicit `to=0` is the empty range, not the whole campaign, and
//     `from ≥ NumPoints` is a 400, not an empty 200;
//   - JobResults stays consistent while results are still being appended
//     concurrently, including over dynamic (+dyn[pol]) cells.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ptgsched/internal/query"
	"ptgsched/internal/scenario"
)

// TestJobResultsMalformedSpoolRecordClassifies plants a short-column
// record in a finished job's spool — the footprint of a torn or foreign
// writer — and asks for a strategy projection. The pre-fix code sliced
// r.Unfairness[k:k+1] unchecked and panicked; it must instead surface
// query.ErrMalformedRecord.
func TestJobResultsMalformedSpoolRecordClassifies(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	st := submitSmokeJob(t, s, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.WaitJob(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	// Overwrite point 3's spool entry with a record carrying a single
	// strategy column; the strassen cells declare six.
	h, err := s.jobs.get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	bad := scenario.PointResult{
		Index: 3, Cell: h.e.CellOf(3), Name: h.e.PointAt(3).Name,
		Unfairness: []float64{1}, Makespan: []float64{2}, Rel: []float64{3},
	}
	if err := h.record(bad); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err = s.JobResults(st.ID, ResultQuery{Strategy: "ES"}, &buf)
	if err == nil {
		t.Fatal("JobResults streamed a projection over a malformed record without error")
	}
	if !errors.Is(err, query.ErrMalformedRecord) {
		t.Fatalf("err = %v, want query.ErrMalformedRecord", err)
	}
	// Unprojected streaming relays raw lines and is unaffected.
	buf.Reset()
	if err := s.JobResults(st.ID, ResultQuery{}, &buf); err != nil {
		t.Fatalf("unprojected JobResults: %v", err)
	}
}

// TestJobResultsExplicitEmptyRangeAndFromBeyondEnd covers the unset-vs-
// zero To distinction end to end through the HTTP layer.
func TestJobResultsExplicitEmptyRangeAndFromBeyondEnd(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	st := submitSmokeJob(t, s, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.WaitJob(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	get := func(params string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/results" + params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Absent to: the whole campaign (8 points).
	if code, body := get(""); code != http.StatusOK || strings.Count(body, "\n") != 8 {
		t.Fatalf("unfiltered: status %d, %d lines", code, strings.Count(body, "\n"))
	}
	// Explicit to=0: the empty range [0,0) — 200 with an empty stream,
	// NOT the whole campaign (the pre-fix behavior).
	if code, body := get("?to=0"); code != http.StatusOK || body != "" {
		t.Fatalf("to=0: status %d, body %q — explicit empty range leaked results", code, body)
	}
	// And the same through the Go API with a literal.
	var buf bytes.Buffer
	if err := s.JobResults(st.ID, ResultQuery{To: 0, ToSet: true}, &buf); err != nil || buf.Len() != 0 {
		t.Fatalf("ResultQuery{To:0,ToSet:true}: err=%v, %d bytes", err, buf.Len())
	}
	// from at/beyond the expansion is a client error: 400, not empty 200.
	for _, p := range []string{"?from=8", "?from=9999"} {
		code, body := get(p)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (body %q), want 400", p, code, body)
		}
		var env struct {
			Code string `json:"code"`
		}
		if err := json.Unmarshal([]byte(body), &env); err != nil || env.Code != CodeValidation {
			t.Fatalf("%s: envelope %q, want code %q", p, body, CodeValidation)
		}
	}
	// from=0 stays legal even on the empty campaign prefix.
	if code, _ := get("?from=0&to=0"); code != http.StatusOK {
		t.Fatalf("from=0&to=0: status %d, want 200", code)
	}
	// A negative to is still rejected (it must not read as "unbounded").
	if code, _ := get("?to=-1"); code != http.StatusBadRequest {
		t.Fatalf("to=-1: status %d, want 400", code)
	}
}

// dynJobSpec sweeps a rescheduling-policy axis: two +dyn[pol] cells whose
// timelines derive from the spec digest.
const dynJobSpec = `{
	"name": "dynjob", "seed": 7, "reps": 3, "nptgs": [2], "platforms": ["nancy"],
	"events": {
		"failures": [{"cluster": 0, "at": 50, "duration": 20}],
		"policies": ["restart", "checkpoint"]
	}
}`

// TestJobResultsWhileAppendingDynamicCells streams filtered results
// repeatedly while the job is still running over dynamic cells: every
// intermediate stream must be a consistent prefix-by-selection (valid
// JSONL, only matching indices, monotonically growing), and the final
// stream must equal the full selection.
func TestJobResultsWhileAppendingDynamicCells(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	st, err := s.SubmitJob(JobRequest{Spec: json.RawMessage(dynJobSpec), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	spec, err := scenario.ParseSpec([]byte(dynJobSpec))
	if err != nil {
		t.Fatal(err)
	}
	e, err := scenario.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Cells) != 2 || !strings.Contains(e.Cells[1].Label, "+dyn[checkpoint]") {
		t.Fatalf("expected two +dyn cells, got %v", e.Cells)
	}
	// Select the second dynamic cell by index range.
	lo, hi := e.CellRange(1)
	rq := ResultQuery{From: lo, To: hi}

	var wg sync.WaitGroup
	var streamErr error
	var mu sync.Mutex
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		seen := 0
		for {
			var buf bytes.Buffer
			if err := s.JobResults(st.ID, rq, &buf); err != nil {
				mu.Lock()
				streamErr = err
				mu.Unlock()
				return
			}
			results, err := scenario.ReadJSONL(&buf)
			if err != nil {
				mu.Lock()
				streamErr = err
				mu.Unlock()
				return
			}
			if len(results) < seen {
				mu.Lock()
				streamErr = errors.New("result stream shrank between polls")
				mu.Unlock()
				return
			}
			seen = len(results)
			for _, r := range results {
				if r.Index < lo || r.Index >= hi {
					mu.Lock()
					streamErr = errors.New("filtered stream leaked an out-of-range index")
					mu.Unlock()
					return
				}
			}
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := s.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if streamErr != nil {
		t.Fatalf("concurrent stream: %v", streamErr)
	}
	if final.State != JobDone {
		t.Fatalf("final state %q", final.State)
	}
	var buf bytes.Buffer
	if err := s.JobResults(st.ID, rq, &buf); err != nil {
		t.Fatal(err)
	}
	results, err := scenario.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != hi-lo {
		t.Fatalf("final filtered stream has %d results, want %d", len(results), hi-lo)
	}
	for i, r := range results {
		if r.Index != lo+i {
			t.Fatalf("result %d has index %d, want %d (global point order)", i, r.Index, lo+i)
		}
	}
}
